// Integration tests: the paper's worked examples (Figures 1–3) end to end.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "gc/lgc/lgc.h"
#include "workload/figures.h"

namespace rgc::gc {
namespace {

using core::Cluster;
using core::Oracle;
using workload::build_figure1;
using workload::build_figure2;
using workload::build_figure3;

// ---- Figure 1: the Union-Rule safety problem ----------------------------

TEST(Figure1, TopologyMatchesThePaper) {
  Cluster cluster;
  const auto f = build_figure1(cluster);
  // X replicated on P1 and P2; only X@P1 references Z.
  EXPECT_TRUE(cluster.process(f.p1).heap().contains(f.x));
  EXPECT_TRUE(cluster.process(f.p2).heap().contains(f.x));
  EXPECT_TRUE(cluster.process(f.p3).heap().contains(f.z));
  EXPECT_EQ(cluster.process(f.p1).heap().find(f.x)->ref_targets(),
            (std::vector<ObjectId>{f.z}));
  EXPECT_TRUE(cluster.process(f.p2).heap().find(f.x)->refs.empty());
  // X@P2 rooted, X@P1 not.
  EXPECT_TRUE(cluster.process(f.p2).heap().is_root(f.x));
  EXPECT_FALSE(cluster.process(f.p1).heap().is_root(f.x));
}

TEST(Figure1, UnionRulePreservesZ) {
  Cluster cluster;
  const auto f = build_figure1(cluster);
  for (int i = 0; i < 6; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_TRUE(cluster.process(f.p3).heap().contains(f.z))
      << "Z is reachable through replica X@P2 -> (propagation) -> X@P1 -> Z";
  EXPECT_TRUE(cluster.process(f.p1).heap().contains(f.x))
      << "X@P1 must be preserved: X@P2 is live and X could be re-propagated";

  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.is_live(f.z));
  EXPECT_TRUE(report.violations.empty())
      << (report.violations.empty() ? "" : report.violations.front());
}

TEST(Figure1, ClassicalDgcWouldLoseZ) {
  // The paper's motivating failure: a replication-blind collector treats
  // X@P1 as plain garbage and Z dies while still globally reachable.
  Cluster cluster;
  const auto f = build_figure1(cluster);
  const auto before = Oracle::analyze(cluster);
  ASSERT_TRUE(before.is_live(f.z)) << "Z is globally live via X@P2";

  LgcConfig blind;
  blind.union_rule = false;
  for (int i = 0; i < 4; ++i) {
    for (ProcessId pid : cluster.process_ids()) {
      const auto r = Lgc::collect(cluster.process(pid), blind);
      Adgc::after_collection(cluster.process(pid), r);
    }
    cluster.run_until_quiescent();
  }
  EXPECT_FALSE(cluster.process(f.p3).heap().contains(f.z))
      << "without the Union Rule Z is erroneously reclaimed";
  // The breach: an object that was live beforehand no longer exists
  // anywhere (the oracle's current-state view cannot see it, because the
  // unsafe sweep destroyed the very edge that proved Z's liveness).
  const auto after = Oracle::analyze(cluster);
  EXPECT_FALSE(after.object_exists(f.z))
      << "the last copy of a live object was lost";
}

TEST(Figure1, CycleDetectorNeverCondemnsLiveZ) {
  Cluster cluster;
  const auto f = build_figure1(cluster);
  cluster.snapshot_all();
  // Try every conceivable suspect; nothing may be proven cyclic garbage.
  cluster.detect(f.p1, f.x);
  cluster.detect(f.p3, f.z);
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.cycles_found().empty());
  EXPECT_TRUE(cluster.process(f.p3).heap().contains(f.z));
}

// ---- Figure 2: the 4-process replicated garbage cycle -------------------

struct Figure2Test : ::testing::Test {
  Cluster cluster;
  workload::Figure2 f{};

  void SetUp() override { f = build_figure2(cluster); }

  [[nodiscard]] std::size_t cycle_replicas() const {
    return (cluster.process(f.p1).heap().contains(f.x) ? 1u : 0u) +
           (cluster.process(f.p2).heap().contains(f.x) ? 1u : 0u) +
           (cluster.process(f.p3).heap().contains(f.y) ? 1u : 0u) +
           (cluster.process(f.p4).heap().contains(f.y) ? 1u : 0u);
  }
};

TEST_F(Figure2Test, TopologyMatchesThePaper) {
  EXPECT_EQ(cycle_replicas(), 4u);
  EXPECT_EQ(cluster.process(f.p2).heap().find(f.x)->ref_targets(),
            (std::vector<ObjectId>{f.y}));
  EXPECT_EQ(cluster.process(f.p3).heap().find(f.y)->ref_targets(),
            (std::vector<ObjectId>{f.x}));
  EXPECT_TRUE(cluster.process(f.p1).heap().find(f.x)->refs.empty());
  EXPECT_TRUE(cluster.process(f.p4).heap().find(f.y)->refs.empty());
  // Scions: Y'@P3 -> X@P1 and X'@P2 -> Y@P4.
  EXPECT_TRUE(cluster.process(f.p1).scions().contains(rm::ScionKey{f.p3, f.x}));
  EXPECT_TRUE(cluster.process(f.p4).scions().contains(rm::ScionKey{f.p2, f.y}));
  // The whole thing is garbage per the oracle.
  const auto report = Oracle::analyze(cluster);
  EXPECT_FALSE(report.is_live(f.x));
  EXPECT_FALSE(report.is_live(f.y));
}

TEST_F(Figure2Test, AcyclicProtocolAloneCannotReclaimTheCycle) {
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cycle_replicas(), 4u)
      << "the replicated cycle is invisible to reference-listing + props";
}

TEST_F(Figure2Test, DetectionFromXFollowsThePaperTrace) {
  cluster.snapshot_all();
  const auto id = cluster.detect(f.p1, f.x);
  ASSERT_TRUE(id.has_value());
  const auto steps = cluster.run_until_quiescent();
  ASSERT_EQ(cluster.cycles_found().size(), 1u);

  // One CDM per hop P1->P2->P4->P3->P1 (the paper's Alg1..Alg4).
  EXPECT_EQ(cluster.network().total_sent("CDM"), 4u);
  EXPECT_GE(steps, 4u);

  const Cdm& verdict = cluster.cycles_found().front();
  EXPECT_EQ(verdict.candidate, (Replica{f.x, f.p1}));
  EXPECT_TRUE(verdict.cycle_complete());
  // All four replicas were visited.
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.x, f.p1})));
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.x, f.p2})));
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.y, f.p3})));
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.y, f.p4})));
}

TEST_F(Figure2Test, CutAndReclaimEliminateTheWholeCycle) {
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.cycles_found().size(), 1u);
  // The cut deleted the scion for X@P1; acyclic rounds finish the job.
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cycle_replicas(), 0u);
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(Oracle::fully_collected(cluster, report));
}

TEST_F(Figure2Test, DetectionFromAnyCycleMemberSucceeds) {
  cluster.snapshot_all();
  const auto id = cluster.detect(f.p4, f.y);  // start at Y instead of X
  ASSERT_TRUE(id.has_value());
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.cycles_found().size(), 1u);
}

TEST_F(Figure2Test, RunFullGcDrivesEverythingAutomatically) {
  const auto stats = cluster.run_full_gc();
  EXPECT_GE(stats.cycles_found, 1u);
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(Oracle::fully_collected(cluster, Oracle::analyze(cluster)));
}

TEST_F(Figure2Test, LiveCycleIsNeverCondemned) {
  cluster.add_root(f.p2, f.x);  // resurrect: the cycle is live again
  cluster.snapshot_all();
  EXPECT_FALSE(cluster.detect(f.p2, f.x).has_value())
      << "a locally reachable candidate must refuse to start";
  cluster.detect(f.p1, f.x);
  cluster.detect(f.p4, f.y);
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.cycles_found().empty());
  EXPECT_EQ(cycle_replicas(), 4u);
}

// ---- Figure 3: six processes, two detection paths ------------------------

struct Figure3Test : ::testing::Test {
  Cluster cluster;
  workload::Figure3 f{};

  void SetUp() override { f = build_figure3(cluster); }
};

TEST_F(Figure3Test, TopologyMatchesThePaper) {
  // Replicas: B on P1+P2, F on P6+P3+P5, I on P5+P4.
  EXPECT_TRUE(cluster.process(f.p1).heap().contains(f.b));
  EXPECT_TRUE(cluster.process(f.p2).heap().contains(f.b));
  EXPECT_TRUE(cluster.process(f.p6).heap().contains(f.f));
  EXPECT_TRUE(cluster.process(f.p3).heap().contains(f.f));
  EXPECT_TRUE(cluster.process(f.p5).heap().contains(f.f));
  EXPECT_TRUE(cluster.process(f.p5).heap().contains(f.i));
  EXPECT_TRUE(cluster.process(f.p4).heap().contains(f.i));
  // Divergence: only F''@P5 references I.
  EXPECT_EQ(cluster.process(f.p5).heap().find(f.f)->ref_targets(),
            (std::vector<ObjectId>{f.i}));
  EXPECT_TRUE(cluster.process(f.p6).heap().find(f.f)->refs.empty());
  EXPECT_TRUE(cluster.process(f.p3).heap().find(f.f)->refs.empty());
  // Nothing is globally reachable.
  const auto report = core::Oracle::analyze(cluster);
  EXPECT_TRUE(report.live_objects.empty());
}

TEST_F(Figure3Test, DetectionFromCFindsTheCycle) {
  cluster.snapshot_all();
  const auto id = cluster.detect(f.p1, f.c);
  ASSERT_TRUE(id.has_value());
  cluster.run_until_quiescent();
  ASSERT_GE(cluster.cycles_found().size(), 1u);
  const Cdm& verdict = cluster.cycles_found().front();
  EXPECT_EQ(verdict.candidate, (Replica{f.c, f.p1}));
  // The winning track visited the F-family replicas (the paper's track a).
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.f, f.p6})));
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.f, f.p5})));
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.i, f.p5})));
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.i, f.p4})));
}

TEST_F(Figure3Test, BothPathsAreExercised) {
  cluster.snapshot_all();
  cluster.detect(f.p1, f.c);
  cluster.run_until_quiescent();
  // Two CDMs left P2 in the same step (the fork of §3.4 step #5-7): both
  // E@P3 and I@P5 received one.
  EXPECT_GE(cluster.process(f.p3).metrics().get("cycle.cdms_received"), 1u);
  EXPECT_GE(cluster.process(f.p5).metrics().get("cycle.cdms_received"), 1u);
  // At least one track died without a verdict (the paper's track b) while
  // the detection as a whole succeeded.
  EXPECT_GE(cluster.cycles_found().size(), 1u);
}

TEST_F(Figure3Test, WholeGraphReclaimedAfterDetection) {
  const auto stats = cluster.run_full_gc();
  EXPECT_GE(stats.cycles_found, 1u);
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(
      core::Oracle::fully_collected(cluster, core::Oracle::analyze(cluster)));
}

TEST_F(Figure3Test, RootingEMakesEverythingDownstreamSafe) {
  cluster.add_root(f.p3, f.e);
  cluster.snapshot_all();
  cluster.detect(f.p1, f.c);
  cluster.run_until_quiescent();
  // E live => F' live => F live => ... the cycle through C is still
  // garbage? No: C -> B -> B' -> E is the only path into E; E's liveness
  // does not keep C alive, but the detection through E must abort while
  // any detection avoiding E may still close.  Whatever the verdict, the
  // live part must survive a full GC.
  cluster.run_full_gc();
  EXPECT_TRUE(cluster.process(f.p3).heap().contains(f.e));
  const auto report = core::Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty());
}

}  // namespace
}  // namespace rgc::gc
