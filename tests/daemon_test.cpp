// Integration tests: the periodic GC daemon — background cadence, live
// mutator coexistence, end-to-end reclamation without explicit GC calls.
#include <gtest/gtest.h>

#include "core/daemon.h"
#include "core/oracle.h"
#include "workload/figures.h"
#include "workload/random_mutator.h"

namespace rgc::core {
namespace {

TEST(Daemon, RunsCollectionsOnSchedule) {
  Cluster cluster;
  cluster.add_process();
  cluster.add_process();
  DaemonConfig cfg;
  cfg.collect_period = 4;
  cfg.snapshot_period = 8;
  cfg.adaptive.enabled = false;  // this test pins the fixed cadence
  GcDaemon daemon{cluster, cfg};
  daemon.run(32);
  // 2 processes x (32/4) due collection ticks, staggered but all hit.
  EXPECT_GE(daemon.collections(), 14u);
  EXPECT_GE(daemon.sweeps(), 6u);
}

TEST(Daemon, ReclaimsTheFigure2CycleInTheBackground) {
  Cluster cluster;
  workload::build_figure2(cluster);
  GcDaemon daemon{cluster};
  daemon.run(300);
  EXPECT_EQ(cluster.total_objects(), 0u)
      << "background cadence alone must reclaim the replicated cycle";
  EXPECT_GE(daemon.detections_started(), 1u);
}

TEST(Daemon, NeverHarmsLiveDataWhileMutatorRuns) {
  Cluster cluster;
  for (int i = 0; i < 4; ++i) cluster.add_process();
  workload::MutatorSpec spec;
  spec.seed = 77;
  spec.w_collect = 0;  // the daemon is the only collector
  spec.w_step = 0;     // the daemon drives time
  workload::RandomMutator mutator{cluster, spec};
  GcDaemon daemon{cluster};

  for (int burst = 0; burst < 30; ++burst) {
    mutator.run(20);
    daemon.run(10);
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty())
        << "burst " << burst << ": " << report.violations.front();
  }
}

TEST(Daemon, ConvergesOnceMutationStops) {
  Cluster cluster;
  for (int i = 0; i < 3; ++i) cluster.add_process();
  workload::MutatorSpec spec;
  spec.seed = 1234;
  workload::RandomMutator mutator{cluster, spec};
  mutator.run(300);
  cluster.run_until_quiescent();

  GcDaemon daemon{cluster};
  daemon.run(600);
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(report.garbage_objects().empty())
      << report.garbage_objects().size()
      << " dead objects survived the background daemon";
}

TEST(Daemon, HeuristicPoliciesWorkUnderTheDaemon) {
  for (const CandidatePolicy policy :
       {CandidatePolicy::kDistance, CandidatePolicy::kSuspicionAge}) {
    ClusterConfig cfg;
    cfg.candidates = policy;
    cfg.candidate_threshold = 2;
    Cluster cluster{cfg};
    workload::build_figure2(cluster);
    GcDaemon daemon{cluster};
    daemon.run(400);
    EXPECT_EQ(cluster.total_objects(), 0u)
        << "policy " << static_cast<int>(policy);
  }
}

TEST(Daemon, ZeroPeriodsAreSanitized) {
  Cluster cluster;
  cluster.add_process();
  DaemonConfig cfg;
  cfg.collect_period = 0;
  cfg.snapshot_period = 0;
  cfg.adaptive.enabled = false;  // the every-step cadence is the point
  GcDaemon daemon{cluster, cfg};
  daemon.run(5);  // must not divide by zero
  EXPECT_GE(daemon.collections(), 5u);
}

}  // namespace
}  // namespace rgc::core
