// Unit tests: snapshot serialization (§3.5.1 "stores a snapshot … on
// disk") — round trips, corruption rejection, detector adoption.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/cluster.h"
#include "gc/cycle/snapshot_io.h"
#include "obs/check.h"
#include "rm/image.h"
#include "workload/figures.h"

namespace rgc::gc {
namespace {

using core::Cluster;

ProcessSummary figure2_summary(Cluster& cluster, ProcessId pid) {
  return summarize(cluster.process(pid));
}

TEST(SnapshotIo, EmptySummaryRoundTrips) {
  Cluster cluster;
  const ProcessId p = cluster.add_process();
  const ProcessSummary s = summarize(cluster.process(p));
  const auto decoded = decode_summary(encode_summary(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
}

TEST(SnapshotIo, RichSummaryRoundTrips) {
  Cluster cluster;
  const auto f = workload::build_figure3(cluster);
  for (ProcessId pid : cluster.process_ids()) {
    const ProcessSummary s = figure2_summary(cluster, pid);
    const std::string bytes = encode_summary(s);
    const auto decoded = decode_summary(bytes);
    ASSERT_TRUE(decoded.has_value()) << to_string(pid);
    EXPECT_EQ(*decoded, s) << to_string(pid);
  }
  (void)f;
}

TEST(SnapshotIo, CountersSurviveTheTrip) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  cluster.invoke(f.p3, f.x);
  cluster.run_until_quiescent();
  const ProcessSummary s = figure2_summary(cluster, f.p1);
  const auto decoded = decode_summary(encode_summary(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->scions.at(rm::ScionKey{f.p3, f.x}).ic, 1u);
}

TEST(SnapshotIo, RejectsBadMagic) {
  Cluster cluster;
  const ProcessId p = cluster.add_process();
  std::string bytes = encode_summary(summarize(cluster.process(p)));
  bytes[0] ^= 0x5a;
  EXPECT_FALSE(decode_summary(bytes).has_value());
}

TEST(SnapshotIo, RejectsTruncation) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  std::string bytes = encode_summary(figure2_summary(cluster, f.p1));
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{5}}) {
    EXPECT_FALSE(decode_summary(bytes.substr(0, cut)).has_value())
        << "cut at " << cut;
  }
}

TEST(SnapshotIo, RejectsTrailingGarbage) {
  Cluster cluster;
  const ProcessId p = cluster.add_process();
  std::string bytes = encode_summary(summarize(cluster.process(p)));
  bytes += "extra";
  EXPECT_FALSE(decode_summary(bytes).has_value());
}

TEST(SnapshotIo, RejectsCorruptCounts) {
  // Flip bytes all over the buffer: decode must never crash and, when the
  // damage touches structure, must reject.
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const std::string clean = encode_summary(figure2_summary(cluster, f.p1));
  for (std::size_t i = 8; i < clean.size(); i += 7) {
    std::string bytes = clean;
    bytes[i] = static_cast<char>(bytes[i] ^ 0xff);
    (void)decode_summary(bytes);  // must not crash; result may be nullopt
  }
  SUCCEED();
}

TEST(SnapshotIo, FileSaveLoad) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const ProcessSummary s = figure2_summary(cluster, f.p1);
  const std::string path = "/tmp/rgc_snapshot_test.bin";
  ASSERT_TRUE(save_summary(s, path));
  const auto loaded = load_summary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(*loaded, s);
  std::remove(path.c_str());
}

TEST(SnapshotIo, LoadOfMissingFileFails) {
  EXPECT_FALSE(load_summary("/tmp/rgc_no_such_snapshot.bin").has_value());
}

TEST(SnapshotIo, AdoptedSnapshotDrivesADetection) {
  // The paper's off-line path: serialize the summaries, reload them into
  // fresh detector state, detect — the Figure 2 cycle must still be found.
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  for (ProcessId pid : cluster.process_ids()) {
    const std::string bytes =
        encode_summary(summarize(cluster.process(pid)));
    const auto decoded = decode_summary(bytes);
    ASSERT_TRUE(decoded.has_value());
    cluster.detector(pid).adopt_snapshot(*decoded);
  }
  ASSERT_TRUE(cluster.detect(f.p1, f.x).has_value());
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.cycles_found().size(), 1u);
}

TEST(SnapshotIo, AdoptRejectsForeignSummary) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessSummary s = summarize(cluster.process(p1));
  EXPECT_THROW(cluster.detector(p2).adopt_snapshot(s), std::invalid_argument);
}

// ---- Process images (crash/restart persistence, docs/FAULTS.md) -----------

/// A process with heap, roots, stubs/scions and props worth persisting.
std::string rich_image_bytes(Cluster& cluster) {
  const auto f = workload::build_figure2(cluster);
  const ObjectId r = cluster.new_object(f.p1);
  cluster.add_root(f.p1, r);
  cluster.run_until_quiescent();
  return encode_image(cluster.process(f.p1).capture_image(cluster.now()));
}

TEST(ImageIo, RichImageRoundTrips) {
  Cluster cluster;
  const std::string bytes = rich_image_bytes(cluster);
  EXPECT_EQ(validate_image(bytes), ImageStatus::kOk);
  const auto decoded = decode_image(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(encode_image(*decoded), bytes);  // canonical re-encoding
  EXPECT_TRUE(obs::check_image(bytes).empty());
}

TEST(ImageIo, TruncationIsReportedNotMisdecoded) {
  Cluster cluster;
  const std::string bytes = rich_image_bytes(cluster);
  for (std::size_t cut : {bytes.size() - 1, bytes.size() / 2, std::size_t{3}}) {
    const std::string cut_bytes = bytes.substr(0, cut);
    const ImageStatus status = validate_image(cut_bytes);
    EXPECT_NE(status, ImageStatus::kOk) << "cut at " << cut;
    EXPECT_FALSE(decode_image(cut_bytes).has_value()) << "cut at " << cut;
    EXPECT_FALSE(obs::check_image(cut_bytes).empty()) << "cut at " << cut;
  }
}

TEST(ImageIo, EveryBitFlipIsCaughtByTheChecksum) {
  Cluster cluster;
  const std::string bytes = rich_image_bytes(cluster);
  for (std::size_t i = 0; i < bytes.size(); i += 5) {
    std::string flipped = bytes;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x10);
    EXPECT_NE(validate_image(flipped), ImageStatus::kOk) << "flip at " << i;
    EXPECT_FALSE(decode_image(flipped).has_value()) << "flip at " << i;
    EXPECT_FALSE(obs::check_image(flipped).empty()) << "flip at " << i;
  }
}

TEST(ImageIo, BadMagicAndVersionAreDistinguished) {
  Cluster cluster;
  const std::string bytes = rich_image_bytes(cluster);
  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  EXPECT_EQ(validate_image(bad_magic), ImageStatus::kBadMagic);
  EXPECT_EQ(validate_image(std::string{}), ImageStatus::kTruncated);
}

TEST(ImageIo, StaleEpochIsFlaggedByTheChecker) {
  // A stale-but-intact image passes byte validation; only the checker's
  // epoch guard (restart's min_mutation_epoch) catches the swap.
  Cluster cluster;
  const ProcessId p = cluster.add_process();
  const ObjectId a = cluster.new_object(p);
  cluster.add_root(p, a);
  const std::string old_bytes =
      encode_image(cluster.process(p).capture_image(cluster.now()));
  const std::uint64_t old_epoch = cluster.process(p).mutation_epoch();

  const ObjectId b = cluster.new_object(p);
  cluster.add_ref(p, a, b);
  const std::uint64_t new_epoch = cluster.process(p).mutation_epoch();
  ASSERT_GT(new_epoch, old_epoch);

  EXPECT_EQ(validate_image(old_bytes), ImageStatus::kOk);
  EXPECT_TRUE(obs::check_image(old_bytes, old_epoch).empty());
  const auto findings = obs::check_image(old_bytes, new_epoch);
  ASSERT_FALSE(findings.empty());
  EXPECT_EQ(findings.front().invariant, "image_stale");
}

TEST(ImageIo, FileSaveLoadRoundTrip) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const rm::ProcessImage image =
      cluster.process(f.p1).capture_image(cluster.now());
  const std::string path = "/tmp/rgc_image_test.bin";
  ASSERT_TRUE(save_image(image, path));
  const auto loaded = load_image(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(encode_image(*loaded), encode_image(image));
  std::remove(path.c_str());
  EXPECT_FALSE(load_image(path).has_value());
}

}  // namespace
}  // namespace rgc::gc
