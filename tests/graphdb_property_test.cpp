// Property-based tests over the graph-database API: random vertex/edge
// churn with cache refreshes, checked against the oracle and against an
// application-level shadow model.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/oracle.h"
#include "graphdb/graphdb.h"
#include "util/rng.h"

namespace rgc::graphdb {
namespace {

struct Shadow {
  // What the application believes: registered vertices and their edges.
  std::set<VertexId> registered;
  std::map<VertexId, std::set<VertexId>> edges;

  void remove_vertex(VertexId v) { registered.erase(v); }

  /// Application-reachable vertices: registered ones plus everything their
  /// edges lead to (deleted-but-referenced vertices stay usable — the
  /// referential-integrity promise).
  [[nodiscard]] std::set<VertexId> reachable() const {
    std::set<VertexId> out;
    std::vector<VertexId> work(registered.begin(), registered.end());
    out.insert(registered.begin(), registered.end());
    while (!work.empty()) {
      const VertexId v = work.back();
      work.pop_back();
      auto it = edges.find(v);
      if (it == edges.end()) continue;
      for (VertexId next : it->second) {
        if (out.insert(next).second) work.push_back(next);
      }
    }
    return out;
  }
};

struct FuzzCase {
  std::uint64_t seed;
  std::size_t shards;
  int ops;
};

class GraphDbFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(GraphDbFuzz, ShadowModelAgreesAndGcIsSafeAndComplete) {
  const FuzzCase param = GetParam();
  GraphStoreConfig cfg;
  cfg.shards = param.shards;
  cfg.background_gc = false;
  cfg.cluster.net.seed = param.seed;
  GraphStore db{cfg};
  Shadow shadow;
  util::Rng rng{param.seed * 31 + 5};
  std::vector<VertexId> pool;  // every vertex ever created

  for (int op = 0; op < param.ops; ++op) {
    const auto roll = rng.below(100);
    if (roll < 30 || pool.empty()) {
      const VertexId v = db.add_vertex("v" + std::to_string(op));
      pool.push_back(v);
      shadow.registered.insert(v);
    } else if (roll < 55) {
      // add edge between two application-reachable vertices
      const auto reach = shadow.reachable();
      if (reach.size() < 2) continue;
      auto pick = [&](std::uint64_t n) {
        auto it = reach.begin();
        std::advance(it, static_cast<long>(n % reach.size()));
        return *it;
      };
      const VertexId from = pick(rng.next());
      const VertexId to = pick(rng.next());
      if (from == to) continue;
      if (!db.vertex_exists(from)) continue;
      db.add_edge(from, to);
      shadow.edges[from].insert(to);
    } else if (roll < 70) {
      // remove an edge the shadow knows about
      if (shadow.edges.empty()) continue;
      auto it = shadow.edges.begin();
      std::advance(it, static_cast<long>(rng.below(shadow.edges.size())));
      if (it->second.empty()) continue;
      const VertexId from = it->first;
      const VertexId to = *it->second.begin();
      if (!db.vertex_exists(from)) continue;
      db.remove_edge(from, to);
      it->second.erase(to);
    } else if (roll < 85) {
      // delete a registered vertex
      if (shadow.registered.empty()) continue;
      auto it = shadow.registered.begin();
      std::advance(it,
                   static_cast<long>(rng.below(shadow.registered.size())));
      const VertexId v = *it;
      db.remove_vertex(v);
      shadow.remove_vertex(v);
    } else if (roll < 92) {
      db.refresh_caches();
    } else {
      db.run_gc();
      // Safety after every collection: everything the application can
      // still reach must exist, with its label intact.
      for (VertexId v : shadow.reachable()) {
        ASSERT_TRUE(db.vertex_exists(v))
            << "op " << op << ": reachable vertex lost";
        ASSERT_TRUE(db.label(v).has_value());
      }
      const auto report = core::Oracle::analyze(db.cluster());
      ASSERT_TRUE(report.violations.empty())
          << "op " << op << ": " << report.violations.front();
    }
  }

  // Endgame: completeness.  Cached replicas may still hold edges the
  // application has since removed at the home (remove_edge edits the home
  // replica; the Union Rule rightly keeps such targets alive until the
  // caches converge) — so refresh the caches first, then the store must
  // agree with the shadow exactly.
  db.refresh_caches();
  db.run_gc();
  const auto reach = shadow.reachable();
  for (VertexId v : pool) {
    EXPECT_EQ(db.vertex_exists(v), reach.contains(v))
        << to_string(v) << (reach.contains(v) ? " lost" : " leaked");
  }
  // And dropping everything empties the store (indexes aside).
  for (VertexId v : std::set<VertexId>(shadow.registered)) {
    db.remove_vertex(v);
  }
  db.refresh_caches();
  db.run_gc();
  EXPECT_EQ(db.replica_count(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GraphDbFuzz,
    ::testing::Values(FuzzCase{1, 3, 150}, FuzzCase{2, 4, 150},
                      FuzzCase{3, 2, 200}, FuzzCase{4, 5, 200},
                      FuzzCase{5, 3, 250}),
    [](const ::testing::TestParamInfo<FuzzCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace rgc::graphdb
