// Scale smoke tests (`ctest -L scale`): ~100k-object populations through
// the arena heap, the snapshot/image codecs, a full collection round and
// the discrete-event scheduler — small enough for the sanitizer legs of
// scripts/check.sh, big enough to catch O(n^2) regressions and slot/index
// bookkeeping bugs that toy graphs never tickle.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/cluster.h"
#include "gc/cycle/snapshot_io.h"
#include "gc/cycle/summary.h"
#include "rm/image.h"
#include "rm/process.h"

namespace rgc {
namespace {

constexpr std::uint64_t kObjects = 100000;
constexpr std::uint64_t kChain = 50;

/// Rooted chains of kChain objects on every process, kObjects total.
std::vector<ProcessId> build_chains(core::Cluster& cluster,
                                    std::size_t processes) {
  std::vector<ProcessId> pids;
  for (std::size_t i = 0; i < processes; ++i) {
    pids.push_back(cluster.add_process());
  }
  const std::uint64_t per_process = kObjects / processes;
  for (const ProcessId pid : pids) {
    ObjectId prev{};
    for (std::uint64_t i = 0; i < per_process; ++i) {
      const ObjectId obj = cluster.new_object(pid);
      if (i % kChain == 0) {
        cluster.add_root(pid, obj);
      } else {
        cluster.add_ref(pid, prev, obj);
      }
      prev = obj;
    }
  }
  return pids;
}

TEST(Scale, ImageRoundTripsHundredThousandObjects) {
  core::Cluster cluster;
  const std::vector<ProcessId> pids = build_chains(cluster, 1);
  rm::Process& proc = cluster.process(pids[0]);
  ASSERT_GE(proc.heap().size(), kObjects);

  const rm::ProcessImage image = proc.capture_image(cluster.now());
  EXPECT_EQ(image.objects.size(), proc.heap().size());
  const std::string bytes = gc::encode_image(image);
  const auto decoded = gc::decode_image(bytes);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->objects.size(), image.objects.size());
  // capture_image iterates the arena in id order, so equality is
  // positional — and proves the codec at six figures, not toy sizes.
  for (std::size_t i = 0; i < image.objects.size(); i += 9973) {
    EXPECT_EQ(decoded->objects[i].id, image.objects[i].id);
    EXPECT_EQ(decoded->objects[i].refs, image.objects[i].refs);
  }
  EXPECT_EQ(decoded->roots, image.roots);
}

TEST(Scale, SummaryRoundTripsHundredThousandObjects) {
  core::Cluster cluster;
  const std::vector<ProcessId> pids = build_chains(cluster, 1);
  const gc::ProcessSummary summary =
      gc::summarize(cluster.process(pids[0]));
  const auto decoded = gc::decode_summary(gc::encode_summary(summary));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, summary);
}

TEST(Scale, ClusterSmokeCollectAdvanceAudit) {
  core::ClusterConfig cfg;
  cfg.lease_timeout = 48;
  core::Cluster cluster{cfg};
  const std::vector<ProcessId> pids = build_chains(cluster, 8);

  // Cross-process ring so the audit sees real scion/prop state.
  for (std::size_t i = 0; i < pids.size(); ++i) {
    const ObjectId shared = cluster.new_object(pids[i]);
    cluster.add_root(pids[i], shared);
    cluster.propagate(shared, pids[i], pids[(i + 1) % pids.size()]);
  }
  cluster.run_until_quiescent();

  // Everything is rooted: a full collection round reclaims nothing.
  cluster.collect_all();
  cluster.run_until_quiescent();
  std::uint64_t reclaimed = 0;
  for (const ProcessId pid : pids) {
    reclaimed += cluster.process(pid).metrics().get("lgc.reclaimed");
  }
  EXPECT_EQ(reclaimed, 0u);
  EXPECT_GE(cluster.total_objects(), kObjects);

  // Event-skip across an idle stretch, then a deep audit: no findings, and
  // the heap gauges reflect the arena.
  cluster.advance(5000);
  const obs::HealthReport& report = cluster.audit();
  EXPECT_EQ(report.errors(), 0u);
  for (const ProcessId pid : pids) {
    const rm::Process& proc = cluster.process(pid);
    EXPECT_EQ(proc.metrics().gauge_value("process.heap_slab_bytes"),
              proc.heap().slab_bytes());
    EXPECT_EQ(proc.metrics().gauge_value("process.heap_live_fraction"),
              proc.heap().live_percent());
  }
}

}  // namespace
}  // namespace rgc
