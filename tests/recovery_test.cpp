// Crash/recovery fault-tolerance tests (docs/FAULTS.md): process kill +
// restart-from-snapshot round-trips, lease/timeout scion reclamation
// boundaries, the reconciliation protocol (Recover / Rebind / RebindNack /
// PropSync), partition loss semantics, and the offline consistency
// checker, all against the omniscient core::Oracle.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/cluster.h"
#include "core/daemon.h"
#include "core/oracle.h"
#include "obs/check.h"
#include "workload/fault_plan.h"
#include "workload/figures.h"

namespace rgc {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::Oracle;

ClusterConfig leased_config(std::uint64_t timeout) {
  ClusterConfig cfg;
  cfg.lease_timeout = timeout;
  cfg.heartbeat_interval = 1;  // exact lease arithmetic in tests
  return cfg;
}

/// x@p0 --ref--> y@p1, x rooted: leaves a stub {y,p1} at p0 and the scion
/// {p0,y} at p1, construction couriers settled away.
struct RemoteRefWorld {
  ProcessId p0, p1;
  ObjectId x, y;
};

RemoteRefWorld build_remote_ref(Cluster& cluster) {
  RemoteRefWorld w;
  w.p0 = cluster.add_process();
  w.p1 = cluster.add_process();
  w.x = cluster.new_object(w.p0);
  w.y = cluster.new_object(w.p1);
  cluster.add_root(w.p0, w.x);
  workload::make_remote_ref(cluster, w.p0, w.x, w.p1, w.y);
  workload::settle(cluster);
  return w;
}

// ---- Crash basics ----------------------------------------------------------

TEST(Kill, PurgesInFlightTrafficAndStillQuiesces) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.propagate(x, p0, p1);  // in flight toward p1
  ASSERT_GT(cluster.network().in_flight(), 0u);

  cluster.kill(p1);
  // Regression: a crashed process must not count as pending work forever.
  const auto status = cluster.run_until_quiescent(50);
  EXPECT_TRUE(status.quiescent);
  EXPECT_EQ(status.in_flight, 0u);
  EXPECT_EQ(status.dead, 1u);
}

TEST(Kill, GuardsAndTopologyExclusion) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  EXPECT_THROW(cluster.kill(ProcessId{99}), std::out_of_range);

  cluster.kill(p1);
  EXPECT_THROW(cluster.kill(p1), std::logic_error);
  EXPECT_FALSE(cluster.is_alive(p1));
  EXPECT_TRUE(cluster.is_alive(p0));
  EXPECT_EQ(cluster.process_count(), 1u);
  EXPECT_EQ(cluster.process_ids(), std::vector<ProcessId>{p0});
  EXPECT_EQ(cluster.dead_process_ids(), std::vector<ProcessId>{p1});
  EXPECT_THROW((void)cluster.process(p1), std::out_of_range);
  EXPECT_EQ(cluster.network().metrics().get("cluster.crashes"), 1u);
}

TEST(Kill, SendToDeadProcessIsDroppedAtSource) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.kill(p1);

  cluster.propagate(x, p0, p1);
  EXPECT_EQ(cluster.network().in_flight(), 0u);
  EXPECT_GE(cluster.network().metrics().get("net.dropped.Propagate"), 1u);
}

TEST(Kill, DeadProcessesAreSkippedByCollectionAndFullGc) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  (void)cluster.new_object(p1);
  cluster.add_root(p0, x);
  cluster.kill(p1);

  EXPECT_NO_THROW(cluster.collect_all());
  EXPECT_NO_THROW(cluster.run_full_gc(2));
  EXPECT_THROW(cluster.collect(p1), std::out_of_range);
  // Only live heaps are counted: x survives, p1's object is unobservable.
  EXPECT_EQ(cluster.total_objects(), 1u);
}

// ---- Persist / restart round-trips ----------------------------------------

TEST(Restart, WithoutImageComesBackEmpty) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.add_process();  // keep someone alive

  EXPECT_FALSE(cluster.has_image(p0));
  cluster.kill(p0);
  EXPECT_FALSE(cluster.restart(p0));
  EXPECT_TRUE(cluster.is_alive(p0));
  EXPECT_EQ(cluster.process(p0).heap().size(), 0u);
  EXPECT_EQ(cluster.network().metrics().get("cluster.recoveries"), 1u);
}

TEST(Restart, GuardsOnLiveAndUnknownPids) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  EXPECT_THROW(cluster.restart(p0), std::logic_error);
  EXPECT_THROW(cluster.restart(ProcessId{42}), std::out_of_range);
}

TEST(Restart, SingleProcessRoundTripRestoresHeapAndRoots) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ObjectId a = cluster.new_object(p0);
  const ObjectId b = cluster.new_object(p0);
  cluster.add_ref(p0, a, b);
  cluster.add_root(p0, a);

  cluster.persist(p0);
  EXPECT_TRUE(cluster.has_image(p0));
  cluster.kill(p0);
  EXPECT_TRUE(cluster.restart(p0));

  const rm::Process& proc = cluster.process(p0);
  EXPECT_EQ(proc.heap().size(), 2u);
  EXPECT_TRUE(proc.has_replica(a));
  EXPECT_TRUE(proc.has_replica(b));
  EXPECT_TRUE(proc.heap().roots().contains(a));
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty());
}

TEST(Restart, PairRoundTripKeepsStubScionPairsCoherent) {
  Cluster cluster;
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.persist_all();
  cluster.kill(w.p1);
  EXPECT_TRUE(cluster.restart(w.p1));
  cluster.run_until_quiescent();

  const rm::Process& callee = cluster.process(w.p1);
  EXPECT_TRUE(callee.has_replica(w.y));
  EXPECT_TRUE(callee.scions().contains(rm::ScionKey{w.p0, w.y}));
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
  EXPECT_TRUE(obs::check_cluster(cluster).ok())
      << obs::check_cluster(cluster).to_string();
}

TEST(Restart, FigureTopologyRoundTripStaysCollectable) {
  Cluster cluster;
  const auto fig = workload::build_figure2(cluster);
  cluster.persist_all();
  cluster.kill(fig.p2);
  EXPECT_TRUE(cluster.restart(fig.p2));
  cluster.run_until_quiescent();
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());

  // The replicated garbage cycle must still be detectable and collectable
  // after the round-trip.
  cluster.run_full_gc();
  EXPECT_TRUE(Oracle::analyze(cluster).garbage_objects().empty());
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
}

TEST(Restart, StaleImageContentIsHealedByReconciliation) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.persist(p1);  // image predates the propagation below

  cluster.propagate(x, p0, p1);
  cluster.run_until_quiescent();
  ASSERT_TRUE(cluster.process(p1).has_replica(x));

  cluster.kill(p1);
  EXPECT_TRUE(cluster.restart(p1));  // old-but-valid image
  EXPECT_FALSE(cluster.process(p1).has_replica(x));
  cluster.run_until_quiescent();
  // p0's reconciliation re-propagated the surviving link.
  EXPECT_TRUE(cluster.process(p1).has_replica(x));
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
  EXPECT_TRUE(obs::check_cluster(cluster).ok())
      << obs::check_cluster(cluster).to_string();
}

TEST(Restart, RebindRecreatesScionLostWithStaleImage) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  const ObjectId y = cluster.new_object(p1);
  cluster.add_root(p0, x);
  cluster.persist(p1);  // before the scion for p0 exists

  workload::make_remote_ref(cluster, p0, x, p1, y);
  workload::settle(cluster);
  ASSERT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p0, y}));

  cluster.kill(p1);
  EXPECT_TRUE(cluster.restart(p1));
  EXPECT_FALSE(cluster.process(p1).scions().contains(rm::ScionKey{p0, y}));
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p0, y}));
  EXPECT_GE(cluster.process(p1).metrics().get("rm.scions_rebound"), 1u);
  // The rebound scion keeps anchoring y through a full GC.
  cluster.run_full_gc();
  EXPECT_TRUE(cluster.process(p1).has_replica(y));
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
}

TEST(Restart, RebindNackSeversStubsIntoLostState) {
  Cluster cluster;
  const RemoteRefWorld w = build_remote_ref(cluster);
  // p1 never persisted: its restart loses y entirely.
  cluster.kill(w.p1);
  EXPECT_FALSE(cluster.restart(w.p1));
  cluster.run_until_quiescent();

  EXPECT_GE(cluster.process(w.p1).metrics().get("rm.rebind_nacks_sent"), 1u);
  EXPECT_EQ(cluster.process(w.p0).find_stub(rm::StubKey{w.y, w.p1}), nullptr);
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
  EXPECT_TRUE(obs::check_cluster(cluster).ok())
      << obs::check_cluster(cluster).to_string();
}

// ---- Image validation ------------------------------------------------------

TEST(Restart, CorruptImageIsRejectedNotSilentlyRehydrated) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  cluster.add_process();
  const ObjectId a = cluster.new_object(p0);
  cluster.add_root(p0, a);
  cluster.persist(p0);

  std::string bytes = cluster.image(p0);
  bytes[bytes.size() / 2] ^= 0x40;  // bit flip in the payload
  cluster.set_image(p0, bytes);

  cluster.kill(p0);
  EXPECT_FALSE(cluster.restart(p0));  // empty restart, not corrupt state
  EXPECT_EQ(cluster.process(p0).heap().size(), 0u);
  EXPECT_EQ(cluster.network().metrics().get("cluster.restart_image_rejected"),
            1u);
}

TEST(Restart, StaleImageIsRejectedByThePersistEpochGuard) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  cluster.add_process();
  const ObjectId a = cluster.new_object(p0);
  cluster.add_root(p0, a);
  cluster.persist(p0);
  const std::string old_image = cluster.image(p0);

  const ObjectId b = cluster.new_object(p0);
  cluster.add_ref(p0, a, b);
  cluster.persist(p0);           // records the newer mutation epoch
  cluster.set_image(p0, old_image);  // ...but an old snapshot got swapped in

  cluster.kill(p0);
  EXPECT_FALSE(cluster.restart(p0));
  EXPECT_EQ(cluster.process(p0).heap().size(), 0u);
  EXPECT_EQ(cluster.network().metrics().get("cluster.restart_image_rejected"),
            1u);
}

TEST(Persist, GuardsAndImageAccess) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  EXPECT_THROW(cluster.persist(ProcessId{7}), std::out_of_range);
  EXPECT_THROW((void)cluster.image(ProcessId{7}), std::out_of_range);
  cluster.persist(p0);
  EXPECT_TRUE(cluster.has_image(p0));
  EXPECT_TRUE(obs::check_image(cluster.image(p0)).empty());
  cluster.add_process();
  cluster.kill(p0);
  EXPECT_THROW(cluster.persist(p0), std::logic_error);
  EXPECT_TRUE(cluster.has_image(p0));  // the image survives the crash
}

// ---- Leases ----------------------------------------------------------------

TEST(Lease, ScionExpiresExactlyAtTheTimeout) {
  Cluster cluster{leased_config(8)};
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.kill(w.p0);
  const std::uint64_t heard = cluster.process(w.p1).last_heard(w.p0);

  // One step short of the boundary: the lease still holds.
  while (cluster.now() + 1 < heard + 8) cluster.step();
  EXPECT_TRUE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));
  EXPECT_EQ(cluster.process(w.p1).metrics().get("gc.lease_expirations"), 0u);

  cluster.step();  // now == heard + timeout: expiry fires
  EXPECT_FALSE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));
  EXPECT_EQ(cluster.process(w.p1).metrics().get("gc.lease_expirations"), 1u);
}

TEST(Lease, HeartbeatsKeepLiveReachablePeersFromExpiring) {
  Cluster cluster{leased_config(6)};
  const RemoteRefWorld w = build_remote_ref(cluster);
  for (int i = 0; i < 40; ++i) cluster.step();
  EXPECT_TRUE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));
  EXPECT_EQ(cluster.process(w.p1).metrics().get("gc.lease_expirations"), 0u);
}

TEST(Lease, DisabledByDefaultADeadOwnerPinsItsScions) {
  Cluster cluster;  // lease_timeout = 0
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.kill(w.p0);
  for (int i = 0; i < 60; ++i) cluster.step();
  EXPECT_TRUE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));
  EXPECT_EQ(cluster.process(w.p1).metrics().get("gc.lease_expirations"), 0u);
}

TEST(Lease, RestartOneStepBeforeExpiryRenewsAndLosesNothing) {
  Cluster cluster{leased_config(8)};
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.persist_all();
  cluster.kill(w.p0);
  const std::uint64_t heard = cluster.process(w.p1).last_heard(w.p0);
  while (cluster.now() + 1 < heard + 8) cluster.step();

  EXPECT_TRUE(cluster.restart(w.p0));
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.process(w.p1).metrics().get("gc.lease_expirations"), 0u);
  EXPECT_TRUE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));
  EXPECT_TRUE(cluster.process(w.p0).heap().roots().contains(w.x));
  cluster.run_full_gc();
  EXPECT_TRUE(cluster.process(w.p1).has_replica(w.y));  // y stays live
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
}

TEST(Lease, PermanentlyDeadOwnerFloatingGarbageDrainsToZero) {
  Cluster cluster{leased_config(8)};
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.kill(w.p0);  // never comes back

  for (int i = 0; i < 12; ++i) cluster.step();  // past the lease
  cluster.run_full_gc();
  // Without the lease path y (anchored only by the dead owner's scion)
  // would float forever; with it, the live side drains completely.
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
  EXPECT_TRUE(obs::check_cluster(cluster).ok())
      << obs::check_cluster(cluster).to_string();
}

TEST(Lease, RestartAfterExpiryReRegistersAndRebinds) {
  Cluster cluster{leased_config(8)};
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.persist_all();
  cluster.kill(w.p0);
  for (int i = 0; i < 12; ++i) cluster.step();  // lease expired
  ASSERT_FALSE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));

  EXPECT_TRUE(cluster.restart(w.p0));
  cluster.run_until_quiescent();
  // Re-registration + rebind restored the anchor before any further
  // reclamation could act on the returned process's behalf.
  EXPECT_TRUE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));
  cluster.run_full_gc();
  EXPECT_TRUE(cluster.process(w.p1).has_replica(w.y));
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
}

// ---- Partitions ------------------------------------------------------------

TEST(Partition, CrossGroupTrafficIsDroppedDeterministically) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);

  cluster.partition({{p0}, {p1}});
  EXPECT_TRUE(cluster.partitioned());
  cluster.propagate(x, p0, p1);
  EXPECT_EQ(cluster.network().in_flight(), 0u);
  EXPECT_GE(cluster.network().metrics().get("net.dropped.Propagate"), 1u);
  EXPECT_FALSE(cluster.process(p1).has_replica(x));
}

TEST(Partition, InstallingTheMaskPurgesCrossingInFlightTraffic) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.propagate(x, p0, p1);
  ASSERT_GT(cluster.network().in_flight(), 0u);

  cluster.partition({{p0}, {p1}});
  EXPECT_EQ(cluster.network().in_flight(), 0u);
}

TEST(Partition, HealRedeliversNothing) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.partition({{p0}, {p1}});
  cluster.propagate(x, p0, p1);  // lost

  const std::uint64_t delivered_before =
      cluster.network().metrics().get("net.delivered.Propagate");
  cluster.heal();
  EXPECT_FALSE(cluster.partitioned());
  // Loss semantics: nothing queued, nothing re-delivered by the heal
  // itself (reconciliation sends *new* messages, from this step on).
  EXPECT_EQ(cluster.network().metrics().get("net.delivered.Propagate"),
            delivered_before);
  EXPECT_FALSE(cluster.process(p1).has_replica(x));
}

TEST(Partition, HealReconvergesStubScionStateAcrossTheCut) {
  Cluster cluster{leased_config(6)};
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.partition({{w.p0}, {w.p1}});
  // Long enough that both sides lease-expire each other.
  for (int i = 0; i < 20; ++i) cluster.step();
  ASSERT_FALSE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));

  cluster.heal();
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.process(w.p1).scions().contains(rm::ScionKey{w.p0, w.y}));
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
  EXPECT_TRUE(obs::check_cluster(cluster).ok())
      << obs::check_cluster(cluster).to_string();
}

// ---- Crashes during detection ---------------------------------------------

TEST(Detection, CrashMidDetectionIsSafeAndAccounted) {
  Cluster cluster;
  const auto fig = workload::build_figure2(cluster);
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(fig.p1, fig.x).has_value());
  cluster.step();  // CDMs on the wire
  cluster.kill(fig.p3);

  const auto status = cluster.run_until_quiescent(200);
  EXPECT_TRUE(status.quiescent);
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
  // Banked CDM accounting: no false conservation errors from the crash.
  EXPECT_EQ(cluster.audit().errors(), 0u) << cluster.audit().to_string();
}

// ---- Oracle under faults ---------------------------------------------------

TEST(OracleFaults, ChainsIntoDeadProcessesAreNotViolations) {
  Cluster cluster;
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.kill(w.p1);
  // x (live, rooted) holds a reference resolvable only through the dead
  // p1; the oracle must treat the unobservable side optimistically.
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty())
      << report.violations.front();
  (void)w;
}

// ---- Offline consistency checker ------------------------------------------

TEST(Checker, CleanClusterPassesWithRealCoverage) {
  Cluster cluster;
  const RemoteRefWorld w = build_remote_ref(cluster);
  (void)w;
  const auto report = obs::check_cluster(cluster);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(report.checked_refs, 0u);
  EXPECT_GT(report.checked_stubs, 0u);
  EXPECT_GT(report.checked_scions, 0u);
}

TEST(Checker, DetectsAManuallyCorruptedScionTable) {
  Cluster cluster;
  const RemoteRefWorld w = build_remote_ref(cluster);
  // Simulated corruption: the scion vanishes while its stub remains.
  cluster.process(w.p1).scions().erase(rm::ScionKey{w.p0, w.y});
  const auto report = obs::check_cluster(cluster);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.errors(), 1u);
}

TEST(Checker, DetectsScionsThatOutliveTheirLease) {
  Cluster cluster{leased_config(8)};
  const RemoteRefWorld w = build_remote_ref(cluster);
  cluster.kill(w.p0);
  for (int i = 0; i < 12; ++i) cluster.step();
  // Re-plant an expired-owner scion behind the sweep's back.
  auto& scions = cluster.process(w.p1).scions();
  rm::Scion ghost;
  ghost.key = rm::ScionKey{w.p0, w.y};
  scions.emplace(ghost.key, ghost);
  const auto report = obs::check_cluster(cluster);
  EXPECT_FALSE(report.ok());
  EXPECT_GE(report.errors(), 1u);
}

// ---- FaultPlan -------------------------------------------------------------

TEST(FaultPlan, RandomPlansAreDeterministicPerSeed) {
  const std::vector<ProcessId> pids{ProcessId{0}, ProcessId{1}, ProcessId{2},
                                    ProcessId{3}};
  workload::FaultPlanSpec spec;
  spec.seed = 77;
  spec.kills = 4;
  spec.partitions = 2;
  const auto a = workload::FaultPlan::random(pids, spec);
  const auto b = workload::FaultPlan::random(pids, spec);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].at_step, b.events[i].at_step);
    EXPECT_EQ(a.events[i].kind, b.events[i].kind);
    EXPECT_EQ(a.events[i].pid, b.events[i].pid);
  }
  spec.seed = 78;
  const auto c = workload::FaultPlan::random(pids, spec);
  bool differs = a.events.size() != c.events.size();
  for (std::size_t i = 0; !differs && i < a.events.size(); ++i) {
    differs = a.events[i].at_step != c.events[i].at_step ||
              a.events[i].kind != c.events[i].kind ||
              a.events[i].pid != c.events[i].pid;
  }
  EXPECT_TRUE(differs);
}

TEST(FaultPlan, RunnerGuardsKeepArbitrarySchedulesLegal) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  workload::FaultPlan plan;
  using K = workload::FaultEvent::Kind;
  plan.events = {
      {0, K::kHeal, kNoProcess, {}},       // no partition: skipped
      {0, K::kRestart, p0, {}},            // alive: skipped
      {0, K::kKill, p0, {}},               // applied
      {0, K::kKill, p0, {}},               // already dead: skipped
      {0, K::kKill, p1, {}},               // last live process: skipped
      {0, K::kPersist, p0, {}},            // dead: skipped
      {0, K::kRestart, p0, {}},            // applied
  };
  workload::FaultPlanRunner runner{cluster, plan};
  runner.poll();
  EXPECT_TRUE(runner.done());
  EXPECT_EQ(runner.applied(), 2u);
  EXPECT_EQ(runner.skipped(), 5u);
  EXPECT_TRUE(cluster.is_alive(p0));
  EXPECT_TRUE(cluster.is_alive(p1));
}

TEST(FaultPlan, FinishHealsAndRestartsEverything) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  workload::FaultPlan plan;
  using K = workload::FaultEvent::Kind;
  plan.events = {
      {2, K::kKill, p0, {}},
      {4, K::kPartition, kNoProcess, {{p1}, {p2}}},
  };
  workload::FaultPlanRunner runner{cluster, plan};
  for (int i = 0; i < 6; ++i) {
    cluster.step();
    runner.poll();
  }
  ASSERT_FALSE(cluster.is_alive(p0));
  ASSERT_TRUE(cluster.partitioned());
  runner.finish();
  EXPECT_FALSE(cluster.partitioned());
  EXPECT_TRUE(cluster.is_alive(p0));
  EXPECT_EQ(cluster.dead_process_ids().size(), 0u);
}

}  // namespace
}  // namespace rgc
