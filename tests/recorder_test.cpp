// Flight recorder & replay tests (obs/recorder.h, obs/replay.h): ring
// wrap/overwrite accounting, `.rgcrec` round-trip and corruption rejection,
// byte-identical recordings across worker-pool widths, live replay diffing
// with an injected perturbation, exact divergence bisection, the quiescence
// gauges, and the typed recovery trace instants.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <fstream>
#include <iterator>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/cluster.h"
#include "obs/recorder.h"
#include "obs/replay.h"
#include "rm/process.h"
#include "util/trace.h"
#include "workload/random_mutator.h"

namespace rgc {
namespace {

using obs::ChaosRunSpec;
using obs::FlightRecorder;
using obs::RecEvent;
using obs::RecKind;
using obs::RecorderConfig;
using obs::RecordedRun;
using obs::RecStamp;

/// The canonical 16-process chaos recording (default ChaosRunSpec).  The
/// run is deterministic, so one execution serves every test that needs it.
const std::string& default_recording() {
  static const std::string bytes = obs::record_chaos_run(ChaosRunSpec{});
  return bytes;
}

const RecordedRun& default_run() {
  static const RecordedRun run = *FlightRecorder::decode(default_recording());
  return run;
}

// ---- Ring mechanics --------------------------------------------------------

TEST(RecorderTest, RingWrapKeepsNewestAndCountsOverwrites) {
  FlightRecorder rec{RecorderConfig{4}};
  for (std::uint64_t i = 0; i < 10; ++i) {
    rec.fault(RecKind::kKill, ProcessId{1}, i, 0);
  }
  EXPECT_EQ(rec.appended(), 10u);
  EXPECT_EQ(rec.depth(), 4u);    // one ring, capacity 4
  EXPECT_EQ(rec.dropped(), 6u);  // the 6 oldest were overwritten

  const auto run = FlightRecorder::decode(rec.encode(RecStamp{}));
  ASSERT_TRUE(run.has_value());
  ASSERT_EQ(run->rings.size(), 1u);
  const obs::RecRing& ring = run->rings[0];
  EXPECT_EQ(ring.pid, 1u);
  EXPECT_EQ(ring.dropped, 6u);
  ASSERT_EQ(ring.events.size(), 4u);
  // Oldest-first unwrap: the survivors are appends 6..9, in order.
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(ring.events[i].a, 6 + i);
    EXPECT_EQ(ring.events[i].seq, 6 + i);
  }
}

TEST(RecorderTest, MetricsGaugesTrackRingState) {
  FlightRecorder rec{RecorderConfig{2}};
  rec.sweep(ProcessId{0}, 3, 30);
  rec.sweep(ProcessId{1}, 4, 40);
  rec.sweep(ProcessId{0}, 5, 50);  // overwrites nothing yet (cap 2 per ring)
  EXPECT_EQ(rec.metrics().gauge_value("recorder.capacity"), 2u);
  EXPECT_EQ(rec.metrics().gauge_value("recorder.appended_total"), 3u);
  EXPECT_EQ(rec.metrics().gauge_value("recorder.depth"), 3u);
  rec.sweep(ProcessId{0}, 6, 60);  // P0's ring wraps
  EXPECT_EQ(rec.metrics().gauge_value("recorder.dropped_total"), 1u);
}

TEST(RecorderTest, RingAccountingSurvivesEventSkipJumps) {
  // Cluster::advance may leap hundreds of idle steps at once; the ring
  // accounting (appended == depth + dropped, per-ring wrap behaviour) must
  // come out identical to per-step execution even when the ring is small
  // enough to wrap many times mid-run.
  const auto drive = [](bool event_skip) {
    core::ClusterConfig cfg;
    cfg.record_capacity = 8;  // tiny rings: every burst wraps them
    core::Cluster cluster{cfg};
    std::vector<ProcessId> pids;
    for (int i = 0; i < 3; ++i) pids.push_back(cluster.add_process());
    std::vector<ObjectId> children;
    for (int i = 0; i < 3; ++i) {
      const ObjectId parent = cluster.new_object(pids[i]);
      const ObjectId child = cluster.new_object(pids[i]);
      cluster.add_root(pids[i], parent);
      cluster.add_ref(pids[i], parent, child);
      cluster.propagate(parent, pids[i], pids[(i + 1) % 3]);
      children.push_back(child);
    }
    for (int s = 0; s < 10; ++s) cluster.step();
    // Traffic bursts separated by long idle gaps the scheduler can skip;
    // each collect_all appends sweep events on top of transport events.
    for (int round = 0; round < 6; ++round) {
      cluster.invoke(pids[(round + 1) % 3], children[round % 3],
                     /*root_steps=*/2 + round % 3);
      cluster.collect_all();
      if (event_skip) {
        cluster.advance(211);
      } else {
        for (int s = 0; s < 211; ++s) cluster.step();
      }
    }
    const FlightRecorder* rec = cluster.recorder();
    struct Accounting {
      std::uint64_t appended, dropped, depth;
      std::string bytes;
    };
    return Accounting{rec->appended(), rec->dropped(), rec->depth(),
                      rec->encode(RecStamp{})};
  };

  const auto a = drive(/*event_skip=*/false);
  const auto b = drive(/*event_skip=*/true);
  EXPECT_GT(a.appended, 0u);
  EXPECT_GT(a.dropped, 0u) << "capacity 8 must wrap under this workload";
  // Conservation on both sides, and identical accounting across schedules.
  EXPECT_EQ(a.appended, a.depth + a.dropped);
  EXPECT_EQ(b.appended, b.depth + b.dropped);
  EXPECT_EQ(a.appended, b.appended);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_EQ(a.depth, b.depth);
  EXPECT_EQ(a.bytes, b.bytes);
}

// ---- Serialization ---------------------------------------------------------

RecStamp sample_stamp() {
  RecStamp stamp;
  stamp.seed = 42;
  stamp.processes = 3;
  stamp.drop_bits = std::bit_cast<std::uint64_t>(0.25);
  stamp.dup_bits = std::bit_cast<std::uint64_t>(0.01);
  stamp.max_delay = 5;
  stamp.lease_timeout = 48;
  stamp.rounds = 9;
  stamp.capacity = 16;
  return stamp;
}

TEST(RecorderTest, EncodeDecodeRoundTrip) {
  FlightRecorder rec{RecorderConfig{16}};
  rec.phase(obs::kPhaseSnapshotAll, 3);
  rec.sweep(ProcessId{0}, 2, 100);
  rec.reclaim_decision(ProcessId{1}, ProcessId{2}, ObjectId{77});
  rec.lease_expiry(ProcessId{2}, 4);
  rec.fault(RecKind::kKill, ProcessId{1});
  rec.fault(RecKind::kRestart, ProcessId{1}, 2, 1);
  rec.audit_error(1);

  const RecStamp stamp = sample_stamp();
  const auto run = FlightRecorder::decode(rec.encode(stamp));
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->stamp, stamp);
  EXPECT_EQ(run->appended, 7u);
  EXPECT_EQ(run->dropped, 0u);
  ASSERT_EQ(run->events.size(), 7u);
  // The merge is ordered by global seq — the exact append order.
  for (std::uint64_t i = 0; i < run->events.size(); ++i) {
    EXPECT_EQ(run->events[i].seq, i);
  }
  EXPECT_EQ(run->events[2].kind,
            static_cast<std::uint8_t>(RecKind::kReclaim));
  EXPECT_EQ(run->events[2].a, 77u);
  EXPECT_EQ(run->events[2].peer, 2u);
  // describe() renders every kind without the transport intern table.
  for (const RecEvent& ev : run->events) {
    EXPECT_FALSE(obs::describe(ev, run->kinds).empty());
  }
}

TEST(RecorderTest, DecodeRejectsCorruption) {
  FlightRecorder rec{RecorderConfig{8}};
  rec.sweep(ProcessId{0}, 1, 10);
  std::string bytes = rec.encode(sample_stamp());
  ASSERT_TRUE(FlightRecorder::decode(bytes).has_value());

  EXPECT_FALSE(FlightRecorder::decode(std::string{}).has_value());
  EXPECT_FALSE(FlightRecorder::decode(bytes.substr(0, 10)).has_value());
  EXPECT_FALSE(
      FlightRecorder::decode(bytes.substr(0, bytes.size() - 3)).has_value());
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x40;  // checksum must catch a single bit
  EXPECT_FALSE(FlightRecorder::decode(flipped).has_value());
  std::string garbage(bytes.size(), 'x');
  EXPECT_FALSE(FlightRecorder::decode(garbage).has_value());
}

TEST(RecorderTest, DumpRecordingWritesDecodableFile) {
  FlightRecorder rec{RecorderConfig{8}};
  rec.sweep(ProcessId{2}, 5, 100);
  const std::string path = testing::TempDir() + "recorder_dump.rgcrec";
  ASSERT_TRUE(obs::dump_recording(rec, sample_stamp(), path));

  std::ifstream is{path, std::ios::binary};
  ASSERT_TRUE(is.good());
  const std::string bytes{std::istreambuf_iterator<char>(is),
                          std::istreambuf_iterator<char>()};
  const auto run = FlightRecorder::decode(bytes);
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->stamp.seed, 42u);
  ASSERT_EQ(run->events.size(), 1u);
  EXPECT_EQ(run->events[0].pid, 2u);
}

// ---- Live reference diffing ------------------------------------------------

TEST(RecorderTest, ReferenceDiffLatchesFirstMismatch) {
  FlightRecorder first{RecorderConfig{8}};
  first.sweep(ProcessId{1}, 1, 10);
  first.sweep(ProcessId{1}, 2, 20);
  const auto reference = FlightRecorder::decode(first.encode(RecStamp{}));
  ASSERT_TRUE(reference.has_value());

  FlightRecorder live{RecorderConfig{8}};
  live.set_reference(&*reference);
  live.sweep(ProcessId{1}, 1, 10);  // matches
  EXPECT_FALSE(live.divergence().found);
  live.sweep(ProcessId{1}, 3, 20);  // reclaimed differs
  ASSERT_TRUE(live.divergence().found);
  EXPECT_FALSE(live.divergence().extra);
  EXPECT_EQ(live.divergence().seq, 1u);
  EXPECT_EQ(live.divergence().expected.a, 2u);
  EXPECT_EQ(live.divergence().actual.a, 3u);
  // The latch holds the FIRST divergence through later appends.
  live.sweep(ProcessId{1}, 9, 90);
  EXPECT_EQ(live.divergence().seq, 1u);
}

TEST(RecorderTest, ReferenceDiffFlagsEventsPastRecordedEnd) {
  FlightRecorder first{RecorderConfig{8}};
  first.sweep(ProcessId{1}, 1, 10);
  const auto reference = FlightRecorder::decode(first.encode(RecStamp{}));
  ASSERT_TRUE(reference.has_value());

  FlightRecorder live{RecorderConfig{8}};
  live.set_reference(&*reference);
  live.sweep(ProcessId{1}, 1, 10);
  live.sweep(ProcessId{1}, 2, 20);  // the reference ended before this
  ASSERT_TRUE(live.divergence().found);
  EXPECT_TRUE(live.divergence().extra);
  EXPECT_EQ(live.divergence().seq, 1u);
}

// ---- Deterministic replay over the chaos workload --------------------------

TEST(RecorderTest, ChaosRecordingIsByteIdenticalAcrossThreadCounts) {
  const std::string& serial = default_recording();
  ASSERT_FALSE(serial.empty());

  ChaosRunSpec wide;
  wide.threads = 4;
  const std::string parallel = obs::record_chaos_run(wide);
  EXPECT_EQ(serial, parallel)
      << "recordings must not depend on ClusterConfig::threads";

  const RecordedRun& run = default_run();
  EXPECT_EQ(run.stamp.processes, 16u);
  EXPECT_GT(run.events.size(), 100u);  // chaos produced real traffic
  EXPECT_GT(run.kinds.size(), 0u);     // transport kinds were interned
}

TEST(RecorderTest, EventSkipSchedulingIsByteIdenticalToPerStep) {
  // The discrete-event scheduler (Cluster::advance / run_until_quiescent)
  // promises a schedule observably identical to step()-by-step execution.
  // The flight recorder sees every transport event, GC phase, lease expiry
  // and audit at its exact virtual step, so byte-identical recordings are
  // the strongest available witness of that promise.
  const auto drive = [](bool event_skip) {
    core::ClusterConfig cfg;
    cfg.lease_timeout = 48;  // heartbeat + lease clamps in play
    core::Cluster cluster{cfg};
    std::vector<ProcessId> pids;
    for (int i = 0; i < 4; ++i) pids.push_back(cluster.add_process());
    // Each process exports a parent holding a child: the receiver gets a
    // replica of the parent plus a stub for the enclosed child — the stub
    // is what makes the child remotely invocable.
    std::vector<ObjectId> children;
    for (int i = 0; i < 4; ++i) {
      const ObjectId parent = cluster.new_object(pids[i]);
      const ObjectId child = cluster.new_object(pids[i]);
      cluster.add_root(pids[i], parent);
      cluster.add_ref(pids[i], parent, child);
      cluster.propagate(parent, pids[i], pids[(i + 1) % 4]);
      children.push_back(child);
    }
    // Deliver the propagations identically in both modes (short, busy).
    for (int s = 0; s < 10; ++s) cluster.step();
    // Bursts of traffic (invocations pin transient roots with staggered
    // TTLs) separated by long idle stretches the scheduler may skip.
    for (int round = 0; round < 5; ++round) {
      cluster.invoke(pids[(round + 1) % 4], children[round % 4],
                     /*root_steps=*/3 + round);
      if (event_skip) {
        cluster.advance(97);
      } else {
        for (int s = 0; s < 97; ++s) cluster.step();
      }
    }
    cluster.collect_all();
    if (event_skip) {
      cluster.run_until_quiescent(1000);
    } else {
      std::uint64_t steps = 0;
      while (!cluster.network().idle() && steps++ < 1000) cluster.step();
    }
    return cluster.recorder()->encode(sample_stamp());
  };

  const std::string per_step = drive(/*event_skip=*/false);
  const std::string skipped = drive(/*event_skip=*/true);
  ASSERT_FALSE(per_step.empty());
  EXPECT_EQ(per_step, skipped)
      << "event-skip scheduling changed the observable event stream";
}

TEST(RecorderTest, ReplayReproducesRecordingByteForByte) {
  const obs::ReplayOutcome outcome =
      obs::replay_recording(default_recording(), /*threads=*/4);
  ASSERT_TRUE(outcome.loaded) << outcome.error;
  EXPECT_FALSE(outcome.divergence.found) << outcome.report;
  EXPECT_TRUE(outcome.byte_identical) << outcome.report;
  EXPECT_NE(outcome.report.find("byte-identical"), std::string::npos);
}

TEST(RecorderTest, ReplayCatchesInjectedPerturbation) {
  const obs::ReplayOutcome outcome = obs::replay_recording(
      default_recording(), /*threads=*/1, /*perturb_step=*/40);
  ASSERT_TRUE(outcome.loaded) << outcome.error;
  EXPECT_TRUE(outcome.divergence.found)
      << "an extra step at t>=40 must shift the event stream";
  EXPECT_FALSE(outcome.byte_identical);
  EXPECT_NE(outcome.report.find("DIVERGED"), std::string::npos);
  // The divergence carries full causal context for the report.
  EXPECT_NE(outcome.report.find("actual:"), std::string::npos);
}

TEST(RecorderTest, ReplayRejectsCorruptRecording) {
  std::string bytes = default_recording();
  bytes[bytes.size() / 3] ^= 0x01;
  const obs::ReplayOutcome outcome = obs::replay_recording(bytes);
  EXPECT_FALSE(outcome.loaded);
  EXPECT_FALSE(outcome.error.empty());
}

// ---- Bisection -------------------------------------------------------------

TEST(RecorderTest, BisectionReportsIdenticalRecordings) {
  const obs::BisectOutcome outcome =
      obs::bisect_divergence(default_run(), default_run());
  EXPECT_TRUE(outcome.identical);
  EXPECT_NE(outcome.report.find("identical"), std::string::npos);
}

TEST(RecorderTest, BisectionLandsOnTheExactMutatedEvent) {
  const RecordedRun& a = default_run();
  RecordedRun b = a;
  const std::size_t k = b.events.size() / 2;
  b.events[k].a ^= 0x1;  // single-field mutation at a known index

  const obs::BisectOutcome outcome = obs::bisect_divergence(a, b);
  EXPECT_FALSE(outcome.identical);
  EXPECT_EQ(outcome.index, k);
  EXPECT_EQ(outcome.seq, a.events[k].seq);
  EXPECT_GT(outcome.probes, 0u);  // it binary-searched, not scanned
  EXPECT_LE(outcome.probes, 64u);
}

TEST(RecorderTest, BisectionHandlesStrictPrefix) {
  const RecordedRun& a = default_run();
  RecordedRun b = a;
  const std::size_t k = b.events.size() - 3;
  b.events.resize(k);

  const obs::BisectOutcome outcome = obs::bisect_divergence(a, b);
  EXPECT_FALSE(outcome.identical);
  EXPECT_EQ(outcome.index, k);
  EXPECT_NE(outcome.report.find("only in A"), std::string::npos);
}

// ---- Satellite: quiescence gauges ------------------------------------------

TEST(RecorderTest, QuiescenceGaugesExported) {
  core::ClusterConfig cfg;
  cfg.net.seed = 7;
  core::Cluster cluster{cfg};
  for (int i = 0; i < 3; ++i) cluster.add_process();
  workload::MutatorSpec spec;
  spec.seed = 11;
  workload::RandomMutator mutator{cluster, spec};
  mutator.run(60);
  cluster.kill(cluster.process_ids()[2]);
  cluster.run_until_quiescent();

  const util::Metrics& m = cluster.network().metrics();
  EXPECT_EQ(m.gauge_value("cluster.quiescence_dead_pids"), 1u);
  EXPECT_EQ(m.gauge_value("cluster.quiescence_truncated"), 0u);
}

// ---- Satellite: typed recovery trace instants ------------------------------

TEST(RecorderTest, RecoveryProtocolEmitsTypedInstants) {
  util::Timeline timeline;
  util::Trace::instance().set_sink(&timeline);
  ChaosRunSpec spec;
  spec.seed = 99;
  spec.processes = 6;
  spec.rounds = 40;
  (void)obs::record_chaos_run(spec);
  util::Trace::instance().set_sink(nullptr);

  std::set<std::string_view> instants;
  for (const util::TraceEvent& ev : timeline.events()) {
    if (ev.type == util::TraceEventType::kInstant) instants.insert(ev.name);
  }
  // Kills + restarts force the recovery protocol; its legs must show up as
  // typed instants in the timeline (satellite: Recover/Rebind/PropSync).
  EXPECT_TRUE(instants.contains("rm.recover"))
      << "no rm.recover instant traced across a kill/restart chaos run";
}

}  // namespace
}  // namespace rgc
