// Unit tests: the omniscient oracle — Union-Rule liveness closure,
// integrity checking, completeness predicate.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/figures.h"

namespace rgc::core {
namespace {

TEST(Oracle, EmptyClusterIsHealthy) {
  Cluster cluster;
  cluster.add_process();
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.live_objects.empty());
  EXPECT_TRUE(report.existing_objects.empty());
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(Oracle::fully_collected(cluster, report));
}

TEST(Oracle, RootedObjectIsLive) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  cluster.add_root(a, x);
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.is_live(x));
  EXPECT_TRUE(report.garbage_objects().empty());
}

TEST(Oracle, UnrootedObjectIsGarbage) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  const auto report = Oracle::analyze(cluster);
  EXPECT_FALSE(report.is_live(x));
  EXPECT_EQ(report.garbage_objects(), (std::set<ObjectId>{x}));
  EXPECT_FALSE(Oracle::fully_collected(cluster, report));
}

TEST(Oracle, LivenessClosesOverUnionOfReplicas) {
  // The Figure-1 shape: liveness flows through the replica that holds the
  // reference even when that replica is locally unreachable.
  Cluster cluster;
  const auto f = workload::build_figure1(cluster);
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.is_live(f.x));
  EXPECT_TRUE(report.is_live(f.z))
      << "Z is live via the union of X's replicas";
}

TEST(Oracle, GarbageCycleIsNotLive) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const auto report = Oracle::analyze(cluster);
  EXPECT_FALSE(report.is_live(f.x));
  EXPECT_FALSE(report.is_live(f.y));
  EXPECT_TRUE(report.garbage_objects().contains(f.x));
  EXPECT_FALSE(Oracle::fully_collected(cluster, report));
}

TEST(Oracle, TransientRootsCountAsRoots) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  cluster.process(a).pin_transient_root(x, 5);
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.is_live(x));
}

TEST(Oracle, DetectsDanglingLiveStub) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ProcessId b = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  const ObjectId y = cluster.new_object(a);
  cluster.add_root(a, x);
  cluster.add_ref(a, x, y);
  cluster.propagate(x, a, b);
  cluster.run_until_quiescent();
  cluster.add_root(b, x);

  // Sabotage: destroy y's replica behind the collectors' backs.
  cluster.process(a).heap().erase(y);
  const auto report = Oracle::analyze(cluster);
  EXPECT_FALSE(report.violations.empty());
}

TEST(Oracle, DetectsUnresolvableLiveReference) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  const ObjectId y = cluster.new_object(a);
  cluster.add_root(a, x);
  cluster.add_ref(a, x, y);
  // Sabotage: delete y locally; the live reference cannot resolve anywhere.
  cluster.process(a).heap().erase(y);
  const auto report = Oracle::analyze(cluster);
  EXPECT_FALSE(report.violations.empty());
}

TEST(Oracle, FullyCollectedRejectsLeftoverGcStructures) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ProcessId b = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  cluster.propagate(x, a, b);
  cluster.run_until_quiescent();
  // Remove the replicas by hand but leave the prop entries dangling.
  cluster.process(a).heap().erase(x);
  cluster.process(b).heap().erase(x);
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.garbage_objects().empty());
  EXPECT_FALSE(Oracle::fully_collected(cluster, report))
      << "prop entries still name the dead object";
}

TEST(Oracle, HealthyAfterFullGc) {
  Cluster cluster;
  workload::build_figure3(cluster);
  cluster.run_full_gc();
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_TRUE(Oracle::fully_collected(cluster, report));
}

}  // namespace
}  // namespace rgc::core
