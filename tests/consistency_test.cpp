// Cross-validation tests: independent components that compute overlapping
// information must agree — summarization vs. the LGC's trace families,
// stress sweeps over mesh sizes, determinism across equal runs.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "gc/cycle/summary.h"
#include "gc/lgc/lgc.h"
#include "workload/mesh.h"
#include "workload/random_mutator.h"

namespace rgc {
namespace {

using core::Cluster;
using core::ClusterConfig;

TEST(Consistency, SummaryLocalReachAgreesWithLgcRootTrace) {
  // Drive random states; at each checkpoint, summarize and collect must
  // agree on which replicated objects are root-reachable.
  for (std::uint64_t seed : {11u, 22u, 33u}) {
    ClusterConfig cfg;
    cfg.net.seed = seed;
    Cluster cluster{cfg};
    for (int i = 0; i < 3; ++i) cluster.add_process();
    workload::MutatorSpec spec;
    spec.seed = seed;
    spec.w_collect = 0;
    workload::RandomMutator mutator{cluster, spec};

    for (int checkpoint = 0; checkpoint < 5; ++checkpoint) {
      mutator.run(80);
      cluster.run_until_quiescent();
      for (ProcessId pid : cluster.process_ids()) {
        const gc::ProcessSummary s = gc::summarize(cluster.process(pid));
        gc::LgcConfig lgc_cfg;
        lgc_cfg.drop_dead_stubs = false;  // keep state untouched
        gc::LgcConfig inspect = lgc_cfg;
        const auto r = gc::Lgc::collect(cluster.process(pid), inspect);
        for (const auto& [obj, rep] : s.replicas) {
          auto it = r.object_reach.find(obj);
          const bool lgc_root =
              it != r.object_reach.end() && (it->second & gc::kReachRoot);
          ASSERT_EQ(rep.local_reach, lgc_root)
              << "seed " << seed << " checkpoint " << checkpoint << " "
              << to_string(Replica{obj, pid});
        }
      }
    }
  }
}

TEST(Consistency, SummaryInversionIsSymmetric) {
  // stubs_from / scions_to are inverses: scion s reaches stub t iff t
  // lists s.  Validate over a random state.
  ClusterConfig cfg;
  cfg.net.seed = 77;
  Cluster cluster{cfg};
  for (int i = 0; i < 4; ++i) cluster.add_process();
  workload::MutatorSpec spec;
  spec.seed = 77;
  workload::RandomMutator mutator{cluster, spec};
  mutator.run(300);
  cluster.run_until_quiescent();

  for (ProcessId pid : cluster.process_ids()) {
    const gc::ProcessSummary s = gc::summarize(cluster.process(pid));
    for (const auto& [sk, scion] : s.scions) {
      for (const rm::StubKey& stub : scion.stubs_from) {
        ASSERT_TRUE(s.stubs.contains(stub));
        EXPECT_TRUE(s.stubs.at(stub).scions_to.contains(sk));
      }
    }
    for (const auto& [stub_key, stub] : s.stubs) {
      for (const rm::ScionKey& sk : stub.scions_to) {
        ASSERT_TRUE(s.scions.contains(sk));
        EXPECT_TRUE(s.scions.at(sk).stubs_from.contains(stub_key));
      }
    }
    for (const auto& [obj, rep] : s.replicas) {
      for (ObjectId other : rep.replicas_from) {
        ASSERT_TRUE(s.replicas.contains(other));
        EXPECT_TRUE(s.replicas.at(other).replicas_to.contains(obj));
      }
    }
  }
}

struct MeshSweep {
  std::size_t processes;
  std::size_t deps;
};

class MeshStress : public ::testing::TestWithParam<MeshSweep> {};

TEST_P(MeshStress, DetectsAndReclaimsAtScale) {
  const auto param = GetParam();
  Cluster cluster;
  const workload::Mesh mesh =
      workload::build_mesh(cluster, {param.processes, param.deps});
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(mesh.head_process, mesh.head).has_value());
  cluster.run_until_quiescent();
  ASSERT_GE(cluster.cycles_found().size(), 1u);
  // Unraveling the cut mesh takes one acyclic round per strand level;
  // run_full_gc drives the fixpoint however long the chain is.
  cluster.run_full_gc(128);
  EXPECT_EQ(cluster.total_objects(), 0u)
      << param.processes << "x" << param.deps;
  EXPECT_TRUE(core::Oracle::fully_collected(cluster,
                                            core::Oracle::analyze(cluster)));
}

TEST_P(MeshStress, BaselineAgreesOnVerdictAtScale) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.mode = core::DetectorMode::kBaseline;
  Cluster cluster{cfg};
  const workload::Mesh mesh =
      workload::build_mesh(cluster, {param.processes, param.deps});
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(mesh.head_process, mesh.head).has_value());
  cluster.run_until_quiescent();
  EXPECT_GE(cluster.cycles_found().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MeshStress,
                         ::testing::Values(MeshSweep{2, 30}, MeshSweep{3, 30},
                                           MeshSweep{5, 20}, MeshSweep{6, 12},
                                           MeshSweep{4, 60}),
                         [](const ::testing::TestParamInfo<MeshSweep>& info) {
                           return std::to_string(info.param.processes) + "x" +
                                  std::to_string(info.param.deps);
                         });

TEST(Consistency, IdenticalSeedsIdenticalWorlds) {
  auto world_hash = [](std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.net.seed = seed;
    cfg.net.min_delay = 1;
    cfg.net.max_delay = 4;
    Cluster cluster{cfg};
    for (int i = 0; i < 4; ++i) cluster.add_process();
    workload::MutatorSpec spec;
    spec.seed = seed + 1;
    workload::RandomMutator mutator{cluster, spec};
    mutator.run(250);
    cluster.run_until_quiescent();
    cluster.run_full_gc();
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      h = (h ^ v) * 1099511628211ull;
    };
    mix(cluster.total_objects());
    mix(cluster.metric_total("cycle.cdms_sent"));
    mix(cluster.metric_total("lgc.reclaimed"));
    mix(cluster.network().now());
    for (ProcessId pid : cluster.process_ids()) {
      mix(cluster.process(pid).heap().size());
      mix(cluster.process(pid).scions().size());
    }
    return h;
  };
  EXPECT_EQ(world_hash(5150), world_hash(5150));
  EXPECT_NE(world_hash(5150), world_hash(5151));
}

}  // namespace
}  // namespace rgc
