// Unit tests: ids, FlatSet algebra, deterministic RNG, metrics.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "util/flat_set.h"
#include "util/ids.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace rgc {
namespace {

using util::FlatSet;

TEST(Ids, ReplicaOrderingAndEquality) {
  const Replica a{ObjectId{1}, ProcessId{0}};
  const Replica b{ObjectId{1}, ProcessId{1}};
  const Replica c{ObjectId{2}, ProcessId{0}};
  EXPECT_EQ(a, (Replica{ObjectId{1}, ProcessId{0}}));
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_LT(b, c);
}

TEST(Ids, ToStringFormats) {
  EXPECT_EQ(to_string(ProcessId{3}), "P3");
  EXPECT_EQ(to_string(ObjectId{7}), "o7");
  EXPECT_EQ(to_string(Replica{ObjectId{7}, ProcessId{3}}), "o7@P3");
}

TEST(Ids, HashDistinguishesReplicas) {
  const std::hash<Replica> h;
  EXPECT_NE(h(Replica{ObjectId{1}, ProcessId{0}}),
            h(Replica{ObjectId{0}, ProcessId{1}}));
}

TEST(FlatSetTest, InsertDeduplicatesAndSorts) {
  FlatSet<int> s;
  EXPECT_TRUE(s.insert(3));
  EXPECT_TRUE(s.insert(1));
  EXPECT_FALSE(s.insert(3));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_EQ(s.items(), (std::vector<int>{1, 3}));
}

TEST(FlatSetTest, InitializerListNormalizes) {
  const FlatSet<int> s{5, 1, 5, 3, 1};
  EXPECT_EQ(s.items(), (std::vector<int>{1, 3, 5}));
}

TEST(FlatSetTest, ContainsAndErase) {
  FlatSet<int> s{1, 2, 3};
  EXPECT_TRUE(s.contains(2));
  EXPECT_TRUE(s.erase(2));
  EXPECT_FALSE(s.contains(2));
  EXPECT_FALSE(s.erase(2));
}

TEST(FlatSetTest, FromSortedUniqueAdoptsVector) {
  const FlatSet<int> s = FlatSet<int>::from_sorted_unique({1, 4, 9});
  EXPECT_EQ(s.items(), (std::vector<int>{1, 4, 9}));
  EXPECT_TRUE(s.contains(4));
  EXPECT_EQ(FlatSet<int>::from_sorted_unique({}).size(), 0u);
  // Adopted sets behave exactly like incrementally built ones.
  EXPECT_EQ(s, (FlatSet<int>{9, 1, 4}));
}

TEST(FlatSetTest, MergeIsUnion) {
  FlatSet<int> a{1, 3};
  const FlatSet<int> b{2, 3, 4};
  a.merge(b);
  EXPECT_EQ(a.items(), (std::vector<int>{1, 2, 3, 4}));
}

TEST(FlatSetTest, DifferenceAndIntersection) {
  const FlatSet<int> a{1, 2, 3, 4};
  const FlatSet<int> b{2, 4, 5};
  EXPECT_EQ(a.difference(b).items(), (std::vector<int>{1, 3}));
  EXPECT_EQ(a.intersect(b).items(), (std::vector<int>{2, 4}));
}

TEST(FlatSetTest, SubsetOf) {
  const FlatSet<int> a{1, 3};
  const FlatSet<int> b{1, 2, 3};
  EXPECT_TRUE(a.subset_of(b));
  EXPECT_FALSE(b.subset_of(a));
  EXPECT_TRUE(FlatSet<int>{}.subset_of(a));
  EXPECT_TRUE(a.subset_of(a));
}

TEST(FlatSetTest, EmptyDifferenceMeansSubset) {
  const FlatSet<int> deps{1, 2};
  const FlatSet<int> targets{1, 2, 9};
  EXPECT_TRUE(deps.difference(targets).empty());
}

TEST(Rng, DeterministicPerSeed) {
  util::Rng a{123};
  util::Rng b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  util::Rng a{1};
  util::Rng b{2};
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange) {
  util::Rng r{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversRange) {
  util::Rng r{9};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(r.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, RangeInclusive) {
  util::Rng r{11};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const auto v = r.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UnitInHalfOpenInterval) {
  util::Rng r{13};
  for (int i = 0; i < 1000; ++i) {
    const double u = r.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  util::Rng r{17};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ForkIndependence) {
  util::Rng parent{21};
  util::Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (parent.next() == child.next());
  EXPECT_LT(same, 4);
}

TEST(Metrics, AddAndGet) {
  util::Metrics m;
  EXPECT_EQ(m.get("x"), 0u);
  m.add("x");
  m.add("x", 4);
  EXPECT_EQ(m.get("x"), 5u);
}

TEST(Metrics, ResetKeepsNames) {
  util::Metrics m;
  m.add("a", 2);
  m.reset();
  EXPECT_EQ(m.get("a"), 0u);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].first, "a");
}

TEST(Metrics, SnapshotSortedByName) {
  util::Metrics m;
  m.add("zeta");
  m.add("alpha", 3);
  const auto snap = m.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].first, "alpha");
  EXPECT_EQ(snap[0].second, 3u);
  EXPECT_EQ(snap[1].first, "zeta");
}

TEST(HistogramPercentile, EmptyHistogramIsAllZero) {
  util::Histogram h;
  EXPECT_EQ(h.percentile(0.0), 0u);
  EXPECT_EQ(h.percentile(0.5), 0u);
  EXPECT_EQ(h.percentile(0.99), 0u);
  EXPECT_EQ(h.percentile(1.0), 0u);
}

TEST(HistogramPercentile, SingleValueCollapsesEveryQuantile) {
  util::Histogram h;
  h.record(42);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(h.percentile(q), 42u) << "q=" << q;
  }
}

TEST(HistogramPercentile, SingleBucketClampsToObservedRange) {
  // 100..127 all land in the [64, 127] bucket; the estimate is the bucket's
  // upper bound clamped into [min, max], so every quantile stays within
  // what was actually observed.
  util::Histogram h;
  for (std::uint64_t v = 100; v <= 120; ++v) h.record(v);
  EXPECT_EQ(h.percentile(0.0), 100u);
  EXPECT_GE(h.percentile(0.5), 100u);
  EXPECT_LE(h.percentile(0.5), 120u);
  EXPECT_EQ(h.percentile(0.99), 120u);  // bucket hi 127 clamps to max
  EXPECT_EQ(h.percentile(1.0), 120u);
}

TEST(HistogramPercentile, QuantilesOutsideUnitIntervalClampToMinMax) {
  util::Histogram h;
  h.record(3);
  h.record(900);
  EXPECT_EQ(h.percentile(-0.5), 3u);
  EXPECT_EQ(h.percentile(1.5), 900u);
}

TEST(HistogramPercentile, P99AtSaturationBucketStaysInObservedRange) {
  // Values beyond 2^32 saturate into the last bucket, whose nominal upper
  // bound (2^32 - 1) lies *below* every recorded value; the estimate must
  // clamp into [min, max] rather than report the absurd bucket bound.
  util::Histogram h;
  const std::uint64_t huge = 1ull << 40;
  for (int i = 0; i < 100; ++i) h.record(huge + static_cast<std::uint64_t>(i));
  EXPECT_GE(h.percentile(0.99), huge);
  EXPECT_LE(h.percentile(0.99), huge + 99);
  EXPECT_GE(h.percentile(0.5), huge);
  EXPECT_LE(h.percentile(0.5), huge + 99);
  EXPECT_EQ(h.percentile(1.0), huge + 99);  // q >= 1 is exactly max
  EXPECT_EQ(h.min(), huge);
  EXPECT_EQ(h.max(), huge + 99);
}

TEST(HistogramPercentile, RankFallsInTheRightBucket) {
  // 90 small values + 10 large: p50 must come from the small bucket,
  // p99 from the large one.
  util::Histogram h;
  for (int i = 0; i < 90; ++i) h.record(2);
  for (int i = 0; i < 10; ++i) h.record(1000);
  EXPECT_LE(h.percentile(0.5), 3u);
  EXPECT_GE(h.percentile(0.95), 1000u);
  EXPECT_LE(h.percentile(0.95), 1023u);
}

}  // namespace
}  // namespace rgc
