// Chaos tests: everything at once — random mutation, the background GC
// daemon, fault injection (loss, duplication, jitter) — with the oracle
// checking safety after every burst and completeness at the end.
//
// The FaultChaos suite layers the crash/recovery fault model on top
// (docs/FAULTS.md): seeded FaultPlans drive kills, restarts-from-snapshot,
// partitions and heals through the same workload.  The acceptance test
// always runs; the heavier legs are gated behind RGC_CHAOS_FAULTS=1.
//
// scripts/check.sh re-runs these with RGC_CHAOS_AUDIT=1 (audit every step),
// RGC_CHAOS_THREADS=4 and RGC_CHAOS_FAULTS=1 so the online health auditor
// and the fault layer ride along under both sanitizers; any auditor ERROR
// fails the run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "core/daemon.h"
#include "core/oracle.h"
#include "obs/check.h"
#include "workload/fault_plan.h"
#include "workload/random_mutator.h"

namespace rgc {
namespace {

using core::CandidatePolicy;
using core::Cluster;
using core::ClusterConfig;
using core::GcDaemon;
using core::Oracle;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// CI overrides: RGC_CHAOS_THREADS picks the worker-pool width,
/// RGC_CHAOS_AUDIT the scheduled audit cadence (1 = every step).
void apply_env_overrides(ClusterConfig& cfg) {
  cfg.threads = static_cast<std::size_t>(env_u64("RGC_CHAOS_THREADS", 1));
  cfg.audit_interval = env_u64("RGC_CHAOS_AUDIT", cfg.audit_interval);
}

/// Daemon scheduling for the chaos runs: adaptive deferred detection is
/// the default; RGC_CHAOS_ADAPTIVE=0 pins the legacy fixed cadence so CI
/// can audit both policies under the same fault mix.
core::DaemonConfig chaos_daemon_config() {
  core::DaemonConfig cfg;
  cfg.adaptive.enabled = env_u64("RGC_CHAOS_ADAPTIVE", 1) != 0;
  return cfg;
}

/// The decentralized termination verdict must agree with the legacy global
/// idle scan after every quiescence call — on the chaos suite this covers
/// the kill/restart/partition paths (purge refunds, frozen accounts).
::testing::AssertionResult termination_agrees(const Cluster& cluster) {
  if (cluster.termination().quiescent() != cluster.network().idle()) {
    return ::testing::AssertionFailure()
           << "verdict " << cluster.termination().quiescent()
           << " vs global idle " << cluster.network().idle();
  }
  if (cluster.termination().deficit() != cluster.network().in_flight()) {
    return ::testing::AssertionFailure()
           << "deficit " << cluster.termination().deficit() << " vs in-flight "
           << cluster.network().in_flight();
  }
  return ::testing::AssertionSuccess();
}

struct ChaosCase {
  std::uint64_t seed;
  std::size_t processes;
  double drop;
  double dup;
  std::uint32_t max_delay;
  CandidatePolicy policy;
};

class Chaos : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(Chaos, SafetyUnderEverything) {
  const ChaosCase param = GetParam();
  ClusterConfig cfg;
  cfg.net.seed = param.seed;
  cfg.net.drop_probability = param.drop;
  cfg.net.duplicate_probability = param.dup;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = param.max_delay;
  cfg.candidates = param.policy;
  cfg.candidate_threshold = 2;
  apply_env_overrides(cfg);
  Cluster cluster{cfg};
  for (std::size_t i = 0; i < param.processes; ++i) cluster.add_process();

  workload::MutatorSpec spec;
  spec.seed = param.seed * 7919 + 31;
  spec.w_collect = 0;  // the daemon collects
  spec.w_step = 5;
  workload::RandomMutator mutator{cluster, spec};
  GcDaemon daemon{cluster, chaos_daemon_config()};

  for (int burst = 0; burst < 10; ++burst) {
    mutator.run(60);
    daemon.run(25);
    cluster.run_until_quiescent();
    ASSERT_TRUE(termination_agrees(cluster))
        << "seed " << param.seed << " burst " << burst;
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty())
        << "seed " << param.seed << " burst " << burst << ": "
        << report.violations.front();
    const auto& health = cluster.audit();
    ASSERT_EQ(health.errors(), 0u)
        << "seed " << param.seed << " burst " << burst << "\n"
        << health.to_string();
  }
}

TEST_P(Chaos, EventualCompletenessOnceQuiet) {
  const ChaosCase param = GetParam();
  ClusterConfig cfg;
  cfg.net.seed = param.seed ^ 0x5a5a;
  cfg.net.drop_probability = param.drop;
  cfg.net.duplicate_probability = param.dup;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = param.max_delay;
  cfg.candidates = param.policy;
  cfg.candidate_threshold = 2;
  apply_env_overrides(cfg);
  Cluster cluster{cfg};
  for (std::size_t i = 0; i < param.processes; ++i) cluster.add_process();

  workload::MutatorSpec spec;
  spec.seed = param.seed * 104729 + 7;
  workload::RandomMutator mutator{cluster, spec};
  mutator.run(400);
  cluster.run_until_quiescent();
  ASSERT_TRUE(termination_agrees(cluster)) << "seed " << param.seed;

  bool done = false;
  for (int attempt = 0; attempt < 60 && !done; ++attempt) {
    cluster.run_full_gc(3);
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty()) << report.violations.front();
    done = report.garbage_objects().empty();
  }
  EXPECT_TRUE(done) << "seed " << param.seed;
  const auto& health = cluster.audit();
  EXPECT_EQ(health.errors(), 0u) << "seed " << param.seed << "\n"
                                 << health.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, Chaos,
    ::testing::Values(
        ChaosCase{101, 3, 0.0, 0.0, 1, CandidatePolicy::kExhaustive},
        ChaosCase{102, 4, 0.2, 0.0, 3, CandidatePolicy::kExhaustive},
        ChaosCase{103, 4, 0.0, 0.3, 4, CandidatePolicy::kExhaustive},
        ChaosCase{104, 5, 0.3, 0.2, 5, CandidatePolicy::kExhaustive},
        ChaosCase{105, 3, 0.2, 0.1, 3, CandidatePolicy::kDistance},
        ChaosCase{106, 4, 0.2, 0.1, 3, CandidatePolicy::kSuspicionAge}),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

// ---- Fault chaos: crashes, restarts, partitions under full load ----------

bool fault_legs_enabled() { return env_u64("RGC_CHAOS_FAULTS", 0) != 0; }

/// Everything a fault-chaos run observed, comparable across runs of the
/// same seed for the reproducibility guarantee.
struct FaultRunOutcome {
  std::size_t garbage{0};
  std::size_t violations{0};
  std::uint64_t audit_errors{0};
  bool checker_ok{false};
  std::size_t plan_events{0};
  std::size_t applied{0};
  std::size_t skipped{0};
  std::uint64_t crashes{0};
  std::uint64_t recoveries{0};
  std::uint64_t lease_expirations{0};
  std::uint64_t total_objects{0};
  /// Decentralized termination verdict agreed with the legacy global scan
  /// after end-of-chaos quiescence (kills, restarts and partitions landed).
  bool termination_agreed{false};
  std::string detail;

  bool operator==(const FaultRunOutcome&) const = default;
};

/// One full fault-chaos scenario: a leased cluster under random mutation
/// and the GC daemon, with a seeded FaultPlan firing kills, restarts,
/// partitions, heals and persist-alls mid-flight; then end-of-chaos
/// (heal + restart everyone), quiescence, and GC until dry.
FaultRunOutcome run_fault_chaos(std::uint64_t seed, std::size_t processes,
                                double drop, double dup,
                                std::uint32_t max_delay, bool env_overrides) {
  ClusterConfig cfg;
  cfg.net.seed = seed;
  cfg.net.drop_probability = drop;
  cfg.net.duplicate_probability = dup;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = max_delay;
  cfg.candidate_threshold = 2;
  cfg.lease_timeout = 48;
  if (env_overrides) apply_env_overrides(cfg);
  Cluster cluster{cfg};
  for (std::size_t i = 0; i < processes; ++i) cluster.add_process();

  workload::FaultPlanSpec plan_spec;
  plan_spec.seed = seed * 31 + 7;
  plan_spec.kills = 4;
  plan_spec.partitions = 1;
  plan_spec.start = 24;
  plan_spec.horizon = 360;
  const auto plan =
      workload::FaultPlan::random(cluster.process_ids(), plan_spec);
  workload::FaultPlanRunner runner{cluster, plan};

  workload::MutatorSpec spec;
  spec.seed = seed * 7919 + 31;
  spec.w_collect = 0;  // the daemon collects
  spec.w_step = 5;
  workload::RandomMutator mutator{cluster, spec};
  GcDaemon daemon{cluster, chaos_daemon_config()};

  // Interleave mutation, background GC (detection included — kills land
  // mid-detection), and the fault schedule until the plan drains.
  for (int round = 0; round < 60; ++round) {
    mutator.run(12);
    daemon.run(3);
    runner.poll();
    if (runner.done() && cluster.now() > plan_spec.start + plan_spec.horizon) {
      break;
    }
  }
  runner.finish();  // heal + restart everyone: end of chaos
  cluster.run_until_quiescent();

  bool dry = false;
  FaultRunOutcome out;
  out.termination_agreed = termination_agrees(cluster);
  for (int attempt = 0; attempt < 60 && !dry; ++attempt) {
    cluster.run_full_gc(3);
    const auto report = Oracle::analyze(cluster);
    out.violations = report.violations.size();
    if (out.violations != 0) {
      out.detail = report.violations.front();
      break;
    }
    dry = report.garbage_objects().empty();
  }
  out.garbage = Oracle::analyze(cluster).garbage_objects().size();

  const auto& health = cluster.audit();
  out.audit_errors = health.errors();
  if (out.audit_errors != 0) out.detail = health.to_string();
  const auto consistency = obs::check_cluster(cluster);
  out.checker_ok = consistency.ok();
  if (!out.checker_ok && out.detail.empty()) out.detail = consistency.to_string();

  out.plan_events = plan.events.size();
  out.applied = runner.applied();
  out.skipped = runner.skipped();
  out.crashes = cluster.network().metrics().get("cluster.crashes");
  out.recoveries = cluster.network().metrics().get("cluster.recoveries");
  out.lease_expirations = cluster.metric_total("gc.lease_expirations");
  out.total_objects = cluster.total_objects();
  return out;
}

// The headline acceptance run (always on): 16 processes, ≥3 kills landing
// mid-detection, a partition episode plus heal, restarts from snapshots —
// then the cluster must quiesce with zero dead garbage, zero oracle
// violations, zero auditor errors, and a clean offline consistency check.
TEST(FaultChaos, AcceptanceSixteenProcessFaultMix) {
  const auto out = run_fault_chaos(/*seed=*/2024, /*processes=*/16,
                                   /*drop=*/0.0, /*dup=*/0.0,
                                   /*max_delay=*/2, /*env_overrides=*/true);
  EXPECT_GE(out.crashes, 3u) << "plan applied too few kills to count";
  EXPECT_EQ(out.crashes, out.recoveries);  // everyone came back
  EXPECT_EQ(out.violations, 0u) << out.detail;
  EXPECT_EQ(out.garbage, 0u) << "floating garbage survived chaos";
  EXPECT_EQ(out.audit_errors, 0u) << out.detail;
  EXPECT_TRUE(out.checker_ok) << out.detail;
  EXPECT_TRUE(out.termination_agreed)
      << "decentralized quiescence diverged from the global scan";
}

// Same seed, same plan, same outcome — the chaos schedule is reproducible,
// so any failure above can be replayed exactly.
TEST(FaultChaos, AcceptanceRunIsSeedReproducible) {
  const auto a = run_fault_chaos(2024, 16, 0.0, 0.0, 2, /*env_overrides=*/false);
  const auto b = run_fault_chaos(2024, 16, 0.0, 0.0, 2, /*env_overrides=*/false);
  EXPECT_EQ(a, b);
  const auto c = run_fault_chaos(2025, 16, 0.0, 0.0, 2, /*env_overrides=*/false);
  EXPECT_TRUE(c.crashes != a.crashes || c.applied != a.applied ||
              c.lease_expirations != a.lease_expirations ||
              c.total_objects != a.total_objects)
      << "different seeds produced byte-identical outcomes";
}

// Heavier gated legs: the fault layer combined with message loss,
// duplication and jitter.  RGC_CHAOS_FAULTS=1 turns them on (CI runs them
// under ASan and TSan via scripts/check.sh).
class FaultChaosLegs : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(FaultChaosLegs, SafeAndCompleteUnderLossyChaos) {
  if (!fault_legs_enabled()) {
    GTEST_SKIP() << "set RGC_CHAOS_FAULTS=1 to run the heavy fault legs";
  }
  const ChaosCase param = GetParam();
  const auto out =
      run_fault_chaos(param.seed, param.processes, param.drop, param.dup,
                      param.max_delay, /*env_overrides=*/true);
  EXPECT_EQ(out.violations, 0u) << "seed " << param.seed << ": " << out.detail;
  EXPECT_EQ(out.garbage, 0u) << "seed " << param.seed;
  EXPECT_EQ(out.audit_errors, 0u) << "seed " << param.seed << "\n" << out.detail;
  EXPECT_TRUE(out.checker_ok) << "seed " << param.seed << "\n" << out.detail;
  EXPECT_TRUE(out.termination_agreed) << "seed " << param.seed;
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, FaultChaosLegs,
    ::testing::Values(ChaosCase{201, 8, 0.2, 0.0, 3, CandidatePolicy::kExhaustive},
                      ChaosCase{202, 10, 0.0, 0.2, 4, CandidatePolicy::kExhaustive},
                      ChaosCase{203, 12, 0.25, 0.15, 5, CandidatePolicy::kExhaustive}),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace rgc
