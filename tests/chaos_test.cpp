// Chaos tests: everything at once — random mutation, the background GC
// daemon, fault injection (loss, duplication, jitter) — with the oracle
// checking safety after every burst and completeness at the end.
//
// scripts/check.sh re-runs these with RGC_CHAOS_AUDIT=1 (audit every step)
// and RGC_CHAOS_THREADS=4 so the online health auditor rides along under
// both sanitizers; any auditor ERROR fails the run.
#include <gtest/gtest.h>

#include <cstdlib>

#include "core/daemon.h"
#include "core/oracle.h"
#include "workload/random_mutator.h"

namespace rgc {
namespace {

using core::CandidatePolicy;
using core::Cluster;
using core::ClusterConfig;
using core::GcDaemon;
using core::Oracle;

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoull(value, nullptr, 10);
}

/// CI overrides: RGC_CHAOS_THREADS picks the worker-pool width,
/// RGC_CHAOS_AUDIT the scheduled audit cadence (1 = every step).
void apply_env_overrides(ClusterConfig& cfg) {
  cfg.threads = static_cast<std::size_t>(env_u64("RGC_CHAOS_THREADS", 1));
  cfg.audit_interval = env_u64("RGC_CHAOS_AUDIT", cfg.audit_interval);
}

struct ChaosCase {
  std::uint64_t seed;
  std::size_t processes;
  double drop;
  double dup;
  std::uint32_t max_delay;
  CandidatePolicy policy;
};

class Chaos : public ::testing::TestWithParam<ChaosCase> {};

TEST_P(Chaos, SafetyUnderEverything) {
  const ChaosCase param = GetParam();
  ClusterConfig cfg;
  cfg.net.seed = param.seed;
  cfg.net.drop_probability = param.drop;
  cfg.net.duplicate_probability = param.dup;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = param.max_delay;
  cfg.candidates = param.policy;
  cfg.candidate_threshold = 2;
  apply_env_overrides(cfg);
  Cluster cluster{cfg};
  for (std::size_t i = 0; i < param.processes; ++i) cluster.add_process();

  workload::MutatorSpec spec;
  spec.seed = param.seed * 7919 + 31;
  spec.w_collect = 0;  // the daemon collects
  spec.w_step = 5;
  workload::RandomMutator mutator{cluster, spec};
  GcDaemon daemon{cluster};

  for (int burst = 0; burst < 10; ++burst) {
    mutator.run(60);
    daemon.run(25);
    cluster.run_until_quiescent();
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty())
        << "seed " << param.seed << " burst " << burst << ": "
        << report.violations.front();
    const auto& health = cluster.audit();
    ASSERT_EQ(health.errors(), 0u)
        << "seed " << param.seed << " burst " << burst << "\n"
        << health.to_string();
  }
}

TEST_P(Chaos, EventualCompletenessOnceQuiet) {
  const ChaosCase param = GetParam();
  ClusterConfig cfg;
  cfg.net.seed = param.seed ^ 0x5a5a;
  cfg.net.drop_probability = param.drop;
  cfg.net.duplicate_probability = param.dup;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = param.max_delay;
  cfg.candidates = param.policy;
  cfg.candidate_threshold = 2;
  apply_env_overrides(cfg);
  Cluster cluster{cfg};
  for (std::size_t i = 0; i < param.processes; ++i) cluster.add_process();

  workload::MutatorSpec spec;
  spec.seed = param.seed * 104729 + 7;
  workload::RandomMutator mutator{cluster, spec};
  mutator.run(400);
  cluster.run_until_quiescent();

  bool done = false;
  for (int attempt = 0; attempt < 60 && !done; ++attempt) {
    cluster.run_full_gc(3);
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty()) << report.violations.front();
    done = report.garbage_objects().empty();
  }
  EXPECT_TRUE(done) << "seed " << param.seed;
  const auto& health = cluster.audit();
  EXPECT_EQ(health.errors(), 0u) << "seed " << param.seed << "\n"
                                 << health.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    Mixes, Chaos,
    ::testing::Values(
        ChaosCase{101, 3, 0.0, 0.0, 1, CandidatePolicy::kExhaustive},
        ChaosCase{102, 4, 0.2, 0.0, 3, CandidatePolicy::kExhaustive},
        ChaosCase{103, 4, 0.0, 0.3, 4, CandidatePolicy::kExhaustive},
        ChaosCase{104, 5, 0.3, 0.2, 5, CandidatePolicy::kExhaustive},
        ChaosCase{105, 3, 0.2, 0.1, 3, CandidatePolicy::kDistance},
        ChaosCase{106, 4, 0.2, 0.1, 3, CandidatePolicy::kSuspicionAge}),
    [](const ::testing::TestParamInfo<ChaosCase>& info) {
      return "seed" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace rgc
