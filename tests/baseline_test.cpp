// Integration tests: the replication-blind baseline (modified [23]) —
// correctness parity with the main detector, and the §5.2 comparison
// claims: same steps-to-detection, more CDMs.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/figures.h"
#include "workload/mesh.h"

namespace rgc::gc {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::DetectorMode;

ClusterConfig baseline_config() {
  ClusterConfig cfg;
  cfg.mode = DetectorMode::kBaseline;
  return cfg;
}

TEST(Baseline, DetectsTheFigure2Cycle) {
  Cluster cluster{baseline_config()};
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(f.p1, f.x).has_value());
  cluster.run_until_quiescent();
  ASSERT_GE(cluster.cycles_found().size(), 1u);
  EXPECT_EQ(cluster.cycles_found().front().candidate, (Replica{f.x, f.p1}));
}

TEST(Baseline, CutAndReclaimWorkThroughTheSharedMachinery) {
  Cluster cluster{baseline_config()};
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  ASSERT_GE(cluster.cycles_found().size(), 1u);
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST(Baseline, DetectsTheFigure3Cycle) {
  Cluster cluster{baseline_config()};
  const auto f = workload::build_figure3(cluster);
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(f.p1, f.c).has_value());
  cluster.run_until_quiescent();
  EXPECT_GE(cluster.cycles_found().size(), 1u);
}

TEST(Baseline, RefusesLiveCandidates) {
  Cluster cluster{baseline_config()};
  const auto f = workload::build_figure2(cluster);
  cluster.add_root(f.p2, f.x);
  cluster.snapshot_all();
  EXPECT_FALSE(cluster.detect(f.p2, f.x).has_value());
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.cycles_found().empty());
}

TEST(Baseline, RaceBarrierAlsoProtectsTheBaseline) {
  Cluster cluster{baseline_config()};
  const auto f = workload::build_figure4(cluster);
  cluster.baseline(f.p2).take_snapshot();
  cluster.baseline(f.p3).take_snapshot();
  cluster.baseline(f.p4).take_snapshot();
  cluster.propagate(f.x, f.p1, f.p2);
  cluster.run_until_quiescent();
  cluster.remove_root(f.p1, f.x);
  cluster.baseline(f.p1).take_snapshot();
  cluster.baseline(f.p2).start_detection(f.x);
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.cycles_found().empty());
  EXPECT_GE(cluster.metric_total("baseline.aborts_race"), 1u);
}

struct MeshComparison {
  std::uint64_t steps{0};
  std::uint64_t cdms{0};
};

MeshComparison run_mesh(DetectorMode mode, std::size_t R, std::size_t D) {
  ClusterConfig cfg;
  cfg.mode = mode;
  Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(cluster, {R, D});
  const std::uint64_t cdms_before = cluster.network().total_sent("CDM");
  cluster.snapshot_all();
  const std::uint64_t start = cluster.now();
  EXPECT_TRUE(cluster.detect(mesh.head_process, mesh.head).has_value());
  while (cluster.cycles_found().empty() && !cluster.network().idle()) {
    cluster.step();
  }
  EXPECT_FALSE(cluster.cycles_found().empty())
      << "mode=" << static_cast<int>(mode) << " R=" << R << " D=" << D;
  return {cluster.now() - start,
          cluster.network().total_sent("CDM") - cdms_before};
}

TEST(Baseline, SameStepsFewerCdmsOnTheMesh) {
  // §4: "both algorithms take the same amount of time to identify the
  // cycle"; §5.2: "our approach uses less CDMs".
  for (const std::size_t R : {2, 3}) {
    for (const std::size_t D : {4, 8}) {
      const auto ours = run_mesh(DetectorMode::kReplicationAware, R, D);
      const auto base = run_mesh(DetectorMode::kBaseline, R, D);
      EXPECT_LT(ours.cdms, base.cdms) << "R=" << R << " D=" << D;
      // Steps must be comparable (both bounded by the same cycle length).
      EXPECT_LE(ours.steps, base.steps + R * D) << "R=" << R << " D=" << D;
      EXPECT_LE(base.steps, ours.steps + R * D) << "R=" << R << " D=" << D;
    }
  }
}

TEST(Baseline, GapWidensWithReplicationFactor) {
  // Figure 9's trend: the relative advantage grows as more processes
  // replicate the cycle.
  const auto ours2 = run_mesh(DetectorMode::kReplicationAware, 2, 6);
  const auto base2 = run_mesh(DetectorMode::kBaseline, 2, 6);
  const auto ours4 = run_mesh(DetectorMode::kReplicationAware, 4, 6);
  const auto base4 = run_mesh(DetectorMode::kBaseline, 4, 6);
  const double gap2 = static_cast<double>(base2.cdms) / ours2.cdms;
  const double gap4 = static_cast<double>(base4.cdms) / ours4.cdms;
  EXPECT_GE(gap4, gap2 * 0.9)
      << "gap2=" << gap2 << " gap4=" << gap4
      << " (the advantage must not shrink as replication grows)";
}

TEST(Baseline, BothModesLeaveLiveDataIntactOnTheMesh) {
  for (const DetectorMode mode :
       {DetectorMode::kReplicationAware, DetectorMode::kBaseline}) {
    ClusterConfig cfg;
    cfg.mode = mode;
    Cluster cluster{cfg};
    const workload::Mesh mesh = workload::build_mesh(cluster, {3, 2});
    cluster.add_root(mesh.head_process, mesh.head);
    const auto before = cluster.total_objects();
    cluster.run_full_gc();
    EXPECT_EQ(cluster.total_objects(), before);
    EXPECT_TRUE(core::Oracle::analyze(cluster).violations.empty());
  }
}

}  // namespace
}  // namespace rgc::gc
