// Unit tests: the CDM algebra — element ordering, observation barrier,
// matching, notation.
#include <gtest/gtest.h>

#include "gc/cycle/cdm.h"

namespace rgc::gc {
namespace {

Element rep(std::uint64_t obj, std::uint32_t proc) {
  return Element::make(Replica{ObjectId{obj}, ProcessId{proc}});
}

Element link(std::uint32_t holder, std::uint64_t obj, std::uint32_t at) {
  return Element::make(RefLink{ProcessId{holder}, ObjectId{obj}, ProcessId{at}});
}

TEST(CdmAlgebra, ElementKindsAreDistinct) {
  // A replica o1@P2 and a link ->o1@P2 must never be confused.
  EXPECT_NE(rep(1, 2), link(0, 1, 2));
  EXPECT_EQ(rep(1, 2), rep(1, 2));
  EXPECT_EQ(link(0, 1, 2), link(0, 1, 2));
  EXPECT_NE(link(0, 1, 2), link(3, 1, 2));  // different holder
}

TEST(CdmAlgebra, ElementToString) {
  EXPECT_EQ(to_string(rep(7, 3)), "o7@P3");
  EXPECT_EQ(to_string(link(1, 7, 3)), "P1->o7@P3");
}

TEST(CdmAlgebra, FlatUnresolvedIsSourceMinusTargets) {
  Cdm cdm;
  cdm.prop_deps.insert(rep(1, 1));
  cdm.prop_deps.insert(rep(1, 2));
  cdm.ref_deps.insert(link(3, 1, 1));
  cdm.targets.insert(rep(1, 2));
  const auto u = cdm.flat_unresolved();
  EXPECT_EQ(u.size(), 2u);
  EXPECT_TRUE(u.contains(rep(1, 1)));
  EXPECT_TRUE(u.contains(link(3, 1, 1)));
  EXPECT_FALSE(cdm.flat_complete());
}

TEST(CdmAlgebra, RequireFillsFlatSetsAndEdges) {
  Cdm cdm;
  cdm.candidate = Replica{ObjectId{1}, ProcessId{1}};
  cdm.require(rep(1, 1), rep(1, 2), /*prop=*/true);
  cdm.require(rep(1, 1), link(3, 1, 1), /*prop=*/false);
  cdm.require(rep(1, 1), link(3, 1, 1), /*prop=*/false);  // dedup
  EXPECT_TRUE(cdm.prop_deps.contains(rep(1, 2)));
  EXPECT_TRUE(cdm.ref_deps.contains(link(3, 1, 1)));
  EXPECT_EQ(cdm.dep_edges.size(), 2u);
}

TEST(CdmAlgebra, ClosureFollowsAttributionFromTheCandidate) {
  Cdm cdm;
  cdm.candidate = Replica{ObjectId{1}, ProcessId{1}};
  // Candidate requires its replica on P2; the replica requires a link.
  cdm.require(rep(1, 1), rep(1, 2), true);
  cdm.require(rep(1, 2), link(3, 1, 2), false);
  // An unrelated visited node's requirement must NOT block the candidate.
  cdm.require(rep(9, 4), rep(9, 5), true);
  const auto closure = cdm.required_closure();
  EXPECT_TRUE(closure.contains(rep(1, 1)));
  EXPECT_TRUE(closure.contains(rep(1, 2)));
  EXPECT_TRUE(closure.contains(link(3, 1, 2)));
  EXPECT_FALSE(closure.contains(rep(9, 5)))
      << "requirements of non-required nodes stay out of the closure";
}

TEST(CdmAlgebra, CycleCompleteWhenClosureVisited) {
  Cdm cdm;
  cdm.candidate = Replica{ObjectId{1}, ProcessId{1}};
  cdm.require(rep(1, 1), rep(1, 2), true);
  cdm.require(rep(1, 2), link(3, 1, 1), false);
  EXPECT_FALSE(cdm.cycle_complete());
  cdm.targets.insert(rep(1, 2));
  cdm.targets.insert(link(3, 1, 1));
  EXPECT_FALSE(cdm.cycle_complete()) << "the candidate itself is unvisited";
  cdm.targets.insert(rep(1, 1));
  EXPECT_TRUE(cdm.cycle_complete());
}

TEST(CdmAlgebra, PoisonedBranchDoesNotBlockVerdict) {
  // The refinement over the paper's flat matching: a visited descendant
  // with an unresolvable (live-elsewhere) requirement is ignored as long
  // as the candidate does not depend on it.
  Cdm cdm;
  cdm.candidate = Replica{ObjectId{1}, ProcessId{1}};
  cdm.require(rep(1, 1), rep(1, 2), true);
  cdm.targets.insert(rep(1, 1));
  cdm.targets.insert(rep(1, 2));
  // Poison: visited descendant o7@P3 requires live o7@P9, never resolved.
  cdm.require(rep(7, 3), rep(7, 9), true);
  cdm.targets.insert(rep(7, 3));
  EXPECT_TRUE(cdm.cycle_complete());
  EXPECT_FALSE(cdm.flat_complete()) << "the flat matching stays blocked";
}

TEST(CdmAlgebra, UnvisitedCandidateNeverCompletes) {
  // Matching guards against the trivial case by construction: the
  // candidate seeds its own closure and must be visited.
  Cdm cdm;
  cdm.candidate = Replica{ObjectId{1}, ProcessId{1}};
  EXPECT_FALSE(cdm.cycle_complete());
  cdm.targets.insert(rep(1, 1));
  EXPECT_TRUE(cdm.cycle_complete());
}

TEST(CdmAlgebra, ObserveAcceptsConsistentRepeats) {
  Cdm cdm;
  const RefLink l{ProcessId{1}, ObjectId{2}, ProcessId{3}};
  EXPECT_TRUE(cdm.observe({l, 5}));
  EXPECT_TRUE(cdm.observe({l, 5}));  // same counter, fine
  EXPECT_EQ(cdm.observations.size(), 2u);
}

TEST(CdmAlgebra, ObserveDetectsRefCounterMismatch) {
  Cdm cdm;
  const RefLink l{ProcessId{1}, ObjectId{2}, ProcessId{3}};
  EXPECT_TRUE(cdm.observe({l, 5}));
  EXPECT_FALSE(cdm.observe({l, 6}))
      << "an invocation between the snapshots must abort the detection";
}

TEST(CdmAlgebra, ObserveDetectsPropCounterMismatch) {
  Cdm cdm;
  const PropLink l{ObjectId{2}, ProcessId{1}, ProcessId{3}};
  EXPECT_TRUE(cdm.observe({l, 1}));
  EXPECT_FALSE(cdm.observe({l, 2}));
}

TEST(CdmAlgebra, ObserveDistinguishesLinkKinds) {
  // A RefLink and a PropLink that happen to share ids are different links.
  Cdm cdm;
  EXPECT_TRUE(cdm.observe({RefLink{ProcessId{1}, ObjectId{2}, ProcessId{3}}, 5}));
  EXPECT_TRUE(cdm.observe({PropLink{ObjectId{2}, ProcessId{1}, ProcessId{3}}, 9}));
}

TEST(CdmAlgebra, ObserveDistinguishesDifferentLinks) {
  Cdm cdm;
  EXPECT_TRUE(cdm.observe({RefLink{ProcessId{1}, ObjectId{2}, ProcessId{3}}, 5}));
  EXPECT_TRUE(cdm.observe({RefLink{ProcessId{1}, ObjectId{2}, ProcessId{4}}, 7}));
}

TEST(CdmAlgebra, ToStringMatchesPaperNotation) {
  Cdm cdm;
  cdm.prop_deps.insert(rep(1, 2));
  cdm.ref_deps.insert(rep(1, 1));
  cdm.targets.insert(rep(2, 4));
  EXPECT_EQ(cdm.to_string(), "{ {o1@P2}, {o1@P1} } -> {o2@P4}");
}

TEST(CdmAlgebra, MessageWeightsCountElements) {
  CdmMsg msg;
  msg.cdm.prop_deps.insert(rep(1, 2));
  msg.cdm.ref_deps.insert(rep(1, 1));
  msg.cdm.targets.insert(rep(2, 4));
  msg.cdm.observations.push_back(
      {RefLink{ProcessId{1}, ObjectId{2}, ProcessId{3}}, 5});
  EXPECT_EQ(msg.weight(), 1u + 3u + 1u);
  EXPECT_STREQ(msg.kind(), "CDM");
  EXPECT_FALSE(msg.reliable());
}

TEST(CdmAlgebra, CloneIsDeep) {
  CdmMsg msg;
  msg.cdm.ref_deps.insert(rep(1, 1));
  msg.entry = ObjectId{1};
  auto copy = msg.clone();
  msg.cdm.ref_deps.insert(rep(2, 2));
  const auto* typed = dynamic_cast<const CdmMsg*>(copy.get());
  ASSERT_NE(typed, nullptr);
  EXPECT_EQ(typed->cdm.ref_deps.size(), 1u);
}

TEST(CdmAlgebra, CutMessagesAreReliable) {
  EXPECT_TRUE(CutMsg{}.reliable());
  EXPECT_TRUE(PropCutMsg{}.reliable());
}

}  // namespace
}  // namespace rgc::gc
