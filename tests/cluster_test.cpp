// Unit tests: the Cluster facade — topology, delegation, virtual time,
// the full-GC driver, metrics aggregation.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "workload/figures.h"

namespace rgc::core {
namespace {

TEST(Cluster, ProcessIdsAreSequential) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ProcessId b = cluster.add_process();
  EXPECT_EQ(raw(a), 0u);
  EXPECT_EQ(raw(b), 1u);
  EXPECT_EQ(cluster.process_count(), 2u);
  EXPECT_EQ(cluster.process_ids(), (std::vector<ProcessId>{a, b}));
}

TEST(Cluster, UnknownProcessThrows) {
  Cluster cluster;
  EXPECT_THROW((void)cluster.process(ProcessId{7}), std::out_of_range);
}

TEST(Cluster, ObjectIdsAreGloballyUnique) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ProcessId b = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  const ObjectId y = cluster.new_object(b);
  EXPECT_NE(x, y);
}

TEST(Cluster, StepAdvancesTimeAndTicksProcesses) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  cluster.process(a).pin_transient_root(x, 1);
  EXPECT_EQ(cluster.now(), 0u);
  cluster.step();
  EXPECT_EQ(cluster.now(), 1u);
  EXPECT_FALSE(cluster.process(a).transient_roots().contains(x));
}

TEST(Cluster, MetricTotalSumsAcrossProcesses) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ProcessId b = cluster.add_process();
  cluster.new_object(a);
  cluster.new_object(b);
  EXPECT_EQ(cluster.metric_total("rm.objects_created"), 2u);
}

TEST(Cluster, TotalObjectsCountsReplicasNotObjects) {
  Cluster cluster;
  const ProcessId a = cluster.add_process();
  const ProcessId b = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  cluster.propagate(x, a, b);
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.total_objects(), 2u);  // one logical object, two copies
}

TEST(Cluster, FullGcOnEmptyClusterTerminatesImmediately) {
  Cluster cluster;
  cluster.add_process();
  const auto stats = cluster.run_full_gc();
  EXPECT_EQ(stats.rounds, 1u);
  EXPECT_EQ(stats.reclaimed_objects, 0u);
  EXPECT_EQ(stats.cycles_found, 0u);
}

TEST(Cluster, FullGcReportsWork) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  (void)f;
  const auto stats = cluster.run_full_gc();
  EXPECT_GE(stats.cycles_found, 1u);
  EXPECT_GE(stats.reclaimed_objects, 4u);
  EXPECT_GE(stats.detections_started, 1u);
}

TEST(Cluster, FullGcIsIdempotent) {
  Cluster cluster;
  workload::build_figure2(cluster);
  cluster.run_full_gc();
  const auto second = cluster.run_full_gc();
  EXPECT_EQ(second.reclaimed_objects, 0u);
  EXPECT_EQ(second.cycles_found, 0u);
}

TEST(Cluster, AutoCutDisabledLeavesCycleInPlace) {
  ClusterConfig cfg;
  cfg.auto_cut = false;
  Cluster cluster{cfg};
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.cycles_found().size(), 1u);
  // Verdict recorded but nothing cut: the scion survives collections.
  for (int i = 0; i < 6; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_TRUE(cluster.process(f.p1).scions().contains(rm::ScionKey{f.p3, f.x}));
  EXPECT_EQ(cluster.total_objects(), 4u);
}

TEST(Cluster, DeterministicEndToEnd) {
  auto fingerprint = [](std::uint64_t seed) {
    ClusterConfig cfg;
    cfg.net.seed = seed;
    cfg.net.min_delay = 1;
    cfg.net.max_delay = 3;
    Cluster cluster{cfg};
    workload::build_figure3(cluster);
    cluster.run_full_gc();
    return std::make_tuple(cluster.total_objects(),
                           cluster.metric_total("cycle.cdms_sent"),
                           cluster.network().now());
  };
  EXPECT_EQ(fingerprint(42), fingerprint(42));
}

TEST(Cluster, CollectUsesConfiguredFinalizeStrategy) {
  ClusterConfig cfg;
  cfg.finalize = gc::FinalizeStrategy::kReRegister;
  Cluster cluster{cfg};
  const ProcessId a = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  cluster.process(a).heap().find(x)->finalizable = true;
  const auto r = cluster.collect(a);
  EXPECT_EQ(r.resurrected, 1u);
  EXPECT_TRUE(cluster.process(a).heap().contains(x));
}

TEST(Cluster, InvocationRoutesAlongStubScionChains) {
  // Build a two-hop SSP chain for o: P2 -> P1 -> P0.
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId o = cluster.new_object(p0);
  const ObjectId holder0 = cluster.new_object(p0);
  cluster.add_root(p0, holder0);
  cluster.add_ref(p0, holder0, o);
  cluster.propagate(holder0, p0, p1);  // P1 imports the ref: stub o@P0
  cluster.run_until_quiescent();
  const ObjectId holder1 = cluster.new_object(p1);
  cluster.add_root(p1, holder1);
  cluster.add_ref(p1, holder1, o);     // copy, bound via P0
  cluster.propagate(holder1, p1, p2);  // P2 imports: stub o@P1 — a chain!
  cluster.run_until_quiescent();
  ASSERT_TRUE(cluster.process(p2).stubs().contains(rm::StubKey{o, p1}));
  ASSERT_FALSE(cluster.process(p1).has_replica(o));

  cluster.invoke(p2, o, /*root_steps=*/5);
  cluster.run_until_quiescent();
  // The call routed P2 -> P1 (intermediary, forwards) -> P0 (executes),
  // bumping every traversed link and pinning the object at each node.
  EXPECT_EQ(cluster.process(p1).metrics().get("rm.invocations_forwarded"), 1u);
  EXPECT_TRUE(cluster.process(p0).transient_roots().contains(o));
  EXPECT_EQ(cluster.process(p1).scions().at(rm::ScionKey{p2, o}).ic, 1u);
  EXPECT_EQ(cluster.process(p0).scions().at(rm::ScionKey{p1, o}).ic, 1u);
}

TEST(Cluster, ChainCollapsesWhenIntermediaryInterestDies) {
  // Same chain; the intermediary's own holder dies.  Its stub must stay
  // alive purely because P2's chain routes through it (the scion from P2
  // anchors it), and the whole chain retires once P2 lets go.
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId o = cluster.new_object(p0);
  const ObjectId holder0 = cluster.new_object(p0);
  cluster.add_root(p0, holder0);
  cluster.add_ref(p0, holder0, o);
  cluster.propagate(holder0, p0, p1);
  cluster.run_until_quiescent();
  const ObjectId holder1 = cluster.new_object(p1);
  cluster.add_root(p1, holder1);
  cluster.add_ref(p1, holder1, o);
  cluster.propagate(holder1, p1, p2);
  cluster.run_until_quiescent();
  cluster.add_root(p2, o);  // P2 pins the remote object via the chain

  cluster.remove_root(p1, holder1);
  for (int i = 0; i < 6; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_TRUE(cluster.process(p1).stubs().contains(rm::StubKey{o, p0}))
      << "the chain hop must survive while P2 routes through it";
  EXPECT_TRUE(cluster.process(p0).has_replica(o));

  cluster.remove_root(p2, o);
  cluster.remove_ref(p0, holder0, o);
  // holder0's replica on P1 still holds the imported reference (replicas
  // diverge!) — per the Union Rule that keeps o alive, correctly.  Push
  // the update through the coherence engine to retire it.
  cluster.propagate(holder0, p0, p1);
  cluster.run_until_quiescent();
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_FALSE(cluster.process(p0).has_replica(o)) << "o fully retired";
  EXPECT_FALSE(cluster.process(p1).stubs().contains(rm::StubKey{o, p0}));
}

}  // namespace
}  // namespace rgc::core
