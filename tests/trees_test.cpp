// Scale/structure tests: replicated trees and tree rings — the acyclic
// machinery at volume, the acyclic/cyclic hand-off, and heuristics on
// larger graphs.
#include <gtest/gtest.h>

#include "core/oracle.h"
#include "workload/trees.h"

namespace rgc::workload {
namespace {

using core::Cluster;
using core::Oracle;

TEST(Trees, BuildShape) {
  Cluster cluster;
  const Tree tree = build_tree(cluster, {2, 3, 3});
  // 1 + 2 + 4 + 8 nodes, 14 edges.
  EXPECT_EQ(tree.nodes.size(), 15u);
  EXPECT_EQ(tree.edges, 14u);
  const auto report = Oracle::analyze(cluster);
  EXPECT_EQ(report.live_objects.size(), 15u);
  EXPECT_TRUE(report.violations.empty());
}

TEST(Trees, RejectsDegenerateSpecs) {
  Cluster cluster;
  EXPECT_THROW(build_tree(cluster, {0, 3, 3}), std::invalid_argument);
  EXPECT_THROW(build_tree_ring(cluster, {2, 2, 3}, 1), std::invalid_argument);
}

TEST(Trees, RootedTreeSurvivesGc) {
  Cluster cluster;
  const Tree tree = build_tree(cluster, {2, 3, 3});
  cluster.run_full_gc();
  const auto report = Oracle::analyze(cluster);
  EXPECT_EQ(report.live_objects.size(), tree.nodes.size());
  EXPECT_TRUE(report.violations.empty());
}

TEST(Trees, DroppedTreeIsFullyReclaimedAcyclically) {
  Cluster cluster;
  const Tree tree = build_tree(cluster, {2, 3, 4});
  cluster.remove_root(tree.root_process, tree.root);
  const auto stats = cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
  // A tree is acyclic: the reference-listing machinery alone suffices.
  EXPECT_EQ(stats.cycles_found, 0u)
      << "no detector involvement expected for acyclic garbage";
  EXPECT_TRUE(Oracle::fully_collected(cluster, Oracle::analyze(cluster)));
}

TEST(Trees, WideTreeAcrossManyProcesses) {
  Cluster cluster;
  const Tree tree = build_tree(cluster, {3, 3, 6});
  EXPECT_EQ(tree.nodes.size(), 40u);  // 1+3+9+27
  cluster.remove_root(tree.root_process, tree.root);
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST(Trees, TreeRingNeedsTheDetector) {
  Cluster cluster;
  const TreeRing ring = build_tree_ring(cluster, {2, 2, 3}, 3);
  ASSERT_GT(cluster.total_objects(), 0u);
  // Acyclic rounds alone cannot finish the job: the spine is a cycle.
  for (int i = 0; i < 10; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_GT(cluster.total_objects(), 0u)
      << "the cyclic spine must survive pure acyclic rounds";

  const auto stats = cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_GE(stats.cycles_found, 1u);
  (void)ring;
}

TEST(Trees, PartiallyLiveRingKeepsItsLiveTree) {
  Cluster cluster;
  TreeRing ring = build_tree_ring(cluster, {2, 2, 3}, 3);
  // Resurrect one tree root: through the spine it transitively keeps the
  // *whole ring* alive (every tree is reachable around the cycle).
  const Tree& kept = ring.trees[1];
  cluster.add_root(kept.root_process, kept.root);
  cluster.run_full_gc();
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.garbage_objects().size(), 0u);
  EXPECT_EQ(report.live_objects.size(), ring.total_nodes);
  // Drop it again: everything must now go.
  cluster.remove_root(kept.root_process, kept.root);
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST(Trees, HeuristicPoliciesHandleTheRing) {
  for (const core::CandidatePolicy policy :
       {core::CandidatePolicy::kDistance,
        core::CandidatePolicy::kSuspicionAge}) {
    core::ClusterConfig cfg;
    cfg.candidates = policy;
    cfg.candidate_threshold = 2;
    Cluster cluster{cfg};
    build_tree_ring(cluster, {2, 2, 3}, 2);
    cluster.run_full_gc();
    EXPECT_EQ(cluster.total_objects(), 0u)
        << "policy " << static_cast<int>(policy);
  }
}

}  // namespace
}  // namespace rgc::workload
