// Online health auditor tests (obs/audit.h): no false positives on clean
// and chaotic workloads, deliberate corruptions are flagged as ERRORs,
// reclaim-latency accounting records real float times, quiescence status
// surfaces in run_until_quiescent / reports, and the Prometheus exposition
// is format-valid.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "core/cluster.h"
#include "core/daemon.h"
#include "core/oracle.h"
#include "core/report.h"
#include "gc/cycle/cdm.h"
#include "net/message.h"
#include "obs/health.h"
#include "obs/prom.h"
#include "rm/process.h"
#include "workload/random_mutator.h"

namespace rgc {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::GcDaemon;
using core::Oracle;
using obs::HealthReport;
using obs::Severity;

bool has_finding(const HealthReport& report, std::string_view invariant,
                 Severity severity) {
  for (const obs::Finding& f : report.findings) {
    if (f.invariant == invariant && f.severity == severity) return true;
  }
  return false;
}

// ---- No false positives ----------------------------------------------------

TEST(AuditTest, CleanWorkloadProducesNoErrors) {
  ClusterConfig cfg;
  cfg.audit_interval = 4;  // scheduled audits ride along every 4 steps
  cfg.audit_oracle_assist = true;
  Cluster cluster{cfg};
  for (int i = 0; i < 3; ++i) cluster.add_process();

  workload::MutatorSpec spec;
  spec.seed = 2024;
  workload::RandomMutator mutator{cluster, spec};
  mutator.run(300);
  cluster.run_until_quiescent();
  cluster.collect_all();
  cluster.run_until_quiescent();

  const HealthReport& health = cluster.audit();
  EXPECT_EQ(health.errors(), 0u) << health.to_string();
  // The scheduled cadence actually fired during the workload.
  EXPECT_GT(cluster.auditor().metrics().get("audit.runs"), 1u);
  EXPECT_GE(health.audit_runs, 1u);
  EXPECT_TRUE(health.deep);
}

TEST(AuditTest, ChaoticWorkloadProducesNoFalsePositives) {
  // Loss + duplication + jitter with the daemon collecting in the
  // background: the auditor must stay quiet exactly when the oracle does.
  ClusterConfig cfg;
  cfg.net.seed = 77;
  cfg.net.drop_probability = 0.2;
  cfg.net.duplicate_probability = 0.15;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = 4;
  cfg.audit_interval = 8;
  cfg.audit_oracle_assist = true;
  Cluster cluster{cfg};
  for (int i = 0; i < 4; ++i) cluster.add_process();

  workload::MutatorSpec spec;
  spec.seed = 4242;
  spec.w_collect = 0;
  workload::RandomMutator mutator{cluster, spec};
  GcDaemon daemon{cluster};

  for (int burst = 0; burst < 6; ++burst) {
    mutator.run(80);
    daemon.run(30);
    cluster.run_until_quiescent();
    const auto oracle = Oracle::analyze(cluster);
    ASSERT_TRUE(oracle.violations.empty()) << oracle.violations.front();
    const HealthReport& health = cluster.audit();
    ASSERT_EQ(health.errors(), 0u)
        << "burst " << burst << "\n"
        << health.to_string();
  }
}

// ---- Deliberate corruptions are flagged ------------------------------------

TEST(AuditTest, OrphanStubIsFlagged) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.audit().errors(), 0u);

  // Conjure a stub at P1 whose scion at P0 never existed: violates the
  // "clean before send propagate" causal order.
  cluster.process(p1).ensure_stub(rm::StubKey{x, p0}, cluster.now());

  const HealthReport& health = cluster.audit();
  EXPECT_TRUE(has_finding(health, "stub_scion", Severity::kError))
      << health.to_string();
}

TEST(AuditTest, DroppedScionIsFlagged) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  const ObjectId y = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.add_ref(p0, x, y);
  cluster.propagate(x, p0, p1);  // exports x's ref to y: scion@P0, stub@P1
  cluster.run_until_quiescent();
  ASSERT_FALSE(cluster.process(p1).stubs().empty());
  ASSERT_EQ(cluster.audit().errors(), 0u);

  // Lose the scion table at P0 behind the protocol's back; P1's stubs are
  // now unbacked.
  cluster.process(p0).scions().clear();

  const HealthReport& health = cluster.audit();
  EXPECT_TRUE(has_finding(health, "stub_scion", Severity::kError))
      << health.to_string();
}

TEST(AuditTest, LostInPropIsFlagged) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.propagate(x, p0, p1);
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.audit().errors(), 0u);

  // Sever the child's inPropList while the parent's outProp entry remains;
  // with no link traffic in flight this must be an ERROR, not a WARN.
  cluster.process(p1).in_props().clear();

  const HealthReport& health = cluster.audit();
  EXPECT_TRUE(has_finding(health, "prop_pairing", Severity::kError))
      << health.to_string();
}

TEST(AuditTest, LostCdmIsFlagged) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();

  // Feed the lineage accounting a CDM send that is never delivered or
  // dropped: with no CDM in flight the balance cannot return to zero.
  gc::CdmMsg msg;
  msg.cdm.detection_id = 42;
  const net::Envelope env{p0, p1, 1, cluster.now(), &msg};
  cluster.auditor().on_send(env);

  const HealthReport& health = cluster.audit();
  EXPECT_TRUE(has_finding(health, "cdm_lineage", Severity::kError))
      << health.to_string();
}

TEST(AuditTest, OverDeliveredCdmIsFlagged) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();

  // A delivery with no matching send: the transport manufactured a CDM.
  // The negative balance is sticky — it stays an ERROR on every later run.
  gc::CdmMsg msg;
  msg.cdm.detection_id = 99;
  const net::Envelope env{p0, p1, 1, cluster.now(), &msg};
  cluster.auditor().on_deliver(env);

  EXPECT_TRUE(has_finding(cluster.audit(), "cdm_lineage", Severity::kError));
  EXPECT_TRUE(has_finding(cluster.audit(), "cdm_lineage", Severity::kError));
}

TEST(AuditTest, CdmCounterDriftIsFlagged) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  cluster.add_process();

  // A detector claiming to have sent a CDM the network never saw breaks the
  // cross-layer conservation identity.
  cluster.process(p0).metrics().add("cycle.cdms_sent");

  const HealthReport& health = cluster.audit();
  EXPECT_TRUE(has_finding(health, "cdm_conservation", Severity::kError))
      << health.to_string();
}

TEST(AuditTest, ReclaimDanglingRefIsFlagged) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ObjectId a = cluster.new_object(p0);
  const ObjectId b = cluster.new_object(p0);
  cluster.add_root(p0, a);
  cluster.add_ref(p0, a, b);
  ASSERT_EQ(cluster.audit().errors(), 0u);

  // Evict b bypassing the collector: the live root a now holds a reference
  // that resolves to nothing — the exact shape of an unsafe reclaim.
  ASSERT_TRUE(cluster.process(p0).heap().erase(b));

  const HealthReport& health = cluster.audit();
  EXPECT_TRUE(has_finding(health, "reclaim_safety", Severity::kError))
      << health.to_string();
}

// ---- Reclaim-latency accounting --------------------------------------------

TEST(AuditTest, ReclaimLatencyIsRecorded) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ObjectId a = cluster.new_object(p0);
  cluster.add_root(p0, a);
  for (int i = 0; i < 3; ++i) cluster.step();

  cluster.remove_root(p0, a);  // stamps a's unlinked_at at this step
  const std::uint64_t unlinked = cluster.now();
  for (int i = 0; i < 5; ++i) cluster.step();
  const auto result = cluster.collect(p0);
  ASSERT_EQ(result.reclaimed.size(), 1u);

  const util::Histogram& latency =
      cluster.process(p0).metrics().histogram("gc.reclaim_latency_steps");
  EXPECT_EQ(latency.count(), 1u);
  EXPECT_EQ(latency.max(), cluster.now() - unlinked);
  EXPECT_GE(latency.max(), 5u);
}

TEST(AuditTest, FloatingGarbageIsAgedByDeepAudit) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ObjectId a = cluster.new_object(p0);
  cluster.add_root(p0, a);
  for (int i = 0; i < 2; ++i) cluster.step();  // move past step 0
  cluster.remove_root(p0, a);  // a floats from here on
  for (int i = 0; i < 7; ++i) cluster.step();

  cluster.audit();
  const util::Metrics& m = cluster.auditor().metrics();
  EXPECT_EQ(m.gauge_value("audit.floating_garbage"), 1u);
  EXPECT_GE(m.gauge_value("gc.floating_garbage_age"), 7u);

  cluster.collect(p0);
  cluster.audit();
  EXPECT_EQ(m.gauge_value("audit.floating_garbage"), 0u);
}

// ---- Quiescence status -----------------------------------------------------

TEST(AuditTest, QuiescenceStatusReportsTimeoutAndDrain) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.propagate(x, p0, p1);  // one Propagate now in flight

  const core::QuiescenceStatus stuck = cluster.run_until_quiescent(0);
  EXPECT_FALSE(stuck.quiescent);
  EXPECT_GT(stuck.in_flight, 0u);
  EXPECT_EQ(stuck.steps, 0u);

  const core::QuiescenceStatus drained = cluster.run_until_quiescent();
  EXPECT_TRUE(drained.quiescent);
  EXPECT_EQ(drained.in_flight, 0u);
  EXPECT_GT(drained.steps, 0u);

  // The give-up above was counted and surfaces with the GC counters.
  const core::ClusterReport report = core::make_report(cluster);
  bool found = false;
  for (const auto& [name, value] : report.gc_counters) {
    if (name == "cluster.quiescence_timeout") {
      found = true;
      EXPECT_EQ(value, 1u);
    }
  }
  EXPECT_TRUE(found);
}

// ---- Prometheus exposition -------------------------------------------------

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  if (std::isdigit(static_cast<unsigned char>(name.front())) != 0) return false;
  for (const char c : name) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0 && c != '_') {
      return false;
    }
  }
  return true;
}

/// Strips a histogram-sample suffix so the family can be looked up.
std::string sample_family(std::string name) {
  for (const std::string_view suffix : {"_bucket", "_sum", "_count"}) {
    if (name.size() > suffix.size() && name.ends_with(suffix)) {
      return name.substr(0, name.size() - suffix.size());
    }
  }
  return name;
}

TEST(AuditTest, PrometheusExpositionIsWellFormed) {
  ClusterConfig cfg;
  cfg.audit_interval = 4;
  Cluster cluster{cfg};
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId x = cluster.new_object(p0);
  const ObjectId y = cluster.new_object(p0);
  cluster.add_root(p0, x);
  cluster.add_ref(p0, x, y);
  cluster.propagate(x, p0, p1);  // p1 gets a replica of x + a stub for y
  cluster.run_until_quiescent();
  cluster.invoke(p1, y);
  cluster.run_until_quiescent();
  cluster.remove_ref(p0, x, y);
  cluster.collect_all();
  cluster.run_until_quiescent();
  cluster.audit();

  // The same writer --prom-out uses.
  std::ostringstream sink;
  obs::write_prometheus(cluster, sink);
  const std::string text = sink.str();
  ASSERT_FALSE(text.empty());
  ASSERT_EQ(text.back(), '\n');

  std::set<std::string> declared;
  std::istringstream lines{text};
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line.starts_with("#")) {
      ASSERT_TRUE(line.starts_with("# TYPE ")) << line;
      std::istringstream fields{line.substr(7)};
      std::string name;
      std::string type;
      ASSERT_TRUE(static_cast<bool>(fields >> name >> type)) << line;
      ASSERT_TRUE(valid_metric_name(name)) << line;
      ASSERT_TRUE(name.starts_with("rgc_")) << line;
      ASSERT_TRUE(type == "counter" || type == "gauge" || type == "histogram")
          << line;
      // One TYPE line per family — duplicates break scrapers.
      ASSERT_TRUE(declared.insert(name).second) << "duplicate TYPE: " << line;
      continue;
    }
    // Sample line: name[{labels}] value
    const std::size_t brace = line.find('{');
    const std::size_t space = line.find(' ');
    ASSERT_NE(space, std::string::npos) << line;
    std::string name;
    std::string value;
    if (brace != std::string::npos && brace < space) {
      const std::size_t close = line.find('}', brace);
      ASSERT_NE(close, std::string::npos) << line;
      name = line.substr(0, brace);
      ASSERT_EQ(line[close + 1], ' ') << line;
      value = line.substr(close + 2);
    } else {
      name = line.substr(0, space);
      value = line.substr(space + 1);
    }
    ASSERT_TRUE(valid_metric_name(name)) << line;
    ASSERT_TRUE(name.starts_with("rgc_")) << line;
    ASSERT_TRUE(declared.contains(sample_family(name)))
        << "sample without TYPE declaration: " << line;
    char* end = nullptr;
    (void)std::strtod(value.c_str(), &end);
    ASSERT_TRUE(end != nullptr && *end == '\0' && end != value.c_str())
        << "bad value in: " << line;
  }

  // The families the dashboard and CI lean on are all present.
  EXPECT_TRUE(declared.contains("rgc_audit_runs"));
  EXPECT_TRUE(declared.contains("rgc_audit_last_errors"));
  EXPECT_TRUE(declared.contains("rgc_net_sent_Propagate"));
  EXPECT_TRUE(declared.contains("rgc_gc_reclaim_latency_steps"));
}

}  // namespace
}  // namespace rgc
