// Unit/integration tests: cycle-candidate heuristics — the Maheshwari
// distance scheme piggybacked on NewSetStubs and the suspicion-age
// tracker — plus run_full_gc under each candidate policy.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "gc/cycle/heuristics.h"
#include "workload/figures.h"

namespace rgc::gc {
namespace {

using core::CandidatePolicy;
using core::Cluster;
using core::ClusterConfig;

ClusterConfig with_policy(CandidatePolicy policy, std::uint32_t threshold = 3) {
  ClusterConfig cfg;
  cfg.candidates = policy;
  cfg.candidate_threshold = threshold;
  return cfg;
}

// ---- SuspicionAgeTracker -------------------------------------------------

TEST(SuspicionAge, RemoteOnlySurvivorsAge) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  auto& tracker = cluster.suspicion_tracker(f.p1);
  // The construction's settle() already aged the cycle member; the
  // property under test is that each further collection ages it again.
  const auto age0 = tracker.age(f.x);
  for (int i = 0; i < 3; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_GE(tracker.age(f.x), age0 + 3) << "cycle member ages every collection";
  EXPECT_FALSE(tracker.suspects().empty());
}

TEST(SuspicionAge, RootReachabilityResetsTheAge) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  cluster.collect_all();
  cluster.run_until_quiescent();
  cluster.collect_all();
  cluster.run_until_quiescent();
  EXPECT_GT(cluster.suspicion_tracker(f.p1).age(f.x), 0u);
  cluster.add_root(f.p1, f.x);  // resurrect
  cluster.collect(f.p1);
  EXPECT_EQ(cluster.suspicion_tracker(f.p1).age(f.x), 0u);
}

TEST(SuspicionAge, SweptObjectsAreForgotten) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  // Drop the local path: b survives at p1 only through the scion (p2's
  // replica of a still references it).
  cluster.remove_ref(p1, a, b);
  cluster.collect(p1);
  cluster.run_until_quiescent();
  EXPECT_GT(cluster.suspicion_tracker(p1).age(b), 0u);  // scion-anchored
  // Drop the remote interest: b dies; its age entry must go with it.
  cluster.remove_ref(p2, a, b);
  for (int i = 0; i < 4; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cluster.suspicion_tracker(p1).age(b), 0u);
}

// ---- DistanceHeuristic ---------------------------------------------------

TEST(Distance, LiveAnchorsStabilizeBelowThreshold) {
  Cluster cluster{with_policy(CandidatePolicy::kDistance, 4)};
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.add_root(p2, a);  // live remote holder: stub is root-reachable

  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  // b's scion (from p2) keeps receiving distance 1 announcements.
  EXPECT_LT(cluster.distance_heuristic(p1).estimate(b), 4u);
  EXPECT_TRUE(cluster.distance_heuristic(p1).suspects().empty());
}

TEST(Distance, CycleMembersGrowPastThreshold) {
  Cluster cluster{with_policy(CandidatePolicy::kDistance, 4)};
  const auto f = workload::build_figure2(cluster);
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  const auto suspects_p1 = cluster.distance_heuristic(f.p1).suspects();
  EXPECT_TRUE(std::find(suspects_p1.begin(), suspects_p1.end(), f.x) !=
              suspects_p1.end())
      << "the cycle member's distance estimate must diverge";
}

TEST(Distance, PropOnlyReplicasAgeLocally) {
  Cluster cluster{with_policy(CandidatePolicy::kDistance, 3)};
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.propagate(a, p2, p1);  // prop cycle: no scions anywhere
  cluster.run_until_quiescent();
  for (int i = 0; i < 4; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  const auto suspects = cluster.distance_heuristic(p1).suspects();
  EXPECT_TRUE(std::find(suspects.begin(), suspects.end(), a) != suspects.end());
}

// ---- run_full_gc under each policy ----------------------------------------

struct PolicyCase {
  CandidatePolicy policy;
  const char* name;
};

class PolicyDriven : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(PolicyDriven, CollectsTheFigure2Cycle) {
  Cluster cluster{with_policy(GetParam().policy)};
  workload::build_figure2(cluster);
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST_P(PolicyDriven, CollectsTheFigure3Graph) {
  Cluster cluster{with_policy(GetParam().policy)};
  workload::build_figure3(cluster);
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST_P(PolicyDriven, NeverTouchesLiveData) {
  Cluster cluster{with_policy(GetParam().policy)};
  const auto f = workload::build_figure4(cluster);  // live cycle
  cluster.run_full_gc();
  EXPECT_TRUE(cluster.process(f.p1).has_replica(f.x));
  EXPECT_TRUE(cluster.process(f.p4).has_replica(f.y));
  EXPECT_TRUE(core::Oracle::analyze(cluster).violations.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyDriven,
    ::testing::Values(PolicyCase{CandidatePolicy::kExhaustive, "exhaustive"},
                      PolicyCase{CandidatePolicy::kDistance, "distance"},
                      PolicyCase{CandidatePolicy::kSuspicionAge, "suspicion"}),
    [](const ::testing::TestParamInfo<PolicyCase>& info) {
      return info.param.name;
    });

TEST(Policies, DistanceHeuristicSkipsLiveRemotelyReferencedData) {
  // Live data referenced only remotely is exactly what the exhaustive
  // policy keeps re-suspecting (it is never locally root-reachable) and
  // what the distance heuristic correctly clears: the live holder's side
  // announces distance 1 every round.
  auto detections = [](CandidatePolicy policy) {
    Cluster cluster{with_policy(policy, 3)};
    const auto f = workload::build_figure2(cluster);
    // v lives on p1; its only anchor is the rooted remote holder w on p4.
    const ObjectId v = cluster.new_object(f.p1);
    const ObjectId w = cluster.new_object(f.p4);
    cluster.add_root(f.p4, w);
    cluster.add_root(f.p1, v);
    workload::make_remote_ref(cluster, f.p4, w, f.p1, v);
    cluster.remove_root(f.p1, v);
    workload::settle(cluster);

    const auto stats = cluster.run_full_gc();
    EXPECT_TRUE(cluster.process(f.p1).has_replica(v)) << "v is live";
    return stats.detections_started;
  };
  const auto exhaustive = detections(CandidatePolicy::kExhaustive);
  const auto distance = detections(CandidatePolicy::kDistance);
  EXPECT_LT(distance, exhaustive)
      << "the distance heuristic must not keep suspecting live data";
}

}  // namespace
}  // namespace rgc::gc
