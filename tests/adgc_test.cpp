// Integration tests: the acyclic replication-aware DGC protocol —
// NewSetStubs scion matching + causality horizon, Unreachable/Reclaim
// hand-shake, end-to-end acyclic reclamation of replicated garbage.
#include <gtest/gtest.h>

#include "core/cluster.h"

namespace rgc::gc {
namespace {

using core::Cluster;

TEST(Adgc, NewSetStubsDeletesOrphanScions) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  ASSERT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}));

  // p2's replica stops referencing b; its stub dies at the next collection
  // and the NewSetStubs round deletes the orphan scion.
  cluster.remove_ref(p2, a, b);
  cluster.collect(p2);
  cluster.run_until_quiescent();
  EXPECT_FALSE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}))
      << "scion without a matching stub must be deleted";
}

TEST(Adgc, NewSetStubsKeepsMatchedScions) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.add_root(p2, a);

  for (int i = 0; i < 3; ++i) {
    cluster.collect(p2);
    cluster.run_until_quiescent();
  }
  EXPECT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}));
  cluster.collect(p1);
  EXPECT_TRUE(cluster.process(p1).heap().contains(b))
      << "remotely referenced object must survive local collections";
}

TEST(Adgc, HorizonProtectsScionOfInFlightPropagate) {
  // A NewSetStubs computed before a propagate was delivered must not kill
  // the scion that the propagate's export just created.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p2);
  const ObjectId b = cluster.new_object(p2);
  cluster.add_root(p2, a);
  cluster.add_ref(p2, a, b);

  // Give p2's object a second reference c so p1 permanently keeps one stub
  // toward p2 (the peer relation stays alive for NewSetStubs rounds).
  const ObjectId c = cluster.new_object(p2);
  cluster.add_ref(p2, a, c);
  cluster.propagate(a, p2, p1);
  cluster.run_until_quiescent();
  cluster.add_root(p1, c);  // pin the c-stub through a register

  // p1's replica stops referencing b; its stub dies, the scion follows.
  cluster.remove_ref(p1, a, b);
  cluster.remove_ref(p1, a, c);
  cluster.collect(p1);
  cluster.run_until_quiescent();
  ASSERT_FALSE(cluster.process(p2).scions().contains(rm::ScionKey{p1, b}));
  ASSERT_TRUE(cluster.process(p1).stub_peers().contains(p2));

  // Now p2 re-propagates a (re-exporting the scion for b) while p1
  // concurrently announces a stub set computed before the propagate lands.
  cluster.propagate(a, p2, p1);
  cluster.collect(p1);  // NewSetStubs without b, horizon predates the export
  cluster.run_until_quiescent();

  EXPECT_TRUE(cluster.process(p2).scions().contains(rm::ScionKey{p1, b}))
      << "horizon guard must protect the freshly exported scion";
  EXPECT_TRUE(cluster.process(p1).stubs().contains(rm::StubKey{b, p2}));
}

TEST(Adgc, UnreachableReportedOnlyWhenChildIsFullyUnanchored) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.add_root(p2, a);

  cluster.collect(p2);
  cluster.run_until_quiescent();
  EXPECT_FALSE(cluster.process(p1).find_out_prop(a, p2)->rec_umess)
      << "rooted child must not report Unreachable";

  cluster.remove_root(p2, a);
  cluster.collect(p2);
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.process(p1).find_out_prop(a, p2)->rec_umess);
  EXPECT_TRUE(cluster.process(p2).find_in_prop(a, p1)->sent_umess);
}

TEST(Adgc, ReclaimDismantlesTwoLevelTree) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.propagate(a, p2, p3);  // grandchild
  cluster.run_until_quiescent();

  // Nothing roots any replica: the whole propagation tree is garbage.
  for (int i = 0; i < 6; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_FALSE(cluster.process(p1).heap().contains(a));
  EXPECT_FALSE(cluster.process(p2).heap().contains(a));
  EXPECT_FALSE(cluster.process(p3).heap().contains(a));
  EXPECT_TRUE(cluster.process(p1).out_props().empty());
  EXPECT_TRUE(cluster.process(p2).in_props().empty());
  EXPECT_TRUE(cluster.process(p2).out_props().empty());
  EXPECT_TRUE(cluster.process(p3).in_props().empty());
}

TEST(Adgc, LiveGrandchildKeepsWholeTree) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.propagate(a, p2, p3);
  cluster.run_until_quiescent();
  cluster.add_root(p3, a);  // the leaf is live

  for (int i = 0; i < 6; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_TRUE(cluster.process(p1).heap().contains(a))
      << "Union Rule: an ancestor replica of a live replica must survive";
  EXPECT_TRUE(cluster.process(p2).heap().contains(a));
  EXPECT_TRUE(cluster.process(p3).heap().contains(a));
}

TEST(Adgc, StaleUnreachableIgnoredAfterRepropagation) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  // Child reports unreachable; concurrently the parent re-propagates.
  cluster.collect(p2);           // queues Unreachable with the old UC
  cluster.propagate(a, p1, p2);  // bumps the UC and clears rec bits
  cluster.run_until_quiescent();

  EXPECT_FALSE(cluster.process(p1).find_out_prop(a, p2)->rec_umess)
      << "an Unreachable crossed by a re-propagation must be discarded";
  EXPECT_EQ(cluster.process(p1).metrics().get("adgc.unreachable_stale"), 1u);
}

TEST(Adgc, AcyclicReplicatedGarbageFullyReclaimed) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  cluster.remove_root(p1, a);
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(cluster.process(p1).scions().empty());
  EXPECT_TRUE(cluster.process(p2).stubs().empty());
}

TEST(Adgc, EmptyNewSetStubsForgetsPeer) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  ASSERT_TRUE(cluster.process(p2).stub_peers().contains(p1));

  cluster.remove_ref(p2, a, b);
  cluster.collect(p2);  // stub dies; empty set announced; peer forgotten
  cluster.run_until_quiescent();
  EXPECT_FALSE(cluster.process(p2).stub_peers().contains(p1));
}

TEST(Adgc, ScionBeforeStubCausalOrder) {
  // §2.2.4: "scions are always created before the corresponding stubs".
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  EXPECT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}));
  EXPECT_FALSE(cluster.process(p2).stubs().contains(rm::StubKey{b, p1}));
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.process(p2).stubs().contains(rm::StubKey{b, p1}));
}

TEST(Adgc, OutPropBeforeInPropCausalOrder) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  EXPECT_NE(cluster.process(p1).find_out_prop(a, p2), nullptr);
  EXPECT_EQ(cluster.process(p2).find_in_prop(a, p1), nullptr);
  cluster.run_until_quiescent();
  EXPECT_NE(cluster.process(p2).find_in_prop(a, p1), nullptr);
}

TEST(Adgc, DiamondPropagationStillFullyReclaimed) {
  // a replicated p1->p2, then p1->p3 and p2->p3: p3 has two parents.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.propagate(a, p1, p3);
  cluster.propagate(a, p2, p3);
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.process(p3).in_props().size(), 2u);

  cluster.remove_root(p1, a);
  for (int i = 0; i < 10; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cluster.total_objects(), 0u)
      << "diamond-replicated garbage must still be fully reclaimed";
}

TEST(Adgc, CollectIsIdempotentOnLiveData) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.add_root(p2, a);

  for (int i = 0; i < 10; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_TRUE(cluster.process(p1).heap().contains(a));
  EXPECT_TRUE(cluster.process(p1).heap().contains(b));
  EXPECT_TRUE(cluster.process(p2).heap().contains(a));
}

}  // namespace
}  // namespace rgc::gc
