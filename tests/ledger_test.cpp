// Per-cycle cost ledger tests (obs/ledger.h): the critical-path
// decomposition identity on jittered mesh runs, byte-identical JSONL across
// worker-pool widths and across event-skip vs per-step schedules, the
// explain() drill-down, report/Prometheus surfacing, and the allocation
// bounds (completed ring overwrite, live-slot eviction).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/report.h"
#include "gc/cycle/cdm.h"
#include "obs/ledger.h"
#include "obs/prom.h"
#include "workload/figures.h"
#include "workload/mesh.h"

namespace rgc {
namespace {

using obs::Ledger;
using obs::LedgerConfig;
using obs::LedgerEntry;
using obs::LedgerHop;

core::ClusterConfig jittered_config(std::uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.net.seed = seed;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = 3;  // jitter puts real queue-wait on the hops
  return cfg;
}

/// Builds the §5.2 mesh, proves + reclaims its spanning cycle, and leaves
/// the cluster quiescent with at least one completed ledger entry.
void run_mesh_gc(core::Cluster& cluster, std::size_t processes = 4,
                 std::size_t deps = 8) {
  workload::build_mesh(cluster, {processes, deps, /*extra_replicas=*/0});
  cluster.run_until_quiescent();
  cluster.run_full_gc();
  cluster.run_until_quiescent();
  cluster.collect_all();
  cluster.run_until_quiescent();
}

std::string ledger_jsonl(const core::Cluster& cluster) {
  std::ostringstream os;
  cluster.ledger()->write_jsonl(os);
  return os.str();
}

// ---- The decomposition identity --------------------------------------------

TEST(LedgerTest, DecompositionIdentityHoldsOnJitteredMeshes) {
  for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
    core::Cluster cluster{jittered_config(seed)};
    run_mesh_gc(cluster);
    const Ledger* ledger = cluster.ledger();
    ASSERT_NE(ledger, nullptr);
    ASSERT_GT(ledger->completed(), 0u) << "seed " << seed;

    for (const LedgerEntry* e : ledger->entries()) {
      ASSERT_TRUE(e->complete);
      // e2e = detect + cut + sweep.
      EXPECT_EQ(e->e2e_steps, e->detect_steps + e->cut_wait_steps +
                                  e->cut_transit_steps + e->sweep_wait_steps)
          << "seed " << seed << " detection " << e->detection_id;
      // detect = sum over critical hops of (digest + wait + transit), and
      // the per-entry totals are exactly the per-hop sums.
      std::uint64_t digest = 0;
      std::uint64_t wait = 0;
      std::uint64_t transit = 0;
      for (const LedgerHop& hop : e->path) {
        digest += hop.digest_steps;
        wait += hop.wait_steps;
        transit += hop.transit_steps;
        EXPECT_EQ(hop.deliver_step - hop.sent_step,
                  hop.wait_steps + hop.transit_steps);
      }
      EXPECT_EQ(e->digest_steps, digest);
      EXPECT_EQ(e->wait_steps, wait);
      EXPECT_EQ(e->transit_steps, transit);
      EXPECT_EQ(e->detect_steps, digest + wait + transit)
          << "seed " << seed << " detection " << e->detection_id;
      // The chain is causal: contiguous in time, ending at the verdict.
      if (!e->path.empty()) {
        EXPECT_EQ(e->path.front().sent_step - e->path.front().digest_steps,
                  e->started_step);
        EXPECT_EQ(e->path.back().deliver_step, e->detected_step);
      }
      EXPECT_GE(e->reclaimed_step, e->detected_step);
      EXPECT_EQ(e->e2e_steps, e->reclaimed_step - e->started_step);
    }
  }
}

TEST(LedgerTest, MeshRunAttributesCutAndTraffic) {
  core::Cluster cluster{jittered_config(5)};
  run_mesh_gc(cluster);
  const Ledger* ledger = cluster.ledger();
  const auto top = ledger->slowest(1);
  ASSERT_EQ(top.size(), 1u);
  const LedgerEntry* e = top[0];
  EXPECT_GT(e->cdm_msgs, 0u);
  EXPECT_GT(e->cdm_weight, e->cdm_msgs);  // CDMs carry sets, weight > count
  EXPECT_GE(e->cut_msgs, 1u);
  EXPECT_GE(e->scions_cut + e->props_cut, 1u);
  EXPECT_GE(e->members_reclaimed, 1u);
  EXPECT_GT(e->hops, 0u);
  EXPECT_FALSE(e->dominant().empty());
  EXPECT_FALSE(e->path.empty());
}

// ---- Determinism -----------------------------------------------------------

TEST(LedgerTest, JsonlByteIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    core::ClusterConfig cfg = jittered_config(1234);
    cfg.threads = threads;
    core::Cluster cluster{cfg};
    run_mesh_gc(cluster, /*processes=*/6, /*deps=*/8);
    return ledger_jsonl(cluster);
  };
  const std::string serial = run(1);
  const std::string parallel = run(8);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel)
      << "ledger contents must not depend on ClusterConfig::threads";
}

TEST(LedgerTest, JsonlByteIdenticalAcrossSchedules) {
  // Event-skip (Cluster::advance / run_until_quiescent) promises a schedule
  // observably identical to per-step execution; the ledger reads virtual
  // steps off every hop, so byte-identical JSONL is a direct witness.
  const auto drive = [](bool event_skip) {
    core::Cluster cluster{jittered_config(99)};
    // Figure 2: one replicated garbage cycle across four processes, fully
    // reclaimable from a single detection + cut (figures_test proves this).
    const workload::Figure2 fig = workload::build_figure2(cluster);
    const auto drain = [&] {
      if (event_skip) {
        cluster.run_until_quiescent();
      } else {
        std::uint64_t steps = 0;
        while (!cluster.network().idle() && steps++ < 100000) cluster.step();
      }
    };
    drain();
    cluster.snapshot_all();
    cluster.detect(fig.p1, fig.x);
    drain();
    // The cut deletes X@P1's scion; acyclic rounds cascade the reclaim
    // through the remaining replicas back to the candidate.
    for (int round = 0; round < 8; ++round) {
      cluster.collect_all();
      drain();
    }
    return ledger_jsonl(cluster);
  };
  const std::string per_step = drive(false);
  const std::string skipped = drive(true);
  ASSERT_FALSE(per_step.empty());
  EXPECT_EQ(per_step, skipped)
      << "event-skip scheduling changed the ledger's observed lifecycle";
}

// ---- Drill-down & surfacing ------------------------------------------------

TEST(LedgerTest, ExplainPrintsTheCriticalPath) {
  core::Cluster cluster{jittered_config(3)};
  run_mesh_gc(cluster);
  const Ledger* ledger = cluster.ledger();
  const auto top = ledger->slowest(1);
  ASSERT_FALSE(top.empty());

  // id 0 explains the slowest completed cycle.
  const std::string text = ledger->explain(0);
  EXPECT_NE(text.find("cycle " + std::to_string(top[0]->detection_id)),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("critical path"), std::string::npos);
  EXPECT_NE(text.find("e2e"), std::string::npos);
  EXPECT_NE(text.find("dominant:"), std::string::npos);
  // Each critical hop renders one line.
  std::size_t hop_lines = 0;
  for (std::size_t at = text.find("digest "); at != std::string::npos;
       at = text.find("digest ", at + 1)) {
    ++hop_lines;
  }
  EXPECT_GE(hop_lines, top[0]->path.size());

  EXPECT_NE(ledger->explain(0xdead).find("unknown detection id"),
            std::string::npos);
  EXPECT_EQ(ledger->explain(top[0]->detection_id), text)
      << "explicit id of the slowest cycle must match explain(0)";
}

TEST(LedgerTest, ReportAndPrometheusSurfaceTheLedger) {
  core::Cluster cluster{jittered_config(2)};
  run_mesh_gc(cluster);

  const core::ClusterReport report = core::make_report(cluster);
  ASSERT_FALSE(report.slowest_cycles.empty());
  EXPECT_TRUE(report.slowest_cycles.front().complete);
  // Slowest first.
  for (std::size_t i = 1; i < report.slowest_cycles.size(); ++i) {
    EXPECT_GE(report.slowest_cycles[i - 1].e2e_steps,
              report.slowest_cycles[i].e2e_steps);
  }
  bool counter_present = false;
  for (const auto& [name, value] : report.gc_counters) {
    if (name == "ledger.cycles_reclaimed") {
      counter_present = true;
      EXPECT_GT(value, 0u);
    }
  }
  EXPECT_TRUE(counter_present);
  EXPECT_NE(report.to_string().find("slowest cycles (ledger)"),
            std::string::npos);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"slowest_cycles\""), std::string::npos);
  EXPECT_NE(json.find("\"detection_id\""), std::string::npos);

  std::ostringstream prom;
  obs::write_prometheus(cluster, prom);
  EXPECT_NE(prom.str().find("rgc_ledger_cycles_reclaimed"),
            std::string::npos);
  EXPECT_NE(prom.str().find("rgc_ledger_e2e_steps"), std::string::npos);
}

TEST(LedgerTest, DisabledWhenCapacityZero) {
  core::ClusterConfig cfg = jittered_config(1);
  cfg.ledger_capacity = 0;
  core::Cluster cluster{cfg};
  EXPECT_EQ(cluster.ledger(), nullptr);
  run_mesh_gc(cluster);  // still collects fine without a ledger
  EXPECT_TRUE(core::make_report(cluster).slowest_cycles.empty());
}

// ---- Allocation bounds (direct unit tests) ---------------------------------

gc::Cdm make_cdm(std::uint64_t id, std::uint64_t candidate,
                 std::uint64_t started) {
  gc::Cdm cdm;
  cdm.detection_id = id;
  cdm.candidate = Replica{ObjectId{candidate}, ProcessId{0}};
  cdm.started_step = started;
  return cdm;
}

TEST(LedgerTest, CompletedRingOverwritesOldest) {
  LedgerConfig cfg;
  cfg.capacity = 2;
  Ledger ledger{cfg};
  for (std::uint64_t i = 1; i <= 3; ++i) {
    ledger.cycle_proven(ProcessId{0}, make_cdm(i, 100 + i, 10 * i), 0);
    ledger.object_reclaimed(ProcessId{0}, ObjectId{100 + i}, 10 * i + 5);
  }
  EXPECT_EQ(ledger.completed(), 3u);
  EXPECT_EQ(ledger.metrics().get("ledger.entries_overwritten"), 1u);
  const auto kept = ledger.entries();
  ASSERT_EQ(kept.size(), 2u);
  // Oldest-first ring order: detection 1 was overwritten, 2 and 3 remain.
  EXPECT_EQ(kept[0]->detection_id, 2u);
  EXPECT_EQ(kept[1]->detection_id, 3u);
  EXPECT_EQ(ledger.find(1), nullptr);
}

TEST(LedgerTest, LiveSlotsEvictOldestWhenFull) {
  LedgerConfig cfg;
  cfg.max_live = 2;
  Ledger ledger{cfg};
  // Three concurrent (never reclaimed) detections through two slots.
  ledger.cycle_proven(ProcessId{0}, make_cdm(1, 101, 10), 0);
  ledger.cycle_proven(ProcessId{0}, make_cdm(2, 102, 20), 0);
  EXPECT_EQ(ledger.live(), 2u);
  ledger.cycle_proven(ProcessId{0}, make_cdm(3, 103, 30), 0);
  EXPECT_EQ(ledger.live(), 2u);
  EXPECT_EQ(ledger.metrics().get("ledger.evictions"), 1u);
  EXPECT_EQ(ledger.find(1), nullptr);  // the oldest track was evicted
  ASSERT_NE(ledger.find(3), nullptr);
  // The evicted detection's member no longer completes anything.
  ledger.object_reclaimed(ProcessId{0}, ObjectId{101}, 99);
  EXPECT_EQ(ledger.completed(), 0u);
}

TEST(LedgerTest, DuplicateVerdictsAreCountedOnce) {
  Ledger ledger;
  const gc::Cdm cdm = make_cdm(7, 107, 10);
  ledger.cycle_proven(ProcessId{0}, cdm, 0);
  ledger.cycle_proven(ProcessId{1}, cdm, 0);  // racing duplicate verdict
  EXPECT_EQ(ledger.metrics().get("ledger.cycles_proven"), 1u);
  EXPECT_EQ(ledger.metrics().get("ledger.duplicate_verdicts"), 1u);
  ASSERT_NE(ledger.find(7), nullptr);
  EXPECT_EQ(ledger.find(7)->verdict_process, ProcessId{0});  // first wins
}

TEST(LedgerTest, ZeroHopLocalDetectionCompletes) {
  Ledger ledger;
  ledger.cycle_proven(ProcessId{2}, make_cdm(9, 109, 40), /*unlinked=*/35);
  ledger.object_reclaimed(ProcessId{0}, ObjectId{109}, 44);
  const LedgerEntry* e = ledger.find(9);
  ASSERT_NE(e, nullptr);
  EXPECT_TRUE(e->complete);
  EXPECT_TRUE(e->path.empty());
  EXPECT_EQ(e->detect_steps, 0u);
  EXPECT_EQ(e->unlinked_step, 35u);
  // No cut observed: the whole post-verdict stretch is sweep wait.
  EXPECT_EQ(e->sweep_wait_steps, 4u);
  EXPECT_EQ(e->e2e_steps, 4u);
}

}  // namespace
}  // namespace rgc
