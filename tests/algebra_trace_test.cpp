// Wire-level verification of the paper's worked algebra traces (§3.3,
// §3.4): a network tap records every CDM in flight and the tests assert
// the algebra's evolution hop by hop.
#include <gtest/gtest.h>

#include <vector>

#include "core/cluster.h"
#include "gc/cycle/cdm.h"
#include "workload/figures.h"

namespace rgc::gc {
namespace {

using core::Cluster;

struct Hop {
  ProcessId src, dst;
  ObjectId entry;
  EntryVia via;
  Cdm cdm;
};

std::vector<Hop> tap_detection(Cluster& cluster, ProcessId at,
                               ObjectId candidate) {
  std::vector<Hop> hops;
  cluster.network().set_tap([&hops](const net::Envelope& env) {
    if (const auto* m = dynamic_cast<const CdmMsg*>(env.msg)) {
      hops.push_back(Hop{env.src, env.dst, m->entry, m->via, m->cdm});
    }
  });
  cluster.snapshot_all();
  EXPECT_TRUE(cluster.detect(at, candidate).has_value());
  cluster.run_until_quiescent();
  cluster.network().set_tap(nullptr);
  return hops;
}

TEST(AlgebraTrace, Figure2HopSequenceMatchesThePaper) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const auto hops = tap_detection(cluster, f.p1, f.x);

  // §3.3's steps 4/11/17/23: P1 -> P2 -> P4 -> P3 -> P1.
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops[0].src, f.p1);
  EXPECT_EQ(hops[0].dst, f.p2);
  EXPECT_EQ(hops[0].via, EntryVia::kProp);  // forward to child X'
  EXPECT_EQ(hops[0].entry, f.x);

  EXPECT_EQ(hops[1].src, f.p2);
  EXPECT_EQ(hops[1].dst, f.p4);
  EXPECT_EQ(hops[1].via, EntryVia::kRef);  // X' -> Y
  EXPECT_EQ(hops[1].entry, f.y);

  EXPECT_EQ(hops[2].src, f.p4);
  EXPECT_EQ(hops[2].dst, f.p3);
  EXPECT_EQ(hops[2].via, EntryVia::kProp);  // forward to child Y'
  EXPECT_EQ(hops[2].entry, f.y);

  EXPECT_EQ(hops[3].src, f.p3);
  EXPECT_EQ(hops[3].dst, f.p1);
  EXPECT_EQ(hops[3].via, EntryVia::kRef);  // Y' -> X, closing the loop
  EXPECT_EQ(hops[3].entry, f.x);
}

TEST(AlgebraTrace, Figure2AlgebraEvolvesLikeThePaper) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const auto hops = tap_detection(cluster, f.p1, f.x);
  ASSERT_EQ(hops.size(), 4u);

  const Element xp1 = Element::make(Replica{f.x, f.p1});
  const Element xp2 = Element::make(Replica{f.x, f.p2});
  const Element yp3 = Element::make(Replica{f.y, f.p3});
  const Element yp4 = Element::make(Replica{f.y, f.p4});

  // Alg1 (paper step 3): {{X'_P2}, {X_P1}} -> {} — the candidate seeds the
  // reference dependencies, its child the propagation dependencies, and
  // the target set is still empty.
  EXPECT_TRUE(hops[0].cdm.prop_deps.contains(xp2));
  EXPECT_TRUE(hops[0].cdm.ref_deps.contains(xp1));
  EXPECT_TRUE(hops[0].cdm.targets.empty());

  // Alg2 (step 10): X'_P2 visited, Y_P4 about to be.
  EXPECT_TRUE(hops[1].cdm.targets.contains(xp2));
  EXPECT_FALSE(hops[1].cdm.targets.contains(yp4));

  // Alg3 (step 16): Y_P4 visited, its child Y'_P3 a propagation dep.
  EXPECT_TRUE(hops[2].cdm.targets.contains(yp4));
  EXPECT_TRUE(hops[2].cdm.prop_deps.contains(yp3));

  // Alg4 (step 22): everything but the candidate visited.
  EXPECT_TRUE(hops[3].cdm.targets.contains(xp2));
  EXPECT_TRUE(hops[3].cdm.targets.contains(yp4));
  EXPECT_TRUE(hops[3].cdm.targets.contains(yp3));
  EXPECT_FALSE(hops[3].cdm.targets.contains(xp1))
      << "the candidate enters the target set only at the final visit";

  // Monotonicity: the target set only grows along the walk.
  for (std::size_t i = 1; i < hops.size(); ++i) {
    EXPECT_TRUE(hops[i - 1].cdm.targets.subset_of(hops[i].cdm.targets))
        << "hop " << i;
  }

  // The final verdict (§3.3 step 27: {{}, {}} -> {}).
  ASSERT_EQ(cluster.cycles_found().size(), 1u);
  EXPECT_TRUE(cluster.cycles_found().front().cycle_complete());
  EXPECT_TRUE(cluster.cycles_found().front().unresolved().empty());
}

TEST(AlgebraTrace, Figure3ForksAtP2LikeThePaper) {
  Cluster cluster;
  const auto f = workload::build_figure3(cluster);
  const auto hops = tap_detection(cluster, f.p1, f.c);

  // §3.4 steps 6/7: two CDMs leave P2 in the same step — one toward E@P3,
  // one toward I@P5 — carrying the same algebra.
  std::vector<const Hop*> from_p2;
  for (const Hop& hop : hops) {
    if (hop.src == f.p2) from_p2.push_back(&hop);
  }
  ASSERT_EQ(from_p2.size(), 2u);
  std::set<ProcessId> dests{from_p2[0]->dst, from_p2[1]->dst};
  EXPECT_TRUE(dests.contains(f.p3));
  EXPECT_TRUE(dests.contains(f.p5));
  EXPECT_EQ(from_p2[0]->cdm.targets, from_p2[1]->cdm.targets)
      << "the fork duplicates the algebra (Alg2a == Alg2b)";

  // Track a (via P3/P6) closes the cycle; the verdict exists and covers
  // the F-replicas (paper steps 17-19).
  ASSERT_GE(cluster.cycles_found().size(), 1u);
  const Cdm& verdict = cluster.cycles_found().front();
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.f, f.p6})));
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.f, f.p3})));
  EXPECT_TRUE(verdict.targets.contains(Element::make(Replica{f.f, f.p5})));
}

TEST(AlgebraTrace, Figure3TrackBResolvesItsReplicaDependencyInline) {
  // In the paper, track b reaches P1 still owing F''_P5 ("we did not
  // traverse this object, we only know that it references an object being
  // checked for garbage") and stops.  Our refinement (DESIGN.md §7a.6)
  // examines local replicated ancestors *inline* against the same
  // snapshot, so the CDM leaving P5 toward I'@P4 already carries F''_P5
  // both as a dependency and as a visited target — track b does not have
  // to die on it.
  Cluster cluster;
  const auto f = workload::build_figure3(cluster);
  const auto hops = tap_detection(cluster, f.p1, f.c);
  const Element f_at_p5 = Element::make(Replica{f.f, f.p5});
  bool dep_recorded = false;
  for (const Hop& hop : hops) {
    if (hop.src != f.p5) continue;
    if (hop.cdm.ref_deps.contains(f_at_p5)) {
      dep_recorded = true;
      EXPECT_TRUE(hop.cdm.targets.contains(f_at_p5))
          << "the local ancestor must have been examined inline";
    }
  }
  EXPECT_TRUE(dep_recorded) << "F''_P5 must appear as a dependency";
}

}  // namespace
}  // namespace rgc::gc
