// Tracing & telemetry layer tests: metric handles, histograms, the null
// sink's zero-cost default, CDM lineage-tree invariants on a real
// 3-process cycle detection, and exporter well-formedness.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/report.h"
#include "util/metrics.h"
#include "util/trace.h"
#include "workload/mesh.h"

namespace rgc {
namespace {

// ---------------------------------------------------------------------------
// Metric handles

TEST(MetricsTest, CounterHandleSharesStorageWithStringApi) {
  util::Metrics m;
  util::Counter c = m.counter("x");
  c.inc();
  c.inc(4);
  EXPECT_EQ(m.get("x"), 5u);
  m.add("x", 2);
  EXPECT_EQ(c.value(), 7u);
}

TEST(MetricsTest, HandlesSurviveLaterRegistrationsAndReset) {
  util::Metrics m;
  util::Counter first = m.counter("a");
  // Force rebalancing pressure: many later registrations must not move the
  // node the handle points into.
  for (int i = 0; i < 100; ++i) m.counter("k" + std::to_string(i)).inc();
  first.inc();
  EXPECT_EQ(m.get("a"), 1u);
  m.reset();
  EXPECT_EQ(first.value(), 0u);
  first.inc();
  EXPECT_EQ(m.get("a"), 1u);
}

TEST(MetricsTest, GaugeStoresLastValue) {
  util::Metrics m;
  util::Gauge g = m.gauge("depth");
  g.set(7);
  g.set(3);
  EXPECT_EQ(m.gauge_value("depth"), 3u);
}

TEST(MetricsTest, HistogramRecordsMomentsAndLog2Buckets) {
  util::Histogram h;
  h.record(0);
  h.record(1);
  h.record(5);
  h.record(100);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 106u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 106.0 / 4.0);
  EXPECT_EQ(h.buckets()[0], 1u);  // value 0 (bit width 0)
  EXPECT_EQ(h.buckets()[1], 1u);  // value 1
  EXPECT_EQ(h.buckets()[3], 1u);  // 5 in [4,8)
  EXPECT_EQ(h.buckets()[7], 1u);  // 100 in [64,128)
  EXPECT_EQ(util::Histogram::bucket_floor(3), 4u);
  EXPECT_EQ(util::Histogram::bucket_floor(7), 64u);
}

TEST(MetricsTest, HistogramMergeCombinesDistributions) {
  util::Histogram a;
  util::Histogram b;
  a.record(2);
  a.record(9);
  b.record(1);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 9u);
  util::Histogram empty;
  a.merge(empty);  // merging an empty histogram must not disturb min
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.count(), 3u);
}

// ---------------------------------------------------------------------------
// Trace plumbing

class TraceFixture : public ::testing::Test {
 protected:
  void SetUp() override { util::Trace::instance().set_sink(&timeline_); }
  void TearDown() override { util::Trace::instance().set_sink(nullptr); }
  util::Timeline timeline_;
};

TEST(TraceNullSinkTest, DisabledByDefaultAndEmitsNothing) {
  auto& trace = util::Trace::instance();
  ASSERT_FALSE(trace.enabled());
  EXPECT_EQ(trace.instant("x.never", ProcessId{1}, 0, true), 0u);
  {
    TRACE_SPAN("x.span", ProcessId{1});
  }
  util::Timeline probe;
  trace.set_sink(&probe);
  EXPECT_EQ(probe.size(), 0u);  // nothing buffered anywhere while disabled
  trace.set_sink(nullptr);
}

TEST_F(TraceFixture, SpanGuardRecordsDurationsAndArgs) {
  util::Trace::set_sim_now(10);
  {
    util::SpanGuard span{"test.work", ProcessId{2}};
    util::Trace::set_sim_now(14);
    span.arg("items", 3);
  }
  util::Trace::set_sim_now(0);
  ASSERT_EQ(timeline_.size(), 1u);
  const util::TraceEvent& ev = timeline_.events()[0];
  EXPECT_EQ(ev.type, util::TraceEventType::kSpan);
  EXPECT_STREQ(ev.name, "test.work");
  EXPECT_EQ(ev.sim_step, 10u);
  EXPECT_EQ(ev.dur_steps, 4u);
  EXPECT_EQ(ev.process, 2u);
  ASSERT_EQ(ev.args.size(), 1u);
  EXPECT_EQ(ev.args[0].key, "items");
  EXPECT_EQ(ev.args[0].value, "3");
}

TEST_F(TraceFixture, InstantLineageIdsAreFreshAndReturned) {
  auto& trace = util::Trace::instance();
  const std::uint64_t a = trace.instant("t.a", ProcessId{1}, 0, true);
  const std::uint64_t b = trace.instant("t.b", ProcessId{1}, a, true);
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(trace.instant("t.c", ProcessId{1}, b, false), 0u);
  ASSERT_EQ(timeline_.size(), 3u);
  EXPECT_EQ(timeline_.events()[1].parent, a);
  EXPECT_EQ(timeline_.events()[2].parent, b);
}

// ---------------------------------------------------------------------------
// CDM lineage on a real detection

/// Runs one replication-aware cycle detection on an N-process ring mesh
/// with the sink attached; the mesh's garbage cycle spans every process.
void run_detection(util::Timeline& timeline, std::size_t processes) {
  core::ClusterConfig cfg;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh =
      workload::build_mesh(cluster, {processes, /*deps=*/6});
  cluster.snapshot_all();
  cluster.detect(mesh.head_process, mesh.head);
  while (cluster.cycles_found().empty() && !cluster.network().idle()) {
    cluster.step();
  }
  ASSERT_FALSE(cluster.cycles_found().empty()) << "detection did not converge";
  cluster.run_until_quiescent();
  ASSERT_GT(timeline.size(), 0u);
}

TEST_F(TraceFixture, DetectionEmitsWellFormedCdmLineageTree) {
  run_detection(timeline_, 3);
  if (HasFatalFailure()) return;
  const auto& events = timeline_.events();

  // Every event's lineage id is unique, and every causal parent refers to
  // an event that *precedes* it in the buffer (causality in push order).
  std::map<std::uint64_t, std::size_t> index_of;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].id != 0) {
      EXPECT_FALSE(index_of.contains(events[i].id)) << "duplicate lineage id";
      index_of[events[i].id] = i;
    }
  }
  std::size_t causal_edges = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].parent == 0) continue;
    ++causal_edges;
    auto it = index_of.find(events[i].parent);
    ASSERT_NE(it, index_of.end())
        << events[i].name << " references unknown parent";
    EXPECT_LT(it->second, i) << events[i].name << " precedes its parent";
  }
  EXPECT_GT(causal_edges, 0u);

  // The detection must leave a verdict whose chain walks back through CDM
  // hops to the detection's root, crossing at least two processes.
  const util::TraceEvent* detected = nullptr;
  for (const auto& ev : events) {
    if (std::string_view{ev.name} == "cycle.detected") detected = &ev;
  }
  ASSERT_NE(detected, nullptr);
  ASSERT_NE(detected->parent, 0u) << "verdict must name the closing CDM";

  std::set<std::uint32_t> chain_procs{detected->process};
  std::set<std::string> chain_names;
  const util::TraceEvent* cur = detected;
  std::size_t hops = 0;
  while (cur->parent != 0) {
    ASSERT_LT(++hops, 10000u) << "lineage chain does not terminate";
    auto it = index_of.find(cur->parent);
    ASSERT_NE(it, index_of.end());
    cur = &events[it->second];
    chain_procs.insert(cur->process);
    chain_names.insert(cur->name);
  }
  EXPECT_STREQ(cur->name, "cdm.start") << "chain must root at the detection";
  EXPECT_GE(chain_procs.size(), 2u) << "lineage must cross processes";
  // The ring forces at least one remote hop, so a send and a receive must
  // both appear on the winning track.
  EXPECT_TRUE(chain_names.contains("cdm.recv"));
  EXPECT_TRUE(chain_names.contains("cdm.send") ||
              chain_names.contains("cdm.forward"));
}

// ---------------------------------------------------------------------------
// Exporters

/// Validates JSON nesting outside string literals; returns true when every
/// brace/bracket closes and the text ends at depth zero.
bool balanced_json(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : text) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{':
      case '[': ++depth; break;
      case '}':
      case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

TEST_F(TraceFixture, JsonlExportIsOneValidObjectPerLine) {
  run_detection(timeline_, 3);
  if (HasFatalFailure()) return;
  std::ostringstream os;
  timeline_.write_jsonl(os);
  const std::string text = os.str();
  ASSERT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    ++count;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_TRUE(balanced_json(line)) << line;
    EXPECT_NE(line.find("\"type\":"), std::string::npos);
    EXPECT_NE(line.find("\"step\":"), std::string::npos);
  }
  EXPECT_EQ(count, timeline_.size());
}

TEST_F(TraceFixture, ChromeTraceExportIsWellFormedAndCarriesLineage) {
  run_detection(timeline_, 3);
  if (HasFatalFailure()) return;
  std::ostringstream os;
  timeline_.write_chrome_trace(os);
  const std::string text = os.str();
  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_TRUE(balanced_json(text));
  // Slices, flow arrows (the lineage rendering), and track names.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(text.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(text.find("\"process_name\""), std::string::npos);
  EXPECT_NE(text.find("cdm.start"), std::string::npos);
  EXPECT_NE(text.find("cycle.detected"), std::string::npos);
}

TEST_F(TraceFixture, FullGcTimelineHasSpansAndReportJsonIsBalanced) {
  core::ClusterConfig cfg;
  core::Cluster cluster{cfg};
  workload::build_mesh(cluster, {3, 4});
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);

  bool lgc_span = false;
  bool snapshot_span = false;
  for (const auto& ev : timeline_.events()) {
    if (ev.type != util::TraceEventType::kSpan) continue;
    const std::string_view name{ev.name};
    lgc_span = lgc_span || name == "lgc.collect";
    snapshot_span = snapshot_span || name == "cycle.snapshot";
  }
  EXPECT_TRUE(lgc_span);
  EXPECT_TRUE(snapshot_span);

  const core::ClusterReport report = core::make_report(cluster);
  const std::string json = report.to_json();
  EXPECT_TRUE(balanced_json(json)) << json;
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("cdm.hops"), std::string::npos);
}

}  // namespace
}  // namespace rgc
