// Unit tests: the local collector — four trace families, Union Rule
// preservation, stub-set regeneration, sweep, finalization strategies.
#include <gtest/gtest.h>

#include "gc/lgc/lgc.h"
#include "net/network.h"
#include "rm/process.h"

namespace rgc::gc {
namespace {

struct LgcFixture : ::testing::Test {
  net::Network net;
  rm::Process p1{ProcessId{1}, net};
  rm::Process p2{ProcessId{2}, net};

  void SetUp() override {
    net.attach(ProcessId{1}, [this](const net::Envelope& env) { route(p1, env); });
    net.attach(ProcessId{2}, [this](const net::Envelope& env) { route(p2, env); });
  }

  static void route(rm::Process& p, const net::Envelope& env) {
    if (const auto* m = dynamic_cast<const rm::PropagateMsg*>(env.msg)) {
      p.on_propagate(env, *m);
    } else if (const auto* m = dynamic_cast<const rm::InvokeMsg*>(env.msg)) {
      p.on_invoke(env, *m);
    }
  }

  void quiesce() { net.run_until_quiescent(); }
};

TEST_F(LgcFixture, RootedObjectsSurvive) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.add_root(ObjectId{1});
  const auto r = Lgc::collect(p1);
  EXPECT_TRUE(r.reclaimed.empty());
  EXPECT_EQ(r.object_reach.at(ObjectId{1}) & kReachRoot, kReachRoot);
  EXPECT_EQ(r.object_reach.at(ObjectId{2}) & kReachRoot, kReachRoot);
}

TEST_F(LgcFixture, UnreachableObjectsAreSwept) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  const auto r = Lgc::collect(p1);
  EXPECT_EQ(r.reclaimed.size(), 2u);
  EXPECT_EQ(p1.heap().size(), 0u);
}

TEST_F(LgcFixture, LocalCycleIsCollected) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.add_ref(ObjectId{2}, ObjectId{1});
  const auto r = Lgc::collect(p1);
  EXPECT_EQ(r.reclaimed.size(), 2u);
}

TEST_F(LgcFixture, ScionAnchoredObjectSurvives) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});  // exports scion for o2
  quiesce();
  // o1 keeps both alive locally; remove the chain so only the scion holds o2.
  p1.remove_ref(ObjectId{1}, ObjectId{2});
  const auto r = Lgc::collect(p1);
  EXPECT_TRUE(p1.heap().contains(ObjectId{2}));
  EXPECT_EQ(r.object_reach.at(ObjectId{2}) & kReachScion, kReachScion);
}

TEST_F(LgcFixture, TransientInvocationRootsCountAsRoots) {
  p1.create_object(ObjectId{1});
  p1.pin_transient_root(ObjectId{1}, 2);
  auto r = Lgc::collect(p1);
  EXPECT_TRUE(p1.heap().contains(ObjectId{1}));
  p1.tick();
  p1.tick();
  r = Lgc::collect(p1);
  EXPECT_FALSE(p1.heap().contains(ObjectId{1}));
}

TEST_F(LgcFixture, UnionRulePreservesOutPropagatedReplica) {
  p1.create_object(ObjectId{1});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  // No root, no scion: only the outProp entry anchors the parent replica.
  const auto r = Lgc::collect(p1);
  EXPECT_TRUE(p1.heap().contains(ObjectId{1}));
  EXPECT_EQ(r.object_reach.at(ObjectId{1}) & kReachOutProp, kReachOutProp);
}

TEST_F(LgcFixture, UnionRulePreservesInPropagatedReplica) {
  p1.create_object(ObjectId{1});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  const auto r = Lgc::collect(p2);
  EXPECT_TRUE(p2.heap().contains(ObjectId{1}));
  EXPECT_EQ(r.object_reach.at(ObjectId{1}) & kReachInProp, kReachInProp);
}

TEST_F(LgcFixture, UnionRuleOffLosesThePropagatedReplica) {
  p1.create_object(ObjectId{1});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  LgcConfig cfg;
  cfg.union_rule = false;  // the classical, replication-blind collector
  Lgc::collect(p1, cfg);
  EXPECT_FALSE(p1.heap().contains(ObjectId{1}))
      << "without the Union Rule the parent replica is (unsafely) swept";
}

TEST_F(LgcFixture, StubSetRegenerationKeepsLiveStubsOnly) {
  // Build two stubs at p2 by importing two references, then cut one holder.
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.create_object(ObjectId{3});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{3});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  ASSERT_EQ(p2.stubs().size(), 2u);
  p2.add_root(ObjectId{1});
  p2.remove_ref(ObjectId{1}, ObjectId{3});

  const auto r = Lgc::collect(p2);
  EXPECT_TRUE(r.live_stubs.contains(rm::StubKey{ObjectId{2}, ProcessId{1}}));
  EXPECT_FALSE(r.live_stubs.contains(rm::StubKey{ObjectId{3}, ProcessId{1}}));
  EXPECT_FALSE(p2.stubs().contains(rm::StubKey{ObjectId{3}, ProcessId{1}}));
}

TEST_F(LgcFixture, RootHeldRemoteReferenceKeepsStub) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  // p2 roots the remote object directly (a register holding a remote ref)
  // and drops the replica that imported it.
  p2.add_root(ObjectId{2});
  const auto r = Lgc::collect(p2);
  EXPECT_TRUE(r.live_stubs.contains(rm::StubKey{ObjectId{2}, ProcessId{1}}));
  EXPECT_EQ(r.stub_reach.at(rm::StubKey{ObjectId{2}, ProcessId{1}}) & kReachRoot,
            kReachRoot);
}

TEST_F(LgcFixture, ReachabilityClassesAreDisjointWhenExpected) {
  p1.create_object(ObjectId{1});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  p1.add_root(ObjectId{1});
  const auto r = Lgc::collect(p1);
  const auto mask = r.object_reach.at(ObjectId{1});
  EXPECT_TRUE(mask & kReachRoot);
  EXPECT_TRUE(mask & kReachOutProp);
  EXPECT_FALSE(mask & kReachScion);
  EXPECT_FALSE(mask & kReachInProp);
}

// ---- Finalization strategies (the Figure 6/7 machinery) -----------------

TEST_F(LgcFixture, FinalizerNoneCollectsFinalizableObjects) {
  Finalizer fin{FinalizeStrategy::kNone};
  p1.create_object(ObjectId{1}).finalizable = true;
  LgcConfig cfg;
  cfg.finalizer = &fin;
  const auto r = Lgc::collect(p1, cfg);
  EXPECT_EQ(r.reclaimed.size(), 1u);
  EXPECT_EQ(r.resurrected, 0u);
}

TEST_F(LgcFixture, ReRegisterResurrectsEveryCollection) {
  Finalizer fin{FinalizeStrategy::kReRegister};
  p1.create_object(ObjectId{1}).finalizable = true;
  LgcConfig cfg;
  cfg.finalizer = &fin;
  for (int i = 0; i < 5; ++i) {
    const auto r = Lgc::collect(p1, cfg);
    EXPECT_EQ(r.resurrected, 1u) << "iteration " << i;
    EXPECT_TRUE(p1.heap().contains(ObjectId{1}));
  }
  EXPECT_EQ(fin.finalized_count(), 5u);
}

TEST_F(LgcFixture, ReconstructionFreshResurrectsWithSameEdges) {
  Finalizer fin{FinalizeStrategy::kReconstructionFresh};
  p1.create_object(ObjectId{1}).finalizable = true;
  p1.create_object(ObjectId{2}).finalizable = true;
  p1.add_ref(ObjectId{1}, ObjectId{2});
  LgcConfig cfg;
  cfg.finalizer = &fin;
  const auto r = Lgc::collect(p1, cfg);
  EXPECT_EQ(r.resurrected, 2u);
  ASSERT_TRUE(p1.heap().contains(ObjectId{1}));
  EXPECT_EQ(p1.heap().find(ObjectId{1})->ref_targets(),
            (std::vector<ObjectId>{ObjectId{2}}));
  // Fresh reconstruction re-arms the finalizer (Java's run-once semantics
  // are restored by building a new object).
  EXPECT_TRUE(p1.heap().find(ObjectId{1})->finalizable);
}

TEST_F(LgcFixture, ReconstructionInPlaceDoesNotReArmAutomatically) {
  Finalizer fin{FinalizeStrategy::kReconstructionInPlace};
  p1.create_object(ObjectId{1}).finalizable = true;
  LgcConfig cfg;
  cfg.finalizer = &fin;
  auto r = Lgc::collect(p1, cfg);
  EXPECT_EQ(r.resurrected, 1u);
  // In-place reconstruction without ReRegister: finalizable stays cleared,
  // so the next collection sweeps the object.
  r = Lgc::collect(p1, cfg);
  EXPECT_EQ(r.reclaimed.size(), 1u);
}

TEST_F(LgcFixture, RootedFinalizableObjectsAreNeverFinalized) {
  Finalizer fin{FinalizeStrategy::kReRegister};
  p1.create_object(ObjectId{1}).finalizable = true;
  p1.add_root(ObjectId{1});
  LgcConfig cfg;
  cfg.finalizer = &fin;
  Lgc::collect(p1, cfg);
  EXPECT_EQ(fin.finalized_count(), 0u);
}

TEST_F(LgcFixture, TracedCountGrowsWithHeap) {
  for (int i = 0; i < 50; ++i) {
    const ObjectId id{static_cast<std::uint64_t>(i)};
    p1.create_object(id);
    p1.add_root(id);
  }
  const auto r = Lgc::collect(p1);
  EXPECT_GE(r.traced, 50u);
}

}  // namespace
}  // namespace rgc::gc
