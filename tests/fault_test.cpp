// Fault-injection tests: the GC's advisory traffic (NewSetStubs, CDMs)
// rides an unreliable transport — messages may be lost, duplicated or
// reordered by jitter.  Safety must be unconditional; completeness may
// need extra rounds but must still be reached.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/figures.h"
#include "workload/random_mutator.h"

namespace rgc {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::Oracle;

ClusterConfig lossy(std::uint64_t seed, double drop, double dup,
                    std::uint32_t max_delay = 4) {
  ClusterConfig cfg;
  cfg.net.seed = seed;
  cfg.net.drop_probability = drop;
  cfg.net.duplicate_probability = dup;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = max_delay;
  return cfg;
}

TEST(Faults, JitterAloneChangesNothingObservable) {
  Cluster cluster{lossy(11, 0.0, 0.0, 6)};
  const auto f = workload::build_figure2(cluster);
  (void)f;
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
}

TEST(Faults, DetectionSurvivesDuplicatedCdms) {
  Cluster cluster{lossy(12, 0.0, 0.5)};
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  // Duplicates must not produce double verdicts or double cuts that harm
  // anything; the cycle is reclaimed exactly once.
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
}

TEST(Faults, DroppedCdmsNeverHurtSafetyAndRetriesConverge) {
  Cluster cluster{lossy(13, 0.5, 0.0)};
  const auto f = workload::build_figure2(cluster);
  (void)f;
  // With 50% CDM loss a single detection often dies; repeated rounds with
  // fresh snapshots eventually get one through.
  bool collected = false;
  for (int attempt = 0; attempt < 30 && !collected; ++attempt) {
    cluster.run_full_gc(2);
    collected = cluster.total_objects() == 0;
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty()) << report.violations.front();
  }
  EXPECT_TRUE(collected) << "retries across rounds must converge";
}

TEST(Faults, LiveDataSurvivesArbitraryGcMessageLoss) {
  Cluster cluster{lossy(14, 0.7, 0.2)};
  const auto f = workload::build_figure1(cluster);
  for (int i = 0; i < 10; ++i) {
    cluster.run_full_gc(2);
    ASSERT_TRUE(cluster.process(f.p3).heap().contains(f.z))
        << "live Z lost under message loss at round " << i;
    ASSERT_TRUE(cluster.process(f.p2).heap().contains(f.x));
  }
}

TEST(Faults, RandomWorkloadUnderLossKeepsSafety) {
  Cluster cluster{lossy(15, 0.3, 0.1, 5)};
  for (int i = 0; i < 4; ++i) cluster.add_process();
  workload::MutatorSpec spec;
  spec.seed = 999;
  workload::RandomMutator mutator{cluster, spec};
  for (int burst = 0; burst < 6; ++burst) {
    mutator.run(150);
    cluster.run_until_quiescent();
    cluster.run_full_gc(3);
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty())
        << "burst " << burst << ": " << report.violations.front();
  }
}

TEST(Faults, CompletenessUnderModerateLossEventually) {
  Cluster cluster{lossy(16, 0.2, 0.05)};
  for (int i = 0; i < 3; ++i) cluster.add_process();
  workload::MutatorSpec spec;
  spec.seed = 4242;
  workload::RandomMutator mutator{cluster, spec};
  mutator.run(400);
  cluster.run_until_quiescent();

  bool done = false;
  for (int attempt = 0; attempt < 40 && !done; ++attempt) {
    cluster.run_full_gc(2);
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty());
    done = report.garbage_objects().empty();
  }
  EXPECT_TRUE(done) << "completeness must be reached despite losses";
}

TEST(Faults, ReliablePlaneIsImmuneToInjection) {
  // Propagations and invocations (the application plane) must behave
  // identically under heavy injection: they ride the reliable transport.
  Cluster cluster{lossy(17, 0.9, 0.9)};
  const ProcessId a = cluster.add_process();
  const ProcessId b = cluster.add_process();
  const ObjectId x = cluster.new_object(a);
  const ObjectId y = cluster.new_object(a);
  cluster.add_root(a, x);
  cluster.add_ref(a, x, y);
  cluster.propagate(x, a, b);
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.process(b).has_replica(x));
  cluster.invoke(b, y);
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.process(a).scions().at(rm::ScionKey{b, y}).ic, 1u);
}

}  // namespace
}  // namespace rgc
