// Edge-case tests across modules: detector configuration variants, chain
// summaries, LGC options, message weights, heuristic internals.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "gc/cycle/heuristics.h"
#include "gc/lgc/lgc.h"
#include "workload/figures.h"
#include "workload/mesh.h"

namespace rgc {
namespace {

using core::Cluster;
using core::ClusterConfig;

// ---- Detector configuration variants --------------------------------------

TEST(DetectorConfigEdge, DeferPropsStillDetectsFigure2) {
  ClusterConfig cfg;
  cfg.detector.defer_props = true;
  Cluster cluster{cfg};
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(f.p1, f.x).has_value());
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.cycles_found().size(), 1u);
  // Figure 2's trace is ref/prop-alternating; both policies walk the same
  // four hops.
  EXPECT_EQ(cluster.network().total_sent("CDM"), 4u);
}

TEST(DetectorConfigEdge, DeferPropsStillDetectsFigure3) {
  ClusterConfig cfg;
  cfg.detector.defer_props = true;
  Cluster cluster{cfg};
  const auto f = workload::build_figure3(cluster);
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(f.p1, f.c).has_value());
  cluster.run_until_quiescent();
  EXPECT_GE(cluster.cycles_found().size(), 1u);
}

TEST(DetectorConfigEdge, AllPolicyCombinationsCollectTheMesh) {
  for (const bool children_first : {true, false}) {
    for (const bool defer_props : {true, false}) {
      ClusterConfig cfg;
      cfg.detector.children_first = children_first;
      cfg.detector.defer_props = defer_props;
      Cluster cluster{cfg};
      workload::build_mesh(cluster, {3, 4});
      cluster.run_full_gc();
      EXPECT_EQ(cluster.total_objects(), 0u)
          << "children_first=" << children_first
          << " defer_props=" << defer_props;
    }
  }
}

// ---- Stub–scion chain summaries --------------------------------------------

TEST(SummaryEdge, ChainScionForwardsThroughItsStub) {
  // o lives on P0; P1 imports the reference; P2 imports it *from P1*:
  // P1's scion for o (from P2) is a chain hop whose anchor is not local —
  // its StubsFrom must carry the onward stub so the chain stays alive.
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId o = cluster.new_object(p0);
  const ObjectId h0 = cluster.new_object(p0);
  cluster.add_root(p0, h0);
  cluster.add_ref(p0, h0, o);
  cluster.propagate(h0, p0, p1);
  cluster.run_until_quiescent();
  const ObjectId h1 = cluster.new_object(p1);
  cluster.add_root(p1, h1);
  cluster.add_ref(p1, h1, o);
  cluster.propagate(h1, p1, p2);
  cluster.run_until_quiescent();

  const auto s = gc::summarize(cluster.process(p1));
  const rm::ScionKey chain{p2, o};
  ASSERT_TRUE(s.scions.contains(chain));
  EXPECT_FALSE(cluster.process(p1).has_replica(o));
  EXPECT_TRUE(s.scions.at(chain).stubs_from.contains(rm::StubKey{o, p0}))
      << "the chain hop must keep the onward stub reachable";
}

// ---- LGC options -------------------------------------------------------------

TEST(LgcEdge, KeepDeadStubsWhenConfigured) {
  net::Network net;
  rm::Process p1{ProcessId{1}, net};
  rm::Process p2{ProcessId{2}, net};
  net.attach(ProcessId{1}, [&](const net::Envelope& e) {
    if (const auto* m = dynamic_cast<const rm::PropagateMsg*>(e.msg)) {
      p1.on_propagate(e, *m);
    }
  });
  net.attach(ProcessId{2}, [&](const net::Envelope& e) {
    if (const auto* m = dynamic_cast<const rm::PropagateMsg*>(e.msg)) {
      p2.on_propagate(e, *m);
    }
  });
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});
  net.run_until_quiescent();
  p2.remove_ref(ObjectId{1}, ObjectId{2});  // the stub's holder lets go

  gc::LgcConfig cfg;
  cfg.drop_dead_stubs = false;
  const auto r = gc::Lgc::collect(p2, cfg);
  EXPECT_FALSE(r.live_stubs.contains(rm::StubKey{ObjectId{2}, ProcessId{1}}));
  EXPECT_TRUE(p2.stubs().contains(rm::StubKey{ObjectId{2}, ProcessId{1}}))
      << "inspection mode must not mutate the stub table";
}

// ---- Message weights ---------------------------------------------------------

TEST(MessageEdge, CdmWeightTracksAllSections) {
  gc::CdmMsg msg;
  const std::size_t base = msg.weight();
  msg.cdm.pending_refs.push_back(Replica{ObjectId{1}, ProcessId{0}});
  EXPECT_EQ(msg.weight(), base + 1);
  msg.cdm.require(gc::Element::make(Replica{ObjectId{1}, ProcessId{0}}),
                  gc::Element::make(Replica{ObjectId{2}, ProcessId{1}}),
                  /*prop=*/true);
  EXPECT_EQ(msg.weight(), base + 3);  // +1 dep, +1 edge
}

TEST(MessageEdge, NewSetStubsWeightIncludesDistances) {
  gc::NewSetStubsMsg msg;
  const std::size_t base = msg.weight();
  msg.stub_anchors.push_back(ObjectId{1});
  msg.distances.emplace_back(ObjectId{1}, 3u);
  EXPECT_EQ(msg.weight(), base + 2);
}

// ---- Heuristic internals ------------------------------------------------------

TEST(HeuristicEdge, UnknownAnchorHasInfiniteEstimate) {
  gc::DistanceHeuristic h{4};
  EXPECT_EQ(h.estimate(ObjectId{42}), gc::kInfiniteDistance);
  EXPECT_TRUE(h.suspects().empty());
}

TEST(HeuristicEdge, PruneDropsRetiredAnchors) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.add_root(p2, a);  // live remote holder: p2 announces distance 1
  cluster.collect_all();
  cluster.run_until_quiescent();
  cluster.collect_all();
  cluster.run_until_quiescent();
  auto& h = cluster.distance_heuristic(p1);
  ASSERT_NE(h.estimate(b), gc::kInfiniteDistance) << "announced by p2";

  // Retire the scion (p2 drops its interest), then collect: prune runs.
  cluster.remove_ref(p2, a, b);
  for (int i = 0; i < 3; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(h.estimate(b), gc::kInfiniteDistance);
}

TEST(HeuristicEdge, FinalizerResetClearsState) {
  gc::Finalizer fin{gc::FinalizeStrategy::kReRegister};
  rm::Object obj;
  obj.id = ObjectId{1};
  fin.finalize(obj);
  EXPECT_EQ(fin.finalized_count(), 1u);
  fin.reset();
  EXPECT_EQ(fin.finalized_count(), 0u);
}

// ---- Oracle chain awareness ----------------------------------------------------

TEST(OracleEdge, LivePathThroughChainIsHealthy) {
  Cluster cluster;
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId o = cluster.new_object(p0);
  const ObjectId h0 = cluster.new_object(p0);
  cluster.add_root(p0, h0);
  cluster.add_ref(p0, h0, o);
  cluster.propagate(h0, p0, p1);
  cluster.run_until_quiescent();
  const ObjectId h1 = cluster.new_object(p1);
  cluster.add_root(p1, h1);
  cluster.add_ref(p1, h1, o);
  cluster.propagate(h1, p1, p2);
  cluster.run_until_quiescent();
  cluster.add_root(p2, o);  // root resolving through a two-hop chain

  const auto report = core::Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty())
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_TRUE(report.is_live(o));
}

}  // namespace
}  // namespace rgc
