// Integration tests: the graph-database layer — CRUD, cross-shard edges,
// the paper's "delete sub-graphs that got disconnected" scenario, cyclic
// communities, background GC, and live-data safety.
#include <gtest/gtest.h>

#include "core/oracle.h"
#include "graphdb/graphdb.h"

namespace rgc::graphdb {
namespace {

GraphStoreConfig no_daemon(std::size_t shards = 3) {
  GraphStoreConfig cfg;
  cfg.shards = shards;
  cfg.background_gc = false;
  return cfg;
}

TEST(GraphDb, AddAndQueryVertices) {
  GraphStore db{no_daemon()};
  const VertexId a = db.add_vertex("alice");
  const VertexId b = db.add_vertex("bob");
  EXPECT_TRUE(db.vertex_exists(a));
  EXPECT_TRUE(db.vertex_registered(a));
  EXPECT_EQ(db.label(a), "alice");
  EXPECT_EQ(db.label(b), "bob");
  EXPECT_EQ(db.vertex_count(), 2u);
}

TEST(GraphDb, VerticesSpreadAcrossShards) {
  GraphStore db{no_daemon(3)};
  std::set<ProcessId> used;
  for (int i = 0; i < 6; ++i) used.insert(db.shard_of(db.add_vertex("v")));
  EXPECT_EQ(used.size(), 3u);
}

TEST(GraphDb, SameShardEdge) {
  GraphStore db{no_daemon(1)};
  const VertexId a = db.add_vertex("a");
  const VertexId b = db.add_vertex("b");
  db.add_edge(a, b);
  EXPECT_EQ(db.out_neighbors(a), (std::vector<VertexId>{b}));
}

TEST(GraphDb, CrossShardEdgeReplicatesTheTarget) {
  GraphStore db{no_daemon(3)};
  const VertexId a = db.add_vertex("a");  // shard 0
  const VertexId b = db.add_vertex("b");  // shard 1
  ASSERT_NE(db.shard_of(a), db.shard_of(b));
  db.add_edge(a, b);
  EXPECT_EQ(db.out_neighbors(a), (std::vector<VertexId>{b}));
  // b now has a cached replica on a's shard.
  EXPECT_TRUE(db.cluster().process(db.shard_of(a)).has_replica(b));
  EXPECT_GE(db.replica_count(), 3u);
}

TEST(GraphDb, ReachabilityQuery) {
  GraphStore db{no_daemon()};
  const VertexId a = db.add_vertex("a");
  const VertexId b = db.add_vertex("b");
  const VertexId c = db.add_vertex("c");
  const VertexId d = db.add_vertex("d");
  db.add_edge(a, b);
  db.add_edge(b, c);
  db.add_edge(c, d);
  const auto r1 = db.reachable_from(a, 1);
  EXPECT_EQ(r1.size(), 2u);
  const auto r3 = db.reachable_from(a, 3);
  EXPECT_EQ(r3.size(), 4u);
}

TEST(GraphDb, RemoveVertexUnlinksButDoesNotFree) {
  GraphStore db{no_daemon()};
  const VertexId a = db.add_vertex("a");
  db.remove_vertex(a);
  EXPECT_FALSE(db.vertex_registered(a));
  EXPECT_TRUE(db.vertex_exists(a)) << "unlinking is not freeing";
  db.run_gc();
  EXPECT_FALSE(db.vertex_exists(a)) << "the GC frees";
  EXPECT_FALSE(db.label(a).has_value());
}

TEST(GraphDb, DisconnectedSubgraphIsReclaimed) {
  // The paper's §1 scenario verbatim: a sub-graph that "got disconnected
  // from the main graph … because the application replaces old
  // information or simply deletes it".
  GraphStore db{no_daemon()};
  const VertexId root = db.add_vertex("main");
  const VertexId hub = db.add_vertex("hub");
  const VertexId leaf1 = db.add_vertex("leaf1");
  const VertexId leaf2 = db.add_vertex("leaf2");
  db.add_edge(root, hub);
  db.add_edge(hub, leaf1);
  db.add_edge(hub, leaf2);
  // Only hub is registered-reachable (leaves hang off it).
  db.remove_vertex(leaf1);
  db.remove_vertex(leaf2);
  ASSERT_TRUE(db.vertex_exists(leaf1)) << "still referenced by hub";
  db.run_gc();
  EXPECT_TRUE(db.vertex_exists(leaf1)) << "hub -> leaf1 keeps it alive";

  // Disconnect the whole subtree: hub (and with it the leaves) must fall.
  db.remove_vertex(hub);
  db.remove_edge(root, hub);
  db.run_gc();
  EXPECT_FALSE(db.vertex_exists(hub));
  EXPECT_FALSE(db.vertex_exists(leaf1));
  EXPECT_FALSE(db.vertex_exists(leaf2));
  EXPECT_TRUE(db.vertex_exists(root));
}

TEST(GraphDb, CyclicCommunityAcrossShardsIsReclaimed) {
  GraphStore db{no_daemon(4)};
  const VertexId a = db.add_vertex("a");
  const VertexId b = db.add_vertex("b");
  const VertexId c = db.add_vertex("c");
  db.add_edge(a, b);
  db.add_edge(b, c);
  db.add_edge(c, a);  // cross-shard cycle with cached replicas
  // Refresh the caches so the replicas carry each other's edges through
  // stub/scion chains (stale caches would collapse into local bindings
  // the acyclic protocol could already unravel).
  db.refresh_caches();
  db.remove_vertex(a);
  db.remove_vertex(b);
  db.remove_vertex(c);
  const auto stats = db.run_gc();
  EXPECT_FALSE(db.vertex_exists(a));
  EXPECT_FALSE(db.vertex_exists(b));
  EXPECT_FALSE(db.vertex_exists(c));
  EXPECT_GE(stats.cycles_found, 1u)
      << "the community is a replicated cycle — only the detector kills it";
}

TEST(GraphDb, LiveNeighborsKeepDeletedVerticesAlive) {
  GraphStore db{no_daemon()};
  const VertexId a = db.add_vertex("a");
  const VertexId b = db.add_vertex("b");
  db.add_edge(a, b);
  db.remove_vertex(b);  // unregistered, but a still points at it
  db.run_gc();
  EXPECT_TRUE(db.vertex_exists(b));
  EXPECT_EQ(db.label(b), "b") << "referential integrity: a's edge resolves";
  db.remove_edge(a, b);
  db.run_gc();
  EXPECT_FALSE(db.vertex_exists(b));
}

TEST(GraphDb, BackgroundDaemonReclaimsWithoutExplicitGc) {
  GraphStoreConfig cfg;
  cfg.shards = 3;
  cfg.background_gc = true;
  GraphStore db{cfg};
  const VertexId a = db.add_vertex("a");
  const VertexId b = db.add_vertex("b");
  db.add_edge(a, b);
  db.add_edge(b, a);  // cross-shard cycle
  db.remove_vertex(a);
  db.remove_vertex(b);
  db.run_steps(400);
  EXPECT_FALSE(db.vertex_exists(a));
  EXPECT_FALSE(db.vertex_exists(b));
}

TEST(GraphDb, IntegrityHoldsThroughChurn) {
  GraphStore db{no_daemon(4)};
  std::vector<VertexId> ring;
  for (int i = 0; i < 12; ++i) ring.push_back(db.add_vertex("r"));
  for (int i = 0; i < 12; ++i) db.add_edge(ring[i], ring[(i + 1) % 12]);
  // Delete every other vertex, then run GC between further edits.
  for (int i = 0; i < 12; i += 2) db.remove_vertex(ring[i]);
  db.run_gc();
  const auto report = core::Oracle::analyze(db.cluster());
  EXPECT_TRUE(report.violations.empty());
  // The ring is still fully connected through the surviving registrations,
  // so nothing may disappear yet.
  for (VertexId v : ring) EXPECT_TRUE(db.vertex_exists(v));
  // Now delete the rest: the whole ring (a replicated cycle) must go.
  for (int i = 1; i < 12; i += 2) db.remove_vertex(ring[i]);
  db.run_gc();
  for (VertexId v : ring) EXPECT_FALSE(db.vertex_exists(v));
}

TEST(GraphDb, UnknownVertexThrows) {
  GraphStore db{no_daemon()};
  EXPECT_THROW((void)db.shard_of(VertexId{999}), std::out_of_range);
  EXPECT_THROW(db.add_edge(VertexId{999}, VertexId{1000}), std::out_of_range);
}

TEST(GraphDb, RefreshCachesPropagatesNewEdges) {
  GraphStore db{no_daemon(3)};
  const VertexId a = db.add_vertex("a");
  const VertexId b = db.add_vertex("b");
  const VertexId c = db.add_vertex("c");
  db.add_edge(a, b);  // caches b (edge-less) on a's shard
  db.add_edge(b, c);  // b's home learns b -> c; a's cache is stale
  const rm::Object* cached =
      db.cluster().process(db.shard_of(a)).heap().find(b);
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->refs.empty()) << "cache is stale by construction";
  db.refresh_caches();
  cached = db.cluster().process(db.shard_of(a)).heap().find(b);
  ASSERT_NE(cached, nullptr);
  EXPECT_TRUE(cached->references(c)) << "refresh shipped the new edge";
}

TEST(GraphDb, EdgeFromDeletedAndCollectedVertexThrows) {
  GraphStore db{no_daemon()};
  const VertexId a = db.add_vertex("a");
  const VertexId b = db.add_vertex("b");
  db.remove_vertex(a);
  db.run_gc();
  EXPECT_THROW(db.add_edge(a, b), std::logic_error);
}

}  // namespace
}  // namespace rgc::graphdb
