// Unit tests: the step-driven asynchronous network simulator.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/message.h"
#include "net/network.h"
#include "util/ids.h"

namespace rgc::net {
namespace {

struct TestMsg final : Message {
  int value{0};
  bool is_reliable{false};

  [[nodiscard]] const char* kind() const noexcept override { return "Test"; }
  [[nodiscard]] bool reliable() const noexcept override { return is_reliable; }
  [[nodiscard]] std::unique_ptr<Message> clone() const override {
    return std::make_unique<TestMsg>(*this);
  }
};

std::unique_ptr<TestMsg> make(int value, bool reliable = false) {
  auto m = std::make_unique<TestMsg>();
  m->value = value;
  m->is_reliable = reliable;
  return m;
}

struct Recorder {
  std::vector<int> values;
  std::vector<std::uint64_t> seqs;
  void operator()(const Envelope& env) {
    values.push_back(static_cast<const TestMsg*>(env.msg)->value);
    seqs.push_back(env.seq);
  }
};

TEST(Network, DeliversAfterOneStep) {
  Network net;
  Recorder rec;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, std::ref(rec));
  net.send(a, b, make(42));
  EXPECT_TRUE(rec.values.empty());
  net.step();
  ASSERT_EQ(rec.values.size(), 1u);
  EXPECT_EQ(rec.values[0], 42);
}

TEST(Network, NeverDeliversInSendStep) {
  Network net;
  const ProcessId a{0}, b{1};
  int delivered = 0;
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [&](const Envelope&) { ++delivered; });
  net.send(a, b, make(1));
  EXPECT_EQ(delivered, 0);
}

TEST(Network, SeqNumbersArePerLinkAndMonotonic) {
  Network net;
  Recorder rb, rc;
  const ProcessId a{0}, b{1}, c{2};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, std::ref(rb));
  net.attach(c, std::ref(rc));
  EXPECT_EQ(net.send(a, b, make(1)), 1u);
  EXPECT_EQ(net.send(a, b, make(2)), 2u);
  EXPECT_EQ(net.send(a, c, make(3)), 1u);  // independent link counter
  net.run_until_quiescent();
  EXPECT_EQ(rb.seqs, (std::vector<std::uint64_t>{1, 2}));
  EXPECT_EQ(rc.seqs, (std::vector<std::uint64_t>{1}));
}

TEST(Network, FifoWithinOneLinkAtFixedDelay) {
  Network net;
  Recorder rec;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, std::ref(rec));
  for (int i = 0; i < 10; ++i) net.send(a, b, make(i));
  net.step();
  EXPECT_EQ(rec.values, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Network, HandlerSendsAreDeliveredNextStep) {
  Network net;
  const ProcessId a{0}, b{1};
  std::vector<std::uint64_t> arrival_steps;
  net.attach(a, [&](const Envelope&) { arrival_steps.push_back(net.now()); });
  net.attach(b, [&](const Envelope& env) {
    arrival_steps.push_back(net.now());
    // ping-pong once
    if (env.seq == 1) net.send(b, a, make(99));
  });
  net.send(a, b, make(1));
  net.run_until_quiescent();
  ASSERT_EQ(arrival_steps.size(), 2u);
  EXPECT_EQ(arrival_steps[0] + 1, arrival_steps[1]);
}

TEST(Network, RunUntilQuiescentCountsSteps) {
  Network net;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [](const Envelope&) {});
  net.send(a, b, make(1));
  EXPECT_FALSE(net.idle());
  const auto steps = net.run_until_quiescent();
  EXPECT_EQ(steps, 1u);
  EXPECT_TRUE(net.idle());
}

TEST(Network, MetricsCountSentAndDelivered) {
  Network net;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [](const Envelope&) {});
  net.send(a, b, make(1));
  net.send(a, b, make(2));
  net.run_until_quiescent();
  EXPECT_EQ(net.metrics().get("net.sent.Test"), 2u);
  EXPECT_EQ(net.metrics().get("net.delivered.Test"), 2u);
  EXPECT_EQ(net.total_sent("Test"), 2u);
}

TEST(Network, PerStepSendAccounting) {
  Network net;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [&](const Envelope&) { net.send(b, a, make(7)); });
  net.send(a, b, make(1));  // sent at step 0
  net.run_until_quiescent();
  EXPECT_EQ(net.sent_at_step("Test", 0), 1u);
  EXPECT_EQ(net.sent_at_step("Test", 1), 1u);  // the reply
  EXPECT_EQ(net.sent_at_step("Test", 99), 0u);
}

TEST(Network, DropInjectionLosesUnreliableMessages) {
  NetworkConfig cfg;
  cfg.seed = 5;
  cfg.drop_probability = 1.0;
  Network net{cfg};
  const ProcessId a{0}, b{1};
  int delivered = 0;
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [&](const Envelope&) { ++delivered; });
  net.send(a, b, make(1));
  net.run_until_quiescent();
  EXPECT_EQ(delivered, 0);
  EXPECT_EQ(net.metrics().get("net.dropped"), 1u);
}

TEST(Network, ReliableMessagesSurviveDropInjection) {
  NetworkConfig cfg;
  cfg.seed = 5;
  cfg.drop_probability = 1.0;
  Network net{cfg};
  const ProcessId a{0}, b{1};
  int delivered = 0;
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [&](const Envelope&) { ++delivered; });
  net.send(a, b, make(1, /*reliable=*/true));
  net.run_until_quiescent();
  EXPECT_EQ(delivered, 1);
}

TEST(Network, DuplicateInjectionDeliversTwice) {
  NetworkConfig cfg;
  cfg.seed = 6;
  cfg.duplicate_probability = 1.0;
  Network net{cfg};
  const ProcessId a{0}, b{1};
  int delivered = 0;
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [&](const Envelope&) { ++delivered; });
  net.send(a, b, make(1));
  net.run_until_quiescent();
  EXPECT_EQ(delivered, 2);
}

TEST(Network, ReliableNeverDuplicated) {
  NetworkConfig cfg;
  cfg.seed = 6;
  cfg.duplicate_probability = 1.0;
  Network net{cfg};
  const ProcessId a{0}, b{1};
  int delivered = 0;
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [&](const Envelope&) { ++delivered; });
  net.send(a, b, make(1, /*reliable=*/true));
  net.run_until_quiescent();
  EXPECT_EQ(delivered, 1);
}

TEST(Network, ReliableFifoUnderJitter) {
  NetworkConfig cfg;
  cfg.seed = 7;
  cfg.min_delay = 1;
  cfg.max_delay = 5;
  Network net{cfg};
  Recorder rec;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, std::ref(rec));
  for (int i = 0; i < 20; ++i) net.send(a, b, make(i, /*reliable=*/true));
  net.run_until_quiescent();
  ASSERT_EQ(rec.values.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rec.values[i], i);
}

TEST(Network, JitterCanReorderUnreliableMessages) {
  NetworkConfig cfg;
  cfg.seed = 8;
  cfg.min_delay = 1;
  cfg.max_delay = 10;
  Network net{cfg};
  Recorder rec;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, std::ref(rec));
  for (int i = 0; i < 30; ++i) net.send(a, b, make(i));
  net.run_until_quiescent();
  ASSERT_EQ(rec.values.size(), 30u);
  bool reordered = false;
  for (std::size_t i = 1; i < rec.values.size(); ++i) {
    if (rec.values[i] < rec.values[i - 1]) reordered = true;
  }
  EXPECT_TRUE(reordered) << "expected at least one reordering under jitter";
}

TEST(Network, UnattachedDestinationThrows) {
  Network net;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.send(a, b, make(1));
  EXPECT_THROW(net.step(), std::logic_error);
}

TEST(Network, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    NetworkConfig cfg;
    cfg.seed = seed;
    cfg.min_delay = 1;
    cfg.max_delay = 4;
    Network net{cfg};
    Recorder rec;
    const ProcessId a{0}, b{1};
    net.attach(a, [](const Envelope&) {});
    net.attach(b, std::ref(rec));
    for (int i = 0; i < 25; ++i) net.send(a, b, make(i));
    net.run_until_quiescent();
    return rec.values;
  };
  EXPECT_EQ(run(99), run(99));
  EXPECT_NE(run(99), run(100));
}

TEST(Network, WeightMetricsAccumulate) {
  Network net;
  const ProcessId a{0}, b{1};
  net.attach(a, [](const Envelope&) {});
  net.attach(b, [](const Envelope&) {});
  net.send(a, b, make(1));
  EXPECT_EQ(net.metrics().get("net.weight.Test"), 1u);
}

}  // namespace
}  // namespace rgc::net
