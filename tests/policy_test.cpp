// Adaptive GC scheduling policy + decentralized termination detection
// (`ctest -L policy`): per-process send/receive accounts vs the transport's
// global in-flight count under loss, duplication and crashes; the token
// wave's verdict against the legacy idle scan on every path including
// truncation; Pony-style backoff mechanics (skip, ceiling, productivity
// reset, forced sweeps); and the adaptive daemon's determinism — byte-
// identical flight recordings across worker-pool widths and across
// event-skip vs per-step schedules.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/daemon.h"
#include "core/oracle.h"
#include "core/quiescence.h"
#include "net/network.h"
#include "obs/recorder.h"
#include "util/metrics.h"
#include "workload/figures.h"
#include "workload/random_mutator.h"

namespace rgc {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::DaemonConfig;
using core::GcDaemon;
using core::TerminationDetector;

/// Minimal unreliable payload for driving a raw net::Network: exposed to
/// drop/duplicate fault injection like the GC's advisory traffic.
class PingMsg final : public net::Message {
 public:
  explicit PingMsg(std::size_t weight = 3) : weight_(weight) {}
  [[nodiscard]] const char* kind() const noexcept override { return "Ping"; }
  [[nodiscard]] std::size_t weight() const noexcept override { return weight_; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<PingMsg>(weight_);
  }

 private:
  std::size_t weight_;
};

// ---- Termination-detector unit tests (raw network) -------------------------

/// Harness: a detector observing a raw network with no cluster on top.
struct RawNet {
  explicit RawNet(net::NetworkConfig cfg, std::size_t processes) : net(cfg) {
    detector = std::make_unique<TerminationDetector>(registry);
    net.add_observer(detector.get());
    for (std::size_t i = 0; i < processes; ++i) {
      const ProcessId pid{static_cast<std::uint32_t>(i)};
      detector->attach(pid);
      net.attach(pid, [](const net::Envelope&) {});
    }
  }

  /// Probe and cross-check the decentralized verdict against the global
  /// scan — the invariant the whole protocol rests on.
  void expect_agreement(const char* where) {
    const bool verdict = detector->probe();
    EXPECT_EQ(verdict, net.idle()) << where;
    EXPECT_EQ(detector->deficit(), net.in_flight()) << where;
  }

  util::Metrics registry;
  net::Network net;
  std::unique_ptr<TerminationDetector> detector;
};

TEST(TerminationDetector, AccountsBalanceOnAReliableRun) {
  RawNet h{net::NetworkConfig{}, 3};
  for (int i = 0; i < 5; ++i) {
    h.net.send(ProcessId{0}, ProcessId{1}, std::make_unique<PingMsg>());
    h.net.send(ProcessId{1}, ProcessId{2}, std::make_unique<PingMsg>());
  }
  h.expect_agreement("after sends");
  EXPECT_EQ(h.detector->deficit(), 10u);
  EXPECT_EQ(h.detector->weight_deficit(), 30u);
  while (h.net.step()) h.expect_agreement("mid drain");
  h.expect_agreement("after drain");
  EXPECT_TRUE(h.detector->quiescent());
  EXPECT_EQ(h.detector->deficit(), 0u);
  EXPECT_EQ(h.detector->weight_deficit(), 0u);
}

TEST(TerminationDetector, TokenSurvivesMessageLoss) {
  // Heavy send-time loss: every drop is a local NACK refunding the sender,
  // so the summed deficit must keep matching the transport exactly.
  net::NetworkConfig cfg;
  cfg.seed = 7;
  cfg.drop_probability = 0.5;
  RawNet h{cfg, 4};
  for (int round = 0; round < 20; ++round) {
    for (std::uint32_t src = 0; src < 4; ++src) {
      h.net.send(ProcessId{src}, ProcessId{(src + 1) % 4},
                 std::make_unique<PingMsg>());
    }
    h.net.step();
    h.expect_agreement("lossy round");
  }
  while (h.net.step()) {
  }
  h.expect_agreement("lossy drain");
  EXPECT_TRUE(h.detector->quiescent());
}

TEST(TerminationDetector, TokenSurvivesDuplication) {
  // Duplicates are transport clones charged to the sender's link; both
  // copies deliver, so the account closes at zero like everything else.
  net::NetworkConfig cfg;
  cfg.seed = 11;
  cfg.duplicate_probability = 0.6;
  cfg.max_delay = 3;
  RawNet h{cfg, 4};
  for (int round = 0; round < 20; ++round) {
    for (std::uint32_t src = 0; src < 4; ++src) {
      h.net.send(ProcessId{src}, ProcessId{(src + 2) % 4},
                 std::make_unique<PingMsg>());
    }
    h.net.step();
    h.expect_agreement("duplicating round");
  }
  while (h.net.step()) {
  }
  h.expect_agreement("duplicating drain");
  EXPECT_TRUE(h.detector->quiescent());
  // The fault injector actually fired (otherwise this test proves nothing).
  EXPECT_GT(h.net.metrics().get("net.duplicated.Ping"), 0u);
}

TEST(TerminationDetector, DeadPidAccountsFreezeAndRevive) {
  net::NetworkConfig cfg;
  cfg.max_delay = 8;
  RawNet h{cfg, 3};
  // In-flight traffic both directions around P1, then P1 crashes.
  for (int i = 0; i < 4; ++i) {
    h.net.send(ProcessId{0}, ProcessId{1}, std::make_unique<PingMsg>());
    h.net.send(ProcessId{1}, ProcessId{2}, std::make_unique<PingMsg>());
  }
  h.net.detach(ProcessId{1});  // purges both directions, refunds senders
  h.detector->mark_dead(ProcessId{1});
  EXPECT_EQ(h.detector->dead(), 1u);
  h.expect_agreement("after crash purge");
  // Sends toward the dead pid are refused at the source — still balanced.
  h.net.send(ProcessId{0}, ProcessId{1}, std::make_unique<PingMsg>());
  h.expect_agreement("send to dead pid");
  while (h.net.step()) {
  }
  h.expect_agreement("drain with dead member");
  EXPECT_TRUE(h.detector->quiescent()) << "a crashed pid is not pending work";
  // Restart: the account revives with an exact (zero-outstanding) balance.
  h.net.attach(ProcessId{1}, [](const net::Envelope&) {});
  h.detector->attach(ProcessId{1});
  EXPECT_EQ(h.detector->dead(), 0u);
  h.net.send(ProcessId{1}, ProcessId{2}, std::make_unique<PingMsg>());
  h.expect_agreement("after revive");
  while (h.net.step()) {
  }
  EXPECT_TRUE(h.detector->probe());
}

// ---- Cluster integration: verdict vs legacy scan ---------------------------

TEST(TerminationDetector, ClusterQuiescenceRoutesThroughTheToken) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId x = cluster.new_object(p1);
  cluster.add_root(p1, x);
  cluster.propagate(x, p1, p2);
  const auto status = cluster.run_until_quiescent();
  EXPECT_TRUE(status.quiescent);
  EXPECT_EQ(status.in_flight, 0u);
  // The decentralized protocol ran: probes were issued and a confirmation
  // wave concluded, with the final deficit agreeing with the global scan.
  const util::Metrics& nm = cluster.network().metrics();
  EXPECT_GT(nm.get("cluster.termination_probes"), 0u);
  EXPECT_GT(nm.get("cluster.termination_confirmed"), 0u);
  EXPECT_TRUE(cluster.termination().quiescent());
  EXPECT_EQ(cluster.termination().deficit(), cluster.network().in_flight());
}

TEST(TerminationDetector, TruncationReportsThroughTheToken) {
  ClusterConfig cfg;
  cfg.net.min_delay = 40;
  cfg.net.max_delay = 40;
  Cluster cluster{cfg};
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId x = cluster.new_object(p1);
  cluster.add_root(p1, x);
  cluster.propagate(x, p1, p2);  // due in 40 steps — cannot drain in 5
  const auto status = cluster.run_until_quiescent(5);
  EXPECT_FALSE(status.quiescent);
  EXPECT_GT(status.in_flight, 0u);
  EXPECT_EQ(status.in_flight, cluster.network().in_flight())
      << "the truncated verdict's deficit must match the global scan";
  const util::Metrics& nm = cluster.network().metrics();
  EXPECT_EQ(nm.get("cluster.quiescence_timeout"), 1u);
  EXPECT_EQ(nm.gauge_value("cluster.quiescence_truncated"), 1u);
  EXPECT_EQ(nm.gauge_value("cluster.termination_deficit"), status.in_flight);
  // Let it finish; the token confirms this time.
  const auto rest = cluster.run_until_quiescent();
  EXPECT_TRUE(rest.quiescent);
  EXPECT_EQ(nm.gauge_value("cluster.quiescence_truncated"), 0u);
}

TEST(TerminationDetector, AgreesWithGlobalScanAcrossKillRestartPartition) {
  ClusterConfig cfg;
  cfg.lease_timeout = 32;
  Cluster cluster{cfg};
  std::vector<ProcessId> pids;
  for (int i = 0; i < 4; ++i) pids.push_back(cluster.add_process());
  workload::MutatorSpec spec;
  spec.seed = 99;
  workload::RandomMutator mutator{cluster, spec};
  mutator.run(120);

  cluster.kill(pids[1]);
  auto status = cluster.run_until_quiescent();
  EXPECT_TRUE(status.quiescent);
  EXPECT_EQ(status.dead, 1u);
  EXPECT_EQ(cluster.termination().deficit(), cluster.network().in_flight());

  cluster.partition({{pids[0]}, {pids[2], pids[3]}});
  mutator.run(60);
  status = cluster.run_until_quiescent();
  EXPECT_TRUE(status.quiescent);
  EXPECT_EQ(cluster.termination().deficit(), cluster.network().in_flight());
  cluster.heal();

  cluster.restart(pids[1]);
  mutator.run(60);
  status = cluster.run_until_quiescent();
  EXPECT_TRUE(status.quiescent);
  EXPECT_EQ(status.dead, 0u);
  EXPECT_EQ(cluster.termination().deficit(), cluster.network().in_flight());
}

// ---- Adaptive policy mechanics ---------------------------------------------

TEST(AdaptivePolicy, QuiescentClusterBacksOffToTheCeiling) {
  Cluster cluster;
  cluster.add_process();
  cluster.add_process();
  DaemonConfig cfg;  // adaptive on by default
  GcDaemon daemon{cluster, cfg};
  daemon.run(600);  // nothing ever mutates: lanes must decay to max
  const util::Metrics& nm = cluster.network().metrics();
  EXPECT_GT(daemon.skipped_collections(), 0u);
  EXPECT_GT(daemon.skipped_sweeps(), 0u);
  EXPECT_EQ(nm.gauge_value("daemon.deferred_budget"),
            8 * cfg.snapshot_period);
  // Amortization: far fewer collections than the fixed cadence's
  // 2 processes x 600/8 = 150, but never zero (the ceiling bound keeps
  // protocol rounds alive).
  EXPECT_LT(daemon.collections(), 60u);
  EXPECT_GT(daemon.collections(), 2u);
  // The registered counters mirror the accessors (observability fix).
  EXPECT_EQ(nm.get("daemon.collections"), daemon.collections());
  EXPECT_EQ(nm.get("daemon.sweeps"), daemon.sweeps());
  EXPECT_EQ(nm.get("daemon.detections_started"), daemon.detections_started());
  EXPECT_EQ(nm.get("daemon.skipped_sweeps"), daemon.skipped_sweeps());
}

TEST(AdaptivePolicy, ProductiveWorkResetsTheDeferral) {
  // Figure 2's replicated cycle: detections fire, the cycle is proven, and
  // the policy must converge to zero objects with detections under budget.
  Cluster cluster;
  workload::build_figure2(cluster);
  DaemonConfig cfg;
  cfg.adaptive.detect_budget = 1;  // tightest budget still converges
  GcDaemon daemon{cluster, cfg};
  daemon.run(300);
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_GE(daemon.detections_started(), 1u);
  const auto report = core::Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty());
}

TEST(AdaptivePolicy, BudgetPrioritizesOldestSuspects) {
  // Suspicion-age candidates with a budget of 1: the daemon must pick the
  // oldest suspect deterministically and still reclaim everything.
  ClusterConfig ccfg;
  ccfg.candidates = core::CandidatePolicy::kSuspicionAge;
  ccfg.candidate_threshold = 2;
  Cluster cluster{ccfg};
  workload::build_figure2(cluster);
  DaemonConfig cfg;
  cfg.adaptive.detect_budget = 1;
  GcDaemon daemon{cluster, cfg};
  daemon.run(400);
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST(AdaptivePolicy, FixedModeReproducesLegacyCadence) {
  // adaptive.enabled=false is the ablation baseline: exact legacy counts.
  Cluster cluster;
  cluster.add_process();
  cluster.add_process();
  DaemonConfig cfg;
  cfg.collect_period = 4;
  cfg.snapshot_period = 8;
  cfg.adaptive.enabled = false;
  GcDaemon daemon{cluster, cfg};
  daemon.run(32);
  EXPECT_GE(daemon.collections(), 14u);
  EXPECT_GE(daemon.sweeps(), 6u);
  EXPECT_EQ(daemon.skipped_sweeps(), 0u);
  EXPECT_EQ(daemon.skipped_collections(), 0u);
}

// ---- Adaptive-policy determinism -------------------------------------------

/// Chaos-ish workload driven by the adaptive daemon, parameterized on the
/// worker-pool width and the idle-drain schedule; returns the recording.
std::string drive_adaptive(std::size_t threads, bool event_skip) {
  ClusterConfig ccfg;
  ccfg.threads = threads;
  ccfg.lease_timeout = 48;
  Cluster cluster{ccfg};
  std::vector<ProcessId> pids;
  for (int i = 0; i < 4; ++i) pids.push_back(cluster.add_process());
  workload::MutatorSpec spec;
  spec.seed = 4242;
  spec.w_collect = 0;
  spec.w_step = 0;
  workload::RandomMutator mutator{cluster, spec};
  GcDaemon daemon{cluster, DaemonConfig{}};  // adaptive on

  for (int round = 0; round < 6; ++round) {
    mutator.run(25);
    daemon.run(15);          // busy phase: adaptive lanes take decisions
    cluster.collect_all();   // engages the worker pool when threads > 1
    // Idle stretch: skipped in one hop or stepped through one by one —
    // byte-identical recordings prove the schedules are indistinguishable
    // to every observer (including the adaptive lanes' next due-points).
    if (event_skip) {
      cluster.advance(73);
    } else {
      for (int s = 0; s < 73; ++s) cluster.step();
    }
  }
  cluster.run_until_quiescent(2000);
  return cluster.recorder()->encode(obs::RecStamp{});
}

TEST(AdaptivePolicy, RecordingsByteIdenticalAcrossThreadCounts) {
  const std::string t1 = drive_adaptive(/*threads=*/1, /*event_skip=*/false);
  const std::string t8 = drive_adaptive(/*threads=*/8, /*event_skip=*/false);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, t8)
      << "worker-pool width changed the adaptive policy's decisions";
}

TEST(AdaptivePolicy, RecordingsByteIdenticalAcrossSchedules) {
  const std::string per_step = drive_adaptive(/*threads=*/1, /*event_skip=*/false);
  const std::string skipped = drive_adaptive(/*threads=*/1, /*event_skip=*/true);
  ASSERT_FALSE(per_step.empty());
  EXPECT_EQ(per_step, skipped)
      << "event-skip scheduling changed the adaptive policy's decisions";
}

}  // namespace
}  // namespace rgc
