// Integration tests: the triangle-mesh ring workload (§5.2) and the
// scalability behaviour behind Figures 8/9 and Table 2.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/mesh.h"

namespace rgc::workload {
namespace {

using core::Cluster;
using core::Oracle;

TEST(Mesh, BuildRejectsDegenerateSpecs) {
  Cluster cluster;
  EXPECT_THROW(build_mesh(cluster, MeshSpec{1, 10}), std::invalid_argument);
}

TEST(Mesh, SmallMeshShapeIsCorrect) {
  Cluster cluster;
  const MeshSpec spec{2, 2};
  const Mesh mesh = build_mesh(cluster, spec);
  // laps = 1, hops = 2, strand = head + 2 created objects.
  EXPECT_EQ(mesh.strand.size(), 3u);
  // Each hop: 1 propagation + 1 remote ref.
  EXPECT_EQ(mesh.total_links, 4u);
  // The whole mesh is garbage.
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.live_objects.empty());
  for (ObjectId obj : mesh.strand) {
    EXPECT_TRUE(report.existing_objects.contains(obj));
  }
}

TEST(Mesh, EveryStrandObjectIsReplicatedOnTwoProcesses) {
  Cluster cluster;
  const Mesh mesh = build_mesh(cluster, MeshSpec{3, 4});
  for (std::size_t i = 0; i + 1 < mesh.strand.size(); ++i) {
    int copies = 0;
    for (ProcessId pid : cluster.process_ids()) {
      copies += cluster.process(pid).has_replica(mesh.strand[i]) ? 1 : 0;
    }
    EXPECT_EQ(copies, 2) << "strand object " << to_string(mesh.strand[i]);
  }
  // The closing object is never propagated: a single copy.
  int copies = 0;
  for (ProcessId pid : cluster.process_ids()) {
    copies += cluster.process(pid).has_replica(mesh.strand.back()) ? 1 : 0;
  }
  EXPECT_EQ(copies, 1);
}

TEST(Mesh, SurvivesAcyclicCollection) {
  Cluster cluster;
  const Mesh mesh = build_mesh(cluster, MeshSpec{3, 2});
  const auto before = cluster.total_objects();
  for (int i = 0; i < 6; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cluster.total_objects(), before)
      << "the mesh cycle must be invisible to the acyclic protocol";
}

TEST(Mesh, DetectionFindsTheSpanningCycle) {
  Cluster cluster;
  const Mesh mesh = build_mesh(cluster, MeshSpec{3, 2});
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(mesh.head_process, mesh.head).has_value());
  cluster.run_until_quiescent();
  ASSERT_GE(cluster.cycles_found().size(), 1u);
  // The verdict's target set spans every process.
  const gc::Cdm& verdict = cluster.cycles_found().front();
  std::set<ProcessId> touched;
  for (const gc::Element& e : verdict.targets) touched.insert(e.replica.process);
  EXPECT_EQ(touched.size(), cluster.process_count());
}

TEST(Mesh, FullGcReclaimsEverything) {
  Cluster cluster;
  const Mesh mesh = build_mesh(cluster, MeshSpec{3, 2});
  (void)mesh;
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(Oracle::fully_collected(cluster, Oracle::analyze(cluster)));
}

TEST(Mesh, RootedHeadProtectsTheWholeMesh) {
  Cluster cluster;
  const Mesh mesh = build_mesh(cluster, MeshSpec{3, 2});
  cluster.add_root(mesh.head_process, mesh.head);
  const auto before = cluster.total_objects();
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), before);
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty());
}

TEST(Mesh, StepsToDetectionGrowLinearlyWithDependencies) {
  // Table 2's shape: steps ≈ slope·D (the slope itself grows with R).
  auto steps_for = [](std::size_t R, std::size_t D) -> std::uint64_t {
    Cluster cluster;
    const Mesh mesh = build_mesh(cluster, MeshSpec{R, D});
    cluster.snapshot_all();
    const std::uint64_t start = cluster.now();
    EXPECT_TRUE(cluster.detect(mesh.head_process, mesh.head).has_value());
    while (cluster.cycles_found().empty() && !cluster.network().idle()) {
      cluster.step();
    }
    EXPECT_FALSE(cluster.cycles_found().empty());
    return cluster.now() - start;
  };
  const auto s4 = steps_for(2, 4);
  const auto s8 = steps_for(2, 8);
  const auto s16 = steps_for(2, 16);
  // Linear growth: doubling D roughly doubles the steps.
  EXPECT_GT(s8, s4);
  EXPECT_GT(s16, s8);
  const double ratio = static_cast<double>(s16 - s8) / (s8 - s4);
  EXPECT_NEAR(ratio, 2.0, 0.75) << "s4=" << s4 << " s8=" << s8
                                << " s16=" << s16;
}

TEST(Mesh, ExtraReplicasRaiseReplicationFactor) {
  Cluster cluster;
  const Mesh mesh = build_mesh(cluster, MeshSpec{4, 2, /*extra_replicas=*/1});
  // Strand objects now have 3 copies (origin + chain replica + bystander).
  int three_copies = 0;
  for (ObjectId obj : mesh.strand) {
    int copies = 0;
    for (ProcessId pid : cluster.process_ids()) {
      copies += cluster.process(pid).has_replica(obj) ? 1 : 0;
    }
    if (copies == 3) ++three_copies;
  }
  EXPECT_GT(three_copies, 0);
  // Still fully collectable.
  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST(Mesh, DeterministicConstruction) {
  auto fingerprint = [](std::uint64_t seed) {
    core::ClusterConfig cfg;
    cfg.net.seed = seed;
    Cluster cluster{cfg};
    const Mesh mesh = build_mesh(cluster, MeshSpec{3, 4});
    return std::make_tuple(mesh.strand.size(), mesh.total_links,
                           cluster.total_objects());
  };
  EXPECT_EQ(fingerprint(1), fingerprint(1));
}

}  // namespace
}  // namespace rgc::workload
