// Integration tests: the mutator/cycle-detector race (§3.5, Figures 4/5,
// Table 1).  Snapshots taken at different times + concurrent mutations
// must abort detections instead of condemning live data.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/figures.h"

namespace rgc::gc {
namespace {

using core::Cluster;
using core::Oracle;

struct RaceFixture : ::testing::Test {
  Cluster cluster;
  workload::Figure4 f{};

  void SetUp() override { f = workload::build_figure4(cluster); }
};

TEST_F(RaceFixture, PaperTimelineAbortsDetection) {
  // Figure 5's timeline: S2, S3, S4 are taken first; the coherence engine
  // then updates X (P1 -> P2), bumping the prop link's UC; P1 finally
  // snapshots (S1).  The CDM pairing outProp(X)@S1 with inProp(X)@S2 sees
  // α+1 vs α and must abort.
  cluster.detector(f.p2).take_snapshot();  // S2
  cluster.detector(f.p3).take_snapshot();  // S3
  cluster.detector(f.p4).take_snapshot();  // S4

  // "...the coherence engine issues an update" along the X prop link, and
  // a remote invocation creates-then-drops a transient root; afterwards
  // the mutator drops its root, so by S1 the cycle *looks* dead at P1.
  cluster.propagate(f.x, f.p1, f.p2);
  cluster.run_until_quiescent();
  cluster.invoke(f.p3, f.x, /*root_steps=*/1);
  cluster.run_until_quiescent();
  cluster.step();                  // the invocation's pins expire
  cluster.step();
  cluster.remove_root(f.p1, f.x);
  cluster.detector(f.p1).take_snapshot();  // S1 — newest view

  // Detection starts at P2 (the timeline's origin).
  ASSERT_TRUE(cluster.detector(f.p2).start_detection(f.x).has_value());
  cluster.run_until_quiescent();

  EXPECT_TRUE(cluster.cycles_found().empty())
      << "the counter barrier must abort the inconsistent detection";
  EXPECT_GE(cluster.metric_total("cycle.aborts_race"), 1u);
  // Nothing was harmed.
  EXPECT_TRUE(cluster.process(f.p1).heap().contains(f.x));
  EXPECT_TRUE(cluster.process(f.p4).heap().contains(f.y));
  EXPECT_TRUE(Oracle::analyze(cluster).violations.empty());
}

TEST_F(RaceFixture, InvocationAloneTripsTheBarrier) {
  // Only an invocation (IC bump) divides the snapshots.
  cluster.detector(f.p2).take_snapshot();
  cluster.detector(f.p4).take_snapshot();
  cluster.detector(f.p3).take_snapshot();

  cluster.invoke(f.p2, f.y);  // bumps stub IC at P2 / scion IC at P4
  cluster.run_until_quiescent();
  for (int i = 0; i < 4; ++i) cluster.step();  // pins expire
  cluster.remove_root(f.p1, f.x);
  cluster.detector(f.p1).take_snapshot();

  // P2's snapshot predates the invocation, P4's too... retake P4's so the
  // two ends of the invoked link disagree (stub old, scion new).
  cluster.detector(f.p4).take_snapshot();

  ASSERT_TRUE(cluster.detector(f.p2).start_detection(f.x).has_value());
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.cycles_found().empty());
  EXPECT_GE(cluster.metric_total("cycle.aborts_race"), 1u);
}

TEST_F(RaceFixture, ConsistentSnapshotsAfterQuiescenceDetectTheDeadCycle) {
  // The same graph, but mutations stop, the root goes away, and *then*
  // everyone snapshots: the cycle is genuinely dead and must be found.
  cluster.remove_root(f.p1, f.x);
  cluster.run_until_quiescent();
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(f.p1, f.x).has_value());
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.cycles_found().size(), 1u);
}

TEST_F(RaceFixture, StaleSnapshotStillShowingRootRefusesToStart) {
  cluster.snapshot_all();  // P1's snapshot still sees the root
  cluster.remove_root(f.p1, f.x);
  EXPECT_FALSE(cluster.detect(f.p1, f.x).has_value())
      << "candidate looks locally reachable in the stale snapshot";
}

TEST_F(RaceFixture, DetectionAgainstSnapshotOlderThanTheGraphIsDropped) {
  // P4 snapshots before the cycle's scion toward it existed; a CDM about
  // that scion finds no matching entity (§3.5.2 rule 1) and is ignored.
  Cluster young;
  const ProcessId q1 = young.add_process();
  const ProcessId q2 = young.add_process();
  const ObjectId a = young.new_object(q1);
  const ObjectId b = young.new_object(q2);
  young.add_root(q1, a);
  young.add_root(q2, b);
  young.detector(q2).take_snapshot();  // too early: b has no scion yet

  young.propagate(a, q1, q2);
  young.run_until_quiescent();
  workload::make_remote_ref(young, q1, a, q2, b);
  workload::make_remote_ref(young, q2, b, q1, a);
  young.remove_root(q1, a);
  young.remove_root(q2, b);
  workload::settle(young);

  young.detector(q1).take_snapshot();  // q1 is current, q2 is stale
  ASSERT_TRUE(young.detector(q1).start_detection(a).has_value());
  young.run_until_quiescent();
  EXPECT_TRUE(young.cycles_found().empty());
  EXPECT_GE(young.metric_total("cycle.drops_unknown_entity") +
                young.metric_total("cycle.drops_no_snapshot"),
            1u);
}

TEST_F(RaceFixture, RetryAfterAbortSucceedsOnceQuiet) {
  // An aborted detection is merely wasted work: fresh snapshots later
  // find the (by then genuinely dead) cycle.
  cluster.detector(f.p2).take_snapshot();
  cluster.detector(f.p3).take_snapshot();
  cluster.detector(f.p4).take_snapshot();
  cluster.propagate(f.x, f.p1, f.p2);
  cluster.run_until_quiescent();
  cluster.remove_root(f.p1, f.x);
  cluster.detector(f.p1).take_snapshot();
  cluster.detector(f.p2).start_detection(f.x);
  cluster.run_until_quiescent();
  ASSERT_TRUE(cluster.cycles_found().empty());

  // Note the update itself clobbered the divergent replica X'@P2 (the
  // coherence overwrite dropped its reference to Y — replicas diverge in
  // this model).  Restore the edge, quiesce, and retry with fresh
  // snapshots: the dead cycle is found.
  cluster.add_ref(f.p2, f.x, f.y);
  cluster.run_until_quiescent();
  cluster.snapshot_all();  // world is quiet now
  ASSERT_TRUE(cluster.detect(f.p1, f.x).has_value());
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.cycles_found().size(), 1u);
}

TEST_F(RaceFixture, TransientInvocationRootBlocksDetectionWhileHeld) {
  cluster.remove_root(f.p1, f.x);
  cluster.invoke(f.p3, f.x, /*root_steps=*/1000);  // long-running call
  cluster.run_until_quiescent();
  cluster.snapshot_all();
  // P3 holds x through the call's register: x is locally reachable there.
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  EXPECT_TRUE(cluster.cycles_found().empty());
  EXPECT_GE(cluster.metric_total("cycle.aborts_live") +
                cluster.metric_total("cycle.live_stub_skips"),
            1u);
}

TEST_F(RaceFixture, FullGcUnderInterleavedMutationNeverBreaksLiveData) {
  // Alternate mutation bursts with full GC rounds; the live cycle must
  // survive every round, and integrity must hold throughout.  Mutations
  // avoid clobbering the divergent replicas: invocations on the cycle plus
  // unrelated allocation/propagation churn.
  for (int round = 0; round < 5; ++round) {
    cluster.invoke(f.p2, f.y);
    cluster.invoke(f.p3, f.x);
    const ObjectId churn = cluster.new_object(f.p1);
    cluster.add_root(f.p1, churn);
    cluster.propagate(churn, f.p1, f.p2);
    cluster.run_until_quiescent();
    cluster.remove_root(f.p1, churn);
    cluster.run_full_gc(4);
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty()) << report.violations.front();
    ASSERT_TRUE(cluster.process(f.p1).heap().contains(f.x));
    ASSERT_TRUE(cluster.process(f.p4).heap().contains(f.y));
  }
}

}  // namespace
}  // namespace rgc::gc
