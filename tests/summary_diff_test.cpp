// Differential tests for the one-pass SCC summarizer: gc::summarize must
// produce bit-for-bit the same ProcessSummary as the retained per-seed
// reference implementation (gc::summarize_reference) on randomized
// mutator/coherence histories, and the cluster's dirty-epoch cache must
// reuse a summary exactly when nothing summary-relevant changed.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "core/cluster.h"
#include "gc/cycle/snapshot_io.h"
#include "gc/cycle/summary.h"
#include "workload/figures.h"
#include "workload/mesh.h"

namespace rgc::gc {
namespace {

using core::Cluster;
using core::ClusterConfig;

/// Both implementations, every process, structural and byte equality.
void expect_identical_summaries(Cluster& cluster, const char* context) {
  for (ProcessId pid : cluster.process_ids()) {
    const rm::Process& proc = cluster.process(pid);
    const ProcessSummary fast = summarize(proc);
    const ProcessSummary ref = summarize_reference(proc);
    ASSERT_EQ(fast, ref) << context << ": summary mismatch on "
                         << to_string(pid);
    ASSERT_EQ(encode_summary(fast), encode_summary(ref))
        << context << ": serialized bytes differ on " << to_string(pid);
  }
}

/// Random mutator/coherence history: every operation the model allows,
/// drawn with guards so each pick is legal, interleaved with message
/// delivery and collections.  The driver only tracks the object-id pool;
/// legality is checked against live process state.
void drive_random_history(Cluster& cluster, std::uint32_t seed,
                          int operations) {
  std::mt19937 rng{seed};
  const std::vector<ProcessId> pids = cluster.process_ids();
  std::vector<ObjectId> pool;

  const auto pick_pid = [&] {
    return pids[rng() % pids.size()];
  };
  // A uniformly random element of `xs`, or kNoObject when empty.
  const auto pick = [&](const std::vector<ObjectId>& xs) {
    return xs.empty() ? kNoObject : xs[rng() % xs.size()];
  };
  const auto local_objects = [&](ProcessId p) {
    std::vector<ObjectId> out;
    for (ObjectId obj : pool) {
      if (cluster.process(p).heap().contains(obj)) out.push_back(obj);
    }
    return out;
  };

  for (int op = 0; op < operations; ++op) {
    const ProcessId p = pick_pid();
    const rm::Process& proc = cluster.process(p);
    switch (rng() % 12) {
      case 0:
        pool.push_back(cluster.new_object(p));
        break;
      case 1: {  // root anything resolvable (replica or stubbed remote)
        std::vector<ObjectId> known;
        for (ObjectId obj : pool) {
          if (proc.knows(obj)) known.push_back(obj);
        }
        if (const ObjectId obj = pick(known); obj != kNoObject) {
          cluster.add_root(p, obj);
        }
        break;
      }
      case 2: {
        const auto& roots = proc.heap().roots();
        if (!roots.empty()) {
          auto it = roots.begin();
          std::advance(it, rng() % roots.size());
          cluster.remove_root(p, *it);
        }
        break;
      }
      case 3: {  // local or stub-resolved reference assignment
        const ObjectId from = pick(local_objects(p));
        if (from == kNoObject) break;
        std::vector<ObjectId> known;
        for (ObjectId obj : pool) {
          if (proc.knows(obj)) known.push_back(obj);
        }
        if (const ObjectId to = pick(known); to != kNoObject) {
          cluster.add_ref(p, from, to);
        }
        break;
      }
      case 4: {
        const ObjectId from = pick(local_objects(p));
        if (from == kNoObject) break;
        const rm::Object* obj = proc.heap().find(from);
        if (obj == nullptr || obj->refs.empty()) break;
        cluster.remove_ref(p, from, obj->refs[rng() % obj->refs.size()].target);
        break;
      }
      case 5: {  // replicate onto a random other process
        if (pids.size() < 2) break;
        const ObjectId obj = pick(local_objects(p));
        if (obj == kNoObject) break;
        ProcessId to = pick_pid();
        if (to == p) break;
        cluster.propagate(obj, p, to);
        break;
      }
      case 6: {  // courier-built remote reference
        if (pids.size() < 2) break;
        const ProcessId q = pick_pid();
        if (q == p) break;
        const ObjectId from = pick(local_objects(p));
        const ObjectId to = pick(local_objects(q));
        if (from == kNoObject || to == kNoObject) break;
        pool.push_back(workload::make_remote_ref(cluster, p, from, q, to));
        break;
      }
      case 7: {  // invoke through a random stub (IC/SSP traffic)
        std::vector<rm::StubKey> keys;
        for (const auto& [key, stub] : proc.stubs()) keys.push_back(key);
        if (!keys.empty()) {
          cluster.invoke(p, keys[rng() % keys.size()].target);
        }
        break;
      }
      case 8:
        cluster.step();
        break;
      case 9:
        cluster.run_until_quiescent();
        break;
      case 10:
        cluster.collect(p);
        break;
      default:
        cluster.collect_all();
        break;
    }
  }
  cluster.run_until_quiescent();
}

TEST(SummaryDiff, RandomHistoriesAcrossSeeds) {
  for (std::uint32_t seed : {1u, 7u, 42u, 1234u, 90210u, 424242u}) {
    ClusterConfig cfg;
    cfg.net.seed = seed;
    Cluster cluster{cfg};
    const std::size_t procs = 2 + seed % 4;
    for (std::size_t i = 0; i < procs; ++i) cluster.add_process();

    // Compare at several points along the history, not only at the end:
    // mid-flight propagations, undelivered invokes and half-collected
    // garbage are exactly the states a background summarizer sees.
    for (int leg = 0; leg < 6; ++leg) {
      drive_random_history(cluster, seed * 31 + leg, 60);
      expect_identical_summaries(cluster, "random history");
    }
  }
}

TEST(SummaryDiff, MeshAndFigureTopologies) {
  {
    Cluster cluster;
    workload::build_mesh(cluster,
                         {.processes = 5, .dependencies = 7, .extra_replicas = 2});
    expect_identical_summaries(cluster, "mesh");
  }
  {
    Cluster cluster;
    workload::build_figure2(cluster);
    expect_identical_summaries(cluster, "figure 2");
  }
}

// ---- dirty-epoch incremental reuse ----------------------------------------

TEST(SummaryDiff, EpochBumpsOnSummaryRelevantMutations) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  rm::Process& proc = cluster.process(p1);

  std::uint64_t before = proc.mutation_epoch();
  const ObjectId a = cluster.new_object(p1);
  EXPECT_GT(proc.mutation_epoch(), before) << "create_object must bump";

  before = proc.mutation_epoch();
  cluster.add_root(p1, a);
  EXPECT_GT(proc.mutation_epoch(), before) << "add_root must bump";

  before = proc.mutation_epoch();
  cluster.propagate(a, p1, p2);
  EXPECT_GT(proc.mutation_epoch(), before) << "propagate must bump (UC)";

  const std::uint64_t remote_before = cluster.process(p2).mutation_epoch();
  cluster.run_until_quiescent();
  EXPECT_GT(cluster.process(p2).mutation_epoch(), remote_before)
      << "delivered propagation must bump the receiver";

  // Steps with no deliveries and no expiring roots leave epochs alone.
  before = proc.mutation_epoch();
  cluster.step();
  cluster.step();
  EXPECT_EQ(proc.mutation_epoch(), before);
}

TEST(SummaryDiff, SnapshotAllReusesQuiescentSummaries) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  cluster.snapshot_all();
  const std::uint64_t reused0 = cluster.metric_total("cycle.summarize_reused");
  const auto dirty0 =
      cluster.network().metrics().gauge_value("cycle.summary_dirty_fraction");
  EXPECT_EQ(dirty0, 100u) << "first snapshot round summarizes everything";

  // Nothing changed: the second round must reuse both summaries verbatim.
  cluster.snapshot_all();
  EXPECT_EQ(cluster.metric_total("cycle.summarize_reused"), reused0 + 2);
  EXPECT_EQ(
      cluster.network().metrics().gauge_value("cycle.summary_dirty_fraction"),
      0u);
  EXPECT_EQ(cluster.detector(p1).summary(), summarize(cluster.process(p1)))
      << "a reused summary must equal what a fresh summarization would give";

  // Mutating one process re-summarizes exactly that one.
  cluster.remove_root(p1, a);
  cluster.snapshot_all();
  EXPECT_EQ(cluster.metric_total("cycle.summarize_reused"), reused0 + 3);
  EXPECT_EQ(
      cluster.network().metrics().gauge_value("cycle.summary_dirty_fraction"),
      50u);
  EXPECT_FALSE(cluster.detector(p1).summary().replicas.at(a).local_reach);
}

TEST(SummaryDiff, SnapshotRoundTripKeepsEpochAndAnchorIndex) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  const ProcessSummary s = summarize(cluster.process(p2));
  const auto decoded = decode_summary(encode_summary(s));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, s);
  EXPECT_EQ(decoded->mutation_epoch, s.mutation_epoch);
  // The anchor index is derived state but must come back usable.
  EXPECT_EQ(decoded->scions_anchored_at(a).size(),
            s.scions_anchored_at(a).size());
}

}  // namespace
}  // namespace rgc::gc
