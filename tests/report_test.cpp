// Unit tests: the cluster reporting module.
#include <gtest/gtest.h>

#include "core/report.h"
#include "workload/figures.h"

namespace rgc::core {
namespace {

TEST(Report, EmptyCluster) {
  Cluster cluster;
  cluster.add_process();
  const ClusterReport report = make_report(cluster);
  ASSERT_EQ(report.processes.size(), 1u);
  EXPECT_EQ(report.processes[0].objects, 0u);
  EXPECT_TRUE(report.traffic.empty());
  EXPECT_EQ(report.cycles_found, 0u);
}

TEST(Report, CountsMatchProcessState) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const ClusterReport report = make_report(cluster);
  ASSERT_EQ(report.processes.size(), 4u);
  const rm::Process& p1 = cluster.process(f.p1);
  EXPECT_EQ(report.processes[0].objects, p1.heap().size());
  EXPECT_EQ(report.processes[0].scions, p1.scions().size());
  EXPECT_EQ(report.processes[0].stubs, p1.stubs().size());
  EXPECT_EQ(report.processes[0].in_props, p1.in_props().size());
  EXPECT_EQ(report.processes[0].out_props, p1.out_props().size());
}

TEST(Report, TrafficListsMessageKinds) {
  Cluster cluster;
  workload::build_figure2(cluster);
  const ClusterReport report = make_report(cluster);
  bool has_propagate = false;
  for (const auto& [kind, count] : report.traffic) {
    if (kind == "Propagate") {
      has_propagate = true;
      EXPECT_GT(count, 0u);
    }
  }
  EXPECT_TRUE(has_propagate);
}

TEST(Report, GcCountersAggregateAcrossProcesses) {
  Cluster cluster;
  workload::build_figure2(cluster);
  cluster.run_full_gc();
  const ClusterReport report = make_report(cluster);
  std::uint64_t cycles = 0;
  for (const auto& [name, value] : report.gc_counters) {
    if (name == "cycle.cycles_found") cycles = value;
  }
  EXPECT_GE(cycles, 1u);
  EXPECT_GE(report.cycles_found, 1u);
}

TEST(Report, RendersReadably) {
  Cluster cluster;
  workload::build_figure2(cluster);
  cluster.run_full_gc();
  const std::string text = make_report(cluster).to_string();
  EXPECT_NE(text.find("cluster @ step"), std::string::npos);
  EXPECT_NE(text.find("P0"), std::string::npos);
  EXPECT_NE(text.find("traffic:"), std::string::npos);
  EXPECT_NE(text.find("CDM="), std::string::npos);
}

}  // namespace
}  // namespace rgc::core
