// Targeted tests for the protocol's staleness guards — the machinery
// §2.2.4's causal-ordering remarks imply but leave implicit, which the
// unreliable transport makes load-bearing.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "gc/adgc/adgc.h"
#include "gc/cycle/detector.h"
#include "workload/figures.h"

namespace rgc::gc {
namespace {

using core::Cluster;

TEST(ProtocolGuards, StaleNewSetStubsEpochIsIgnored) {
  // Hand-deliver an old (empty) stub set *after* a newer one: the epoch
  // guard must reject it, keeping the scion alive.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.add_root(p2, a);
  cluster.collect(p2);  // current set (epoch 1), lists b
  cluster.run_until_quiescent();
  ASSERT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}));

  NewSetStubsMsg stale;
  stale.epoch = 0;  // older than anything delivered
  stale.horizon = cluster.process(p2).delivered_prop_seq(p1);
  const net::Envelope env{p2, p1, 999, 0, &stale};
  Adgc::on_new_set_stubs(cluster.process(p1), env, stale);
  EXPECT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}))
      << "a stale empty set must not retract a current scion";
  EXPECT_EQ(cluster.process(p1).metrics().get("adgc.newsetstubs_stale"), 1u);
}

TEST(ProtocolGuards, FreshEpochWithoutAnchorRetires) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  NewSetStubsMsg fresh;
  fresh.epoch = 42;
  fresh.horizon = cluster.process(p2).delivered_prop_seq(p1);
  const net::Envelope env{p2, p1, 999, 0, &fresh};
  Adgc::on_new_set_stubs(cluster.process(p1), env, fresh);
  EXPECT_FALSE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}));
}

TEST(ProtocolGuards, HorizonShieldsNewerScionEvenAtFreshEpoch) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);  // in flight: scion exists, not delivered
  ASSERT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}));

  NewSetStubsMsg msg;
  msg.epoch = 42;
  msg.horizon = 0;  // computed before the propagate was delivered
  const net::Envelope env{p2, p1, 999, 0, &msg};
  Adgc::on_new_set_stubs(cluster.process(p1), env, msg);
  EXPECT_TRUE(cluster.process(p1).scions().contains(rm::ScionKey{p2, b}))
      << "created_seq beyond the horizon must shield the scion";
}

TEST(ProtocolGuards, UnreachableWithWrongUcIsDiscarded) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  UnreachableMsg report;
  report.object = a;
  report.uc = 99;  // does not match the live link UC (1)
  const net::Envelope env{p2, p1, 999, 0, &report};
  Adgc::on_unreachable(cluster.process(p1), env, report);
  EXPECT_FALSE(cluster.process(p1).find_out_prop(a, p2)->rec_umess);
  EXPECT_EQ(cluster.process(p1).metrics().get("adgc.unreachable_stale"), 1u);
}

TEST(ProtocolGuards, ReclaimForUnknownLinkIsANoOp) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  cluster.new_object(p1);

  ReclaimMsg reclaim;
  reclaim.object = ObjectId{12345};
  const net::Envelope env{p2, p1, 1, 0, &reclaim};
  EXPECT_NO_THROW(Adgc::on_reclaim(cluster.process(p1), env, reclaim));
}

TEST(ProtocolGuards, CutForVanishedScionIsANoOp) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  cluster.new_object(p1);
  CutMsg cut;
  cut.candidate = ObjectId{7};
  cut.scion_cuts.emplace_back(rm::ScionKey{p2, ObjectId{7}}, 0);
  cut.prop_cuts.emplace_back(p2, 0);
  const net::Envelope env{p2, p1, 1, 0, &cut};
  EXPECT_NO_THROW(cluster.detector(p1).on_cut(env, cut));
  EXPECT_EQ(cluster.process(p1).metrics().get("cycle.scions_cut"), 0u);
}

TEST(ProtocolGuards, PropCycleCutCarriesPropLinks) {
  // A pure propagation cycle's verdict must cut the candidate's inProp
  // link (there are no scions to cut), and the PropCut companion clears
  // the parent's outProp.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.propagate(a, p2, p1);
  cluster.run_until_quiescent();

  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(p1, a).has_value());
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.cycles_found().size(), 1u);

  const CutMsg cut = CycleDetector::make_cut(cluster.cycles_found().front());
  EXPECT_TRUE(cut.scion_cuts.empty());
  ASSERT_EQ(cut.prop_cuts.size(), 1u);
  EXPECT_EQ(cut.prop_cuts[0].first, p2) << "parent of the candidate's inProp";
  // The auto-cut already applied: the links are gone.
  EXPECT_EQ(cluster.process(p1).find_in_prop(a, p2), nullptr);
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.process(p2).find_out_prop(a, p1), nullptr);
}

}  // namespace
}  // namespace rgc::gc
