// Property-based tests: random replicated workloads checked against the
// omniscient oracle.
//
//  Safety       — at every point (during mutation, between GC rounds) no
//                 live object is ever lost and no live path dangles.
//  Completeness — once mutation stops, run_full_gc() reclaims every dead
//                 object, cyclic or acyclic, replicated or not, and leaves
//                 no GC structure naming a dead object.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/random_mutator.h"

namespace rgc {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::Oracle;
using workload::MutatorSpec;
using workload::RandomMutator;

struct PropertyCase {
  std::uint64_t seed;
  std::size_t processes;
  std::size_t ops;
};

class RandomWorkload : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RandomWorkload, SafetyHoldsThroughoutMutationAndGc) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.net.seed = param.seed;
  Cluster cluster{cfg};
  for (std::size_t i = 0; i < param.processes; ++i) cluster.add_process();

  MutatorSpec spec;
  spec.seed = param.seed * 977 + 13;
  RandomMutator mutator{cluster, spec};

  for (int burst = 0; burst < 8; ++burst) {
    mutator.run(param.ops / 8);
    cluster.run_until_quiescent();
    const auto report = Oracle::analyze(cluster);
    ASSERT_TRUE(report.violations.empty())
        << "burst " << burst << ": " << report.violations.front();
    // Interleave a full GC and re-check: GC must never harm live data.
    const auto live_before = report.live_objects;
    cluster.run_full_gc(6);
    const auto after = Oracle::analyze(cluster);
    ASSERT_TRUE(after.violations.empty())
        << "post-GC burst " << burst << ": " << after.violations.front();
    for (ObjectId obj : live_before) {
      ASSERT_TRUE(after.object_exists(obj))
          << "GC lost live object " << to_string(obj) << " in burst "
          << burst;
    }
  }
}

TEST_P(RandomWorkload, CompletenessOnceMutationStops) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.net.seed = param.seed;
  Cluster cluster{cfg};
  for (std::size_t i = 0; i < param.processes; ++i) cluster.add_process();

  MutatorSpec spec;
  spec.seed = param.seed * 31 + 7;
  RandomMutator mutator{cluster, spec};
  mutator.run(param.ops);
  cluster.run_until_quiescent();

  cluster.run_full_gc();
  const auto report = Oracle::analyze(cluster);
  EXPECT_TRUE(report.violations.empty())
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_TRUE(report.garbage_objects().empty())
      << report.garbage_objects().size() << " dead objects survived full GC";
  EXPECT_TRUE(Oracle::fully_collected(cluster, report));
}

TEST_P(RandomWorkload, DroppingAllRootsReclaimsEverything) {
  const auto param = GetParam();
  ClusterConfig cfg;
  cfg.net.seed = param.seed;
  Cluster cluster{cfg};
  for (std::size_t i = 0; i < param.processes; ++i) cluster.add_process();

  MutatorSpec spec;
  spec.seed = param.seed * 131 + 3;
  RandomMutator mutator{cluster, spec};
  mutator.run(param.ops);
  cluster.run_until_quiescent();

  for (ProcessId pid : cluster.process_ids()) {
    const auto roots = cluster.process(pid).heap().roots();
    for (ObjectId r : roots) cluster.remove_root(pid, r);
  }
  // Transient invocation roots expire with time.
  for (int i = 0; i < 8; ++i) cluster.step();

  cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u)
      << "with no roots at all, the whole store is garbage";
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomWorkload,
    ::testing::Values(PropertyCase{1, 3, 400}, PropertyCase{2, 3, 400},
                      PropertyCase{3, 4, 600}, PropertyCase{4, 4, 600},
                      PropertyCase{5, 5, 800}, PropertyCase{6, 2, 300},
                      PropertyCase{7, 6, 800}, PropertyCase{8, 4, 1000},
                      PropertyCase{9, 3, 500}, PropertyCase{10, 5, 1000}),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_p" +
             std::to_string(info.param.processes) + "_ops" +
             std::to_string(info.param.ops);
    });

}  // namespace
}  // namespace rgc
