// Unit tests: snapshot summarization (§3.5.1) — StubsFrom/ReplicasFrom,
// ScionsTo/ReplicasTo, LocalReach, counters.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "gc/cycle/summary.h"
#include "workload/figures.h"

namespace rgc::gc {
namespace {

using core::Cluster;

TEST(Summary, EmptyProcessSummarizesEmpty) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessSummary s = summarize(cluster.process(p1));
  EXPECT_EQ(s.process, p1);
  EXPECT_TRUE(s.scions.empty());
  EXPECT_TRUE(s.stubs.empty());
  EXPECT_TRUE(s.replicas.empty());
}

TEST(Summary, ReplicaLocalReachTracksRoots) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  auto s = summarize(cluster.process(p1));
  ASSERT_TRUE(s.replicas.contains(a));
  EXPECT_FALSE(s.replicas.at(a).local_reach);

  cluster.add_root(p1, a);
  s = summarize(cluster.process(p1));
  EXPECT_TRUE(s.replicas.at(a).local_reach);
}

TEST(Summary, IndirectRootReachSetsLocalReach) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId root_obj = cluster.new_object(p1);
  const ObjectId a = cluster.new_object(p1);
  cluster.add_ref(p1, root_obj, a);
  cluster.add_root(p1, root_obj);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  const auto s = summarize(cluster.process(p1));
  EXPECT_TRUE(s.replicas.at(a).local_reach)
      << "reachability through a chain of local objects must count";
}

TEST(Summary, StubsFromOfReplicaCrossesLocalObjects) {
  // a(replica) -> m (plain local) -> remote z: StubsFrom(a) = {z-stub}.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId m = cluster.new_object(p1);
  const ObjectId z = cluster.new_object(p3);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, m);
  workload::make_remote_ref(cluster, p1, m, p3, z);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  const auto s = summarize(cluster.process(p1));
  ASSERT_TRUE(s.replicas.contains(a));
  EXPECT_TRUE(s.replicas.at(a).stubs_from.contains(rm::StubKey{z, p3}));
}

TEST(Summary, ReplicasFromExcludesSelfButSeesOthers) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.propagate(b, p1, p2);
  cluster.run_until_quiescent();

  const auto s = summarize(cluster.process(p1));
  EXPECT_FALSE(s.replicas.at(a).replicas_from.contains(a));
  EXPECT_TRUE(s.replicas.at(a).replicas_from.contains(b));
  EXPECT_TRUE(s.replicas.at(b).replicas_to.contains(a));
}

TEST(Summary, ScionForwardReachAndInversion) {
  // p2 holds a scion for b (exported by propagating a which references b);
  // from b a stub leads onward to z@p3.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  const ObjectId z = cluster.new_object(p3);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  workload::make_remote_ref(cluster, p1, b, p3, z);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  const auto s = summarize(cluster.process(p1));
  const rm::ScionKey scion_b{p2, b};
  ASSERT_TRUE(s.scions.contains(scion_b));
  EXPECT_TRUE(s.scions.at(scion_b).stubs_from.contains(rm::StubKey{z, p3}));
  // Inversion: the stub knows which scion leads to it.
  ASSERT_TRUE(s.stubs.contains(rm::StubKey{z, p3}));
  EXPECT_TRUE(s.stubs.at(rm::StubKey{z, p3}).scions_to.contains(scion_b));
}

TEST(Summary, ScionLocalReachWhenAnchorRooted) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  auto s = summarize(cluster.process(p1));
  EXPECT_TRUE(s.scions.at(rm::ScionKey{p2, b}).local_reach)
      << "anchor b is reachable from root a";

  cluster.remove_root(p1, a);
  cluster.remove_ref(p1, a, b);
  s = summarize(cluster.process(p1));
  EXPECT_FALSE(s.scions.at(rm::ScionKey{p2, b}).local_reach);
}

TEST(Summary, StubLocalReachWhenHeldByLivePath) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  auto s = summarize(cluster.process(p2));
  ASSERT_TRUE(s.stubs.contains(rm::StubKey{b, p1}));
  EXPECT_FALSE(s.stubs.at(rm::StubKey{b, p1}).local_reach);

  cluster.add_root(p2, a);  // live path a -> stub(b)
  s = summarize(cluster.process(p2));
  EXPECT_TRUE(s.stubs.at(rm::StubKey{b, p1}).local_reach);
}

TEST(Summary, AnchorLevelReplicasToOnScion) {
  // A local *replicated* object referencing a non-replicated scion anchor
  // must appear in the anchor's ReplicasTo (the safety fix of DESIGN.md).
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);  // will be replicated
  const ObjectId z = cluster.new_object(p1);  // plain, scion-anchored
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, z);
  cluster.propagate(a, p1, p2);           // replicates a; exports scion for z
  cluster.run_until_quiescent();
  // Give z a second, independent scion from p3 so we can inspect it.
  workload::make_remote_ref(cluster, p3, cluster.new_object(p3), p1, z);

  const auto s = summarize(cluster.process(p1));
  const rm::ScionKey from_p2{p2, z};
  ASSERT_TRUE(s.scions.contains(from_p2));
  EXPECT_TRUE(s.scions.at(from_p2).replicas_to.contains(a))
      << "replicated local referencer of the anchor must be a dependency";
}

TEST(Summary, CountersAreSnapshotted) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.invoke(p2, b);
  cluster.invoke(p2, b);
  cluster.run_until_quiescent();

  const auto s1 = summarize(cluster.process(p1));
  const auto s2 = summarize(cluster.process(p2));
  EXPECT_EQ(s1.scions.at(rm::ScionKey{p2, b}).ic, 2u);
  EXPECT_EQ(s2.stubs.at(rm::StubKey{b, p1}).ic, 2u);
  EXPECT_EQ(s1.replicas.at(a).out_props.at(0).uc, 1u);
  EXPECT_EQ(s2.replicas.at(a).in_props.at(0).uc, 1u);
}

TEST(Summary, SnapshotIsAPointInTime) {
  // Later mutations must not leak into an already-taken summary.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.add_ref(p1, a, b);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();

  const auto s = summarize(cluster.process(p1));
  const auto old_ic = s.scions.at(rm::ScionKey{p2, b}).ic;
  cluster.invoke(p2, b);
  cluster.run_until_quiescent();
  EXPECT_EQ(s.scions.at(rm::ScionKey{p2, b}).ic, old_ic);
  EXPECT_EQ(summarize(cluster.process(p1)).scions.at(rm::ScionKey{p2, b}).ic,
            old_ic + 1);
}

TEST(Summary, ScionsAnchoredAtFiltersByAnchor) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();
  const ObjectId z = cluster.new_object(p1);
  workload::make_remote_ref(cluster, p2, cluster.new_object(p2), p1, z);
  workload::make_remote_ref(cluster, p3, cluster.new_object(p3), p1, z);

  const auto s = summarize(cluster.process(p1));
  const auto anchored = s.scions_anchored_at(z);
  EXPECT_EQ(anchored.size(), 2u);
  EXPECT_TRUE(s.scions_anchored_at(ObjectId{999}).empty());
}

}  // namespace
}  // namespace rgc::gc
