// Unit/integration tests: the replication-aware cycle detector — start
// conditions, pure propagation cycles, verdict cuts, stale-cut safety,
// subsumption, policy configuration.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/figures.h"

namespace rgc::gc {
namespace {

using core::Cluster;
using core::ClusterConfig;
using core::Oracle;

TEST(Detector, StartRequiresSnapshot) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  EXPECT_FALSE(cluster.detect(p1, a).has_value());
}

TEST(Detector, StartRejectsUnknownCandidate) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);  // no scion, not replicated
  cluster.snapshot_all();
  EXPECT_FALSE(cluster.detect(p1, a).has_value())
      << "an object without incoming remote dependencies cannot head a "
         "distributed cycle";
}

TEST(Detector, StartRejectsLocallyReachableCandidate) {
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.add_root(p1, a);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.snapshot_all();
  EXPECT_FALSE(cluster.detect(p1, a).has_value());
}

TEST(Detector, PurePropagationCycleIsDetectedAndReclaimed) {
  // a propagated P1 -> P2 and back P2 -> P1: a two-replica "cycle" held
  // alive purely by propagation entries — no scions at all.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.propagate(a, p2, p1);
  cluster.run_until_quiescent();

  // The acyclic protocol deadlocks on the mutual props...
  for (int i = 0; i < 6; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  ASSERT_TRUE(cluster.process(p1).heap().contains(a));
  ASSERT_TRUE(cluster.process(p2).heap().contains(a));

  // ...the cycle detector resolves it.
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(p1, a).has_value());
  cluster.run_until_quiescent();
  ASSERT_GE(cluster.cycles_found().size(), 1u);
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST(Detector, MakeCutRecordsCandidateLinksOnly) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.cycles_found().size(), 1u);

  const CutMsg cut = CycleDetector::make_cut(cluster.cycles_found().front());
  EXPECT_EQ(cut.candidate, f.x);
  // X@P1's incoming dependencies: the scion from P3 and no inProp links.
  ASSERT_EQ(cut.scion_cuts.size(), 1u);
  EXPECT_EQ(cut.scion_cuts[0].first, (rm::ScionKey{f.p3, f.x}));
  EXPECT_TRUE(cut.prop_cuts.empty());
}

TEST(Detector, StaleCutIsSkippedAfterInvocation) {
  Cluster cluster;
  ClusterConfig cfg;
  cfg.auto_cut = false;  // apply the cut manually, after a mutation
  Cluster manual{cfg};
  const auto f = workload::build_figure2(manual);
  manual.snapshot_all();
  manual.detect(f.p1, f.x);
  manual.run_until_quiescent();
  ASSERT_EQ(manual.cycles_found().size(), 1u);

  // A mutator invocation on the candidate lands *after* the verdict: the
  // recorded IC no longer matches and the cut must refuse to apply.
  manual.invoke(f.p3, f.x);
  manual.run_until_quiescent();

  auto cut = std::make_unique<CutMsg>(
      CycleDetector::make_cut(manual.cycles_found().front()));
  manual.network().send(f.p1, f.p1, std::move(cut));
  manual.run_until_quiescent();
  EXPECT_TRUE(manual.process(f.p1).scions().contains(rm::ScionKey{f.p3, f.x}))
      << "a cut with a stale IC must not delete the scion";
  EXPECT_EQ(manual.process(f.p1).metrics().get("cycle.cuts_stale"), 1u);
}

TEST(Detector, DuplicateVerdictCutsAreIdempotent) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.cycles_found().size(), 1u);
  // Replay the same cut.
  auto cut = std::make_unique<CutMsg>(
      CycleDetector::make_cut(cluster.cycles_found().front()));
  cluster.network().send(f.p1, f.p1, std::move(cut));
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.process(f.p1).metrics().get("cycle.scions_cut"), 1u);
}

TEST(Detector, SubsumedDuplicateCdmsAreDropped) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();

  // Re-running the identical detection under the same snapshots hits the
  // per-entry subsumption filter at every hop it repeats... a new
  // detection id makes the filter inapplicable; same-id replays drop.
  const auto drops_before =
      cluster.metric_total("cycle.drops_subsumed");
  cluster.detect(f.p1, f.x);  // new detection id: no drops expected
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.metric_total("cycle.drops_subsumed"), drops_before);
}

TEST(Detector, SecondDetectionAfterCutFindsNothing) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  ASSERT_EQ(cluster.cycles_found().size(), 1u);

  // Fresh snapshots reflect the cut scion: the cycle is already broken,
  // the candidate may no longer even qualify.
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  cluster.snapshot_all();
  cluster.detect(f.p1, f.x);
  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.cycles_found().size(), 1u) << "no second verdict";
}

TEST(Detector, ParentsFirstPolicyStillDetects) {
  ClusterConfig cfg;
  cfg.detector.children_first = false;  // ablation: reversed forwarding
  Cluster cluster{cfg};
  const auto f = workload::build_figure2(cluster);
  cluster.snapshot_all();
  ASSERT_TRUE(cluster.detect(f.p1, f.x).has_value());
  cluster.run_until_quiescent();
  EXPECT_GE(cluster.cycles_found().size(), 1u)
      << "the policy affects economy, not completeness";
}

TEST(Detector, ThreeProcessRingOfPropagations) {
  // a propagated around P1 -> P2 -> P3 -> P1: a three-replica prop cycle.
  Cluster cluster;
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();
  const ObjectId a = cluster.new_object(p1);
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  cluster.propagate(a, p2, p3);
  cluster.run_until_quiescent();
  cluster.propagate(a, p3, p1);
  cluster.run_until_quiescent();

  const auto stats = cluster.run_full_gc();
  EXPECT_GE(stats.cycles_found, 1u);
  EXPECT_EQ(cluster.total_objects(), 0u);
}

TEST(Detector, TwoIndependentCyclesAreBothCollected) {
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  // Second, disjoint cycle on the same processes.
  const ObjectId u = cluster.new_object(f.p1);
  const ObjectId v = cluster.new_object(f.p4);
  cluster.add_root(f.p1, u);
  cluster.add_root(f.p4, v);
  cluster.propagate(u, f.p1, f.p2);
  cluster.propagate(v, f.p4, f.p3);
  cluster.run_until_quiescent();
  workload::make_remote_ref(cluster, f.p2, u, f.p4, v);
  workload::make_remote_ref(cluster, f.p3, v, f.p1, u);
  cluster.remove_root(f.p1, u);
  cluster.remove_root(f.p4, v);
  workload::settle(cluster);

  const auto stats = cluster.run_full_gc();
  EXPECT_GE(stats.cycles_found, 2u);
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(Oracle::fully_collected(cluster, Oracle::analyze(cluster)));
}

TEST(Detector, CycleWithAcyclicTailNeedsAdgcFirst) {
  // g -> x where x is in a garbage cycle: the scion from g's process keeps
  // an unresolved dependency until the acyclic protocol collects g; then
  // the cycle falls.  run_full_gc alternates both phases and converges.
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const ProcessId p5 = cluster.add_process();
  const ObjectId g = cluster.new_object(p5);
  cluster.add_root(p5, g);
  workload::make_remote_ref(cluster, p5, g, f.p1, f.x);
  workload::settle(cluster);

  // With g live, the cycle must survive everything.
  auto stats = cluster.run_full_gc();
  EXPECT_TRUE(cluster.process(f.p1).heap().contains(f.x));

  // Drop g: tail + cycle all garbage now.
  cluster.remove_root(p5, g);
  stats = cluster.run_full_gc();
  EXPECT_EQ(cluster.total_objects(), 0u);
  EXPECT_TRUE(Oracle::fully_collected(cluster, Oracle::analyze(cluster)));
}

TEST(Detector, MutuallyReferencingCyclesConverge) {
  // Cycle A (fig2) plus an upstream cycle B referencing into A: trial
  // deletion chokes on this shape (§6); ours converges over rounds.
  Cluster cluster;
  const auto f = workload::build_figure2(cluster);
  const ProcessId q1 = cluster.add_process();
  const ProcessId q2 = cluster.add_process();
  const ObjectId m = cluster.new_object(q1);
  const ObjectId n = cluster.new_object(q2);
  cluster.add_root(q1, m);
  cluster.add_root(q2, n);
  workload::make_remote_ref(cluster, q1, m, q2, n);
  workload::make_remote_ref(cluster, q2, n, q1, m);
  // B -> A: m also references x.
  workload::make_remote_ref(cluster, q1, m, f.p1, f.x);
  cluster.remove_root(q1, m);
  cluster.remove_root(q2, n);
  workload::settle(cluster);

  const auto stats = cluster.run_full_gc();
  EXPECT_GE(stats.cycles_found, 2u);
  EXPECT_EQ(cluster.total_objects(), 0u);
}

}  // namespace
}  // namespace rgc::gc
