// Determinism of the phase-split parallel GC path (see docs/PERFORMANCE.md):
// the thread count is a pure performance knob.  Mark and summarize run on
// workers; every mutating phase (sweeps, protocol messages, heuristics) is
// applied serially in pid order, so a cluster driven with threads=N must be
// bit-for-bit identical to threads=1 — same reclaims, same cycles, same
// message counts, same JSON report.
//
// This suite is also the TSan workload: scripts/check.sh builds a
// thread-sanitized tree and runs it with threads=8 (see RGC_SANITIZE).
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "core/cluster.h"
#include "core/report.h"
#include "util/thread_pool.h"
#include "workload/mesh.h"

namespace rgc::core {
namespace {

ClusterConfig config_with_threads(std::size_t threads) {
  ClusterConfig cfg;
  cfg.net.seed = 1234;
  cfg.threads = threads;
  return cfg;
}

/// The shared workload: a garbage mesh plus some live survivors, driven
/// through the full phased pipeline (collect_all + snapshot_all +
/// run_full_gc).
void drive(Cluster& cluster) {
  const workload::Mesh mesh =
      workload::build_mesh(cluster, {.processes = 6, .dependencies = 8,
                                     .extra_replicas = 1});
  (void)mesh;
  // A live remote chain that must survive every round.
  const ProcessId p0 = cluster.process_ids().front();
  const ProcessId p1 = cluster.process_ids()[1];
  const ObjectId keeper = cluster.new_object(p0);
  cluster.add_root(p0, keeper);
  cluster.propagate(keeper, p0, p1);
  cluster.run_until_quiescent();

  cluster.collect_all();
  cluster.run_until_quiescent();
  cluster.snapshot_all();
  cluster.collect_all();
  cluster.run_until_quiescent();
  cluster.run_full_gc();
}

TEST(Determinism, ThreadCountDoesNotChangeResults) {
  Cluster serial{config_with_threads(1)};
  Cluster threaded{config_with_threads(8)};
  drive(serial);
  drive(threaded);

  EXPECT_EQ(serial.total_objects(), threaded.total_objects());
  EXPECT_EQ(serial.now(), threaded.now());
  ASSERT_EQ(serial.cycles_found().size(), threaded.cycles_found().size());
  for (std::size_t i = 0; i < serial.cycles_found().size(); ++i) {
    EXPECT_EQ(serial.cycles_found()[i].targets.size(),
              threaded.cycles_found()[i].targets.size());
  }
  // The strongest check: the full machine-readable report — per-process
  // tables, traffic per message kind, GC counters, histogram buckets —
  // must render to the identical JSON document.
  EXPECT_EQ(make_report(serial).to_json(), make_report(threaded).to_json());
}

TEST(Determinism, PhasedCollectMatchesLegacyPerProcessLoop) {
  Cluster phased{config_with_threads(4)};
  Cluster legacy{config_with_threads(1)};

  auto build = [](Cluster& cluster) {
    workload::build_mesh(cluster, {.processes = 4, .dependencies = 6});
    cluster.run_until_quiescent();
  };
  build(phased);
  build(legacy);

  for (int round = 0; round < 3; ++round) {
    phased.collect_all();
    phased.run_until_quiescent();
    // The documented equivalence: collect_all == collect(pid) in pid order.
    for (ProcessId pid : legacy.process_ids()) legacy.collect(pid);
    legacy.run_until_quiescent();
  }
  EXPECT_EQ(make_report(phased).to_json(), make_report(legacy).to_json());
}

TEST(Determinism, QuiescenceTimeoutIsCountedAndReported) {
  ClusterConfig cfg = config_with_threads(1);
  cfg.net.min_delay = 4;
  cfg.net.max_delay = 4;
  Cluster cluster{cfg};
  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();
  const ObjectId obj = cluster.new_object(p0);
  cluster.add_root(p0, obj);
  cluster.propagate(obj, p0, p1);  // in flight for 4 steps

  // Give up before delivery: the truncation must be observable, not silent.
  const std::uint64_t steps = cluster.run_until_quiescent(/*max_steps=*/1);
  EXPECT_EQ(steps, 1u);
  EXPECT_GE(cluster.network().in_flight(), 1u);
  EXPECT_EQ(cluster.network().metrics().get("cluster.quiescence_timeout"), 1u);

  cluster.run_until_quiescent();
  EXPECT_EQ(cluster.network().in_flight(), 0u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  util::ThreadPool pool{8};
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Reuse: the pool must survive many consecutive jobs.
  std::atomic<int> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(17, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50 * 17);
}

TEST(ThreadPool, PropagatesTheFirstException) {
  util::ThreadPool pool{4};
  EXPECT_THROW(pool.parallel_for(100,
                                 [&](std::size_t i) {
                                   if (i == 13) throw std::runtime_error{"boom"};
                                 }),
               std::runtime_error);
  // ... and stays usable afterwards.
  std::atomic<int> n{0};
  pool.parallel_for(10, [&](std::size_t) { ++n; });
  EXPECT_EQ(n.load(), 10);
}

TEST(ThreadPool, SerialFallbackRunsInline) {
  util::ThreadPool pool{1};
  EXPECT_EQ(pool.thread_count(), 1u);
  int calls = 0;
  pool.parallel_for(5, [&](std::size_t) { ++calls; });  // no data race: inline
  EXPECT_EQ(calls, 5);
}

}  // namespace
}  // namespace rgc::core
