// Unit tests: the RM substrate — heap, mutator operations, propagation
// (clean-before-send / clean-before-deliver), invocation counters.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "net/network.h"
#include "rm/process.h"
#include "util/ids.h"

namespace rgc::rm {
namespace {

struct RmFixture : ::testing::Test {
  net::Network net;
  Process p1{ProcessId{1}, net};
  Process p2{ProcessId{2}, net};

  void SetUp() override {
    net.attach(ProcessId{1}, [this](const net::Envelope& env) { route(p1, env); });
    net.attach(ProcessId{2}, [this](const net::Envelope& env) { route(p2, env); });
  }

  static void route(Process& p, const net::Envelope& env) {
    if (const auto* m = dynamic_cast<const PropagateMsg*>(env.msg)) {
      p.on_propagate(env, *m);
    } else if (const auto* m = dynamic_cast<const InvokeMsg*>(env.msg)) {
      p.on_invoke(env, *m);
    } else {
      FAIL() << "unexpected message kind " << env.msg->kind();
    }
  }

  void quiesce() {
    while (!net.idle()) {
      net.step();
      p1.tick();
      p2.tick();
    }
  }
};

TEST_F(RmFixture, HeapPutFindErase) {
  Heap heap;
  heap.put(ObjectId{1}, {Ref{ObjectId{2}, kNoProcess}});
  EXPECT_TRUE(heap.contains(ObjectId{1}));
  ASSERT_NE(heap.find(ObjectId{1}), nullptr);
  EXPECT_EQ(heap.find(ObjectId{1})->refs.size(), 1u);
  EXPECT_TRUE(heap.erase(ObjectId{1}));
  EXPECT_FALSE(heap.erase(ObjectId{1}));
}

TEST_F(RmFixture, HeapPutOverwritesReplicaContent) {
  Heap heap;
  heap.put(ObjectId{1}, {Ref{ObjectId{2}, kNoProcess}, Ref{ObjectId{3}, kNoProcess}});
  heap.put(ObjectId{1}, {Ref{ObjectId{4}, kNoProcess}});
  EXPECT_EQ(heap.find(ObjectId{1})->ref_targets(),
            (std::vector<ObjectId>{ObjectId{4}}));
}

TEST_F(RmFixture, ObjectRefDeduplication) {
  Object o;
  EXPECT_TRUE(o.add_ref(Ref{ObjectId{5}, kNoProcess}));
  EXPECT_FALSE(o.add_ref(Ref{ObjectId{5}, ProcessId{3}}));  // same target, any binding
  EXPECT_TRUE(o.remove_ref(ObjectId{5}));
  EXPECT_FALSE(o.remove_ref(ObjectId{5}));
}

TEST_F(RmFixture, CreateObjectRejectsDuplicates) {
  p1.create_object(ObjectId{1});
  EXPECT_THROW(p1.create_object(ObjectId{1}), std::logic_error);
}

TEST_F(RmFixture, AddRefRequiresLocalSource) {
  p1.create_object(ObjectId{1});
  EXPECT_THROW(p1.add_ref(ObjectId{99}, ObjectId{1}), std::logic_error);
}

TEST_F(RmFixture, AddRefRequiresResolvableTarget) {
  p1.create_object(ObjectId{1});
  // o2 exists nowhere near p1: no replica, no stub.
  EXPECT_THROW(p1.add_ref(ObjectId{1}, ObjectId{2}), std::logic_error);
}

TEST_F(RmFixture, AddRootRequiresResolvableTarget) {
  EXPECT_THROW(p1.add_root(ObjectId{7}), std::logic_error);
  p1.create_object(ObjectId{7});
  EXPECT_NO_THROW(p1.add_root(ObjectId{7}));
}

TEST_F(RmFixture, PropagateCreatesReplicaAndPropEntries) {
  p1.create_object(ObjectId{1});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();

  EXPECT_TRUE(p2.has_replica(ObjectId{1}));
  const OutProp* op = p1.find_out_prop(ObjectId{1}, ProcessId{2});
  ASSERT_NE(op, nullptr);
  EXPECT_EQ(op->uc, 1u);
  const InProp* ip = p2.find_in_prop(ObjectId{1}, ProcessId{1});
  ASSERT_NE(ip, nullptr);
  EXPECT_EQ(ip->uc, 1u);
  EXPECT_TRUE(p1.is_replicated(ObjectId{1}));
  EXPECT_TRUE(p2.is_replicated(ObjectId{1}));
}

TEST_F(RmFixture, RepropagationBumpsBothUpdateCounters) {
  p1.create_object(ObjectId{1});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  EXPECT_EQ(p1.find_out_prop(ObjectId{1}, ProcessId{2})->uc, 2u);
  EXPECT_EQ(p2.find_in_prop(ObjectId{1}, ProcessId{1})->uc, 2u);
}

TEST_F(RmFixture, PropagateExportsEnclosedReferencesAsScions) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});

  // Clean before send: the scion exists at the sender even before delivery.
  const ScionKey key{ProcessId{2}, ObjectId{2}};
  ASSERT_TRUE(p1.scions().contains(key));
  EXPECT_EQ(p1.scions().at(key).src_objects,
            (std::vector<ObjectId>{ObjectId{1}}));
  EXPECT_FALSE(p2.stubs().contains(StubKey{ObjectId{2}, ProcessId{1}}));

  quiesce();
  // Clean before deliver: the importing side created the stub.
  EXPECT_TRUE(p2.stubs().contains(StubKey{ObjectId{2}, ProcessId{1}}));
  EXPECT_TRUE(p2.stub_peers().contains(ProcessId{1}));
}

TEST_F(RmFixture, ImportBindsLocallyButStillCreatesTheStub) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  // p2 already holds a replica of o2.
  p1.propagate(ObjectId{2}, ProcessId{2});
  quiesce();
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  // The binding resolves to the local replica...
  const rm::Object* a = p2.heap().find(ObjectId{1});
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->refs.size(), 1u);
  EXPECT_TRUE(a->refs[0].is_local());
  // ...but the stub exists anyway: it is the handle that retires the
  // sender's unconditionally created scion at the next NewSetStubs round.
  EXPECT_TRUE(p2.stubs().contains(StubKey{ObjectId{2}, ProcessId{1}}));
  ASSERT_TRUE(p1.scions().contains(ScionKey{ProcessId{2}, ObjectId{2}}));
}

TEST_F(RmFixture, PropagateOfUnknownObjectThrows) {
  EXPECT_THROW(p1.propagate(ObjectId{1}, ProcessId{2}), std::logic_error);
}

TEST_F(RmFixture, PropagateToSelfThrows) {
  p1.create_object(ObjectId{1});
  EXPECT_THROW(p1.propagate(ObjectId{1}, ProcessId{1}), std::logic_error);
}

TEST_F(RmFixture, CopyingImportedReferenceLocally) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  // p2's mutator copies the imported reference into a fresh local object —
  // legal, because the replica of o1 already holds it.
  p2.create_object(ObjectId{3});
  EXPECT_NO_THROW(p2.add_ref(ObjectId{3}, ObjectId{2}));
}

TEST_F(RmFixture, InvocationBumpsBothInvocationCounters) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();

  p2.invoke(ObjectId{2});
  quiesce();
  EXPECT_EQ(p2.stubs().at(StubKey{ObjectId{2}, ProcessId{1}}).ic, 1u);
  EXPECT_EQ(p1.scions().at(ScionKey{ProcessId{2}, ObjectId{2}}).ic, 1u);

  p2.invoke(ObjectId{2});
  quiesce();
  EXPECT_EQ(p2.stubs().at(StubKey{ObjectId{2}, ProcessId{1}}).ic, 2u);
  EXPECT_EQ(p1.scions().at(ScionKey{ProcessId{2}, ObjectId{2}}).ic, 2u);
}

TEST_F(RmFixture, InvokeWithoutStubThrows) {
  EXPECT_THROW(p1.invoke(ObjectId{9}), std::logic_error);
}

TEST_F(RmFixture, InvocationPinsTransientRootsAndTheyExpire) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();

  p2.invoke(ObjectId{2}, /*root_steps=*/2);
  EXPECT_TRUE(p2.transient_roots().contains(ObjectId{2}));
  quiesce();  // delivers the invoke; callee pins too
  EXPECT_TRUE(p1.transient_roots().contains(ObjectId{2}));
  // Ticks expire the pins.
  for (int i = 0; i < 3; ++i) {
    p1.tick();
    p2.tick();
  }
  EXPECT_FALSE(p1.transient_roots().contains(ObjectId{2}));
  EXPECT_FALSE(p2.transient_roots().contains(ObjectId{2}));
}

TEST_F(RmFixture, DeliveredPropSeqTracksHorizon) {
  p1.create_object(ObjectId{1});
  EXPECT_EQ(p2.delivered_prop_seq(ProcessId{1}), 0u);
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  const auto h1 = p2.delivered_prop_seq(ProcessId{1});
  EXPECT_GT(h1, 0u);
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  EXPECT_GT(p2.delivered_prop_seq(ProcessId{1}), h1);
}

TEST_F(RmFixture, StubsForFindsAllChains) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  const auto stubs = p2.stubs_for(ObjectId{2});
  ASSERT_EQ(stubs.size(), 1u);
  EXPECT_EQ(stubs[0].target_process, ProcessId{1});
  EXPECT_TRUE(p2.knows(ObjectId{2}));
  EXPECT_FALSE(p2.knows(ObjectId{99}));
}

TEST_F(RmFixture, PropParentsAndChildren) {
  p1.create_object(ObjectId{1});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  EXPECT_EQ(p1.prop_children(ObjectId{1}),
            (std::vector<ProcessId>{ProcessId{2}}));
  EXPECT_TRUE(p1.prop_parents(ObjectId{1}).empty());
  EXPECT_EQ(p2.prop_parents(ObjectId{1}),
            (std::vector<ProcessId>{ProcessId{1}}));
  EXPECT_TRUE(p2.prop_children(ObjectId{1}).empty());
}

TEST_F(RmFixture, UpdateRefreshesReplicaContent) {
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  EXPECT_TRUE(p2.heap().find(ObjectId{1})->refs.empty());
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});  // update carries the new ref
  quiesce();
  EXPECT_EQ(p2.heap().find(ObjectId{1})->ref_targets(),
            (std::vector<ObjectId>{ObjectId{2}}));
  EXPECT_TRUE(p2.stubs().contains(StubKey{ObjectId{2}, ProcessId{1}}));
}

TEST_F(RmFixture, RepropagationClearsStaleUnreachableBits) {
  p1.create_object(ObjectId{1});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();
  p1.find_out_prop(ObjectId{1}, ProcessId{2})->rec_umess = true;
  p2.find_in_prop(ObjectId{1}, ProcessId{1})->sent_umess = true;
  p1.propagate(ObjectId{1}, ProcessId{2});
  EXPECT_FALSE(p1.find_out_prop(ObjectId{1}, ProcessId{2})->rec_umess);
  quiesce();
  EXPECT_FALSE(p2.find_in_prop(ObjectId{1}, ProcessId{1})->sent_umess);
}

TEST_F(RmFixture, ChainedInvocationRoutesThroughIntermediaries) {
  // Build a stub–scion chain P2 -> P1 for o2 (which lives on P1 only):
  // o1 (holding o2) is propagated P1 -> P2; P2's imported reference binds
  // through P1.  An invocation from P2 reaches the object directly here —
  // now extend the chain: propagate o1 onward would chain further; for a
  // two-hop test use a third process via the cluster-level tests.  Here we
  // verify the single forward step: delete o2's replica at an intermediary
  // cannot happen (o2 never lived at P2), and the invocation pins both
  // ends while every traversed link's IC moves.
  p1.create_object(ObjectId{1});
  p1.create_object(ObjectId{2});
  p1.add_ref(ObjectId{1}, ObjectId{2});
  p1.propagate(ObjectId{1}, ProcessId{2});
  quiesce();

  p2.invoke(ObjectId{2}, 3);
  quiesce();
  EXPECT_TRUE(p1.transient_roots().contains(ObjectId{2}));
  EXPECT_TRUE(p2.transient_roots().contains(ObjectId{2}));
  EXPECT_EQ(p1.metrics().get("rm.invocations_forwarded"), 0u)
      << "anchor is local at the callee: no chain hop";
}

// ---- Arena heap semantics (the dense-slot/SoA rewrite) ---------------------

TEST_F(RmFixture, ArenaIterationIsIdOrderedWithMapSemantics) {
  // Inserts land in scrambled order; for_each must visit in ascending id
  // order exactly once each — the same observable sequence the old
  // std::map heap produced, which every determinism guarantee leans on.
  Heap heap;
  const std::uint64_t ids[] = {7, 2, 9, 1, 100, 42, 3};
  for (const std::uint64_t id : ids) heap.put(ObjectId{id});
  std::vector<std::uint64_t> seen;
  heap.for_each([&](ObjectId id, std::uint32_t slot, Object& obj) {
    EXPECT_EQ(obj.id, id);
    EXPECT_EQ(heap.slot_of(id), slot);
    seen.push_back(raw(id));
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{1, 2, 3, 7, 9, 42, 100}));

  // Map semantics under churn: erase + re-put mid-sequence, new ids
  // interleave into id order on the next pass, erased ones vanish.
  EXPECT_TRUE(heap.erase(ObjectId{9}));
  EXPECT_TRUE(heap.erase(ObjectId{1}));
  heap.put(ObjectId{5});
  heap.put(ObjectId{9});  // re-created after erase
  seen.clear();
  heap.for_each([&](ObjectId id, std::uint32_t, Object&) {
    seen.push_back(raw(id));
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 3, 5, 7, 9, 42, 100}));

  // The sweep contract: the body may erase the visited object and put new
  // ones; puts are not visited this pass, erasures skip the rest of it.
  seen.clear();
  heap.for_each([&](ObjectId id, std::uint32_t, Object&) {
    seen.push_back(raw(id));
    if (raw(id) == 3) {
      heap.erase(ObjectId{42});
      heap.put(ObjectId{4});
    }
  });
  EXPECT_EQ(seen, (std::vector<std::uint64_t>{2, 3, 5, 7, 9, 100}));
  EXPECT_TRUE(heap.contains(ObjectId{4}));
}

TEST_F(RmFixture, ArenaFreeListReuseAndEpochValidatedMarks) {
  Heap heap;
  for (std::uint64_t id = 1; id <= 8; ++id) heap.put(ObjectId{id});
  const std::size_t extent = heap.slab_size();

  // Mark epoch 1: objects 1..4 get kReachLocal-style bit 0x1.
  for (std::uint64_t id = 1; id <= 4; ++id) {
    const std::uint32_t slot = heap.slot_of(ObjectId{id});
    ASSERT_NE(slot, Heap::kNoSlot);
    EXPECT_TRUE(heap.mark(slot, 1, 0x1));
    EXPECT_FALSE(heap.mark(slot, 1, 0x1)) << "second visit must dedupe";
    EXPECT_EQ(heap.marks(slot, 1), 0x1);
  }

  // Sweep the unmarked half; their slots join the free list.
  for (std::uint64_t id = 5; id <= 8; ++id) {
    EXPECT_TRUE(heap.erase(ObjectId{id}));
  }
  EXPECT_EQ(heap.free_slots(), 4u);
  EXPECT_EQ(heap.slab_size(), extent) << "erase must not shrink the slab";

  // Reuse: new objects take free-listed slots without growing the slab,
  // and a reused slot carries no mark state from its previous occupant.
  std::set<std::uint32_t> reused;
  for (std::uint64_t id = 101; id <= 104; ++id) {
    heap.put(ObjectId{id});
    reused.insert(heap.slot_of(ObjectId{id}));
  }
  EXPECT_EQ(heap.free_slots(), 0u);
  EXPECT_EQ(heap.slab_size(), extent) << "reuse must not grow the slab";
  for (const std::uint32_t slot : reused) {
    EXPECT_EQ(heap.marks(slot, 1), 0)
        << "reused slot leaked its previous occupant's epoch-1 marks";
  }

  // Epoch validation: epoch-2 marks shadow epoch 1 without any reset pass,
  // and epoch-1 masks read as zero afterwards.
  const std::uint32_t s1 = heap.slot_of(ObjectId{1});
  EXPECT_TRUE(heap.mark(s1, 2, 0x2));
  EXPECT_EQ(heap.marks(s1, 2), 0x2);
  EXPECT_EQ(heap.marks(s1, 1), 0) << "stale epoch must read as unmarked";
}

}  // namespace
}  // namespace rgc::rm
