// rgc simulator CLI — parameterized scalability runs from the shell.
//
//   $ ./example_sim_cli --processes 4 --deps 50 --mode both --report
//   $ ./example_sim_cli --processes 3 --deps 25 --mode ours --policy distance
//   $ ./example_sim_cli --processes 3 --full-gc --trace-out=run.json
//
// Builds the §5.2 triangle-mesh ring, runs one cycle detection (ours,
// baseline, or both), prints steps/CDM totals, and optionally a full
// cluster state report.  With --trace-out / --trace-jsonl the run records
// its full event timeline (spans, CDM lineage, counters — see
// docs/OBSERVABILITY.md); with --mode both the files hold the *last* run
// (the timeline is cleared between runs so lineage ids stay unambiguous).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <string>
#include <thread>

#include "core/report.h"
#include "obs/dashboard.h"
#include "obs/health.h"
#include "obs/prom.h"
#include "util/trace.h"
#include "workload/mesh.h"

using namespace rgc;

namespace {

struct Options {
  std::size_t processes{4};
  std::size_t deps{10};
  std::size_t extra_replicas{0};
  std::string mode{"both"};     // ours | baseline | both
  std::string policy{"exhaustive"};
  std::uint64_t seed{1};
  bool report{false};
  bool full_gc{false};
  std::string trace_out;    // Chrome trace_event JSON (chrome://tracing)
  std::string trace_jsonl;  // one event object per line
  std::string report_json;  // machine-readable ClusterReport
  std::string prom_out;     // Prometheus text exposition
  std::uint64_t audit_interval{64};  // health-audit cadence; 0 disables
  bool watch{false};                 // live dashboard mode
  std::uint64_t watch_steps{256};    // steps to run in watch mode
  std::uint64_t watch_every{16};     // render a frame every N steps
  std::uint64_t watch_delay_ms{0};   // sleep between frames (demo pacing)
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--processes N] [--deps D] [--extra-replicas B]\n"
      "          [--mode ours|baseline|both] [--policy "
      "exhaustive|distance|suspicion]\n"
      "          [--seed S] [--full-gc] [--report]\n"
      "          [--trace-out=FILE] [--trace-jsonl=FILE] "
      "[--report-json=FILE]\n"
      "          [--prom-out=FILE] [--audit-interval N]\n"
      "          [--watch] [--watch-steps N] [--watch-every N] "
      "[--watch-delay-ms M]\n",
      argv0);
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // --flag=value spelling: split so every option accepts both forms.
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline = true;
    }
    auto value = [&]() -> const char* {
      return has_inline ? inline_value.c_str() : next();
    };
    if (arg == "--processes") {
      const char* v = value();
      if (!v) return false;
      opt.processes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--deps") {
      const char* v = value();
      if (!v) return false;
      opt.deps = std::strtoull(v, nullptr, 10);
    } else if (arg == "--extra-replicas") {
      const char* v = value();
      if (!v) return false;
      opt.extra_replicas = std::strtoull(v, nullptr, 10);
    } else if (arg == "--mode") {
      const char* v = value();
      if (!v) return false;
      opt.mode = v;
    } else if (arg == "--policy") {
      const char* v = value();
      if (!v) return false;
      opt.policy = v;
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (!v) return false;
      opt.trace_out = v;
    } else if (arg == "--trace-jsonl") {
      const char* v = value();
      if (!v) return false;
      opt.trace_jsonl = v;
    } else if (arg == "--report-json") {
      const char* v = value();
      if (!v) return false;
      opt.report_json = v;
    } else if (arg == "--prom-out") {
      const char* v = value();
      if (!v) return false;
      opt.prom_out = v;
    } else if (arg == "--audit-interval") {
      const char* v = value();
      if (!v) return false;
      opt.audit_interval = std::strtoull(v, nullptr, 10);
    } else if (arg == "--watch-steps") {
      const char* v = value();
      if (!v) return false;
      opt.watch_steps = std::strtoull(v, nullptr, 10);
    } else if (arg == "--watch-every") {
      const char* v = value();
      if (!v) return false;
      opt.watch_every = std::strtoull(v, nullptr, 10);
      if (opt.watch_every == 0) opt.watch_every = 1;
    } else if (arg == "--watch-delay-ms") {
      const char* v = value();
      if (!v) return false;
      opt.watch_delay_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--watch") {
      opt.watch = true;
    } else if (arg == "--report") {
      opt.report = true;
    } else if (arg == "--full-gc") {
      opt.full_gc = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return opt.processes >= 2 && opt.deps >= 1;
}

bool write_file(const std::string& path,
                const std::function<void(std::ostream&)>& body,
                const char* what) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for %s\n", path.c_str(), what);
    return false;
  }
  body(os);
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
  return true;
}

int run_one(const Options& opt, core::DetectorMode mode, const char* name,
            util::Timeline* timeline) {
  if (timeline != nullptr) timeline->clear();
  core::ClusterConfig cfg;
  cfg.mode = mode;
  cfg.net.seed = opt.seed;
  if (opt.policy == "distance") {
    cfg.candidates = core::CandidatePolicy::kDistance;
  } else if (opt.policy == "suspicion") {
    cfg.candidates = core::CandidatePolicy::kSuspicionAge;
  }
  cfg.audit_interval = opt.audit_interval;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(
      cluster, {opt.processes, opt.deps, opt.extra_replicas});

  const std::uint64_t cdm_before = cluster.network().total_sent("CDM");
  std::uint64_t steps = 0;
  bool converged = false;
  core::QuiescenceStatus drain;

  if (opt.full_gc) {
    const std::uint64_t start = cluster.now();
    const auto stats = cluster.run_full_gc();
    steps = cluster.now() - start;
    converged = cluster.total_objects() == 0;
    drain = cluster.run_until_quiescent();
    std::printf("%-9s full gc: rounds=%llu detections=%llu", name,
                static_cast<unsigned long long>(stats.rounds),
                static_cast<unsigned long long>(stats.detections_started));
  } else {
    cluster.snapshot_all();
    const std::uint64_t start = cluster.now();
    cluster.detect(mesh.head_process, mesh.head);
    while (cluster.cycles_found().empty() && !cluster.network().idle()) {
      cluster.step();
    }
    steps = cluster.now() - start;
    converged = !cluster.cycles_found().empty();
    drain = cluster.run_until_quiescent();
  }

  std::printf(
      "%-9s steps=%-6llu cdms=%-7llu links=%-6zu converged=%s\n", name,
      static_cast<unsigned long long>(steps),
      static_cast<unsigned long long>(cluster.network().total_sent("CDM") -
                                      cdm_before),
      mesh.total_links, converged ? "yes" : "NO");
  if (drain.quiescent) {
    std::printf("%-9s quiescence: drained (+%llu steps)\n", name,
                static_cast<unsigned long long>(drain.steps));
  } else {
    std::printf("%-9s quiescence: TIMED OUT with %zu messages in flight\n",
                name, drain.in_flight);
  }
  const obs::HealthReport& health = cluster.audit();
  std::printf("%-9s health: %s (%zu errors, %zu warnings, %llu audits)\n",
              name, obs::to_string(health.worst()), health.errors(),
              health.warnings(),
              static_cast<unsigned long long>(health.audit_runs));
  for (const obs::Finding& f : health.findings) {
    if (f.severity == obs::Severity::kError) {
      std::printf("          %s\n", f.to_string().c_str());
    }
  }
  if (opt.report) std::cout << core::make_report(cluster);

  int rc = 0;
  if (!opt.report_json.empty()) {
    const core::ClusterReport report = core::make_report(cluster);
    if (!write_file(opt.report_json,
                    [&](std::ostream& os) { report.write_json(os); },
                    "report JSON")) {
      rc = 1;
    }
  }
  if (!opt.prom_out.empty() &&
      !write_file(opt.prom_out,
                  [&](std::ostream& os) { obs::write_prometheus(cluster, os); },
                  "Prometheus metrics")) {
    rc = 1;
  }
  if (timeline != nullptr) {
    if (!opt.trace_out.empty() &&
        !write_file(opt.trace_out,
                    [&](std::ostream& os) { timeline->write_chrome_trace(os); },
                    "Chrome trace")) {
      rc = 1;
    }
    if (!opt.trace_jsonl.empty() &&
        !write_file(opt.trace_jsonl,
                    [&](std::ostream& os) { timeline->write_jsonl(os); },
                    "JSONL trace")) {
      rc = 1;
    }
  }
  return rc;
}

/// Live dashboard: steps the cluster through a detection + periodic
/// collections, rendering one frame every watch_every steps.  On a TTY the
/// screen is cleared between frames; otherwise frames are separated by a
/// rule so the output stays scriptable.
int run_watch(const Options& opt) {
  core::ClusterConfig cfg;
  cfg.net.seed = opt.seed;
  cfg.audit_interval = opt.audit_interval;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(
      cluster, {opt.processes, opt.deps, opt.extra_replicas});
  cluster.snapshot_all();
  cluster.detect(mesh.head_process, mesh.head);

  obs::DashboardState state;
  const bool tty = isatty(fileno(stdout)) != 0;
  for (std::uint64_t s = 1; s <= opt.watch_steps; ++s) {
    cluster.step();
    // Keep the collectors active so frames show live GC state, not a
    // drained network.
    if (s % 64 == 0) cluster.collect_all();
    if (s % opt.watch_every == 0 || s == opt.watch_steps) {
      if (tty) std::fputs("\x1b[2J\x1b[H", stdout);
      std::fputs(obs::render_dashboard(cluster, state).c_str(), stdout);
      if (!tty) std::fputs("----\n", stdout);
      std::fflush(stdout);
      if (opt.watch_delay_ms != 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt.watch_delay_ms));
      }
    }
  }

  const obs::HealthReport& health = cluster.audit();
  std::printf("final %s\n", health.to_string().c_str());
  if (!opt.prom_out.empty() &&
      !write_file(opt.prom_out,
                  [&](std::ostream& os) { obs::write_prometheus(cluster, os); },
                  "Prometheus metrics")) {
    return 1;
  }
  return health.errors() == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  if (opt.watch) return run_watch(opt);
  util::Timeline timeline;
  const bool tracing = !opt.trace_out.empty() || !opt.trace_jsonl.empty();
  if (tracing) util::Trace::instance().set_sink(&timeline);

  std::printf("mesh: %zu processes, %zu dependencies, %zu extra replicas\n",
              opt.processes, opt.deps, opt.extra_replicas);
  int rc = 0;
  if (opt.mode == "ours" || opt.mode == "both") {
    rc |= run_one(opt, core::DetectorMode::kReplicationAware, "ours",
                  tracing ? &timeline : nullptr);
  }
  if (opt.mode == "baseline" || opt.mode == "both") {
    rc |= run_one(opt, core::DetectorMode::kBaseline, "baseline",
                  tracing ? &timeline : nullptr);
  }
  if (tracing) util::Trace::instance().set_sink(nullptr);
  return rc;
}
