// rgc simulator CLI — parameterized scalability runs from the shell.
//
//   $ ./example_sim_cli --processes 4 --deps 50 --mode both --report
//   $ ./example_sim_cli --processes 3 --deps 25 --mode ours --policy distance
//   $ ./example_sim_cli --processes 3 --full-gc --trace-out=run.json
//
// Builds the §5.2 triangle-mesh ring, runs one cycle detection (ours,
// baseline, or both), prints steps/CDM totals, and optionally a full
// cluster state report.  With --trace-out / --trace-jsonl the run records
// its full event timeline (spans, CDM lineage, counters — see
// docs/OBSERVABILITY.md); with --mode both the files hold the *last* run
// (the timeline is cleared between runs so lineage ids stay unambiguous).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <functional>
#include <iostream>
#include <iterator>
#include <string>
#include <thread>

#include "core/report.h"
#include "obs/dashboard.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/prom.h"
#include "obs/recorder.h"
#include "obs/replay.h"
#include "util/trace.h"
#include "workload/mesh.h"

using namespace rgc;

namespace {

struct Options {
  std::size_t processes{4};
  std::size_t deps{10};
  std::size_t extra_replicas{0};
  std::string mode{"both"};     // ours | baseline | both
  std::string policy{"exhaustive"};
  std::uint64_t seed{1};
  bool report{false};
  bool full_gc{false};
  std::string trace_out;    // Chrome trace_event JSON (chrome://tracing)
  std::string trace_jsonl;  // one event object per line
  std::string report_json;  // machine-readable ClusterReport
  std::string prom_out;     // Prometheus text exposition
  std::uint64_t audit_interval{64};  // health-audit cadence; 0 disables
  bool watch{false};                 // live dashboard mode
  std::uint64_t watch_steps{256};    // steps to run in watch mode
  std::uint64_t watch_every{16};     // render a frame every N steps
  std::uint64_t watch_delay_ms{0};   // sleep between frames (demo pacing)
  // Flight recorder / replay (docs/OBSERVABILITY.md "Flight recorder &
  // replay").  --record runs the seeded fault-chaos workload and writes the
  // .rgcrec recording; --replay re-runs a recording and diffs; --bisect
  // narrows two recordings to their first divergent event.
  std::string record_out;            // .rgcrec to write
  std::string replay_in;             // .rgcrec to replay against
  std::string bisect_files;          // "A.rgcrec,B.rgcrec"
  double drop{0.0};                  // chaos drop probability
  double dup{0.0};                   // chaos duplicate probability
  std::uint32_t max_delay{2};        // chaos max delivery delay
  std::uint32_t rounds{60};          // chaos workload rounds
  std::uint32_t record_capacity{4096};  // recorder ring capacity
  std::size_t threads{1};            // worker-pool width for replay
  std::uint64_t perturb_step{0};     // inject divergence at this step
  // Cost ledger (docs/OBSERVABILITY.md "Cycle cost ledger"): --explain-cycle
  // prints a proven cycle's hop-by-hop critical path (id 0 / bare flag =
  // the slowest completed cycle); --ledger-jsonl exports every completed
  // entry as one JSON object per line.
  bool explain_cycle{false};
  std::uint64_t explain_cycle_id{0};
  std::string ledger_jsonl;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [--processes N] [--deps D] [--extra-replicas B]\n"
      "          [--mode ours|baseline|both] [--policy "
      "exhaustive|distance|suspicion]\n"
      "          [--seed S] [--full-gc] [--report]\n"
      "          [--trace-out=FILE] [--trace-jsonl=FILE] "
      "[--report-json=FILE]\n"
      "          [--prom-out=FILE] [--audit-interval N]\n"
      "          [--watch] [--watch-steps N] [--watch-every N] "
      "[--watch-delay-ms M]\n"
      "          [--record=FILE.rgcrec] [--replay=FILE.rgcrec] "
      "[--bisect=A.rgcrec,B.rgcrec]\n"
      "          [--drop P] [--dup P] [--max-delay N] [--rounds N]\n"
      "          [--record-capacity N] [--threads N] [--perturb-step S]\n"
      "          [--explain-cycle[=ID]] [--ledger-jsonl=FILE]\n",
      argv0);
}

bool parse(int argc, char** argv, Options& opt) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    // --flag=value spelling: split so every option accepts both forms.
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg.resize(eq);
      has_inline = true;
    }
    auto value = [&]() -> const char* {
      return has_inline ? inline_value.c_str() : next();
    };
    if (arg == "--processes") {
      const char* v = value();
      if (!v) return false;
      opt.processes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--deps") {
      const char* v = value();
      if (!v) return false;
      opt.deps = std::strtoull(v, nullptr, 10);
    } else if (arg == "--extra-replicas") {
      const char* v = value();
      if (!v) return false;
      opt.extra_replicas = std::strtoull(v, nullptr, 10);
    } else if (arg == "--mode") {
      const char* v = value();
      if (!v) return false;
      opt.mode = v;
    } else if (arg == "--policy") {
      const char* v = value();
      if (!v) return false;
      opt.policy = v;
    } else if (arg == "--seed") {
      const char* v = value();
      if (!v) return false;
      opt.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--trace-out") {
      const char* v = value();
      if (!v) return false;
      opt.trace_out = v;
    } else if (arg == "--trace-jsonl") {
      const char* v = value();
      if (!v) return false;
      opt.trace_jsonl = v;
    } else if (arg == "--report-json") {
      const char* v = value();
      if (!v) return false;
      opt.report_json = v;
    } else if (arg == "--prom-out") {
      const char* v = value();
      if (!v) return false;
      opt.prom_out = v;
    } else if (arg == "--audit-interval") {
      const char* v = value();
      if (!v) return false;
      opt.audit_interval = std::strtoull(v, nullptr, 10);
    } else if (arg == "--watch-steps") {
      const char* v = value();
      if (!v) return false;
      opt.watch_steps = std::strtoull(v, nullptr, 10);
    } else if (arg == "--watch-every") {
      const char* v = value();
      if (!v) return false;
      opt.watch_every = std::strtoull(v, nullptr, 10);
      if (opt.watch_every == 0) opt.watch_every = 1;
    } else if (arg == "--watch-delay-ms") {
      const char* v = value();
      if (!v) return false;
      opt.watch_delay_ms = std::strtoull(v, nullptr, 10);
    } else if (arg == "--record") {
      const char* v = value();
      if (!v) return false;
      opt.record_out = v;
    } else if (arg == "--replay") {
      const char* v = value();
      if (!v) return false;
      opt.replay_in = v;
    } else if (arg == "--bisect") {
      const char* v = value();
      if (!v) return false;
      opt.bisect_files = v;
    } else if (arg == "--drop") {
      const char* v = value();
      if (!v) return false;
      opt.drop = std::strtod(v, nullptr);
    } else if (arg == "--dup") {
      const char* v = value();
      if (!v) return false;
      opt.dup = std::strtod(v, nullptr);
    } else if (arg == "--max-delay") {
      const char* v = value();
      if (!v) return false;
      opt.max_delay = static_cast<std::uint32_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--rounds") {
      const char* v = value();
      if (!v) return false;
      opt.rounds = static_cast<std::uint32_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--record-capacity") {
      const char* v = value();
      if (!v) return false;
      opt.record_capacity =
          static_cast<std::uint32_t>(std::strtoull(v, nullptr, 10));
    } else if (arg == "--threads") {
      const char* v = value();
      if (!v) return false;
      opt.threads = std::strtoull(v, nullptr, 10);
    } else if (arg == "--perturb-step") {
      const char* v = value();
      if (!v) return false;
      opt.perturb_step = std::strtoull(v, nullptr, 10);
    } else if (arg == "--explain-cycle") {
      // Bare flag (or id 0) explains the slowest completed cycle.
      opt.explain_cycle = true;
      if (has_inline) {
        opt.explain_cycle_id = std::strtoull(inline_value.c_str(), nullptr, 10);
      }
    } else if (arg == "--ledger-jsonl") {
      const char* v = value();
      if (!v) return false;
      opt.ledger_jsonl = v;
    } else if (arg == "--watch") {
      opt.watch = true;
    } else if (arg == "--report") {
      opt.report = true;
    } else if (arg == "--full-gc") {
      opt.full_gc = true;
    } else if (arg == "--help" || arg == "-h") {
      return false;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return opt.processes >= 2 && opt.deps >= 1;
}

bool write_file(const std::string& path,
                const std::function<void(std::ostream&)>& body,
                const char* what) {
  std::ofstream os(path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s for %s\n", path.c_str(), what);
    return false;
  }
  body(os);
  std::fprintf(stderr, "%s written to %s\n", what, path.c_str());
  return true;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return false;
  }
  out.assign(std::istreambuf_iterator<char>(is),
             std::istreambuf_iterator<char>());
  return true;
}

obs::ChaosRunSpec chaos_spec(const Options& opt) {
  obs::ChaosRunSpec spec;
  spec.seed = opt.seed;
  spec.processes = static_cast<std::uint32_t>(opt.processes);
  spec.drop = opt.drop;
  spec.dup = opt.dup;
  spec.max_delay = opt.max_delay;
  spec.rounds = opt.rounds;
  spec.ring_capacity = opt.record_capacity;
  spec.threads = opt.threads;
  spec.perturb_step = opt.perturb_step;
  return spec;
}

/// --record: run the seeded fault-chaos workload with the flight recorder
/// on and write the .rgcrec.  The run also dumps to the same path early on
/// an audit ERROR or SIGABRT, so a crashed session still leaves evidence.
int run_record(const Options& opt) {
  obs::ChaosRunSpec spec = chaos_spec(opt);
  spec.dump_path = opt.record_out;
  const std::string bytes = obs::record_chaos_run(spec);
  std::ofstream os(opt.record_out, std::ios::binary);
  if (!os || !os.write(bytes.data(),
                       static_cast<std::streamsize>(bytes.size()))) {
    std::fprintf(stderr, "cannot write %s\n", opt.record_out.c_str());
    return 1;
  }
  const auto run = obs::FlightRecorder::decode(bytes);
  std::printf("recorded %zu bytes to %s (seed=%llu processes=%zu "
              "events=%llu retained=%zu)\n",
              bytes.size(), opt.record_out.c_str(),
              static_cast<unsigned long long>(spec.seed), opt.processes,
              static_cast<unsigned long long>(run ? run->appended : 0),
              run ? run->events.size() : 0);
  return 0;
}

/// --replay: re-run the workload stamped into the recording and diff the
/// live event stream against it.  Exit 0 on byte-identical, 4 on
/// divergence, 1 on a corrupt recording.
int run_replay(const Options& opt) {
  std::string bytes;
  if (!read_file(opt.replay_in, bytes)) return 1;
  const obs::ReplayOutcome outcome =
      obs::replay_recording(bytes, opt.threads, opt.perturb_step);
  std::fputs(outcome.report.c_str(), stdout);
  if (!outcome.loaded) return 1;
  return outcome.divergence.found || !outcome.byte_identical ? 4 : 0;
}

/// --bisect A,B: narrow two recordings of the same run to their first
/// divergent event.  Exit 0 when identical, 4 when divergent.
int run_bisect(const Options& opt) {
  const auto comma = opt.bisect_files.find(',');
  if (comma == std::string::npos) {
    std::fprintf(stderr, "--bisect wants two files: A.rgcrec,B.rgcrec\n");
    return 2;
  }
  std::string bytes_a;
  std::string bytes_b;
  if (!read_file(opt.bisect_files.substr(0, comma), bytes_a) ||
      !read_file(opt.bisect_files.substr(comma + 1), bytes_b)) {
    return 1;
  }
  const auto a = obs::FlightRecorder::decode(bytes_a);
  const auto b = obs::FlightRecorder::decode(bytes_b);
  if (!a || !b) {
    std::fprintf(stderr, "corrupt recording: %s\n",
                 !a ? opt.bisect_files.substr(0, comma).c_str()
                    : opt.bisect_files.substr(comma + 1).c_str());
    return 1;
  }
  const obs::BisectOutcome outcome = obs::bisect_divergence(*a, *b);
  std::printf("%s\n", outcome.report.c_str());
  return outcome.identical ? 0 : 4;
}

int run_one(const Options& opt, core::DetectorMode mode, const char* name,
            util::Timeline* timeline) {
  if (timeline != nullptr) timeline->clear();
  core::ClusterConfig cfg;
  cfg.mode = mode;
  cfg.net.seed = opt.seed;
  if (opt.policy == "distance") {
    cfg.candidates = core::CandidatePolicy::kDistance;
  } else if (opt.policy == "suspicion") {
    cfg.candidates = core::CandidatePolicy::kSuspicionAge;
  }
  cfg.audit_interval = opt.audit_interval;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(
      cluster, {opt.processes, opt.deps, opt.extra_replicas});

  const std::uint64_t cdm_before = cluster.network().total_sent("CDM");
  std::uint64_t steps = 0;
  bool converged = false;
  core::QuiescenceStatus drain;

  if (opt.full_gc) {
    const std::uint64_t start = cluster.now();
    const auto stats = cluster.run_full_gc();
    steps = cluster.now() - start;
    converged = cluster.total_objects() == 0;
    drain = cluster.run_until_quiescent();
    std::printf("%-9s full gc: rounds=%llu detections=%llu", name,
                static_cast<unsigned long long>(stats.rounds),
                static_cast<unsigned long long>(stats.detections_started));
  } else {
    cluster.snapshot_all();
    const std::uint64_t start = cluster.now();
    cluster.detect(mesh.head_process, mesh.head);
    while (cluster.cycles_found().empty() && !cluster.network().idle()) {
      cluster.step();
    }
    steps = cluster.now() - start;
    converged = !cluster.cycles_found().empty();
    drain = cluster.run_until_quiescent();
  }

  std::printf(
      "%-9s steps=%-6llu cdms=%-7llu links=%-6zu converged=%s\n", name,
      static_cast<unsigned long long>(steps),
      static_cast<unsigned long long>(cluster.network().total_sent("CDM") -
                                      cdm_before),
      mesh.total_links, converged ? "yes" : "NO");
  if (drain.quiescent) {
    std::printf("%-9s quiescence: drained (+%llu steps)\n", name,
                static_cast<unsigned long long>(drain.steps));
  } else {
    std::printf("%-9s quiescence: TIMED OUT with %zu messages in flight\n",
                name, drain.in_flight);
  }
  const obs::HealthReport& health = cluster.audit();
  std::printf("%-9s health: %s (%zu errors, %zu warnings, %llu audits)\n",
              name, obs::to_string(health.worst()), health.errors(),
              health.warnings(),
              static_cast<unsigned long long>(health.audit_runs));
  for (const obs::Finding& f : health.findings) {
    if (f.severity == obs::Severity::kError) {
      std::printf("          %s\n", f.to_string().c_str());
    }
  }
  if (opt.report) std::cout << core::make_report(cluster);

  int rc = 0;
  if (!opt.report_json.empty()) {
    const core::ClusterReport report = core::make_report(cluster);
    if (!write_file(opt.report_json,
                    [&](std::ostream& os) { report.write_json(os); },
                    "report JSON")) {
      rc = 1;
    }
  }
  if (!opt.prom_out.empty() &&
      !write_file(opt.prom_out,
                  [&](std::ostream& os) { obs::write_prometheus(cluster, os); },
                  "Prometheus metrics")) {
    rc = 1;
  }
  if (opt.explain_cycle || !opt.ledger_jsonl.empty()) {
    obs::Ledger* ledger = cluster.ledger();
    if (ledger == nullptr) {
      std::fprintf(stderr, "ledger disabled (ledger_capacity 0)\n");
      rc = 1;
    } else {
      if (ledger->completed() == 0) {
        // A detection-only run proves cycles but never sweeps them; one
        // collection round reclaims the cut garbage so the ledger has
        // completed entries to explain/export.
        cluster.collect_all();
        cluster.run_until_quiescent();
        cluster.collect_all();
      }
      if (opt.explain_cycle) {
        std::fputs(ledger->explain(opt.explain_cycle_id).c_str(), stdout);
      }
      if (!opt.ledger_jsonl.empty() &&
          !write_file(opt.ledger_jsonl,
                      [&](std::ostream& os) { ledger->write_jsonl(os); },
                      "ledger JSONL")) {
        rc = 1;
      }
    }
  }
  if (timeline != nullptr) {
    if (!opt.trace_out.empty() &&
        !write_file(opt.trace_out,
                    [&](std::ostream& os) { timeline->write_chrome_trace(os); },
                    "Chrome trace")) {
      rc = 1;
    }
    if (!opt.trace_jsonl.empty() &&
        !write_file(opt.trace_jsonl,
                    [&](std::ostream& os) { timeline->write_jsonl(os); },
                    "JSONL trace")) {
      rc = 1;
    }
  }
  return rc;
}

/// Live dashboard: steps the cluster through a detection + periodic
/// collections, rendering one frame every watch_every steps.  On a TTY the
/// screen is cleared between frames; otherwise frames are separated by a
/// rule so the output stays scriptable.
int run_watch(const Options& opt) {
  core::ClusterConfig cfg;
  cfg.net.seed = opt.seed;
  cfg.audit_interval = opt.audit_interval;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(
      cluster, {opt.processes, opt.deps, opt.extra_replicas});
  cluster.snapshot_all();
  cluster.detect(mesh.head_process, mesh.head);

  obs::DashboardState state;
  const bool tty = isatty(fileno(stdout)) != 0;
  for (std::uint64_t s = 1; s <= opt.watch_steps; ++s) {
    cluster.step();
    // Keep the collectors active so frames show live GC state, not a
    // drained network.
    if (s % 64 == 0) cluster.collect_all();
    if (s % opt.watch_every == 0 || s == opt.watch_steps) {
      if (tty) std::fputs("\x1b[2J\x1b[H", stdout);
      std::fputs(obs::render_dashboard(cluster, state).c_str(), stdout);
      if (!tty) std::fputs("----\n", stdout);
      std::fflush(stdout);
      if (opt.watch_delay_ms != 0) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(opt.watch_delay_ms));
      }
    }
  }

  const obs::HealthReport& health = cluster.audit();
  std::printf("final %s\n", health.to_string().c_str());
  if (!opt.prom_out.empty() &&
      !write_file(opt.prom_out,
                  [&](std::ostream& os) { obs::write_prometheus(cluster, os); },
                  "Prometheus metrics")) {
    return 1;
  }
  return health.errors() == 0 ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse(argc, argv, opt)) {
    usage(argv[0]);
    return 2;
  }
  if (!opt.record_out.empty()) return run_record(opt);
  if (!opt.replay_in.empty()) return run_replay(opt);
  if (!opt.bisect_files.empty()) return run_bisect(opt);
  if (opt.watch) return run_watch(opt);
  util::Timeline timeline;
  const bool tracing = !opt.trace_out.empty() || !opt.trace_jsonl.empty();
  if (tracing) util::Trace::instance().set_sink(&timeline);

  std::printf("mesh: %zu processes, %zu dependencies, %zu extra replicas\n",
              opt.processes, opt.deps, opt.extra_replicas);
  int rc = 0;
  if (opt.mode == "ours" || opt.mode == "both") {
    rc |= run_one(opt, core::DetectorMode::kReplicationAware, "ours",
                  tracing ? &timeline : nullptr);
  }
  if (opt.mode == "baseline" || opt.mode == "both") {
    rc |= run_one(opt, core::DetectorMode::kBaseline, "baseline",
                  tracing ? &timeline : nullptr);
  }
  if (tracing) util::Trace::instance().set_sink(nullptr);
  return rc;
}
