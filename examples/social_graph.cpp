// Social-network scenario — the paper's motivating workload class.
//
// A sharded, replicated friendship graph: user vertices are partitioned
// across store nodes and hot profiles are replicated to the shards that
// read them.  Users join, follow each other, and occasionally delete
// their accounts; deletions strand whole mutually-following communities
// as *replicated cyclic garbage* that the store must reclaim without ever
// touching the live communities.
//
//   $ ./example_social_graph
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/oracle.h"
#include "util/rng.h"

using namespace rgc;

namespace {

/// A minimal application-level wrapper: user handles over the store API.
class SocialStore {
 public:
  explicit SocialStore(core::Cluster& cluster, std::size_t shards)
      : cluster_(cluster) {
    for (std::size_t i = 0; i < shards; ++i) {
      shards_.push_back(cluster_.add_process());
    }
    // Each shard has a directory object (its root of live accounts).
    for (ProcessId shard : shards_) {
      const ObjectId dir = cluster_.new_object(shard);
      cluster_.add_root(shard, dir);
      directory_[shard] = dir;
    }
  }

  ProcessId shard_of(const std::string& name) const {
    std::size_t h = 1469598103934665603ull;
    for (char c : name) h = (h ^ static_cast<unsigned char>(c)) * 1099511628211ull;
    return shards_[h % shards_.size()];
  }

  /// Creates an account: a vertex registered in its shard's directory.
  ObjectId join(const std::string& name) {
    const ProcessId shard = shard_of(name);
    const ObjectId user = cluster_.new_object(shard, 64);
    cluster_.add_ref(shard, directory_.at(shard), user);
    users_[name] = user;
    return user;
  }

  /// `a` follows `b`: an edge a -> b.  Cross-shard edges replicate b's
  /// vertex into a's shard first (the coherence engine ships it), exactly
  /// how a store would cache a hot remote profile.
  void follow(const std::string& a, const std::string& b) {
    const ProcessId sa = shard_of(a);
    const ProcessId sb = shard_of(b);
    const ObjectId ua = users_.at(a);
    const ObjectId ub = users_.at(b);
    if (sa != sb && !cluster_.process(sa).knows(ub)) {
      cluster_.propagate(ub, sb, sa);  // cache b's profile on a's shard
      cluster_.run_until_quiescent();
    }
    cluster_.add_ref(sa, ua, ub);
  }

  /// Account deletion: the directory entry goes away.  Everything else —
  /// follower edges, cached replicas on other shards — is the GC's
  /// problem, exactly as the paper's introduction describes.
  void delete_account(const std::string& name) {
    const ProcessId shard = shard_of(name);
    cluster_.remove_ref(shard, directory_.at(shard), users_.at(name));
    users_.erase(name);
  }

  bool exists_anywhere(ObjectId user) const {
    for (ProcessId shard : shards_) {
      if (cluster_.process(shard).has_replica(user)) return true;
    }
    return false;
  }

 private:
  core::Cluster& cluster_;
  std::vector<ProcessId> shards_;
  std::map<ProcessId, ObjectId> directory_;
  std::map<std::string, ObjectId> users_;
};

}  // namespace

int main() {
  core::Cluster cluster;
  SocialStore store{cluster, 4};

  // A live community that must survive everything.
  const std::vector<std::string> keep = {"alice", "bob", "carol"};
  for (const auto& n : keep) store.join(n);
  store.follow("alice", "bob");
  store.follow("bob", "carol");
  store.follow("carol", "alice");  // a live cross-shard cycle

  // A doomed community: mutual followers whose accounts all get deleted.
  const std::vector<std::string> doomed = {"dave", "erin", "frank", "grace"};
  std::vector<ObjectId> doomed_ids;
  for (const auto& n : doomed) doomed_ids.push_back(store.join(n));
  store.follow("dave", "erin");
  store.follow("erin", "frank");
  store.follow("frank", "grace");
  store.follow("grace", "dave");   // cross-shard cycle
  store.follow("erin", "dave");    // extra chord
  cluster.run_until_quiescent();

  std::printf("%llu replicas before deletions\n",
              static_cast<unsigned long long>(cluster.total_objects()));

  for (const auto& n : doomed) store.delete_account(n);
  cluster.run_until_quiescent();

  const auto before = core::Oracle::analyze(cluster);
  std::printf("after deletions: %zu dead vertices stranded (cyclic, replicated)\n",
              before.garbage_objects().size());

  const auto stats = cluster.run_full_gc();
  std::printf("GC: %llu replicas reclaimed, %llu cycles proven, %llu CDMs\n",
              static_cast<unsigned long long>(stats.reclaimed_objects),
              static_cast<unsigned long long>(stats.cycles_found),
              static_cast<unsigned long long>(
                  cluster.network().total_sent("CDM")));

  bool ok = true;
  for (ObjectId id : doomed_ids) {
    if (store.exists_anywhere(id)) {
      std::printf("ERROR: deleted account survived!\n");
      ok = false;
    }
  }
  const auto after = core::Oracle::analyze(cluster);
  if (!after.violations.empty()) {
    std::printf("ERROR: %s\n", after.violations.front().c_str());
    ok = false;
  }
  std::printf("live community intact: %zu live objects; store %s\n",
              after.live_objects.size(), ok ? "healthy" : "BROKEN");
  return ok ? 0 : 1;
}
