// Quickstart — a five-minute tour of the library.
//
// Builds a tiny replicated graph store, replicates a vertex, deletes the
// client-visible entry points, and watches the garbage collectors reclaim
// everything — including mutually-referencing replicas entangled across
// nodes — while the Union Rule keeps locally-unreachable replicas of live
// objects safe.  (See example_cdm_trace and example_social_graph for the
// cycle detector proper.)
//
//   $ ./example_quickstart
#include <cstdio>

#include "core/cluster.h"
#include "core/oracle.h"

using namespace rgc;

int main() {
  core::Cluster cluster;

  // A three-node store.
  const ProcessId p1 = cluster.add_process();
  const ProcessId p2 = cluster.add_process();
  const ProcessId p3 = cluster.add_process();

  // Build a small object graph on p1: root -> a -> b.
  const ObjectId root_obj = cluster.new_object(p1);
  const ObjectId a = cluster.new_object(p1);
  const ObjectId b = cluster.new_object(p1);
  cluster.add_root(p1, root_obj);
  cluster.add_ref(p1, root_obj, a);
  cluster.add_ref(p1, a, b);

  // Replicate `a` onto p2 (the coherence engine ships its references and
  // sets up the stub/scion bookkeeping automatically) and let the
  // messages flow.
  cluster.propagate(a, p1, p2);
  cluster.run_until_quiescent();
  std::printf("after replication: %llu replicas cluster-wide\n",
              static_cast<unsigned long long>(cluster.total_objects()));

  // p2's application pins its replica of `a` in a register: from now on,
  // `a` and `b` are live through p2 alone.
  cluster.add_root(p2, a);

  // Meanwhile, build a *replicated garbage cycle* spanning p1 and p3:
  // x is replicated onto p3, y back onto p1, and the replicas reference
  // each other — with nothing rooting any of it.
  const ObjectId x = cluster.new_object(p1);
  const ObjectId y = cluster.new_object(p3);
  cluster.add_root(p1, x);  // construction handles, dropped below
  cluster.add_root(p3, y);
  cluster.propagate(x, p1, p3);
  cluster.run_until_quiescent();
  cluster.add_ref(p3, x, y);  // x's replica on p3 -> y
  cluster.propagate(y, p3, p1);
  cluster.run_until_quiescent();
  cluster.add_ref(p1, y, x);  // y's replica on p1 -> x
  cluster.remove_root(p1, x);
  cluster.remove_root(p3, y);

  // Drop the original entry points on p1 as well: now `a`/`b` are live
  // only through p2's root, and the x/y cycle is garbage.
  cluster.remove_root(p1, root_obj);

  const auto before = core::Oracle::analyze(cluster);
  std::printf("before GC: %zu live objects, %zu dead objects, %llu replicas\n",
              before.live_objects.size(), before.garbage_objects().size(),
              static_cast<unsigned long long>(cluster.total_objects()));

  // One call drives everything: local collections, the acyclic
  // replication-aware protocol, snapshots, cycle detections, cuts.
  const auto stats = cluster.run_full_gc();
  std::printf(
      "full GC: %llu rounds, %llu replicas reclaimed, %llu cycles proven\n",
      static_cast<unsigned long long>(stats.rounds),
      static_cast<unsigned long long>(stats.reclaimed_objects),
      static_cast<unsigned long long>(stats.cycles_found));

  const auto after = core::Oracle::analyze(cluster);
  std::printf("after GC: %llu replicas (a and b survive via p2), %s\n",
              static_cast<unsigned long long>(cluster.total_objects()),
              after.violations.empty() ? "integrity intact"
                                       : after.violations.front().c_str());

  // The Union Rule at work: p1's replica of `a` survived even though p1
  // cannot reach it locally any more — p2's replica keeps it alive.
  std::printf("p1 still holds a=%d b=%d (Union Rule); x gone=%d y gone=%d\n",
              cluster.process(p1).has_replica(a),
              cluster.process(p1).has_replica(b),
              !cluster.process(p1).has_replica(x),
              !cluster.process(p3).has_replica(y));
  return after.violations.empty() ? 0 : 1;
}
