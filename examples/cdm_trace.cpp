// CDM trace — replays the paper's worked example (§3.3, Figure 2) with
// protocol logging on, so you can watch the algebra travel:
//
//   P1: Alg0 => {{}, {X_P1}} -> {}        (candidate seeded)
//   P1 -> P2 (forward to child replica X'_P2)
//   P2 -> P4 (reference X'_P2 -> Y_P4)
//   P4 -> P3 (forward to child replica Y'_P3)
//   P3 -> P1 (reference Y'_P3 -> X_P1)
//   P1: matching -> {{}, {}} -> {}        (cycle found, scion cut)
//
//   $ ./example_cdm_trace
#include <cstdio>

#include "core/cluster.h"
#include "util/log.h"
#include "workload/figures.h"

using namespace rgc;

int main() {
  core::Cluster cluster;
  const auto fig = workload::build_figure2(cluster);

  std::printf("Figure 2 built: X replicated P%u->P%u, Y replicated P%u->P%u\n",
              raw(fig.p1), raw(fig.p2), raw(fig.p4), raw(fig.p3));
  std::printf("references: X'@P%u -> Y@P%u and Y'@P%u -> X@P%u\n",
              raw(fig.p2), raw(fig.p4), raw(fig.p3), raw(fig.p1));
  std::printf("nothing rooted: the four replicas form a garbage cycle\n\n");

  // Snapshots are taken independently, with no coordination (§3.5).
  cluster.snapshot_all();

  // Watch the protocol: every CDM delivery and the final verdict.
  util::set_log_level(util::LogLevel::kDebug);
  std::printf("--- detection starts at X@P%u ---\n", raw(fig.p1));
  const auto id = cluster.detect(fig.p1, fig.x);
  if (!id.has_value()) {
    std::printf("detection refused to start!\n");
    return 1;
  }
  const auto steps = cluster.run_until_quiescent();
  util::set_log_level(util::LogLevel::kOff);

  if (cluster.cycles_found().empty()) {
    std::printf("no cycle found!\n");
    return 1;
  }
  const gc::Cdm& verdict = cluster.cycles_found().front();
  std::printf("\ncycle proven after %llu steps, %llu CDMs\n",
              static_cast<unsigned long long>(steps),
              static_cast<unsigned long long>(
                  cluster.network().total_sent("CDM")));
  std::printf("final algebra: %s\n", verdict.to_string().c_str());

  // The verdict instructed the acyclic GC to delete the candidate's scion
  // ("it is enough ... to delete the scion of C_P1 which will result in
  // the safe collection of the whole cycle of garbage").
  for (int i = 0; i < 8; ++i) {
    cluster.collect_all();
    cluster.run_until_quiescent();
  }
  std::printf("after acyclic rounds: %llu replicas remain (expected 0)\n",
              static_cast<unsigned long long>(cluster.total_objects()));
  return cluster.total_objects() == 0 ? 0 : 1;
}
