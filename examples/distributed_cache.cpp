// Distributed cache / shared-memory scenario (Ehcache, Hazelcast,
// Terracotta — the systems §1 and §7 name).
//
// A put/get cache where entries replicate to every node that reads them,
// and values reference other values (a product references its category;
// bundles reference each other).  Expiring an entry drops its key but the
// replicas and their interconnections linger — classic replicated garbage
// that manual memory management gets wrong (dangling references or
// leaks); the complete DGC reclaims it safely.
//
//   $ ./example_distributed_cache
#include <cstdio>
#include <map>
#include <string>

#include "core/cluster.h"
#include "core/oracle.h"

using namespace rgc;

namespace {

class Cache {
 public:
  Cache(core::Cluster& cluster, std::size_t nodes) : cluster_(cluster) {
    for (std::size_t i = 0; i < nodes; ++i) {
      nodes_.push_back(cluster_.add_process());
      const ObjectId table = cluster_.new_object(nodes_.back());
      cluster_.add_root(nodes_.back(), table);
      tables_.push_back(table);
    }
  }

  ProcessId home(const std::string& key) const {
    std::size_t h = 0;
    for (char c : key) h = h * 131 + static_cast<unsigned char>(c);
    return nodes_[h % nodes_.size()];
  }

  /// put(key, value-object): the entry lives on the key's home node.
  ObjectId put(const std::string& key, std::uint32_t payload = 64) {
    const ProcessId at = home(key);
    const ObjectId value = cluster_.new_object(at, payload);
    cluster_.add_ref(at, table_of(at), value);
    entries_[key] = value;
    return value;
  }

  /// Values may reference other cached values (a local or remote edge).
  void link(const std::string& from, const std::string& to) {
    const ProcessId fa = home(from);
    const ProcessId ta = home(to);
    const ObjectId fo = entries_.at(from);
    const ObjectId to_id = entries_.at(to);
    if (fa != ta && !cluster_.process(fa).knows(to_id)) {
      cluster_.propagate(to_id, ta, fa);
      cluster_.run_until_quiescent();
    }
    cluster_.add_ref(fa, fo, to_id);
  }

  /// get(key) from `reader`: replicates the value to the reader's node
  /// (read-through caching) — afterwards the reader holds a replica.
  void get(const std::string& key, ProcessId reader) {
    const ProcessId at = home(key);
    if (at == reader) return;
    cluster_.propagate(entries_.at(key), at, reader);
    cluster_.run_until_quiescent();
  }

  /// Expire/evict: the key vanishes from the table.  Replicas everywhere
  /// become the DGC's responsibility.
  void expire(const std::string& key) {
    const ProcessId at = home(key);
    cluster_.remove_ref(at, table_of(at), entries_.at(key));
    entries_.erase(key);
  }

 private:
  ObjectId table_of(ProcessId node) const {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      if (nodes_[i] == node) return tables_[i];
    }
    return kNoObject;
  }

  core::Cluster& cluster_;
  std::vector<ProcessId> nodes_;
  std::vector<ObjectId> tables_;
  std::map<std::string, ObjectId> entries_;
};

}  // namespace

int main() {
  core::Cluster cluster;
  Cache cache{cluster, 3};
  const auto nodes = cluster.process_ids();

  // A catalogue: products reference their category; two bundle products
  // reference each other (a cycle); everything is read from every node,
  // so replicas are everywhere.
  cache.put("category:books", 32);
  cache.put("product:novel");
  cache.put("product:atlas");
  cache.put("bundle:a");
  cache.put("bundle:b");
  cache.link("product:novel", "category:books");
  cache.link("product:atlas", "category:books");
  cache.link("bundle:a", "bundle:b");
  cache.link("bundle:b", "bundle:a");   // the bundle cycle
  cache.link("bundle:a", "product:novel");

  for (const char* key : {"product:novel", "product:atlas", "bundle:a"}) {
    for (ProcessId reader : nodes) cache.get(key, reader);
  }
  std::printf("catalogue cached: %llu replicas across %zu nodes\n",
              static_cast<unsigned long long>(cluster.total_objects()),
              nodes.size());

  // Season over: the bundles expire.  Their replicas — a replicated cycle
  // smeared over all three nodes — are now garbage; the products and the
  // category must survive untouched.
  cache.expire("bundle:a");
  cache.expire("bundle:b");

  const auto before = core::Oracle::analyze(cluster);
  std::printf("expired: %zu dead cache values (replicated cycle included)\n",
              before.garbage_objects().size());

  const auto stats = cluster.run_full_gc();
  const auto after = core::Oracle::analyze(cluster);
  std::printf("GC: %llu replicas reclaimed, %llu cycles proven\n",
              static_cast<unsigned long long>(stats.reclaimed_objects),
              static_cast<unsigned long long>(stats.cycles_found));
  std::printf("survivors: %llu replicas, %zu live values, %s\n",
              static_cast<unsigned long long>(cluster.total_objects()),
              after.live_objects.size(),
              after.violations.empty() ? "integrity intact"
                                       : after.violations.front().c_str());
  return after.violations.empty() && after.garbage_objects().empty() ? 0 : 1;
}
