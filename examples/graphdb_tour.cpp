// Graph-database tour — the library consumed the way §1 envisions: a
// sharded, replicated vertex store where deletion is *unlinking* and the
// complete DGC provides the memory management, referential integrity
// included.
//
//   $ ./example_graphdb_tour
#include <cstdio>

#include "core/oracle.h"
#include "graphdb/graphdb.h"

using namespace rgc;
using graphdb::GraphStore;
using graphdb::VertexId;

int main() {
  graphdb::GraphStoreConfig cfg;
  cfg.shards = 4;
  cfg.background_gc = false;  // explicit GC below, for the narrative
  GraphStore db{cfg};

  // A product catalogue: categories, products, and a recommendation ring.
  const VertexId books = db.add_vertex("category:books");
  const VertexId maps = db.add_vertex("category:maps");
  const VertexId novel = db.add_vertex("product:novel");
  const VertexId atlas = db.add_vertex("product:atlas");
  db.add_edge(novel, books);
  db.add_edge(atlas, maps);

  // A seasonal recommendation ring spanning shards.
  const VertexId rec1 = db.add_vertex("rec:2025-wk1");
  const VertexId rec2 = db.add_vertex("rec:2025-wk2");
  const VertexId rec3 = db.add_vertex("rec:2025-wk3");
  db.add_edge(rec1, rec2);
  db.add_edge(rec2, rec3);
  db.add_edge(rec3, rec1);
  db.add_edge(rec1, novel);  // the ring also points at live data
  db.refresh_caches();       // push edge updates into the cached replicas

  std::printf("catalogue: %zu vertices, %zu replicas across %zu shards\n",
              db.vertex_count(), db.replica_count(), db.shard_count());
  std::printf("reachable from rec1 (depth 3): %zu vertices\n",
              db.reachable_from(rec1, 3).size());

  // Season over: the application deletes the recommendation entries.  No
  // manual memory management — the ring (a replicated cross-shard cycle
  // that also references live data) is now the collectors' problem.
  db.remove_vertex(rec1);
  db.remove_vertex(rec2);
  db.remove_vertex(rec3);
  std::printf("after deletion, before GC: rec1 still materialized = %d\n",
              db.vertex_exists(rec1));

  const auto stats = db.run_gc();
  std::printf("GC: %llu replicas reclaimed, %llu cycles proven\n",
              static_cast<unsigned long long>(stats.reclaimed_objects),
              static_cast<unsigned long long>(stats.cycles_found));

  const bool ring_gone = !db.vertex_exists(rec1) && !db.vertex_exists(rec2) &&
                         !db.vertex_exists(rec3);
  const bool catalogue_intact = db.vertex_exists(novel) &&
                                db.vertex_exists(atlas) &&
                                db.vertex_exists(books);
  const auto report = core::Oracle::analyze(db.cluster());
  std::printf("ring reclaimed = %d, catalogue intact = %d, integrity = %s\n",
              ring_gone, catalogue_intact,
              report.violations.empty() ? "ok" : "BROKEN");

  // Epilogue: the same store, but with the background daemon doing the
  // work while the application keeps going.
  graphdb::GraphStoreConfig bg;
  bg.shards = 3;
  bg.background_gc = true;
  GraphStore live{bg};
  const VertexId u = live.add_vertex("u");
  const VertexId v = live.add_vertex("v");
  live.add_edge(u, v);
  live.add_edge(v, u);
  live.refresh_caches();
  live.remove_vertex(u);
  live.remove_vertex(v);
  live.run_steps(400);  // application time passes; GC happens behind it
  std::printf("background daemon reclaimed the u/v ring = %d\n",
              !live.vertex_exists(u) && !live.vertex_exists(v));

  return (ring_gone && catalogue_intact && report.violations.empty()) ? 0 : 1;
}
