#!/usr/bin/env python3
"""Diff two bench JSONL files (see bench/bench_util.h) field by field.

Usage: scripts/bench_diff.py [--gate] [--threshold=PCT] BASELINE.jsonl CURRENT.jsonl

Datapoints are matched by their "bench" name; numeric fields shared by both
sides are printed with their relative change.  Fields present on only one
side are listed (new benches and new fields are normal as the suite grows).

Without --gate the exit code is always 0 — a trajectory report.  With
--gate the guarded sections below (full_gc / trace / summarize) fail the
run (exit 1) when a headline field regresses by more than the threshold
(default 10%); benches or fields absent from either side are skipped, so
filtered runs gate only what they measured.
"""
import json
import sys

# Section -> {field: better-direction}.  Only headline wall-time/throughput
# fields gate; counters and shape fields (reclaimed, allocs, ...) are
# asserted by tests, not by the perf gate.
GATED = {
    "lgc_hotpath.trace": {"objects_per_sec": "higher"},
    "lgc_hotpath.full_gc": {"serial_ms": "lower", "parallel_ms": "lower"},
    "lgc_hotpath.summarize": {"one_pass_ms": "lower"},
    # Adaptive daemon scheduling (bench/ablation_policies.cpp, Ablation 5):
    # GC bytes per reclaimed spanning cycle and the ledger's p90 e2e are the
    # headline claims for the adaptive policy; bench/lgc_hotpath.cpp's
    # daemon section gates the background-GC wall time under it.
    "ablation_policies.daemon_adaptive": {
        "bytes_per_cycle": "lower",
        "p90_e2e": "lower",
    },
    "lgc_hotpath.daemon": {"adaptive_ms": "lower"},
}


def load(path):
    """bench name -> {field: value}; last record wins on duplicate names."""
    out = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            name = rec.pop("bench", None) or rec.pop("name", None)
            if name is None:
                continue
            out[name] = rec
    return out


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def main():
    args = sys.argv[1:]
    gate = False
    threshold = 10.0
    paths = []
    for arg in args:
        if arg == "--gate":
            gate = True
        elif arg.startswith("--threshold="):
            threshold = float(arg.split("=", 1)[1])
        else:
            paths.append(arg)
    if len(paths) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_path, cur_path = paths
    base, cur = load(base_path), load(cur_path)

    print(f"bench diff: {base_path} -> {cur_path}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"  {name}: new bench (no baseline)")
            continue
        if name not in cur:
            print(f"  {name}: missing from current run")
            continue
        b, c = base[name], cur[name]
        print(f"  {name}:")
        for field in sorted(set(b) | set(c)):
            if field in ("ts", "git", "host"):
                continue
            bv, cv = b.get(field), c.get(field)
            if bv is None:
                print(f"    {field}: (new) {cv}")
            elif cv is None:
                print(f"    {field}: {bv} (dropped)")
            elif is_number(bv) and is_number(cv):
                if bv != 0:
                    delta = (cv - bv) / abs(bv) * 100.0
                    print(f"    {field}: {bv:g} -> {cv:g} ({delta:+.1f}%)")
                else:
                    print(f"    {field}: {bv:g} -> {cv:g}")
            elif bv != cv:
                print(f"    {field}: {bv!r} -> {cv!r}")

    if not gate:
        return 0
    failures = []
    for name, fields in GATED.items():
        if name not in base or name not in cur:
            continue
        for field, better in fields.items():
            bv, cv = base[name].get(field), cur[name].get(field)
            if not (is_number(bv) and is_number(cv)) or bv == 0:
                continue
            delta = (cv - bv) / abs(bv) * 100.0
            regression = delta if better == "lower" else -delta
            if regression > threshold:
                failures.append(
                    f"{name}.{field}: {bv:g} -> {cv:g} "
                    f"({regression:+.1f}% worse, threshold {threshold:g}%)")
    if failures:
        print(f"PERF GATE FAILED ({len(failures)} regression(s)):")
        for f in failures:
            print(f"  {f}")
        return 1
    print(f"perf gate passed (threshold {threshold:g}%)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
