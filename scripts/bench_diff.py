#!/usr/bin/env python3
"""Diff two bench JSONL files (see bench/bench_util.h) field by field.

Usage: scripts/bench_diff.py BASELINE.jsonl CURRENT.jsonl

Datapoints are matched by their "bench" name; numeric fields shared by both
sides are printed with their relative change.  Fields present on only one
side are listed (new benches and new fields are normal as the suite grows).
Exit code is always 0 — the diff is a trajectory report, not a gate.
"""
import json
import sys


def load(path):
    """bench name -> {field: value}; last record wins on duplicate names."""
    out = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            name = rec.pop("bench", None) or rec.pop("name", None)
            if name is None:
                continue
            out[name] = rec
    return out


def is_number(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    base_path, cur_path = sys.argv[1], sys.argv[2]
    base, cur = load(base_path), load(cur_path)

    print(f"bench diff: {base_path} -> {cur_path}")
    for name in sorted(set(base) | set(cur)):
        if name not in base:
            print(f"  {name}: new bench (no baseline)")
            continue
        if name not in cur:
            print(f"  {name}: missing from current run")
            continue
        b, c = base[name], cur[name]
        print(f"  {name}:")
        for field in sorted(set(b) | set(c)):
            if field in ("ts", "git", "host"):
                continue
            bv, cv = b.get(field), c.get(field)
            if bv is None:
                print(f"    {field}: (new) {cv}")
            elif cv is None:
                print(f"    {field}: {bv} (dropped)")
            elif is_number(bv) and is_number(cv):
                if bv != 0:
                    delta = (cv - bv) / abs(bv) * 100.0
                    print(f"    {field}: {bv:g} -> {cv:g} ({delta:+.1f}%)")
                else:
                    print(f"    {field}: {bv:g} -> {cv:g}")
            elif bv != cv:
                print(f"    {field}: {bv!r} -> {cv!r}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
