#!/usr/bin/env bash
# Runs the benchmark suite and collects every datapoint as JSONL.
#
#   scripts/bench_all.sh                      # all benches -> bench_results.jsonl
#   scripts/bench_all.sh out.jsonl            # all benches -> out.jsonl
#   scripts/bench_all.sh out.jsonl lgc_hot    # only binaries matching the regex
#
# Each bench binary appends one JSON object per datapoint to the output
# file via the RGC_BENCH_JSONL hook (bench/bench_util.h).  The committed
# BENCH_seed.json was captured with
#   scripts/bench_all.sh BENCH_seed.json lgc_hotpath
# *before* the mark-epoch/parallel-phase optimization landed, so the perf
# trajectory has a fixed reference point (see docs/PERFORMANCE.md).
set -euo pipefail

cd "$(dirname "$0")/.."

OUT="${1:-bench_results.jsonl}"
FILTER="${2:-.}"
JOBS=$(nproc 2>/dev/null || echo 4)

BENCHES=(
  lgc_hotpath
  cluster_scale
  fig6_lgc_total_overhead
  fig7_lgc_unitary_cost
  fig8_cdm_per_step
  fig9_cdm_totals
  table2_steps_to_detection
  ablation_policies
  ablation_candidates
  ablation_race_barrier
)

cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS" >/dev/null

: > "$OUT"
for b in "${BENCHES[@]}"; do
  [[ "$b" =~ $FILTER ]] || continue
  echo "== $b =="
  RGC_BENCH_JSONL="$OUT" "./build/bench/$b"
done
echo "wrote $(wc -l < "$OUT") datapoints to $OUT"

# Perf trajectory: diff this run against the newest committed BENCH_*.json
# baseline (newest by last-touching commit; skipping the one we just wrote,
# if OUT itself is a baseline being refreshed).
if command -v python3 >/dev/null 2>&1; then
  BASELINE=""
  NEWEST=0
  while IFS= read -r f; do
    [[ "$f" -ef "$OUT" ]] && continue
    ts=$(git log -1 --format=%ct -- "$f" 2>/dev/null || echo 0)
    if [[ "${ts:-0}" -gt "$NEWEST" ]]; then
      NEWEST="$ts"
      BASELINE="$f"
    fi
  done < <(git ls-files 'BENCH_*.json' 2>/dev/null)
  if [[ -n "$BASELINE" ]]; then
    # --gate: >10% regression in the guarded full_gc/trace/summarize
    # headline fields (see bench_diff.py GATED) fails the whole run.
    python3 scripts/bench_diff.py --gate "$BASELINE" "$OUT"
  else
    echo "no committed BENCH_*.json baseline to diff against"
  fi
fi
