#!/usr/bin/env bash
# Tier-1 verify plus a sanitizer pass.
#
#   scripts/check.sh            # plain build + ctest, then ASan/UBSan build + ctest
#   scripts/check.sh --fast     # plain build + ctest only
#
# The sanitizer pass uses the RGC_SANITIZE CMake option (see top-level
# CMakeLists.txt) in a separate build tree so the plain tree stays warm.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

run_tree() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== plain build + tests =="
run_tree build

if [[ "${1:-}" != "--fast" ]]; then
  echo "== sanitizer build + tests (address,undefined) =="
  run_tree build-asan -DRGC_SANITIZE=address,undefined

  # ThreadSanitizer pass over the parallel GC phases: build the TSan tree
  # and run the determinism suite, which drives the worker pool with
  # threads=8 (full ctest under TSan is slow; the threaded paths all live
  # behind Cluster::collect_round/snapshot_all, which this suite covers).
  echo "== thread sanitizer build + determinism tests =="
  cmake -B build-tsan -S . -DRGC_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target determinism_test chaos_test recorder_test
  ./build-tsan/tests/determinism_test

  # Flight-recorder legs (docs/OBSERVABILITY.md "Flight recorder &
  # replay"): the obs-labelled recorder suite under both sanitizers —
  # byte-identical recordings across thread counts is exactly the property
  # TSan-visible races would break — then a record-then-replay pass with
  # the CLI, which exits non-zero unless the replay is byte-identical.
  echo "== recorder suite under ASan/UBSan + TSan =="
  ./build-asan/tests/recorder_test
  ./build-tsan/tests/recorder_test
  echo "== record-then-replay divergence check =="
  REC_TMP=$(mktemp -t rgc_check_XXXX.rgcrec)
  trap 'rm -f "$REC_TMP"' EXIT
  ./build-asan/examples/example_sim_cli --record "$REC_TMP" --processes 16 --seed 2024
  ./build-asan/examples/example_sim_cli --replay "$REC_TMP" --threads 4

  # Audit-enabled chaos: the online health auditor runs every step
  # (RGC_CHAOS_AUDIT=1) with the worker pool at 4 threads, under both
  # sanitizer trees.  chaos_test asserts cluster.audit().errors() == 0
  # after every burst, so any auditor ERROR fails the run.
  # RGC_CHAOS_FAULTS=1 additionally enables the heavy fault-chaos legs
  # (crash/restart/partition FaultPlans under message loss — docs/FAULTS.md);
  # the fault suites are also selectable in any tree with `ctest -L faults`.
  echo "== chaos under ASan/UBSan, audit every step, threads=4, faults on =="
  RGC_CHAOS_AUDIT=1 RGC_CHAOS_THREADS=4 RGC_CHAOS_FAULTS=1 ./build-asan/tests/chaos_test
  echo "== chaos under TSan, audit every step, threads=4, faults on =="
  RGC_CHAOS_AUDIT=1 RGC_CHAOS_THREADS=4 RGC_CHAOS_FAULTS=1 ./build-tsan/tests/chaos_test
  echo "== recovery suite under ASan/UBSan =="
  ./build-asan/tests/recovery_test

  # ~100k-object scale smoke under ASan (`ctest -L scale`): arena slot
  # reuse, image/summary codecs and the discrete-event scheduler at
  # populations where off-by-one slot bookkeeping actually bites.
  echo "== scale smoke under ASan/UBSan =="
  ctest --test-dir build-asan -L scale --output-on-failure -j "$JOBS"

  # Cycle cost ledger (docs/OBSERVABILITY.md "Cycle cost ledger"): the
  # ledger-labelled suite under ASan — the hop/slot arrays are fixed-size
  # rings, exactly where out-of-bounds indexing would hide — and the
  # determinism legs (byte-identical JSONL across threads=1 vs 8 and
  # event-skip vs per-step schedules) re-checked explicitly so a ledger
  # nondeterminism can never ship behind a filtered ctest run.
  echo "== ledger suite under ASan/UBSan =="
  ctest --test-dir build-asan -L ledger --output-on-failure -j "$JOBS"
  echo "== ledger determinism (threads x event-skip) =="
  ./build/tests/ledger_test \
    --gtest_filter='LedgerTest.JsonlByteIdenticalAcrossThreadCounts:LedgerTest.JsonlByteIdenticalAcrossSchedules:LedgerTest.DecompositionIdentityHoldsOnJitteredMeshes'

  # Adaptive scheduling + decentralized quiescence (docs/DESIGN.md
  # "Adaptive deferred detection"): the policy-labelled suite under both
  # sanitizers — the termination detector's per-account arithmetic and the
  # daemon's lane maps are exactly where a sanitizer finds the lie — plus
  # the chaos suite re-run with the adaptive daemon explicitly on and off
  # (RGC_CHAOS_ADAPTIVE; the on-leg also exercises the token-based
  # run_until_quiescent agreement asserts on every kill/restart/partition).
  echo "== policy suite under ASan/UBSan + TSan =="
  ctest --test-dir build-asan -L policy --output-on-failure -j "$JOBS"
  cmake --build build-tsan -j "$JOBS" --target policy_test
  ./build-tsan/tests/policy_test
  echo "== chaos under ASan/UBSan, adaptive daemon off (fixed-cadence cross-check) =="
  RGC_CHAOS_AUDIT=1 RGC_CHAOS_THREADS=4 RGC_CHAOS_FAULTS=1 RGC_CHAOS_ADAPTIVE=0 \
    ./build-asan/tests/chaos_test
fi

echo "OK"
