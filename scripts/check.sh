#!/usr/bin/env bash
# Tier-1 verify plus a sanitizer pass.
#
#   scripts/check.sh            # plain build + ctest, then ASan/UBSan build + ctest
#   scripts/check.sh --fast     # plain build + ctest only
#
# The sanitizer pass uses the RGC_SANITIZE CMake option (see top-level
# CMakeLists.txt) in a separate build tree so the plain tree stays warm.
set -euo pipefail

cd "$(dirname "$0")/.."

JOBS=$(nproc 2>/dev/null || echo 4)

run_tree() {
  local dir="$1"
  shift
  cmake -B "$dir" -S . "$@"
  cmake --build "$dir" -j "$JOBS"
  ctest --test-dir "$dir" --output-on-failure -j "$JOBS"
}

echo "== plain build + tests =="
run_tree build

if [[ "${1:-}" != "--fast" ]]; then
  echo "== sanitizer build + tests (address,undefined) =="
  run_tree build-asan -DRGC_SANITIZE=address,undefined

  # ThreadSanitizer pass over the parallel GC phases: build the TSan tree
  # and run the determinism suite, which drives the worker pool with
  # threads=8 (full ctest under TSan is slow; the threaded paths all live
  # behind Cluster::collect_round/snapshot_all, which this suite covers).
  echo "== thread sanitizer build + determinism tests =="
  cmake -B build-tsan -S . -DRGC_SANITIZE=thread
  cmake --build build-tsan -j "$JOBS" --target determinism_test chaos_test
  ./build-tsan/tests/determinism_test

  # Audit-enabled chaos: the online health auditor runs every step
  # (RGC_CHAOS_AUDIT=1) with the worker pool at 4 threads, under both
  # sanitizer trees.  chaos_test asserts cluster.audit().errors() == 0
  # after every burst, so any auditor ERROR fails the run.
  # RGC_CHAOS_FAULTS=1 additionally enables the heavy fault-chaos legs
  # (crash/restart/partition FaultPlans under message loss — docs/FAULTS.md);
  # the fault suites are also selectable in any tree with `ctest -L faults`.
  echo "== chaos under ASan/UBSan, audit every step, threads=4, faults on =="
  RGC_CHAOS_AUDIT=1 RGC_CHAOS_THREADS=4 RGC_CHAOS_FAULTS=1 ./build-asan/tests/chaos_test
  echo "== chaos under TSan, audit every step, threads=4, faults on =="
  RGC_CHAOS_AUDIT=1 RGC_CHAOS_THREADS=4 RGC_CHAOS_FAULTS=1 ./build-tsan/tests/chaos_test
  echo "== recovery suite under ASan/UBSan =="
  ./build-asan/tests/recovery_test
fi

echo "OK"
