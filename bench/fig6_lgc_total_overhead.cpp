// Figure 6 — Total LGC overhead due to enforcement of the Union Rule.
//
// Paper setup (§5.1): N objects, each with R internal references, all
// replicated from another process; the LGC is forced 100 times; every
// object is detected unreachable, finalized, and made reachable again —
// the worst case for the user-level Union-Rule machinery.  Series:
//
//   paper                        | here
//   -----------------------------+------------------------------------
//   Empty Java LGC               | empty_lgc            (kNone)
//   Java Reconstruction          | java_like_reconstruction
//                                |   (run-once finalizers force a new
//                                |    object + a proxy per reference)
//   Empty .Net LGC               | empty_lgc            (same engine)
//   .Net Reconstruction          | dotnet_like_reconstruction
//   .Net ReRegisterFinalize      | dotnet_reregister_finalize
//
// Absolute numbers differ from the paper's (their runtimes were HotSpot
// and the CLR on a 2010 i5); the reproduction targets the *shape*: totals
// growing ~linearly with N and with R, Reconstruction >> ReRegister >>
// Empty, and unitary costs in the microsecond range (Figure 7).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "gc/lgc/lgc.h"
#include "net/network.h"
#include "rm/process.h"

namespace {

using namespace rgc;

constexpr int kRuns = 100;  // the paper's 100 forced collections

/// Builds the worst-case heap: `n` finalizable objects, each with `refs`
/// references (to the next objects, wrapping), nothing rooted.
void build_heap(rm::Process& proc, std::int64_t n, std::int64_t refs) {
  for (std::int64_t i = 0; i < n; ++i) {
    proc.create_object(ObjectId{static_cast<std::uint64_t>(i)});
  }
  for (std::int64_t i = 0; i < n; ++i) {
    rm::Object* obj = proc.heap().find(ObjectId{static_cast<std::uint64_t>(i)});
    obj->finalizable = true;
    for (std::int64_t k = 1; k <= refs; ++k) {
      obj->refs.push_back(
          rm::Ref{ObjectId{static_cast<std::uint64_t>((i + k) % n)}, kNoProcess});
    }
  }
}

void run_series(benchmark::State& state, gc::FinalizeStrategy strategy) {
  const std::int64_t n = state.range(0);
  const std::int64_t refs = state.range(1);
  for (auto _ : state) {
    state.PauseTiming();
    net::Network net;
    rm::Process proc{ProcessId{0}, net};
    net.attach(ProcessId{0}, [](const net::Envelope&) {});
    build_heap(proc, n, refs);
    gc::Finalizer finalizer{strategy};
    gc::LgcConfig cfg;
    cfg.finalizer = &finalizer;
    state.ResumeTiming();

    for (int run = 0; run < kRuns; ++run) {
      benchmark::DoNotOptimize(gc::Lgc::collect(proc, cfg));
      // "Immediately made reachable to the mutator again": re-arm for the
      // next cycle.  Fresh reconstruction re-arms implicitly (it built a
      // new object); the in-place variant needs the finalization bit back.
      if (strategy == gc::FinalizeStrategy::kReconstructionInPlace) {
        proc.heap().for_each([](ObjectId, std::uint32_t, rm::Object& obj) {
          obj.finalizable = true;
        });
      }
      // The previous cycle's proxies are local garbage by now.
      finalizer.release_arena();
    }
    state.counters["finalized_total"] =
        static_cast<double>(finalizer.finalized_count());
  }
  state.counters["objects"] = static_cast<double>(n);
  state.counters["refs_per_obj"] = static_cast<double>(refs);
}

void args(benchmark::internal::Benchmark* b) {
  for (const std::int64_t n : {1000, 10000, 100000}) {
    for (const std::int64_t r : {1, 10, 25}) b->Args({n, r});
  }
  b->Unit(benchmark::kMillisecond)->Iterations(1);
}

BENCHMARK_CAPTURE(run_series, empty_lgc, gc::FinalizeStrategy::kNone)
    ->Apply(args);
BENCHMARK_CAPTURE(run_series, java_like_reconstruction,
                  gc::FinalizeStrategy::kReconstructionFresh)
    ->Apply(args);
BENCHMARK_CAPTURE(run_series, dotnet_like_reconstruction,
                  gc::FinalizeStrategy::kReconstructionInPlace)
    ->Apply(args);
BENCHMARK_CAPTURE(run_series, dotnet_reregister_finalize,
                  gc::FinalizeStrategy::kReRegister)
    ->Apply(args);

}  // namespace

int main(int argc, char** argv) {
  std::printf(
      "Figure 6 — total LGC overhead of Union-Rule enforcement\n"
      "(total wall time of %d forced collections per configuration)\n\n",
      kRuns);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
