// Machine-readable bench output: one JSONL record per datapoint.
//
// Every bench binary keeps printing its human-readable table on stdout;
// when the environment variable RGC_BENCH_JSONL names a file, each
// datapoint is *additionally* appended there as one JSON object per line:
//
//   $ RGC_BENCH_JSONL=bench.jsonl ./bench_fig9_cdm_totals
//   $ jq 'select(.bench=="fig9") | [.R, .deps, .ours_cdms]' bench.jsonl
//
// Append semantics let one file collect a whole harness run across
// binaries.  With the variable unset this header costs one getenv per
// record and writes nothing.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <string>
#include <type_traits>

#include "util/trace.h"  // json_escape

namespace rgc::bench {

/// Builder for one JSONL record; emits on destruction (or emit()).
class RunRecord {
 public:
  explicit RunRecord(const std::string& bench) {
    const char* path = std::getenv("RGC_BENCH_JSONL");
    if (path == nullptr || path[0] == '\0') return;
    path_ = path;
    line_ = "{\"bench\":\"" + util::json_escape(bench) + "\"";
  }

  RunRecord(const RunRecord&) = delete;
  RunRecord& operator=(const RunRecord&) = delete;
  ~RunRecord() { emit(); }

  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  RunRecord& field(const std::string& key, T value) {
    return raw(key, std::to_string(value));
  }
  RunRecord& field(const std::string& key, double value) {
    return raw(key, std::to_string(value));
  }
  RunRecord& field(const std::string& key, bool value) {
    return raw(key, value ? "true" : "false");
  }
  RunRecord& field(const std::string& key, const std::string& value) {
    return raw(key, "\"" + util::json_escape(value) + "\"");
  }
  RunRecord& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }

  /// Appends the record to $RGC_BENCH_JSONL; no-op when disabled or
  /// already emitted.
  void emit() {
    if (path_.empty()) return;
    std::ofstream os(path_, std::ios::app);
    if (os) os << line_ << "}\n";
    path_.clear();
  }

 private:
  RunRecord& raw(const std::string& key, const std::string& rendered) {
    if (!path_.empty()) {
      line_ += ",\"" + util::json_escape(key) + "\":" + rendered;
    }
    return *this;
  }

  std::string path_;
  std::string line_;
};

}  // namespace rgc::bench
