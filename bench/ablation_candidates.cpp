// Ablation — candidate-selection policies (§3.1 defers the heuristic to
// the literature [14]; this bench quantifies the choice).
//
// Workload: a mixed store — live data referenced only remotely (the
// exhaustive policy's blind spot: it looks unreachable locally, forever),
// freshly-dropped acyclic garbage, and replicated cycles.  Metrics per
// policy: detections started (wasted + useful), CDMs spent, rounds until
// clean, and whether everything dead was reclaimed.
#include <cstdio>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/figures.h"

namespace {

using namespace rgc;
using core::CandidatePolicy;

struct Outcome {
  std::uint64_t detections{0};
  std::uint64_t cdms{0};
  std::uint64_t rounds{0};
  bool clean{false};
  bool live_intact{false};
};

Outcome run_policy(CandidatePolicy policy) {
  core::ClusterConfig cfg;
  cfg.candidates = policy;
  cfg.candidate_threshold = 3;
  core::Cluster cluster{cfg};

  // Cycle garbage (the figure-2 four-replica cycle).
  const auto f = workload::build_figure2(cluster);

  // Live data referenced only remotely: w (rooted on p4) -> v (on p1).
  const ObjectId v = cluster.new_object(f.p1);
  const ObjectId w = cluster.new_object(f.p4);
  cluster.add_root(f.p4, w);
  cluster.add_root(f.p1, v);
  workload::make_remote_ref(cluster, f.p4, w, f.p1, v);
  cluster.remove_root(f.p1, v);

  // Fresh acyclic garbage chain across processes.
  const ObjectId c0 = cluster.new_object(f.p2);
  const ObjectId c1 = cluster.new_object(f.p3);
  cluster.add_root(f.p2, c0);
  workload::make_remote_ref(cluster, f.p2, c0, f.p3, c1);
  cluster.remove_root(f.p2, c0);

  const auto stats = cluster.run_full_gc();
  const auto report = core::Oracle::analyze(cluster);

  Outcome out;
  out.detections = stats.detections_started;
  out.cdms = cluster.network().total_sent("CDM");
  out.rounds = stats.rounds;
  out.clean = report.garbage_objects().empty();
  out.live_intact = cluster.process(f.p1).has_replica(v) &&
                    report.violations.empty();
  return out;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — candidate-selection policy on a mixed store\n"
      "(cycle garbage + acyclic garbage + live remotely-referenced data)\n\n");
  std::printf("%-14s %11s %8s %8s %7s %12s\n", "policy", "detections",
              "cdms", "rounds", "clean", "live-intact");
  struct Row {
    CandidatePolicy policy;
    const char* name;
  };
  const Row rows[] = {
      {CandidatePolicy::kExhaustive, "exhaustive"},
      {CandidatePolicy::kDistance, "distance"},
      {CandidatePolicy::kSuspicionAge, "suspicion-age"},
  };
  for (const Row& row : rows) {
    const Outcome o = run_policy(row.policy);
    std::printf("%-14s %11llu %8llu %8llu %7s %12s\n", row.name,
                static_cast<unsigned long long>(o.detections),
                static_cast<unsigned long long>(o.cdms),
                static_cast<unsigned long long>(o.rounds),
                o.clean ? "yes" : "NO", o.live_intact ? "yes" : "NO");
  }
  std::printf(
      "\nexpected: every policy ends clean with live data intact; the\n"
      "distance heuristic spends the fewest detections (it is the only one\n"
      "that learns the remotely-referenced live object is live), at the\n"
      "price of threshold-many warm-up rounds.\n");
  return 0;
}
