// Ablation — the optimistic race barrier (§3.5) under increasing mutator
// pressure.
//
// The Figure 4/5 scenario generalized: a live replicated cycle, snapshots
// taken at staggered times, with `k` mutator operations (invocations and
// coherence updates) landing between them.  The barrier's contract:
//
//   - safety is absolute: no detection may ever condemn the live cycle,
//     at any mutation rate;
//   - the cost of optimism is wasted detections: the abort rate rises
//     with mutator activity ("the application runs at full speed at the
//     expense of possibly wasting some detection work").
//
// A second table shows the recovery property: the same graphs, once the
// mutator stops and the root is removed, are collected on the next
// attempt with fresh snapshots.
#include <cstdio>

#include "core/cluster.h"
#include "core/oracle.h"
#include "workload/figures.h"

namespace {

using namespace rgc;

struct Trial {
  bool condemned{false};  // live data harmed (must never happen)
  bool aborted{false};    // detection gave up (expected under races)
  bool recovered{false};  // post-quiescence retry collected the dead cycle
};

Trial run_trial(int mutations, std::uint64_t seed) {
  core::ClusterConfig cfg;
  cfg.net.seed = seed;
  core::Cluster cluster{cfg};
  const auto fig = workload::build_figure4(cluster);  // live cycle

  // Stale snapshots first (everyone but P1), paper's timeline.
  cluster.detector(fig.p2).take_snapshot();
  cluster.detector(fig.p3).take_snapshot();
  cluster.detector(fig.p4).take_snapshot();

  // Mutator burst in the snapshot gap.
  for (int i = 0; i < mutations; ++i) {
    switch (i % 3) {
      case 0:
        cluster.invoke(fig.p3, fig.x);
        break;
      case 1:
        cluster.invoke(fig.p2, fig.y);
        break;
      case 2:
        cluster.propagate(fig.y, fig.p4, fig.p3);
        break;
    }
    cluster.run_until_quiescent();
  }
  for (int i = 0; i < 4; ++i) cluster.step();  // invocation pins expire

  cluster.remove_root(fig.p1, fig.x);  // by S1, the cycle LOOKS dead at P1
  cluster.detector(fig.p1).take_snapshot();

  cluster.detector(fig.p2).start_detection(fig.x);
  cluster.detector(fig.p1).start_detection(fig.x);
  cluster.run_until_quiescent();

  Trial t;
  const auto report = core::Oracle::analyze(cluster);
  // The root is gone, so x/y genuinely died; "condemned" here means a cut
  // was applied by a detection that raced the mutations (it would also
  // fire on the pre-removal state — the unsafe outcome the barrier
  // exists to prevent).  With mutations > 0 every verdict must have been
  // blocked by a counter mismatch.
  t.condemned = mutations > 0 && !cluster.cycles_found().empty();
  t.aborted = cluster.metric_total("cycle.aborts_race") > 0;
  (void)report;

  // Recovery: fresh snapshots over the now-quiet graph.
  cluster.snapshot_all();
  cluster.detect(fig.p1, fig.x);
  cluster.run_until_quiescent();
  cluster.run_full_gc(8);
  t.recovered = !cluster.process(fig.p1).has_replica(fig.x) &&
                !cluster.process(fig.p4).has_replica(fig.y);
  return t;
}

}  // namespace

int main() {
  std::printf(
      "Ablation — optimistic race barrier vs mutator activity\n"
      "(Figure 4/5 scenario; %d seeds per mutation rate)\n\n",
      5);
  std::printf("%10s %12s %12s %12s\n", "mutations", "condemned",
              "races-hit", "recovered");
  for (const int mutations : {0, 1, 2, 4, 8, 16}) {
    int condemned = 0, aborted = 0, recovered = 0;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      const Trial t = run_trial(mutations, seed);
      condemned += t.condemned ? 1 : 0;
      aborted += t.aborted ? 1 : 0;
      recovered += t.recovered ? 1 : 0;
    }
    std::printf("%10d %11d/5 %11d/5 %11d/5%s\n", mutations, condemned, aborted,
                recovered, condemned == 0 ? "" : "  UNSAFE!");
  }
  std::printf(
      "\nexpected: condemned always 0/5 (safety), races-hit rising with\n"
      "mutations (optimism's cost), recovered always 5/5 (liveness).\n");
  return 0;
}
