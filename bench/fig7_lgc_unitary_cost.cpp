// Figure 7 — LGC object unitary cost of enforcing the Union Rule.
//
// Same experiment as Figure 6, reported per object per collection (the
// paper's values: maxima 25.4 µs Java / 14.5 µs .NET; minima 6.32 µs Java
// / 0.67 µs .NET).  The reproduction target is the order of magnitude
// (microseconds per transition) and the series ordering — reconstruction
// strategies cost µs, ReRegister costs a fraction of a µs.
//
// Measured directly (std::chrono, one shot per configuration): unitary
// costs are derived quantities, not adaptive-iteration material.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "gc/lgc/lgc.h"
#include "net/network.h"
#include "rm/process.h"

namespace {

using namespace rgc;
using Clock = std::chrono::steady_clock;

constexpr int kRuns = 100;

void build_heap(rm::Process& proc, std::int64_t n, std::int64_t refs) {
  for (std::int64_t i = 0; i < n; ++i) {
    proc.create_object(ObjectId{static_cast<std::uint64_t>(i)});
  }
  for (std::int64_t i = 0; i < n; ++i) {
    rm::Object* obj = proc.heap().find(ObjectId{static_cast<std::uint64_t>(i)});
    obj->finalizable = true;
    for (std::int64_t k = 1; k <= refs; ++k) {
      obj->refs.push_back(
          rm::Ref{ObjectId{static_cast<std::uint64_t>((i + k) % n)}, kNoProcess});
    }
  }
}

double unitary_cost_us(gc::FinalizeStrategy strategy, std::int64_t n,
                       std::int64_t refs) {
  net::Network net;
  rm::Process proc{ProcessId{0}, net};
  net.attach(ProcessId{0}, [](const net::Envelope&) {});
  build_heap(proc, n, refs);
  gc::Finalizer finalizer{strategy};
  gc::LgcConfig cfg;
  cfg.finalizer = &finalizer;

  const auto start = Clock::now();
  for (int run = 0; run < kRuns; ++run) {
    gc::Lgc::collect(proc, cfg);
    if (strategy == gc::FinalizeStrategy::kReconstructionInPlace) {
      proc.heap().for_each([](ObjectId, std::uint32_t, rm::Object& obj) {
        obj.finalizable = true;
      });
    }
    finalizer.release_arena();
  }
  const auto elapsed = std::chrono::duration<double, std::micro>(
      Clock::now() - start);
  // Per object, per collection.  For the Empty series (everything is
  // reclaimed in run 1 and the rest are no-ops) this matches the paper's
  // framing: the whole 100-run loop amortized over the objects.
  return elapsed.count() / (static_cast<double>(n) * kRuns);
}

struct Series {
  const char* name;
  gc::FinalizeStrategy strategy;
};

}  // namespace

int main() {
  std::printf(
      "Figure 7 — per-object unitary cost of Union-Rule enforcement (us)\n"
      "(paper: max 25.4 Java / 14.5 .NET; min 6.32 Java / 0.67 .NET)\n\n");
  const Series series[] = {
      {"empty_lgc", gc::FinalizeStrategy::kNone},
      {"java_like_reconstruction", gc::FinalizeStrategy::kReconstructionFresh},
      {"dotnet_like_reconstruction",
       gc::FinalizeStrategy::kReconstructionInPlace},
      {"dotnet_reregister_finalize", gc::FinalizeStrategy::kReRegister},
  };
  std::printf("%-28s %10s %6s %14s\n", "series", "objects", "refs",
              "unitary (us)");
  for (const Series& s : series) {
    for (const std::int64_t n : {1000, 10000, 100000}) {
      for (const std::int64_t r : {1, 10, 25}) {
        const double us = unitary_cost_us(s.strategy, n, r);
        std::printf("%-28s %10lld %6lld %14.4f\n", s.name,
                    static_cast<long long>(n), static_cast<long long>(r), us);
      }
    }
  }
  return 0;
}
