// Ablation — the design choices DESIGN.md calls out, measured one at a
// time on the scalability mesh:
//
//  1. child-before-parent forwarding (§3.3's traversal policy) vs
//     parents-first: both complete; the policy shifts where the traversal
//     pays its visits.
//  2. Union Rule on/off in the LGC: without it the collector reclaims the
//     parent replica of live remote data — the Figure 1 failure, counted
//     as lost live objects.
//  3. The subsumption filter: detections re-run under identical snapshots
//     to show duplicate CDMs being absorbed.
//  4. Detector cadence scored by the cost ledger: how often the cyclic
//     phase runs trades reclaim latency (ledger e2e decomposition) against
//     CDM traffic (ledger per-cycle attribution) — the aggregate counters
//     alone cannot separate "slow because waiting for the detector" from
//     "slow because the strand is long"; the ledger can.
//  5. Adaptive vs fixed GcDaemon scheduling: the same garbage waves driven
//     end-to-end by the background daemon, fixed cadence vs the Pony-style
//     deferred policy.  Scored at matched safety (oracle-verified complete,
//     zero audit errors) by GC bytes (CDM wire weight + snapshot bytes) per
//     reclaimed cycle and by the ledger's unlink->reclaim p90 — the
//     headline numbers for the adaptive policy.  Emitted as JSONL records
//     `ablation_policies.daemon_{adaptive,fixed}` for bench_diff.py.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster.h"
#include "core/daemon.h"
#include "core/oracle.h"
#include "gc/adgc/adgc.h"
#include "gc/lgc/lgc.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "workload/figures.h"
#include "workload/mesh.h"

namespace {

using namespace rgc;

struct Outcome {
  std::uint64_t steps{0};
  std::uint64_t cdms{0};
  std::uint64_t forwards{0};
  bool converged{false};
};

Outcome run_policy(bool children_first, std::size_t R, std::size_t D) {
  core::ClusterConfig cfg;
  cfg.detector.children_first = children_first;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(cluster, {R, D});
  const auto before = cluster.network().total_sent("CDM");
  cluster.snapshot_all();
  const auto start = cluster.now();
  cluster.detect(mesh.head_process, mesh.head);
  while (cluster.cycles_found().empty() && !cluster.network().idle()) {
    cluster.step();
  }
  Outcome out;
  out.converged = !cluster.cycles_found().empty();
  out.steps = cluster.now() - start;
  cluster.run_until_quiescent();
  out.cdms = cluster.network().total_sent("CDM") - before;
  out.forwards = cluster.metric_total("cycle.forwards");
  return out;
}

// ---- Ablation 4: detector cadence, costed by the ledger --------------------

struct CadenceScore {
  std::uint64_t cycles{0};         // completed ledger entries
  std::uint64_t reclaimed{0};
  double mean_pending{0};          // steps, unlink -> detection started
  double mean_detect{0};           // steps on the CDM critical path
  double mean_full{0};             // steps, unlink -> candidate reclaimed
  std::uint64_t cdm_weight{0};     // ledger-attributed CDM bytes
  std::uint64_t steps{0};
};

/// Garbage arrives in waves (a fresh mesh every 6 collection rounds) while
/// the cyclic phase runs once every `cadence` rounds.  The ledger then
/// scores the cadence: unlink -> detection-start wait (the latency a rarer
/// detector adds), the CDM critical path itself, and the CDM bytes spent —
/// aggregate counters see only totals, the per-cycle entries expose where
/// the latency actually lives.
CadenceScore run_cadence(std::uint64_t cadence) {
  core::ClusterConfig cfg;
  cfg.net.seed = 5;
  cfg.audit_interval = 0;
  core::Cluster cluster{cfg};

  const std::uint64_t start = cluster.now();
  constexpr int kRounds = 24;
  for (int round = 0; round < kRounds; ++round) {
    if (round % 6 == 0) {  // a new wave of cyclic garbage
      workload::build_mesh(cluster, {4, 6, /*extra_replicas=*/1});
      cluster.run_until_quiescent();
    }
    cluster.collect_all();
    cluster.run_until_quiescent();
    if ((round + 1) % static_cast<int>(cadence) == 0) {
      cluster.snapshot_all();
      for (ProcessId pid : cluster.process_ids()) {
        for (ObjectId suspect : cluster.suspects(pid)) {
          cluster.detect(pid, suspect);
        }
      }
      cluster.run_until_quiescent();
    }
  }
  // Final detection + sweep rounds so every wave's cuts cascade to reclaim.
  cluster.run_full_gc(4);

  CadenceScore score;
  score.steps = cluster.now() - start;
  const obs::Ledger* ledger = cluster.ledger();
  for (const obs::LedgerEntry* e : ledger->entries()) {
    if (!e->complete || e->unlinked_step == 0) continue;
    ++score.cycles;
    score.reclaimed += e->members_reclaimed;
    score.mean_pending +=
        static_cast<double>(e->started_step - e->unlinked_step);
    score.mean_detect += static_cast<double>(e->detect_steps);
    score.mean_full +=
        static_cast<double>(e->reclaimed_step - e->unlinked_step);
    score.cdm_weight += e->cdm_weight;
  }
  if (score.cycles != 0) {
    score.mean_pending /= static_cast<double>(score.cycles);
    score.mean_detect /= static_cast<double>(score.cycles);
    score.mean_full /= static_cast<double>(score.cycles);
  }
  return score;
}

// ---- Ablation 5: adaptive vs fixed daemon scheduling -----------------------

struct DaemonScore {
  std::uint64_t cycles{0};          // completed ledger entries
  std::uint64_t reclaimed{0};       // cycle members reclaimed
  double mean_e2e{0};               // ledger e2e: detection start -> reclaim
  std::uint64_t p90_e2e{0};
  double wave_lag{0};               // steps, wave built -> first detection
  std::uint64_t max_wave_lag{0};
  std::uint64_t cdm_bytes{0};       // net.weight.CDM wire bytes
  std::uint64_t snapshot_bytes{0};  // daemon.snapshot_bytes
  std::uint64_t collections{0};
  std::uint64_t sweeps{0};
  std::uint64_t skipped{0};         // skipped collections + sweeps
  std::uint64_t detections{0};
  std::uint64_t steps{0};
  std::uint64_t waves{0};           // spanning garbage cycles built
  std::uint64_t leftover{0};        // oracle: dead objects still present
  std::uint64_t audit_errors{0};

  /// GC bytes per reclaimed spanning cycle.  Each wave builds exactly one
  /// garbage cycle, and leftover == 0 certifies every wave was reclaimed —
  /// normalizing by waves, not ledger entries, keeps a policy from looking
  /// cheaper by splitting the same garbage across more detections.
  [[nodiscard]] double bytes_per_cycle() const {
    return static_cast<double>(cdm_bytes + snapshot_bytes) /
           static_cast<double>(waves == 0 ? 1 : waves);
  }
};

/// The same garbage waves as Ablation 4, but driven entirely by the
/// background GcDaemon — no explicit collect/snapshot/detect calls, so the
/// scheduling policy alone decides what GC work runs.  Mutation then stops
/// and the daemon must finish the job on its own (the adaptive ceilings'
/// completeness guarantee).  Both variants run the identical workload and
/// are scored only after the oracle confirms nothing is left.
DaemonScore run_daemon(bool adaptive) {
  core::ClusterConfig cfg;
  cfg.net.seed = 5;
  core::Cluster cluster{cfg};
  core::DaemonConfig dcfg;
  dcfg.adaptive.enabled = adaptive;
  core::GcDaemon daemon{cluster, dcfg};

  constexpr int kRounds = 24;
  std::vector<std::uint64_t> wave_steps;
  for (int round = 0; round < kRounds; ++round) {
    if (round % 6 == 0) {  // a new wave of cyclic garbage
      workload::build_mesh(cluster, {4, 6, /*extra_replicas=*/1});
      wave_steps.push_back(cluster.now());
    }
    daemon.run(30);
  }
  // Endgame: mutation has stopped; keep the daemon running until the
  // oracle reports the cluster clean (bounded — both policies converge,
  // the bound only caps a regression).
  std::uint64_t leftover = 0;
  for (int i = 0; i < 8; ++i) {
    daemon.run(250);
    cluster.run_until_quiescent();
    leftover = core::Oracle::analyze(cluster).garbage_objects().size();
    if (leftover == 0) break;
  }

  DaemonScore s;
  s.steps = cluster.now();
  s.waves = wave_steps.size();
  s.leftover = leftover;
  s.audit_errors = cluster.audit().errors();
  // Ledger e2e (detection start -> candidate reclaimed).  The daemon's
  // winning candidate is rarely the root-dropped head, so the per-entry
  // unlinked stamp is unknown here; the deferral cost is measured directly
  // instead, as the lag from each wave's build to the first detection the
  // daemon starts afterwards.
  std::vector<std::uint64_t> e2e;
  for (const obs::LedgerEntry* e : cluster.ledger()->entries()) {
    if (!e->complete) continue;
    ++s.cycles;
    s.reclaimed += e->members_reclaimed;
    e2e.push_back(e->e2e_steps);
    s.mean_e2e += static_cast<double>(e->e2e_steps);
  }
  if (s.cycles != 0) {
    s.mean_e2e /= static_cast<double>(s.cycles);
    std::sort(e2e.begin(), e2e.end());
    s.p90_e2e = e2e[std::min(e2e.size() - 1, e2e.size() * 9 / 10)];
  }
  std::size_t waves_scored = 0;
  for (const std::uint64_t wave : wave_steps) {
    std::uint64_t lag = 0;
    bool found = false;
    for (const obs::LedgerEntry* e : cluster.ledger()->entries()) {
      if (e->started_step < wave) continue;
      const std::uint64_t d = e->started_step - wave;
      if (!found || d < lag) lag = d;
      found = true;
    }
    if (!found) continue;
    ++waves_scored;
    s.wave_lag += static_cast<double>(lag);
    s.max_wave_lag = std::max(s.max_wave_lag, lag);
  }
  if (waves_scored != 0) s.wave_lag /= static_cast<double>(waves_scored);
  const util::Metrics& nm = cluster.network().metrics();
  s.cdm_bytes = nm.get("net.weight.CDM");
  s.snapshot_bytes = nm.get("daemon.snapshot_bytes");
  s.collections = daemon.collections();
  s.sweeps = daemon.sweeps();
  s.skipped = daemon.skipped_collections() + daemon.skipped_sweeps();
  s.detections = daemon.detections_started();

  bench::RunRecord rec{adaptive ? "ablation_policies.daemon_adaptive"
                                : "ablation_policies.daemon_fixed"};
  rec.field("cycles", s.cycles)
      .field("reclaimed", s.reclaimed)
      .field("mean_e2e", s.mean_e2e)
      .field("p90_e2e", s.p90_e2e)
      .field("wave_lag", s.wave_lag)
      .field("max_wave_lag", s.max_wave_lag)
      .field("cdm_bytes", s.cdm_bytes)
      .field("snapshot_bytes", s.snapshot_bytes)
      .field("bytes_per_cycle", s.bytes_per_cycle())
      .field("collections", s.collections)
      .field("sweeps", s.sweeps)
      .field("skipped", s.skipped)
      .field("detections", s.detections)
      .field("steps", s.steps)
      .field("waves", s.waves)
      .field("leftover", s.leftover)
      .field("audit_errors", s.audit_errors);
  return s;
}

}  // namespace

int main() {
  std::printf("Ablation 1 — forwarding policy (ring mesh)\n");
  std::printf("%4s %6s | %18s | %18s\n", "R", "deps", "children-first",
              "parents-first");
  std::printf("%4s %6s | %8s %9s | %8s %9s\n", "", "", "steps", "cdms",
              "steps", "cdms");
  for (const std::size_t R : {2, 4}) {
    for (const std::size_t D : {10, 50}) {
      const Outcome child = run_policy(true, R, D);
      const Outcome parent = run_policy(false, R, D);
      std::printf("%4zu %6zu | %8llu %9llu | %8llu %9llu%s\n", R, D,
                  static_cast<unsigned long long>(child.steps),
                  static_cast<unsigned long long>(child.cdms),
                  static_cast<unsigned long long>(parent.steps),
                  static_cast<unsigned long long>(parent.cdms),
                  child.converged && parent.converged ? "" : "  (!)");
    }
  }

  std::printf("\nAblation 2 — Union Rule on/off (Figure 1 safety workload)\n");
  for (const bool union_rule : {true, false}) {
    core::Cluster cluster;
    const auto fig = workload::build_figure1(cluster);
    const auto before = core::Oracle::analyze(cluster);
    gc::LgcConfig lgc_cfg;
    lgc_cfg.union_rule = union_rule;
    for (int i = 0; i < 4; ++i) {
      for (ProcessId pid : cluster.process_ids()) {
        const auto r = gc::Lgc::collect(cluster.process(pid), lgc_cfg);
        gc::Adgc::after_collection(cluster.process(pid), r);
      }
      cluster.run_until_quiescent();
    }
    const auto after = core::Oracle::analyze(cluster);
    std::size_t lost = 0;
    for (ObjectId obj : before.live_objects) {
      if (!after.object_exists(obj)) ++lost;
    }
    std::printf("  union_rule=%-5s -> live objects lost: %zu %s\n",
                union_rule ? "on" : "off", lost,
                lost == 0 ? "(safe)" : "(REFERENTIAL INTEGRITY BROKEN)");
    (void)fig;
  }

  std::printf("\nAblation 3 — subsumption filter (repeat detection, same "
              "snapshots)\n");
  {
    core::Cluster cluster;
    const workload::Mesh mesh = workload::build_mesh(cluster, {3, 10});
    cluster.snapshot_all();
    cluster.detect(mesh.head_process, mesh.head);
    cluster.run_until_quiescent();
    const auto first_drops = cluster.metric_total("cycle.drops_subsumed");
    // Same detection id cannot be replayed from outside; but a second
    // detection against the *unchanged* snapshots traverses the identical
    // graph — the per-detection filter keeps the two detections' traffic
    // apart (no false sharing), while duplicated deliveries within one
    // detection (e.g. injected by the network) are absorbed.
    core::ClusterConfig lossy;
    lossy.net.duplicate_probability = 0.8;
    lossy.net.seed = 99;
    core::Cluster dup_cluster{lossy};
    const workload::Mesh dup_mesh = workload::build_mesh(dup_cluster, {3, 10});
    dup_cluster.snapshot_all();
    dup_cluster.detect(dup_mesh.head_process, dup_mesh.head);
    dup_cluster.run_until_quiescent();
    std::printf(
        "  clean run: %llu subsumption drops; 80%% duplication: %llu drops, "
        "cycle still found: %s\n",
        static_cast<unsigned long long>(first_drops),
        static_cast<unsigned long long>(
            dup_cluster.metric_total("cycle.drops_subsumed")),
        dup_cluster.cycles_found().empty() ? "NO" : "yes");
  }

  std::printf("\nAblation 4 — detector cadence, scored by the cost ledger\n");
  std::printf("%8s | %6s %9s | %8s %8s %8s | %10s\n", "cadence", "cycles",
              "reclaimed", "pending", "detect", "full", "cdm bytes");
  for (const std::uint64_t cadence : {1ull, 2ull, 4ull, 8ull}) {
    const CadenceScore s = run_cadence(cadence);
    std::printf("%8llu | %6llu %9llu | %8.1f %8.1f %8.1f | %10llu%s\n",
                static_cast<unsigned long long>(cadence),
                static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.reclaimed), s.mean_pending,
                s.mean_detect, s.mean_full,
                static_cast<unsigned long long>(s.cdm_weight),
                s.cycles == 0 ? "  (!)" : "");
  }
  std::printf("  (ledger means in steps: pending = unlink -> detection "
              "start, detect = CDM critical path, full = unlink -> "
              "reclaimed; rarer detection defers reclaim onto pending wait, "
              "denser detection spends CDM bytes re-proving live strands)\n");

  std::printf("\nAblation 5 — GcDaemon scheduling: fixed cadence vs adaptive "
              "deferred detection\n");
  std::printf("%-9s | %6s %9s | %8s %8s %8s | %10s %10s %10s | %6s %6s %8s "
              "| %5s %5s\n",
              "policy", "cycles", "reclaimed", "mean e2e", "p90 e2e",
              "wave lag", "cdm bytes", "snap bytes", "bytes/cyc", "sweeps",
              "colls", "skipped", "left", "errs");
  DaemonScore scores[2];
  const char* names[2] = {"fixed", "adaptive"};
  for (int i = 0; i < 2; ++i) {
    const DaemonScore s = run_daemon(/*adaptive=*/i == 1);
    scores[i] = s;
    std::printf("%-9s | %6llu %9llu | %8.1f %8llu %8.1f | %10llu %10llu "
                "%10.0f | %6llu %6llu %8llu | %5llu %5llu%s\n",
                names[i], static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.reclaimed), s.mean_e2e,
                static_cast<unsigned long long>(s.p90_e2e), s.wave_lag,
                static_cast<unsigned long long>(s.cdm_bytes),
                static_cast<unsigned long long>(s.snapshot_bytes),
                s.bytes_per_cycle(),
                static_cast<unsigned long long>(s.sweeps),
                static_cast<unsigned long long>(s.collections),
                static_cast<unsigned long long>(s.skipped),
                static_cast<unsigned long long>(s.leftover),
                static_cast<unsigned long long>(s.audit_errors),
                s.leftover == 0 && s.audit_errors == 0 ? "" : "  (!)");
  }
  const bool cheaper =
      scores[1].bytes_per_cycle() < scores[0].bytes_per_cycle();
  const bool no_slower = scores[1].p90_e2e <= scores[0].p90_e2e;
  std::printf("  adaptive vs fixed at matched safety: %.0f%% of the GC bytes "
              "per reclaimed cycle, p90 e2e %llu vs %llu steps -> %s\n",
              100.0 * scores[1].bytes_per_cycle() /
                  (scores[0].bytes_per_cycle() == 0.0
                       ? 1.0
                       : scores[0].bytes_per_cycle()),
              static_cast<unsigned long long>(scores[1].p90_e2e),
              static_cast<unsigned long long>(scores[0].p90_e2e),
              cheaper && no_slower ? "adaptive wins"
                                   : "ADAPTIVE DOES NOT WIN (!)");
  return 0;
}
