// Ablation — the design choices DESIGN.md calls out, measured one at a
// time on the scalability mesh:
//
//  1. child-before-parent forwarding (§3.3's traversal policy) vs
//     parents-first: both complete; the policy shifts where the traversal
//     pays its visits.
//  2. Union Rule on/off in the LGC: without it the collector reclaims the
//     parent replica of live remote data — the Figure 1 failure, counted
//     as lost live objects.
//  3. The subsumption filter: detections re-run under identical snapshots
//     to show duplicate CDMs being absorbed.
//  4. Detector cadence scored by the cost ledger: how often the cyclic
//     phase runs trades reclaim latency (ledger e2e decomposition) against
//     CDM traffic (ledger per-cycle attribution) — the aggregate counters
//     alone cannot separate "slow because waiting for the detector" from
//     "slow because the strand is long"; the ledger can.
#include <cstdio>

#include "core/cluster.h"
#include "core/oracle.h"
#include "gc/adgc/adgc.h"
#include "gc/lgc/lgc.h"
#include "obs/ledger.h"
#include "workload/figures.h"
#include "workload/mesh.h"

namespace {

using namespace rgc;

struct Outcome {
  std::uint64_t steps{0};
  std::uint64_t cdms{0};
  std::uint64_t forwards{0};
  bool converged{false};
};

Outcome run_policy(bool children_first, std::size_t R, std::size_t D) {
  core::ClusterConfig cfg;
  cfg.detector.children_first = children_first;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(cluster, {R, D});
  const auto before = cluster.network().total_sent("CDM");
  cluster.snapshot_all();
  const auto start = cluster.now();
  cluster.detect(mesh.head_process, mesh.head);
  while (cluster.cycles_found().empty() && !cluster.network().idle()) {
    cluster.step();
  }
  Outcome out;
  out.converged = !cluster.cycles_found().empty();
  out.steps = cluster.now() - start;
  cluster.run_until_quiescent();
  out.cdms = cluster.network().total_sent("CDM") - before;
  out.forwards = cluster.metric_total("cycle.forwards");
  return out;
}

// ---- Ablation 4: detector cadence, costed by the ledger --------------------

struct CadenceScore {
  std::uint64_t cycles{0};         // completed ledger entries
  std::uint64_t reclaimed{0};
  double mean_pending{0};          // steps, unlink -> detection started
  double mean_detect{0};           // steps on the CDM critical path
  double mean_full{0};             // steps, unlink -> candidate reclaimed
  std::uint64_t cdm_weight{0};     // ledger-attributed CDM bytes
  std::uint64_t steps{0};
};

/// Garbage arrives in waves (a fresh mesh every 6 collection rounds) while
/// the cyclic phase runs once every `cadence` rounds.  The ledger then
/// scores the cadence: unlink -> detection-start wait (the latency a rarer
/// detector adds), the CDM critical path itself, and the CDM bytes spent —
/// aggregate counters see only totals, the per-cycle entries expose where
/// the latency actually lives.
CadenceScore run_cadence(std::uint64_t cadence) {
  core::ClusterConfig cfg;
  cfg.net.seed = 5;
  cfg.audit_interval = 0;
  core::Cluster cluster{cfg};

  const std::uint64_t start = cluster.now();
  constexpr int kRounds = 24;
  for (int round = 0; round < kRounds; ++round) {
    if (round % 6 == 0) {  // a new wave of cyclic garbage
      workload::build_mesh(cluster, {4, 6, /*extra_replicas=*/1});
      cluster.run_until_quiescent();
    }
    cluster.collect_all();
    cluster.run_until_quiescent();
    if ((round + 1) % static_cast<int>(cadence) == 0) {
      cluster.snapshot_all();
      for (ProcessId pid : cluster.process_ids()) {
        for (ObjectId suspect : cluster.suspects(pid)) {
          cluster.detect(pid, suspect);
        }
      }
      cluster.run_until_quiescent();
    }
  }
  // Final detection + sweep rounds so every wave's cuts cascade to reclaim.
  cluster.run_full_gc(4);

  CadenceScore score;
  score.steps = cluster.now() - start;
  const obs::Ledger* ledger = cluster.ledger();
  for (const obs::LedgerEntry* e : ledger->entries()) {
    if (!e->complete || e->unlinked_step == 0) continue;
    ++score.cycles;
    score.reclaimed += e->members_reclaimed;
    score.mean_pending +=
        static_cast<double>(e->started_step - e->unlinked_step);
    score.mean_detect += static_cast<double>(e->detect_steps);
    score.mean_full +=
        static_cast<double>(e->reclaimed_step - e->unlinked_step);
    score.cdm_weight += e->cdm_weight;
  }
  if (score.cycles != 0) {
    score.mean_pending /= static_cast<double>(score.cycles);
    score.mean_detect /= static_cast<double>(score.cycles);
    score.mean_full /= static_cast<double>(score.cycles);
  }
  return score;
}

}  // namespace

int main() {
  std::printf("Ablation 1 — forwarding policy (ring mesh)\n");
  std::printf("%4s %6s | %18s | %18s\n", "R", "deps", "children-first",
              "parents-first");
  std::printf("%4s %6s | %8s %9s | %8s %9s\n", "", "", "steps", "cdms",
              "steps", "cdms");
  for (const std::size_t R : {2, 4}) {
    for (const std::size_t D : {10, 50}) {
      const Outcome child = run_policy(true, R, D);
      const Outcome parent = run_policy(false, R, D);
      std::printf("%4zu %6zu | %8llu %9llu | %8llu %9llu%s\n", R, D,
                  static_cast<unsigned long long>(child.steps),
                  static_cast<unsigned long long>(child.cdms),
                  static_cast<unsigned long long>(parent.steps),
                  static_cast<unsigned long long>(parent.cdms),
                  child.converged && parent.converged ? "" : "  (!)");
    }
  }

  std::printf("\nAblation 2 — Union Rule on/off (Figure 1 safety workload)\n");
  for (const bool union_rule : {true, false}) {
    core::Cluster cluster;
    const auto fig = workload::build_figure1(cluster);
    const auto before = core::Oracle::analyze(cluster);
    gc::LgcConfig lgc_cfg;
    lgc_cfg.union_rule = union_rule;
    for (int i = 0; i < 4; ++i) {
      for (ProcessId pid : cluster.process_ids()) {
        const auto r = gc::Lgc::collect(cluster.process(pid), lgc_cfg);
        gc::Adgc::after_collection(cluster.process(pid), r);
      }
      cluster.run_until_quiescent();
    }
    const auto after = core::Oracle::analyze(cluster);
    std::size_t lost = 0;
    for (ObjectId obj : before.live_objects) {
      if (!after.object_exists(obj)) ++lost;
    }
    std::printf("  union_rule=%-5s -> live objects lost: %zu %s\n",
                union_rule ? "on" : "off", lost,
                lost == 0 ? "(safe)" : "(REFERENTIAL INTEGRITY BROKEN)");
    (void)fig;
  }

  std::printf("\nAblation 3 — subsumption filter (repeat detection, same "
              "snapshots)\n");
  {
    core::Cluster cluster;
    const workload::Mesh mesh = workload::build_mesh(cluster, {3, 10});
    cluster.snapshot_all();
    cluster.detect(mesh.head_process, mesh.head);
    cluster.run_until_quiescent();
    const auto first_drops = cluster.metric_total("cycle.drops_subsumed");
    // Same detection id cannot be replayed from outside; but a second
    // detection against the *unchanged* snapshots traverses the identical
    // graph — the per-detection filter keeps the two detections' traffic
    // apart (no false sharing), while duplicated deliveries within one
    // detection (e.g. injected by the network) are absorbed.
    core::ClusterConfig lossy;
    lossy.net.duplicate_probability = 0.8;
    lossy.net.seed = 99;
    core::Cluster dup_cluster{lossy};
    const workload::Mesh dup_mesh = workload::build_mesh(dup_cluster, {3, 10});
    dup_cluster.snapshot_all();
    dup_cluster.detect(dup_mesh.head_process, dup_mesh.head);
    dup_cluster.run_until_quiescent();
    std::printf(
        "  clean run: %llu subsumption drops; 80%% duplication: %llu drops, "
        "cycle still found: %s\n",
        static_cast<unsigned long long>(first_drops),
        static_cast<unsigned long long>(
            dup_cluster.metric_total("cycle.drops_subsumed")),
        dup_cluster.cycles_found().empty() ? "NO" : "yes");
  }

  std::printf("\nAblation 4 — detector cadence, scored by the cost ledger\n");
  std::printf("%8s | %6s %9s | %8s %8s %8s | %10s\n", "cadence", "cycles",
              "reclaimed", "pending", "detect", "full", "cdm bytes");
  for (const std::uint64_t cadence : {1ull, 2ull, 4ull, 8ull}) {
    const CadenceScore s = run_cadence(cadence);
    std::printf("%8llu | %6llu %9llu | %8.1f %8.1f %8.1f | %10llu%s\n",
                static_cast<unsigned long long>(cadence),
                static_cast<unsigned long long>(s.cycles),
                static_cast<unsigned long long>(s.reclaimed), s.mean_pending,
                s.mean_detect, s.mean_full,
                static_cast<unsigned long long>(s.cdm_weight),
                s.cycles == 0 ? "  (!)" : "");
  }
  std::printf("  (ledger means in steps: pending = unlink -> detection "
              "start, detect = CDM critical path, full = unlink -> "
              "reclaimed; rarer detection defers reclaim onto pending wait, "
              "denser detection spends CDM bytes re-proving live strands)\n");
  return 0;
}
