// Figure 8 — Number of CDMs per simulation step (replication factor 4,
// 10 dependencies between replica nodes), replication-aware detector vs
// the modified replication-blind baseline [23].
//
// The paper's claims reproduced here:
//  - "Both algorithms identify the cycle after [the same number of]
//    simulation steps."
//  - "our approach uses less CDMs through the cycle detection process"
//  - "our solution stops traversing the network sooner"
//
// Counts come from the deterministic simulator, not from timing, so this
// binary prints the series directly (google-benchmark's adaptive
// iteration machinery has nothing to measure here).
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster.h"
#include "workload/mesh.h"

namespace {

using namespace rgc;

struct Run {
  std::vector<std::uint64_t> per_step;  // CDMs *sent* during each step
  std::uint64_t detect_step{0};
  std::uint64_t total{0};
};

Run run_detection(core::DetectorMode mode, std::size_t R, std::size_t D) {
  core::ClusterConfig cfg;
  cfg.mode = mode;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(cluster, {R, D});
  cluster.snapshot_all();

  const std::uint64_t start = cluster.now();
  cluster.detect(mesh.head_process, mesh.head);
  while (cluster.cycles_found().empty() && !cluster.network().idle()) {
    cluster.step();
  }
  const std::uint64_t found_at = cluster.now();
  // Drain stragglers so the totals cover the whole detection.
  cluster.run_until_quiescent();

  Run run;
  run.detect_step = found_at - start;
  for (std::uint64_t s = start; s <= cluster.now(); ++s) {
    run.per_step.push_back(cluster.network().sent_at_step("CDM", s));
    run.total += run.per_step.back();
  }
  return run;
}

}  // namespace

int main() {
  constexpr std::size_t kR = 4;
  constexpr std::size_t kD = 10;
  std::printf(
      "Figure 8 — CDMs per simulation step (replication factor %zu, "
      "%zu dependencies)\n\n",
      kR, kD);

  const Run ours = run_detection(core::DetectorMode::kReplicationAware, kR, kD);
  const Run base = run_detection(core::DetectorMode::kBaseline, kR, kD);

  const std::size_t span = std::max(ours.per_step.size(), base.per_step.size());
  std::printf("%6s %12s %12s\n", "step", "ours", "baseline");
  for (std::size_t s = 0; s < span; ++s) {
    const std::uint64_t o = s < ours.per_step.size() ? ours.per_step[s] : 0;
    const std::uint64_t b = s < base.per_step.size() ? base.per_step[s] : 0;
    if (o == 0 && b == 0) continue;
    std::printf("%6zu %12llu %12llu\n", s, static_cast<unsigned long long>(o),
                static_cast<unsigned long long>(b));
  }
  std::printf("\n%-34s %12s %12s\n", "", "ours", "baseline");
  std::printf("%-34s %12llu %12llu\n", "cycle detected at step",
              static_cast<unsigned long long>(ours.detect_step),
              static_cast<unsigned long long>(base.detect_step));
  std::printf("%-34s %12llu %12llu\n", "total CDMs issued",
              static_cast<unsigned long long>(ours.total),
              static_cast<unsigned long long>(base.total));
  bench::RunRecord{"fig8"}
      .field("R", kR)
      .field("deps", kD)
      .field("ours_detect_step", ours.detect_step)
      .field("base_detect_step", base.detect_step)
      .field("ours_cdms", ours.total)
      .field("base_cdms", base.total);

  std::printf(
      "\npaper: both detect at the same step; ours issues fewer CDMs.\n"
      "reproduced: same step (+-1) = %s, fewer CDMs = %s (%.2fx)\n",
      (ours.detect_step <= base.detect_step + 1 &&
       base.detect_step <= ours.detect_step + 1)
          ? "yes"
          : "NO",
      ours.total < base.total ? "yes" : "NO",
      static_cast<double>(base.total) / static_cast<double>(ours.total));
  return 0;
}
