// Million-object scale harness: arena heap + discrete-event scheduler.
//
// Exercises the two PR-scale claims end to end, at cluster sizes the
// paper's simulator never reached:
//
//   1. The arena/SoA heap sustains million-object populations: build rate
//      (objects/sec through the full Cluster::new_object path) and GC mark
//      throughput (collect_all over the entire live population) stay flat
//      as the same 2^20 objects are spread over 16, 64, then 256
//      processes.
//   2. The discrete-event scheduler turns idle virtual time into O(events)
//      work: stepping an idle cluster with advance() must beat the
//      step()-by-step loop by >= 10x in steps/sec (the acceptance floor;
//      both schedules execute identical audits at identical virtual
//      steps).
//
// Peak RSS (VmHWM) is sampled after each configuration.  Note it is a
// process-lifetime high-water mark: configurations run in ascending size,
// so each row reports the largest footprint seen *so far*.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/cluster.h"
#include "util/metrics.h"

namespace {

using namespace rgc;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kTotalObjects = 1u << 20;  // >= 1M across the cluster
constexpr std::uint64_t kChain = 64;               // objects per rooted chain
constexpr std::uint64_t kIdleSteps = 1u << 16;     // idle-stretch sample size

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

void run_config(std::size_t processes) {
  core::ClusterConfig cfg;
  // Scale-appropriate auditing: shallow invariant checks at a coarse
  // cadence, scheduled deep audits off.  A deep audit is a full O(heap)
  // mark — at 2^20 objects the default every-512-steps cadence costs the
  // same under both schedules and would swamp the scheduler comparison
  // below (it measured ~1x with defaults, all of it audit marking).
  cfg.audit_interval = 4096;
  cfg.audit_deep_every = 0;
  core::Cluster cluster{cfg};
  std::vector<ProcessId> pids;
  pids.reserve(processes);
  for (std::size_t i = 0; i < processes; ++i) {
    pids.push_back(cluster.add_process());
  }

  // ---- Build: rooted chains of kChain objects, round-robin over owners --
  const std::uint64_t per_process = kTotalObjects / processes;
  const auto build_t0 = Clock::now();
  for (const ProcessId pid : pids) {
    ObjectId prev{};
    for (std::uint64_t i = 0; i < per_process; ++i) {
      const ObjectId obj = cluster.new_object(pid);
      if (i % kChain == 0) {
        cluster.add_root(pid, obj);
      } else {
        cluster.add_ref(pid, prev, obj);
      }
      prev = obj;
    }
  }
  const double build_s = secs_since(build_t0);

  // A ring of cross-process links so the cluster carries real protocol
  // state (scions/stubs/propagation pairs) into the audits below.
  for (std::size_t i = 0; i < processes; ++i) {
    const ProcessId src = pids[i];
    const ProcessId dst = pids[(i + 1) % processes];
    const ObjectId shared = cluster.new_object(src);
    cluster.add_root(src, shared);
    cluster.propagate(shared, src, dst);
  }
  cluster.run_until_quiescent();

  // ---- GC throughput: one full mark/sweep round over every process ------
  const auto gc_t0 = Clock::now();
  cluster.collect_all();
  const double gc_s = secs_since(gc_t0);
  cluster.run_until_quiescent();

  // ---- Idle stepping: step()-by-step vs discrete-event advance() --------
  const auto step_t0 = Clock::now();
  for (std::uint64_t i = 0; i < kIdleSteps; ++i) cluster.step();
  const double step_s = secs_since(step_t0);

  const auto adv_t0 = Clock::now();
  cluster.advance(kIdleSteps);
  const double adv_s = secs_since(adv_t0);

  const double build_rate = static_cast<double>(kTotalObjects) / build_s;
  const double gc_rate = static_cast<double>(cluster.total_objects()) / gc_s;
  const double step_rate = static_cast<double>(kIdleSteps) / step_s;
  const double adv_rate = static_cast<double>(kIdleSteps) / adv_s;
  const double speedup = adv_rate / step_rate;
  const std::uint64_t rss = util::peak_rss_bytes();

  std::printf("%5zu %9llu %12.0f %12.0f %12.0f %12.0f %8.1fx %9.1f %s\n",
              processes,
              static_cast<unsigned long long>(cluster.total_objects()),
              build_rate, gc_rate, step_rate, adv_rate, speedup,
              static_cast<double>(rss) / (1024.0 * 1024.0),
              speedup >= 10.0 ? "yes" : "NO");

  bench::RunRecord{"cluster_scale"}
      .field("processes", processes)
      .field("total_objects", cluster.total_objects())
      .field("build_objects_per_sec", build_rate)
      .field("gc_objects_per_sec", gc_rate)
      .field("step_steps_per_sec", step_rate)
      .field("advance_steps_per_sec", adv_rate)
      .field("idle_speedup", speedup)
      .field("idle_speedup_ok", speedup >= 10.0)
      .field("peak_rss_bytes", rss);
}

}  // namespace

int main() {
  std::printf(
      "cluster_scale — %llu objects across {16, 64, 256} processes\n"
      "(idle-skip acceptance: advance() >= 10x step() steps/sec)\n\n",
      static_cast<unsigned long long>(kTotalObjects));
  std::printf("%5s %9s %12s %12s %12s %12s %9s %9s %s\n", "procs", "objects",
              "build/s", "gc_mark/s", "step/s", "advance/s", "speedup",
              "rss_MiB", ">=10x?");
  for (const std::size_t processes : {16, 64, 256}) {
    run_config(processes);
  }
  return 0;
}
