// Figure 9 — Number of issued CDMs as dependencies and replication grow,
// replication-aware detector vs the modified baseline [23].
//
// Two sweeps:
//  1. The paper's matrix — replicated nodes R ∈ {2,3,4} × dependencies
//     D ∈ {10,25,50,100} on the ring mesh.  Reproduced claims: CDM counts
//     grow with D, ours is consistently cheaper.
//  2. A replication-factor sweep (4 processes, every strand object
//     replicated onto `factor` of them) probing the paper's second claim
//     — "the benefits from using our solution are more significant when
//     we increase the number of replication nodes".  Here the baseline's
//     flooding grows with the factor while ours stays linear — on the
//     densest factors the bounded baseline flood fails to even converge
//     (marked '*'), which is the claim in its starkest form.
#include <cstdio>

#include "bench_util.h"
#include "core/cluster.h"
#include "workload/mesh.h"

namespace {

using namespace rgc;

struct Totals {
  std::uint64_t cdms{0};
  bool converged{false};
};

Totals run(core::DetectorMode mode, const workload::MeshSpec& spec) {
  core::ClusterConfig cfg;
  cfg.mode = mode;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(cluster, spec);
  const std::uint64_t before = cluster.network().total_sent("CDM");
  cluster.snapshot_all();
  cluster.detect(mesh.head_process, mesh.head);
  while (cluster.cycles_found().empty() && !cluster.network().idle()) {
    cluster.step();
  }
  const bool converged = !cluster.cycles_found().empty();
  cluster.run_until_quiescent();
  return {cluster.network().total_sent("CDM") - before, converged};
}

}  // namespace

int main() {
  std::printf("Figure 9 — total CDMs issued per cycle detection\n\n");
  std::printf("-- sweep 1: ring mesh, R processes x D dependencies --\n");
  std::printf("%4s %6s %10s %10s %8s\n", "R", "deps", "ours", "baseline",
              "ratio");
  for (const std::size_t R : {2, 3, 4}) {
    for (const std::size_t D : {10, 25, 50, 100}) {
      const Totals ours = run(core::DetectorMode::kReplicationAware, {R, D});
      const Totals base = run(core::DetectorMode::kBaseline, {R, D});
      bench::RunRecord{"fig9"}
          .field("sweep", "ring")
          .field("R", R)
          .field("deps", D)
          .field("ours_cdms", ours.cdms)
          .field("ours_converged", ours.converged)
          .field("base_cdms", base.cdms)
          .field("base_converged", base.converged);
      std::printf("%4zu %6zu %9llu%s %9llu%s %8.2f\n", R, D,
                  static_cast<unsigned long long>(ours.cdms),
                  ours.converged ? "" : "*",
                  static_cast<unsigned long long>(base.cdms),
                  base.converged ? "" : "*",
                  static_cast<double>(base.cdms) /
                      static_cast<double>(ours.cdms));
    }
  }

  std::printf(
      "\n-- sweep 2: replication-factor sweep (4 processes, each strand\n"
      "   object replicated onto `factor` nodes), D = 25 --\n");
  std::printf("%8s %10s %10s %8s\n", "factor", "ours", "baseline", "ratio");
  for (const std::size_t factor : {2, 3, 4}) {
    const workload::MeshSpec spec{4, 25, factor - 2};
    const Totals ours = run(core::DetectorMode::kReplicationAware, spec);
    const Totals base = run(core::DetectorMode::kBaseline, spec);
    bench::RunRecord{"fig9"}
        .field("sweep", "factor")
        .field("factor", factor)
        .field("deps", std::size_t{25})
        .field("ours_cdms", ours.cdms)
        .field("ours_converged", ours.converged)
        .field("base_cdms", base.cdms)
        .field("base_converged", base.converged);
    std::printf("%8zu %9llu%s %9llu%s %8.2f\n", factor,
                static_cast<unsigned long long>(ours.cdms),
                ours.converged ? "" : "*",
                static_cast<unsigned long long>(base.cdms),
                base.converged ? "" : "*",
                static_cast<double>(base.cdms) /
                    static_cast<double>(ours.cdms));
  }
  std::printf(
      "\n'*' = detection did not converge (the bounded baseline flood burns\n"
      "through leaf replicas it cannot revisit; ours forwards instead).\n");
  return 0;
}
