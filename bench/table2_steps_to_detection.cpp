// Table 2 — Number of simulation steps until cycle detection, for
// replication factor R ∈ {2,3,4} × dependencies D ∈ {10,25,50,100}.
//
// Paper values (identical for both algorithms):
//
//     R\D |  10   25   50  100
//     ----+--------------------
//      2  |  25   55  105  205        (≈ R·D + 3(R−1) + 2)
//      3  |  38   83  158  308
//      4  |  51  111  221  411
//
// Reproduced claims: steps grow linearly in D, the slope grows with R,
// and *both* algorithms detect at the same step (§4: "both algorithms
// take the same amount of time to identify the cycle").  Our simulator
// resolves one *triangle* (a propagation link plus its reference link)
// per CDM hop, so absolute step counts are about half the paper's, whose
// simulator appears to charge one step per link; the shape — and the
// equality between the algorithms — is what carries the claim.
#include <cstdio>

#include "bench_util.h"
#include "core/cluster.h"
#include "workload/mesh.h"

namespace {

using namespace rgc;

std::uint64_t steps_to_detection(core::DetectorMode mode, std::size_t R,
                                 std::size_t D, bool defer_props = false) {
  core::ClusterConfig cfg;
  cfg.mode = mode;
  cfg.detector.defer_props = defer_props;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(cluster, {R, D});
  cluster.snapshot_all();
  const std::uint64_t start = cluster.now();
  cluster.detect(mesh.head_process, mesh.head);
  while (cluster.cycles_found().empty() && !cluster.network().idle()) {
    cluster.step();
  }
  if (cluster.cycles_found().empty()) return 0;  // did not converge
  return cluster.now() - start;
}

}  // namespace

int main() {
  std::printf("Table 2 — steps until cycle detection\n\n");
  const std::size_t paper[3][4] = {
      {25, 55, 105, 205}, {38, 83, 158, 308}, {51, 111, 221, 411}};
  const std::size_t deps[] = {10, 25, 50, 100};

  std::printf("%4s %6s %8s %10s %10s %8s %14s\n", "R", "deps", "ours",
              "baseline", "refs-1st", "paper", "equal(+-1)?");
  bool all_equal = true;
  for (std::size_t ri = 0; ri < 3; ++ri) {
    const std::size_t R = ri + 2;
    for (std::size_t di = 0; di < 4; ++di) {
      const std::size_t D = deps[di];
      const auto ours = steps_to_detection(
          core::DetectorMode::kReplicationAware, R, D);
      const auto base = steps_to_detection(core::DetectorMode::kBaseline, R, D);
      const auto per_link = steps_to_detection(
          core::DetectorMode::kReplicationAware, R, D, /*defer_props=*/true);
      const bool eq = ours <= base + 1 && base <= ours + 1;
      all_equal = all_equal && eq;
      bench::RunRecord{"table2"}
          .field("R", R)
          .field("deps", D)
          .field("ours_steps", ours)
          .field("base_steps", base)
          .field("refs_first_steps", per_link)
          .field("paper_steps", paper[ri][di]);
      std::printf("%4zu %6zu %8llu %10llu %10llu %8zu %14s\n", R, D,
                  static_cast<unsigned long long>(ours),
                  static_cast<unsigned long long>(base),
                  static_cast<unsigned long long>(per_link), paper[ri][di],
                  eq ? "yes" : "NO");
    }
  }
  std::printf(
      "\nshape check: steps linear in D with slope proportional to R; both\n"
      "algorithms equal to within one step at every point: %s (the\n"
      "baseline's flat matching resolves its last element one hop after\n"
      "our closure-based matching).  The refs-first traversal variant\n"
      "(defer_props) lands on identical counts: graph summarization makes\n"
      "in-process hops free, so each CDM resolves a whole triangle (two\n"
      "dependency links) regardless of policy — our absolute counts are\n"
      "therefore ~half the paper's, whose simulator charged one step per\n"
      "link (R=4, D=100: 199-200 here vs 411 there; same shape).\n",
      all_equal ? "yes" : "NO");
  return 0;
}
