// LGC hot-path microbench: trace throughput and collection-time allocations.
//
// The paper's dominant GC cost is local tracing (Figures 6/7): every
// collection walks the whole live graph, and every cluster round does it
// once per process.  This bench pins down the two quantities the mark-epoch
// work optimizes:
//
//   - trace throughput — objects visited per second of Lgc::collect wall
//     time on a 100k-object local mesh (fanout 4, fully live, one root);
//   - allocations per collection — global operator new invocations during
//     one steady-state collection (the seed implementation allocated a
//     std::map node per visited object per trace family).
//
// A third section times Cluster::run_full_gc on a 16-process garbage mesh,
// serial vs. the phase-split parallel path, and checks both reclaim the
// same number of objects.
//
// Each datapoint is also emitted as JSONL via RGC_BENCH_JSONL (see
// bench_util.h).  scripts/bench_all.sh collects a whole run; the committed
// BENCH_seed.json holds the pre-optimization baseline for comparison.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <thread>

#include "bench_util.h"
#include "core/cluster.h"
#include "core/daemon.h"
#include "core/oracle.h"
#include "gc/lgc/lgc.h"
#include "net/network.h"
#include "obs/ledger.h"
#include "obs/recorder.h"
#include "rm/process.h"
#include "workload/figures.h"
#include "workload/mesh.h"

// ---- Global allocation counter ---------------------------------------------
// Counts every operator new in the binary (thread-safe: the parallel
// full-gc section allocates from worker threads).

namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(n, std::memory_order_relaxed);
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace rgc;
using Clock = std::chrono::steady_clock;

constexpr std::uint64_t kObjects = 100000;
constexpr int kFanout = 4;
constexpr int kWarmup = 2;
constexpr int kRuns = 10;

/// 100k-object local mesh: object i references i+1, i+7, i+31, i+107
/// (mod n), one root at 0 — everything live, maximal trace work.
void build_local_mesh(rm::Process& proc) {
  static constexpr std::uint64_t kStrides[kFanout] = {1, 7, 31, 107};
  for (std::uint64_t i = 0; i < kObjects; ++i) {
    proc.create_object(ObjectId{i});
  }
  for (std::uint64_t i = 0; i < kObjects; ++i) {
    rm::Object* obj = proc.heap().find(ObjectId{i});
    for (std::uint64_t s : kStrides) {
      obj->refs.push_back(rm::Ref{ObjectId{(i + s) % kObjects}, kNoProcess});
    }
  }
  proc.add_root(ObjectId{0});
}

void bench_trace() {
  net::Network net;
  rm::Process proc{ProcessId{0}, net};
  net.attach(ProcessId{0}, [](const net::Envelope&) {});
  build_local_mesh(proc);

  gc::LgcConfig cfg;
  std::uint64_t traced = 0;
  for (int i = 0; i < kWarmup; ++i) traced = gc::Lgc::collect(proc, cfg).traced;

  const std::uint64_t allocs_before = g_allocs.load();
  const std::uint64_t bytes_before = g_alloc_bytes.load();
  const auto a0 = Clock::now();
  gc::Lgc::collect(proc, cfg);
  const double one_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - a0).count();
  const std::uint64_t allocs_per = g_allocs.load() - allocs_before;
  const std::uint64_t bytes_per = g_alloc_bytes.load() - bytes_before;

  const auto t0 = Clock::now();
  for (int i = 0; i < kRuns; ++i) gc::Lgc::collect(proc, cfg);
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();
  const double objs_per_sec =
      static_cast<double>(traced) * kRuns / (secs > 0 ? secs : 1e-9);

  std::printf("lgc_hotpath.trace   objects=%llu traced=%llu\n",
              static_cast<unsigned long long>(kObjects),
              static_cast<unsigned long long>(traced));
  std::printf("  one collection: %.2f ms, %llu allocs, %llu bytes\n", one_ms,
              static_cast<unsigned long long>(allocs_per),
              static_cast<unsigned long long>(bytes_per));
  std::printf("  throughput: %.0f traced objects/sec\n", objs_per_sec);

  bench::RunRecord rec{"lgc_hotpath.trace"};
  rec.field("objects", kObjects)
      .field("fanout", kFanout)
      .field("traced_per_collection", traced)
      .field("runs", kRuns)
      .field("objects_per_sec", objs_per_sec)
      .field("allocs_per_collection", allocs_per)
      .field("alloc_bytes_per_collection", bytes_per)
      .field("collection_ms", one_ms);
}

// ---- Parallel full-GC section ----------------------------------------------

struct FullGcRun {
  double ms{0};
  core::Cluster::FullGcStats stats;
  std::uint64_t objects_left{0};
  std::uint64_t steps{0};
};

/// Builds a 16-process cluster holding a garbage mesh (kept small — the
/// exhaustive detection sweep is quadratic in strand length) plus a large
/// live local graph per process, so every GC round has real per-process
/// trace and summarize work for the pool to spread, then runs the driver.
FullGcRun run_full_gc_once(std::size_t threads) {
  constexpr std::uint64_t kBallastPerProcess = 20000;
  core::ClusterConfig cfg;
  cfg.net.seed = 42;
  cfg.threads = threads;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(
      cluster, {.processes = 16, .dependencies = 6, .extra_replicas = 1});
  for (ProcessId pid : cluster.process_ids()) {
    ObjectId prev = cluster.new_object(pid);
    cluster.add_root(pid, prev);
    for (std::uint64_t i = 1; i < kBallastPerProcess; ++i) {
      const ObjectId next = cluster.new_object(pid);
      cluster.add_ref(pid, prev, next);
      prev = next;
    }
  }
  cluster.run_until_quiescent();
  (void)mesh;

  FullGcRun run;
  const auto t0 = Clock::now();
  run.stats = cluster.run_full_gc();
  run.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  run.objects_left = cluster.total_objects();
  run.steps = cluster.now();
  return run;
}

void bench_full_gc() {
  // Warm-up run keeps one-time costs (lazy metrics, code paging) out of the
  // serial datapoint.
  run_full_gc_once(1);

  const FullGcRun serial = run_full_gc_once(1);
  const FullGcRun parallel = run_full_gc_once(4);
  const bool identical =
      serial.stats.reclaimed_objects == parallel.stats.reclaimed_objects &&
      serial.stats.cycles_found == parallel.stats.cycles_found &&
      serial.stats.rounds == parallel.stats.rounds &&
      serial.objects_left == parallel.objects_left &&
      serial.steps == parallel.steps;
  const double speedup = parallel.ms > 0 ? serial.ms / parallel.ms : 0;
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("\nlgc_hotpath.full_gc  processes=16 reclaimed=%llu cycles=%llu\n",
              static_cast<unsigned long long>(serial.stats.reclaimed_objects),
              static_cast<unsigned long long>(serial.stats.cycles_found));
  std::printf("  threads=1: %.2f ms   threads=4: %.2f ms   speedup: %.2fx"
              " (host has %u hardware threads)\n",
              serial.ms, parallel.ms, speedup, hw);
  // The hard guarantee is determinism: the thread count must never change
  // what gets collected.  Wall-clock gains need actual cores — on a 1-core
  // host speedup hovers around 1.0 by construction.
  std::printf("  identical results: %s\n", identical ? "yes" : "NO — BUG");

  bench::RunRecord rec{"lgc_hotpath.full_gc"};
  rec.field("processes", 16)
      .field("reclaimed", serial.stats.reclaimed_objects)
      .field("cycles_found", serial.stats.cycles_found)
      .field("serial_ms", serial.ms)
      .field("parallel_ms", parallel.ms)
      .field("speedup", speedup)
      .field("hw_threads", hw)
      .field("identical", identical ? 1 : 0);
}

// ---- Summarization section -------------------------------------------------

/// One process holding a dense local mesh plus a band of scions, stubs and
/// replicas — the seed count is what made the per-seed-trace reference
/// summarizer O(seeds × graph).  Returns the process id carrying the load.
ProcessId build_summarize_workload(core::Cluster& cluster) {
  constexpr std::uint64_t kSumObjects = 20000;
  constexpr std::uint64_t kBand = 40;  // scions, stubs and replicas each
  static constexpr std::uint64_t kStrides[] = {1, 7, 31, 107};

  const ProcessId p0 = cluster.add_process();
  const ProcessId p1 = cluster.add_process();

  // The same fully-cyclic strided mesh as bench_trace — one giant SCC, so
  // the condensation path gets no free lunch from trivial components.
  std::vector<ObjectId> mesh;
  mesh.reserve(kSumObjects);
  for (std::uint64_t i = 0; i < kSumObjects; ++i) {
    mesh.push_back(cluster.new_object(p0));
  }
  for (std::uint64_t i = 0; i < kSumObjects; ++i) {
    rm::Object* obj = cluster.process(p0).heap().find(mesh[i]);
    for (std::uint64_t s : kStrides) {
      obj->refs.push_back(rm::Ref{mesh[(i + s) % kSumObjects], kNoProcess});
    }
  }
  cluster.add_root(p0, mesh[0]);

  const std::uint64_t spread = kSumObjects / kBand;
  for (std::uint64_t k = 0; k < kBand; ++k) {
    const ObjectId at = mesh[k * spread];
    // Replica: a mesh object propagated out (in/out props on p0).
    cluster.propagate(at, p0, p1);
    // Stub: a p1-owned object remote-referenced from the mesh.
    const ObjectId remote = cluster.new_object(p1);
    cluster.add_root(p1, remote);
    workload::make_remote_ref(cluster, p0, at, p1, remote);
    // Scion: a p1 holder remote-referencing into the mesh.
    workload::make_remote_ref(cluster, p1, remote, p0, mesh[k * spread + 1]);
  }
  cluster.run_until_quiescent();
  return p0;
}

void bench_summarize() {
  constexpr int kSumRuns = 5;
  core::ClusterConfig cfg;
  cfg.net.seed = 11;
  core::Cluster cluster{cfg};
  const ProcessId p0 = build_summarize_workload(cluster);
  const rm::Process& proc = cluster.process(p0);

  // Cold snapshot: one-pass SCC summarizer vs the retained per-seed
  // reference, identical output required.
  gc::ProcessSummary fast = gc::summarize(proc);        // warm-up + scratch
  gc::ProcessSummary ref = gc::summarize_reference(proc);
  const bool identical = fast == ref;

  const auto r0 = Clock::now();
  for (int i = 0; i < kSumRuns; ++i) ref = gc::summarize_reference(proc);
  const double ref_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - r0).count() /
      kSumRuns;

  const std::uint64_t allocs_before = g_allocs.load();
  const auto f0 = Clock::now();
  for (int i = 0; i < kSumRuns; ++i) fast = gc::summarize(proc);
  const double fast_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - f0).count() /
      kSumRuns;
  const std::uint64_t allocs_per = (g_allocs.load() - allocs_before) / kSumRuns;
  const double speedup = fast_ms > 0 ? ref_ms / fast_ms : 0;

  // Warm re-snapshot: nothing mutated between rounds, so the dirty-epoch
  // cache must make the second snapshot_all round practically free.
  cluster.snapshot_all();
  const auto w0 = Clock::now();
  cluster.snapshot_all();
  const double warm_us =
      std::chrono::duration<double, std::micro>(Clock::now() - w0).count();
  const std::uint64_t reused = cluster.metric_total("cycle.summarize_reused");

  std::printf("\nlgc_hotpath.summarize  scions=%zu stubs=%zu replicas=%zu\n",
              fast.scions.size(), fast.stubs.size(), fast.replicas.size());
  std::printf("  cold: reference %.2f ms, one-pass %.2f ms — %.1fx"
              " (%llu allocs/run)\n",
              ref_ms, fast_ms, speedup,
              static_cast<unsigned long long>(allocs_per));
  std::printf("  warm re-snapshot (all clean): %.0f us, %llu summaries reused\n",
              warm_us, static_cast<unsigned long long>(reused));
  std::printf("  identical output: %s\n", identical ? "yes" : "NO — BUG");

  bench::RunRecord rec{"lgc_hotpath.summarize"};
  rec.field("scions", fast.scions.size())
      .field("stubs", fast.stubs.size())
      .field("replicas", fast.replicas.size())
      .field("reference_ms", ref_ms)
      .field("one_pass_ms", fast_ms)
      .field("speedup", speedup)
      .field("allocs_per_run", allocs_per)
      .field("warm_resnapshot_us", warm_us)
      .field("identical", identical ? 1 : 0);
}

/// Dirty-fraction sweep: a 16-process cluster where only a fraction of the
/// processes mutate between snapshot rounds.  Cost should scale with the
/// dirty fraction, not the cluster size.
void bench_summarize_dirty_sweep() {
  constexpr std::uint64_t kBallast = 10000;
  constexpr std::size_t kProcs = 16;
  core::ClusterConfig cfg;
  cfg.net.seed = 23;
  core::Cluster cluster{cfg};
  std::vector<ObjectId> heads;
  for (std::size_t p = 0; p < kProcs; ++p) {
    const ProcessId pid = cluster.add_process();
    ObjectId prev = cluster.new_object(pid);
    cluster.add_root(pid, prev);
    heads.push_back(prev);
    for (std::uint64_t i = 1; i < kBallast; ++i) {
      const ObjectId next = cluster.new_object(pid);
      cluster.add_ref(pid, prev, next);
      prev = next;
    }
  }
  cluster.run_until_quiescent();
  cluster.snapshot_all();  // populate every cache

  std::printf("\nlgc_hotpath.summarize_dirty  processes=%zu"
              " objects_per_process=%llu\n",
              kProcs, static_cast<unsigned long long>(kBallast));
  bench::RunRecord rec{"lgc_hotpath.summarize_dirty"};
  rec.field("processes", kProcs).field("objects_per_process", kBallast);

  const std::vector<ProcessId> pids = cluster.process_ids();
  for (const std::size_t dirty : {std::size_t{0}, kProcs / 4, kProcs / 2, kProcs}) {
    // Touch a root on the first `dirty` processes: epoch bump, no
    // structural change, so snapshot work is purely re-summarization.
    for (std::size_t p = 0; p < dirty; ++p) {
      cluster.add_root(pids[p], heads[p]);
    }
    const auto t0 = Clock::now();
    cluster.snapshot_all();
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    const auto gauge = cluster.network().metrics().gauge_value(
        "cycle.summary_dirty_fraction");
    std::printf("  dirty %2zu/%zu: %.2f ms (gauge %llu%%)\n", dirty, kProcs,
                ms, static_cast<unsigned long long>(gauge));
    char field[32];
    std::snprintf(field, sizeof(field), "dirty_%zu_of_%zu_ms", dirty, kProcs);
    rec.field(field, ms);
  }
}

// ---- Auditor overhead section ----------------------------------------------

struct AuditedRun {
  double ms{0};
  std::uint64_t traced{0};
  std::uint64_t audits{0};
  std::uint64_t deep_audits{0};
  std::uint64_t steps{0};
};

/// Runs a fixed mesh workload — collection rounds interleaved with network
/// steps — under the given scheduled-audit cadence (0 = auditor off) and
/// returns wall time plus total objects traced by LGC.
AuditedRun run_audited(std::uint64_t audit_interval) {
  constexpr std::uint64_t kBallast = 10000;
  constexpr int kRounds = 6;
  constexpr int kStepsPerRound = 32;

  core::ClusterConfig cfg;
  cfg.net.seed = 7;
  cfg.audit_interval = audit_interval;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(
      cluster, {.processes = 8, .dependencies = 4, .extra_replicas = 1});
  (void)mesh;
  for (ProcessId pid : cluster.process_ids()) {
    ObjectId prev = cluster.new_object(pid);
    cluster.add_root(pid, prev);
    for (std::uint64_t i = 1; i < kBallast; ++i) {
      const ObjectId next = cluster.new_object(pid);
      cluster.add_ref(pid, prev, next);
      prev = next;
    }
  }
  cluster.run_until_quiescent();

  AuditedRun run;
  const auto t0 = Clock::now();
  for (int round = 0; round < kRounds; ++round) {
    cluster.collect_all();
    for (int s = 0; s < kStepsPerRound; ++s) cluster.step();
  }
  run.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  for (ProcessId pid : cluster.process_ids()) {
    if (const util::Histogram* h = cluster.process(pid).metrics().find_histogram(
            "lgc.traced_per_collection")) {
      run.traced += h->sum();
    }
  }
  run.audits = cluster.auditor().metrics().get("audit.runs");
  run.deep_audits = cluster.auditor().metrics().get("audit.deep_runs");
  run.steps = cluster.now();
  return run;
}

/// Best of `n` runs — wall-clock minima are the standard noise filter on a
/// shared host; traced counts are deterministic per arm, so the fastest
/// run is representative.
AuditedRun best_of(std::uint64_t audit_interval, int n) {
  AuditedRun best;
  for (int i = 0; i < n; ++i) {
    const AuditedRun r = run_audited(audit_interval);
    if (best.ms == 0 || r.ms < best.ms) best = r;
  }
  return best;
}

void bench_audit() {
  // Warm-up covers lazy metrics registration and code paging for both arms.
  run_audited(0);

  const AuditedRun off = best_of(0, 3);
  const AuditedRun on = best_of(64, 3);  // the default scheduled cadence
  const double off_rate =
      static_cast<double>(off.traced) / (off.ms > 0 ? off.ms : 1e-9);
  const double on_rate =
      static_cast<double>(on.traced) / (on.ms > 0 ? on.ms : 1e-9);
  const double overhead_pct =
      off_rate > 0 ? (off_rate - on_rate) / off_rate * 100.0 : 0;

  std::printf("\nlgc_hotpath.audit  processes=8 traced=%llu per arm\n",
              static_cast<unsigned long long>(off.traced));
  std::printf("  auditor off: %.2f ms   on (interval 64): %.2f ms"
              " (%llu audits, %llu deep, %llu steps)\n",
              off.ms, on.ms, static_cast<unsigned long long>(on.audits),
              static_cast<unsigned long long>(on.deep_audits),
              static_cast<unsigned long long>(on.steps));
  std::printf("  trace throughput: %.0f -> %.0f objs/ms (%.2f%% overhead)\n",
              off_rate, on_rate, overhead_pct);

  bench::RunRecord rec{"lgc_hotpath.audit"};
  rec.field("audit_interval", 64)
      .field("traced", off.traced)
      .field("off_ms", off.ms)
      .field("on_ms", on.ms)
      .field("audits", on.audits)
      .field("deep_audits", on.deep_audits)
      .field("off_traced_per_ms", off_rate)
      .field("on_traced_per_ms", on_rate)
      .field("overhead_pct", overhead_pct);
}

// ---- Flight-recorder overhead section --------------------------------------

struct RecordedBench {
  double ms{0};
  std::uint64_t traced{0};
  std::uint64_t appended{0};
  std::uint64_t dropped{0};
};

/// The bench_audit workload (collection rounds interleaved with network
/// steps over an 8-process mesh) with the flight recorder at the given ring
/// capacity (0 = recorder off).  The recorder sees every send/deliver plus
/// a sweep event per collection — the always-on hot path being priced.
RecordedBench run_recorded(std::size_t record_capacity) {
  constexpr std::uint64_t kBallast = 10000;
  constexpr int kRounds = 6;
  constexpr int kStepsPerRound = 32;

  core::ClusterConfig cfg;
  cfg.net.seed = 7;
  cfg.audit_interval = 0;  // isolate the recorder: auditor off
  cfg.record_capacity = record_capacity;
  core::Cluster cluster{cfg};
  const workload::Mesh mesh = workload::build_mesh(
      cluster, {.processes = 8, .dependencies = 4, .extra_replicas = 1});
  (void)mesh;
  for (ProcessId pid : cluster.process_ids()) {
    ObjectId prev = cluster.new_object(pid);
    cluster.add_root(pid, prev);
    for (std::uint64_t i = 1; i < kBallast; ++i) {
      const ObjectId next = cluster.new_object(pid);
      cluster.add_ref(pid, prev, next);
      prev = next;
    }
  }
  cluster.run_until_quiescent();

  RecordedBench run;
  const auto t0 = Clock::now();
  for (int round = 0; round < kRounds; ++round) {
    cluster.collect_all();
    for (int s = 0; s < kStepsPerRound; ++s) cluster.step();
  }
  run.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  for (ProcessId pid : cluster.process_ids()) {
    if (const util::Histogram* h = cluster.process(pid).metrics().find_histogram(
            "lgc.traced_per_collection")) {
      run.traced += h->sum();
    }
  }
  if (const obs::FlightRecorder* rec = cluster.recorder()) {
    run.appended = rec->appended();
    run.dropped = rec->dropped();
  }
  return run;
}

RecordedBench best_recorded(std::size_t record_capacity, int n) {
  RecordedBench best;
  for (int i = 0; i < n; ++i) {
    const RecordedBench r = run_recorded(record_capacity);
    if (best.ms == 0 || r.ms < best.ms) best = r;
  }
  return best;
}

void bench_recorder() {
  constexpr std::size_t kCapacity = 4096;  // the always-on default
  run_recorded(kCapacity);  // warm-up

  const RecordedBench off = best_recorded(0, 3);
  const RecordedBench on = best_recorded(kCapacity, 3);
  const double off_rate =
      static_cast<double>(off.traced) / (off.ms > 0 ? off.ms : 1e-9);
  const double on_rate =
      static_cast<double>(on.traced) / (on.ms > 0 ? on.ms : 1e-9);
  const double overhead_pct =
      off_rate > 0 ? (off_rate - on_rate) / off_rate * 100.0 : 0;

  std::printf("\nlgc_hotpath.recorder  processes=8 traced=%llu per arm\n",
              static_cast<unsigned long long>(off.traced));
  std::printf("  recorder off: %.2f ms   on (capacity %zu): %.2f ms"
              " (%llu events, %llu overwritten)\n",
              off.ms, kCapacity, on.ms,
              static_cast<unsigned long long>(on.appended),
              static_cast<unsigned long long>(on.dropped));
  std::printf("  trace throughput: %.0f -> %.0f objs/ms"
              " (%.2f%% overhead, target < 5%%)\n",
              off_rate, on_rate, overhead_pct);

  bench::RunRecord rec{"lgc_hotpath.recorder"};
  rec.field("capacity", kCapacity)
      .field("traced", off.traced)
      .field("off_ms", off.ms)
      .field("on_ms", on.ms)
      .field("events_appended", on.appended)
      .field("events_overwritten", on.dropped)
      .field("off_traced_per_ms", off_rate)
      .field("on_traced_per_ms", on_rate)
      .field("overhead_pct", overhead_pct);
}

// ---- Cost-ledger overhead section ------------------------------------------

struct LedgeredBench {
  double ms{0};
  std::uint64_t reclaimed{0};
  std::uint64_t cycles{0};
  std::uint64_t completed{0};
};

/// Full cyclic GC over a 12-process garbage mesh under chaos transport
/// (drop + duplicate + jitter) with the cost ledger at the given capacity
/// (0 = ledger off).  Chaos maximizes the ledger's hot path: every CDM
/// send/deliver/drop/duplicate walks the observer, and retries multiply
/// the message count per detection.
LedgeredBench run_ledgered(std::size_t ledger_capacity) {
  core::ClusterConfig cfg;
  cfg.net.seed = 11;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = 4;
  // Mild chaos: each detection crosses the strand hop by hop, so the
  // per-hop drop rate compounds — 1% already aborts a sizable fraction of
  // detections and forces retry rounds without starving the workload.
  cfg.net.drop_probability = 0.01;
  cfg.net.duplicate_probability = 0.05;
  cfg.audit_interval = 0;    // isolate the ledger: auditor off
  cfg.record_capacity = 0;   // ... and recorder off
  cfg.ledger_capacity = ledger_capacity;
  core::Cluster cluster{cfg};

  LedgeredBench run;
  const auto t0 = Clock::now();
  // Each epoch lays down a fresh garbage mesh and collects it to empty —
  // sustained CDM/Cut/ADGC traffic through the ledger's observer hot path,
  // with enough completed cycles per epoch to churn the completed ring.
  // Both arms do identical work: the ledger never alters behaviour.
  for (int epoch = 0; epoch < 6; ++epoch) {
    workload::build_mesh(
        cluster, {.processes = 8, .dependencies = 10, .extra_replicas = 1});
    cluster.run_until_quiescent();
    const auto stats = cluster.run_full_gc(4);
    run.reclaimed += stats.reclaimed_objects;
    run.cycles += stats.cycles_found;
  }
  run.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  if (const obs::Ledger* ledger = cluster.ledger()) {
    run.completed = ledger->completed();
  }
  return run;
}

LedgeredBench best_ledgered(std::size_t ledger_capacity, int n) {
  LedgeredBench best;
  for (int i = 0; i < n; ++i) {
    const LedgeredBench r = run_ledgered(ledger_capacity);
    if (best.ms == 0 || r.ms < best.ms) best = r;
  }
  return best;
}

void bench_ledger() {
  constexpr std::size_t kCapacity = 256;  // the always-on default
  run_ledgered(kCapacity);  // warm-up

  const LedgeredBench off = best_ledgered(0, 3);
  const LedgeredBench on = best_ledgered(kCapacity, 3);
  const double overhead_pct =
      off.ms > 0 ? (on.ms - off.ms) / off.ms * 100.0 : 0;

  std::printf("\nlgc_hotpath.ledger  6 mesh epochs, chaos drop 1%% dup 5%%"
              " reclaimed=%llu cycles=%llu per arm\n",
              static_cast<unsigned long long>(off.reclaimed),
              static_cast<unsigned long long>(off.cycles));
  std::printf("  ledger off: %.2f ms   on (capacity %zu): %.2f ms"
              " (%llu cycles costed)\n",
              off.ms, kCapacity, on.ms,
              static_cast<unsigned long long>(on.completed));
  std::printf("  full-gc overhead: %.2f%% (target < 5%%)\n", overhead_pct);

  bench::RunRecord rec{"lgc_hotpath.ledger"};
  rec.field("capacity", kCapacity)
      .field("reclaimed", off.reclaimed)
      .field("cycles_found", off.cycles)
      .field("cycles_costed", on.completed)
      .field("off_ms", off.ms)
      .field("on_ms", on.ms)
      .field("overhead_pct", overhead_pct);
}

// ---- Daemon scheduling section ---------------------------------------------

struct DaemonBench {
  double ms{0};
  std::uint64_t collections{0};
  std::uint64_t sweeps{0};
  std::uint64_t skipped{0};
  std::uint64_t leftover{0};
};

/// Background-daemon GC over garbage-mesh waves, fixed cadence vs the
/// adaptive deferred policy.  Identical workload and simulated horizon;
/// only the scheduler decides how much GC work actually runs, so the
/// wall-clock delta is the cost of the work the fixed cadence pays for and
/// the adaptive policy proves unnecessary (the oracle check keeps both
/// honest: every wave must still be fully reclaimed).
DaemonBench run_daemon_bench(bool adaptive) {
  core::ClusterConfig cfg;
  cfg.net.seed = 11;
  cfg.audit_interval = 0;   // isolate the scheduler: auditor off
  cfg.record_capacity = 0;  // ... recorder off
  cfg.ledger_capacity = 0;  // ... ledger off
  core::Cluster cluster{cfg};
  core::DaemonConfig dcfg;
  dcfg.adaptive.enabled = adaptive;
  dcfg.adaptive.max_floating_age = 0;  // no auditor, no age gauge
  core::GcDaemon daemon{cluster, dcfg};

  DaemonBench run;
  const auto t0 = Clock::now();
  for (int epoch = 0; epoch < 4; ++epoch) {
    workload::build_mesh(
        cluster, {.processes = 6, .dependencies = 8, .extra_replicas = 1});
    daemon.run(240);
  }
  // Endgame: the daemon alone finishes the job.  Long enough for several
  // sweep rounds even at the maximum deferral (no auditor here, so the
  // forced-sweep valve is off and completeness rides on the ceiling rule).
  daemon.run(1440);
  cluster.run_until_quiescent();
  run.ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  run.collections = daemon.collections();
  run.sweeps = daemon.sweeps();
  run.skipped = daemon.skipped_collections() + daemon.skipped_sweeps();
  run.leftover = core::Oracle::analyze(cluster).garbage_objects().size();
  return run;
}

DaemonBench best_daemon(bool adaptive, int n) {
  DaemonBench best;
  for (int i = 0; i < n; ++i) {
    const DaemonBench r = run_daemon_bench(adaptive);
    if (best.ms == 0 || r.ms < best.ms) best = r;
  }
  return best;
}

void bench_daemon() {
  run_daemon_bench(true);  // warm-up
  const DaemonBench fixed = best_daemon(false, 3);
  const DaemonBench adaptive = best_daemon(true, 3);

  std::printf("\nlgc_hotpath.daemon  4 mesh waves, 2400 steps background GC"
              " (leftover fixed=%llu adaptive=%llu)\n",
              static_cast<unsigned long long>(fixed.leftover),
              static_cast<unsigned long long>(adaptive.leftover));
  std::printf("  fixed:    %.2f ms  %llu collections, %llu sweeps\n", fixed.ms,
              static_cast<unsigned long long>(fixed.collections),
              static_cast<unsigned long long>(fixed.sweeps));
  std::printf("  adaptive: %.2f ms  %llu collections, %llu sweeps"
              " (%llu due-points skipped)\n",
              adaptive.ms, static_cast<unsigned long long>(adaptive.collections),
              static_cast<unsigned long long>(adaptive.sweeps),
              static_cast<unsigned long long>(adaptive.skipped));
  std::printf("  background GC wall time: %.0f%% of fixed\n",
              fixed.ms > 0 ? adaptive.ms / fixed.ms * 100.0 : 0.0);

  bench::RunRecord rec{"lgc_hotpath.daemon"};
  rec.field("fixed_ms", fixed.ms)
      .field("adaptive_ms", adaptive.ms)
      .field("fixed_collections", fixed.collections)
      .field("adaptive_collections", adaptive.collections)
      .field("fixed_sweeps", fixed.sweeps)
      .field("adaptive_sweeps", adaptive.sweeps)
      .field("skipped", adaptive.skipped)
      .field("fixed_leftover", fixed.leftover)
      .field("adaptive_leftover", adaptive.leftover);
}

}  // namespace

int main() {
  std::printf("LGC hot path: trace throughput & allocation profile\n\n");
  bench_trace();
  bench_summarize();
  bench_summarize_dirty_sweep();
  bench_full_gc();
  bench_audit();
  bench_recorder();
  bench_ledger();
  bench_daemon();
  return 0;
}
