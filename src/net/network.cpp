#include "net/network.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string_view>

#include "util/log.h"
#include "util/trace.h"

namespace rgc::net {

Network::Network(NetworkConfig config)
    : config_(config), rng_(config.seed ^ 0xa5a5a5a5a5a5a5a5ULL) {
  if (config_.min_delay < 1) config_.min_delay = 1;
  if (config_.max_delay < config_.min_delay) config_.max_delay = config_.min_delay;
  dropped_ = metrics_.counter("net.dropped");
  duplicated_ = metrics_.counter("net.duplicated");
  queue_depth_ = metrics_.gauge("net.queue_depth");
  queue_depth_hist_ = &metrics_.histogram("net.queue_depth");
}

void Network::attach(ProcessId process, Handler handler) {
  handlers_[process] = std::move(handler);
  dead_.erase(process);
}

void Network::detach(ProcessId process) {
  handlers_.erase(process);
  dead_.insert(process);
  // A crash loses everything addressed to the process *and* everything it
  // had in flight: those messages existed only in kernel buffers of a node
  // that no longer exists.
  const std::size_t purged = purge_in_flight([process](const InFlight& m) {
    return m.src == process || m.dst == process;
  });
  if (purged != 0) {
    RGC_TRACE("net: detach ", to_string(process), " purged ", purged,
              " in-flight messages");
  }
}

void Network::add_observer(Observer* observer) {
  if (observer == nullptr) return;
  if (std::find(extra_observers_.begin(), extra_observers_.end(), observer) ==
      extra_observers_.end()) {
    extra_observers_.push_back(observer);
  }
}

void Network::remove_observer(Observer* observer) {
  extra_observers_.erase(std::remove(extra_observers_.begin(),
                                     extra_observers_.end(), observer),
                         extra_observers_.end());
}

void Network::emit_send(const Envelope& env) {
  if (observer_ != nullptr) observer_->on_send(env);
  for (Observer* o : extra_observers_) o->on_send(env);
}

void Network::emit_deliver(const Envelope& env) {
  if (observer_ != nullptr) observer_->on_deliver(env);
  for (Observer* o : extra_observers_) o->on_deliver(env);
}

void Network::emit_drop(const Envelope& env) {
  if (observer_ != nullptr) observer_->on_drop(env);
  for (Observer* o : extra_observers_) o->on_drop(env);
}

void Network::emit_duplicate(const Envelope& env) {
  if (observer_ != nullptr) observer_->on_duplicate(env);
  for (Observer* o : extra_observers_) o->on_duplicate(env);
}

std::uint32_t Network::group_of(ProcessId p) const {
  const auto it = partition_group_.find(p);
  return it == partition_group_.end() ? 0 : it->second;
}

bool Network::reachable(ProcessId src, ProcessId dst) const {
  if (dead_.contains(src) || dead_.contains(dst)) return false;
  return group_of(src) == group_of(dst);
}

void Network::set_partition(const std::vector<std::vector<ProcessId>>& groups) {
  partition_group_.clear();
  for (std::size_t g = 0; g < groups.size(); ++g) {
    for (const ProcessId p : groups[g]) {
      partition_group_[p] = static_cast<std::uint32_t>(g);
    }
  }
  // Messages already crossing the cut are lost, not parked: a partition in
  // this model severs links outright, and heal() re-delivers nothing.
  purge_in_flight([this](const InFlight& m) {
    return group_of(m.src) != group_of(m.dst);
  });
}

void Network::clear_partition() { partition_group_.clear(); }

std::size_t Network::purge_in_flight(
    const std::function<bool(const InFlight&)>& pred) {
  std::size_t purged = 0;
  auto& trace = util::Trace::instance();
  for (auto bucket = in_flight_.begin(); bucket != in_flight_.end();) {
    auto& queue = bucket->second;
    for (auto it = queue.begin(); it != queue.end();) {
      if (!pred(*it)) {
        ++it;
        continue;
      }
      KindCounters& kc = counters_for(it->msg->kind());
      dropped_.inc();
      kc.dropped.inc();
      --kc.in_flight;
      --in_flight_count_;
      ++purged;
      trace.instant("net.purge", it->src, 0, false);
      emit_drop(Envelope{it->src, it->dst, it->seq, it->sent_at, it->msg.get()});
      it = queue.erase(it);
    }
    bucket = queue.empty() ? in_flight_.erase(bucket) : std::next(bucket);
  }
  return purged;
}

Network::KindCounters& Network::counters_for(const char* kind) {
  auto it = kind_counters_.find(std::string_view{kind});
  if (it == kind_counters_.end()) {
    const std::string k{kind};
    KindCounters handles{static_cast<std::uint32_t>(kind_counters_.size()),
                         metrics_.counter("net.sent." + k),
                         metrics_.counter("net.delivered." + k),
                         metrics_.counter("net.weight." + k),
                         metrics_.counter("net.dropped." + k),
                         metrics_.counter("net.duplicated." + k)};
    it = kind_counters_.emplace(k, handles).first;
  }
  return it->second;
}

std::uint64_t Network::send(ProcessId src, ProcessId dst, MessagePtr msg) {
  assert(msg != nullptr);
  const char* kind = msg->kind();
  KindCounters& counters = counters_for(kind);
  counters.sent.inc();
  counters.weight.inc(msg->weight());
  if (per_step_sent_.size() <= now_) per_step_sent_.resize(now_ + 1);
  auto& at_step = per_step_sent_[now_];
  if (at_step.size() <= counters.id) at_step.resize(counters.id + 1, 0);
  ++at_step[counters.id];

  const std::uint64_t seq = ++link_seq_[{src, dst}];
  auto& trace = util::Trace::instance();
  if (trace.enabled()) {
    trace.instant("net.send", src, /*parent=*/0, /*with_id=*/false,
                  {util::TraceArg::str("kind", kind),
                   util::TraceArg::num("dst", raw(dst)),
                   util::TraceArg::num("seq", seq),
                   util::TraceArg::num("weight", msg->weight())});
  }
  emit_send(Envelope{src, dst, seq, now_, msg.get()});
  // Fault model: a dead destination or a partition cut loses the message at
  // the source, reliable or not — "reliable" means the transport never loses
  // it, not that it outlives the endpoints or a severed link.
  if (dead_.contains(dst) ||
      (!partition_group_.empty() && group_of(src) != group_of(dst))) {
    dropped_.inc();
    counters.dropped.inc();
    trace.instant("net.drop", src, 0, false);
    emit_drop(Envelope{src, dst, seq, now_, msg.get()});
    return seq;
  }
  if (!msg->reliable() && rng_.chance(config_.drop_probability)) {
    dropped_.inc();
    counters.dropped.inc();
    trace.instant("net.drop", src, 0, false);
    emit_drop(Envelope{src, dst, seq, now_, msg.get()});
    return seq;
  }
  enqueue(src, dst, std::move(msg), seq, now_, counters);
  return seq;
}

void Network::enqueue(ProcessId src, ProcessId dst, MessagePtr msg,
                      std::uint64_t seq, std::uint64_t sent_at,
                      KindCounters& counters) {
  const auto delay =
      config_.min_delay +
      (config_.max_delay > config_.min_delay
           ? rng_.below(config_.max_delay - config_.min_delay + 1)
           : 0);
  std::uint64_t due = now_ + delay;
  if (msg->reliable()) {
    // Per-link FIFO: a reliable message never overtakes an earlier one.
    auto& horizon = reliable_due_[{src, dst}];
    due = std::max(due, horizon);
    horizon = due;
  } else if (rng_.chance(config_.duplicate_probability)) {
    duplicated_.inc();
    counters.duplicated.inc();
    emit_duplicate(Envelope{src, dst, seq, sent_at, msg.get()});
    // The clone lands one step after the original, so (src, dst, seq) stays
    // unique within every due bucket.
    in_flight_[now_ + delay + 1].push_back(
        {src, dst, seq, sent_at, msg->clone()});
    ++in_flight_count_;
    ++counters.in_flight;
  }
  in_flight_[due].push_back({src, dst, seq, sent_at, std::move(msg)});
  ++in_flight_count_;
  ++counters.in_flight;
}

bool Network::step() {
  ++now_;
  util::Trace::set_sim_now(now_);
  auto& trace = util::Trace::instance();
  // Drain every due bucket (normally exactly one: delays are >= 1, so no
  // bucket can age past its step unnoticed).  Delivery order matches the
  // old full sort: due step ascending (map order), then link, then send
  // order — (src, dst, seq) is unique within a bucket, so sorting the
  // bucket reproduces it exactly.
  while (!in_flight_.empty() && in_flight_.begin()->first <= now_) {
    std::vector<InFlight> due = std::move(in_flight_.begin()->second);
    in_flight_.erase(in_flight_.begin());
    in_flight_count_ -= due.size();
    std::sort(due.begin(), due.end(), [](const InFlight& a, const InFlight& b) {
      return std::tie(a.src, a.dst, a.seq) < std::tie(b.src, b.dst, b.seq);
    });
    for (auto& m : due) {
      auto it = handlers_.find(m.dst);
      if (it == handlers_.end()) {
        throw std::logic_error("message addressed to unattached process " +
                               to_string(m.dst));
      }
      KindCounters& kc = counters_for(m.msg->kind());
      kc.delivered.inc();
      --kc.in_flight;
      // Handler runs in the destination's context: RGC_LOG lines and trace
      // events it emits are attributed to (step, dst).
      const util::ScopedProcess ctx{m.dst};
      if (trace.enabled()) {
        trace.instant("net.deliver", m.dst, 0, false,
                      {util::TraceArg::str("kind", m.msg->kind()),
                       util::TraceArg::num("src", raw(m.src)),
                       util::TraceArg::num("latency", now_ - m.sent_at)});
      }
      RGC_TRACE("net: deliver ", m.msg->kind(), " ", to_string(m.src), "->",
                to_string(m.dst));
      const Envelope env{m.src, m.dst, m.seq, m.sent_at, m.msg.get()};
      emit_deliver(env);
      if (tap_) tap_(env);
      it->second(env);
    }
  }

  const std::uint64_t depth = in_flight_count_;
  queue_depth_.set(depth);
  queue_depth_hist_->record(depth);
  trace.counter("net.queue_depth", kNoProcess, depth);
  return in_flight_count_ != 0;
}

void Network::skip_to(std::uint64_t target) {
  if (target <= now_) return;
  assert(in_flight_.empty() || in_flight_.begin()->first > target);
  now_ = target;
  util::Trace::set_sim_now(now_);
}

std::uint64_t Network::run_until_quiescent(std::uint64_t max_steps) {
  const std::uint64_t start = now_;
  while (in_flight_count_ != 0 && now_ - start < max_steps) {
    // Jump to just before the next delivery (clamped to the step budget so
    // a far-future due date cannot overshoot it), then execute that step.
    const std::uint64_t due = in_flight_.begin()->first;
    const std::uint64_t limit = start + max_steps;
    if (due > now_ + 1) skip_to(std::min(due, limit) - 1);
    step();
  }
  return now_ - start;
}

std::uint64_t Network::sent_at_step(const std::string& kind,
                                    std::uint64_t step) const {
  if (step >= per_step_sent_.size()) return 0;
  auto it = kind_counters_.find(kind);
  if (it == kind_counters_.end()) return 0;
  const auto& at = per_step_sent_[step];
  return it->second.id < at.size() ? at[it->second.id] : 0;
}

std::uint64_t Network::total_sent(const std::string& kind) const {
  return metrics_.get("net.sent." + kind);
}

std::vector<Network::KindFlow> Network::kind_flows() const {
  std::vector<KindFlow> out;
  out.reserve(kind_counters_.size());
  for (const auto& [kind, c] : kind_counters_) {
    out.push_back(KindFlow{kind, c.sent.value(), c.delivered.value(),
                           c.dropped.value(), c.duplicated.value(),
                           c.in_flight});
  }
  return out;
}

std::uint64_t Network::in_flight_of(std::string_view kind) const {
  auto it = kind_counters_.find(kind);
  return it == kind_counters_.end() ? 0 : it->second.in_flight;
}

}  // namespace rgc::net
