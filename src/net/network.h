// Step-driven asynchronous network simulator.
//
// This is the C++ equivalent of the CLOS simulator the paper used for its
// scalability experiments (§4): "Each simulation step represents a virtual
// time interval when processes can read incoming messages and compute
// outgoing messages."  A message sent during step k becomes deliverable at
// step k + delay (delay >= 1); handlers invoked during step() may send new
// messages, which are then delivered in a later step — never the current
// one.  Delivery order within a step is deterministic.
//
// Optional fault injection (drop / duplicate / jitter) exercises the
// protocols' tolerance of an unreliable transport; it is off by default.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "net/message.h"
#include "util/ids.h"
#include "util/metrics.h"
#include "util/rng.h"

namespace rgc::net {

struct NetworkConfig {
  std::uint64_t seed{1};
  /// Uniform delivery delay range in steps, inclusive.  min_delay >= 1.
  std::uint32_t min_delay{1};
  std::uint32_t max_delay{1};
  /// Probability that a message is silently lost.
  double drop_probability{0.0};
  /// Probability that a message is delivered twice.
  double duplicate_probability{0.0};
};

class Network {
 public:
  using Handler = std::function<void(const Envelope&)>;

  /// Transport-event observer: sees every send/deliver/drop/duplicate with
  /// the full envelope, before any protocol handler runs.  Used by the
  /// health auditor for message-conservation accounting; default methods do
  /// nothing so observers implement only what they need.
  class Observer {
   public:
    virtual ~Observer() = default;
    virtual void on_send(const Envelope&) {}
    virtual void on_deliver(const Envelope&) {}
    virtual void on_drop(const Envelope&) {}
    virtual void on_duplicate(const Envelope&) {}
  };

  /// Per-kind cumulative flow counts plus the live in-flight population.
  /// Conservation invariant: sent + duplicated == delivered + dropped +
  /// in_flight at every step boundary.
  struct KindFlow {
    std::string kind;
    std::uint64_t sent{0};
    std::uint64_t delivered{0};
    std::uint64_t dropped{0};
    std::uint64_t duplicated{0};
    std::uint64_t in_flight{0};
  };

  explicit Network(NetworkConfig config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Registers the handler that receives messages addressed to `process`.
  /// Must be called before the first delivery to that process.  Re-attaching
  /// a previously detached (crashed) process clears its dead marker — the
  /// restart path.
  void attach(ProcessId process, Handler handler);

  /// Crash semantics: removes the handler, marks the process dead, and purges
  /// every in-flight message to or from it (each purge is accounted as a
  /// drop, so per-kind conservation still holds).  Until a later attach(),
  /// sends addressed to the process are dropped at the source — a crashed
  /// node neither receives nor buffers.
  void detach(ProcessId process);

  /// True when `process` was detached by detach() and not re-attached.
  [[nodiscard]] bool is_dead(ProcessId process) const {
    return dead_.contains(process);
  }

  /// Installs a partition mask: processes in different groups cannot talk.
  /// Messages crossing the mask are dropped deterministically at send time,
  /// and crossing in-flight messages are purged immediately (loss semantics
  /// — heal re-delivers nothing).  Processes not named in any group belong
  /// to group 0.
  void set_partition(const std::vector<std::vector<ProcessId>>& groups);

  /// Lifts the partition mask.  Nothing lost during the partition comes
  /// back; recovery is the protocols' job (Cluster::heal drives it).
  void clear_partition();

  [[nodiscard]] bool partitioned() const noexcept {
    return !partition_group_.empty();
  }

  /// Snapshot of the current mask (pid -> group id; absent = group 0).
  [[nodiscard]] const std::map<ProcessId, std::uint32_t>& partition_groups()
      const noexcept {
    return partition_group_;
  }

  /// True when a message sent from `src` can currently reach `dst`: both
  /// endpoints alive and on the same side of any partition mask.
  [[nodiscard]] bool reachable(ProcessId src, ProcessId dst) const;

  /// Observer invoked for every delivery, before the destination handler —
  /// a wire tap for tests and protocol tracing.  Not part of any protocol.
  void set_tap(Handler tap) { tap_ = std::move(tap); }

  /// Installs (or clears, with nullptr) the primary transport-event
  /// observer.  The observer is borrowed, not owned; it must outlive the
  /// network or be detached first.
  void set_observer(Observer* observer) { observer_ = observer; }

  /// Registers an additional observer; all observers see every event, the
  /// primary first and then the extras in registration order (a fixed,
  /// deterministic sequence).  Same borrowing rules as set_observer.
  void add_observer(Observer* observer);
  void remove_observer(Observer* observer);

  /// Queues a message; it is deliverable no earlier than the next step.
  /// Returns the per-(src,dst)-link sequence number assigned to it (the
  /// same value the receiver sees in Envelope::seq), which protocols use
  /// for causality horizons.
  std::uint64_t send(ProcessId src, ProcessId dst, MessagePtr msg);

  /// Delivers every message due at the next step and advances virtual time.
  /// Returns true while messages remain in flight after the step.
  bool step();

  /// Earliest virtual step at which an in-flight message becomes
  /// deliverable, or UINT64_MAX when the network is idle.  The
  /// discrete-event scheduler's clamp.
  [[nodiscard]] std::uint64_t next_due() const noexcept {
    return in_flight_.empty() ? ~std::uint64_t{0} : in_flight_.begin()->first;
  }

  /// Advances virtual time straight to `target` without executing the
  /// intervening steps.  Only legal when no message is due at or before
  /// `target` (next_due() > target): the skipped stretch is provably
  /// silent, so the jump is observationally identical to stepping through
  /// it — same deliveries at the same virtual steps.
  void skip_to(std::uint64_t target);

  /// Drains the network by discrete-event stepping: jumps virtual time to
  /// each next due step instead of executing empty steps one by one, until
  /// no messages are in flight or max_steps of virtual time elapsed.
  /// Returns the virtual steps advanced — identical to the step count the
  /// old step-by-step loop reported, at O(deliveries) cost instead of
  /// O(virtual time).
  std::uint64_t run_until_quiescent(std::uint64_t max_steps = 100000);

  /// Virtual time (number of completed steps).
  [[nodiscard]] std::uint64_t now() const noexcept { return now_; }

  [[nodiscard]] const NetworkConfig& config() const noexcept {
    return config_;
  }

  [[nodiscard]] bool idle() const noexcept { return in_flight_count_ == 0; }

  /// Cumulative counters: "net.sent.<kind>", "net.delivered.<kind>",
  /// "net.dropped", "net.weight.<kind>"; gauge "net.queue_depth" and the
  /// like-named histogram sampled once per step.
  [[nodiscard]] const util::Metrics& metrics() const noexcept { return metrics_; }
  util::Metrics& metrics() noexcept { return metrics_; }

  /// Messages currently in flight.
  [[nodiscard]] std::size_t in_flight() const noexcept { return in_flight_count_; }

  /// Number of messages of `kind` *sent during* step `step` (for Figure 8's
  /// per-step CDM series).  Steps with no such sends report zero.
  [[nodiscard]] std::uint64_t sent_at_step(const std::string& kind,
                                           std::uint64_t step) const;

  /// Total messages of `kind` sent so far.
  [[nodiscard]] std::uint64_t total_sent(const std::string& kind) const;

  /// Flow accounting for every message kind seen so far, kind-sorted.
  [[nodiscard]] std::vector<KindFlow> kind_flows() const;

  /// Messages of `kind` currently in flight (zero for unseen kinds).
  [[nodiscard]] std::uint64_t in_flight_of(std::string_view kind) const;

 private:
  struct InFlight {
    ProcessId src;
    ProcessId dst;
    std::uint64_t seq;
    std::uint64_t sent_at;
    MessagePtr msg;
  };

  /// Per-kind counter handles resolved once per kind instead of one
  /// string-concatenation + map lookup per message (the Metrics::add hot
  /// path fix), plus the kind's small interned id — the per-step send
  /// series indexes by it, so the send path never touches a string map.
  struct KindCounters {
    std::uint32_t id;
    util::Counter sent;
    util::Counter delivered;
    util::Counter weight;
    util::Counter dropped;
    util::Counter duplicated;
    /// Live population of this kind in the due-bucket queue.
    std::uint64_t in_flight{0};
  };
  KindCounters& counters_for(const char* kind);

  void enqueue(ProcessId src, ProcessId dst, MessagePtr msg, std::uint64_t seq,
               std::uint64_t sent_at, KindCounters& counters);

  [[nodiscard]] std::uint32_t group_of(ProcessId p) const;

  /// Removes every in-flight message matching `pred`, accounting each as a
  /// drop (counters + observer), in deterministic (due, send-order) order.
  /// Returns the number purged.
  std::size_t purge_in_flight(const std::function<bool(const InFlight&)>& pred);

  /// Fan an event out to the primary observer, then the extras.
  void emit_send(const Envelope& env);
  void emit_deliver(const Envelope& env);
  void emit_drop(const Envelope& env);
  void emit_duplicate(const Envelope& env);

  NetworkConfig config_;
  util::Rng rng_;
  util::Metrics metrics_;
  std::map<std::string, KindCounters, std::less<>> kind_counters_;
  util::Counter dropped_;
  util::Counter duplicated_;
  util::Gauge queue_depth_;
  util::Histogram* queue_depth_hist_{nullptr};
  std::uint64_t now_{0};
  std::map<ProcessId, Handler> handlers_;
  /// Processes crashed via detach() and not yet re-attached.  Distinct from
  /// "never attached": delivering to the latter is still a programming error
  /// (logic_error), while sends to the former are dropped at the source.
  std::set<ProcessId> dead_;
  /// Active partition mask (empty = fully connected).  Absent pid = group 0.
  std::map<ProcessId, std::uint32_t> partition_group_;
  Handler tap_;
  Observer* observer_{nullptr};
  /// Secondary observers (add_observer), notified after observer_.
  std::vector<Observer*> extra_observers_;
  std::map<std::pair<ProcessId, ProcessId>, std::uint64_t> link_seq_;
  /// Latest due-step handed to a reliable message per link; later reliable
  /// sends are clamped to at least this value to guarantee per-link FIFO.
  std::map<std::pair<ProcessId, ProcessId>, std::uint64_t> reliable_due_;
  /// Due-step bucket queue: each step drains only the buckets that are due
  /// instead of scanning (and re-sorting) everything in flight.  Buckets
  /// hold messages in send order and are sorted by link at delivery time,
  /// reproducing the (due, src, dst, seq) order of the old full sort.
  std::map<std::uint64_t, std::vector<InFlight>> in_flight_;
  std::size_t in_flight_count_{0};
  /// per_step_sent_[step][kind id] -> count of sends.
  std::vector<std::vector<std::uint64_t>> per_step_sent_;
};

}  // namespace rgc::net
