// Message envelope for the simulated asynchronous network.
//
// The network is payload-agnostic: every protocol (coherence, acyclic DGC,
// cycle detection, baseline detector) subclasses Message.  kind() names the
// message for metrics (the paper's Figures 8/9 count CDMs; we count every
// kind), weight() approximates the serialized size in abstract units so
// network-overhead comparisons can be made by bytes as well as by count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "util/ids.h"

namespace rgc::net {

class Message {
 public:
  Message() = default;
  Message(const Message&) = default;
  Message& operator=(const Message&) = default;
  virtual ~Message() = default;

  /// Stable short name used as a metrics key, e.g. "CDM", "Propagate".
  [[nodiscard]] virtual const char* kind() const noexcept = 0;

  /// Abstract serialized size (element count), 1 by default.
  [[nodiscard]] virtual std::size_t weight() const noexcept { return 1; }

  /// Deep copy; required because the network can duplicate messages when
  /// fault injection is enabled.
  [[nodiscard]] virtual std::unique_ptr<Message> clone() const = 0;

  /// Reliable messages model a TCP-like transport: never dropped, never
  /// duplicated, FIFO per link.  The RM substrate's coherence and mutator
  /// traffic (Propagate, Invoke) and the acyclic protocol's irrevocable
  /// decisions (Unreachable, Reclaim) are reliable; the GC's asynchronous
  /// advisory traffic (NewSetStubs, CDMs) tolerates loss and reordering and
  /// is exposed to fault injection.
  [[nodiscard]] virtual bool reliable() const noexcept { return false; }
};

using MessagePtr = std::unique_ptr<Message>;

/// What a process's handler receives.
struct Envelope {
  ProcessId src{kNoProcess};
  ProcessId dst{kNoProcess};
  /// Per (src,dst) link sequence number, assigned at send time.  Protocols
  /// use it for causality guards (e.g. "delete this scion only if the
  /// NewSetStubs sender had already seen the propagate that created it").
  std::uint64_t seq{0};
  /// Simulation step at which the message was sent.
  std::uint64_t sent_at{0};
  const Message* msg{nullptr};
};

}  // namespace rgc::net
