// Acyclic replication-aware distributed GC (§2.2.3).
//
// Reference-listing extended with the Union Rule, three message kinds:
//
//  - NewSetStubs — after a local collection, the stub set is shipped to
//    every peer that may hold matching scions; scions without a matching
//    stub are deleted.  A causality horizon (the sender's delivered-seq of
//    Propagate messages *from* the peer) protects scions created by a
//    propagate the sender had not yet seen — without it, an in-flight
//    propagation would race the stub list and leave a dangling chain.
//
//  - Unreachable — a replica reachable only through its propagation lists
//    (not from roots or scions, and with every child replica already
//    reported unreachable) reports upstream to each parent it has not yet
//    told; the parent sets recUmess on the matching outProp entry.  The
//    link UC rides along so a report crossed by a re-propagation is
//    recognized as stale and ignored.
//
//  - Reclaim — when the root of a propagation tree is itself reachable
//    only from its outPropList and every child has reported unreachable,
//    the tree is dismantled: Reclaim flows to every child, which drops the
//    matching inProp entry, forwards Reclaim along its own outProps (whose
//    subtrees reported unreachable too, by induction) and lets the next
//    local collection sweep the replicas.
//
// Reclaim never deletes objects directly — it only unlinks propagation
// entries; the LGC is "ultimately the one that collects objects" (§2.2.3),
// which is what makes the protocol safe against stale reports: a replica
// that became reachable again in the meantime is still anchored by its
// root/scion and survives.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "gc/lgc/lgc.h"
#include "net/message.h"
#include "rm/process.h"
#include "rm/tables.h"
#include "util/ids.h"

namespace rgc::gc {

struct NewSetStubsMsg final : net::Message {
  /// Anchors of the sender's live stubs that designate objects on the
  /// receiving process.
  std::vector<ObjectId> stub_anchors;
  /// Causality horizon: highest Propagate seq the sender had delivered
  /// from the receiver when the stub set was computed.
  std::uint64_t horizon{0};
  /// Sender's collection epoch.  NewSetStubs rides the unreliable plane,
  /// so jitter can deliver an *older* stub set after a newer one; the
  /// receiver ignores any message whose epoch does not advance (a stale
  /// set would otherwise delete a scion whose stub is alive again).
  std::uint64_t epoch{0};
  /// The *final* (empty) announcement to a peer is sent exactly once —
  /// the peer relation is forgotten right after — so unlike the periodic
  /// sets it must not be lost, or the peer's scions leak forever.
  bool final_set{false};
  /// Optional Maheshwari-style distance estimates per anchor (the cycle
  /// candidate heuristic, gc/cycle/heuristics.h) — piggybacked on the
  /// round that already flows to exactly the right peer.
  std::vector<std::pair<ObjectId, std::uint32_t>> distances;

  [[nodiscard]] const char* kind() const noexcept override { return "NewSetStubs"; }
  [[nodiscard]] bool reliable() const noexcept override { return final_set; }
  [[nodiscard]] std::size_t weight() const noexcept override {
    return 1 + stub_anchors.size() + distances.size();
  }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<NewSetStubsMsg>(*this);
  }
};

struct UnreachableMsg final : net::Message {
  ObjectId object{kNoObject};
  /// UC of the inProp link the report is about; the parent ignores the
  /// report unless it matches the outProp's current UC.
  std::uint64_t uc{0};

  [[nodiscard]] const char* kind() const noexcept override { return "Unreachable"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<UnreachableMsg>(*this);
  }
};

struct ReclaimMsg final : net::Message {
  ObjectId object{kNoObject};

  [[nodiscard]] const char* kind() const noexcept override { return "Reclaim"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<ReclaimMsg>(*this);
  }
};

class Adgc {
 public:
  /// Runs the acyclic protocol's send side right after a local collection:
  /// ships NewSetStubs to every stub peer and applies the Union-Rule
  /// reporting rules to every replicated object, based on the collection's
  /// reachability classification.  `distances`, when given, piggybacks
  /// per-peer anchor estimates from the candidate heuristic.
  static void after_collection(
      rm::Process& process, const LgcResult& result,
      const std::map<ProcessId, std::map<ObjectId, std::uint32_t>>*
          distances = nullptr);

  // Receive side, wired by the Cluster dispatcher.
  static void on_new_set_stubs(rm::Process& process, const net::Envelope& env,
                               const NewSetStubsMsg& msg);
  static void on_unreachable(rm::Process& process, const net::Envelope& env,
                             const UnreachableMsg& msg);
  static void on_reclaim(rm::Process& process, const net::Envelope& env,
                         const ReclaimMsg& msg);

  /// Lease/timeout reclamation (Allen & Terriberry-style; docs/FAULTS.md):
  /// retires every scion, inProp and outProp entry whose peer has missed
  /// its lease — last heard more than `timeout` steps before `now` — so
  /// garbage anchored by a dead (or long-partitioned) process becomes
  /// collectable by the normal LGC/ADGC machinery.  Scions go through the
  /// same retirement path as a NewSetStubs deletion ("adgc.scions_deleted"
  /// plus "gc.lease_expirations").  Safety is unconditional: a restarting
  /// process re-registers (Cluster::restart renews leases in both
  /// directions) and re-binds via the reconciliation protocol before anyone
  /// acts on its behalf.  Returns the number of scions retired.
  static std::uint64_t expire_leases(rm::Process& process, std::uint64_t now,
                                     std::uint64_t timeout);
};

}  // namespace rgc::gc
