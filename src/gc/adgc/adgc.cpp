#include "gc/adgc/adgc.h"

#include <algorithm>
#include <map>
#include <set>

#include "obs/recorder.h"
#include "util/log.h"
#include "util/trace.h"

namespace rgc::gc {
namespace {

/// True when `obj` is anchored at `process` by something other than its
/// propagation lists (roots or scions) according to the last collection.
bool locally_anchored(const LgcResult& result, ObjectId obj) {
  auto it = result.object_reach.find(obj);
  if (it == result.object_reach.end()) return false;
  return (it->second & (kReachRoot | kReachScion)) != 0;
}

}  // namespace

void Adgc::after_collection(
    rm::Process& process, const LgcResult& result,
    const std::map<ProcessId, std::map<ObjectId, std::uint32_t>>* distances) {
  TRACE_SPAN("adgc.after_collection", process.id());
  auto& net = process.network();
  const ProcessId self = process.id();
  auto& trace = util::Trace::instance();

  // ---- NewSetStubs to every peer we may have scions at ------------------
  std::map<ProcessId, std::vector<ObjectId>> per_peer;
  for (const rm::StubKey& key : result.live_stubs) {
    per_peer[key.target_process].push_back(key.target);
  }
  std::set<ProcessId> done_peers;
  const std::uint64_t epoch = process.next_collection_epoch();
  for (ProcessId peer : process.stub_peers()) {
    auto msg = std::make_unique<NewSetStubsMsg>();
    if (auto it = per_peer.find(peer); it != per_peer.end()) {
      msg->stub_anchors = it->second;
    } else {
      done_peers.insert(peer);  // empty set: peer drops all our scions
      msg->final_set = true;    // one-shot, must arrive (see adgc.h)
    }
    msg->horizon = process.delivered_prop_seq(peer);
    msg->epoch = epoch;
    if (distances != nullptr) {
      if (auto it = distances->find(peer); it != distances->end()) {
        msg->distances.assign(it->second.begin(), it->second.end());
      }
    }
    const bool final_set = msg->final_set;
    const std::size_t anchors = msg->stub_anchors.size();
    net.send(self, peer, std::move(msg));
    process.metrics().add("adgc.newsetstubs_sent");
    if (trace.enabled()) {
      trace.instant("adgc.newsetstubs", self, 0, false,
                    {util::TraceArg::num("peer", raw(peer)),
                     util::TraceArg::num("anchors", anchors),
                     util::TraceArg::num("final", final_set ? 1 : 0)});
    }
  }
  for (ProcessId peer : done_peers) process.stub_peers().erase(peer);

  // ---- Union-Rule reporting per replicated object ------------------------
  std::set<ObjectId> replicated;
  for (const auto& e : process.in_props()) replicated.insert(e.object);
  for (const auto& e : process.out_props()) replicated.insert(e.object);

  for (ObjectId obj : replicated) {
    if (locally_anchored(result, obj)) continue;

    // All children must have reported before this replica may speak for
    // its subtree (otherwise a live grandchild could be lost).
    bool children_clear = true;
    for (const auto& e : process.out_props()) {
      if (e.object == obj && !e.rec_umess) {
        children_clear = false;
        break;
      }
    }
    if (!children_clear) continue;

    bool has_parent = false;
    for (auto& e : process.in_props()) {
      if (e.object != obj) continue;
      has_parent = true;
      if (e.sent_umess) continue;
      auto msg = std::make_unique<UnreachableMsg>();
      msg->object = obj;
      msg->uc = e.uc;
      net.send(self, e.process, std::move(msg));
      e.sent_umess = true;
      process.note_mutation();
      process.metrics().add("adgc.unreachable_sent");
      if (trace.enabled()) {
        trace.instant("adgc.unreachable", self, 0, false,
                      {util::TraceArg::str("object", rgc::to_string(obj)),
                       util::TraceArg::num("parent_proc", raw(e.process))});
      }
      RGC_DEBUG("adgc: ", to_string(self), " reports ", to_string(obj),
                " unreachable to ", to_string(e.process));
    }

    if (!has_parent) {
      // Root of the propagation tree, unreachable itself, whole subtree
      // reported: dismantle the tree (§2.2.3 rule 2).
      std::vector<ProcessId> children;
      for (const auto& e : process.out_props()) {
        if (e.object == obj) children.push_back(e.process);
      }
      if (children.empty()) continue;
      for (ProcessId child : children) {
        auto msg = std::make_unique<ReclaimMsg>();
        msg->object = obj;
        net.send(self, child, std::move(msg));
        process.metrics().add("adgc.reclaim_sent");
        if (trace.enabled()) {
          trace.instant("adgc.reclaim", self, 0, false,
                        {util::TraceArg::str("object", rgc::to_string(obj)),
                         util::TraceArg::num("child", raw(child))});
        }
      }
      auto& outs = process.out_props();
      outs.erase(std::remove_if(outs.begin(), outs.end(),
                                [obj](const rm::OutProp& e) {
                                  return e.object == obj;
                                }),
                 outs.end());
      process.note_mutation();
      RGC_DEBUG("adgc: ", to_string(self), " reclaims propagation tree of ",
                to_string(obj));
    }
  }
}

void Adgc::on_new_set_stubs(rm::Process& process, const net::Envelope& env,
                            const NewSetStubsMsg& msg) {
  // Stale-set guard: the unreliable plane may reorder announcements; an
  // older stub set must never retract a newer one.
  auto& last_epoch = process.newsetstubs_epochs()[env.src];
  if (msg.epoch <= last_epoch) {
    process.metrics().add("adgc.newsetstubs_stale");
    return;
  }
  last_epoch = msg.epoch;

  std::set<ObjectId> anchors(msg.stub_anchors.begin(), msg.stub_anchors.end());
  auto& scions = process.scions();
  for (auto it = scions.begin(); it != scions.end();) {
    const rm::Scion& scion = it->second;
    const bool from_sender = it->first.src_process == env.src;
    // Horizon guard: a scion created by a propagate the sender had not yet
    // delivered when it computed its stub set must survive this round.
    const bool protected_by_horizon = scion.created_seq > msg.horizon;
    if (from_sender && !protected_by_horizon &&
        !anchors.contains(it->first.anchor)) {
      process.metrics().add("adgc.scions_deleted");
      if (auto& trace = util::Trace::instance(); trace.enabled()) {
        trace.instant(
            "adgc.scion_drop", process.id(), 0, false,
            {util::TraceArg::str("anchor", rgc::to_string(it->first.anchor)),
             util::TraceArg::num("from", raw(env.src))});
      }
      RGC_DEBUG("adgc: ", to_string(process.id()), " drops scion for ",
                to_string(it->first.anchor), " from ", to_string(env.src));
      it = scions.erase(it);
      process.note_mutation();
    } else {
      ++it;
    }
  }
}

void Adgc::on_unreachable(rm::Process& process, const net::Envelope& env,
                          const UnreachableMsg& msg) {
  rm::OutProp* e = process.find_out_prop(msg.object, env.src);
  if (e == nullptr) return;  // link already reclaimed
  if (e->uc != msg.uc) {
    // Crossed by a re-propagation: the report describes an older replica
    // state and must not unlock the parent.
    process.metrics().add("adgc.unreachable_stale");
    return;
  }
  if (!e->rec_umess) {
    e->rec_umess = true;
    process.note_mutation();
  }
  process.metrics().add("adgc.unreachable_received");
}

void Adgc::on_reclaim(rm::Process& process, const net::Envelope& env,
                      const ReclaimMsg& msg) {
  const ObjectId obj = msg.object;
  auto& ins = process.in_props();
  const std::size_t ins_before = ins.size();
  ins.erase(std::remove_if(ins.begin(), ins.end(),
                           [&](const rm::InProp& e) {
                             return e.object == obj && e.process == env.src;
                           }),
            ins.end());
  if (ins.size() != ins_before) process.note_mutation();

  // Forward down the tree only when nothing else anchors the replica here:
  // another parent still linked keeps the subtree in place.
  bool other_parent = false;
  for (const auto& e : ins) {
    if (e.object == obj) {
      other_parent = true;
      break;
    }
  }
  if (other_parent) return;

  std::vector<ProcessId> children;
  for (const auto& e : process.out_props()) {
    if (e.object == obj) children.push_back(e.process);
  }
  for (ProcessId child : children) {
    auto fwd = std::make_unique<ReclaimMsg>();
    fwd->object = obj;
    process.network().send(process.id(), child, std::move(fwd));
    process.metrics().add("adgc.reclaim_forwarded");
  }
  auto& outs = process.out_props();
  const std::size_t outs_before = outs.size();
  outs.erase(std::remove_if(outs.begin(), outs.end(),
                            [obj](const rm::OutProp& e) {
                              return e.object == obj;
                            }),
             outs.end());
  if (outs.size() != outs_before) process.note_mutation();
  process.metrics().add("adgc.reclaim_received");
  if (obs::FlightRecorder* rec = process.recorder()) {
    rec->reclaim_decision(process.id(), env.src, obj);
  }
  RGC_DEBUG("adgc: ", to_string(process.id()), " unlinked replica ",
            to_string(obj), " after Reclaim from ", to_string(env.src));
}

std::uint64_t Adgc::expire_leases(rm::Process& process, std::uint64_t now,
                                  std::uint64_t timeout) {
  // Peers holding leased state here: scion owners and propagation partners.
  // Stubs are deliberately NOT expired — a stub toward a dead process is
  // the surviving half of a reference that may resolve again after a
  // restart; it costs nothing to keep and the reconciliation protocol
  // (rebind / rebind-nack) settles its fate when the peer returns.
  std::set<ProcessId> peers;
  for (const auto& [key, scion] : process.scions()) peers.insert(key.src_process);
  for (const auto& e : process.in_props()) peers.insert(e.process);
  for (const auto& e : process.out_props()) peers.insert(e.process);

  std::uint64_t expired_scions = 0;
  auto& trace = util::Trace::instance();
  for (const ProcessId peer : peers) {
    if (peer == process.id()) continue;
    const std::uint64_t heard = process.last_heard(peer);
    if (now < heard + timeout) continue;  // lease still current

    // Scions: the existing ADGC retirement path, triggered by timeout
    // instead of a NewSetStubs round — the owner has missed its lease, so
    // its references no longer count as anchors.
    auto& scions = process.scions();
    bool changed = false;
    for (auto it = scions.begin(); it != scions.end();) {
      if (it->first.src_process != peer) {
        ++it;
        continue;
      }
      process.metrics().add("adgc.scions_deleted");
      process.metrics().add("gc.lease_expirations");
      if (trace.enabled()) {
        trace.instant(
            "adgc.scion_drop", process.id(), 0, false,
            {util::TraceArg::str("anchor", rgc::to_string(it->first.anchor)),
             util::TraceArg::num("from", raw(peer)),
             util::TraceArg::num("lease", 1)});
      }
      RGC_DEBUG("adgc: ", to_string(process.id()), " lease-expires scion for ",
                to_string(it->first.anchor), " owned by ", to_string(peer));
      it = scions.erase(it);
      ++expired_scions;
      changed = true;
    }

    // Propagation links: a dead peer's inProps no longer protect our
    // replicas (Union Rule counts only live parents), and our outProps
    // toward it can never complete the Unreachable/Reclaim hand-shake —
    // both would pin the subtree as floating garbage forever.
    auto& ins = process.in_props();
    const std::size_t ins_before = ins.size();
    ins.erase(std::remove_if(
                  ins.begin(), ins.end(),
                  [peer](const rm::InProp& e) { return e.process == peer; }),
              ins.end());
    if (ins.size() != ins_before) {
      process.metrics().add("gc.lease_inprops_dropped", ins_before - ins.size());
      changed = true;
    }
    auto& outs = process.out_props();
    const std::size_t outs_before = outs.size();
    outs.erase(std::remove_if(
                   outs.begin(), outs.end(),
                   [peer](const rm::OutProp& e) { return e.process == peer; }),
               outs.end());
    if (outs.size() != outs_before) {
      process.metrics().add("gc.lease_outprops_dropped",
                            outs_before - outs.size());
      changed = true;
    }
    if (changed) {
      process.metrics().add("gc.lease_peers_expired");
      process.note_mutation();
    }
  }
  if (expired_scions != 0) {
    if (obs::FlightRecorder* rec = process.recorder()) {
      rec->lease_expiry(process.id(), expired_scions);
    }
  }
  return expired_scions;
}

}  // namespace rgc::gc
