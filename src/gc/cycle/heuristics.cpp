#include "gc/cycle/heuristics.h"

#include <algorithm>
#include <optional>

#include "gc/cycle/summary.h"

namespace rgc::gc {
namespace {

constexpr std::uint32_t sat_inc(std::uint32_t d) noexcept {
  return d == kInfiniteDistance ? kInfiniteDistance : d + 1;
}

}  // namespace

std::map<ProcessId, std::map<ObjectId, std::uint32_t>>
DistanceHeuristic::after_collection(const rm::Process& process,
                                    const LgcResult& result,
                                    const ProcessSummary* precomputed) {
  // The stub side needs each stub's incoming context; summarization
  // already computes exactly that relation.  The cluster summarizes all
  // processes concurrently after the sweep and hands the result in here;
  // standalone callers fall back to summarizing inline.
  std::optional<ProcessSummary> own;
  if (precomputed == nullptr) own.emplace(summarize(process));
  const ProcessSummary& s = precomputed != nullptr ? *precomputed : *own;

  std::map<ProcessId, std::map<ObjectId, std::uint32_t>> announce;
  for (const auto& [key, stub] : s.stubs) {
    std::uint32_t d = kInfiniteDistance;
    if (stub.local_reach) {
      d = 1;  // a root path of length 1 ends at this remote reference
    }
    for (const rm::ScionKey& sk : stub.scions_to) {
      d = std::min(d, sat_inc(estimate(sk.anchor)));
    }
    announce[key.target_process][key.target] = d;
  }

  // Replicas anchored purely by their propagation entries age locally:
  // no root, no incoming remote reference, only the Union Rule keeps
  // them — a propagation-only cycle never resets this counter.
  for (const auto& [obj, rep] : s.replicas) {
    auto it = result.object_reach.find(obj);
    const std::uint8_t mask =
        it == result.object_reach.end() ? 0 : it->second;
    if ((mask & (kReachRoot | kReachScion)) != 0) {
      prop_age_.erase(obj);
    } else if ((mask & (kReachInProp | kReachOutProp)) != 0) {
      ++prop_age_[obj];
    }
  }
  return announce;
}

void DistanceHeuristic::apply_remote_estimates(
    const rm::Process& process, ProcessId from,
    const std::map<ObjectId, std::uint32_t>& estimates) {
  for (const auto& [anchor, d] : estimates) {
    if (!process.scions().contains(rm::ScionKey{from, anchor})) continue;
    // Per-anchor minimum over announcing links: one short (live) path
    // anywhere resets the anchor below threshold; on a garbage cycle all
    // links age in lock-step, so the minimum grows too.
    auto [it, inserted] = anchor_estimates_.try_emplace(anchor, d);
    if (!inserted) it->second = std::min(it->second, d);
  }
}

std::uint32_t DistanceHeuristic::estimate(ObjectId anchor) const {
  auto it = anchor_estimates_.find(anchor);
  return it == anchor_estimates_.end() ? kInfiniteDistance : it->second;
}

std::vector<ObjectId> DistanceHeuristic::suspects() const {
  std::vector<ObjectId> out;
  for (const auto& [anchor, d] : anchor_estimates_) {
    if (d >= threshold_) out.push_back(anchor);
  }
  for (const auto& [obj, age] : prop_age_) {
    if (age >= threshold_ &&
        std::find(out.begin(), out.end(), obj) == out.end()) {
      out.push_back(obj);
    }
  }
  return out;
}

void DistanceHeuristic::prune(const rm::Process& process) {
  for (auto it = anchor_estimates_.begin(); it != anchor_estimates_.end();) {
    bool anchored = false;
    for (const auto& [key, scion] : process.scions()) {
      if (key.anchor == it->first) {
        anchored = true;
        break;
      }
    }
    it = anchored ? std::next(it) : anchor_estimates_.erase(it);
  }
  // Estimates only age upward between refreshes; refresh each round from
  // the announcements (the per-round min).  To let a cycle's estimates
  // grow, entries are re-aged here: the next announcement overwrites via
  // min if a shorter path appeared.
  for (auto& [anchor, d] : anchor_estimates_) d = sat_inc(d);
  for (auto it = prop_age_.begin(); it != prop_age_.end();) {
    it = process.is_replicated(it->first) ? std::next(it)
                                          : prop_age_.erase(it);
  }
}

void SuspicionAgeTracker::after_collection(const rm::Process& process,
                                           const LgcResult& result) {
  // Age survivors anchored only remotely; reset root-reachable ones.
  for (const auto& [obj, mask] : result.object_reach) {
    if ((mask & kReachRoot) != 0) {
      ages_.erase(obj);
    } else if ((mask & (kReachScion | kReachInProp | kReachOutProp)) != 0) {
      ++ages_[obj];
    }
  }
  // Drop entries for objects that were swept.
  for (auto it = ages_.begin(); it != ages_.end();) {
    it = process.has_replica(it->first) ? std::next(it) : ages_.erase(it);
  }
}

std::vector<ObjectId> SuspicionAgeTracker::suspects() const {
  std::vector<ObjectId> out;
  for (const auto& [obj, age] : ages_) {
    if (age >= threshold_) out.push_back(obj);
  }
  return out;
}

std::uint32_t SuspicionAgeTracker::age(ObjectId obj) const {
  auto it = ages_.find(obj);
  return it == ages_.end() ? 0 : it->second;
}

}  // namespace rgc::gc
