// Cycle-candidate selection heuristics.
//
// §3.1: "efficient selection of cycle candidates is an issue out of the
// scope of this paper; heuristics found in the literature [14] may be
// used."  [14] is Maheshwari & Liskov's *distance heuristic*: estimate,
// per object, the length of the shortest root path that keeps it alive;
// objects on distributed garbage cycles have no root path, so their
// estimates grow without bound as the estimates are refreshed, while live
// objects' estimates stabilize.  Crossing a threshold makes an object a
// detection candidate.
//
// Two selectors are provided:
//
//  - DistanceHeuristic — the [14] scheme adapted to this system's
//    structures.  Distances piggyback on traffic that already flows: each
//    local collection assigns every live stub
//        dist(stub) = 1 + min(dist of entities that reach it)
//    (roots have distance 0, scions the distance their remote peer last
//    announced), and the next NewSetStubs round carries the per-anchor
//    estimates to the scion side.  A scion whose distance exceeds the
//    threshold anchors a suspect.  Replicas held alive purely by
//    propagation entries age the same way through their prop links.
//
//  - SuspicionAgeTracker — a simpler staple: an object that survives K
//    consecutive collections anchored only by scions/props (never by a
//    root) becomes a suspect; any root-reachable collection resets it.
//
// Both deliver the same interface: feed per-collection observations, ask
// for suspects.  Cluster::run_full_gc can use either instead of the
// exhaustive sweep (core::CandidatePolicy).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "gc/lgc/lgc.h"
#include "rm/process.h"
#include "util/ids.h"

namespace rgc::gc {

struct ProcessSummary;

/// Distances are saturating small integers; kInfiniteDistance means "no
/// known root path".
inline constexpr std::uint32_t kInfiniteDistance = 0xffffffffu;

class DistanceHeuristic {
 public:
  /// `threshold`: a scion/replica whose estimate reaches this value is
  /// suspected of belonging to a distributed garbage cycle.  Live data in
  /// a store of diameter d stabilizes below d+1, so pick threshold > the
  /// longest expected root path.
  explicit DistanceHeuristic(std::uint32_t threshold = 4)
      : threshold_(threshold) {}

  [[nodiscard]] std::uint32_t threshold() const noexcept { return threshold_; }

  /// Digests one local collection: refreshes the per-stub estimates from
  /// the reachability classification and ages prop-only replicas.
  /// Returns the per-anchor estimates to enclose in the next NewSetStubs
  /// round (anchor -> distance), keyed by peer process.
  /// `precomputed` is a post-sweep summary of `process` to use instead of
  /// summarizing here; the cluster passes one computed during its parallel
  /// phase so this (serial) digest stays cheap.
  [[nodiscard]] std::map<ProcessId, std::map<ObjectId, std::uint32_t>>
  after_collection(const rm::Process& process, const LgcResult& result,
                   const ProcessSummary* precomputed = nullptr);

  /// Applies the estimates a peer announced for our scions.
  void apply_remote_estimates(
      const rm::Process& process, ProcessId from,
      const std::map<ObjectId, std::uint32_t>& estimates);

  /// Current estimate for an object's local anchor (scion side), or 0 if
  /// unknown/root-reachable.
  [[nodiscard]] std::uint32_t estimate(ObjectId anchor) const;

  /// Objects whose estimates crossed the threshold.
  [[nodiscard]] std::vector<ObjectId> suspects() const;

  /// Drops state for anchors that no longer exist (scion retired).
  void prune(const rm::Process& process);

 private:
  std::uint32_t threshold_;
  /// Scion-side estimates per anchor object (max over incoming links —
  /// conservative: an anchor is suspect only when *every* path is long,
  /// but for garbage cycles all paths age together, and taking max makes
  /// live short paths reset the estimate via min at the stub side).
  std::map<ObjectId, std::uint32_t> anchor_estimates_;
  /// Aging for replicas anchored purely by propagation entries.
  std::map<ObjectId, std::uint32_t> prop_age_;
};

class SuspicionAgeTracker {
 public:
  explicit SuspicionAgeTracker(std::uint32_t threshold = 3)
      : threshold_(threshold) {}

  [[nodiscard]] std::uint32_t threshold() const noexcept { return threshold_; }

  /// Digests one local collection: ages objects that survived anchored
  /// only remotely (scions/props), resets the rest.
  void after_collection(const rm::Process& process, const LgcResult& result);

  [[nodiscard]] std::vector<ObjectId> suspects() const;
  [[nodiscard]] std::uint32_t age(ObjectId obj) const;

 private:
  std::uint32_t threshold_;
  std::map<ObjectId, std::uint32_t> ages_;
};

}  // namespace rgc::gc
