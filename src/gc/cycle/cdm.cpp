#include "gc/cycle/cdm.h"

#include <algorithm>
#include <sstream>

namespace rgc::gc {

std::string to_string(const Element& e) {
  if (e.tag == Element::Kind::kReplica) return rgc::to_string(e.replica);
  return rgc::to_string(e.holder) + "->" + rgc::to_string(e.replica);
}

bool Cdm::observe(Observation obs) {
  for (const Observation& prev : observations) {
    if (prev.link == obs.link && prev.counter != obs.counter) return false;
  }
  observations.push_back(std::move(obs));
  return true;
}

void Cdm::require(const Element& from, const Element& on, bool prop) {
  (prop ? prop_deps : ref_deps).insert(on);
  const std::pair<Element, Element> edge{from, on};
  if (std::find(dep_edges.begin(), dep_edges.end(), edge) == dep_edges.end()) {
    dep_edges.push_back(edge);
  }
}

util::FlatSet<Element> Cdm::required_closure() const {
  util::FlatSet<Element> closure;
  std::vector<Element> work{Element::make(candidate)};
  closure.insert(work.front());
  while (!work.empty()) {
    const Element cur = work.back();
    work.pop_back();
    for (const auto& [from, on] : dep_edges) {
      if (from == cur && closure.insert(on)) work.push_back(on);
    }
  }
  return closure;
}

util::FlatSet<Element> Cdm::unresolved() const {
  return required_closure().difference(targets);
}

util::FlatSet<Element> Cdm::flat_unresolved() const {
  util::FlatSet<Element> u = prop_deps.difference(targets);
  u.merge(ref_deps.difference(targets));
  return u;
}

std::string Cdm::to_string() const {
  std::ostringstream os;
  auto emit = [&os](const util::FlatSet<Element>& set) {
    os << "{";
    bool first = true;
    for (const Element& e : set) {
      if (!first) os << ", ";
      first = false;
      os << gc::to_string(e);
    }
    os << "}";
  };
  os << "{ ";
  emit(prop_deps);
  os << ", ";
  emit(ref_deps);
  os << " } -> ";
  emit(targets);
  return os.str();
}

}  // namespace rgc::gc
