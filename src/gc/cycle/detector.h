// Replication-aware asynchronous cycle detector (§3) — the paper's core
// contribution.
//
// One detector instance runs per process, entirely on local snapshot
// summaries; processes cooperate only through CDMs.  A detection starts at
// a suspect replica and walks the distributed graph:
//
//   examine(replica R at P):
//     - abort the track if R (or any scion anchored at it) is reachable
//       from P's local roots — live objects end detections immediately;
//     - R joins the CDM's target set;
//     - every scion anchored at R contributes its reference link to the
//       reference-dependency set (those incoming references must be proven
//       dead before R may be declared cyclic garbage);
//     - R's inProp/outProp partners join the propagation-dependency set —
//       the Union Rule in algebra form: every replica of R must fall;
//     - continuations: ReplicasFrom (examined locally, in the same CDM) and
//       StubsFrom (a CDM per remote target).  Stubs are examined on the way
//       out: their ScionsTo/ReplicasTo become dependencies of the remote
//       target and the link itself joins the target set, resolving the
//       dependency the remote scion will raise;
//     - when no reference continuation exists, the CDM is *forwarded* (no
//       recomputation) to an unresolved propagation dependency — child
//       replicas before parents (§3.3's traversal policy, and the reason
//       our detector floods less than the replication-blind baseline);
//     - matching: when every dependency appears in the target set, a
//       garbage cycle is proven; the candidate's recorded incoming
//       dependencies (scions / prop links) are cut, and the acyclic
//       machinery reclaims the whole cycle.
//
// Race barrier (§3.5): every examination records the snapshot's invocation
// or update counter for the links it crosses; a disagreement between two
// observations of the same link means a mutator or the coherence engine
// moved behind the detector's back — the track aborts (optimistic scheme:
// applications never block, a detection is merely wasted).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "gc/cycle/cdm.h"
#include "gc/cycle/summary.h"
#include "rm/process.h"
#include "util/ids.h"
#include "util/metrics.h"

namespace rgc::gc {

struct DetectorConfig {
  /// Forwarding order: child replicas before parents (paper policy).
  /// Ablation: false forwards to parents first.
  bool children_first{true};
  /// Continuation priority.  Default (false): child replicas are woven
  /// into the traversal ahead of reference sends — each CDM hop covers a
  /// whole triangle (prop link + its reference), halving step counts and
  /// matching the baseline step-for-step.  true: references first, prop
  /// forwards only when no reference remains — one dependency link per
  /// hop, which reproduces Table 2's absolute step counts (the paper's
  /// simulator charged one step per link).
  bool defer_props{false};
};

class CycleDetector {
 public:
  explicit CycleDetector(rm::Process& process, DetectorConfig config = {});

  /// Captures and summarizes the process state (§3.5.1).  Independent per
  /// process — no coordination.
  void take_snapshot();

  /// Installs a summary computed elsewhere (the cluster's parallel snapshot
  /// phase summarizes every process concurrently, then installs serially).
  /// Same bookkeeping as take_snapshot; the summary must be of this
  /// process's current state.
  void install_snapshot(ProcessSummary summary);

  /// Adopts a previously-captured (possibly deserialized, possibly
  /// summarized off-line) snapshot instead of taking one now — the
  /// paper's lazy/off-line summarization path (§4).  Must belong to this
  /// process.  Throws std::invalid_argument otherwise.
  void adopt_snapshot(ProcessSummary summary);
  [[nodiscard]] bool has_snapshot() const noexcept { return summary_.has_value(); }
  [[nodiscard]] const ProcessSummary& summary() const { return *summary_; }

  /// Invoked (on the process where matching completed) with the proven
  /// cycle; the Cluster turns it into a CutMsg for the candidate process.
  std::function<void(const Cdm&)> on_cycle_found;

  /// Starts a detection with `candidate` (a local object) as the suspect.
  /// Returns the detection id, or nullopt when no snapshot exists, the
  /// candidate is unknown to it, or the candidate is locally reachable.
  std::optional<std::uint64_t> start_detection(ObjectId candidate);

  // Message handlers (wired by the Cluster dispatcher).
  void on_cdm(const net::Envelope& env, const CdmMsg& msg);
  void on_cut(const net::Envelope& env, const CutMsg& msg);
  void on_prop_cut(const net::Envelope& env, const PropCutMsg& msg);

  /// Builds the cut instruction for a proven cycle from the verdict CDM's
  /// observations (exposed for the Cluster and for tests).
  [[nodiscard]] static CutMsg make_cut(const Cdm& cdm);

  /// Installs a wall-clock histogram (owned by the caller) that receives
  /// one sample per start_detection/on_cdm invocation, in microseconds.
  /// Nondeterministic — keep it in a registry excluded from deterministic
  /// reports (core::Cluster::profile()).  nullptr disables profiling.
  void set_profile(util::Histogram* hist) noexcept { profile_us_ = hist; }

 private:
  enum class Visit { kOk, kAbortLive, kAbortRace, kUnknownEntity };

  /// Full examination of object `obj` on this process.  `as_start` applies
  /// the candidate-seeding rules (no target insertion, no own-scion
  /// dependencies — the final re-visit closes the loop instead).
  Visit examine(Cdm& cdm, ObjectId obj, bool as_start,
                std::vector<rm::StubKey>& remote_out);

  /// Examines an outgoing stub continuation; queues a send when the remote
  /// side still needs visiting.  Local replicated ancestors of the link
  /// (its ReplicasTo) are reported for inline examination.
  Visit examine_stub(Cdm& cdm, const rm::StubKey& key,
                     std::vector<rm::StubKey>& remote_out,
                     util::FlatSet<ObjectId>& ancestors_out);

  /// Anchor or replica of `obj` reachable from this process's local roots
  /// in the current snapshot.
  [[nodiscard]] bool locally_live(ObjectId obj) const;

  /// Post-examination: verdict, flood, forward, or end of track.
  void conclude(Cdm& cdm, const std::vector<rm::StubKey>& remote_out);

  /// Counts the abort and emits a lineage-terminating trace event chained
  /// to `parent` (the track's latest CDM event).
  void record_abort(Visit v, std::uint64_t parent);

  /// Per-(detection, entry) subsumption filter: an arriving CDM whose
  /// target set is a subset of one already processed here for the same
  /// entry cannot discover anything new — drop it.  Keeps flooding linear
  /// when detection branches reconverge; cleared with every new snapshot.
  bool subsumed(std::uint64_t detection, ObjectId entry,
                const util::FlatSet<Element>& targets);

  /// Hot-path counter handles, resolved once at construction (the
  /// Metrics::add string-lookup fix); cold verdict-path counters keep the
  /// string API.
  struct Counters {
    util::Counter snapshots;
    util::Counter detections_started;
    util::Counter cdms_received;
    util::Counter drops_no_snapshot;
    util::Counter drops_subsumed;
    util::Counter cdms_sent;
    util::Counter forwards;
    util::Counter local_forks;
    util::Counter cycles_found;
    util::Counter tracks_ended;
    util::Counter aborts_live;
    util::Counter aborts_race;
    util::Counter drops_unknown_entity;
    util::Counter live_ancestor_skips;
    util::Counter live_continuation_skips;
    util::Counter live_stub_skips;
  };

  rm::Process& process_;
  DetectorConfig config_;
  Counters counters_;
  /// Distribution handles: cdm.hops (deliveries per track at verdict) and
  /// cycle.steps_to_detection (sim steps from start to proof).
  util::Histogram* hops_hist_{nullptr};
  util::Histogram* steps_hist_{nullptr};
  /// Wall-clock per-examination profiling sink; see set_profile().
  util::Histogram* profile_us_{nullptr};
  std::optional<ProcessSummary> summary_;
  std::uint64_t next_serial_{0};
  std::map<std::pair<std::uint64_t, ObjectId>,
           std::vector<util::FlatSet<Element>>>
      seen_entries_;
};

}  // namespace rgc::gc
