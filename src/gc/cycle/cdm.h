// Cycle Detection Message (CDM) algebra (§3.3).
//
// A CDM carries:
//  - a *source set* split into propagation dependencies (replicas whose
//    unreachability must be proven because the union rule ties them to a
//    visited replica) and reference dependencies (incoming inter-process
//    references / local replicated referencers that must be proven dead),
//  - a *target set* of everything the detection has already visited, and
//  - the counter observations accumulated along the way (§3.5's barrier).
//
// "For each CDM delivered to a process, the cycle detector performs an
// algebraic matching: a cycle is found if all elements in the source set
// (including both sub-sets) appear in the target set."
//
// Element granularity: replicas (obj@process) as in the paper, plus
// reference links (holder->target) for incoming references — the paper
// denotes those by their source replica; naming the link is the same
// information made precise (a link dependency is resolved exactly when the
// detector has examined the stub side and seen every local path to it).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "gc/cycle/summary.h"
#include "net/message.h"
#include "util/flat_set.h"
#include "util/ids.h"

namespace rgc::gc {

/// One element of a CDM set: a replica or a reference link.
struct Element {
  enum class Kind : std::uint8_t { kReplica = 0, kRefLink = 1 };

  Kind tag{Kind::kReplica};
  /// kReplica: the replica itself.  kRefLink: target object @ target
  /// process of the link.
  Replica replica;
  /// kRefLink only: the process holding the stub.
  ProcessId holder{kNoProcess};

  static Element make(Replica r) { return {Kind::kReplica, r, kNoProcess}; }
  static Element make(const RefLink& l) {
    return {Kind::kRefLink, Replica{l.target, l.target_process}, l.holder};
  }

  friend constexpr auto operator<=>(const Element&, const Element&) = default;
};

std::string to_string(const Element& e);

/// A recorded counter value for one end of a link; the race barrier aborts
/// a detection when two observations of the same link disagree (§3.5.2
/// rules 3/4: "there have been remote invocations / replica updates ...
/// after one of the snapshots was taken").
struct Observation {
  std::variant<RefLink, PropLink> link;
  std::uint64_t counter{0};
};

struct Cdm {
  /// Unique per detection (process id of the initiator + a local serial).
  std::uint64_t detection_id{0};
  /// The suspect the detection started from.
  Replica candidate;

  /// Causal lineage (observability, not protocol state): the trace-event
  /// id of the latest event on this track.  Every CDM event records its
  /// predecessor as parent, so a detection replays as a cross-process
  /// message tree.  0 while tracing is disabled.
  std::uint64_t trace_id{0};
  /// Deliveries this track has accumulated (the cdm.hops histogram).
  std::uint64_t hops{0};
  /// Simulation step the detection started at (cycle.steps_to_detection).
  std::uint64_t started_step{0};

  util::FlatSet<Element> prop_deps;
  util::FlatSet<Element> ref_deps;
  util::FlatSet<Element> targets;

  /// Dependency attribution: (from, on) records "declaring `from` garbage
  /// requires `on` to be garbage" (on leads to from, or is a replica of
  /// it).  The paper's flat matching requires *every* source-set element
  /// resolved — an over-approximation that can never close a cycle whose
  /// forward traversal wandered into a replica of remotely-live data (the
  /// wanderer's dependencies poison the whole message).  The verdict here
  /// closes over the *candidate's requirement closure* instead; the flat
  /// sets still drive traversal and reporting.  See DESIGN.md §7.
  std::vector<std::pair<Element, Element>> dep_edges;

  /// Traversal continuations, in the paper's priority order (§3.3): child
  /// replicas first ("child replicas are traversed before their parents"),
  /// then references, then parents ("only when a child replica believes it
  /// belongs to a distributed cycle of garbage, it forwards its CDM to its
  /// parent replica").  forward_first normally holds children and
  /// forward_last parents; the ablation config swaps them.
  std::vector<Replica> forward_first;
  std::vector<Replica> forward_last;
  /// Reference continuations stashed while a child forward took priority;
  /// sent (as a fork, one CDM per target) when no unresolved child remains.
  std::vector<Replica> pending_refs;

  std::vector<Observation> observations;

  /// Records `obs`; returns false when a previous observation of the same
  /// link carries a different counter (race detected).
  bool observe(Observation obs);

  /// Records the dependency in the flat set (prop or ref) *and* the
  /// attribution edge from `from`.
  void require(const Element& from, const Element& on, bool prop);

  /// The candidate's requirement closure: every element transitively
  /// required for the candidate to be garbage.
  [[nodiscard]] util::FlatSet<Element> required_closure() const;

  /// Unresolved requirements: the closure minus the target set.
  [[nodiscard]] util::FlatSet<Element> unresolved() const;

  /// The refined matching: every element the candidate's garbage-ness
  /// depends on has been visited and found unreachable.
  [[nodiscard]] bool cycle_complete() const { return unresolved().empty(); }

  /// The paper's flat matching (used by the baseline detector and by the
  /// traversal heuristics): every source-set element in the target set.
  [[nodiscard]] util::FlatSet<Element> flat_unresolved() const;
  [[nodiscard]] bool flat_complete() const { return flat_unresolved().empty(); }

  /// "{ {prop...}, {ref...} } -> { targets... }" — the paper's notation,
  /// used in tests that assert the worked examples.
  [[nodiscard]] std::string to_string() const;
};

/// How a CDM addresses its next entity.
enum class EntryVia : std::uint8_t {
  /// Entry designates the target of a remote reference: examine the scions
  /// anchored at it (and, if replicated, the replica).
  kRef = 0,
  /// Entry designates a replica reached through a propagation link.
  kProp = 1,
};

struct CdmMsg final : net::Message {
  Cdm cdm;
  ObjectId entry{kNoObject};
  EntryVia via{EntryVia::kRef};
  /// True when this is a forward (no recomputation at an intermediate
  /// node — the paper's optimization that trims CDM flooding).
  bool forwarded{false};

  [[nodiscard]] const char* kind() const noexcept override { return "CDM"; }
  [[nodiscard]] std::size_t weight() const noexcept override {
    return 1 + cdm.prop_deps.size() + cdm.ref_deps.size() +
           cdm.targets.size() + cdm.observations.size() +
           cdm.pending_refs.size() + cdm.dep_edges.size();
  }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<CdmMsg>(*this);
  }
};

/// Verdict: instructs the candidate's process to break the detected cycle
/// by deleting the candidate's incoming dependencies recorded at detection
/// time (§3.3: "it is safe to instruct the acyclic GC to delete the scion
/// accounting for the remote reference").  Counter expectations ride along
/// so a cut that raced a mutation is skipped, never misapplied.
struct CutMsg final : net::Message {
  ObjectId candidate{kNoObject};
  std::uint64_t detection_id{0};
  /// Expected ICs of the candidate's scions at detection time.
  std::vector<std::pair<rm::ScionKey, std::uint64_t>> scion_cuts;
  /// Expected UCs of the candidate's inProp links at detection time.
  std::vector<std::pair<ProcessId, std::uint64_t>> prop_cuts;

  [[nodiscard]] const char* kind() const noexcept override { return "Cut"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<CutMsg>(*this);
  }
};

/// Child -> parent companion of a prop cut: removes the parent's outProp
/// entry for the severed link (expected UC guarded).
struct PropCutMsg final : net::Message {
  ObjectId object{kNoObject};
  std::uint64_t expected_uc{0};
  /// Detection that ordered the cut — carried so cost accounting
  /// (obs::Ledger) can charge the whole cut fan-out to its cycle.
  std::uint64_t detection_id{0};

  [[nodiscard]] const char* kind() const noexcept override { return "PropCut"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<PropCutMsg>(*this);
  }
};

}  // namespace rgc::gc
