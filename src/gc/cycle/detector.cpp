#include "gc/cycle/detector.h"

#include <algorithm>
#include <stdexcept>

#include "obs/ledger.h"
#include "util/log.h"
#include "util/trace.h"

namespace rgc::gc {
namespace {

std::vector<util::TraceArg> cdm_args(const Cdm& cdm) {
  return {util::TraceArg::num("detection", cdm.detection_id),
          util::TraceArg::str("candidate", to_string(cdm.candidate)),
          util::TraceArg::num("targets", cdm.targets.size()),
          util::TraceArg::num("hops", cdm.hops)};
}

}  // namespace

CycleDetector::CycleDetector(rm::Process& process, DetectorConfig config)
    : process_(process), config_(config) {
  util::Metrics& m = process_.metrics();
  counters_.snapshots = m.counter("cycle.snapshots");
  counters_.detections_started = m.counter("cycle.detections_started");
  counters_.cdms_received = m.counter("cycle.cdms_received");
  counters_.drops_no_snapshot = m.counter("cycle.drops_no_snapshot");
  counters_.drops_subsumed = m.counter("cycle.drops_subsumed");
  counters_.cdms_sent = m.counter("cycle.cdms_sent");
  counters_.forwards = m.counter("cycle.forwards");
  counters_.local_forks = m.counter("cycle.local_forks");
  counters_.cycles_found = m.counter("cycle.cycles_found");
  counters_.tracks_ended = m.counter("cycle.tracks_ended");
  counters_.aborts_live = m.counter("cycle.aborts_live");
  counters_.aborts_race = m.counter("cycle.aborts_race");
  counters_.drops_unknown_entity = m.counter("cycle.drops_unknown_entity");
  counters_.live_ancestor_skips = m.counter("cycle.live_ancestor_skips");
  counters_.live_continuation_skips = m.counter("cycle.live_continuation_skips");
  counters_.live_stub_skips = m.counter("cycle.live_stub_skips");
  hops_hist_ = &m.histogram("cdm.hops");
  steps_hist_ = &m.histogram("cycle.steps_to_detection");
}

void CycleDetector::take_snapshot() {
  TRACE_SPAN("cycle.snapshot", process_.id());
  install_snapshot(summarize(process_));
}

void CycleDetector::install_snapshot(ProcessSummary summary) {
  summary_ = std::move(summary);
  seen_entries_.clear();
  counters_.snapshots.inc();
}

void CycleDetector::adopt_snapshot(ProcessSummary summary) {
  if (summary.process != process_.id()) {
    throw std::invalid_argument("adopt_snapshot: summary belongs to " +
                                to_string(summary.process) + ", not " +
                                to_string(process_.id()));
  }
  summary_ = std::move(summary);
  seen_entries_.clear();
  process_.metrics().add("cycle.snapshots_adopted");
}

bool CycleDetector::subsumed(std::uint64_t detection, ObjectId entry,
                             const util::FlatSet<Element>& targets) {
  auto& prior = seen_entries_[{detection, entry}];
  for (const auto& t : prior) {
    if (targets.subset_of(t)) return true;
  }
  prior.push_back(targets);
  return false;
}

std::optional<std::uint64_t> CycleDetector::start_detection(ObjectId candidate) {
  const util::ScopedTimerUs profile{profile_us_};
  if (!summary_.has_value()) return std::nullopt;
  const ProcessId self = process_.id();

  // The candidate must be visible to the snapshot as a scion anchor or a
  // replicated object; anything else has no incoming remote dependency and
  // cannot head a *distributed* garbage cycle.
  const bool known = summary_->replicas.contains(candidate) ||
                     !summary_->scions_anchored_at(candidate).empty();
  if (!known) return std::nullopt;

  Cdm cdm;
  cdm.detection_id = (static_cast<std::uint64_t>(raw(self)) << 32) | ++next_serial_;
  cdm.candidate = Replica{candidate, self};
  cdm.started_step = process_.network().now();
  // Lineage root: every later event of this detection chains back here.
  if (auto& trace = util::Trace::instance(); trace.enabled()) {
    cdm.trace_id = trace.instant("cdm.start", self, /*parent=*/0,
                                 /*with_id=*/true, cdm_args(cdm));
  }
  // The candidate seeds the reference-dependency set (the paper's Alg0:
  // {{}, {X_P1}} -> {}); it enters the target set only when the detection
  // returns to it, which is what closes the loop.
  cdm.ref_deps.insert(Element::make(cdm.candidate));

  std::vector<rm::StubKey> remote_out;
  const Visit v = examine(cdm, candidate, /*as_start=*/true, remote_out);
  if (v != Visit::kOk) {
    record_abort(v, cdm.trace_id);
    return std::nullopt;
  }
  counters_.detections_started.inc();
  conclude(cdm, remote_out);
  return cdm.detection_id;
}

void CycleDetector::on_cdm(const net::Envelope& env, const CdmMsg& msg) {
  const util::ScopedTimerUs profile{profile_us_};
  counters_.cdms_received.inc();
  auto& trace = util::Trace::instance();
  if (!summary_.has_value()) {
    // Safety rule 1 (§3.5.2): our snapshot is not current enough to pair
    // with the sender's — ignore the CDM.
    counters_.drops_no_snapshot.inc();
    if (trace.enabled()) {
      trace.instant("cdm.drop", process_.id(), msg.cdm.trace_id, false,
                    {util::TraceArg::str("reason", "no_snapshot")});
    }
    return;
  }
  (void)env;
  if (subsumed(msg.cdm.detection_id, msg.entry, msg.cdm.targets)) {
    counters_.drops_subsumed.inc();
    if (trace.enabled()) {
      trace.instant("cdm.drop", process_.id(), msg.cdm.trace_id, false,
                    {util::TraceArg::str("reason", "subsumed")});
    }
    return;
  }
  RGC_DEBUG("cycle: ", to_string(process_.id()), " <- CDM",
            msg.forwarded ? " (forwarded)" : "", " entry ",
            to_string(msg.entry),
            msg.via == EntryVia::kProp ? " via prop " : " via ref ",
            msg.cdm.to_string());
  Cdm cdm = msg.cdm;
  ++cdm.hops;
  if (trace.enabled()) {
    auto args = cdm_args(cdm);
    args.push_back(util::TraceArg::str("entry", to_string(msg.entry)));
    args.push_back(util::TraceArg::str(
        "via", msg.via == EntryVia::kProp ? "prop" : "ref"));
    cdm.trace_id = trace.instant("cdm.recv", process_.id(), msg.cdm.trace_id,
                                 /*with_id=*/true, std::move(args));
  }
  std::vector<rm::StubKey> remote_out;
  const Visit v = examine(cdm, msg.entry, /*as_start=*/false, remote_out);
  if (v != Visit::kOk) {
    record_abort(v, cdm.trace_id);
    return;
  }
  conclude(cdm, remote_out);
}

bool CycleDetector::locally_live(ObjectId obj) const {
  const ProcessSummary& s = *summary_;
  if (auto it = s.replicas.find(obj); it != s.replicas.end()) {
    if (it->second.local_reach) return true;
  }
  for (const rm::ScionKey& key : s.scions_anchored_at(obj)) {
    if (s.scions.at(key).local_reach) return true;
  }
  return false;
}

CycleDetector::Visit CycleDetector::examine(Cdm& cdm, ObjectId obj,
                                            bool as_start,
                                            std::vector<rm::StubKey>& remote_out) {
  const ProcessId self = process_.id();
  const ProcessSummary& s = *summary_;

  const auto scion_keys = s.scions_anchored_at(obj);
  const auto rep_it = s.replicas.find(obj);
  const bool replicated = rep_it != s.replicas.end();

  if (scion_keys.empty() && !replicated) {
    // Safety rule 1: the snapshot does not know the entity the CDM is
    // about (older than the reference/propagation that created it).
    return Visit::kUnknownEntity;
  }

  // Liveness gate before any CDM mutation, so callers may treat an abort
  // as "not examined" (nothing half-recorded).
  if (locally_live(obj)) return Visit::kAbortLive;

  if (!as_start) {
    cdm.targets.insert(Element::make(Replica{obj, self}));
  }

  util::FlatSet<ObjectId> local_cont;
  util::FlatSet<ObjectId> ancestor_cont;
  std::vector<rm::StubKey> stub_cont;

  for (const rm::ScionKey& key : scion_keys) {
    const ScionSummary& ss = s.scions.at(key);
    const RefLink link{key.src_process, obj, self};
    if (!as_start) {
      if (!cdm.observe({link, ss.ic})) return Visit::kAbortRace;
      const Element me = Element::make(Replica{obj, self});
      cdm.require(me, Element::make(link), /*prop=*/false);
      // Anchor-level incoming context: local scions / replicated objects
      // that lead to this anchor must be proven dead too.
      for (const rm::ScionKey& up_key : ss.scions_to) {
        const ScionSummary& up = s.scions.at(up_key);
        const RefLink up_link{up_key.src_process, up_key.anchor, self};
        if (!cdm.observe({up_link, up.ic})) return Visit::kAbortRace;
        cdm.require(me, Element::make(up_link), /*prop=*/false);
      }
      for (ObjectId via : ss.replicas_to) {
        cdm.require(me, Element::make(Replica{via, self}), /*prop=*/false);
        ancestor_cont.insert(via);
      }
    }
    local_cont.merge(ss.replicas_from);
    for (const rm::StubKey& sk : ss.stubs_from) stub_cont.push_back(sk);
  }

  if (replicated) {
    const ReplicaSummary& rs = rep_it->second;

    // Union Rule in algebra form: every replica of obj is a dependency.
    // Children are queued for forwarding ahead of parents (§3.3 policy);
    // config_.children_first flips the order for the ablation study.
    std::vector<Replica> children;
    std::vector<Replica> parents;
    const Element me = Element::make(Replica{obj, self});
    for (const PropEntrySummary& e : rs.out_props) {
      const PropLink link{obj, self, e.process};
      if (!cdm.observe({link, e.uc})) return Visit::kAbortRace;
      const Replica child{obj, e.process};
      cdm.require(me, Element::make(child), /*prop=*/true);
      children.push_back(child);
    }
    for (const PropEntrySummary& e : rs.in_props) {
      const PropLink link{obj, e.process, self};
      if (!cdm.observe({link, e.uc})) return Visit::kAbortRace;
      const Replica parent{obj, e.process};
      cdm.require(me, Element::make(parent), /*prop=*/true);
      parents.push_back(parent);
    }
    auto& first = config_.children_first ? children : parents;
    auto& second = config_.children_first ? parents : children;
    cdm.forward_first.insert(cdm.forward_first.end(), first.begin(), first.end());
    cdm.forward_last.insert(cdm.forward_last.end(), second.begin(), second.end());

    if (!as_start) {
      // Incoming local context: scions and replicated objects leading to
      // this replica must be proven dead too.
      for (const rm::ScionKey& key : rs.scions_to) {
        const ScionSummary& ss = s.scions.at(key);
        const RefLink link{key.src_process, key.anchor, self};
        if (!cdm.observe({link, ss.ic})) return Visit::kAbortRace;
        cdm.require(me, Element::make(link), /*prop=*/false);
      }
      for (ObjectId via : rs.replicas_to) {
        cdm.require(me, Element::make(Replica{via, self}), /*prop=*/false);
        ancestor_cont.insert(via);
      }
    }

    local_cont.merge(rs.replicas_from);
    for (const rm::StubKey& sk : rs.stubs_from) stub_cont.push_back(sk);
  }

  // Remote continuations first: cross every outgoing stub of this entity —
  // the crossings (dependency context + target-set entries) are *shared*
  // state every branch forked below must carry, or a sibling branch could
  // never resolve the link dependency the remote scion will raise.
  std::sort(stub_cont.begin(), stub_cont.end());
  stub_cont.erase(std::unique(stub_cont.begin(), stub_cont.end()),
                  stub_cont.end());
  util::FlatSet<ObjectId> stub_ancestors;
  for (const rm::StubKey& key : stub_cont) {
    const Visit v = examine_stub(cdm, key, remote_out, stub_ancestors);
    if (v != Visit::kOk) return v;
  }

  // Local *ancestors*: replicated objects on this process that lead to an
  // examined entity are dependencies — and, being in the very snapshot at
  // hand, they can be examined right away instead of hoping a forward path
  // happens to reach them (without this, garbage whose incoming side is
  // not forward-reachable from any candidate would never resolve).  A live
  // ancestor is skipped — its dependency stays open, which is exactly
  // right: nothing referenced by a live object may be condemned.
  ancestor_cont.merge(stub_ancestors);
  for (ObjectId anc : ancestor_cont) {
    if (anc == obj) continue;
    if (cdm.targets.contains(Element::make(Replica{anc, self}))) continue;
    if (locally_live(anc)) {
      counters_.live_ancestor_skips.inc();
      continue;
    }
    const Visit v = examine(cdm, anc, /*as_start=*/false, remote_out);
    if (v == Visit::kAbortRace) return v;
  }

  // Local forward continuations (the paper's ReplicasFrom hops).  One
  // viable continuation merges into this CDM; several fork one CDM branch
  // each (§3.4's multiple detection paths).  Forking matters beyond
  // economy: a branch that wanders into a replica of a remotely-live
  // object accumulates unresolvable dependencies, and isolation keeps that
  // poison out of the sibling branch that actually closes the cycle.
  std::vector<ObjectId> viable;
  for (ObjectId next : local_cont) {
    // A candidate's seeding pass must not examine the candidate itself —
    // the loop closes only when the detection *returns* to it (§3.3).
    if (next == obj) continue;
    if (cdm.targets.contains(Element::make(Replica{next, self}))) continue;
    if (locally_live(next)) {
      // Garbage may legally reference live data; the live object simply is
      // not part of any garbage cycle — the traversal ends here, without
      // condemning the track ("when a locally reachable object is found,
      // the tracing along that reference path ends", §2.2.2).
      counters_.live_continuation_skips.inc();
      continue;
    }
    viable.push_back(next);
  }
  if (viable.size() == 1) {
    if (auto& trace = util::Trace::instance(); trace.enabled()) {
      trace.instant("cdm.merge", self, cdm.trace_id, false,
                    {util::TraceArg::str(
                        "into", to_string(Replica{viable.front(), self}))});
    }
    const Visit v = examine(cdm, viable.front(), /*as_start=*/false, remote_out);
    if (v != Visit::kOk && v != Visit::kUnknownEntity) return v;
  } else {
    for (ObjectId next : viable) {
      // Each branch carries the shared crossings but owns only its local
      // path; the trunk keeps the reference sends (one copy each).
      Cdm branch = cdm;
      std::vector<rm::StubKey> branch_out;
      counters_.local_forks.inc();
      if (auto& trace = util::Trace::instance(); trace.enabled()) {
        branch.trace_id = trace.instant(
            "cdm.fork", self, cdm.trace_id, /*with_id=*/true,
            {util::TraceArg::str("branch", to_string(Replica{next, self}))});
      }
      const Visit v = examine(branch, next, /*as_start=*/false, branch_out);
      if (v == Visit::kAbortRace) {
        record_abort(v, branch.trace_id);
        continue;  // this branch dies; its siblings live on
      }
      if (v == Visit::kOk) conclude(branch, branch_out);
    }
  }
  return Visit::kOk;
}

CycleDetector::Visit CycleDetector::examine_stub(
    Cdm& cdm, const rm::StubKey& key, std::vector<rm::StubKey>& remote_out,
    util::FlatSet<ObjectId>& ancestors_out) {
  const ProcessId self = process_.id();
  const ProcessSummary& s = *summary_;
  const RefLink link{self, key.target, key.target_process};
  const Element link_el = Element::make(link);
  if (cdm.targets.contains(link_el)) return Visit::kOk;  // already crossed

  const StubSummary& ts = s.stubs.at(key);
  if (ts.local_reach) {
    // The remote target is reachable from our local roots through this
    // very reference: it is live.  The link dependency must stay
    // unresolved (skipping is required for safety, not an optimization —
    // the target side cannot see our roots).
    counters_.live_stub_skips.inc();
    return Visit::kOk;
  }
  if (!cdm.observe({link, ts.ic})) return Visit::kAbortRace;

  // Crossing the link resolves the dependency the remote scion raises —
  // but only after the local context of the stub is accounted for:
  for (const rm::ScionKey& sk : ts.scions_to) {
    const ScionSummary& ss = s.scions.at(sk);
    const RefLink up{sk.src_process, sk.anchor, self};
    if (!cdm.observe({up, ss.ic})) return Visit::kAbortRace;
    cdm.require(link_el, Element::make(up), /*prop=*/false);
  }
  for (ObjectId via : ts.replicas_to) {
    cdm.require(link_el, Element::make(Replica{via, self}), /*prop=*/false);
    ancestors_out.insert(via);
  }
  cdm.targets.insert(link_el);

  // Loop prevention: do not re-enter a replica the detection has already
  // visited ("since B'_P2 is already in the target set ... this cycle
  // detection track is stopped").
  if (!cdm.targets.contains(
          Element::make(Replica{key.target, key.target_process}))) {
    remote_out.push_back(key);
  }
  return Visit::kOk;
}

void CycleDetector::conclude(Cdm& cdm, const std::vector<rm::StubKey>& remote_out) {
  const ProcessId self = process_.id();
  auto& trace = util::Trace::instance();

  if (cdm.cycle_complete()) {
    counters_.cycles_found.inc();
    const std::uint64_t now = process_.network().now();
    const std::uint64_t steps =
        now >= cdm.started_step ? now - cdm.started_step : 0;
    steps_hist_->record(steps);
    hops_hist_->record(cdm.hops);
    if (trace.enabled()) {
      // The verdict names the closing CDM: its parent is the lineage id of
      // the last CDM event on the completing track.
      auto args = cdm_args(cdm);
      args.push_back(util::TraceArg::num("steps", steps));
      trace.instant("cycle.detected", self, cdm.trace_id, /*with_id=*/true,
                    std::move(args));
    }
    RGC_INFO("cycle: ", to_string(self), " proved garbage cycle headed by ",
             to_string(cdm.candidate), " :: ", cdm.to_string());
    if (on_cycle_found) on_cycle_found(cdm);
    return;
  }

  // Stash this examination's reference continuations; whether they are sent
  // now or later depends on the traversal policy below.
  for (const rm::StubKey& key : remote_out) {
    const Replica target{key.target, key.target_process};
    if (std::find(cdm.pending_refs.begin(), cdm.pending_refs.end(), target) ==
        cdm.pending_refs.end()) {
      cdm.pending_refs.push_back(target);
    }
  }

  auto next_forward = [&](const std::vector<Replica>& queue) -> const Replica* {
    for (const Replica& dest : queue) {
      if (dest.process == self) continue;  // local replicas were examined
      if (cdm.targets.contains(Element::make(dest))) continue;
      return &dest;
    }
    return nullptr;
  };
  auto forward_to = [&](const Replica& dest) {
    auto msg = std::make_unique<CdmMsg>();
    msg->cdm = cdm;
    msg->entry = dest.object;
    msg->via = EntryVia::kProp;
    msg->forwarded = true;
    if (trace.enabled()) {
      msg->cdm.trace_id = trace.instant(
          "cdm.forward", self, cdm.trace_id, /*with_id=*/true,
          {util::TraceArg::num("detection", cdm.detection_id),
           util::TraceArg::str("to", to_string(dest))});
    }
    process_.network().send(self, dest.process, std::move(msg));
    counters_.cdms_sent.inc();
    counters_.forwards.inc();
  };
  auto send_refs = [&]() -> bool {
    // Fork one CDM per unresolved reference target (§3.4's multiple
    // detection paths).
    std::vector<Replica> sends;
    for (const Replica& target : cdm.pending_refs) {
      if (cdm.targets.contains(Element::make(target))) continue;
      if (std::find(sends.begin(), sends.end(), target) == sends.end()) {
        sends.push_back(target);
      }
    }
    if (sends.empty()) return false;
    cdm.pending_refs.clear();
    for (const Replica& target : sends) {
      auto msg = std::make_unique<CdmMsg>();
      msg->cdm = cdm;
      msg->entry = target.object;
      msg->via = EntryVia::kRef;
      if (trace.enabled()) {
        msg->cdm.trace_id = trace.instant(
            "cdm.send", self, cdm.trace_id, /*with_id=*/true,
            {util::TraceArg::num("detection", cdm.detection_id),
             util::TraceArg::str("to", to_string(target))});
      }
      process_.network().send(self, target.process, std::move(msg));
      counters_.cdms_sent.inc();
    }
    return true;
  };

  if (config_.defer_props) {
    // Per-link traversal (Table 2's absolute accounting): references
    // first, propagation forwards only once no reference remains.
    if (send_refs()) return;
    if (const Replica* dest = next_forward(cdm.forward_first)) {
      forward_to(*dest);
      return;
    }
    if (const Replica* dest = next_forward(cdm.forward_last)) {
      forward_to(*dest);
      return;
    }
  } else {
    // §3.3 priority 1 — child replicas: forward (no recomputation) to the
    // first unresolved one; reference sends wait in pending_refs.
    if (const Replica* child = next_forward(cdm.forward_first)) {
      forward_to(*child);
      return;
    }
    // Priority 2 — references.
    if (send_refs()) return;
    // Priority 3 — parents: "only when a child replica believes it
    // belongs to a distributed cycle of garbage, it forwards its CDM to
    // its parent".
    if (const Replica* parent = next_forward(cdm.forward_last)) {
      forward_to(*parent);
      return;
    }
  }

  counters_.tracks_ended.inc();
  hops_hist_->record(cdm.hops);
  if (trace.enabled()) {
    trace.instant("cdm.track_end", self, cdm.trace_id, false,
                  {util::TraceArg::num("detection", cdm.detection_id),
                   util::TraceArg::num("unresolved", cdm.unresolved().size())});
  }
  RGC_DEBUG("cycle: ", to_string(self), " track ended for ",
            to_string(cdm.candidate), ", unresolved ",
            util::detail::concat([&] {
              std::string s;
              for (const Element& e : cdm.unresolved()) {
                s += to_string(e) + " ";
              }
              return s;
            }()));
}

CutMsg CycleDetector::make_cut(const Cdm& cdm) {
  CutMsg cut;
  cut.candidate = cdm.candidate.object;
  cut.detection_id = cdm.detection_id;
  for (const Observation& obs : cdm.observations) {
    // The same link is legitimately observed at both of its ends (with, by
    // construction of a completed detection, equal counters) — dedupe.
    if (const auto* ref = std::get_if<RefLink>(&obs.link)) {
      if (ref->target == cdm.candidate.object &&
          ref->target_process == cdm.candidate.process) {
        const std::pair<rm::ScionKey, std::uint64_t> entry{
            rm::ScionKey{ref->holder, ref->target}, obs.counter};
        if (std::find(cut.scion_cuts.begin(), cut.scion_cuts.end(), entry) ==
            cut.scion_cuts.end()) {
          cut.scion_cuts.push_back(entry);
        }
      }
    } else if (const auto* prop = std::get_if<PropLink>(&obs.link)) {
      if (prop->object == cdm.candidate.object &&
          prop->child == cdm.candidate.process) {
        const std::pair<ProcessId, std::uint64_t> entry{prop->parent,
                                                        obs.counter};
        if (std::find(cut.prop_cuts.begin(), cut.prop_cuts.end(), entry) ==
            cut.prop_cuts.end()) {
          cut.prop_cuts.push_back(entry);
        }
      }
    }
  }
  return cut;
}

void CycleDetector::on_cut(const net::Envelope& env, const CutMsg& msg) {
  (void)env;
  if (auto& trace = util::Trace::instance(); trace.enabled()) {
    trace.instant("cycle.cut", process_.id(), 0, false,
                  {util::TraceArg::num("detection", msg.detection_id),
                   util::TraceArg::str("candidate", rgc::to_string(msg.candidate))});
  }
  std::uint64_t scions_cut = 0;
  std::uint64_t props_cut = 0;
  std::uint64_t stale = 0;
  auto& scions = process_.scions();
  for (const auto& [key, expected_ic] : msg.scion_cuts) {
    auto it = scions.find(key);
    if (it == scions.end()) continue;  // another verdict got here first
    if (it->second.ic != expected_ic) {
      // An invocation landed after the detection's snapshots: the proof no
      // longer covers reality — skip, never misapply (safety over progress).
      process_.metrics().add("cycle.cuts_stale");
      ++stale;
      continue;
    }
    scions.erase(it);
    process_.note_mutation();
    process_.metrics().add("cycle.scions_cut");
    ++scions_cut;
  }
  for (const auto& [parent, expected_uc] : msg.prop_cuts) {
    rm::InProp* e = process_.find_in_prop(msg.candidate, parent);
    if (e == nullptr) continue;
    if (e->uc != expected_uc) {
      process_.metrics().add("cycle.cuts_stale");
      ++stale;
      continue;
    }
    auto& ins = process_.in_props();
    ins.erase(std::remove_if(ins.begin(), ins.end(),
                             [&](const rm::InProp& x) {
                               return x.object == msg.candidate &&
                                      x.process == parent;
                             }),
              ins.end());
    auto cut = std::make_unique<PropCutMsg>();
    cut->object = msg.candidate;
    cut->expected_uc = expected_uc;
    cut->detection_id = msg.detection_id;
    process_.network().send(process_.id(), parent, std::move(cut));
    process_.note_mutation();
    process_.metrics().add("cycle.props_cut");
    ++props_cut;
  }
  if (obs::Ledger* ledger = process_.ledger(); ledger != nullptr) {
    ledger->cut_applied(msg.detection_id, scions_cut, props_cut, stale);
  }
}

void CycleDetector::on_prop_cut(const net::Envelope& env, const PropCutMsg& msg) {
  rm::OutProp* e = process_.find_out_prop(msg.object, env.src);
  if (e == nullptr || e->uc != msg.expected_uc) return;
  auto& outs = process_.out_props();
  outs.erase(std::remove_if(outs.begin(), outs.end(),
                            [&](const rm::OutProp& x) {
                              return x.object == msg.object &&
                                     x.process == env.src;
                            }),
             outs.end());
  process_.note_mutation();
  process_.metrics().add("cycle.outprops_cut");
}

void CycleDetector::record_abort(Visit v, std::uint64_t parent) {
  const char* reason = nullptr;
  switch (v) {
    case Visit::kAbortLive:
      counters_.aborts_live.inc();
      reason = "live";
      break;
    case Visit::kAbortRace:
      counters_.aborts_race.inc();
      reason = "race";
      break;
    case Visit::kUnknownEntity:
      counters_.drops_unknown_entity.inc();
      reason = "unknown_entity";
      break;
    case Visit::kOk:
      return;
  }
  if (auto& trace = util::Trace::instance(); trace.enabled()) {
    trace.instant("cdm.abort", process_.id(), parent, false,
                  {util::TraceArg::str("reason", reason)});
  }
}

}  // namespace rgc::gc
