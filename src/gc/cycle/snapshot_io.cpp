#include "gc/cycle/snapshot_io.h"

#include <cstring>
#include <fstream>

namespace rgc::gc {
namespace {

constexpr std::uint32_t kMagic = 0x52474353;  // "RGCS"
constexpr std::uint32_t kVersion = 3;  // v3: + mutation_epoch after taken_at

// ---- encoding --------------------------------------------------------------

void put_u32(std::string& out, std::uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void put_bool(std::string& out, bool b) { out.push_back(b ? 1 : 0); }

void put_object(std::string& out, ObjectId o) { put_u64(out, raw(o)); }
void put_process(std::string& out, ProcessId p) { put_u32(out, raw(p)); }

void put_scion_key(std::string& out, const rm::ScionKey& k) {
  put_process(out, k.src_process);
  put_object(out, k.anchor);
}

void put_stub_key(std::string& out, const rm::StubKey& k) {
  put_object(out, k.target);
  put_process(out, k.target_process);
}

template <typename T, typename Put>
void put_set(std::string& out, const util::FlatSet<T>& set, Put put) {
  put_u32(out, static_cast<std::uint32_t>(set.size()));
  for (const T& x : set) put(out, x);
}

// ---- decoding --------------------------------------------------------------

struct Reader {
  const std::string& bytes;
  std::size_t at{0};
  bool ok{true};

  bool need(std::size_t n) {
    if (!ok || at + n > bytes.size()) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + at, 4);
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + at, 8);
    at += 8;
    return v;
  }
  bool boolean() {
    if (!need(1)) return false;
    return bytes[at++] != 0;
  }
  ObjectId object() { return ObjectId{u64()}; }
  ProcessId process() { return ProcessId{u32()}; }
  rm::ScionKey scion_key() {
    const ProcessId p = process();
    const ObjectId o = object();
    return rm::ScionKey{p, o};
  }
  rm::StubKey stub_key() {
    const ObjectId o = object();
    const ProcessId p = process();
    return rm::StubKey{o, p};
  }
  /// A count field, bounded by what the remaining bytes could possibly
  /// hold (each element is at least `min_bytes`), so corrupt lengths
  /// cannot cause pathological allocation.
  std::uint32_t count(std::size_t min_bytes) {
    const std::uint32_t n = u32();
    if (!ok) return 0;
    if (min_bytes > 0 && n > (bytes.size() - at) / min_bytes) {
      ok = false;
      return 0;
    }
    return n;
  }
};

}  // namespace

std::string encode_summary(const ProcessSummary& s) {
  std::string out;
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_process(out, s.process);
  put_u64(out, s.taken_at);
  put_u64(out, s.mutation_epoch);

  put_u32(out, static_cast<std::uint32_t>(s.scions.size()));
  for (const auto& [key, sc] : s.scions) {
    put_scion_key(out, key);
    put_u64(out, sc.ic);
    put_bool(out, sc.local_reach);
    put_set(out, sc.stubs_from, put_stub_key);
    put_set(out, sc.replicas_from, put_object);
    put_set(out, sc.scions_to, put_scion_key);
    put_set(out, sc.replicas_to, put_object);
  }

  put_u32(out, static_cast<std::uint32_t>(s.stubs.size()));
  for (const auto& [key, st] : s.stubs) {
    put_stub_key(out, key);
    put_u64(out, st.ic);
    put_bool(out, st.local_reach);
    put_set(out, st.scions_to, put_scion_key);
    put_set(out, st.replicas_to, put_object);
  }

  put_u32(out, static_cast<std::uint32_t>(s.replicas.size()));
  for (const auto& [obj, rep] : s.replicas) {
    put_object(out, obj);
    put_bool(out, rep.local_reach);
    put_set(out, rep.scions_to, put_scion_key);
    put_set(out, rep.replicas_to, put_object);
    put_set(out, rep.stubs_from, put_stub_key);
    put_set(out, rep.replicas_from, put_object);
    put_u32(out, static_cast<std::uint32_t>(rep.in_props.size()));
    for (const PropEntrySummary& e : rep.in_props) {
      put_process(out, e.process);
      put_u64(out, e.uc);
    }
    put_u32(out, static_cast<std::uint32_t>(rep.out_props.size()));
    for (const PropEntrySummary& e : rep.out_props) {
      put_process(out, e.process);
      put_u64(out, e.uc);
    }
  }
  return out;
}

std::optional<ProcessSummary> decode_summary(const std::string& bytes) {
  Reader r{bytes};
  if (r.u32() != kMagic || r.u32() != kVersion) return std::nullopt;

  ProcessSummary s;
  s.process = r.process();
  s.taken_at = r.u64();
  s.mutation_epoch = r.u64();

  const auto read_scion_keys = [&r](util::FlatSet<rm::ScionKey>& out) {
    const std::uint32_t n = r.count(12);
    for (std::uint32_t i = 0; i < n && r.ok; ++i) out.insert(r.scion_key());
  };
  const auto read_stub_keys = [&r](util::FlatSet<rm::StubKey>& out) {
    const std::uint32_t n = r.count(12);
    for (std::uint32_t i = 0; i < n && r.ok; ++i) out.insert(r.stub_key());
  };
  const auto read_objects = [&r](util::FlatSet<ObjectId>& out) {
    const std::uint32_t n = r.count(8);
    for (std::uint32_t i = 0; i < n && r.ok; ++i) out.insert(r.object());
  };

  const std::uint32_t scions = r.count(1);
  for (std::uint32_t i = 0; i < scions && r.ok; ++i) {
    const rm::ScionKey key = r.scion_key();
    ScionSummary sc;
    sc.ic = r.u64();
    sc.local_reach = r.boolean();
    read_stub_keys(sc.stubs_from);
    read_objects(sc.replicas_from);
    read_scion_keys(sc.scions_to);
    read_objects(sc.replicas_to);
    if (r.ok) s.scions.emplace(key, std::move(sc));
  }

  const std::uint32_t stubs = r.count(1);
  for (std::uint32_t i = 0; i < stubs && r.ok; ++i) {
    const rm::StubKey key = r.stub_key();
    StubSummary st;
    st.ic = r.u64();
    st.local_reach = r.boolean();
    read_scion_keys(st.scions_to);
    read_objects(st.replicas_to);
    if (r.ok) s.stubs.emplace(key, std::move(st));
  }

  const std::uint32_t replicas = r.count(1);
  for (std::uint32_t i = 0; i < replicas && r.ok; ++i) {
    const ObjectId obj = r.object();
    ReplicaSummary rep;
    rep.local_reach = r.boolean();
    read_scion_keys(rep.scions_to);
    read_objects(rep.replicas_to);
    read_stub_keys(rep.stubs_from);
    read_objects(rep.replicas_from);
    const std::uint32_t ins = r.count(12);
    for (std::uint32_t k = 0; k < ins && r.ok; ++k) {
      PropEntrySummary e;
      e.process = r.process();
      e.uc = r.u64();
      rep.in_props.push_back(e);
    }
    const std::uint32_t outs = r.count(12);
    for (std::uint32_t k = 0; k < outs && r.ok; ++k) {
      PropEntrySummary e;
      e.process = r.process();
      e.uc = r.u64();
      rep.out_props.push_back(e);
    }
    if (r.ok) s.replicas.emplace(obj, std::move(rep));
  }

  if (!r.ok || r.at != bytes.size()) return std::nullopt;
  s.rebuild_anchor_index();
  return s;
}

bool save_summary(const ProcessSummary& summary, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string bytes = encode_summary(summary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<ProcessSummary> load_summary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return decode_summary(bytes);
}

// ---- Process images ------------------------------------------------------

namespace {

constexpr std::uint32_t kImageMagic = 0x52474350;  // "RGCP"
constexpr std::uint32_t kImageVersion = 1;
constexpr std::size_t kImageHeader = 8;   // magic + version
constexpr std::size_t kImageTrailer = 8;  // FNV-1a checksum

std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= static_cast<unsigned char>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::string to_string(ImageStatus status) {
  switch (status) {
    case ImageStatus::kOk: return "ok";
    case ImageStatus::kTruncated: return "truncated";
    case ImageStatus::kBadMagic: return "bad magic";
    case ImageStatus::kBadVersion: return "unsupported version";
    case ImageStatus::kChecksumMismatch: return "checksum mismatch";
    case ImageStatus::kMalformed: return "malformed payload";
  }
  return "unknown";
}

std::string encode_image(const rm::ProcessImage& image) {
  std::string out;
  put_u32(out, kImageMagic);
  put_u32(out, kImageVersion);
  put_process(out, image.process);
  put_u64(out, image.taken_at);
  put_u64(out, image.mutation_epoch);
  put_u64(out, image.collection_epoch);

  put_u32(out, static_cast<std::uint32_t>(image.objects.size()));
  for (const rm::ImageObject& o : image.objects) {
    put_object(out, o.id);
    put_u32(out, o.payload_bytes);
    put_bool(out, o.finalizable);
    put_u32(out, static_cast<std::uint32_t>(o.refs.size()));
    for (const rm::Ref& r : o.refs) {
      put_object(out, r.target);
      put_process(out, r.via);
    }
  }

  put_u32(out, static_cast<std::uint32_t>(image.roots.size()));
  for (const ObjectId r : image.roots) put_object(out, r);
  put_u32(out, static_cast<std::uint32_t>(image.transient_roots.size()));
  for (const auto& [id, ttl] : image.transient_roots) {
    put_object(out, id);
    put_u32(out, ttl);
  }

  put_u32(out, static_cast<std::uint32_t>(image.stubs.size()));
  for (const rm::Stub& s : image.stubs) {
    put_stub_key(out, s.key);
    put_u64(out, s.ic);
    put_u64(out, s.created_at);
  }

  put_u32(out, static_cast<std::uint32_t>(image.scions.size()));
  for (const rm::Scion& s : image.scions) {
    put_scion_key(out, s.key);
    put_u64(out, s.ic);
    put_u64(out, s.created_seq);
    put_u32(out, static_cast<std::uint32_t>(s.src_objects.size()));
    for (const ObjectId o : s.src_objects) put_object(out, o);
  }

  put_u32(out, static_cast<std::uint32_t>(image.in_props.size()));
  for (const rm::InProp& e : image.in_props) {
    put_object(out, e.object);
    put_process(out, e.process);
    put_u64(out, e.uc);
    put_bool(out, e.sent_umess);
  }
  put_u32(out, static_cast<std::uint32_t>(image.out_props.size()));
  for (const rm::OutProp& e : image.out_props) {
    put_object(out, e.object);
    put_process(out, e.process);
    put_u64(out, e.uc);
    put_bool(out, e.rec_umess);
  }

  put_u32(out, static_cast<std::uint32_t>(image.delivered_prop_seq.size()));
  for (const auto& [p, seq] : image.delivered_prop_seq) {
    put_process(out, p);
    put_u64(out, seq);
  }
  put_u32(out, static_cast<std::uint32_t>(image.stub_peers.size()));
  for (const ProcessId p : image.stub_peers) put_process(out, p);
  put_u32(out, static_cast<std::uint32_t>(image.newsetstubs_epochs.size()));
  for (const auto& [p, e] : image.newsetstubs_epochs) {
    put_process(out, p);
    put_u64(out, e);
  }

  put_u64(out, fnv1a(out.data(), out.size()));
  return out;
}

ImageStatus validate_image(const std::string& bytes) {
  if (bytes.size() < kImageHeader + kImageTrailer) {
    return ImageStatus::kTruncated;
  }
  Reader r{bytes};
  if (r.u32() != kImageMagic) return ImageStatus::kBadMagic;
  if (r.u32() != kImageVersion) return ImageStatus::kBadVersion;
  std::uint64_t stored;
  std::memcpy(&stored, bytes.data() + bytes.size() - kImageTrailer, 8);
  if (stored != fnv1a(bytes.data(), bytes.size() - kImageTrailer)) {
    return ImageStatus::kChecksumMismatch;
  }
  return ImageStatus::kOk;
}

std::optional<rm::ProcessImage> decode_image(const std::string& bytes) {
  if (validate_image(bytes) != ImageStatus::kOk) return std::nullopt;
  Reader r{bytes};
  r.u32();  // magic, validated above
  r.u32();  // version

  rm::ProcessImage image;
  image.process = r.process();
  image.taken_at = r.u64();
  image.mutation_epoch = r.u64();
  image.collection_epoch = r.u64();

  const std::uint32_t objects = r.count(13);
  for (std::uint32_t i = 0; i < objects && r.ok; ++i) {
    rm::ImageObject o;
    o.id = r.object();
    o.payload_bytes = r.u32();
    o.finalizable = r.boolean();
    const std::uint32_t refs = r.count(12);
    for (std::uint32_t k = 0; k < refs && r.ok; ++k) {
      rm::Ref ref;
      ref.target = r.object();
      ref.via = r.process();
      o.refs.push_back(ref);
    }
    if (r.ok) image.objects.push_back(std::move(o));
  }

  const std::uint32_t roots = r.count(8);
  for (std::uint32_t i = 0; i < roots && r.ok; ++i) {
    image.roots.push_back(r.object());
  }
  const std::uint32_t transients = r.count(12);
  for (std::uint32_t i = 0; i < transients && r.ok; ++i) {
    const ObjectId id = r.object();
    const std::uint32_t ttl = r.u32();
    if (r.ok) image.transient_roots.emplace_back(id, ttl);
  }

  const std::uint32_t stubs = r.count(28);
  for (std::uint32_t i = 0; i < stubs && r.ok; ++i) {
    rm::Stub s;
    s.key = r.stub_key();
    s.ic = r.u64();
    s.created_at = r.u64();
    if (r.ok) image.stubs.push_back(std::move(s));
  }

  const std::uint32_t scions = r.count(32);
  for (std::uint32_t i = 0; i < scions && r.ok; ++i) {
    rm::Scion s;
    s.key = r.scion_key();
    s.ic = r.u64();
    s.created_seq = r.u64();
    const std::uint32_t srcs = r.count(8);
    for (std::uint32_t k = 0; k < srcs && r.ok; ++k) {
      s.src_objects.push_back(r.object());
    }
    if (r.ok) image.scions.push_back(std::move(s));
  }

  const std::uint32_t ins = r.count(21);
  for (std::uint32_t i = 0; i < ins && r.ok; ++i) {
    rm::InProp e;
    e.object = r.object();
    e.process = r.process();
    e.uc = r.u64();
    e.sent_umess = r.boolean();
    if (r.ok) image.in_props.push_back(e);
  }
  const std::uint32_t outs = r.count(21);
  for (std::uint32_t i = 0; i < outs && r.ok; ++i) {
    rm::OutProp e;
    e.object = r.object();
    e.process = r.process();
    e.uc = r.u64();
    e.rec_umess = r.boolean();
    if (r.ok) image.out_props.push_back(e);
  }

  const std::uint32_t seqs = r.count(12);
  for (std::uint32_t i = 0; i < seqs && r.ok; ++i) {
    const ProcessId p = r.process();
    const std::uint64_t seq = r.u64();
    if (r.ok) image.delivered_prop_seq.emplace_back(p, seq);
  }
  const std::uint32_t peers = r.count(4);
  for (std::uint32_t i = 0; i < peers && r.ok; ++i) {
    image.stub_peers.push_back(r.process());
  }
  const std::uint32_t epochs = r.count(12);
  for (std::uint32_t i = 0; i < epochs && r.ok; ++i) {
    const ProcessId p = r.process();
    const std::uint64_t e = r.u64();
    if (r.ok) image.newsetstubs_epochs.emplace_back(p, e);
  }

  if (!r.ok || r.at != bytes.size() - kImageTrailer) return std::nullopt;
  return image;
}

bool save_image(const rm::ProcessImage& image, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const std::string bytes = encode_image(image);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(out);
}

std::optional<rm::ProcessImage> load_image(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return decode_image(bytes);
}

}  // namespace rgc::gc
