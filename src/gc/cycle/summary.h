// Graph snapshots and their summarization (§3.5.1).
//
// Each process periodically snapshots its object graph with no coordination
// whatsoever and summarizes it "in such a way that, from the point of view
// of the cycle detector, there is no loss of relevant information": the
// whole local heap collapses to its scions, stubs and replicated objects,
// each annotated with
//   - StubsFrom / ReplicasFrom — stubs / replicated objects transitively
//     reachable *from* the entity through local references,
//   - ScionsTo / ReplicasTo — scions / replicated objects that transitively
//     lead *to* the entity,
//   - LocalReach — reachability from the process's local roots,
// plus the invocation counters (scions/stubs) and update counters (props)
// the race barrier compares pairwise when CDMs combine snapshots (§3.5.2).
//
// The detector only ever reads summaries; the live process state keeps
// running underneath (the mutator is never stopped — §3.5's whole point).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "rm/process.h"
#include "rm/tables.h"
#include "util/flat_set.h"
#include "util/ids.h"

namespace rgc::gc {

/// Identity of one inter-process reference (a stub–scion pair): the stub
/// lives on `holder` and designates `target` whose replica lives on
/// `target_process`.  This is the reference-dependency element of our CDM
/// algebra: a scion names it exactly (src_process, anchor, own process) and
/// the stub side resolves it (see DESIGN.md §7 on why links, not source
/// objects, are the safe dependency granule).
struct RefLink {
  ProcessId holder{kNoProcess};
  ObjectId target{kNoObject};
  ProcessId target_process{kNoProcess};

  friend constexpr auto operator<=>(const RefLink&, const RefLink&) = default;
};

/// Identity of one propagation link: `object` was propagated from `parent`
/// to `child`.
struct PropLink {
  ObjectId object{kNoObject};
  ProcessId parent{kNoProcess};
  ProcessId child{kNoProcess};

  friend constexpr auto operator<=>(const PropLink&, const PropLink&) = default;
};

struct ScionSummary {
  std::uint64_t ic{0};
  /// Anchor reachable from local roots (the incoming reference ends on a
  /// live object).
  bool local_reach{false};
  util::FlatSet<rm::StubKey> stubs_from;
  util::FlatSet<ObjectId> replicas_from;
  /// Local context of the *anchor*: other scions / replicated objects that
  /// transitively lead to it.  The paper's structures list these only on
  /// stubs and props; anchors need them too — a local replicated object
  /// referencing a non-replicated scion anchor is a dependency the remote
  /// side cannot see, and dropping it would let a detection declare a
  /// cycle whose member is still referenced by a (possibly live) replica.
  util::FlatSet<rm::ScionKey> scions_to;
  util::FlatSet<ObjectId> replicas_to;

  friend bool operator==(const ScionSummary&, const ScionSummary&) = default;
};

struct StubSummary {
  std::uint64_t ic{0};
  /// Stub reachable from local roots (some live path holds this remote
  /// reference, so its target cannot be garbage).
  bool local_reach{false};
  util::FlatSet<rm::ScionKey> scions_to;
  util::FlatSet<ObjectId> replicas_to;

  friend bool operator==(const StubSummary&, const StubSummary&) = default;
};

/// Snapshot of one propagation-list entry (UC + partner process).
struct PropEntrySummary {
  ProcessId process{kNoProcess};
  std::uint64_t uc{0};

  friend bool operator==(const PropEntrySummary&,
                         const PropEntrySummary&) = default;
};

struct ReplicaSummary {
  bool local_reach{false};
  util::FlatSet<rm::ScionKey> scions_to;
  util::FlatSet<ObjectId> replicas_to;
  util::FlatSet<rm::StubKey> stubs_from;
  util::FlatSet<ObjectId> replicas_from;
  std::vector<PropEntrySummary> in_props;
  std::vector<PropEntrySummary> out_props;

  friend bool operator==(const ReplicaSummary&,
                         const ReplicaSummary&) = default;
};

struct ProcessSummary {
  ProcessId process{kNoProcess};
  /// Simulation step the snapshot was taken at.
  std::uint64_t taken_at{0};
  /// Process mutation epoch the snapshot captures (rm::Process::
  /// mutation_epoch at summarize time).  Snapshot identity metadata: the
  /// cluster reuses an installed summary verbatim while the live process's
  /// epoch still matches.
  std::uint64_t mutation_epoch{0};
  std::map<rm::ScionKey, ScionSummary> scions;
  std::map<rm::StubKey, StubSummary> stubs;
  /// Keyed by object id; contains every locally replicated object (one
  /// with at least one inProp or outProp entry).
  std::map<ObjectId, ReplicaSummary> replicas;

  /// Anchor index: every scion key, sorted by (anchor, src_process) — the
  /// opposite of ScionKey's natural order — so anchor-filtered lookups on
  /// the detection hot path are a binary search instead of a full-table
  /// scan.  Derived from `scions` (rebuilt lazily when stale), excluded
  /// from comparison and serialization.
  mutable std::vector<rm::ScionKey> anchor_index;

  /// All scions anchored at `obj`; the returned span points into
  /// `anchor_index` and is invalidated by any mutation of the summary.
  [[nodiscard]] std::span<const rm::ScionKey> scions_anchored_at(
      ObjectId obj) const;

  /// Rebuilds `anchor_index` from `scions`.  scions_anchored_at re-indexes
  /// lazily when the sizes diverge; call this explicitly after in-place
  /// edits that keep the scion count unchanged.
  void rebuild_anchor_index() const;

  friend bool operator==(const ProcessSummary& a, const ProcessSummary& b) {
    return a.process == b.process && a.taken_at == b.taken_at &&
           a.mutation_epoch == b.mutation_epoch && a.scions == b.scions &&
           a.stubs == b.stubs && a.replicas == b.replicas;
  }
};

/// Serializes the process's graph and summarizes it (§3.5.1).  In the
/// paper this runs lazily off the mutator thread; in the simulator it is an
/// atomic step, which is strictly *more* adversarial for the race barrier
/// (snapshots are maximally independent across processes).
///
/// One-pass implementation: a single root trace, then an iterative Tarjan
/// condensation of the seed-reachable subgraph and per-SCC seed bitsets
/// propagated over the condensation DAG — O(graph + seeds·stubs/64)
/// instead of one full trace per scion/replica, with zero steady-state
/// scratch allocations (rm::SummarizeScratch).  Output is bit-for-bit
/// identical to summarize_reference.
[[nodiscard]] ProcessSummary summarize(const rm::Process& process);

/// The original per-seed-trace summarizer, kept verbatim as the executable
/// specification: tests differential-check summarize() against it and the
/// benchmark uses it as the cold-snapshot baseline.  Not for production
/// call sites — it is O(seeds × local-graph).
[[nodiscard]] ProcessSummary summarize_reference(const rm::Process& process);

}  // namespace rgc::gc
