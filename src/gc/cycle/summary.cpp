#include "gc/cycle/summary.h"

#include <set>
#include <vector>

#include "gc/lgc/lgc.h"
#include "util/trace.h"

namespace rgc::gc {

std::vector<rm::ScionKey> ProcessSummary::scions_anchored_at(
    ObjectId obj) const {
  std::vector<rm::ScionKey> out;
  for (const auto& [key, summary] : scions) {
    if (key.anchor == obj) out.push_back(key);
  }
  return out;
}

namespace {

/// Forward reach of one summarization seed.
struct ForwardReach {
  util::FlatSet<rm::StubKey> stubs;
  util::FlatSet<ObjectId> replicas;
  /// Every local object the trace crossed (used to invert the relation
  /// into the ScionsTo/ReplicasTo lists).
  std::set<ObjectId> objects;
};

ForwardReach forward_reach(const rm::Process& process, ObjectId seed,
                           const std::map<ObjectId, ReplicaSummary>& replicas,
                           bool exclude_self) {
  std::map<ObjectId, std::uint8_t> object_mask;
  std::map<rm::StubKey, std::uint8_t> stub_mask;
  Lgc::trace(process, {seed}, 1, object_mask, stub_mask);

  ForwardReach out;
  for (const auto& [key, mask] : stub_mask) out.stubs.insert(key);
  for (const auto& [obj, mask] : object_mask) {
    out.objects.insert(obj);
    if (exclude_self && obj == seed) continue;
    if (replicas.contains(obj)) out.replicas.insert(obj);
  }
  return out;
}

/// True when `fr` (the reach of some entity) leads to `anchor`: the anchor
/// object itself when local, any stub designating it otherwise.
bool leads_to_anchor(const rm::Process& process, const ForwardReach& fr,
                     ObjectId anchor) {
  if (process.has_replica(anchor)) return fr.objects.contains(anchor);
  for (const rm::StubKey& key : process.stubs_for(anchor)) {
    if (fr.stubs.contains(key)) return true;
  }
  return false;
}

}  // namespace

ProcessSummary summarize(const rm::Process& process) {
  TRACE_SPAN("cycle.summarize", process.id());
  ProcessSummary s;
  s.process = process.id();
  s.taken_at = process.network().now();

  // Root reachability (mutator roots + transient invocation roots).
  std::map<ObjectId, std::uint8_t> root_objects;
  std::map<rm::StubKey, std::uint8_t> root_stubs;
  {
    std::vector<ObjectId> roots(process.heap().roots().begin(),
                                process.heap().roots().end());
    for (const auto& [obj, ttl] : process.transient_roots())
      roots.push_back(obj);
    Lgc::trace(process, roots, 1, root_objects, root_stubs);
  }

  // Replicated objects: identity, counters, local root reachability.
  for (const auto& e : process.in_props()) {
    auto& r = s.replicas[e.object];
    r.in_props.push_back({e.process, e.uc});
    r.local_reach = root_objects.contains(e.object);
  }
  for (const auto& e : process.out_props()) {
    auto& r = s.replicas[e.object];
    r.out_props.push_back({e.process, e.uc});
    r.local_reach = root_objects.contains(e.object);
  }

  // Stub skeletons (counters + LocalReach).
  for (const auto& [key, stub] : process.stubs()) {
    StubSummary& t = s.stubs[key];
    t.ic = stub.ic;
    t.local_reach = root_stubs.contains(key);
  }

  // Forward traces: one per scion (from its anchor) and one per replicated
  // object.  The inverse lists (ScionsTo/ReplicasTo) are then derived by
  // membership tests against the recorded reach.
  std::map<rm::ScionKey, ForwardReach> scion_reach;
  for (const auto& [key, scion] : process.scions()) {
    ScionSummary& t = s.scions[key];
    t.ic = scion.ic;
    t.local_reach = process.has_replica(key.anchor)
                        ? root_objects.contains(key.anchor)
                        : false;
    ForwardReach fr =
        forward_reach(process, key.anchor, s.replicas, /*exclude_self=*/false);
    t.stubs_from = fr.stubs;
    t.replicas_from = fr.replicas;
    for (const rm::StubKey& sk : fr.stubs) s.stubs[sk].scions_to.insert(key);
    for (ObjectId obj : fr.replicas) s.replicas[obj].scions_to.insert(key);
    scion_reach.emplace(key, std::move(fr));
  }

  std::map<ObjectId, ForwardReach> replica_reach;
  for (auto& [obj, summary] : s.replicas) {
    if (!process.has_replica(obj)) continue;  // entry outlived its replica
    ForwardReach fr =
        forward_reach(process, obj, s.replicas, /*exclude_self=*/true);
    summary.stubs_from = fr.stubs;
    summary.replicas_from = fr.replicas;
    for (const rm::StubKey& sk : fr.stubs) {
      s.stubs[sk].replicas_to.insert(obj);
    }
    for (ObjectId other : fr.replicas) {
      s.replicas[other].replicas_to.insert(obj);
    }
    replica_reach.emplace(obj, std::move(fr));
  }

  // Anchor-level incoming context (see ScionSummary doc comment).
  for (auto& [key, summary] : s.scions) {
    for (const auto& [other_key, fr] : scion_reach) {
      if (other_key == key) continue;
      if (leads_to_anchor(process, fr, key.anchor)) {
        summary.scions_to.insert(other_key);
      }
    }
    for (const auto& [obj, fr] : replica_reach) {
      if (obj == key.anchor) continue;
      if (leads_to_anchor(process, fr, key.anchor)) {
        summary.replicas_to.insert(obj);
      }
    }
  }

  return s;
}

}  // namespace rgc::gc
