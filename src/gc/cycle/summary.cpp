#include "gc/cycle/summary.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <utility>
#include <vector>

#include "gc/lgc/lgc.h"

namespace rgc::gc {

void ProcessSummary::rebuild_anchor_index() const {
  anchor_index.clear();
  anchor_index.reserve(scions.size());
  for (const auto& [key, summary] : scions) anchor_index.push_back(key);
  std::sort(anchor_index.begin(), anchor_index.end(),
            [](const rm::ScionKey& a, const rm::ScionKey& b) {
              return a.anchor != b.anchor ? a.anchor < b.anchor
                                          : a.src_process < b.src_process;
            });
}

std::span<const rm::ScionKey> ProcessSummary::scions_anchored_at(
    ObjectId obj) const {
  if (anchor_index.size() != scions.size()) rebuild_anchor_index();
  auto lo = std::lower_bound(
      anchor_index.begin(), anchor_index.end(), obj,
      [](const rm::ScionKey& k, ObjectId o) { return k.anchor < o; });
  auto hi = std::upper_bound(
      lo, anchor_index.end(), obj,
      [](ObjectId o, const rm::ScionKey& k) { return o < k.anchor; });
  return {lo, hi};
}

namespace {

/// Forward reach of one summarization seed.
struct ForwardReach {
  util::FlatSet<rm::StubKey> stubs;
  util::FlatSet<ObjectId> replicas;
  /// Every local object the trace crossed (used to invert the relation
  /// into the ScionsTo/ReplicasTo lists).
  util::FlatSet<ObjectId> objects;
};

/// Snapshots the objects/stubs touched by the current mark epoch out of the
/// process's scratch (each object is enqueued exactly once per epoch when a
/// single trace family runs, so the queue *is* the visited set).
util::FlatSet<ObjectId> touched_objects(const rm::Process& process) {
  const rm::MarkScratch& scratch = process.mark_scratch();
  const rm::Heap& heap = process.heap();
  std::vector<ObjectId> ids;
  ids.reserve(scratch.queue.size());
  for (std::uint32_t slot : scratch.queue) ids.push_back(heap.at_slot(slot).id);
  return util::FlatSet<ObjectId>{std::move(ids)};
}

ForwardReach forward_reach(const rm::Process& process, ObjectId seed,
                           const std::map<ObjectId, ReplicaSummary>& replicas,
                           bool exclude_self) {
  const rm::MarkScratch& scratch = process.begin_mark_epoch();
  Lgc::seed(process, seed, 1);
  Lgc::drain(process, 1);

  ForwardReach out;
  out.objects = touched_objects(process);
  out.stubs = util::FlatSet<rm::StubKey>{scratch.stubs};
  for (ObjectId obj : out.objects) {
    if (exclude_self && obj == seed) continue;
    if (replicas.contains(obj)) out.replicas.insert(obj);
  }
  return out;
}

/// True when `fr` (the reach of some entity) leads to `anchor`: the anchor
/// object itself when local, any stub designating it otherwise.
bool leads_to_anchor(const rm::Process& process, const ForwardReach& fr,
                     ObjectId anchor) {
  if (process.has_replica(anchor)) return fr.objects.contains(anchor);
  bool found = false;
  process.for_each_stub_for(anchor, [&](const rm::Stub& stub) {
    found = found || fr.stubs.contains(stub.key);
  });
  return found;
}

}  // namespace

ProcessSummary summarize_reference(const rm::Process& process) {
  ProcessSummary s;
  s.process = process.id();
  s.taken_at = process.network().now();
  s.mutation_epoch = process.mutation_epoch();

  // Root reachability (mutator roots + transient invocation roots).
  util::FlatSet<ObjectId> root_objects;
  util::FlatSet<rm::StubKey> root_stubs;
  {
    const rm::MarkScratch& scratch = process.begin_mark_epoch();
    for (ObjectId root : process.heap().roots()) Lgc::seed(process, root, 1);
    for (const auto& [obj, ttl] : process.transient_roots()) {
      Lgc::seed(process, obj, 1);
    }
    Lgc::drain(process, 1);
    root_objects = touched_objects(process);
    root_stubs = util::FlatSet<rm::StubKey>{scratch.stubs};
  }

  // Replicated objects: identity, counters, local root reachability.
  for (const auto& e : process.in_props()) {
    auto& r = s.replicas[e.object];
    r.in_props.push_back({e.process, e.uc});
    r.local_reach = root_objects.contains(e.object);
  }
  for (const auto& e : process.out_props()) {
    auto& r = s.replicas[e.object];
    r.out_props.push_back({e.process, e.uc});
    r.local_reach = root_objects.contains(e.object);
  }

  // Stub skeletons (counters + LocalReach).
  for (const auto& [key, stub] : process.stubs()) {
    StubSummary& t = s.stubs[key];
    t.ic = stub.ic;
    t.local_reach = root_stubs.contains(key);
  }

  // Forward traces: one per scion (from its anchor) and one per replicated
  // object.  The inverse lists (ScionsTo/ReplicasTo) are then derived by
  // membership tests against the recorded reach.
  std::map<rm::ScionKey, ForwardReach> scion_reach;
  for (const auto& [key, scion] : process.scions()) {
    ScionSummary& t = s.scions[key];
    t.ic = scion.ic;
    t.local_reach = process.has_replica(key.anchor)
                        ? root_objects.contains(key.anchor)
                        : false;
    ForwardReach fr =
        forward_reach(process, key.anchor, s.replicas, /*exclude_self=*/false);
    t.stubs_from = fr.stubs;
    t.replicas_from = fr.replicas;
    for (const rm::StubKey& sk : fr.stubs) s.stubs[sk].scions_to.insert(key);
    for (ObjectId obj : fr.replicas) s.replicas[obj].scions_to.insert(key);
    scion_reach.emplace(key, std::move(fr));
  }

  std::map<ObjectId, ForwardReach> replica_reach;
  for (auto& [obj, summary] : s.replicas) {
    if (!process.has_replica(obj)) continue;  // entry outlived its replica
    ForwardReach fr =
        forward_reach(process, obj, s.replicas, /*exclude_self=*/true);
    summary.stubs_from = fr.stubs;
    summary.replicas_from = fr.replicas;
    for (const rm::StubKey& sk : fr.stubs) {
      s.stubs[sk].replicas_to.insert(obj);
    }
    for (ObjectId other : fr.replicas) {
      s.replicas[other].replicas_to.insert(obj);
    }
    replica_reach.emplace(obj, std::move(fr));
  }

  // Anchor-level incoming context (see ScionSummary doc comment).
  for (auto& [key, summary] : s.scions) {
    for (const auto& [other_key, fr] : scion_reach) {
      if (other_key == key) continue;
      if (leads_to_anchor(process, fr, key.anchor)) {
        summary.scions_to.insert(other_key);
      }
    }
    for (const auto& [obj, fr] : replica_reach) {
      if (obj == key.anchor) continue;
      if (leads_to_anchor(process, fr, key.anchor)) {
        summary.replicas_to.insert(obj);
      }
    }
  }

  s.rebuild_anchor_index();
  return s;
}

// ---------------------------------------------------------------------------
// One-pass summarizer.
//
// The reference implementation above answers every StubsFrom/ReplicasFrom/
// ScionsTo/ReplicasTo question with a full trace per seed; this one answers
// all of them with one structure pass:
//   1. one root trace (Lgc::seed/drain over the shared MarkScratch) reads
//      LocalReach straight off the heap's SoA mark state,
//   2. an iterative Tarjan DFS started from each seed (scion anchors and
//      replicated objects present in the heap) condenses the seed-reachable
//      subgraph into SCCs, recording object->object and object->stub edges
//      with exactly Lgc::drain's reference-resolution rules,
//   3. a reverse-topological sweep (Tarjan pop order *is* reverse
//      topological) ORs per-SCC seed bitsets down the condensation DAG,
//      then folds them onto stubs,
//   4. emission walks stubs/seeds in key order, so every output set is
//      materialized pre-sorted and adopted via FlatSet::from_sorted_unique.
// All state lives in rm::SummarizeScratch and is reused across snapshots.
// ---------------------------------------------------------------------------

namespace {

// Arena slots double as the dense node space: Heap::slot_of is the O(1)
// id -> position map (kNoPos == Heap::kNoSlot), and Heap::slab_size bounds
// the side arrays.  No index build per snapshot.
constexpr std::uint32_t kNoPos = rm::Heap::kNoSlot;
constexpr std::uint8_t kSeedAnchor = 1;   // scion anchor with a local replica
constexpr std::uint8_t kSeedReplica = 2;  // replicated object in the heap

/// Visits every set bit (= seed index) of the `words`-long slice.
template <typename Fn>
void for_each_bit(const std::uint64_t* bits, std::size_t words, Fn&& fn) {
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t word = bits[w];
    while (word != 0) {
      const int b = std::countr_zero(word);
      word &= word - 1;
      fn(static_cast<std::uint32_t>(w * 64 + static_cast<unsigned>(b)));
    }
  }
}

void or_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) dst[w] |= src[w];
}

bool any_word(const std::uint64_t* bits, std::size_t words) {
  for (std::size_t w = 0; w < words; ++w) {
    if (bits[w] != 0) return true;
  }
  return false;
}

}  // namespace

// NOTE: no TRACE_SPAN here — summarize() runs on worker threads during the
// cluster's parallel snapshot phase and the trace sink is a global; the
// serial install path (CycleDetector::take_snapshot / install_snapshot)
// records the span instead.
ProcessSummary summarize(const rm::Process& process) {
  ProcessSummary s;
  s.process = process.id();
  s.taken_at = process.network().now();
  s.mutation_epoch = process.mutation_epoch();

  // ---- Phase 1: root trace ----------------------------------------------
  // LocalReach is read straight off the SoA mark state afterwards; the SCC
  // pass below never marks, so the bits stay valid for the whole
  // summarization.
  const rm::Heap& heap = process.heap();
  const rm::MarkScratch& mark = process.begin_mark_epoch();
  for (ObjectId root : heap.roots()) Lgc::seed(process, root, 1);
  for (const auto& [obj, ttl] : process.transient_roots()) {
    Lgc::seed(process, obj, 1);
  }
  Lgc::drain(process, 1);
  const std::uint64_t epoch = mark.epoch;

  rm::SummarizeScratch& sc = process.summarize_scratch();

  // ---- Skeletons: stubs (dense positions stamped), replicas, scions ----
  sc.stub_list.clear();
  for (const auto& [key, stub] : process.stubs()) {
    stub.summarize_idx = static_cast<std::uint32_t>(sc.stub_list.size());
    sc.stub_list.push_back(&stub);
    StubSummary& t = s.stubs[key];
    t.ic = stub.ic;
    t.local_reach = stub.marks(epoch) != 0;
  }
  const std::size_t stub_count = sc.stub_list.size();

  for (const auto& e : process.in_props()) {
    s.replicas[e.object].in_props.push_back({e.process, e.uc});
  }
  for (const auto& e : process.out_props()) {
    s.replicas[e.object].out_props.push_back({e.process, e.uc});
  }
  for (auto& [obj, r] : s.replicas) {
    const std::uint32_t pos = heap.slot_of(obj);
    r.local_reach = pos != kNoPos && heap.marks(pos, epoch) != 0;
  }

  sc.remote_anchors.clear();
  for (const auto& [key, scion] : process.scions()) {
    ScionSummary& t = s.scions[key];
    t.ic = scion.ic;
    const std::uint32_t pos = heap.slot_of(key.anchor);
    t.local_reach = pos != kNoPos && heap.marks(pos, epoch) != 0;
    if (pos == kNoPos) sc.remote_anchors.push_back(key.anchor);
  }
  std::sort(sc.remote_anchors.begin(), sc.remote_anchors.end());
  sc.remote_anchors.erase(
      std::unique(sc.remote_anchors.begin(), sc.remote_anchors.end()),
      sc.remote_anchors.end());
  s.rebuild_anchor_index();

  // ---- Seeds: in-heap scion anchors and replicated objects --------------
  sc.seed_objs.clear();
  for (const auto& key : s.anchor_index) {
    if (process.has_replica(key.anchor)) sc.seed_objs.push_back(key.anchor);
  }
  for (const auto& [obj, r] : s.replicas) {
    if (process.has_replica(obj)) sc.seed_objs.push_back(obj);
  }
  std::sort(sc.seed_objs.begin(), sc.seed_objs.end());
  sc.seed_objs.erase(std::unique(sc.seed_objs.begin(), sc.seed_objs.end()),
                     sc.seed_objs.end());
  const std::size_t seed_count = sc.seed_objs.size();

  auto seed_pos_of = [&](ObjectId id) -> std::uint32_t {
    auto it = std::lower_bound(sc.seed_objs.begin(), sc.seed_objs.end(), id);
    if (it == sc.seed_objs.end() || *it != id) return kNoPos;
    return static_cast<std::uint32_t>(it - sc.seed_objs.begin());
  };

  sc.seed_flags.assign(seed_count, 0);
  sc.seed_nodes.resize(seed_count);
  for (std::size_t i = 0; i < seed_count; ++i) {
    sc.seed_nodes[i] = heap.slot_of(sc.seed_objs[i]);
  }
  for (const auto& key : s.anchor_index) {
    const std::uint32_t i = seed_pos_of(key.anchor);
    if (i != kNoPos) sc.seed_flags[i] |= kSeedAnchor;
  }
  for (const auto& [obj, r] : s.replicas) {
    const std::uint32_t i = seed_pos_of(obj);
    if (i != kNoPos) sc.seed_flags[i] |= kSeedReplica;
  }

  // ---- Phase 2: iterative Tarjan over the seed-reachable subgraph ------
  const std::size_t heap_size = heap.slab_size();
  sc.num.assign(heap_size, kNoPos);
  sc.low.assign(heap_size, 0);
  sc.scc.assign(heap_size, kNoPos);
  sc.on_stack.assign(heap_size, 0);
  sc.stack.clear();
  sc.frames.clear();
  sc.obj_edges.clear();
  sc.stub_edges.clear();
  std::uint32_t next_num = 0;
  std::uint32_t scc_count = 0;

  auto push_node = [&](std::uint32_t n) {
    sc.num[n] = sc.low[n] = next_num++;
    sc.stack.push_back(n);
    sc.on_stack[n] = 1;
    sc.frames.push_back({n, 0});
  };

  for (std::size_t si = 0; si < seed_count; ++si) {
    if (sc.num[sc.seed_nodes[si]] != kNoPos) continue;
    push_node(sc.seed_nodes[si]);
    while (!sc.frames.empty()) {
      const std::uint32_t n = sc.frames.back().node;
      const rm::Object& obj = heap.at_slot(n);
      if (sc.frames.back().ref < obj.refs.size()) {
        const rm::Ref ref = obj.refs[sc.frames.back().ref++];
        // Edge resolution mirrors Lgc::drain exactly: local binding to a
        // present replica, local binding whose replica vanished (all stubs
        // for the target), or remote binding (the exact {target, via} stub
        // when it exists, every stub for the target otherwise).
        if (ref.is_local()) {
          const std::uint32_t t = heap.slot_of(ref.target);
          if (t != kNoPos) {
            sc.obj_edges.emplace_back(n, t);
            if (sc.num[t] == kNoPos) {
              push_node(t);
            } else if (sc.on_stack[t] != 0) {
              sc.low[n] = std::min(sc.low[n], sc.num[t]);
            }
          } else {
            process.for_each_stub_for(ref.target, [&](const rm::Stub& stub) {
              sc.stub_edges.emplace_back(n, stub.summarize_idx);
            });
          }
        } else if (const rm::Stub* exact =
                       process.find_stub(rm::StubKey{ref.target, ref.via})) {
          sc.stub_edges.emplace_back(n, exact->summarize_idx);
        } else {
          process.for_each_stub_for(ref.target, [&](const rm::Stub& stub) {
            sc.stub_edges.emplace_back(n, stub.summarize_idx);
          });
        }
      } else {
        sc.frames.pop_back();
        const std::uint32_t low_n = sc.low[n];
        if (!sc.frames.empty()) {
          std::uint32_t& parent_low = sc.low[sc.frames.back().node];
          parent_low = std::min(parent_low, low_n);
        }
        if (low_n == sc.num[n]) {
          while (true) {
            const std::uint32_t w = sc.stack.back();
            sc.stack.pop_back();
            sc.on_stack[w] = 0;
            sc.scc[w] = scc_count;
            if (w == n) break;
          }
          ++scc_count;
        }
      }
    }
  }

  // ---- Phase 3: seed bitsets down the condensation DAG ------------------
  // Tarjan completion order is reverse topological: every inter-SCC edge
  // points from a higher component id to a lower one, so one descending
  // sweep delivers each component's bits before any successor reads them.
  const std::size_t words = (seed_count + 63) / 64;
  sc.scc_bits.assign(scc_count * words, 0);
  sc.stub_bits.assign(stub_count * words, 0);
  for (std::size_t si = 0; si < seed_count; ++si) {
    const std::uint32_t c = sc.scc[sc.seed_nodes[si]];
    sc.scc_bits[c * words + si / 64] |= std::uint64_t{1} << (si % 64);
  }
  sc.edge_offsets.assign(scc_count + 1, 0);
  for (const auto& [u, v] : sc.obj_edges) {
    if (sc.scc[u] != sc.scc[v]) ++sc.edge_offsets[sc.scc[u] + 1];
  }
  for (std::size_t c = 0; c < scc_count; ++c) {
    sc.edge_offsets[c + 1] += sc.edge_offsets[c];
  }
  sc.edge_targets.resize(sc.edge_offsets[scc_count]);
  // Scatter with edge_offsets as the running cursor: afterwards
  // edge_offsets[c] is the *end* of bucket c (the old start of c+1).
  for (const auto& [u, v] : sc.obj_edges) {
    const std::uint32_t a = sc.scc[u];
    const std::uint32_t b = sc.scc[v];
    if (a != b) sc.edge_targets[sc.edge_offsets[a]++] = b;
  }
  for (std::uint32_t a = scc_count; a-- > 0;) {
    const std::uint64_t* src = sc.scc_bits.data() + a * words;
    if (!any_word(src, words)) continue;
    const std::uint32_t begin = a == 0 ? 0 : sc.edge_offsets[a - 1];
    for (std::uint32_t i = begin; i < sc.edge_offsets[a]; ++i) {
      or_words(sc.scc_bits.data() + sc.edge_targets[i] * words, src, words);
    }
  }
  for (const auto& [u, t] : sc.stub_edges) {
    or_words(sc.stub_bits.data() + t * words,
             sc.scc_bits.data() + sc.scc[u] * words, words);
  }

  // ---- Phase 4: emission ------------------------------------------------
  // Per-seed forward lists, shared by every scion on the same anchor.
  // Walking stubs in key order / replica seeds in id order materializes
  // every list pre-sorted.
  if (sc.stubs_of_seed.size() < seed_count) sc.stubs_of_seed.resize(seed_count);
  if (sc.reps_of_seed.size() < seed_count) sc.reps_of_seed.resize(seed_count);
  for (std::size_t i = 0; i < seed_count; ++i) {
    sc.stubs_of_seed[i].clear();
    sc.reps_of_seed[i].clear();
  }
  for (std::size_t t = 0; t < stub_count; ++t) {
    for_each_bit(sc.stub_bits.data() + t * words, words, [&](std::uint32_t b) {
      sc.stubs_of_seed[b].push_back(sc.stub_list[t]->key);
    });
  }
  for (std::size_t ri = 0; ri < seed_count; ++ri) {
    if ((sc.seed_flags[ri] & kSeedReplica) == 0) continue;
    for_each_bit(sc.scc_bits.data() + sc.scc[sc.seed_nodes[ri]] * words, words,
                 [&](std::uint32_t b) {
                   sc.reps_of_seed[b].push_back(sc.seed_objs[ri]);
                 });
  }

  auto append_anchor_keys = [&](std::uint32_t b) {
    for (const rm::ScionKey& k : s.scions_anchored_at(sc.seed_objs[b])) {
      sc.tmp_scion_keys.push_back(k);
    }
  };
  auto take_sorted_keys = [&]() {
    std::sort(sc.tmp_scion_keys.begin(), sc.tmp_scion_keys.end());
    return util::FlatSet<rm::ScionKey>::from_sorted_unique(sc.tmp_scion_keys);
  };

  // Scions: forward sets come from the anchor seed; the inverse sets are
  // the seeds whose bit reaches the anchor (its SCC for local anchors, the
  // union over its stub chain for remote ones).
  for (auto& [key, t] : s.scions) {
    sc.tmp_scion_keys.clear();
    sc.tmp_objs.clear();
    const std::uint32_t sa = seed_pos_of(key.anchor);
    if (sa != kNoPos) {
      t.stubs_from =
          util::FlatSet<rm::StubKey>::from_sorted_unique(sc.stubs_of_seed[sa]);
      t.replicas_from =
          util::FlatSet<ObjectId>::from_sorted_unique(sc.reps_of_seed[sa]);
      for_each_bit(sc.scc_bits.data() + sc.scc[sc.seed_nodes[sa]] * words,
                   words, [&](std::uint32_t b) {
                     if (sc.seed_flags[b] & kSeedAnchor) append_anchor_keys(b);
                     if ((sc.seed_flags[b] & kSeedReplica) != 0 &&
                         sc.seed_objs[b] != key.anchor) {
                       sc.tmp_objs.push_back(sc.seed_objs[b]);
                     }
                   });
      // The anchor reaches itself, so its own key landed in the list;
      // a scion never lists itself in ScionsTo.
      std::sort(sc.tmp_scion_keys.begin(), sc.tmp_scion_keys.end());
      auto self_it = std::lower_bound(sc.tmp_scion_keys.begin(),
                                      sc.tmp_scion_keys.end(), key);
      if (self_it != sc.tmp_scion_keys.end() && *self_it == key) {
        sc.tmp_scion_keys.erase(self_it);
      }
      t.scions_to =
          util::FlatSet<rm::ScionKey>::from_sorted_unique(sc.tmp_scion_keys);
    } else {
      // Remote anchor: the scion guards a stub chain.  Its "reach" is the
      // union over every stub designating the anchor, plus the chain's
      // sibling scions on the same anchor.
      sc.tmp_stub_keys.clear();
      sc.tmp_bits.assign(words, 0);
      process.for_each_stub_for(key.anchor, [&](const rm::Stub& stub) {
        sc.tmp_stub_keys.push_back(stub.key);
        or_words(sc.tmp_bits.data(),
                 sc.stub_bits.data() + stub.summarize_idx * words, words);
      });
      t.stubs_from =
          util::FlatSet<rm::StubKey>::from_sorted_unique(sc.tmp_stub_keys);
      for_each_bit(sc.tmp_bits.data(), words, [&](std::uint32_t b) {
        if (sc.seed_flags[b] & kSeedAnchor) append_anchor_keys(b);
        if (sc.seed_flags[b] & kSeedReplica) {
          sc.tmp_objs.push_back(sc.seed_objs[b]);
        }
      });
      for (const rm::ScionKey& k : s.scions_anchored_at(key.anchor)) {
        if (k != key) sc.tmp_scion_keys.push_back(k);
      }
      t.scions_to = take_sorted_keys();
    }
    t.replicas_to = util::FlatSet<ObjectId>::from_sorted_unique(sc.tmp_objs);
  }

  // Stubs: the inverse sets are the seeds whose bit reached this stub,
  // plus — for stubs that are part of a remote anchor's chain — the scions
  // on that anchor.
  {
    std::size_t t_idx = 0;
    for (auto& [key, t] : s.stubs) {
      sc.tmp_scion_keys.clear();
      sc.tmp_objs.clear();
      for_each_bit(sc.stub_bits.data() + t_idx * words, words,
                   [&](std::uint32_t b) {
                     if (sc.seed_flags[b] & kSeedAnchor) append_anchor_keys(b);
                     if (sc.seed_flags[b] & kSeedReplica) {
                       sc.tmp_objs.push_back(sc.seed_objs[b]);
                     }
                   });
      if (std::binary_search(sc.remote_anchors.begin(), sc.remote_anchors.end(),
                             key.target)) {
        for (const rm::ScionKey& k : s.scions_anchored_at(key.target)) {
          sc.tmp_scion_keys.push_back(k);
        }
      }
      t.scions_to = take_sorted_keys();
      t.replicas_to = util::FlatSet<ObjectId>::from_sorted_unique(sc.tmp_objs);
      ++t_idx;
    }
  }

  // Replicas: same recipe from the replica's own seed / SCC.
  for (auto& [obj, r] : s.replicas) {
    const std::uint32_t sr = seed_pos_of(obj);
    if (sr == kNoPos) continue;  // entry outlived its replica
    r.stubs_from =
        util::FlatSet<rm::StubKey>::from_sorted_unique(sc.stubs_of_seed[sr]);
    sc.tmp_objs.clear();
    for (ObjectId other : sc.reps_of_seed[sr]) {
      if (other != obj) sc.tmp_objs.push_back(other);
    }
    r.replicas_from = util::FlatSet<ObjectId>::from_sorted_unique(sc.tmp_objs);
    sc.tmp_scion_keys.clear();
    sc.tmp_objs.clear();
    for_each_bit(sc.scc_bits.data() + sc.scc[sc.seed_nodes[sr]] * words, words,
                 [&](std::uint32_t b) {
                   if (sc.seed_flags[b] & kSeedAnchor) append_anchor_keys(b);
                   if ((sc.seed_flags[b] & kSeedReplica) != 0 &&
                       sc.seed_objs[b] != obj) {
                     sc.tmp_objs.push_back(sc.seed_objs[b]);
                   }
                 });
    r.scions_to = take_sorted_keys();
    r.replicas_to = util::FlatSet<ObjectId>::from_sorted_unique(sc.tmp_objs);
  }

  return s;
}

}  // namespace rgc::gc
