#include "gc/cycle/summary.h"

#include <utility>
#include <vector>

#include "gc/lgc/lgc.h"

namespace rgc::gc {

std::vector<rm::ScionKey> ProcessSummary::scions_anchored_at(
    ObjectId obj) const {
  std::vector<rm::ScionKey> out;
  for (const auto& [key, summary] : scions) {
    if (key.anchor == obj) out.push_back(key);
  }
  return out;
}

namespace {

/// Forward reach of one summarization seed.
struct ForwardReach {
  util::FlatSet<rm::StubKey> stubs;
  util::FlatSet<ObjectId> replicas;
  /// Every local object the trace crossed (used to invert the relation
  /// into the ScionsTo/ReplicasTo lists).
  util::FlatSet<ObjectId> objects;
};

/// Snapshots the objects/stubs touched by the current mark epoch out of the
/// process's scratch (each object is enqueued exactly once per epoch when a
/// single trace family runs, so the queue *is* the visited set).
util::FlatSet<ObjectId> touched_objects(const rm::MarkScratch& scratch) {
  std::vector<ObjectId> ids;
  ids.reserve(scratch.queue.size());
  for (const rm::Object* obj : scratch.queue) ids.push_back(obj->id);
  return util::FlatSet<ObjectId>{std::move(ids)};
}

ForwardReach forward_reach(const rm::Process& process, ObjectId seed,
                           const std::map<ObjectId, ReplicaSummary>& replicas,
                           bool exclude_self) {
  const rm::MarkScratch& scratch = process.begin_mark_epoch();
  Lgc::seed(process, seed, 1);
  Lgc::drain(process, 1);

  ForwardReach out;
  out.objects = touched_objects(scratch);
  out.stubs = util::FlatSet<rm::StubKey>{scratch.stubs};
  for (ObjectId obj : out.objects) {
    if (exclude_self && obj == seed) continue;
    if (replicas.contains(obj)) out.replicas.insert(obj);
  }
  return out;
}

/// True when `fr` (the reach of some entity) leads to `anchor`: the anchor
/// object itself when local, any stub designating it otherwise.
bool leads_to_anchor(const rm::Process& process, const ForwardReach& fr,
                     ObjectId anchor) {
  if (process.has_replica(anchor)) return fr.objects.contains(anchor);
  bool found = false;
  process.for_each_stub_for(anchor, [&](const rm::Stub& stub) {
    found = found || fr.stubs.contains(stub.key);
  });
  return found;
}

}  // namespace

// NOTE: no TRACE_SPAN here — summarize() runs on worker threads during the
// cluster's parallel snapshot phase and the trace sink is a global; the
// serial install path (CycleDetector::take_snapshot / install_snapshot)
// records the span instead.
ProcessSummary summarize(const rm::Process& process) {
  ProcessSummary s;
  s.process = process.id();
  s.taken_at = process.network().now();

  // Root reachability (mutator roots + transient invocation roots).
  util::FlatSet<ObjectId> root_objects;
  util::FlatSet<rm::StubKey> root_stubs;
  {
    const rm::MarkScratch& scratch = process.begin_mark_epoch();
    for (ObjectId root : process.heap().roots()) Lgc::seed(process, root, 1);
    for (const auto& [obj, ttl] : process.transient_roots()) {
      Lgc::seed(process, obj, 1);
    }
    Lgc::drain(process, 1);
    root_objects = touched_objects(scratch);
    root_stubs = util::FlatSet<rm::StubKey>{scratch.stubs};
  }

  // Replicated objects: identity, counters, local root reachability.
  for (const auto& e : process.in_props()) {
    auto& r = s.replicas[e.object];
    r.in_props.push_back({e.process, e.uc});
    r.local_reach = root_objects.contains(e.object);
  }
  for (const auto& e : process.out_props()) {
    auto& r = s.replicas[e.object];
    r.out_props.push_back({e.process, e.uc});
    r.local_reach = root_objects.contains(e.object);
  }

  // Stub skeletons (counters + LocalReach).
  for (const auto& [key, stub] : process.stubs()) {
    StubSummary& t = s.stubs[key];
    t.ic = stub.ic;
    t.local_reach = root_stubs.contains(key);
  }

  // Forward traces: one per scion (from its anchor) and one per replicated
  // object.  The inverse lists (ScionsTo/ReplicasTo) are then derived by
  // membership tests against the recorded reach.
  std::map<rm::ScionKey, ForwardReach> scion_reach;
  for (const auto& [key, scion] : process.scions()) {
    ScionSummary& t = s.scions[key];
    t.ic = scion.ic;
    t.local_reach = process.has_replica(key.anchor)
                        ? root_objects.contains(key.anchor)
                        : false;
    ForwardReach fr =
        forward_reach(process, key.anchor, s.replicas, /*exclude_self=*/false);
    t.stubs_from = fr.stubs;
    t.replicas_from = fr.replicas;
    for (const rm::StubKey& sk : fr.stubs) s.stubs[sk].scions_to.insert(key);
    for (ObjectId obj : fr.replicas) s.replicas[obj].scions_to.insert(key);
    scion_reach.emplace(key, std::move(fr));
  }

  std::map<ObjectId, ForwardReach> replica_reach;
  for (auto& [obj, summary] : s.replicas) {
    if (!process.has_replica(obj)) continue;  // entry outlived its replica
    ForwardReach fr =
        forward_reach(process, obj, s.replicas, /*exclude_self=*/true);
    summary.stubs_from = fr.stubs;
    summary.replicas_from = fr.replicas;
    for (const rm::StubKey& sk : fr.stubs) {
      s.stubs[sk].replicas_to.insert(obj);
    }
    for (ObjectId other : fr.replicas) {
      s.replicas[other].replicas_to.insert(obj);
    }
    replica_reach.emplace(obj, std::move(fr));
  }

  // Anchor-level incoming context (see ScionSummary doc comment).
  for (auto& [key, summary] : s.scions) {
    for (const auto& [other_key, fr] : scion_reach) {
      if (other_key == key) continue;
      if (leads_to_anchor(process, fr, key.anchor)) {
        summary.scions_to.insert(other_key);
      }
    }
    for (const auto& [obj, fr] : replica_reach) {
      if (obj == key.anchor) continue;
      if (leads_to_anchor(process, fr, key.anchor)) {
        summary.replicas_to.insert(obj);
      }
    }
  }

  return s;
}

}  // namespace rgc::gc
