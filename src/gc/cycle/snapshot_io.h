// Snapshot persistence (§3.5.1).
//
// "Periodically, each process stores a snapshot of its internal object
// graph on disk. … while processes can take snapshots by serializing
// local graphs, the cycle detector only uses them in their summarized
// form."  This module serializes the *summarized* form — a ProcessSummary
// — to a compact binary representation and back, so snapshots can be
// written out by the process, summarized lazily/off-line, and adopted by
// a detector later (CycleDetector::adopt_snapshot).
//
// Format: little-endian, length-prefixed sections, a magic/version header
// so stale files are rejected, and strict bounds checking on decode (a
// truncated or corrupt file yields std::nullopt, never UB).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "gc/cycle/summary.h"
#include "rm/image.h"

namespace rgc::gc {

/// Serializes a summary to a standalone byte buffer.
[[nodiscard]] std::string encode_summary(const ProcessSummary& summary);

/// Decodes a buffer produced by encode_summary.  Returns std::nullopt on
/// any structural problem (bad magic, wrong version, truncation).
[[nodiscard]] std::optional<ProcessSummary> decode_summary(
    const std::string& bytes);

/// Convenience file wrappers (the "on disk" of §3.5.1).
bool save_summary(const ProcessSummary& summary, const std::string& path);
[[nodiscard]] std::optional<ProcessSummary> load_summary(
    const std::string& path);

// ---- Process images (crash/restart persistence, rm/image.h) --------------
//
// Unlike summaries — advisory inputs to offline detection — an image is
// what a process restarts *from*, so corruption must be detected, never
// silently rehydrated.  The format therefore carries its own magic/version
// and a trailing FNV-1a checksum over the payload; validate_image
// distinguishes the failure modes for the offline checker
// (obs::check_image) and decode_image refuses anything not pristine.

enum class ImageStatus {
  kOk,
  kTruncated,          // shorter than header + checksum
  kBadMagic,           // not an image file
  kBadVersion,         // produced by an incompatible writer
  kChecksumMismatch,   // bit flips or mid-record truncation
  kMalformed,          // checksum ok but structure undecodable
};

[[nodiscard]] std::string to_string(ImageStatus status);

/// Serializes a full process image, appending the checksum trailer.
[[nodiscard]] std::string encode_image(const rm::ProcessImage& image);

/// Structural verdict without building the image (cheap; checker-friendly).
[[nodiscard]] ImageStatus validate_image(const std::string& bytes);

/// Decodes a buffer produced by encode_image; std::nullopt unless
/// validate_image(bytes) == kOk and every record decodes cleanly.
[[nodiscard]] std::optional<rm::ProcessImage> decode_image(
    const std::string& bytes);

/// Convenience file wrappers.
bool save_image(const rm::ProcessImage& image, const std::string& path);
[[nodiscard]] std::optional<rm::ProcessImage> load_image(
    const std::string& path);

}  // namespace rgc::gc
