// Snapshot persistence (§3.5.1).
//
// "Periodically, each process stores a snapshot of its internal object
// graph on disk. … while processes can take snapshots by serializing
// local graphs, the cycle detector only uses them in their summarized
// form."  This module serializes the *summarized* form — a ProcessSummary
// — to a compact binary representation and back, so snapshots can be
// written out by the process, summarized lazily/off-line, and adopted by
// a detector later (CycleDetector::adopt_snapshot).
//
// Format: little-endian, length-prefixed sections, a magic/version header
// so stale files are rejected, and strict bounds checking on decode (a
// truncated or corrupt file yields std::nullopt, never UB).
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "gc/cycle/summary.h"

namespace rgc::gc {

/// Serializes a summary to a standalone byte buffer.
[[nodiscard]] std::string encode_summary(const ProcessSummary& summary);

/// Decodes a buffer produced by encode_summary.  Returns std::nullopt on
/// any structural problem (bad magic, wrong version, truncation).
[[nodiscard]] std::optional<ProcessSummary> decode_summary(
    const std::string& bytes);

/// Convenience file wrappers (the "on disk" of §3.5.1).
bool save_summary(const ProcessSummary& summary, const std::string& path);
[[nodiscard]] std::optional<ProcessSummary> load_summary(
    const std::string& path);

}  // namespace rgc::gc
