// Replication-blind baseline cycle detector — the comparator of §4/§5.2.
//
// The paper evaluates against its precursor algorithm (Veiga & Ferreira,
// IPDPS 2005 [23]), "modified to support replicas in a trivial way: object
// propagations are transformed into two remote references, one from the
// original object to the new object and other from the new object to the
// original.  In other words, inProps are transformed into scions and
// outProps are transformed into stubs."
//
// Consequences reproduced here:
//  - a single dependency set (no propagation/reference distinction);
//  - no child-before-parent forwarding: every examination floods a freshly
//    computed CDM along *every* outgoing edge of the flattened view —
//    remote references and both directions of every propagation link;
//  - identical completeness and step count ("both algorithms take the same
//    amount of time to identify the cycle ... the main difference is in how
//    they conduct their graph traversal"), but more CDMs issued.
//
// It shares the snapshot summaries and the race barrier with the main
// detector, so Figures 8/9 compare traversal policy, not bookkeeping.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "gc/cycle/cdm.h"
#include "gc/cycle/summary.h"
#include "rm/process.h"
#include "util/ids.h"

namespace rgc::gc {

class BaselineDetector {
 public:
  explicit BaselineDetector(rm::Process& process);

  void take_snapshot();
  /// Installs a summary computed elsewhere (see CycleDetector).
  void install_snapshot(ProcessSummary summary);
  [[nodiscard]] bool has_snapshot() const noexcept { return summary_.has_value(); }
  [[nodiscard]] const ProcessSummary& summary() const { return *summary_; }

  std::function<void(const Cdm&)> on_cycle_found;

  std::optional<std::uint64_t> start_detection(ObjectId candidate);
  void on_cdm(const net::Envelope& env, const CdmMsg& msg);

 private:
  enum class Visit { kOk, kAbortLive, kAbortRace, kUnknownEntity };

  /// A hop of the flattened graph: a CDM to send after the local phase.
  struct Hop {
    ObjectId entry{kNoObject};
    ProcessId to{kNoProcess};

    friend constexpr auto operator<=>(const Hop&, const Hop&) = default;
  };

  Visit examine(Cdm& cdm, ObjectId obj, bool as_start, std::vector<Hop>& out);
  void conclude(Cdm& cdm, std::vector<Hop> out);
  bool subsumed(std::uint64_t detection, ObjectId entry,
                const util::FlatSet<Element>& targets);

  rm::Process& process_;
  std::optional<ProcessSummary> summary_;
  std::uint64_t next_serial_{0};
  std::map<std::pair<std::uint64_t, ObjectId>,
           std::vector<util::FlatSet<Element>>>
      seen_entries_;
};

}  // namespace rgc::gc
