#include "gc/baseline/baseline_detector.h"

#include <algorithm>

#include "util/log.h"
#include "util/trace.h"

namespace rgc::gc {

BaselineDetector::BaselineDetector(rm::Process& process) : process_(process) {}

void BaselineDetector::take_snapshot() {
  TRACE_SPAN("baseline.snapshot", process_.id());
  install_snapshot(summarize(process_));
}

void BaselineDetector::install_snapshot(ProcessSummary summary) {
  summary_ = std::move(summary);
  seen_entries_.clear();
  process_.metrics().add("baseline.snapshots");
}

bool BaselineDetector::subsumed(std::uint64_t detection, ObjectId entry,
                                const util::FlatSet<Element>& targets) {
  auto& prior = seen_entries_[{detection, entry}];
  for (const auto& t : prior) {
    if (targets.subset_of(t)) return true;
  }
  // The flattened view has a redundant path pair per propagation link, so
  // without a cap the baseline's parallel lineages multiply combinatorially
  // (distinct target sets never subsume each other).  Real message-based
  // detectors mark visited entries per trace (Maheshwari's trace-ids, §6);
  // allowing a few re-examinations keeps multi-path detections like
  // Figure 3's alive while bounding the flood.
  constexpr std::size_t kMaxExamsPerEntry = 3;
  if (prior.size() >= kMaxExamsPerEntry) return true;
  prior.push_back(targets);
  return false;
}

std::optional<std::uint64_t> BaselineDetector::start_detection(
    ObjectId candidate) {
  if (!summary_.has_value()) return std::nullopt;
  const ProcessId self = process_.id();
  const bool known = summary_->replicas.contains(candidate) ||
                     !summary_->scions_anchored_at(candidate).empty();
  if (!known) return std::nullopt;

  Cdm cdm;
  cdm.detection_id =
      (static_cast<std::uint64_t>(raw(self)) << 32) | ++next_serial_;
  cdm.candidate = Replica{candidate, self};
  cdm.started_step = process_.network().now();
  if (auto& trace = util::Trace::instance(); trace.enabled()) {
    cdm.trace_id = trace.instant(
        "baseline.cdm.start", self, /*parent=*/0, /*with_id=*/true,
        {util::TraceArg::num("detection", cdm.detection_id),
         util::TraceArg::str("candidate", to_string(cdm.candidate))});
  }
  cdm.ref_deps.insert(Element::make(cdm.candidate));

  std::vector<Hop> out;
  if (examine(cdm, candidate, /*as_start=*/true, out) != Visit::kOk) {
    return std::nullopt;
  }
  process_.metrics().add("baseline.detections_started");
  conclude(cdm, std::move(out));
  return cdm.detection_id;
}

void BaselineDetector::on_cdm(const net::Envelope& env, const CdmMsg& msg) {
  (void)env;
  process_.metrics().add("baseline.cdms_received");
  if (!summary_.has_value()) {
    process_.metrics().add("baseline.drops_no_snapshot");
    return;
  }
  if (subsumed(msg.cdm.detection_id, msg.entry, msg.cdm.targets)) {
    process_.metrics().add("baseline.drops_subsumed");
    return;
  }
  Cdm cdm = msg.cdm;
  ++cdm.hops;
  if (auto& trace = util::Trace::instance(); trace.enabled()) {
    cdm.trace_id = trace.instant(
        "baseline.cdm.recv", process_.id(), msg.cdm.trace_id, /*with_id=*/true,
        {util::TraceArg::num("detection", cdm.detection_id),
         util::TraceArg::str("entry", rgc::to_string(msg.entry))});
  }
  std::vector<Hop> out;
  const Visit v = examine(cdm, msg.entry, /*as_start=*/false, out);
  if (v != Visit::kOk) {
    if (v == Visit::kAbortRace) process_.metrics().add("baseline.aborts_race");
    if (v == Visit::kAbortLive) process_.metrics().add("baseline.aborts_live");
    return;
  }
  conclude(cdm, std::move(out));
}

BaselineDetector::Visit BaselineDetector::examine(Cdm& cdm, ObjectId obj,
                                                  bool as_start,
                                                  std::vector<Hop>& out) {
  const ProcessId self = process_.id();
  const ProcessSummary& s = *summary_;

  const auto scion_keys = s.scions_anchored_at(obj);
  const auto rep_it = s.replicas.find(obj);
  const bool replicated = rep_it != s.replicas.end();
  if (scion_keys.empty() && !replicated) return Visit::kUnknownEntity;

  if (!as_start) cdm.targets.insert(Element::make(Replica{obj, self}));

  util::FlatSet<ObjectId> local_cont;
  std::vector<rm::StubKey> stub_cont;

  for (const rm::ScionKey& key : scion_keys) {
    const ScionSummary& ss = s.scions.at(key);
    if (ss.local_reach) return Visit::kAbortLive;
    const RefLink link{key.src_process, obj, self};
    if (!as_start) {
      if (!cdm.observe({link, ss.ic})) return Visit::kAbortRace;
      cdm.ref_deps.insert(Element::make(link));
      for (const rm::ScionKey& up_key : ss.scions_to) {
        const ScionSummary& up = s.scions.at(up_key);
        const RefLink up_link{up_key.src_process, up_key.anchor, self};
        if (!cdm.observe({up_link, up.ic})) return Visit::kAbortRace;
        cdm.ref_deps.insert(Element::make(up_link));
      }
      for (ObjectId via : ss.replicas_to) {
        cdm.ref_deps.insert(Element::make(Replica{via, self}));
      }
    }
    local_cont.merge(ss.replicas_from);
    for (const rm::StubKey& sk : ss.stubs_from) stub_cont.push_back(sk);
  }

  if (replicated) {
    const ReplicaSummary& rs = rep_it->second;
    if (rs.local_reach) return Visit::kAbortLive;

    // Flattened view: each propagation link is a *pair* of remote
    // references, so the partner replica is simultaneously a dependency
    // (the synthetic incoming reference) and a flooding destination (the
    // synthetic outgoing one) — in both directions.
    for (const PropEntrySummary& e : rs.out_props) {
      const PropLink link{obj, self, e.process};
      if (!cdm.observe({link, e.uc})) return Visit::kAbortRace;
      cdm.ref_deps.insert(Element::make(Replica{obj, e.process}));
      out.push_back(Hop{obj, e.process});
    }
    for (const PropEntrySummary& e : rs.in_props) {
      const PropLink link{obj, e.process, self};
      if (!cdm.observe({link, e.uc})) return Visit::kAbortRace;
      cdm.ref_deps.insert(Element::make(Replica{obj, e.process}));
      out.push_back(Hop{obj, e.process});
    }

    if (!as_start) {
      for (const rm::ScionKey& key : rs.scions_to) {
        const ScionSummary& ss = s.scions.at(key);
        const RefLink link{key.src_process, key.anchor, self};
        if (!cdm.observe({link, ss.ic})) return Visit::kAbortRace;
        cdm.ref_deps.insert(Element::make(link));
      }
      for (ObjectId via : rs.replicas_to) {
        cdm.ref_deps.insert(Element::make(Replica{via, self}));
      }
    }

    local_cont.merge(rs.replicas_from);
    for (const rm::StubKey& sk : rs.stubs_from) stub_cont.push_back(sk);
  }

  for (ObjectId next : local_cont) {
    if (next == obj) continue;
    if (cdm.targets.contains(Element::make(Replica{next, self}))) continue;
    // Live continuation: the path ends here without condemning the track.
    bool live = false;
    if (auto it = s.replicas.find(next); it != s.replicas.end()) {
      live = it->second.local_reach;
    }
    if (!live) {
      for (const rm::ScionKey& key : s.scions_anchored_at(next)) {
        if (s.scions.at(key).local_reach) live = true;
      }
    }
    if (live) continue;
    const Visit v = examine(cdm, next, /*as_start=*/false, out);
    if (v != Visit::kOk && v != Visit::kUnknownEntity) return v;
  }

  std::sort(stub_cont.begin(), stub_cont.end());
  stub_cont.erase(std::unique(stub_cont.begin(), stub_cont.end()),
                  stub_cont.end());
  for (const rm::StubKey& key : stub_cont) {
    const RefLink link{self, key.target, key.target_process};
    const Element link_el = Element::make(link);
    if (cdm.targets.contains(link_el)) continue;
    const StubSummary& ts = s.stubs.at(key);
    if (ts.local_reach) continue;  // live target: dependency stays open
    if (!cdm.observe({link, ts.ic})) return Visit::kAbortRace;
    for (const rm::ScionKey& sk : ts.scions_to) {
      const ScionSummary& ss = s.scions.at(sk);
      const RefLink up{sk.src_process, sk.anchor, self};
      if (!cdm.observe({up, ss.ic})) return Visit::kAbortRace;
      cdm.ref_deps.insert(Element::make(up));
    }
    for (ObjectId via : ts.replicas_to) {
      cdm.ref_deps.insert(Element::make(Replica{via, self}));
    }
    cdm.targets.insert(link_el);
    out.push_back(Hop{key.target, key.target_process});
  }
  return Visit::kOk;
}

void BaselineDetector::conclude(Cdm& cdm, std::vector<Hop> out) {
  const ProcessId self = process_.id();
  auto& trace = util::Trace::instance();
  if (cdm.flat_complete()) {
    process_.metrics().add("baseline.cycles_found");
    process_.metrics().histogram("baseline.cdm.hops").record(cdm.hops);
    if (trace.enabled()) {
      trace.instant("baseline.cycle.detected", self, cdm.trace_id,
                    /*with_id=*/true,
                    {util::TraceArg::num("detection", cdm.detection_id),
                     util::TraceArg::str("candidate", to_string(cdm.candidate)),
                     util::TraceArg::num("hops", cdm.hops)});
    }
    RGC_INFO("baseline: ", to_string(self), " proved garbage cycle headed by ",
             to_string(cdm.candidate));
    if (on_cycle_found) on_cycle_found(cdm);
    return;
  }

  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  bool sent = false;
  for (const Hop& hop : out) {
    if (cdm.targets.contains(Element::make(Replica{hop.entry, hop.to}))) {
      continue;  // already visited there
    }
    auto msg = std::make_unique<CdmMsg>();
    msg->cdm = cdm;
    msg->entry = hop.entry;
    msg->via = EntryVia::kRef;
    if (trace.enabled()) {
      msg->cdm.trace_id = trace.instant(
          "baseline.cdm.send", self, cdm.trace_id, /*with_id=*/true,
          {util::TraceArg::num("detection", cdm.detection_id),
           util::TraceArg::str("to", rgc::to_string(hop.entry)),
           util::TraceArg::num("dst", raw(hop.to))});
    }
    process_.network().send(self, hop.to, std::move(msg));
    process_.metrics().add("baseline.cdms_sent");
    sent = true;
  }
  // Note: when every hop is exhausted the track simply dies.  On linear
  // replication chains (every ring mesh, every paper figure) some lineage
  // always closes the cycle; on *branching* replication trees the flood
  // burns through leaf replicas early, with no forwarding mechanism to
  // revisit them — the replication-blind traversal fails to converge
  // there, which the scalability benches report explicitly (ours keeps a
  // forward queue precisely for this).
  if (!sent) process_.metrics().add("baseline.tracks_ended");
}

}  // namespace rgc::gc
