#include "gc/lgc/lgc.h"

#include "obs/ledger.h"
#include "obs/recorder.h"
#include "util/log.h"
#include "util/trace.h"

namespace rgc::gc {

namespace {

/// Marks a stub and records its key in the scratch on first touch this
/// epoch, so summarization can read back the touched set without scanning
/// the whole stub table.
void mark_stub(const rm::Stub& stub, rm::MarkScratch& scratch,
               std::uint8_t bit) {
  if (stub.marks(scratch.epoch) == 0) scratch.stubs.push_back(stub.key);
  stub.mark(scratch.epoch, bit);
}

/// Marks the stub chain a reference resolves through: the exact
/// {target, via} stub when it exists, otherwise every stub designating the
/// target (defensive fallback, mirrors reference binding in rm).
void mark_stub_chain(const rm::Process& process, rm::MarkScratch& scratch,
                     ObjectId target, ProcessId via, std::uint8_t bit) {
  if (const rm::Stub* exact = process.find_stub(rm::StubKey{target, via})) {
    mark_stub(*exact, scratch, bit);
    return;
  }
  process.for_each_stub_for(
      target, [&](const rm::Stub& stub) { mark_stub(stub, scratch, bit); });
}

}  // namespace

void Lgc::seed(const rm::Process& process, ObjectId id, std::uint8_t bit) {
  rm::MarkScratch& scratch = process.mark_scratch();
  const rm::Heap& heap = process.heap();
  const std::uint32_t slot = heap.slot_of(id);
  if (slot != rm::Heap::kNoSlot) {
    if (heap.mark(slot, scratch.epoch, bit)) scratch.queue.push_back(slot);
  } else {
    // The seed designates a remote object: keep its stub chain alive.
    process.for_each_stub_for(
        id, [&](const rm::Stub& stub) { mark_stub(stub, scratch, bit); });
  }
}

void Lgc::drain(const rm::Process& process, std::uint8_t bit,
                std::uint64_t* traced) {
  rm::MarkScratch& scratch = process.mark_scratch();
  const rm::Heap& heap = process.heap();
  while (scratch.head < scratch.queue.size()) {
    const rm::Object& obj = heap.at_slot(scratch.queue[scratch.head++]);
    if (traced != nullptr) ++*traced;
    for (const rm::Ref& ref : obj.refs) {
      if (ref.is_local()) {
        const std::uint32_t target = heap.slot_of(ref.target);
        if (target != rm::Heap::kNoSlot) {
          if (heap.mark(target, scratch.epoch, bit)) {
            scratch.queue.push_back(target);
          }
        } else {
          // Local binding whose replica vanished: resolve through any
          // surviving chain (defensive; cannot happen in well-formed runs).
          process.for_each_stub_for(ref.target, [&](const rm::Stub& stub) {
            mark_stub(stub, scratch, bit);
          });
        }
      } else {
        // Remote binding: the reference designates the chain, not a local
        // replica that may happen to exist — SSP semantics (object.h).
        mark_stub_chain(process, scratch, ref.target, ref.via, bit);
      }
    }
  }
}

void Lgc::trace(const rm::Process& process, std::span<const ObjectId> seeds,
                std::uint8_t bit, std::uint64_t* traced) {
  for (ObjectId id : seeds) seed(process, id, bit);
  drain(process, bit, traced);
}

LgcMark Lgc::mark(const rm::Process& process, const LgcConfig& config) {
  rm::MarkScratch& scratch = process.begin_mark_epoch();
  LgcMark marked{scratch.epoch, 0};

  // Phase 1 — mutator roots (including transient invocation roots).
  for (ObjectId root : process.heap().roots()) seed(process, root, kReachRoot);
  for (const auto& [obj, ttl] : process.transient_roots()) {
    seed(process, obj, kReachRoot);
  }
  drain(process, kReachRoot, &marked.traced);

  // Phase 2 — scions: objects referenced from other processes stay alive.
  for (const auto& [key, scion] : process.scions()) {
    seed(process, key.anchor, kReachScion);
  }
  drain(process, kReachScion, &marked.traced);

  if (config.union_rule) {
    // Phase 3 — Union Rule: replicas propagated into this process ...
    for (const auto& e : process.in_props()) {
      seed(process, e.object, kReachInProp);
    }
    drain(process, kReachInProp, &marked.traced);

    // ... and replicas propagated out of it are both preserved.
    for (const auto& e : process.out_props()) {
      seed(process, e.object, kReachOutProp);
    }
    drain(process, kReachOutProp, &marked.traced);
  }
  return marked;
}

LgcResult Lgc::apply(rm::Process& process, const LgcMark& marked,
                     const LgcConfig& config) {
  util::SpanGuard span{"lgc.collect", process.id()};
  const std::uint64_t epoch = marked.epoch;
  LgcResult result;
  result.traced = marked.traced;

  // Sweep: one in-order heap pass reads the masks (building object_reach in
  // id order) and collects the garbage.  Finalizable unreachable objects
  // run the configured strategy and may resurrect (they stay in the heap,
  // to be finalized again next time — the Figure 6/7 worst case).
  rm::Heap& heap = process.heap();
  const std::uint64_t now = process.network().now();
  util::Histogram& reclaim_latency =
      process.metrics().histogram("gc.reclaim_latency_steps");
  result.object_reach.reserve(heap.size());
  heap.for_each([&](ObjectId id, std::uint32_t slot, rm::Object& obj) {
    if (const std::uint8_t mask = heap.marks(slot, epoch)) {
      result.object_reach.append(id, mask);
      return;
    }
    if (obj.finalizable && config.finalizer != nullptr &&
        config.finalizer->strategy() != FinalizeStrategy::kNone) {
      obj.finalizable = false;
      if (config.finalizer->finalize(obj)) {
        ++result.resurrected;
        return;
      }
    }
    // Reclaim-latency accounting: how long this replica floated between
    // losing its last reference (the mutator/auditor stamp) and the sweep
    // that frees it.  Unstamped objects (created-and-dropped inside one
    // step, or garbage from before auditing existed) record as 0.
    reclaim_latency.record(obj.unlinked_at == 0 ? 0 : now - obj.unlinked_at);
    process.note_reclaimed(id, now);
    // The sweep runs in the serial phase, so the ledger stays deterministic.
    if (obs::Ledger* ledger = process.ledger(); ledger != nullptr) {
      ledger->object_reclaimed(process.id(), id, now);
    }
    result.reclaimed.push_back(id);
    heap.erase(id);
  });

  // New stub set (§2.2.2): a stub survives only if some trace reached it.
  result.stub_reach.reserve(process.stubs().size());
  for (auto it = process.stubs().begin(); it != process.stubs().end();) {
    const rm::Stub& stub = it->second;
    ++it;  // advance before a potential erase invalidates the entry
    if (const std::uint8_t mask = stub.marks(epoch)) {
      result.stub_reach.append(stub.key, mask);
      result.live_stubs.insert(stub.key);
    } else if (config.drop_dead_stubs) {
      process.erase_stub(stub.key);
    }
  }

  // Sweep outcomes change the snapshot summary (objects gone, finalizers
  // resurrected state); stub drops already note through erase_stub.
  if (!result.reclaimed.empty() || result.resurrected != 0) {
    process.note_mutation();
  }
  process.counters().lgc_collections.inc();
  process.counters().lgc_reclaimed.inc(result.reclaimed.size());
  process.metrics().histogram("lgc.reclaimed_per_collection")
      .record(result.reclaimed.size());
  process.metrics().histogram("lgc.traced_per_collection").record(result.traced);
  span.arg("reclaimed", result.reclaimed.size());
  span.arg("traced", result.traced);
  span.arg("live_stubs", result.live_stubs.size());
  // Sweeps run in the serial phase, so the recorder's global event order
  // (and hence the .rgcrec bytes) is thread-count independent.
  if (obs::FlightRecorder* rec = process.recorder()) {
    rec->sweep(process.id(), result.reclaimed.size(), result.traced);
  }
  RGC_DEBUG("lgc: ", to_string(process.id()), " reclaimed ",
            result.reclaimed.size(), " objects, ", result.live_stubs.size(),
            " live stubs");
  return result;
}

LgcResult Lgc::collect(rm::Process& process, const LgcConfig& config) {
  return apply(process, mark(process, config), config);
}

}  // namespace rgc::gc
