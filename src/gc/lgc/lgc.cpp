#include "gc/lgc/lgc.h"

#include <deque>

#include "util/log.h"
#include "util/trace.h"

namespace rgc::gc {

void Lgc::trace(const rm::Process& process, const std::vector<ObjectId>& seeds,
                std::uint8_t bit, std::map<ObjectId, std::uint8_t>& object_mask,
                std::map<rm::StubKey, std::uint8_t>& stub_mask,
                std::uint64_t* traced) {
  std::deque<ObjectId> worklist;
  for (ObjectId seed : seeds) {
    if (process.has_replica(seed)) {
      if ((object_mask[seed] & bit) == 0) {
        object_mask[seed] |= bit;
        worklist.push_back(seed);
      }
    } else {
      // The seed designates a remote object: keep its stub chain alive.
      for (const rm::StubKey& key : process.stubs_for(seed)) {
        stub_mask[key] |= bit;
      }
    }
  }

  while (!worklist.empty()) {
    const ObjectId current = worklist.front();
    worklist.pop_front();
    if (traced != nullptr) ++*traced;
    const rm::Object* obj = process.heap().find(current);
    if (obj == nullptr) continue;
    for (const rm::Ref& ref : obj->refs) {
      if (ref.is_local()) {
        if (process.has_replica(ref.target)) {
          auto& mask = object_mask[ref.target];
          if ((mask & bit) == 0) {
            mask |= bit;
            worklist.push_back(ref.target);
          }
        } else {
          // Local binding whose replica vanished: resolve through any
          // surviving chain (defensive; cannot happen in well-formed runs).
          for (const rm::StubKey& key : process.stubs_for(ref.target)) {
            stub_mask[key] |= bit;
          }
        }
      } else {
        // Remote binding: the reference designates the chain, not a local
        // replica that may happen to exist — SSP semantics (object.h).
        const rm::StubKey key{ref.target, ref.via};
        if (process.stubs().contains(key)) {
          stub_mask[key] |= bit;
        } else {
          for (const rm::StubKey& other : process.stubs_for(ref.target)) {
            stub_mask[other] |= bit;
          }
        }
      }
    }
  }
}

LgcResult Lgc::collect(rm::Process& process, const LgcConfig& config) {
  util::SpanGuard span{"lgc.collect", process.id()};
  LgcResult result;

  // Phase 1 — mutator roots (including transient invocation roots).
  std::vector<ObjectId> roots(process.heap().roots().begin(),
                              process.heap().roots().end());
  for (const auto& [obj, ttl] : process.transient_roots()) roots.push_back(obj);
  trace(process, roots, kReachRoot, result.object_reach, result.stub_reach,
        &result.traced);

  // Phase 2 — scions: objects referenced from other processes stay alive.
  std::vector<ObjectId> scion_anchors;
  scion_anchors.reserve(process.scions().size());
  for (const auto& [key, scion] : process.scions()) {
    scion_anchors.push_back(key.anchor);
  }
  trace(process, scion_anchors, kReachScion, result.object_reach,
        result.stub_reach, &result.traced);

  if (config.union_rule) {
    // Phase 3 — Union Rule: replicas propagated into this process ...
    std::vector<ObjectId> in_seeds;
    in_seeds.reserve(process.in_props().size());
    for (const auto& e : process.in_props()) in_seeds.push_back(e.object);
    trace(process, in_seeds, kReachInProp, result.object_reach,
          result.stub_reach, &result.traced);

    // ... and replicas propagated out of it are both preserved.
    std::vector<ObjectId> out_seeds;
    out_seeds.reserve(process.out_props().size());
    for (const auto& e : process.out_props()) out_seeds.push_back(e.object);
    trace(process, out_seeds, kReachOutProp, result.object_reach,
          result.stub_reach, &result.traced);
  }

  // Sweep.  Finalizable unreachable objects run the configured strategy and
  // may resurrect (they stay in the heap, to be finalized again next time —
  // the Figure 6/7 worst case).
  std::vector<ObjectId> doomed;
  for (auto& [id, obj] : process.heap().objects()) {
    if (result.object_reach.contains(id)) continue;
    if (obj.finalizable && config.finalizer != nullptr &&
        config.finalizer->strategy() != FinalizeStrategy::kNone) {
      obj.finalizable = false;
      if (config.finalizer->finalize(obj)) {
        ++result.resurrected;
        continue;
      }
    }
    doomed.push_back(id);
  }
  for (ObjectId id : doomed) {
    process.heap().erase(id);
    result.reclaimed.push_back(id);
  }

  // New stub set (§2.2.2): a stub survives only if some trace reached it.
  for (const auto& [key, mask] : result.stub_reach) {
    if (mask != 0) result.live_stubs.insert(key);
  }
  if (config.drop_dead_stubs) {
    auto& stubs = process.stubs();
    for (auto it = stubs.begin(); it != stubs.end();) {
      if (result.live_stubs.contains(it->first)) {
        ++it;
      } else {
        it = stubs.erase(it);
      }
    }
  }

  process.counters().lgc_collections.inc();
  process.counters().lgc_reclaimed.inc(result.reclaimed.size());
  process.metrics().histogram("lgc.reclaimed_per_collection")
      .record(result.reclaimed.size());
  process.metrics().histogram("lgc.traced_per_collection").record(result.traced);
  span.arg("reclaimed", result.reclaimed.size());
  span.arg("traced", result.traced);
  span.arg("live_stubs", result.live_stubs.size());
  RGC_DEBUG("lgc: ", to_string(process.id()), " reclaimed ",
            result.reclaimed.size(), " objects, ", result.live_stubs.size(),
            " live stubs");
  return result;
}

}  // namespace rgc::gc
