// Local Garbage Collector (§2.2.2).
//
// A per-process tracing collector with the paper's two extensions:
//  1. it traces not only from local roots but also from scions (incoming
//     remote references keep objects alive), and
//  2. Union Rule: it additionally traces from the inPropList/outPropList
//     entries, so a replica that was propagated from or to another process
//     is preserved even when locally unreachable — only the distributed
//     protocols (ADGC Unreachable/Reclaim hand-shake or a cycle-detector
//     verdict) may unlock it.
//
// The collection returns per-object reachability classes (which of the four
// trace families reached it) — the ADGC bases its Unreachable/Reclaim
// decisions on exactly this classification — and regenerates the stub set
// ("for each outgoing inter-process reference it creates a stub in the new
// set of stubs").
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include "gc/lgc/finalizer.h"
#include "rm/process.h"
#include "rm/tables.h"
#include "util/ids.h"

namespace rgc::gc {

/// Bitmask of trace families that reached an entity.
enum ReachBit : std::uint8_t {
  kReachRoot = 1u << 0,    // local roots (incl. transient invocation roots)
  kReachScion = 1u << 1,   // incoming remote references
  kReachInProp = 1u << 2,  // Union Rule: replica propagated *into* here
  kReachOutProp = 1u << 3, // Union Rule: replica propagated *out of* here
};

struct LgcResult {
  /// Reachability class of every surviving object.
  std::map<ObjectId, std::uint8_t> object_reach;
  /// Reachability class of every stub (a stub unreachable by all four
  /// families is dead and was dropped from the process's stub table).
  std::map<rm::StubKey, std::uint8_t> stub_reach;
  /// The new stub set after the collection (§2.2.2).
  std::set<rm::StubKey> live_stubs;
  /// Objects swept by this collection.
  std::vector<ObjectId> reclaimed;
  /// Objects whose finalizer resurrected them (Figure 6/7 experiment).
  std::uint64_t resurrected{0};
  /// Objects visited across all traces (cost proxy).
  std::uint64_t traced{0};
};

struct LgcConfig {
  /// Finalization strategy applied to locally-unreachable finalizable
  /// objects; kNone collects them like any other garbage.
  Finalizer* finalizer{nullptr};
  /// When false, stubs unreachable by every family are kept (used by tests
  /// that want to inspect the would-be-dropped set).
  bool drop_dead_stubs{true};
  /// Union Rule enforcement (trace phases 3/4).  Turning it off makes the
  /// collector behave like a classical replication-blind DGC — the unsafe
  /// comparison of Figure 1, used by tests and the ablation bench to show
  /// live data being lost.
  bool union_rule{true};
};

class Lgc {
 public:
  /// Runs one stop-the-world local collection on `process`.
  static LgcResult collect(rm::Process& process, const LgcConfig& config = {});

  /// Shared tracing helper (also used by snapshot summarization): BFS over
  /// the local heap from `seeds`, OR-ing `bit` into the masks of every
  /// object and stub reached.  A reference to a non-local object marks all
  /// stubs designating it; a seed with no local replica marks its stubs.
  static void trace(const rm::Process& process,
                    const std::vector<ObjectId>& seeds, std::uint8_t bit,
                    std::map<ObjectId, std::uint8_t>& object_mask,
                    std::map<rm::StubKey, std::uint8_t>& stub_mask,
                    std::uint64_t* traced = nullptr);
};

}  // namespace rgc::gc
