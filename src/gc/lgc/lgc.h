// Local Garbage Collector (§2.2.2).
//
// A per-process tracing collector with the paper's two extensions:
//  1. it traces not only from local roots but also from scions (incoming
//     remote references keep objects alive), and
//  2. Union Rule: it additionally traces from the inPropList/outPropList
//     entries, so a replica that was propagated from or to another process
//     is preserved even when locally unreachable — only the distributed
//     protocols (ADGC Unreachable/Reclaim hand-shake or a cycle-detector
//     verdict) may unlock it.
//
// The collection returns per-object reachability classes (which of the four
// trace families reached it) — the ADGC bases its Unreachable/Reclaim
// decisions on exactly this classification — and regenerates the stub set
// ("for each outgoing inter-process reference it creates a stub in the new
// set of stubs").
//
// The collection is split into two halves so the cluster can overlap the
// expensive part across processes (docs/PERFORMANCE.md):
//  - mark()  — the four trace families.  Logically read-only: reachability
//    lands in the intrusive epoch-validated masks on Object/Stub
//    (rm/object.h) and the process-owned scratch worklist (rm::MarkScratch),
//    so it allocates nothing at steady state and is safe to run for
//    different processes on different threads concurrently.
//  - apply() — sweep, finalization, stub-set regeneration, metrics, and
//    tracing.  Mutates the process and touches shared sinks (Trace,
//    Finalizer), so the cluster runs it serially in pid order.
// collect() == mark() + apply() and is what single-process callers use.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "gc/lgc/finalizer.h"
#include "rm/process.h"
#include "rm/tables.h"
#include "util/flat_map.h"
#include "util/flat_set.h"
#include "util/ids.h"

namespace rgc::gc {

/// Bitmask of trace families that reached an entity.
enum ReachBit : std::uint8_t {
  kReachRoot = 1u << 0,    // local roots (incl. transient invocation roots)
  kReachScion = 1u << 1,   // incoming remote references
  kReachInProp = 1u << 2,  // Union Rule: replica propagated *into* here
  kReachOutProp = 1u << 3, // Union Rule: replica propagated *out of* here
};

struct LgcResult {
  /// Reachability class of every surviving object (key-ordered).
  util::FlatMap<ObjectId, std::uint8_t> object_reach;
  /// Reachability class of every reached stub (a stub unreachable by all
  /// four families is dead and was dropped from the process's stub table).
  util::FlatMap<rm::StubKey, std::uint8_t> stub_reach;
  /// The new stub set after the collection (§2.2.2).
  util::FlatSet<rm::StubKey> live_stubs;
  /// Objects swept by this collection.
  std::vector<ObjectId> reclaimed;
  /// Objects whose finalizer resurrected them (Figure 6/7 experiment).
  std::uint64_t resurrected{0};
  /// Objects visited across all traces (cost proxy).
  std::uint64_t traced{0};
};

/// Token handed from mark() to apply(): identifies the mark epoch whose
/// masks encode the reachability classification.
struct LgcMark {
  std::uint64_t epoch{0};
  std::uint64_t traced{0};
};

struct LgcConfig {
  /// Finalization strategy applied to locally-unreachable finalizable
  /// objects; kNone collects them like any other garbage.
  Finalizer* finalizer{nullptr};
  /// When false, stubs unreachable by every family are kept (used by tests
  /// that want to inspect the would-be-dropped set).
  bool drop_dead_stubs{true};
  /// Union Rule enforcement (trace phases 3/4).  Turning it off makes the
  /// collector behave like a classical replication-blind DGC — the unsafe
  /// comparison of Figure 1, used by tests and the ablation bench to show
  /// live data being lost.
  bool union_rule{true};
};

class Lgc {
 public:
  /// Runs one stop-the-world local collection on `process`.
  static LgcResult collect(rm::Process& process, const LgcConfig& config = {});

  /// Trace half: runs the four trace families in a fresh mark epoch.
  /// Thread-safe across *different* processes (per-process state only; no
  /// logging, tracing, or metrics).
  static LgcMark mark(const rm::Process& process, const LgcConfig& config = {});

  /// Mutating half: sweeps the heap and regenerates the stub set from the
  /// masks of `marked.epoch`, records metrics and the collection span.
  /// Must run on the thread that owns the simulation (serial).
  static LgcResult apply(rm::Process& process, const LgcMark& marked,
                         const LgcConfig& config = {});

  // ---- Tracing primitives (shared with snapshot summarization) ---------
  //
  // All three operate on the process's current mark epoch (established by
  // rm::Process::begin_mark_epoch) and its scratch worklist.

  /// Marks `id` with `bit` and enqueues it; a seed with no local replica
  /// marks its stubs instead (keeps the chain alive).
  static void seed(const rm::Process& process, ObjectId id, std::uint8_t bit);

  /// BFS from every enqueued-but-unprocessed object, OR-ing `bit` into the
  /// masks of every object and stub reached.  A reference to a non-local
  /// object marks the stubs designating it.  Bumps *traced once per visited
  /// object when non-null.
  static void drain(const rm::Process& process, std::uint8_t bit,
                    std::uint64_t* traced = nullptr);

  /// seed() every element, then drain().
  static void trace(const rm::Process& process, std::span<const ObjectId> seeds,
                    std::uint8_t bit, std::uint64_t* traced = nullptr);
};

}  // namespace rgc::gc
