// Finalization strategies for locally-unreachable replicas.
//
// §5.1 of the paper measures the cost of enforcing the Union Rule with
// user-level finalizers: a replica that becomes locally unreachable must be
// *preserved* (it may still be propagated to another process) and must be
// able to detect local unreachability again later.  The paper benchmarks
// two techniques on two runtimes (Java/.NET): object *reconstruction*
// (rebuild the object, replacing internal references with proxies — the
// only option when finalizers run once per object, as in Java) and
// *re-registration for finalization* (.NET's ReRegisterForFinalize).
//
// Our LGC hosts the same strategies natively:
//  - kNone                 — "Empty LGC": nothing finalizable.
//  - kReconstructionFresh  — Java-like: a brand-new object is materialized,
//                            every internal reference is replaced by a
//                            freshly allocated proxy, and the new object is
//                            re-inserted into the heap.
//  - kReconstructionInPlace— .NET-like reconstruction: same proxy work but
//                            the object identity is reused.
//  - kReRegister           — .NET-like ReRegisterForFinalize: flip a bit.
// All resurrecting strategies keep the object alive so the next collection
// finalizes it again — the paper's worst case.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rm/object.h"
#include "util/ids.h"

namespace rgc::gc {

enum class FinalizeStrategy {
  kNone,
  kReconstructionFresh,
  kReconstructionInPlace,
  kReRegister,
};

/// Runs the strategy on one locally-unreachable finalizable object.
/// Returns true when the object was resurrected (must survive the sweep).
class Finalizer {
 public:
  explicit Finalizer(FinalizeStrategy strategy) noexcept
      : strategy_(strategy) {}

  [[nodiscard]] FinalizeStrategy strategy() const noexcept { return strategy_; }

  /// Applies the strategy to `obj`.  Resurrection work (proxy allocation,
  /// object rebuild) is performed for real so the benchmark measures real
  /// costs; proxies are retained in an arena to defeat dead-code
  /// elimination and to model the memory the technique actually consumes.
  bool finalize(rm::Object& obj);

  /// Number of finalizations executed (test/benchmark introspection).
  [[nodiscard]] std::uint64_t finalized_count() const noexcept {
    return finalized_;
  }

  /// Drops the proxy arena (between benchmark iterations).
  void reset() noexcept;

  /// Frees the accumulated proxies but keeps the finalization count —
  /// models the local collector reclaiming the previous cycle's proxies
  /// (each resurrection re-points the object at fresh ones).
  void release_arena() noexcept { arena_.clear(); }

 private:
  struct Proxy {
    ObjectId designates{kNoObject};
    std::uint64_t cookie{0};
  };

  FinalizeStrategy strategy_;
  std::uint64_t finalized_{0};
  std::vector<std::unique_ptr<Proxy>> arena_;
};

}  // namespace rgc::gc
