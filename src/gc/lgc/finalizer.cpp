#include "gc/lgc/finalizer.h"

#include <utility>

namespace rgc::gc {

bool Finalizer::finalize(rm::Object& obj) {
  ++finalized_;
  switch (strategy_) {
    case FinalizeStrategy::kNone:
      return false;  // plain collection, no resurrection

    case FinalizeStrategy::kReconstructionFresh: {
      // Java-like: finalize() runs once per object, so preserving the
      // replica requires building a *new* object: copy the reference list,
      // replace each reference with a freshly allocated proxy, re-insert.
      rm::Object rebuilt;
      rebuilt.id = obj.id;
      rebuilt.payload_bytes = obj.payload_bytes;
      rebuilt.refs.reserve(obj.refs.size());
      for (const rm::Ref& r : obj.refs) {
        auto proxy = std::make_unique<Proxy>();
        proxy->designates = r.target;
        proxy->cookie = raw(r.target) ^ raw(obj.id);
        rebuilt.refs.push_back(r);
        arena_.push_back(std::move(proxy));
      }
      rebuilt.finalizable = true;
      obj = std::move(rebuilt);
      return true;
    }

    case FinalizeStrategy::kReconstructionInPlace: {
      // .NET-like reconstruction: identity reused, but every internal
      // reference is still routed through a new proxy.
      for (const rm::Ref& r : obj.refs) {
        auto proxy = std::make_unique<Proxy>();
        proxy->designates = r.target;
        proxy->cookie = raw(r.target) ^ raw(obj.id);
        arena_.push_back(std::move(proxy));
      }
      return true;
    }

    case FinalizeStrategy::kReRegister:
      // .NET ReRegisterForFinalize: constant-time re-arm.
      obj.finalizable = true;
      return true;
  }
  return false;
}

void Finalizer::reset() noexcept {
  finalized_ = 0;
  arena_.clear();
}

}  // namespace rgc::gc
