// Structured health findings produced by the online auditor (obs/audit.h).
//
// A Finding is one observed invariant violation (or transient anomaly) with
// a severity, the invariant's stable name, and the process it was observed
// at; a HealthReport is one audit run's worth of findings plus run
// bookkeeping.  Deliberately dependency-light (ids + strings only) so the
// cluster facade and the report layer can embed it without pulling in the
// auditor itself.
//
// Severity semantics:
//  - kOk    — informational; never rendered as a finding.
//  - kWarn  — a state that is legal while specific traffic is in flight
//             (e.g. an inProp whose outProp twin is severed while a Reclaim
//             travels) or expected to converge at the next collection.
//  - kError — a protocol invariant is violated; on a healthy build this
//             indicates corruption or a collector bug.  CI fails on any.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/ids.h"

namespace rgc::obs {

enum class Severity : std::uint8_t { kOk = 0, kWarn = 1, kError = 2 };

[[nodiscard]] inline const char* to_string(Severity s) noexcept {
  switch (s) {
    case Severity::kWarn:
      return "WARN";
    case Severity::kError:
      return "ERROR";
    case Severity::kOk:
    default:
      return "OK";
  }
}

struct Finding {
  Severity severity{Severity::kOk};
  /// Stable invariant name, e.g. "stub_scion", "prop_pairing",
  /// "net_conservation", "cdm_lineage", "reclaim_safety", "oracle".
  std::string invariant;
  /// Process the violation was observed at; kNoProcess for cluster-wide
  /// findings (conservation identities span the whole transport).
  ProcessId process{kNoProcess};
  std::string detail;

  [[nodiscard]] std::string to_string() const {
    std::string out = "[";
    out += obs::to_string(severity);
    out += "] ";
    out += invariant;
    if (process != kNoProcess) {
      out += " @ ";
      out += rgc::to_string(process);
    }
    out += ": ";
    out += detail;
    return out;
  }
};

struct HealthReport {
  /// Simulation step the audit ran at.
  std::uint64_t step{0};
  /// Cumulative scheduled/deep run counts at the time of this report.
  std::uint64_t audit_runs{0};
  std::uint64_t deep_runs{0};
  /// True when this report includes the deep (mark-based) checks.
  bool deep{false};
  std::vector<Finding> findings;

  [[nodiscard]] std::size_t errors() const {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.severity == Severity::kError;
    return n;
  }
  [[nodiscard]] std::size_t warnings() const {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.severity == Severity::kWarn;
    return n;
  }
  [[nodiscard]] Severity worst() const {
    Severity w = Severity::kOk;
    for (const Finding& f : findings) {
      if (f.severity > w) w = f.severity;
    }
    return w;
  }
  /// Worst severity per process (processes without findings are omitted).
  [[nodiscard]] std::vector<std::pair<ProcessId, Severity>> per_process() const {
    std::vector<std::pair<ProcessId, Severity>> out;
    for (const Finding& f : findings) {
      if (f.process == kNoProcess) continue;
      bool found = false;
      for (auto& [pid, sev] : out) {
        if (pid == f.process) {
          if (f.severity > sev) sev = f.severity;
          found = true;
          break;
        }
      }
      if (!found) out.emplace_back(f.process, f.severity);
    }
    return out;
  }

  [[nodiscard]] std::string to_string() const {
    std::string out = "health @ step " + std::to_string(step) + ": " +
                      obs::to_string(worst()) + " (" +
                      std::to_string(errors()) + " errors, " +
                      std::to_string(warnings()) + " warnings, " +
                      (deep ? "deep" : "shallow") + " audit)";
    for (const Finding& f : findings) {
      out += "\n  ";
      out += f.to_string();
    }
    return out;
  }
};

}  // namespace rgc::obs
