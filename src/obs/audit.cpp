#include "obs/audit.h"

#include <algorithm>
#include <iterator>

#include "core/cluster.h"
#include "core/oracle.h"
#include "gc/cycle/cdm.h"
#include "gc/lgc/lgc.h"
#include "rm/process.h"

namespace rgc::obs {

HealthAuditor::HealthAuditor(core::Cluster& cluster, AuditConfig config)
    : cluster_(cluster), config_(config) {
  runs_ = metrics_.counter("audit.runs");
  deep_runs_total_ = metrics_.counter("audit.deep_runs");
  findings_error_total_ = metrics_.counter("audit.findings_error_total");
  findings_warn_total_ = metrics_.counter("audit.findings_warn_total");
  last_errors_ = metrics_.gauge("audit.last_errors");
  last_warnings_ = metrics_.gauge("audit.last_warnings");
  floating_scions_ = metrics_.gauge("audit.floating_scions");
  floating_garbage_ = metrics_.gauge("audit.floating_garbage");
  floating_garbage_age_ = metrics_.gauge("gc.floating_garbage_age");
}

// ---- Transport observer: CDM lineage + cut whitelist ----------------------

void HealthAuditor::on_send(const net::Envelope& env) {
  if (const auto* m = dynamic_cast<const gc::CdmMsg*>(env.msg)) {
    ++cdm_outstanding_[m->cdm.detection_id];
  }
}

void HealthAuditor::on_duplicate(const net::Envelope& env) {
  if (const auto* m = dynamic_cast<const gc::CdmMsg*>(env.msg)) {
    ++cdm_outstanding_[m->cdm.detection_id];
  }
}

void HealthAuditor::on_deliver(const net::Envelope& env) {
  if (const auto* m = dynamic_cast<const gc::CdmMsg*>(env.msg)) {
    auto& balance = cdm_outstanding_[m->cdm.detection_id];
    if (--balance < 0 && !cdm_negative_) {
      cdm_negative_ = true;
      cdm_negative_detail_ = "detection " +
                             std::to_string(m->cdm.detection_id) +
                             " delivered more CDMs than were issued";
    }
    return;
  }
  if (const auto* cut = dynamic_cast<const gc::CutMsg*>(env.msg)) {
    // The cut is about to delete scions at env.dst; their stub twins stay
    // behind at the holders until the holders' next LGC retires them.
    for (const auto& sc : cut->scion_cuts) {
      cut_pending_.emplace(sc.first.src_process,
                           rm::StubKey{sc.first.anchor, env.dst});
    }
  }
}

void HealthAuditor::on_drop(const net::Envelope& env) {
  if (const auto* m = dynamic_cast<const gc::CdmMsg*>(env.msg)) {
    auto& balance = cdm_outstanding_[m->cdm.detection_id];
    if (--balance < 0 && !cdm_negative_) {
      cdm_negative_ = true;
      cdm_negative_detail_ = "detection " +
                             std::to_string(m->cdm.detection_id) +
                             " dropped more CDMs than were issued";
    }
  }
}

// ---- Crash/recovery awareness ----------------------------------------------

void HealthAuditor::note_crash(ProcessId pid, const util::Metrics& metrics) {
  dead_cdms_sent_ +=
      metrics.get("cycle.cdms_sent") + metrics.get("baseline.cdms_sent");
  dead_cdms_received_ +=
      metrics.get("cycle.cdms_received") + metrics.get("baseline.cdms_received");
  for (auto it = cut_pending_.begin(); it != cut_pending_.end();) {
    const auto& [holder, key] = *it;
    it = holder == pid || key.target_process == pid ? cut_pending_.erase(it)
                                                    : std::next(it);
  }
  metrics_.add("audit.crashes_noted");
}

void HealthAuditor::note_restart(ProcessId pid) {
  (void)pid;
  metrics_.add("audit.restarts_noted");
}

// ---- Audit driver ----------------------------------------------------------

const HealthReport& HealthAuditor::run_scheduled() {
  ++scheduled_runs_;
  const bool deep =
      config_.deep_every != 0 && scheduled_runs_ % config_.deep_every == 0;
  return run(deep);
}

const HealthReport& HealthAuditor::run_deep() { return run(true); }

const HealthReport& HealthAuditor::run(bool deep) {
  HealthReport out;
  out.step = cluster_.now();
  out.deep = deep;

  update_heap_gauges();
  check_stub_scion(out);
  check_prop_pairing(out);
  check_conservation(out);
  check_cdm_lineage(out);
  if (deep) {
    deep_checks(out);
    if (config_.oracle_assist) oracle_checks(out);
  }

  runs_.inc();
  if (deep) deep_runs_total_.inc();
  out.audit_runs = runs_.value();
  out.deep_runs = deep_runs_total_.value();
  findings_error_total_.inc(out.errors());
  findings_warn_total_.inc(out.warnings());
  last_errors_.set(out.errors());
  last_warnings_.set(out.warnings());
  report_ = std::move(out);
  return report_;
}

void HealthAuditor::update_heap_gauges() {
  for (ProcessId pid : cluster_.process_ids()) {
    rm::Process& proc = cluster_.process(pid);
    const rm::Heap& heap = proc.heap();
    proc.metrics().gauge("process.heap_slab_bytes").set(heap.slab_bytes());
    proc.metrics().gauge("process.heap_live_fraction").set(heap.live_percent());
  }
}

// ---- Shallow checks --------------------------------------------------------

void HealthAuditor::check_stub_scion(HealthReport& out) {
  // Retire whitelist entries that resolved: stub gone (holder's LGC caught
  // up) or scion restored (the cut was stale / the link was re-exported).
  // Entries naming a currently-dead pid wait untouched (note_crash purges
  // those created before the crash; a restart may re-create the state).
  for (auto it = cut_pending_.begin(); it != cut_pending_.end();) {
    const auto& [holder, key] = *it;
    if (!cluster_.is_alive(holder) || !cluster_.is_alive(key.target_process)) {
      ++it;
      continue;
    }
    const rm::Process& proc = cluster_.process(holder);
    const bool stub_gone = proc.find_stub(key) == nullptr;
    bool scion_back = false;
    if (!stub_gone) {
      const rm::Process& target = cluster_.process(key.target_process);
      scion_back =
          target.scions().contains(rm::ScionKey{holder, key.target});
    }
    it = stub_gone || scion_back ? cut_pending_.erase(it) : std::next(it);
  }

  const net::Network& net = cluster_.network();
  // Reconciliation traffic legitimately rebuilds (or severs) stub/scion
  // pairs; while any is in flight a mismatch is transient, not a violation.
  const bool reconciling = net.in_flight_of("Recover") != 0 ||
                           net.in_flight_of("Rebind") != 0 ||
                           net.in_flight_of("RebindNack") != 0 ||
                           net.in_flight_of("PropSync") != 0;
  const std::uint64_t lease_timeout = cluster_.config().lease_timeout;
  const std::uint64_t now = cluster_.now();

  std::uint64_t floating_scions = 0;
  for (ProcessId pid : cluster_.process_ids()) {
    const rm::Process& proc = cluster_.process(pid);

    // Every stub must have its scion twin ("clean before send propagate"
    // creates the scion causally before the stub can exist, so an in-flight
    // Propagate never explains a missing one).
    for (const auto& [key, stub] : proc.stubs()) {
      // A stub toward a crashed process is the surviving half of a
      // reference the reconciliation protocol settles at restart — the
      // remote state is unobservable until then.
      if (!cluster_.is_alive(key.target_process)) continue;
      const rm::Process& target = cluster_.process(key.target_process);
      auto sit = target.scions().find(rm::ScionKey{pid, key.target});
      if (sit == target.scions().end()) {
        const bool pending = cut_pending_.contains({pid, key});
        // Recovery windows where the missing twin is expected: the target
        // lease-expired us (rebind pending), a partition blocks the pair,
        // or reconciliation traffic is still in flight.
        const bool lease_retired =
            lease_timeout > 0 && now >= target.last_heard(pid) + lease_timeout;
        const bool unreachable = !net.reachable(pid, key.target_process);
        const char* why = pending ? " awaiting post-cut LGC retirement"
                          : lease_retired
                              ? " lease-retired, awaiting rebind"
                          : unreachable ? " unreachable (partitioned)"
                          : reconciling ? " reconciliation in flight"
                                        : " has no matching scion";
        const bool benign = pending || lease_retired || unreachable ||
                            reconciling;
        out.findings.push_back(Finding{
            benign ? Severity::kWarn : Severity::kError, "stub_scion", pid,
            "stub " + rgc::to_string(key.target) + "->" +
                rgc::to_string(key.target_process) + why});
        continue;
      }
      // The stub's IC leads the scion's while an Invoke travels; the scion
      // leading the stub happens when a retired stub was re-created (the
      // persisted scion keeps the old count) — anomalous but benign.
      if (sit->second.ic > stub.ic) {
        out.findings.push_back(Finding{
            Severity::kWarn, "ic_skew", pid,
            "scion IC " + std::to_string(sit->second.ic) + " leads stub IC " +
                std::to_string(stub.ic) + " for " +
                rgc::to_string(key.target) + "@" +
                rgc::to_string(key.target_process)});
      }
    }

    // Scions without stub twins are normal floating state (stub retired,
    // NewSetStubs round not yet landed): a gauge, not a finding.  A scion
    // owned by a crashed process counts as floating until the owner
    // restarts and rebinds (or its lease expires).
    for (const auto& [key, scion] : proc.scions()) {
      if (!cluster_.is_alive(key.src_process)) {
        ++floating_scions;
        continue;
      }
      const rm::Process& holder = cluster_.process(key.src_process);
      if (holder.find_stub(rm::StubKey{key.anchor, pid}) == nullptr) {
        ++floating_scions;
      }
    }
  }
  floating_scions_.set(floating_scions);
}

void HealthAuditor::check_prop_pairing(HealthReport& out) {
  // Pairing mismatches are legal exactly while link-mutating traffic is in
  // flight: Propagate creates the outProp before the inProp exists, Reclaim
  // severs the outProp side first, Cut severs the inProp side first (the
  // PropCut completes it).  Once that plane is quiet, both lists must agree
  // edge for edge.
  const net::Network& net = cluster_.network();
  const bool quiet = net.in_flight_of("Propagate") == 0 &&
                     net.in_flight_of("Reclaim") == 0 &&
                     net.in_flight_of("Cut") == 0 &&
                     net.in_flight_of("PropCut") == 0 &&
                     net.in_flight_of("PropSync") == 0;
  const Severity sev = quiet ? Severity::kError : Severity::kWarn;

  for (ProcessId pid : cluster_.process_ids()) {
    const rm::Process& proc = cluster_.process(pid);
    for (const rm::InProp& e : proc.in_props()) {
      // A dead or unreachable partner's half of the link is unobservable;
      // lease expiry or restart reconciliation settles it.
      if (!cluster_.is_alive(e.process) || !net.reachable(pid, e.process)) {
        continue;
      }
      const rm::Process& parent = cluster_.process(e.process);
      if (parent.find_out_prop(e.object, pid) == nullptr) {
        out.findings.push_back(Finding{
            sev, "prop_pairing", pid,
            "inProp " + rgc::to_string(e.object) + " from " +
                rgc::to_string(e.process) + " has no outProp twin" +
                (quiet ? "" : " (link traffic in flight)")});
      }
    }
    for (const rm::OutProp& e : proc.out_props()) {
      if (!cluster_.is_alive(e.process) || !net.reachable(pid, e.process)) {
        continue;
      }
      const rm::Process& child = cluster_.process(e.process);
      if (child.find_in_prop(e.object, pid) == nullptr) {
        out.findings.push_back(Finding{
            sev, "prop_pairing", pid,
            "outProp " + rgc::to_string(e.object) + " to " +
                rgc::to_string(e.process) + " has no inProp twin" +
                (quiet ? "" : " (link traffic in flight)")});
      }
    }
  }
}

void HealthAuditor::check_conservation(HealthReport& out) {
  // Per-kind transport conservation: everything issued is accounted for.
  for (const net::Network::KindFlow& f : cluster_.network().kind_flows()) {
    const std::uint64_t issued = f.sent + f.duplicated;
    const std::uint64_t accounted = f.delivered + f.dropped + f.in_flight;
    if (issued != accounted) {
      out.findings.push_back(Finding{
          Severity::kError, "net_conservation", kNoProcess,
          f.kind + ": sent " + std::to_string(f.sent) + " + duplicated " +
              std::to_string(f.duplicated) + " != delivered " +
              std::to_string(f.delivered) + " + dropped " +
              std::to_string(f.dropped) + " + in-flight " +
              std::to_string(f.in_flight)});
    }
  }

  // Cross-layer identity: every CDM on the wire was issued by a detector
  // and every delivery reached one.
  std::uint64_t det_sent = dead_cdms_sent_;
  std::uint64_t det_received = dead_cdms_received_;
  for (ProcessId pid : cluster_.process_ids()) {
    const util::Metrics& m = cluster_.process(pid).metrics();
    det_sent += m.get("cycle.cdms_sent") + m.get("baseline.cdms_sent");
    det_received +=
        m.get("cycle.cdms_received") + m.get("baseline.cdms_received");
  }
  const util::Metrics& nm = cluster_.network().metrics();
  if (det_sent != nm.get("net.sent.CDM")) {
    out.findings.push_back(Finding{
        Severity::kError, "cdm_conservation", kNoProcess,
        "detectors issued " + std::to_string(det_sent) +
            " CDMs but the network sent " +
            std::to_string(nm.get("net.sent.CDM"))});
  }
  if (det_received != nm.get("net.delivered.CDM")) {
    out.findings.push_back(Finding{
        Severity::kError, "cdm_conservation", kNoProcess,
        "network delivered " + std::to_string(nm.get("net.delivered.CDM")) +
            " CDMs but detectors received " + std::to_string(det_received)});
  }
}

void HealthAuditor::check_cdm_lineage(HealthReport& out) {
  if (cdm_negative_) {
    out.findings.push_back(Finding{Severity::kError, "cdm_lineage",
                                   kNoProcess, cdm_negative_detail_});
  }
  // With no CDM in flight, every detection's issued/retired balance must
  // have returned to zero (issued == delivered + dropped).
  const bool quiet = cluster_.network().in_flight_of("CDM") == 0;
  for (auto it = cdm_outstanding_.begin(); it != cdm_outstanding_.end();) {
    if (it->second == 0) {
      it = cdm_outstanding_.erase(it);
      continue;
    }
    if (quiet && it->second > 0) {
      out.findings.push_back(Finding{
          Severity::kError, "cdm_lineage", kNoProcess,
          "detection " + std::to_string(it->first) + " has " +
              std::to_string(it->second) +
              " CDMs unaccounted for with none in flight"});
    }
    ++it;
  }
}

// ---- Deep checks -----------------------------------------------------------

void HealthAuditor::deep_checks(HealthReport& out) {
  const std::uint64_t now = cluster_.now();
  std::uint64_t floating = 0;
  std::uint64_t max_age = 0;

  for (ProcessId pid : cluster_.process_ids()) {
    rm::Process& proc = cluster_.process(pid);
    (void)gc::Lgc::mark(proc);  // read-only; classification lands in masks
    const rm::MarkScratch& scratch = proc.mark_scratch();

    // Recent reclaims on this process, for attributing dangling refs.
    const auto& ring = proc.reclaim_ring();
    const std::size_t ring_n = static_cast<std::size_t>(
        std::min<std::uint64_t>(proc.reclaims_noted(), ring.size()));

    // Reclaim safety: every reference held by a *live* (marked) object must
    // still resolve locally — a replica or a stub chain.  The worklist
    // doubles as the visited list, so this walks exactly the touched state.
    const rm::Heap& heap = proc.heap();
    for (std::uint32_t slot : scratch.queue) {
      const rm::Object& obj = heap.at_slot(slot);
      obj.unlinked_at = 0;  // reachable: clear any stale unlink stamp
      for (const rm::Ref& ref : obj.refs) {
        if (proc.knows(ref.target)) continue;
        std::string detail = "live " + rgc::to_string(obj.id) +
                             " holds a dangling reference to " +
                             rgc::to_string(ref.target);
        for (std::size_t i = 0; i < ring_n; ++i) {
          if (ring[i].object == ref.target) {
            detail += " (reclaimed locally at step " +
                      std::to_string(ring[i].at_step) + ")";
            break;
          }
        }
        out.findings.push_back(
            Finding{Severity::kError, "reclaim_safety", pid, detail});
      }
    }

    // Floating garbage: present but unreached by any trace family — the
    // next collection sweeps it.  Stamp first sighting and age the oldest.
    heap.for_each([&](ObjectId, std::uint32_t slot, const rm::Object& obj) {
      if (heap.marks(slot, scratch.epoch) != 0) return;
      if (obj.unlinked_at == 0) obj.unlinked_at = now;
      ++floating;
      max_age = std::max(max_age, now - obj.unlinked_at);
    });
  }
  floating_garbage_.set(floating);
  floating_garbage_age_.set(max_age);
}

void HealthAuditor::oracle_checks(HealthReport& out) {
  const core::OracleReport oracle = core::Oracle::analyze(cluster_);
  for (const std::string& violation : oracle.violations) {
    out.findings.push_back(
        Finding{Severity::kError, "oracle", kNoProcess, violation});
  }
  // Oracle-assisted stamping: garbage the union rule still shields locally
  // (replicated/distributed garbage) gets its latency clock started here.
  const std::uint64_t now = cluster_.now();
  for (const Replica& r : oracle.replicas) {
    if (oracle.is_live(r.object)) continue;
    rm::Process& proc = cluster_.process(r.process);
    if (rm::Object* obj = proc.heap().find(r.object)) {
      if (obj->unlinked_at == 0) obj->unlinked_at = now;
    }
  }
}

}  // namespace rgc::obs
