#include "obs/dashboard.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <string_view>

#include "core/cluster.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/recorder.h"
#include "rm/process.h"
#include "util/metrics.h"

namespace rgc::obs {
namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof buf - 1));
}

}  // namespace

std::string render_dashboard(const core::Cluster& cluster,
                             DashboardState& state) {
  std::string out;
  out.reserve(2048);

  // ---- Header --------------------------------------------------------
  appendf(out,
          "rgc cluster @ step %llu | %zu processes | %llu objects | "
          "%zu in flight | %zu cycles found\n",
          static_cast<unsigned long long>(cluster.now()),
          cluster.process_count(),
          static_cast<unsigned long long>(cluster.total_objects()),
          cluster.network().in_flight(), cluster.cycles_found().size());

  // ---- Health --------------------------------------------------------
  const HealthReport& health = cluster.health();
  const util::Metrics& am = cluster.auditor().metrics();
  appendf(out,
          "health: %s (%zu errors, %zu warnings, %s audit @ step %llu, "
          "%llu runs) | floating: %llu garbage (max age %llu), %llu scions\n",
          to_string(health.worst()), health.errors(), health.warnings(),
          health.deep ? "deep" : "shallow",
          static_cast<unsigned long long>(health.step),
          static_cast<unsigned long long>(health.audit_runs),
          static_cast<unsigned long long>(am.gauge_value("audit.floating_garbage")),
          static_cast<unsigned long long>(am.gauge_value("gc.floating_garbage_age")),
          static_cast<unsigned long long>(am.gauge_value("audit.floating_scions")));
  constexpr std::size_t kMaxFindings = 8;
  for (std::size_t i = 0; i < health.findings.size() && i < kMaxFindings; ++i) {
    out += "  " + health.findings[i].to_string() + '\n';
  }
  if (health.findings.size() > kMaxFindings) {
    appendf(out, "  ... and %zu more findings\n",
            health.findings.size() - kMaxFindings);
  }

  // ---- Memory ----------------------------------------------------------
  std::uint64_t slab_bytes = 0;
  std::uint64_t live_objects = 0;
  std::uint64_t slab_slots = 0;
  for (ProcessId pid : cluster.process_ids()) {
    const rm::Process& proc = cluster.process(pid);
    slab_bytes += proc.metrics().gauge_value("process.heap_slab_bytes");
    live_objects += proc.heap().size();
    slab_slots += proc.heap().slab_size();
  }
  appendf(out,
          "memory: %.1f MiB heap slabs (%llu%% live) | peak RSS %.1f MiB\n",
          static_cast<double>(slab_bytes) / (1024.0 * 1024.0),
          static_cast<unsigned long long>(
              slab_slots == 0 ? 100 : live_objects * 100 / slab_slots),
          static_cast<double>(
              cluster.profile().gauge_value("cluster.peak_rss_bytes")) /
              (1024.0 * 1024.0));

  // ---- GC daemon / adaptive policy ------------------------------------
  // Only present when a GcDaemon drives this cluster (the counters live in
  // the network registry, zero otherwise).
  const util::Metrics& nm = cluster.network().metrics();
  if (nm.get("daemon.collections") != 0 || nm.get("daemon.sweeps") != 0) {
    appendf(out,
            "daemon: %llu collections (%llu skipped) | %llu sweeps (%llu "
            "skipped, %llu forced) | %llu detections | deferred budget %llu "
            "| %.1f KiB snapshots\n",
            static_cast<unsigned long long>(nm.get("daemon.collections")),
            static_cast<unsigned long long>(nm.get("daemon.skipped_collections")),
            static_cast<unsigned long long>(nm.get("daemon.sweeps")),
            static_cast<unsigned long long>(nm.get("daemon.skipped_sweeps")),
            static_cast<unsigned long long>(nm.get("daemon.forced_sweeps")),
            static_cast<unsigned long long>(nm.get("daemon.detections_started")),
            static_cast<unsigned long long>(nm.gauge_value("daemon.deferred_budget")),
            static_cast<double>(nm.get("daemon.snapshot_bytes")) / 1024.0);
  }

  // ---- Flight recorder -------------------------------------------------
  if (const FlightRecorder* rec = cluster.recorder()) {
    appendf(out,
            "recorder: depth %llu/%zu per ring | %llu appended, %llu "
            "overwritten%s\n",
            static_cast<unsigned long long>(rec->depth()), rec->capacity(),
            static_cast<unsigned long long>(rec->appended()),
            static_cast<unsigned long long>(rec->dropped()),
            rec->divergence().found ? " | REPLAY DIVERGED" : "");
  }

  // ---- Slowest cycles (cost ledger) -----------------------------------
  if (const Ledger* ledger = cluster.ledger();
      ledger != nullptr && ledger->completed() != 0) {
    appendf(out, "slowest cycles (%llu reclaimed, %zu live):\n",
            static_cast<unsigned long long>(ledger->completed()),
            ledger->live());
    constexpr std::size_t kPanelRows = 4;
    for (const LedgerEntry* e : ledger->slowest(kPanelRows)) {
      appendf(out,
              "  #%llu %s@%s  e2e %llu = detect %llu + cut %llu + sweep "
              "%llu | %zu hops | %s\n",
              static_cast<unsigned long long>(e->detection_id),
              rgc::to_string(e->candidate).c_str(),
              rgc::to_string(e->candidate_process).c_str(),
              static_cast<unsigned long long>(e->e2e_steps),
              static_cast<unsigned long long>(e->detect_steps),
              static_cast<unsigned long long>(e->cut_wait_steps +
                                              e->cut_transit_steps),
              static_cast<unsigned long long>(e->sweep_wait_steps),
              e->path.size(), e->dominant().c_str());
    }
  }

  // ---- Per-process table ----------------------------------------------
  out += "process   objects   roots   stubs  scions   inP  outP  reclaimed\n";
  for (ProcessId pid : cluster.process_ids()) {
    const rm::Process& proc = cluster.process(pid);
    appendf(out, "%-8s %8zu %7zu %7zu %7zu %5zu %5zu %10llu\n",
            rgc::to_string(pid).c_str(), proc.heap().size(),
            proc.heap().roots().size(), proc.stubs().size(),
            proc.scions().size(), proc.in_props().size(),
            proc.out_props().size(),
            static_cast<unsigned long long>(proc.metrics().get("lgc.reclaimed")));
  }

  // ---- Traffic rates ---------------------------------------------------
  const std::uint64_t steps =
      cluster.now() > state.last_step ? cluster.now() - state.last_step : 1;
  out += state.first ? "traffic (totals):\n"
                     : "traffic (per step since last frame):\n";
  constexpr std::string_view kSentPrefix = "net.sent.";
  for (const auto& [name, total] : cluster.network().metrics().snapshot()) {
    if (!name.starts_with(kSentPrefix)) continue;
    const std::string kind = name.substr(kSentPrefix.size());
    const std::uint64_t prev =
        state.first ? 0
                    : (state.last_traffic.contains(name)
                           ? state.last_traffic.at(name)
                           : 0);
    if (state.first) {
      appendf(out, "  %-12s total %llu\n", kind.c_str(),
              static_cast<unsigned long long>(total));
    } else {
      appendf(out, "  %-12s %8.2f/step  (total %llu)\n", kind.c_str(),
              static_cast<double>(total - prev) / static_cast<double>(steps),
              static_cast<unsigned long long>(total));
    }
    state.last_traffic[name] = total;
  }

  // ---- Reclaim latency (merged across processes) ----------------------
  util::Histogram latency;
  for (ProcessId pid : cluster.process_ids()) {
    if (const util::Histogram* h = cluster.process(pid).metrics().find_histogram(
            "gc.reclaim_latency_steps")) {
      latency.merge(*h);
    }
  }
  if (latency.count() != 0) {
    out += "reclaim latency (steps): " + latency.to_string() + '\n';
  }

  // ---- Phase wall-clock timers ----------------------------------------
  bool timer_header = false;
  for (const auto& [name, hist] : cluster.profile().histogram_snapshot()) {
    if (hist->count() == 0) continue;
    if (!timer_header) {
      out += "phase timers (wall us):\n";
      timer_header = true;
    }
    appendf(out, "  %-20s mean %8.1f  p99 %8llu  n=%llu\n", name.c_str(),
            hist->mean(),
            static_cast<unsigned long long>(hist->percentile(0.99)),
            static_cast<unsigned long long>(hist->count()));
  }

  state.last_step = cluster.now();
  state.first = false;
  return out;
}

}  // namespace rgc::obs
