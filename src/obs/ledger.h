// Per-cycle cost ledger — critical-path attribution for detection latency
// and CDM traffic (docs/OBSERVABILITY.md "Cycle cost ledger").
//
// The aggregate histograms (cycle.steps_to_detection, cdm.hops) say *that*
// detection took N steps; the ledger says *why*: for every garbage cycle the
// detector proves, it records the full lifecycle — first unlink of the
// candidate, detection start, every CDM hop (send/deliver step, queue-wait
// vs in-flight split, message weight), the verdict, the Cut fan-out and the
// sweep that finally frees the candidate — and extracts the *causal
// critical path*: the unique send/deliver chain from the detection start to
// the verdict CDM through the detection's message tree.  End-to-end reclaim
// latency decomposes exactly along that chain:
//
//   e2e = detect + cut + sweep
//   detect = sum over critical hops of (digest + wait + transit)
//
// where, for a hop delivered at step d and sent at step s whose causing
// delivery landed at step p:  digest = s - p (handler/digest time at the
// sender), transit = NetworkConfig::min_delay (the in-flight floor), and
// wait = d - s - transit (delay jitter plus reliable-FIFO clamping — the
// queueing share).  The telescoping sum makes the identity hold by
// construction; tests/ledger_test.cpp asserts it on real runs.
//
// Traffic attribution: CDM, Cut and PropCut messages carry the detection id
// and are charged to their cycle directly; ADGC (Unreachable/Reclaim) and
// coherence (Propagate/Invoke) messages naming a proven cycle's member
// objects during the verdict→reclaim window are charged to that cycle's
// adgc/coherence component.  All totals are in Message::weight() units.
//
// Determinism contract: the ledger is fed only from serial phases (network
// send/deliver, serial dispatch verdict/cut paths, the serial LGC sweep), so
// its contents — entries, JSONL bytes, every ledger.* metric — are identical
// for any ClusterConfig::threads and for event-skip vs per-step schedules.
// Unlike the flight recorder, its registry is deterministic and therefore
// *included* in the cluster report.
//
// Allocation bounds: at most `max_live` concurrently tracked detections
// (oldest unproven evicted first), `max_hops` hop records per detection and
// `capacity` retained completed entries; overflow is counted, never grown.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "gc/cycle/cdm.h"
#include "net/network.h"
#include "util/ids.h"
#include "util/metrics.h"

namespace rgc::obs {

struct LedgerConfig {
  /// Completed entries retained (ring; oldest overwritten).
  std::size_t capacity{256};
  /// Concurrently tracked live detections.
  std::size_t max_live{64};
  /// Hop records per detection (the CDM tree, not just the chain).
  std::size_t max_hops{256};
  /// Cycle members tracked for reclaim/traffic attribution per entry.
  std::size_t max_members{64};
};

/// One hop of the causal critical path (start -> ... -> verdict CDM).
struct LedgerHop {
  ProcessId src{kNoProcess};
  ProcessId dst{kNoProcess};
  std::uint64_t sent_step{0};
  std::uint64_t deliver_step{0};
  /// sent_step minus the causing delivery's step (detection start for the
  /// first hop): handler/digest time at the sender.
  std::uint64_t digest_steps{0};
  /// Queueing share of the latency: jitter + reliable-FIFO clamping.
  std::uint64_t wait_steps{0};
  /// In-flight floor (NetworkConfig::min_delay, clamped to the latency).
  std::uint64_t transit_steps{0};
  /// Message::weight of the CDM carried by this hop.
  std::uint64_t weight{0};
};

/// One proven cycle's cost record.  Completed entries (candidate reclaimed)
/// carry the full decomposition; live ones are partial.
struct LedgerEntry {
  std::uint64_t detection_id{0};
  ObjectId candidate{kNoObject};
  ProcessId candidate_process{kNoProcess};
  ProcessId verdict_process{kNoProcess};

  // ---- Lifecycle steps -------------------------------------------------
  /// rm::Object::unlinked_at of the candidate at verdict time (0 unknown):
  /// when it lost its last reference, i.e. when it *became* garbage.
  std::uint64_t unlinked_step{0};
  std::uint64_t started_step{0};
  std::uint64_t detected_step{0};
  std::uint64_t cut_sent_step{0};
  std::uint64_t cut_delivered_step{0};
  std::uint64_t reclaimed_step{0};

  // ---- Decomposition (steps); see header comment for the identity ------
  std::uint64_t detect_steps{0};
  std::uint64_t digest_steps{0};
  std::uint64_t wait_steps{0};
  std::uint64_t transit_steps{0};
  std::uint64_t cut_wait_steps{0};
  std::uint64_t cut_transit_steps{0};
  std::uint64_t sweep_wait_steps{0};
  std::uint64_t e2e_steps{0};

  // ---- Traffic attribution (Message::weight units) ---------------------
  std::uint64_t cdm_msgs{0};
  std::uint64_t cdm_weight{0};
  std::uint64_t cdm_dropped{0};
  std::uint64_t cut_msgs{0};  // Cut + PropCut, matched by detection id
  std::uint64_t cut_weight{0};
  std::uint64_t adgc_msgs{0};  // Unreachable/Reclaim naming members
  std::uint64_t adgc_weight{0};
  std::uint64_t coherence_msgs{0};  // Propagate/Invoke naming members
  std::uint64_t coherence_weight{0};

  // ---- Outcome ---------------------------------------------------------
  std::uint64_t hops{0};  // CDM deliveries on this detection
  std::uint64_t scions_cut{0};
  std::uint64_t props_cut{0};
  std::uint64_t cuts_stale{0};
  std::uint64_t members{0};
  std::uint64_t members_reclaimed{0};
  bool complete{false};

  /// The causal chain, start-most hop first; empty for detections proven
  /// locally without any CDM leaving the start process.
  std::vector<LedgerHop> path;

  /// Dominant-latency blame label for the slowest single contribution, e.g.
  /// "wait P1->P2", "digest P0", "cut-wait", "sweep P3".
  [[nodiscard]] std::string dominant() const;

  /// One JSON object (single line, no trailing newline).
  [[nodiscard]] std::string to_json() const;
};

/// The ledger.  Owned by core::Cluster (ClusterConfig::ledger_capacity),
/// fed via Network::add_observer plus direct hooks from the serial verdict,
/// cut and sweep paths.
class Ledger final : public net::Network::Observer {
 public:
  explicit Ledger(LedgerConfig config = {});

  /// Supplies the clock and delay floor (borrowed, may be null in tests —
  /// steps then fall back to envelope stamps and transit to 1).
  void bind(const net::Network* net) noexcept { net_ = net; }

  // ---- Transport hooks (net::Network::Observer) -------------------------
  void on_send(const net::Envelope& env) override;
  void on_deliver(const net::Envelope& env) override;
  void on_drop(const net::Envelope& env) override;
  void on_duplicate(const net::Envelope& env) override;

  // ---- Lifecycle hooks (serial phases only) -----------------------------
  /// Verdict: `at` proved the cycle `cdm` describes.  `unlinked_step` is
  /// the candidate object's unlinked_at stamp (0 when unknown).  First
  /// verdict wins; duplicates are counted and ignored.
  void cycle_proven(ProcessId at, const gc::Cdm& cdm,
                    std::uint64_t unlinked_step);
  /// The candidate's process applied (or skipped) a Cut verdict.
  void cut_applied(std::uint64_t detection_id, std::uint64_t scions_cut,
                   std::uint64_t props_cut, std::uint64_t stale);
  /// The LGC sweep on `pid` freed `object` at `step`.  The candidate's
  /// reclaim completes its entry; member reclaims are counted.
  void object_reclaimed(ProcessId pid, ObjectId object, std::uint64_t step);

  // ---- Queries ----------------------------------------------------------
  /// Completed entries, oldest first (the retained ring).
  [[nodiscard]] std::vector<const LedgerEntry*> entries() const;
  /// Completed entries sorted by e2e_steps descending, at most k.
  [[nodiscard]] std::vector<const LedgerEntry*> slowest(std::size_t k) const;
  /// Entry (completed or live) for a detection id; null when unknown.
  [[nodiscard]] const LedgerEntry* find(std::uint64_t detection_id) const;
  /// Human-readable hop-by-hop drill-down (sim_cli --explain-cycle).
  /// detection_id 0 explains the slowest completed cycle.
  [[nodiscard]] std::string explain(std::uint64_t detection_id) const;
  /// One JSON object per completed entry, oldest first.
  void write_jsonl(std::ostream& os) const;

  [[nodiscard]] std::size_t live() const noexcept;
  [[nodiscard]] std::uint64_t completed() const noexcept {
    return completed_total_;
  }
  /// Deterministic ledger.* counters/gauges/histograms — folded into the
  /// cluster report and the Prometheus exposition.
  [[nodiscard]] const util::Metrics& metrics() const noexcept {
    return metrics_;
  }

 private:
  static constexpr std::uint32_t kNoHop = 0xffffffff;

  /// One recorded CDM hop in a live detection's message tree.
  struct HopRec {
    ProcessId src{kNoProcess};
    ProcessId dst{kNoProcess};
    std::uint64_t seq{0};  // link seq: matches a deliver to its send
    std::uint64_t sent_step{0};
    std::uint64_t deliver_step{0};  // 0 while in flight (or dropped)
    std::uint64_t weight{0};
    std::uint32_t parent{kNoHop};  // hop whose delivery caused this send
    bool dropped{false};
  };

  struct LiveRec {
    bool used{false};
    LedgerEntry entry;
    std::vector<HopRec> hops;
    /// pid -> index of the last hop delivered there (send parenting).
    std::map<ProcessId, std::uint32_t> last_delivered;
    bool proven{false};
    std::uint32_t verdict_hop{kNoHop};
    /// Cut send/deliver matching (first Cut toward the candidate).
    std::uint64_t cut_seq{0};
    bool cut_seen{false};
    ProcessId cut_src{kNoProcess};
    bool hop_overflow{false};
  };

  [[nodiscard]] std::uint64_t clock(std::uint64_t fallback) const noexcept;
  [[nodiscard]] std::uint64_t transit_floor() const noexcept;

  /// Live record for `id`, creating (evicting if needed) when absent and
  /// `create` is set; -1 when untracked.
  int slot_of(std::uint64_t id, bool create, const gc::Cdm* cdm);
  void release(int slot);
  void finalize(int slot, std::uint64_t step);
  void attribute_member(ObjectId object, bool adgc, std::uint64_t weight);

  void cdm_send(const net::Envelope& env, const gc::CdmMsg& msg);
  void cdm_deliver(const net::Envelope& env, const gc::CdmMsg& msg);

  LedgerConfig config_;
  const net::Network* net_{nullptr};
  std::vector<LiveRec> live_;
  std::map<std::uint64_t, std::uint32_t> live_index_;  // detection -> slot
  /// Proven cycles' member objects awaiting reclaim -> live slot.
  std::map<ObjectId, std::uint32_t> awaiting_;
  /// Completed-entry ring, plus the count ever completed.
  std::vector<LedgerEntry> done_;
  std::size_t done_next_{0};
  std::uint64_t completed_total_{0};

  util::Metrics metrics_;
  util::Counter tracked_;
  util::Counter proven_;
  util::Counter reclaimed_;
  util::Counter evictions_;
  util::Counter overwritten_;
  util::Counter hop_overflows_;
  util::Counter duplicate_verdicts_;
  util::Counter cdm_msgs_;
  util::Counter cdm_weight_;
  util::Counter cdm_dropped_;
  util::Counter cdm_duplicated_;
  util::Counter cut_msgs_;
  util::Counter cut_weight_;
  util::Counter adgc_msgs_;
  util::Counter adgc_weight_;
  util::Counter coherence_msgs_;
  util::Counter coherence_weight_;
  util::Gauge live_gauge_;
  util::Gauge completed_gauge_;
};

}  // namespace rgc::obs
