#include "obs/prom.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "obs/audit.h"
#include "rm/process.h"
#include "util/metrics.h"

namespace rgc::obs {
namespace {

std::string mangle(std::string_view name) {
  std::string out = "rgc_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) != 0 ? c : '_';
  }
  return out;
}

struct Sample {
  std::string labels;  // e.g. `process="P0"`, may be empty
  std::uint64_t value;
};

using ScalarFamilies = std::map<std::string, std::vector<Sample>>;
using HistFamilies =
    std::map<std::string,
             std::vector<std::pair<std::string, const util::Histogram*>>>;

void emit_scalar(std::ostream& os, const std::string& name, const char* type,
                 const std::vector<Sample>& samples) {
  os << "# TYPE " << name << ' ' << type << '\n';
  for (const Sample& s : samples) {
    os << name;
    if (!s.labels.empty()) os << '{' << s.labels << '}';
    os << ' ' << s.value << '\n';
  }
}

void emit_histogram(
    std::ostream& os, const std::string& name,
    const std::vector<std::pair<std::string, const util::Histogram*>>& samples) {
  os << "# TYPE " << name << " histogram\n";
  for (const auto& [labels, hist] : samples) {
    const char* sep = labels.empty() ? "" : ",";
    std::uint64_t cumulative = 0;
    const auto& buckets = hist->buckets();
    for (std::size_t i = 0; i < buckets.size(); ++i) {
      if (buckets[i] == 0) continue;  // cumulative value unchanged — skip
      cumulative += buckets[i];
      const std::uint64_t le = i == 0 ? 0 : (1ull << i) - 1;
      os << name << "_bucket{" << labels << sep << "le=\"" << le << "\"} "
         << cumulative << '\n';
    }
    os << name << "_bucket{" << labels << sep << "le=\"+Inf\"} "
       << hist->count() << '\n';
    os << name << "_sum";
    if (!labels.empty()) os << '{' << labels << '}';
    os << ' ' << hist->sum() << '\n';
    os << name << "_count";
    if (!labels.empty()) os << '{' << labels << '}';
    os << ' ' << hist->count() << '\n';
  }
}

}  // namespace

void write_prometheus(const core::Cluster& cluster, std::ostream& os) {
  ScalarFamilies counters;
  ScalarFamilies gauges;
  HistFamilies histograms;

  const auto collect = [&](const util::Metrics& m, const std::string& labels) {
    for (const auto& [name, value] : m.snapshot()) {
      counters[mangle(name)].push_back(Sample{labels, value});
    }
    for (const auto& [name, value] : m.gauge_snapshot()) {
      gauges[mangle(name)].push_back(Sample{labels, value});
    }
    for (const auto& [name, hist] : m.histogram_snapshot()) {
      histograms[mangle(name)].emplace_back(labels, hist);
    }
  };

  for (ProcessId pid : cluster.process_ids()) {
    collect(cluster.process(pid).metrics(),
            "process=\"" + rgc::to_string(pid) + "\"");
  }
  collect(cluster.network().metrics(), {});
  collect(cluster.auditor().metrics(), {});
  collect(cluster.profile(), {});
  if (cluster.recorder() != nullptr) {
    collect(cluster.recorder()->metrics(), {});
  }
  if (cluster.ledger() != nullptr) {
    collect(cluster.ledger()->metrics(), {});
  }

  // A histogram family claims its name plus the _bucket/_sum/_count
  // suffixes; a scalar family with the same base name would produce a
  // second TYPE line for it.  Rename scalars out of the way.  The same
  // guard covers a counter and a gauge sharing one name.
  const auto disambiguate = [&](ScalarFamilies& fams,
                                const ScalarFamilies& against) {
    std::vector<std::string> clashing;
    for (const auto& [name, samples] : fams) {
      if (histograms.contains(name) || against.contains(name)) {
        clashing.push_back(name);
      }
    }
    for (const std::string& name : clashing) {
      auto node = fams.extract(name);
      node.key() = name + "_value";
      fams.insert(std::move(node));
    }
  };
  disambiguate(gauges, counters);
  disambiguate(counters, {});

  for (const auto& [name, samples] : counters) {
    emit_scalar(os, name, "counter", samples);
  }
  for (const auto& [name, samples] : gauges) {
    emit_scalar(os, name, "gauge", samples);
  }
  for (const auto& [name, samples] : histograms) {
    emit_histogram(os, name, samples);
  }
}

std::string to_prometheus(const core::Cluster& cluster) {
  std::ostringstream os;
  write_prometheus(cluster, os);
  return os.str();
}

}  // namespace rgc::obs
