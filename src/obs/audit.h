// Online health auditor: always-on, O(touched-state) invariant monitoring.
//
// The test-only core::Oracle proves safety/completeness by re-deriving
// global reachability from scratch — a luxury no production collector has.
// The auditor checks what *can* be checked online, from the same tables and
// counters the protocols maintain anyway:
//
//  shallow (every scheduled audit):
//   - stub <-> scion bipartite matching: every stub {X, Q} held at P must
//     have the scion {P, X} at Q ("clean before send propagate" creates the
//     scion causally before any stub can exist).  A stub whose scion was
//     cut by a cycle verdict is whitelisted until the holder's next LGC
//     drops it (WARN); anything else is an ERROR.  Scions without stubs are
//     normal floating state (the NewSetStubs round retires them) and are
//     exported as a gauge, not a finding.
//   - inPropList <-> outPropList pairing across every propagation edge;
//     mismatches are legal while Propagate/Reclaim/Cut/PropCut traffic is
//     in flight (WARN) and an ERROR once the propagation plane is quiet.
//   - per-kind message conservation on the transport:
//     sent + duplicated == delivered + dropped + in_flight.
//   - CDM conservation per detection lineage (issued == delivered +
//     in-flight + discarded), fed by the net::Network::Observer hooks, plus
//     the cross-layer identity net.sent.CDM == sum of detector cdms_sent.
//
//  deep (every Nth scheduled audit, and on demand via run_deep):
//   - a read-only Lgc::mark per process; live objects' references must all
//     resolve locally (reclaim-safety, cross-checked against the ring of
//     recent reclaims), and unreachable-but-present objects are stamped and
//     aged as floating garbage (gc.floating_garbage_age).
//   - optional oracle assist (tests): core::Oracle violations become ERROR
//     findings and oracle-proven garbage is stamped for latency accounting.
//
// Findings surface as obs::HealthReport entries — never asserts — so the
// same checks run in production builds, the CLI dashboard, and CI chaos
// runs (scripts/check.sh fails on any ERROR).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "net/network.h"
#include "obs/health.h"
#include "rm/tables.h"
#include "util/ids.h"
#include "util/metrics.h"

namespace rgc::core {
class Cluster;
}  // namespace rgc::core

namespace rgc::obs {

struct AuditConfig {
  /// Scheduled cadence in simulation steps; 0 disables scheduled audits
  /// (run_deep still works on demand).
  std::uint64_t interval{64};
  /// Every Nth scheduled audit also runs the deep (mark-based) checks.
  std::uint64_t deep_every{8};
  /// Cross-check against the omniscient core::Oracle on deep audits
  /// (test-only mode: the oracle's global scan is exactly what the online
  /// auditor exists to avoid).
  bool oracle_assist{false};
};

class HealthAuditor final : public net::Network::Observer {
 public:
  HealthAuditor(core::Cluster& cluster, AuditConfig config);

  // ---- net::Network::Observer — CDM lineage accounting ------------------
  void on_send(const net::Envelope& env) override;
  void on_deliver(const net::Envelope& env) override;
  void on_drop(const net::Envelope& env) override;
  void on_duplicate(const net::Envelope& env) override;

  /// One scheduled audit (called by Cluster::step() on the configured
  /// cadence): shallow checks, plus deep checks every deep_every-th run.
  const HealthReport& run_scheduled();

  /// Full audit on demand: shallow + deep (+ oracle when configured).
  const HealthReport& run_deep();

  // ---- Crash/recovery awareness (docs/FAULTS.md) -------------------------

  /// Called by Cluster::kill just before `pid`'s state is destroyed: banks
  /// the dying process's contribution to the cross-layer CDM conservation
  /// identity (its counters are about to vanish while the network totals
  /// remain) and drops cut whitelist entries that named it — so a crash
  /// never manufactures false conservation ERRORs.
  void note_crash(ProcessId pid, const util::Metrics& metrics);

  /// Called by Cluster::restart after `pid` is live again.  The banked
  /// contributions from note_crash stay banked (the restarted process's
  /// counters start from zero); nothing needs undoing — the hook exists so
  /// the recovery is visible in the auditor's own counters.
  void note_restart(ProcessId pid);

  /// Latest report (empty before the first run).
  [[nodiscard]] const HealthReport& report() const noexcept { return report_; }

  /// Auditor-owned registry: counters audit.runs / audit.deep_runs /
  /// audit.findings_error_total / audit.findings_warn_total, gauges
  /// audit.last_errors / audit.last_warnings / audit.floating_scions /
  /// audit.floating_garbage / gc.floating_garbage_age.
  [[nodiscard]] const util::Metrics& metrics() const noexcept { return metrics_; }
  [[nodiscard]] util::Metrics& metrics() noexcept { return metrics_; }

  [[nodiscard]] const AuditConfig& config() const noexcept { return config_; }

 private:
  const HealthReport& run(bool deep);

  /// Refreshes per-process heap gauges (process.heap_slab_bytes /
  /// process.heap_live_fraction) on every scheduled audit.  Both values are
  /// functions of the simulation state alone — the arena's slab and live
  /// count evolve only through the deterministic protocol steps — so they
  /// are safe for deterministic reports, unlike wall-clock or RSS readings.
  void update_heap_gauges();

  void check_stub_scion(HealthReport& out);
  void check_prop_pairing(HealthReport& out);
  void check_conservation(HealthReport& out);
  void check_cdm_lineage(HealthReport& out);
  void deep_checks(HealthReport& out);
  void oracle_checks(HealthReport& out);

  core::Cluster& cluster_;
  AuditConfig config_;
  util::Metrics metrics_;
  HealthReport report_;
  std::uint64_t scheduled_runs_{0};

  // CDM lineage: detection id -> CDMs issued minus (delivered + dropped).
  // Every entry must be zero whenever no CDM is in flight; a negative value
  // at any moment means the transport delivered more than was sent.
  std::map<std::uint64_t, std::int64_t> cdm_outstanding_;
  bool cdm_negative_{false};
  std::string cdm_negative_detail_;

  /// CDM counters banked from crashed processes (note_crash): the identity
  /// becomes live detector sums + banked == network totals.
  std::uint64_t dead_cdms_sent_{0};
  std::uint64_t dead_cdms_received_{0};

  /// Stubs whose matching scion was deleted by a cycle-verdict Cut; the
  /// holder's next LGC retires them (the proven-dead cycle no longer marks
  /// them).  Until then the bipartite mismatch is expected: WARN, not
  /// ERROR.  Entries are dropped once the stub is gone or the scion
  /// reappears.  Keyed by (stub holder, stub key).
  std::set<std::pair<ProcessId, rm::StubKey>> cut_pending_;

  util::Counter runs_;
  util::Counter deep_runs_total_;
  util::Counter findings_error_total_;
  util::Counter findings_warn_total_;
  util::Gauge last_errors_;
  util::Gauge last_warnings_;
  util::Gauge floating_scions_;
  util::Gauge floating_garbage_;
  util::Gauge floating_garbage_age_;
};

}  // namespace rgc::obs
