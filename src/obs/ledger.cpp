#include "obs/ledger.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <ostream>

#include "gc/adgc/adgc.h"
#include "rm/messages.h"

namespace rgc::obs {

namespace {

void appendf(std::string& out, const char* fmt, ...) {
  char buf[320];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof buf - 1));
}

unsigned long long ull(std::uint64_t v) {
  return static_cast<unsigned long long>(v);
}

}  // namespace

std::string LedgerEntry::dominant() const {
  std::uint64_t best = 0;
  std::string label = "none";
  const auto consider = [&](std::uint64_t v, std::string l) {
    if (v > best) {
      best = v;
      label = std::move(l);
    }
  };
  for (const LedgerHop& hop : path) {
    const std::string link =
        rgc::to_string(hop.src) + "->" + rgc::to_string(hop.dst);
    consider(hop.wait_steps, "wait " + link);
    consider(hop.transit_steps, "transit " + link);
    consider(hop.digest_steps, "digest " + rgc::to_string(hop.src));
  }
  consider(cut_wait_steps + cut_transit_steps, "cut-wait");
  consider(sweep_wait_steps, "sweep " + rgc::to_string(candidate_process));
  return label;
}

std::string LedgerEntry::to_json() const {
  std::string out;
  appendf(out,
          "{\"detection_id\": %llu, \"candidate\": %llu, "
          "\"candidate_process\": %u, \"verdict_process\": %u, "
          "\"unlinked\": %llu, \"started\": %llu, \"detected\": %llu, "
          "\"cut_sent\": %llu, \"cut_delivered\": %llu, \"reclaimed\": %llu, "
          "\"complete\": %s",
          ull(detection_id), ull(raw(candidate)), raw(candidate_process),
          raw(verdict_process), ull(unlinked_step), ull(started_step),
          ull(detected_step), ull(cut_sent_step), ull(cut_delivered_step),
          ull(reclaimed_step), complete ? "true" : "false");
  appendf(out,
          ", \"e2e\": %llu, \"detect\": %llu, \"digest\": %llu, "
          "\"wait\": %llu, \"transit\": %llu, \"cut_wait\": %llu, "
          "\"cut_transit\": %llu, \"sweep_wait\": %llu",
          ull(e2e_steps), ull(detect_steps), ull(digest_steps),
          ull(wait_steps), ull(transit_steps), ull(cut_wait_steps),
          ull(cut_transit_steps), ull(sweep_wait_steps));
  appendf(out,
          ", \"hops\": %llu, \"cdm_msgs\": %llu, \"cdm_weight\": %llu, "
          "\"cdm_dropped\": %llu, \"cut_msgs\": %llu, \"cut_weight\": %llu, "
          "\"adgc_msgs\": %llu, \"adgc_weight\": %llu, "
          "\"coherence_msgs\": %llu, \"coherence_weight\": %llu",
          ull(hops), ull(cdm_msgs), ull(cdm_weight), ull(cdm_dropped),
          ull(cut_msgs), ull(cut_weight), ull(adgc_msgs), ull(adgc_weight),
          ull(coherence_msgs), ull(coherence_weight));
  appendf(out,
          ", \"scions_cut\": %llu, \"props_cut\": %llu, \"cuts_stale\": %llu, "
          "\"members\": %llu, \"members_reclaimed\": %llu, "
          "\"dominant\": \"%s\", \"path\": [",
          ull(scions_cut), ull(props_cut), ull(cuts_stale), ull(members),
          ull(members_reclaimed), dominant().c_str());
  for (std::size_t i = 0; i < path.size(); ++i) {
    const LedgerHop& hop = path[i];
    appendf(out,
            "%s{\"src\": %u, \"dst\": %u, \"sent\": %llu, \"delivered\": "
            "%llu, \"digest\": %llu, \"wait\": %llu, \"transit\": %llu, "
            "\"weight\": %llu}",
            i == 0 ? "" : ", ", raw(hop.src), raw(hop.dst),
            ull(hop.sent_step), ull(hop.deliver_step), ull(hop.digest_steps),
            ull(hop.wait_steps), ull(hop.transit_steps), ull(hop.weight));
  }
  out += "]}";
  return out;
}

Ledger::Ledger(LedgerConfig config) : config_(config) {
  if (config_.capacity == 0) config_.capacity = 1;
  if (config_.max_live == 0) config_.max_live = 1;
  live_.resize(config_.max_live);
  for (LiveRec& rec : live_) rec.hops.reserve(config_.max_hops);
  done_.reserve(config_.capacity);
  tracked_ = metrics_.counter("ledger.detections_tracked");
  proven_ = metrics_.counter("ledger.cycles_proven");
  reclaimed_ = metrics_.counter("ledger.cycles_reclaimed");
  evictions_ = metrics_.counter("ledger.evictions");
  overwritten_ = metrics_.counter("ledger.entries_overwritten");
  hop_overflows_ = metrics_.counter("ledger.hop_overflows");
  duplicate_verdicts_ = metrics_.counter("ledger.duplicate_verdicts");
  cdm_msgs_ = metrics_.counter("ledger.cdm_msgs");
  cdm_weight_ = metrics_.counter("ledger.cdm_weight");
  cdm_dropped_ = metrics_.counter("ledger.cdm_dropped");
  cdm_duplicated_ = metrics_.counter("ledger.cdm_duplicated");
  cut_msgs_ = metrics_.counter("ledger.cut_msgs");
  cut_weight_ = metrics_.counter("ledger.cut_weight");
  adgc_msgs_ = metrics_.counter("ledger.adgc_msgs");
  adgc_weight_ = metrics_.counter("ledger.adgc_weight");
  coherence_msgs_ = metrics_.counter("ledger.coherence_msgs");
  coherence_weight_ = metrics_.counter("ledger.coherence_weight");
  live_gauge_ = metrics_.gauge("ledger.live");
  completed_gauge_ = metrics_.gauge("ledger.completed");
  metrics_.gauge("ledger.capacity").set(config_.capacity);
  // Touch the decomposition histograms so the family set is fixed from the
  // start — report/Prometheus output then has identical shape whether or
  // not a run proved any cycle yet.
  metrics_.histogram("ledger.e2e_steps");
  metrics_.histogram("ledger.detect_steps");
  metrics_.histogram("ledger.wait_steps");
  metrics_.histogram("ledger.transit_steps");
  metrics_.histogram("ledger.digest_steps");
  metrics_.histogram("ledger.cut_steps");
  metrics_.histogram("ledger.sweep_wait_steps");
  metrics_.histogram("ledger.critical_hops");
}

std::uint64_t Ledger::clock(std::uint64_t fallback) const noexcept {
  return net_ != nullptr ? net_->now() : fallback;
}

std::uint64_t Ledger::transit_floor() const noexcept {
  return net_ != nullptr ? net_->config().min_delay : 1;
}

std::size_t Ledger::live() const noexcept {
  std::size_t n = 0;
  for (const LiveRec& rec : live_) n += rec.used ? 1 : 0;
  return n;
}

int Ledger::slot_of(std::uint64_t id, bool create, const gc::Cdm* cdm) {
  if (const auto it = live_index_.find(id); it != live_index_.end()) {
    return static_cast<int>(it->second);
  }
  if (!create || cdm == nullptr) return -1;
  int slot = -1;
  for (std::size_t i = 0; i < live_.size(); ++i) {
    if (!live_[i].used) {
      slot = static_cast<int>(i);
      break;
    }
  }
  if (slot < 0) {
    // Evict the oldest unproven track (a proven one still owes a completed
    // entry); fall back to the oldest overall when everything is proven.
    int victim = -1;
    for (int pass = 0; pass < 2 && victim < 0; ++pass) {
      std::uint64_t oldest = ~std::uint64_t{0};
      for (std::size_t i = 0; i < live_.size(); ++i) {
        if (pass == 0 && live_[i].proven) continue;
        if (live_[i].entry.started_step <= oldest) {
          oldest = live_[i].entry.started_step;
          victim = static_cast<int>(i);
        }
      }
    }
    evictions_.inc();
    release(victim);
    slot = victim;
  }
  LiveRec& rec = live_[static_cast<std::size_t>(slot)];
  rec.used = true;
  rec.entry.detection_id = id;
  rec.entry.candidate = cdm->candidate.object;
  rec.entry.candidate_process = cdm->candidate.process;
  rec.entry.started_step = cdm->started_step;
  live_index_[id] = static_cast<std::uint32_t>(slot);
  tracked_.inc();
  live_gauge_.set(live());
  return slot;
}

void Ledger::release(int slot) {
  if (slot < 0) return;
  LiveRec& rec = live_[static_cast<std::size_t>(slot)];
  live_index_.erase(rec.entry.detection_id);
  for (auto it = awaiting_.begin(); it != awaiting_.end();) {
    it = it->second == static_cast<std::uint32_t>(slot) ? awaiting_.erase(it)
                                                        : std::next(it);
  }
  rec.entry = LedgerEntry{};
  rec.hops.clear();  // keeps the reserved capacity
  rec.last_delivered.clear();
  rec.used = false;
  rec.proven = false;
  rec.verdict_hop = kNoHop;
  rec.cut_seq = 0;
  rec.cut_seen = false;
  rec.cut_src = kNoProcess;
  rec.hop_overflow = false;
  live_gauge_.set(live());
}

// ---- Transport hooks ------------------------------------------------------

void Ledger::cdm_send(const net::Envelope& env, const gc::CdmMsg& msg) {
  const int slot = slot_of(msg.cdm.detection_id, /*create=*/true, &msg.cdm);
  if (slot < 0) return;
  LiveRec& rec = live_[static_cast<std::size_t>(slot)];
  const std::uint64_t weight = msg.weight();
  ++rec.entry.cdm_msgs;
  rec.entry.cdm_weight += weight;
  cdm_msgs_.inc();
  cdm_weight_.inc(weight);
  if (rec.hops.size() >= config_.max_hops) {
    if (!rec.hop_overflow) {
      rec.hop_overflow = true;
      hop_overflows_.inc();
    }
    return;
  }
  HopRec hop;
  hop.src = env.src;
  hop.dst = env.dst;
  hop.seq = env.seq;
  hop.sent_step = clock(env.sent_at);
  hop.weight = weight;
  if (const auto it = rec.last_delivered.find(env.src);
      it != rec.last_delivered.end()) {
    hop.parent = it->second;
  }
  rec.hops.push_back(hop);
}

void Ledger::cdm_deliver(const net::Envelope& env, const gc::CdmMsg& msg) {
  const int slot = slot_of(msg.cdm.detection_id, /*create=*/false, nullptr);
  if (slot < 0) return;
  LiveRec& rec = live_[static_cast<std::size_t>(slot)];
  // Newest-first scan: the matching send is almost always recent, and a
  // duplicated message must latch onto the same hop as its original.
  for (std::size_t i = rec.hops.size(); i-- > 0;) {
    HopRec& hop = rec.hops[i];
    if (hop.src != env.src || hop.dst != env.dst || hop.seq != env.seq) {
      continue;
    }
    if (hop.deliver_step == 0) {
      hop.deliver_step = clock(env.sent_at);
      ++rec.entry.hops;
    }
    rec.last_delivered[env.dst] = static_cast<std::uint32_t>(i);
    return;
  }
}

void Ledger::on_send(const net::Envelope& env) {
  const net::Message* m = env.msg;
  switch (m->kind()[0]) {
    case 'C':
      if (const auto* cdm = dynamic_cast<const gc::CdmMsg*>(m)) {
        cdm_send(env, *cdm);
      } else if (const auto* cut = dynamic_cast<const gc::CutMsg*>(m)) {
        const int slot = slot_of(cut->detection_id, false, nullptr);
        cut_msgs_.inc();
        cut_weight_.inc(cut->weight());
        if (slot < 0) return;
        LiveRec& rec = live_[static_cast<std::size_t>(slot)];
        ++rec.entry.cut_msgs;
        rec.entry.cut_weight += cut->weight();
        if (!rec.cut_seen) {
          rec.cut_seen = true;
          rec.cut_seq = env.seq;
          rec.cut_src = env.src;
          rec.entry.cut_sent_step = clock(env.sent_at);
        }
      }
      return;
    case 'P':
      if (const auto* pc = dynamic_cast<const gc::PropCutMsg*>(m)) {
        cut_msgs_.inc();
        cut_weight_.inc(pc->weight());
        if (const int slot = slot_of(pc->detection_id, false, nullptr);
            slot >= 0) {
          LiveRec& rec = live_[static_cast<std::size_t>(slot)];
          ++rec.entry.cut_msgs;
          rec.entry.cut_weight += pc->weight();
        }
      } else if (!awaiting_.empty()) {
        if (const auto* p = dynamic_cast<const rm::PropagateMsg*>(m)) {
          attribute_member(p->object, /*adgc=*/false, p->weight());
        }
      }
      return;
    case 'I':
      if (!awaiting_.empty()) {
        if (const auto* p = dynamic_cast<const rm::InvokeMsg*>(m)) {
          attribute_member(p->target, /*adgc=*/false, p->weight());
        }
      }
      return;
    case 'U':
      if (!awaiting_.empty()) {
        if (const auto* p = dynamic_cast<const gc::UnreachableMsg*>(m)) {
          attribute_member(p->object, /*adgc=*/true, p->weight());
        }
      }
      return;
    case 'R':
      if (!awaiting_.empty()) {
        if (const auto* p = dynamic_cast<const gc::ReclaimMsg*>(m)) {
          attribute_member(p->object, /*adgc=*/true, p->weight());
        }
      }
      return;
    default:
      return;
  }
}

void Ledger::attribute_member(ObjectId object, bool adgc,
                              std::uint64_t weight) {
  const auto it = awaiting_.find(object);
  if (it == awaiting_.end()) return;
  LiveRec& rec = live_[it->second];
  if (adgc) {
    ++rec.entry.adgc_msgs;
    rec.entry.adgc_weight += weight;
    adgc_msgs_.inc();
    adgc_weight_.inc(weight);
  } else {
    ++rec.entry.coherence_msgs;
    rec.entry.coherence_weight += weight;
    coherence_msgs_.inc();
    coherence_weight_.inc(weight);
  }
}

void Ledger::on_deliver(const net::Envelope& env) {
  const net::Message* m = env.msg;
  if (m->kind()[0] != 'C') return;
  if (const auto* cdm = dynamic_cast<const gc::CdmMsg*>(m)) {
    cdm_deliver(env, *cdm);
  } else if (const auto* cut = dynamic_cast<const gc::CutMsg*>(m)) {
    const int slot = slot_of(cut->detection_id, false, nullptr);
    if (slot < 0) return;
    LiveRec& rec = live_[static_cast<std::size_t>(slot)];
    if (rec.cut_seen && rec.entry.cut_delivered_step == 0 &&
        rec.cut_src == env.src && rec.cut_seq == env.seq) {
      rec.entry.cut_delivered_step = clock(env.sent_at);
    }
  }
}

void Ledger::on_drop(const net::Envelope& env) {
  const auto* cdm = dynamic_cast<const gc::CdmMsg*>(env.msg);
  if (cdm == nullptr) return;
  cdm_dropped_.inc();
  const int slot = slot_of(cdm->cdm.detection_id, false, nullptr);
  if (slot < 0) return;
  LiveRec& rec = live_[static_cast<std::size_t>(slot)];
  ++rec.entry.cdm_dropped;
  for (std::size_t i = rec.hops.size(); i-- > 0;) {
    HopRec& hop = rec.hops[i];
    if (hop.src == env.src && hop.dst == env.dst && hop.seq == env.seq &&
        hop.deliver_step == 0) {
      hop.dropped = true;
      return;
    }
  }
}

void Ledger::on_duplicate(const net::Envelope& env) {
  if (dynamic_cast<const gc::CdmMsg*>(env.msg) != nullptr) {
    cdm_duplicated_.inc();
  }
}

// ---- Lifecycle hooks ------------------------------------------------------

void Ledger::cycle_proven(ProcessId at, const gc::Cdm& cdm,
                          std::uint64_t unlinked_step) {
  const int slot = slot_of(cdm.detection_id, /*create=*/true, &cdm);
  if (slot < 0) return;
  LiveRec& rec = live_[static_cast<std::size_t>(slot)];
  if (rec.proven) {
    duplicate_verdicts_.inc();
    return;
  }
  rec.proven = true;
  proven_.inc();
  LedgerEntry& e = rec.entry;
  e.verdict_process = at;
  e.unlinked_step = unlinked_step;
  if (const auto it = rec.last_delivered.find(at);
      it != rec.last_delivered.end()) {
    rec.verdict_hop = it->second;
  }
  // The verdict concludes inside the closing delivery's handler, so the
  // detected step IS that hop's delivery step; pinning it there (instead of
  // reading the clock) keeps the telescoping identity exact even if a
  // duplicated delivery re-examined the track later.
  e.detected_step = rec.verdict_hop != kNoHop
                        ? rec.hops[rec.verdict_hop].deliver_step
                        : clock(e.started_step);
  e.detect_steps = e.detected_step - e.started_step;

  // Causal critical path: the verdict hop's ancestry, start-most first.
  std::vector<std::uint32_t> chain;
  for (std::uint32_t h = rec.verdict_hop; h != kNoHop;
       h = rec.hops[h].parent) {
    chain.push_back(h);
  }
  std::reverse(chain.begin(), chain.end());
  const std::uint64_t floor = transit_floor();
  e.path.reserve(chain.size());
  for (const std::uint32_t idx : chain) {
    const HopRec& h = rec.hops[idx];
    LedgerHop out;
    out.src = h.src;
    out.dst = h.dst;
    out.sent_step = h.sent_step;
    out.deliver_step = h.deliver_step;
    const std::uint64_t prev = h.parent != kNoHop
                                   ? rec.hops[h.parent].deliver_step
                                   : e.started_step;
    out.digest_steps = h.sent_step >= prev ? h.sent_step - prev : 0;
    const std::uint64_t latency =
        h.deliver_step >= h.sent_step ? h.deliver_step - h.sent_step : 0;
    out.transit_steps = std::min(floor, latency);
    out.wait_steps = latency - out.transit_steps;
    out.weight = h.weight;
    e.digest_steps += out.digest_steps;
    e.wait_steps += out.wait_steps;
    e.transit_steps += out.transit_steps;
    e.path.push_back(out);
  }

  // Track the cycle's members for reclaim completion and for attributing
  // ADGC/coherence traffic that names them during the cut→sweep window.
  const auto track = [&](ObjectId obj) {
    if (e.members >= config_.max_members) return;
    if (awaiting_.emplace(obj, static_cast<std::uint32_t>(slot)).second) {
      ++e.members;
    }
  };
  track(e.candidate);
  for (const gc::Element& el : cdm.targets) {
    if (el.tag == gc::Element::Kind::kReplica) track(el.replica.object);
  }
}

void Ledger::cut_applied(std::uint64_t detection_id, std::uint64_t scions_cut,
                         std::uint64_t props_cut, std::uint64_t stale) {
  const int slot = slot_of(detection_id, false, nullptr);
  if (slot < 0) return;
  LedgerEntry& e = live_[static_cast<std::size_t>(slot)].entry;
  e.scions_cut += scions_cut;
  e.props_cut += props_cut;
  e.cuts_stale += stale;
}

void Ledger::object_reclaimed(ProcessId pid, ObjectId object,
                              std::uint64_t step) {
  const auto it = awaiting_.find(object);
  if (it == awaiting_.end()) return;
  const std::uint32_t slot = it->second;
  LiveRec& rec = live_[slot];
  const bool is_candidate = object == rec.entry.candidate;
  if (is_candidate && pid != rec.entry.candidate_process) {
    // A replica of the candidate elsewhere: the entry completes only when
    // the candidate's own process sweeps it — keep waiting.
    return;
  }
  ++rec.entry.members_reclaimed;
  awaiting_.erase(it);
  if (is_candidate) {
    rec.entry.reclaimed_step = step;
    finalize(static_cast<int>(slot), step);
  }
}

void Ledger::finalize(int slot, std::uint64_t step) {
  LiveRec& rec = live_[static_cast<std::size_t>(slot)];
  LedgerEntry& e = rec.entry;
  const std::uint64_t floor = transit_floor();
  if (e.cut_delivered_step > e.detected_step) {
    const std::uint64_t cut_latency = e.cut_delivered_step - e.detected_step;
    e.cut_transit_steps = std::min(floor, cut_latency);
    e.cut_wait_steps = cut_latency - e.cut_transit_steps;
    e.sweep_wait_steps =
        step >= e.cut_delivered_step ? step - e.cut_delivered_step : 0;
  } else {
    // No (matched) cut — e.g. auto_cut off and a lease expiry freed the
    // candidate.  The whole post-verdict stretch is sweep wait.
    e.sweep_wait_steps = step >= e.detected_step ? step - e.detected_step : 0;
  }
  e.e2e_steps = step >= e.started_step ? step - e.started_step : 0;
  e.complete = true;

  reclaimed_.inc();
  metrics_.histogram("ledger.e2e_steps").record(e.e2e_steps);
  metrics_.histogram("ledger.detect_steps").record(e.detect_steps);
  metrics_.histogram("ledger.wait_steps").record(e.wait_steps);
  metrics_.histogram("ledger.transit_steps").record(e.transit_steps);
  metrics_.histogram("ledger.digest_steps").record(e.digest_steps);
  metrics_.histogram("ledger.cut_steps")
      .record(e.cut_wait_steps + e.cut_transit_steps);
  metrics_.histogram("ledger.sweep_wait_steps").record(e.sweep_wait_steps);
  metrics_.histogram("ledger.critical_hops").record(e.path.size());

  if (done_.size() < config_.capacity) {
    done_.push_back(std::move(e));
  } else {
    overwritten_.inc();
    done_[done_next_] = std::move(e);
    done_next_ = (done_next_ + 1) % config_.capacity;
  }
  ++completed_total_;
  completed_gauge_.set(completed_total_);
  release(slot);
}

// ---- Queries --------------------------------------------------------------

std::vector<const LedgerEntry*> Ledger::entries() const {
  std::vector<const LedgerEntry*> out;
  out.reserve(done_.size());
  // Ring order: done_next_ is the oldest once the ring has wrapped.
  const std::size_t n = done_.size();
  const std::size_t start = n < config_.capacity ? 0 : done_next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(&done_[(start + i) % n]);
  }
  return out;
}

std::vector<const LedgerEntry*> Ledger::slowest(std::size_t k) const {
  std::vector<const LedgerEntry*> out = entries();
  // Stable on ties: older entry first, so the ranking is deterministic.
  std::stable_sort(out.begin(), out.end(),
                   [](const LedgerEntry* a, const LedgerEntry* b) {
                     return a->e2e_steps > b->e2e_steps;
                   });
  if (out.size() > k) out.resize(k);
  return out;
}

const LedgerEntry* Ledger::find(std::uint64_t detection_id) const {
  for (const LedgerEntry& e : done_) {
    if (e.detection_id == detection_id) return &e;
  }
  for (const LiveRec& rec : live_) {
    if (rec.used && rec.entry.detection_id == detection_id) return &rec.entry;
  }
  return nullptr;
}

std::string Ledger::explain(std::uint64_t detection_id) const {
  const LedgerEntry* e = nullptr;
  if (detection_id == 0) {
    const auto top = slowest(1);
    if (!top.empty()) e = top[0];
  } else {
    e = find(detection_id);
  }
  if (e == nullptr) {
    return detection_id == 0
               ? "ledger: no completed cycle to explain\n"
               : "ledger: unknown detection id " +
                     std::to_string(detection_id) + "\n";
  }
  std::string out;
  appendf(out, "cycle %llu: candidate %s@%s, verdict at %s\n",
          ull(e->detection_id), rgc::to_string(e->candidate).c_str(),
          rgc::to_string(e->candidate_process).c_str(),
          rgc::to_string(e->verdict_process).c_str());
  if (e->unlinked_step != 0 && e->unlinked_step <= e->started_step) {
    appendf(out,
            "  unlinked @ step %llu (floated %llu steps before detection)\n",
            ull(e->unlinked_step), ull(e->started_step - e->unlinked_step));
  }
  appendf(out,
          "  e2e %llu steps = detect %llu + cut %llu + sweep %llu "
          "(started %llu, detected %llu, reclaimed %llu)\n",
          ull(e->e2e_steps), ull(e->detect_steps),
          ull(e->cut_wait_steps + e->cut_transit_steps),
          ull(e->sweep_wait_steps), ull(e->started_step), ull(e->detected_step),
          ull(e->reclaimed_step));
  appendf(out,
          "  critical path: %zu hops, digest %llu / wait %llu / transit "
          "%llu\n",
          e->path.size(), ull(e->digest_steps), ull(e->wait_steps),
          ull(e->transit_steps));
  appendf(out, "    start @ %s step %llu\n",
          rgc::to_string(e->candidate_process).c_str(), ull(e->started_step));
  for (const LedgerHop& hop : e->path) {
    appendf(out,
            "    digest %-4llu | %s -> %s sent %llu, wait %llu, transit "
            "%llu | delivered %llu (weight %llu)\n",
            ull(hop.digest_steps), rgc::to_string(hop.src).c_str(),
            rgc::to_string(hop.dst).c_str(), ull(hop.sent_step),
            ull(hop.wait_steps), ull(hop.transit_steps),
            ull(hop.deliver_step), ull(hop.weight));
  }
  appendf(out, "    verdict @ %s step %llu\n",
          rgc::to_string(e->verdict_process).c_str(), ull(e->detected_step));
  if (e->cut_delivered_step != 0) {
    appendf(out,
            "  cut: sent %llu, delivered %llu (wait %llu, transit %llu); "
            "%llu scions / %llu props cut, %llu stale\n",
            ull(e->cut_sent_step), ull(e->cut_delivered_step),
            ull(e->cut_wait_steps), ull(e->cut_transit_steps),
            ull(e->scions_cut), ull(e->props_cut), ull(e->cuts_stale));
  }
  appendf(out,
          "  sweep: candidate reclaimed @ %llu (wait %llu); members %llu/%llu "
          "reclaimed\n",
          ull(e->reclaimed_step), ull(e->sweep_wait_steps),
          ull(e->members_reclaimed), ull(e->members));
  appendf(out,
          "  traffic (weight units): cdm %llu/%llu (%llu dropped), cut "
          "%llu/%llu, adgc %llu/%llu, coherence %llu/%llu\n",
          ull(e->cdm_msgs), ull(e->cdm_weight), ull(e->cdm_dropped),
          ull(e->cut_msgs), ull(e->cut_weight), ull(e->adgc_msgs),
          ull(e->adgc_weight), ull(e->coherence_msgs),
          ull(e->coherence_weight));
  appendf(out, "  dominant: %s\n", e->dominant().c_str());
  return out;
}

void Ledger::write_jsonl(std::ostream& os) const {
  for (const LedgerEntry* e : entries()) {
    os << e->to_json() << '\n';
  }
}

}  // namespace rgc::obs
