// Live cluster dashboard: one self-contained text frame per call.
//
// Renders the cluster's health, per-process table state, traffic rates and
// latency percentiles as a plain-text frame (no terminal escape codes —
// the CLI decides whether to clear the screen between frames).  Rates are
// computed by diffing cumulative counters against the previous frame's
// snapshot, carried in DashboardState by the caller.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace rgc::core {
class Cluster;
}  // namespace rgc::core

namespace rgc::obs {

/// Carry-over between frames: last render step and the previous cumulative
/// "net.sent.<kind>" counters, for per-step rate computation.
struct DashboardState {
  std::uint64_t last_step{0};
  std::map<std::string, std::uint64_t> last_traffic;
  bool first{true};
};

/// Renders one frame and updates `state` for the next one.
[[nodiscard]] std::string render_dashboard(const core::Cluster& cluster,
                                           DashboardState& state);

}  // namespace rgc::obs
