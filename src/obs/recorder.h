// Flight recorder — always-on, fixed-capacity event history for post-mortem
// debugging of chaos runs (docs/OBSERVABILITY.md "Flight recorder & replay").
//
// Every transport event (send/deliver/drop/duplicate, via the
// net::Network::Observer hooks), GC phase transition, sweep, reclaim
// decision, lease expiry, and fault (kill/restart/persist/partition/heal)
// lands in a per-process binary ring of fixed-layout RecEvents.  Appends are
// O(1) and allocation-free in steady state (each ring is preallocated the
// first time its pid appears), so the recorder can stay on for every run
// like the HealthAuditor.  When something goes wrong — an audit ERROR, or
// SIGABRT — the rings dump to a versioned, checksummed `.rgcrec` file that
// obs::replay (replay.h) re-executes and diffs event-for-event.
//
// Determinism contract: the recorder is only fed from the simulation's
// serial phases (network step/send, serial sweep/digest, cluster fault
// paths), so for a fixed seed + workload the encoded recording is
// byte-identical for any ClusterConfig::threads — which is exactly what
// replay relies on.  ClusterConfig::threads is deliberately NOT part of the
// stamp for the same reason.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <map>
#include <vector>

#include "net/network.h"
#include "util/ids.h"
#include "util/metrics.h"

namespace rgc::obs {

/// Typed event classes.  Values are part of the `.rgcrec` format — append
/// only, never renumber.
enum class RecKind : std::uint8_t {
  kSend = 1,       // pid=src, peer=dst, detail=msg kind, a=link seq, b=lineage
  kDeliver = 2,    // pid=dst, peer=src, detail=msg kind, a=link seq, b=lineage
  kDrop = 3,       // pid=src, peer=dst, detail=msg kind, a=link seq
  kDuplicate = 4,  // pid=src, peer=dst, detail=msg kind, a=link seq
  kPhase = 5,      // global; detail=RecPhase, a/b=phase payload
  kSweep = 6,      // pid=collector, a=objects reclaimed, b=objects traced
  kReclaim = 7,    // pid=unlinker, peer=Reclaim sender, a=object id
  kLeaseExpiry = 8,  // pid=expirer, a=scions retired by the sweep
  kKill = 9,       // pid=victim
  kRestart = 10,   // pid=subject, a=incarnation, b=1 when rehydrated
  kPersist = 11,   // pid=subject, a=image bytes
  kPartition = 12, // global, a=group count
  kHeal = 13,      // global
  kAuditError = 14,  // global, a=total audit errors so far
};

/// kPhase detail codes.
enum RecPhase : std::uint16_t {
  kPhaseCollectRound = 1,  // a=objects reclaimed, b=live processes
  kPhaseSnapshotAll = 2,   // a=live processes
};

[[nodiscard]] const char* to_string(RecKind kind);

/// One recorded event.  Fixed 44-byte wire layout (field by field, little
/// endian); `seq` is a recorder-global append counter, so the merge of all
/// rings by seq reproduces the exact global event order.
struct RecEvent {
  std::uint64_t seq{0};
  std::uint64_t step{0};
  std::uint64_t a{0};
  std::uint64_t b{0};
  std::uint32_t pid{0};
  std::uint32_t peer{0};
  std::uint16_t detail{0};
  std::uint8_t kind{0};
  std::uint8_t pad{0};

  friend bool operator==(const RecEvent&, const RecEvent&) = default;
};

/// Run identity stored in the file header: enough to re-create the workload
/// (obs::replay does exactly that).  Probabilities are stored as the exact
/// bit pattern of the double so a replayed Rng sees identical parameters.
struct RecStamp {
  std::uint64_t seed{0};
  std::uint32_t processes{0};
  std::uint64_t drop_bits{0};
  std::uint64_t dup_bits{0};
  std::uint32_t max_delay{1};
  std::uint64_t lease_timeout{0};
  std::uint32_t rounds{0};
  std::uint32_t capacity{0};

  friend bool operator==(const RecStamp&, const RecStamp&) = default;
};

/// One decoded ring: the events attributed to `pid` (raw(kNoProcess) is the
/// global ring), oldest first, plus how many older events the ring dropped.
struct RecRing {
  std::uint32_t pid{0};
  std::uint64_t dropped{0};
  std::vector<RecEvent> events;
};

/// A fully decoded `.rgcrec` recording.
struct RecordedRun {
  RecStamp stamp;
  std::uint64_t next_seq{0};
  std::uint64_t appended{0};
  std::uint64_t dropped{0};
  /// Interned message-kind names; RecEvent::detail indexes this table for
  /// the transport kinds.
  std::vector<std::string> kinds;
  std::vector<RecRing> rings;
  /// All ring events merged by global seq (ascending) — the causal order.
  std::vector<RecEvent> events;

  [[nodiscard]] const char* kind_name(std::uint16_t id) const {
    return id < kinds.size() ? kinds[id].c_str() : "?";
  }
};

/// First point where a live event stream stopped matching a reference
/// recording (FlightRecorder::set_reference).
struct Divergence {
  bool found{false};
  /// True when the live run produced an event past the reference's end.
  bool extra{false};
  std::uint64_t seq{0};
  RecEvent expected{};
  RecEvent actual{};
};

struct RecorderConfig {
  /// Events retained per ring (per process + one global ring).
  std::size_t capacity{4096};
};

/// The recorder itself.  Owned by core::Cluster (ClusterConfig::
/// record_capacity), fed via Network::add_observer plus direct hook calls
/// from the cluster/GC serial phases.
class FlightRecorder final : public net::Network::Observer {
 public:
  explicit FlightRecorder(RecorderConfig config = {});

  /// Supplies the clock used to stamp events (borrowed, may be null —
  /// events then stamp with the envelope send step or 0).
  void bind(const net::Network* net) noexcept { net_ = net; }

  // ---- Transport hooks (net::Network::Observer) -------------------------
  void on_send(const net::Envelope& env) override;
  void on_deliver(const net::Envelope& env) override;
  void on_drop(const net::Envelope& env) override;
  void on_duplicate(const net::Envelope& env) override;

  // ---- GC / cluster hooks (serial phases only — see header comment) -----
  void phase(RecPhase code, std::uint64_t a = 0, std::uint64_t b = 0);
  void sweep(ProcessId pid, std::uint64_t reclaimed, std::uint64_t traced);
  void reclaim_decision(ProcessId pid, ProcessId from, ObjectId object);
  void lease_expiry(ProcessId pid, std::uint64_t retired);
  void fault(RecKind kind, ProcessId pid, std::uint64_t a = 0,
             std::uint64_t b = 0);
  void audit_error(std::uint64_t errors);

  // ---- Serialization ----------------------------------------------------
  /// Encodes every ring into the versioned `.rgcrec` byte format
  /// (checksummed framing in the style of gc/cycle/snapshot_io).
  [[nodiscard]] std::string encode(const RecStamp& stamp) const;
  /// Decodes bytes produced by encode(); nullopt on any corruption
  /// (magic/version mismatch, truncation, checksum failure).
  [[nodiscard]] static std::optional<RecordedRun> decode(
      const std::string& bytes);

  // ---- Live replay diffing ----------------------------------------------
  /// Installs a reference recording (borrowed; caller keeps it alive).
  /// Every subsequent append is checked against the reference event with
  /// the same global seq; the first mismatch latches into divergence().
  void set_reference(const RecordedRun* reference) noexcept {
    reference_ = reference;
  }
  [[nodiscard]] const Divergence& divergence() const noexcept {
    return divergence_;
  }

  // ---- Introspection ----------------------------------------------------
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Events currently retained across all rings.
  [[nodiscard]] std::uint64_t depth() const noexcept { return retained_; }
  /// Events ever appended / lost to ring overwrite.
  [[nodiscard]] std::uint64_t appended() const noexcept { return appended_; }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::vector<std::string>& kinds() const noexcept {
    return kinds_;
  }
  /// Recorder-local gauges (recorder.depth, recorder.appended_total,
  /// recorder.dropped_total, recorder.capacity, recorder.rings).  A private
  /// registry, deliberately outside the deterministic cluster report.
  [[nodiscard]] const util::Metrics& metrics() const noexcept {
    return metrics_;
  }

 private:
  struct Ring {
    std::vector<RecEvent> buf;  // preallocated to capacity_ on creation
    std::uint64_t count{0};     // events ever appended to this ring
  };

  void record(RecKind kind, std::uint32_t pid, std::uint32_t peer,
              std::uint16_t detail, std::uint64_t a, std::uint64_t b,
              std::uint64_t step);
  void transport(RecKind kind, std::uint32_t ring_pid,
                 const net::Envelope& env);
  std::uint16_t intern(const char* kind);
  [[nodiscard]] std::uint64_t clock(std::uint64_t fallback) const noexcept;

  std::size_t capacity_;
  const net::Network* net_{nullptr};
  std::map<std::uint32_t, Ring> rings_;
  std::vector<std::string> kinds_;
  std::map<std::string, std::uint16_t, std::less<>> kind_ids_;
  std::uint16_t cdm_kind_{0xffff};
  std::uint16_t cut_kind_{0xffff};
  std::uint64_t next_seq_{0};
  std::uint64_t appended_{0};
  std::uint64_t dropped_{0};
  std::uint64_t retained_{0};
  const RecordedRun* reference_{nullptr};
  Divergence divergence_{};
  util::Metrics metrics_;
  util::Gauge depth_gauge_;
  util::Gauge appended_gauge_;
  util::Gauge dropped_gauge_;
};

/// Human-readable one-liner for an event ("seq=91 step=40 P3 deliver CDM
/// from P1 link=17 lineage=5"); `kinds` is the recording's intern table.
[[nodiscard]] std::string describe(const RecEvent& event,
                                   const std::vector<std::string>& kinds);

/// Encodes and writes the recording to `path`; returns false on I/O error.
bool dump_recording(const FlightRecorder& recorder, const RecStamp& stamp,
                    const std::string& path);

/// Installs a SIGABRT handler that best-effort dumps `recorder` to `path`
/// before re-raising (the crash-dump leg: an assert/abort in a recorded run
/// still leaves the flight recording behind).  Pass nullptr to disarm.
void arm_abort_dump(FlightRecorder* recorder, RecStamp stamp,
                    std::string path);

}  // namespace rgc::obs
