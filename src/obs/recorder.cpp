#include "obs/recorder.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string_view>
#include <utility>

#include "gc/cycle/cdm.h"
#include "util/log.h"

namespace rgc::obs {

namespace {

// `.rgcrec` framing, in the style of gc/cycle/snapshot_io: little-endian
// fixed-width fields, a magic+version header, and a trailing FNV-1a
// checksum over everything before it.
constexpr std::uint32_t kRecMagic = 0x52474352;  // "RCGR"
constexpr std::uint32_t kRecVersion = 1;
constexpr std::size_t kEventBytes = 44;

void put_u16(std::string& out, std::uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  out.append(b, 2);
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out.append(b, 4);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out.append(b, 8);
}

void put_event(std::string& out, const RecEvent& e) {
  put_u64(out, e.seq);
  put_u64(out, e.step);
  put_u64(out, e.a);
  put_u64(out, e.b);
  put_u32(out, e.pid);
  put_u32(out, e.peer);
  put_u16(out, e.detail);
  out.push_back(static_cast<char>(e.kind));
  out.push_back(static_cast<char>(e.pad));
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Bounds-checked little-endian reader (mirrors snapshot_io's): any
/// overrun or oversized count poisons `ok` and every later read is a no-op.
struct Reader {
  std::string_view bytes;
  std::size_t at{0};
  bool ok{true};

  bool need(std::size_t n) {
    if (!ok || bytes.size() - at < n) {
      ok = false;
      return false;
    }
    return true;
  }
  std::uint16_t u16() {
    if (!need(2)) return 0;
    std::uint16_t v;
    std::memcpy(&v, bytes.data() + at, 2);
    at += 2;
    return v;
  }
  std::uint32_t u32() {
    if (!need(4)) return 0;
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + at, 4);
    at += 4;
    return v;
  }
  std::uint64_t u64() {
    if (!need(8)) return 0;
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + at, 8);
    at += 8;
    return v;
  }
  std::uint8_t u8() {
    if (!need(1)) return 0;
    return static_cast<std::uint8_t>(bytes[at++]);
  }
  /// A count that claims more than the remaining bytes could hold is
  /// corruption, not a huge allocation.
  std::uint32_t count(std::size_t min_bytes_each) {
    const std::uint32_t n = u32();
    if (ok && min_bytes_each != 0 &&
        n > (bytes.size() - at) / min_bytes_each) {
      ok = false;
      return 0;
    }
    return n;
  }
  RecEvent event() {
    RecEvent e;
    e.seq = u64();
    e.step = u64();
    e.a = u64();
    e.b = u64();
    e.pid = u32();
    e.peer = u32();
    e.detail = u16();
    e.kind = u8();
    e.pad = u8();
    return e;
  }
};

}  // namespace

const char* to_string(RecKind kind) {
  switch (kind) {
    case RecKind::kSend: return "send";
    case RecKind::kDeliver: return "deliver";
    case RecKind::kDrop: return "drop";
    case RecKind::kDuplicate: return "duplicate";
    case RecKind::kPhase: return "phase";
    case RecKind::kSweep: return "sweep";
    case RecKind::kReclaim: return "reclaim";
    case RecKind::kLeaseExpiry: return "lease_expiry";
    case RecKind::kKill: return "kill";
    case RecKind::kRestart: return "restart";
    case RecKind::kPersist: return "persist";
    case RecKind::kPartition: return "partition";
    case RecKind::kHeal: return "heal";
    case RecKind::kAuditError: return "audit_error";
  }
  return "?";
}

FlightRecorder::FlightRecorder(RecorderConfig config)
    : capacity_(config.capacity == 0 ? 1 : config.capacity) {
  depth_gauge_ = metrics_.gauge("recorder.depth");
  appended_gauge_ = metrics_.gauge("recorder.appended_total");
  dropped_gauge_ = metrics_.gauge("recorder.dropped_total");
  metrics_.gauge("recorder.capacity").set(capacity_);
}

std::uint64_t FlightRecorder::clock(std::uint64_t fallback) const noexcept {
  return net_ != nullptr ? net_->now() : fallback;
}

std::uint16_t FlightRecorder::intern(const char* kind) {
  const auto it = kind_ids_.find(std::string_view{kind});
  if (it != kind_ids_.end()) return it->second;
  const auto id = static_cast<std::uint16_t>(kinds_.size());
  kinds_.emplace_back(kind);
  kind_ids_.emplace(kinds_.back(), id);
  if (kinds_.back() == "CDM") cdm_kind_ = id;
  if (kinds_.back() == "Cut") cut_kind_ = id;
  return id;
}

void FlightRecorder::record(RecKind kind, std::uint32_t pid,
                            std::uint32_t peer, std::uint16_t detail,
                            std::uint64_t a, std::uint64_t b,
                            std::uint64_t step) {
  RecEvent ev;
  ev.seq = next_seq_++;
  ev.step = step;
  ev.a = a;
  ev.b = b;
  ev.pid = pid;
  ev.peer = peer;
  ev.detail = detail;
  ev.kind = static_cast<std::uint8_t>(kind);

  Ring& ring = rings_[pid];
  if (ring.buf.empty()) ring.buf.resize(capacity_);  // first event: allocate
  if (ring.count >= capacity_) {
    ++dropped_;
    dropped_gauge_.set(dropped_);
  } else {
    ++retained_;
    depth_gauge_.set(retained_);
  }
  ring.buf[ring.count % capacity_] = ev;
  ++ring.count;
  ++appended_;
  appended_gauge_.set(appended_);

  if (reference_ != nullptr && !divergence_.found) {
    const auto& evs = reference_->events;
    const auto ref = std::lower_bound(
        evs.begin(), evs.end(), ev.seq,
        [](const RecEvent& e, std::uint64_t seq) { return e.seq < seq; });
    if (ref != evs.end() && ref->seq == ev.seq) {
      if (!(*ref == ev)) {
        divergence_ = Divergence{true, false, ev.seq, *ref, ev};
      }
    } else if (ev.seq >= reference_->next_seq) {
      // Past the recorded end: the live run produced traffic the reference
      // never saw.  A seq below next_seq but absent from the merge was
      // merely overwritten in the reference ring — not comparable.
      divergence_ = Divergence{true, true, ev.seq, RecEvent{}, ev};
    }
  }
}

void FlightRecorder::transport(RecKind kind, std::uint32_t ring_pid,
                               const net::Envelope& env) {
  const std::uint16_t k = intern(env.msg->kind());
  std::uint64_t lineage = 0;
  if (k == cdm_kind_) {
    if (const auto* m = dynamic_cast<const gc::CdmMsg*>(env.msg)) {
      lineage = m->cdm.detection_id;
    }
  } else if (k == cut_kind_) {
    if (const auto* m = dynamic_cast<const gc::CutMsg*>(env.msg)) {
      lineage = m->detection_id;
    }
  }
  const std::uint32_t peer =
      ring_pid == raw(env.src) ? raw(env.dst) : raw(env.src);
  record(kind, ring_pid, peer, k, env.seq, lineage, clock(env.sent_at));
}

void FlightRecorder::on_send(const net::Envelope& env) {
  transport(RecKind::kSend, raw(env.src), env);
}

void FlightRecorder::on_deliver(const net::Envelope& env) {
  transport(RecKind::kDeliver, raw(env.dst), env);
}

void FlightRecorder::on_drop(const net::Envelope& env) {
  transport(RecKind::kDrop, raw(env.src), env);
}

void FlightRecorder::on_duplicate(const net::Envelope& env) {
  transport(RecKind::kDuplicate, raw(env.src), env);
}

void FlightRecorder::phase(RecPhase code, std::uint64_t a, std::uint64_t b) {
  record(RecKind::kPhase, raw(kNoProcess), raw(kNoProcess), code, a, b,
         clock(0));
}

void FlightRecorder::sweep(ProcessId pid, std::uint64_t reclaimed,
                           std::uint64_t traced) {
  record(RecKind::kSweep, raw(pid), raw(kNoProcess), 0, reclaimed, traced,
         clock(0));
}

void FlightRecorder::reclaim_decision(ProcessId pid, ProcessId from,
                                      ObjectId object) {
  record(RecKind::kReclaim, raw(pid), raw(from), 0, raw(object), 0, clock(0));
}

void FlightRecorder::lease_expiry(ProcessId pid, std::uint64_t retired) {
  record(RecKind::kLeaseExpiry, raw(pid), raw(kNoProcess), 0, retired, 0,
         clock(0));
}

void FlightRecorder::fault(RecKind kind, ProcessId pid, std::uint64_t a,
                           std::uint64_t b) {
  record(kind, raw(pid), raw(kNoProcess), 0, a, b, clock(0));
}

void FlightRecorder::audit_error(std::uint64_t errors) {
  record(RecKind::kAuditError, raw(kNoProcess), raw(kNoProcess), 0, errors, 0,
         clock(0));
}

std::string FlightRecorder::encode(const RecStamp& stamp) const {
  std::string out;
  out.reserve(64 + retained_ * kEventBytes);
  put_u32(out, kRecMagic);
  put_u32(out, kRecVersion);
  put_u64(out, stamp.seed);
  put_u32(out, stamp.processes);
  put_u64(out, stamp.drop_bits);
  put_u64(out, stamp.dup_bits);
  put_u32(out, stamp.max_delay);
  put_u64(out, stamp.lease_timeout);
  put_u32(out, stamp.rounds);
  put_u32(out, stamp.capacity);
  put_u64(out, next_seq_);
  put_u64(out, appended_);
  put_u64(out, dropped_);
  put_u32(out, static_cast<std::uint32_t>(kinds_.size()));
  for (const std::string& k : kinds_) {
    put_u32(out, static_cast<std::uint32_t>(k.size()));
    out.append(k);
  }
  put_u32(out, static_cast<std::uint32_t>(rings_.size()));
  for (const auto& [pid, ring] : rings_) {
    const std::uint64_t n = std::min<std::uint64_t>(ring.count, capacity_);
    put_u32(out, pid);
    put_u64(out, ring.count - n);  // events lost to overwrite
    put_u32(out, static_cast<std::uint32_t>(n));
    // Oldest first: a full ring starts right after the newest slot.
    const std::uint64_t start = ring.count >= capacity_
                                    ? ring.count % capacity_
                                    : 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      put_event(out, ring.buf[(start + i) % capacity_]);
    }
  }
  put_u64(out, fnv1a(out));
  return out;
}

std::optional<RecordedRun> FlightRecorder::decode(const std::string& bytes) {
  if (bytes.size() < 12 + 8) return std::nullopt;
  const std::string_view body{bytes.data(), bytes.size() - 8};
  std::uint64_t stored = 0;
  std::memcpy(&stored, bytes.data() + bytes.size() - 8, 8);
  if (fnv1a(body) != stored) return std::nullopt;

  Reader r{body};
  if (r.u32() != kRecMagic) return std::nullopt;
  if (r.u32() != kRecVersion) return std::nullopt;
  RecordedRun run;
  run.stamp.seed = r.u64();
  run.stamp.processes = r.u32();
  run.stamp.drop_bits = r.u64();
  run.stamp.dup_bits = r.u64();
  run.stamp.max_delay = r.u32();
  run.stamp.lease_timeout = r.u64();
  run.stamp.rounds = r.u32();
  run.stamp.capacity = r.u32();
  run.next_seq = r.u64();
  run.appended = r.u64();
  run.dropped = r.u64();
  const std::uint32_t nkinds = r.count(4);
  for (std::uint32_t i = 0; i < nkinds && r.ok; ++i) {
    const std::uint32_t len = r.count(1);
    if (!r.need(len)) break;
    run.kinds.emplace_back(r.bytes.substr(r.at, len));
    r.at += len;
  }
  const std::uint32_t nrings = r.count(4 + 8 + 4);
  std::size_t total = 0;
  for (std::uint32_t i = 0; i < nrings && r.ok; ++i) {
    RecRing ring;
    ring.pid = r.u32();
    ring.dropped = r.u64();
    const std::uint32_t n = r.count(kEventBytes);
    ring.events.reserve(n);
    for (std::uint32_t j = 0; j < n && r.ok; ++j) {
      ring.events.push_back(r.event());
    }
    total += ring.events.size();
    run.rings.push_back(std::move(ring));
  }
  if (!r.ok || r.at != r.bytes.size()) return std::nullopt;

  run.events.reserve(total);
  for (const RecRing& ring : run.rings) {
    run.events.insert(run.events.end(), ring.events.begin(),
                      ring.events.end());
  }
  std::sort(run.events.begin(), run.events.end(),
            [](const RecEvent& a, const RecEvent& b) { return a.seq < b.seq; });
  return run;
}

std::string describe(const RecEvent& event,
                     const std::vector<std::string>& kinds) {
  const auto kind = static_cast<RecKind>(event.kind);
  std::string out = "seq=" + std::to_string(event.seq) +
                    " step=" + std::to_string(event.step) + " ";
  const auto pid_str = [](std::uint32_t pid) {
    return pid == raw(kNoProcess) ? std::string{"cluster"}
                                  : "P" + std::to_string(pid);
  };
  out += pid_str(event.pid);
  out += ' ';
  out += to_string(kind);
  switch (kind) {
    case RecKind::kSend:
    case RecKind::kDrop:
    case RecKind::kDuplicate:
      out += ' ';
      out += event.detail < kinds.size() ? kinds[event.detail] : "?";
      out += " to " + pid_str(event.peer) + " link=" + std::to_string(event.a);
      if (event.b != 0) out += " lineage=" + std::to_string(event.b);
      break;
    case RecKind::kDeliver:
      out += ' ';
      out += event.detail < kinds.size() ? kinds[event.detail] : "?";
      out += " from " + pid_str(event.peer) +
             " link=" + std::to_string(event.a);
      if (event.b != 0) out += " lineage=" + std::to_string(event.b);
      break;
    case RecKind::kPhase:
      out += event.detail == kPhaseCollectRound ? " collect_round"
             : event.detail == kPhaseSnapshotAll ? " snapshot_all"
                                                 : " ?";
      out += " a=" + std::to_string(event.a) + " b=" + std::to_string(event.b);
      break;
    case RecKind::kSweep:
      out += " reclaimed=" + std::to_string(event.a) +
             " traced=" + std::to_string(event.b);
      break;
    case RecKind::kReclaim:
      out += " object=" + std::to_string(event.a) + " from " +
             pid_str(event.peer);
      break;
    case RecKind::kLeaseExpiry:
      out += " retired=" + std::to_string(event.a);
      break;
    case RecKind::kRestart:
      out += " incarnation=" + std::to_string(event.a) +
             (event.b != 0 ? " rehydrated" : " empty");
      break;
    case RecKind::kPersist:
      out += " bytes=" + std::to_string(event.a);
      break;
    case RecKind::kPartition:
      out += " groups=" + std::to_string(event.a);
      break;
    case RecKind::kAuditError:
      out += " errors=" + std::to_string(event.a);
      break;
    case RecKind::kKill:
    case RecKind::kHeal:
      break;
  }
  return out;
}

bool dump_recording(const FlightRecorder& recorder, const RecStamp& stamp,
                    const std::string& path) {
  const std::string bytes = recorder.encode(stamp);
  std::ofstream out{path, std::ios::binary | std::ios::trunc};
  if (!out) return false;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  const bool ok = static_cast<bool>(out);
  if (ok) {
    RGC_INFO("recorder: dumped ", bytes.size(), " bytes (",
             recorder.depth(), " events) to ", path);
  }
  return ok;
}

namespace {

FlightRecorder* g_abort_recorder = nullptr;
RecStamp g_abort_stamp;
std::string g_abort_path;

// Best effort only: encode() allocates, which is not async-signal-safe —
// acceptable for SIGABRT, where the alternative is losing the recording
// with the process.
extern "C" void abort_dump_handler(int sig) {
  if (g_abort_recorder != nullptr && !g_abort_path.empty()) {
    const std::string bytes = g_abort_recorder->encode(g_abort_stamp);
    if (std::FILE* f = std::fopen(g_abort_path.c_str(), "wb")) {
      std::fwrite(bytes.data(), 1, bytes.size(), f);
      std::fclose(f);
    }
  }
  std::signal(sig, SIG_DFL);
  std::raise(sig);
}

}  // namespace

void arm_abort_dump(FlightRecorder* recorder, RecStamp stamp,
                    std::string path) {
  g_abort_recorder = recorder;
  g_abort_stamp = stamp;
  g_abort_path = std::move(path);
  std::signal(SIGABRT, recorder != nullptr ? abort_dump_handler : SIG_DFL);
}

}  // namespace rgc::obs
