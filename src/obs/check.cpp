#include "obs/check.h"

#include <algorithm>

#include "core/cluster.h"
#include "gc/cycle/snapshot_io.h"
#include "net/network.h"
#include "rm/process.h"

namespace rgc::obs {
namespace {

void add(std::vector<Finding>& out, Severity sev, std::string invariant,
         ProcessId pid, std::string detail) {
  out.push_back(
      Finding{sev, std::move(invariant), pid, std::move(detail)});
}

}  // namespace

std::string ConsistencyReport::to_string() const {
  std::string out = "consistency @ step " + std::to_string(step) + ": " +
                    (ok() ? "OK" : "FAIL") + " (" + std::to_string(errors()) +
                    " errors, " + std::to_string(warnings()) + " warnings; " +
                    std::to_string(checked_refs) + " refs, " +
                    std::to_string(checked_stubs) + " stubs, " +
                    std::to_string(checked_scions) + " scions, " +
                    std::to_string(checked_props) + " props scanned)";
  for (const Finding& f : findings) {
    out += "\n  ";
    out += f.to_string();
  }
  return out;
}

ConsistencyReport check_cluster(const core::Cluster& cluster) {
  ConsistencyReport report;
  const net::Network& net = cluster.network();
  report.step = cluster.now();

  const std::uint64_t lease_timeout = cluster.config().lease_timeout;
  const std::uint64_t now = cluster.now();
  const bool idle = net.idle();
  const bool reconciling = net.in_flight_of("Recover") != 0 ||
                           net.in_flight_of("Rebind") != 0 ||
                           net.in_flight_of("RebindNack") != 0 ||
                           net.in_flight_of("PropSync") != 0;

  for (ProcessId pid : cluster.process_ids()) {
    const rm::Process& proc = cluster.process(pid);

    // ---- Heap reference integrity ------------------------------------
    // Every reference any replica holds, and every root, must resolve at
    // this process — a local replica or a stub.  This is the "every row
    // referenced exists" scan of an offline database check.
    proc.heap().for_each([&](ObjectId id, std::uint32_t,
                             const rm::Object& obj) {
      for (const rm::Ref& r : obj.refs) {
        ++report.checked_refs;
        if (proc.knows(r.target)) continue;
        add(report.findings, Severity::kError, "ref_integrity", pid,
            rgc::to_string(id) + " holds a reference to " +
                rgc::to_string(r.target) + " that resolves to nothing");
      }
    });
    for (ObjectId root : proc.heap().roots()) {
      if (proc.knows(root)) continue;
      add(report.findings, Severity::kError, "root_integrity", pid,
          "root " + rgc::to_string(root) + " resolves to nothing");
    }
    for (const auto& [obj, ttl] : proc.transient_roots()) {
      if (proc.knows(obj)) continue;
      add(report.findings, Severity::kError, "root_integrity", pid,
          "transient root " + rgc::to_string(obj) + " resolves to nothing");
    }

    // ---- Stub -> scion matching --------------------------------------
    for (const auto& [key, stub] : proc.stubs()) {
      ++report.checked_stubs;
      // The remote half is unobservable while its process is down; the
      // reconciliation protocol settles it at restart.
      if (!cluster.is_alive(key.target_process)) continue;
      const rm::Process& target = cluster.process(key.target_process);
      if (target.scions().contains(rm::ScionKey{pid, key.target})) continue;
      const bool lease_retired =
          lease_timeout > 0 && now >= target.last_heard(pid) + lease_timeout;
      const bool unreachable = !net.reachable(pid, key.target_process);
      const bool benign = lease_retired || unreachable || reconciling || !idle;
      add(report.findings, benign ? Severity::kWarn : Severity::kError,
          "stub_scion", pid,
          "stub " + rgc::to_string(key.target) + "->" +
              rgc::to_string(key.target_process) +
              (lease_retired   ? " lease-retired, awaiting rebind"
               : unreachable   ? " unreachable (partitioned)"
               : reconciling   ? " reconciliation in flight"
               : !idle         ? " has no matching scion (traffic in flight)"
                               : " has no matching scion"));
    }

    // ---- Scion ownership + anchors -----------------------------------
    for (const auto& [key, scion] : proc.scions()) {
      ++report.checked_scions;
      if (!proc.knows(key.anchor)) {
        add(report.findings, Severity::kError, "scion_anchor", pid,
            "scion from " + rgc::to_string(key.src_process) + " anchors " +
                rgc::to_string(key.anchor) + ", which resolves to nothing");
      }
      if (cluster.is_alive(key.src_process)) continue;
      if (lease_timeout == 0) {
        // Without leases a dead owner legitimately pins its scions until
        // restart — worth surfacing, but not a violation.
        add(report.findings, Severity::kWarn, "scion_owner", pid,
            "scion for " + rgc::to_string(key.anchor) + " owned by dead " +
                rgc::to_string(key.src_process) +
                " (no lease configured; pinned until restart)");
        continue;
      }
      if (now >= proc.last_heard(key.src_process) + lease_timeout) {
        // The expiry sweep runs every step; an expired-yet-present scion
        // means the lease machinery failed to retire it.
        add(report.findings, Severity::kError, "scion_owner", pid,
            "scion for " + rgc::to_string(key.anchor) + " outlived the lease" +
                " of dead owner " + rgc::to_string(key.src_process));
      }
    }

    // ---- Propagation lists -------------------------------------------
    for (const rm::InProp& e : proc.in_props()) {
      ++report.checked_props;
      if (!proc.has_replica(e.object)) {
        add(report.findings, Severity::kError, "prop_replica", pid,
            "inProp names " + rgc::to_string(e.object) +
                " but no such replica exists here");
      }
      if (!cluster.is_alive(e.process) || !net.reachable(pid, e.process)) {
        continue;
      }
      if (cluster.process(e.process).find_out_prop(e.object, pid) == nullptr) {
        add(report.findings, idle ? Severity::kError : Severity::kWarn,
            "prop_pairing", pid,
            "inProp " + rgc::to_string(e.object) + " from " +
                rgc::to_string(e.process) + " has no outProp twin" +
                (idle ? "" : " (traffic in flight)"));
      }
    }
    for (const rm::OutProp& e : proc.out_props()) {
      ++report.checked_props;
      if (!proc.has_replica(e.object)) {
        add(report.findings, Severity::kError, "prop_replica", pid,
            "outProp names " + rgc::to_string(e.object) +
                " but no such replica exists here");
      }
      if (!cluster.is_alive(e.process) || !net.reachable(pid, e.process)) {
        continue;
      }
      if (cluster.process(e.process).find_in_prop(e.object, pid) == nullptr) {
        add(report.findings, idle ? Severity::kError : Severity::kWarn,
            "prop_pairing", pid,
            "outProp " + rgc::to_string(e.object) + " to " +
                rgc::to_string(e.process) + " has no inProp twin" +
                (idle ? "" : " (traffic in flight)"));
      }
    }
  }

  // ---- Transport conservation, from the network's own ledgers ----------
  for (const net::Network::KindFlow& f : net.kind_flows()) {
    const std::uint64_t issued = f.sent + f.duplicated;
    const std::uint64_t accounted = f.delivered + f.dropped + f.in_flight;
    if (issued != accounted) {
      add(report.findings, Severity::kError, "net_conservation", kNoProcess,
          f.kind + ": sent " + std::to_string(f.sent) + " + duplicated " +
              std::to_string(f.duplicated) + " != delivered " +
              std::to_string(f.delivered) + " + dropped " +
              std::to_string(f.dropped) + " + in-flight " +
              std::to_string(f.in_flight));
    }
  }

  if (!idle) {
    add(report.findings, Severity::kWarn, "advisory", kNoProcess,
        std::to_string(net.in_flight()) +
            " messages in flight; run to quiescence for a definitive verdict");
  }
  return report;
}

std::vector<Finding> check_image(const std::string& bytes,
                                 std::uint64_t min_mutation_epoch) {
  std::vector<Finding> out;
  switch (const gc::ImageStatus status = gc::validate_image(bytes)) {
    case gc::ImageStatus::kOk:
      break;
    case gc::ImageStatus::kChecksumMismatch:
      add(out, Severity::kError, "image_checksum", kNoProcess,
          gc::to_string(status));
      return out;
    case gc::ImageStatus::kMalformed:
      add(out, Severity::kError, "image_structure", kNoProcess,
          gc::to_string(status));
      return out;
    case gc::ImageStatus::kTruncated:
    case gc::ImageStatus::kBadMagic:
    case gc::ImageStatus::kBadVersion:
      add(out, Severity::kError, "image_header", kNoProcess,
          gc::to_string(status));
      return out;
  }
  const auto image = gc::decode_image(bytes);
  if (!image.has_value()) {
    add(out, Severity::kError, "image_structure", kNoProcess,
        "checksum valid but the record structure does not decode");
    return out;
  }
  if (image->mutation_epoch < min_mutation_epoch) {
    add(out, Severity::kError, "image_stale", kNoProcess,
        "image mutation epoch " + std::to_string(image->mutation_epoch) +
            " predates the recorded persist epoch " +
            std::to_string(min_mutation_epoch));
  }
  return out;
}

}  // namespace rgc::obs
