// Deterministic replay & divergence bisection over flight recordings
// (docs/OBSERVABILITY.md "Flight recorder & replay").
//
// record_chaos_run() executes the canonical seeded fault-chaos workload —
// a leased cluster under random mutation + the GC daemon with a seeded
// workload::FaultPlan firing kills/restarts/partitions/heals, the same
// shape as tests/chaos_test.cpp's acceptance run — with the flight
// recorder on, and returns the encoded `.rgcrec` bytes.  replay_recording()
// re-runs the workload described by a recording's stamp while diffing the
// live event stream against it: a deterministic simulator must reproduce
// the recording byte for byte, so the first mismatched event IS the first
// point where determinism (or the code under test) broke.
// bisect_divergence() narrows two decoded recordings of the same run to
// their first divergent global event index by binary search over prefix
// hashes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/recorder.h"

namespace rgc::obs {

/// The canonical recorded workload.  Everything except `threads` and
/// `perturb_step` is captured in the RecStamp; threads is excluded on
/// purpose (recordings are byte-identical for any thread count) and
/// perturb_step exists only to inject a divergence on demand.
struct ChaosRunSpec {
  std::uint64_t seed{2024};
  std::uint32_t processes{16};
  double drop{0.0};
  double dup{0.0};
  std::uint32_t max_delay{2};
  std::uint64_t lease_timeout{48};
  std::uint32_t rounds{60};
  std::uint32_t ring_capacity{4096};
  std::size_t threads{1};
  /// Test hook: once the cluster clock reaches this step, run one extra
  /// cluster.step() at the next round boundary — a minimal, realistic
  /// nondeterminism (perturbed delivery timing).  0 = off.
  std::uint64_t perturb_step{0};
  /// When set, the run dumps its recording here on an audit ERROR
  /// (ClusterConfig::record_dump_path) and on SIGABRT (arm_abort_dump), so a
  /// crashed recording session still leaves a .rgcrec behind.  Not part of
  /// the stamp.
  std::string dump_path{};
};

/// Stamp <-> spec conversion (drop/dup round-trip exactly via bit pattern).
[[nodiscard]] RecStamp stamp_of(const ChaosRunSpec& spec);
[[nodiscard]] ChaosRunSpec spec_of(const RecStamp& stamp);

/// Runs the workload with recording on; returns encoded `.rgcrec` bytes.
[[nodiscard]] std::string record_chaos_run(const ChaosRunSpec& spec);

struct ReplayOutcome {
  bool loaded{false};
  std::string error;  // set when !loaded (undecodable recording)
  /// The replayed run re-encoded to exactly the reference bytes.
  bool byte_identical{false};
  /// First live event that contradicted the reference (found=false when
  /// the streams matched event for event).
  Divergence divergence;
  /// Human-readable report: verdict, and on divergence the expected vs
  /// actual events with full causal context (pid, step, kind, lineage).
  std::string report;
  /// The replay's own encoded recording (for bisection against the
  /// reference).
  std::string live_bytes;
};

/// Decodes `recorded_bytes`, re-runs the stamped workload with the
/// reference installed, and reports the first divergence (if any).
/// `threads` overrides the worker-pool width — recordings are
/// thread-count independent, so any value must still replay identically.
[[nodiscard]] ReplayOutcome replay_recording(const std::string& recorded_bytes,
                                             std::size_t threads = 1,
                                             std::uint64_t perturb_step = 0);

struct BisectOutcome {
  /// True when the two recordings' merged event streams are identical.
  bool identical{true};
  /// Index (into RecordedRun::events) of the first divergent event.
  std::size_t index{0};
  /// Global seq of that event (from whichever stream has it).
  std::uint64_t seq{0};
  /// Binary-search probes spent.
  std::size_t probes{0};
  std::string report;
};

/// Binary-searches prefix hashes of the two merged event streams for the
/// first index where they disagree — O(n) hashing once, O(log n) probes.
[[nodiscard]] BisectOutcome bisect_divergence(const RecordedRun& a,
                                              const RecordedRun& b);

}  // namespace rgc::obs
