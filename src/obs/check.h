// Offline consistency checker (modeled on monotone's database_check):
// a full-scan, first-principles audit of an entire cluster, meant to run
// from tests and tools after chaos legs — unlike the online auditor
// (obs/audit.h), it holds no incremental state, assumes nothing about how
// the cluster got here, and walks *everything*.
//
// Passes, each from first principles:
//  - heap reference integrity: every reference held by any replica must
//    resolve locally (replica or stub), and every root/transient root must
//    be resolvable;
//  - stub -> scion matching, with the same recovery-window leniency as the
//    online auditor (dead target, expired lease, partition, reconciliation
//    traffic in flight → WARN instead of ERROR);
//  - scion ownership: every scion's owner must be live, or within its
//    lease; a scion that outlived its owner's lease is an ERROR (the sweep
//    in gc::Adgc::expire_leases failed);
//  - scion anchors must be resolvable at the hosting process;
//  - inProp/outProp pairing across every propagation edge, and every prop
//    entry must name a replica that exists on its side;
//  - per-kind transport conservation:
//    sent + duplicated == delivered + dropped + in_flight.
//
// Results are obs::Finding values (shared with the online auditor) wrapped
// in a ConsistencyReport; callers typically assert report.ok().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/health.h"
#include "util/ids.h"

namespace rgc::core {
class Cluster;
}  // namespace rgc::core

namespace rgc::obs {

struct ConsistencyReport {
  /// Simulation step the check ran at.
  std::uint64_t step{0};
  std::vector<Finding> findings;
  /// Scan coverage, for "did it actually look at anything" asserts.
  std::uint64_t checked_refs{0};
  std::uint64_t checked_stubs{0};
  std::uint64_t checked_scions{0};
  std::uint64_t checked_props{0};

  [[nodiscard]] std::size_t errors() const {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.severity == Severity::kError;
    return n;
  }
  [[nodiscard]] std::size_t warnings() const {
    std::size_t n = 0;
    for (const Finding& f : findings) n += f.severity == Severity::kWarn;
    return n;
  }
  [[nodiscard]] bool ok() const { return errors() == 0; }

  [[nodiscard]] std::string to_string() const;
};

/// Full-cluster offline consistency check (see file header).
[[nodiscard]] ConsistencyReport check_cluster(const core::Cluster& cluster);

/// Offline verdict on a persisted process image (gc::encode_image bytes):
/// structural validation (magic/version/checksum), decodability, and a
/// stale-snapshot guard — the decoded mutation epoch must be at least
/// `min_mutation_epoch` (pass the epoch recorded when the image was
/// persisted; 0 skips the staleness check).  Empty result = fit to restart
/// from; Cluster::restart refuses anything else.
[[nodiscard]] std::vector<Finding> check_image(
    const std::string& bytes, std::uint64_t min_mutation_epoch = 0);

}  // namespace rgc::obs
