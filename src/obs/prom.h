// Prometheus text exposition (format v0.0.4) for a whole cluster.
//
// util::Metrics::to_prometheus serializes one registry; a cluster has many
// (one per process, the network's, the auditor's, the profiling registry).
// Naively concatenating them would emit duplicate `# TYPE` headers — invalid
// exposition — so this writer groups samples into metric *families* first:
// the same counter on every process becomes one family with one TYPE line
// and a `process="P3"` label per sample.
//
//   rgc_lgc_reclaimed{process="P0"} 812
//   rgc_lgc_reclaimed{process="P1"} 790
//
// Collisions between a histogram family and a like-named counter/gauge
// (e.g. net.queue_depth is both a gauge and a per-step histogram) are
// resolved by suffixing the scalar family with `_value`.
#pragma once

#include <iosfwd>
#include <string>

namespace rgc::core {
class Cluster;
}  // namespace rgc::core

namespace rgc::obs {

/// Writes every registry of `cluster` (processes, network, auditor,
/// profiling) as one Prometheus exposition document.
void write_prometheus(const core::Cluster& cluster, std::ostream& os);

/// Convenience: write_prometheus into a string (tests, --prom-out).
[[nodiscard]] std::string to_prometheus(const core::Cluster& cluster);

}  // namespace rgc::obs
