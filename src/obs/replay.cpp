#include "obs/replay.h"

#include <bit>
#include <cstring>
#include <string_view>
#include <vector>

#include "core/cluster.h"
#include "core/daemon.h"
#include "util/log.h"
#include "workload/fault_plan.h"
#include "workload/random_mutator.h"

namespace rgc::obs {

namespace {

std::uint64_t fnv1a_step(std::uint64_t h, std::string_view bytes) {
  for (const unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::uint64_t hash_event(std::uint64_t h, const RecEvent& e) {
  char buf[44];
  std::size_t at = 0;
  const auto put = [&](const void* p, std::size_t n) {
    std::memcpy(buf + at, p, n);
    at += n;
  };
  put(&e.seq, 8);
  put(&e.step, 8);
  put(&e.a, 8);
  put(&e.b, 8);
  put(&e.pid, 4);
  put(&e.peer, 4);
  put(&e.detail, 2);
  put(&e.kind, 1);
  put(&e.pad, 1);
  return fnv1a_step(h, std::string_view{buf, at});
}

/// Runs the canonical chaos workload (the shape of chaos_test's
/// run_fault_chaos, minus the oracle/GC-until-dry tail) with recording on.
/// Returns the recorder's encoded bytes; `reference`/`out` feed the live
/// diff when replaying.
std::string run_chaos(const ChaosRunSpec& spec, const RecordedRun* reference,
                      Divergence* out_divergence) {
  core::ClusterConfig cfg;
  cfg.net.seed = spec.seed;
  cfg.net.drop_probability = spec.drop;
  cfg.net.duplicate_probability = spec.dup;
  cfg.net.min_delay = 1;
  cfg.net.max_delay = spec.max_delay;
  cfg.candidate_threshold = 2;
  cfg.lease_timeout = spec.lease_timeout;
  cfg.threads = spec.threads;
  cfg.record_capacity = spec.ring_capacity;
  cfg.record_dump_path = spec.dump_path;
  core::Cluster cluster{cfg};
  for (std::uint32_t i = 0; i < spec.processes; ++i) cluster.add_process();
  FlightRecorder* recorder = cluster.recorder();
  if (reference != nullptr) recorder->set_reference(reference);
  if (!spec.dump_path.empty()) {
    arm_abort_dump(recorder, stamp_of(spec), spec.dump_path);
  }

  workload::FaultPlanSpec plan_spec;
  plan_spec.seed = spec.seed * 31 + 7;
  plan_spec.kills = 4;
  plan_spec.partitions = 1;
  plan_spec.start = 24;
  plan_spec.horizon = 360;
  const auto plan =
      workload::FaultPlan::random(cluster.process_ids(), plan_spec);
  workload::FaultPlanRunner runner{cluster, plan};

  workload::MutatorSpec mut_spec;
  mut_spec.seed = spec.seed * 7919 + 31;
  mut_spec.w_collect = 0;  // the daemon collects
  mut_spec.w_step = 5;
  workload::RandomMutator mutator{cluster, mut_spec};
  core::GcDaemon daemon{cluster};

  bool perturbed = false;
  for (std::uint32_t round = 0; round < spec.rounds; ++round) {
    if (spec.perturb_step != 0 && !perturbed &&
        cluster.now() >= spec.perturb_step) {
      // The injected nondeterminism: one extra step shifts every later
      // delivery, which the diff against the reference must catch.
      cluster.step();
      perturbed = true;
    }
    mutator.run(12);
    daemon.run(3);
    runner.poll();
    if (runner.done() && cluster.now() > plan_spec.start + plan_spec.horizon) {
      break;
    }
  }
  runner.finish();  // heal + restart everyone: end of chaos
  cluster.run_until_quiescent();

  if (!spec.dump_path.empty()) arm_abort_dump(nullptr, {}, {});
  if (out_divergence != nullptr) *out_divergence = recorder->divergence();
  return recorder->encode(stamp_of(spec));
}

}  // namespace

RecStamp stamp_of(const ChaosRunSpec& spec) {
  RecStamp stamp;
  stamp.seed = spec.seed;
  stamp.processes = spec.processes;
  stamp.drop_bits = std::bit_cast<std::uint64_t>(spec.drop);
  stamp.dup_bits = std::bit_cast<std::uint64_t>(spec.dup);
  stamp.max_delay = spec.max_delay;
  stamp.lease_timeout = spec.lease_timeout;
  stamp.rounds = spec.rounds;
  stamp.capacity = spec.ring_capacity;
  return stamp;
}

ChaosRunSpec spec_of(const RecStamp& stamp) {
  ChaosRunSpec spec;
  spec.seed = stamp.seed;
  spec.processes = stamp.processes;
  spec.drop = std::bit_cast<double>(stamp.drop_bits);
  spec.dup = std::bit_cast<double>(stamp.dup_bits);
  spec.max_delay = stamp.max_delay;
  spec.lease_timeout = stamp.lease_timeout;
  spec.rounds = stamp.rounds;
  spec.ring_capacity = stamp.capacity;
  return spec;
}

std::string record_chaos_run(const ChaosRunSpec& spec) {
  return run_chaos(spec, nullptr, nullptr);
}

ReplayOutcome replay_recording(const std::string& recorded_bytes,
                               std::size_t threads,
                               std::uint64_t perturb_step) {
  ReplayOutcome out;
  const auto reference = FlightRecorder::decode(recorded_bytes);
  if (!reference.has_value()) {
    out.error = "recording is corrupt or not a .rgcrec file";
    out.report = out.error;
    return out;
  }
  out.loaded = true;

  ChaosRunSpec spec = spec_of(reference->stamp);
  spec.threads = threads == 0 ? 1 : threads;
  spec.perturb_step = perturb_step;
  out.live_bytes = run_chaos(spec, &*reference, &out.divergence);
  out.byte_identical = out.live_bytes == recorded_bytes;

  std::string report;
  report += "replay: seed=" + std::to_string(spec.seed) +
            " processes=" + std::to_string(spec.processes) +
            " rounds=" + std::to_string(spec.rounds) +
            " threads=" + std::to_string(spec.threads) + "\n";
  report += "recorded events=" + std::to_string(reference->appended) +
            " (retained " + std::to_string(reference->events.size()) +
            ", ring-dropped " + std::to_string(reference->dropped) + ")\n";
  if (out.divergence.found) {
    const auto& d = out.divergence;
    report += "DIVERGED at seq=" + std::to_string(d.seq) + "\n";
    if (d.extra) {
      report += "  expected: <end of recording>\n";
    } else {
      report += "  expected: " + describe(d.expected, reference->kinds) + "\n";
    }
    // The live run interned kinds in the same order until the divergence,
    // so the reference table names the actual event correctly too.
    report += "  actual:   " + describe(d.actual, reference->kinds) + "\n";
  } else if (out.byte_identical) {
    report += "byte-identical: the run reproduced the recording exactly\n";
  } else {
    report +=
        "events matched but bytes differ (stamp or ring-capacity "
        "mismatch?)\n";
  }
  out.report = report;
  return out;
}

BisectOutcome bisect_divergence(const RecordedRun& a, const RecordedRun& b) {
  BisectOutcome out;
  const std::size_t na = a.events.size();
  const std::size_t nb = b.events.size();
  const std::size_t n = std::min(na, nb);

  // Prefix hashes: prefix[i] covers events [0, i).  One O(n) pass buys
  // O(1) "do the first i events match?" probes for the binary search.
  std::vector<std::uint64_t> pa(n + 1), pb(n + 1);
  pa[0] = pb[0] = 1469598103934665603ULL;
  for (std::size_t i = 0; i < n; ++i) {
    pa[i + 1] = hash_event(pa[i], a.events[i]);
    pb[i + 1] = hash_event(pb[i], b.events[i]);
  }

  if (pa[n] == pb[n]) {
    if (na == nb) {
      out.identical = true;
      out.report = "recordings are identical (" + std::to_string(na) +
                   " events)";
      return out;
    }
    // One stream is a strict prefix of the other: first divergence is the
    // first event past the common prefix.
    out.identical = false;
    out.index = n;
    const RecordedRun& longer = na > nb ? a : b;
    out.seq = longer.events[n].seq;
    out.report = "first divergence at event index " + std::to_string(n) +
                 " (one recording ends here)\n  " +
                 (na > nb ? "only in A: " : "only in B: ") +
                 describe(longer.events[n], longer.kinds);
    return out;
  }

  std::size_t lo = 0;  // prefix of length lo matches
  std::size_t hi = n;  // prefix of length hi differs
  while (lo + 1 < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    ++out.probes;
    (pa[mid] == pb[mid] ? lo : hi) = mid;
  }
  out.identical = false;
  out.index = lo;  // events[lo] is the first that differs
  out.seq = a.events[lo].seq;
  out.report = "first divergence at event index " + std::to_string(lo) +
               " (seq=" + std::to_string(a.events[lo].seq) + ", " +
               std::to_string(out.probes) + " probes)\n  A: " +
               describe(a.events[lo], a.kinds) + "\n  B: " +
               describe(b.events[lo], b.kinds);
  return out;
}

}  // namespace rgc::obs
