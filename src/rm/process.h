// One participating process of the RM system (§2.1): heap + mutator +
// coherence engine, plus the DGC bookkeeping tables the collectors read.
//
// The mutator API (create/add_ref/remove_ref/roots) is what an application
// sees; the coherence API (propagate/invoke) is what the store's engine
// drives.  Both enforce the paper's export/import rules:
//   - clean before send propagate  — scions are created at the sender for
//     every reference enclosed in the propagated object, before the message
//     leaves (so scions causally precede stubs);
//   - clean before deliver propagate — stubs are created at the receiver
//     for every imported reference that is not locally resolvable.
// Invocations and propagations bump the invocation/update counters used by
// the cycle detector's race barrier (§3.5).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "net/network.h"
#include "rm/heap.h"
#include "rm/messages.h"
#include "rm/tables.h"
#include "util/ids.h"
#include "util/metrics.h"

namespace rgc::obs {
class FlightRecorder;
class Ledger;
}  // namespace rgc::obs

namespace rgc::rm {

/// Pre-registered hot-path counter handles (see util/metrics.h): resolved
/// once at process construction, incremented by pointer dereference.  The
/// string Metrics API stays available for cold paths; both views share the
/// same storage.
struct ProcessCounters {
  util::Counter objects_created;
  util::Counter ref_assignments;
  util::Counter ref_removals;
  util::Counter propagations;
  util::Counter propagations_delivered;
  util::Counter invocations;
  util::Counter invocations_delivered;
  util::Counter invocations_forwarded;
  util::Counter scions_created;
  util::Counter stubs_created;
  util::Counter inprops_created;
  util::Counter outprops_created;
  util::Counter lgc_collections;
  util::Counter lgc_reclaimed;

  explicit ProcessCounters(util::Metrics& metrics);
};

/// One recently-reclaimed replica, recorded by the LGC sweep for the health
/// auditor's reclaim-safety sampling (a dangling reference found by a deep
/// audit is attributed to the reclaim that severed it when it is still in
/// the ring).
struct ReclaimRecord {
  ObjectId object{kNoObject};
  std::uint64_t at_step{0};
};

/// Per-process scratch buffers for the LGC's epoch marking: the BFS
/// worklist doubles as the visited list (every enqueued object stays in
/// `queue`), and `stubs` records stubs touched this epoch so results can be
/// read back without scanning the whole stub table.  Owned by the process
/// so repeated collections reuse the same capacity — the trace loop does
/// zero heap allocations at steady state.  Mutable state of a logically
/// read-only phase; touched only by whichever single thread is marking
/// this process (the cluster never marks one process from two threads).
struct MarkScratch {
  std::uint64_t epoch{0};
  /// Slots already handed out by drain() (queue[0..head) are processed).
  std::size_t head{0};
  /// BFS worklist of heap slots (Heap::slot_of) — reference resolution is
  /// O(1) index arithmetic against the arena, no side index to build.
  std::vector<std::uint32_t> queue;
  std::vector<StubKey> stubs;
};

/// Per-process scratch for the one-pass SCC snapshot summarizer
/// (gc/cycle/summary.cpp): iterative-Tarjan state over dense heap
/// positions, the edge lists recorded during the DFS, the per-SCC /
/// per-stub seed bitsets, and the emission temporaries.  Owned by the
/// process for the same reason as MarkScratch — capacity is reused across
/// snapshots so steady-state summarization performs no scratch
/// allocations — and under the same single-threaded-per-process contract.
struct SummarizeScratch {
  // Iterative Tarjan over the seed-reachable subgraph, indexed by arena
  // slot (Heap::slot_of / Heap::slab_size extent).
  std::vector<std::uint32_t> num;
  std::vector<std::uint32_t> low;
  std::vector<std::uint32_t> scc;
  std::vector<std::uint8_t> on_stack;
  std::vector<std::uint32_t> stack;
  struct Frame {
    std::uint32_t node{0};
    std::uint32_t ref{0};
  };
  std::vector<Frame> frames;
  /// Object->object and object->stub edges recorded by the DFS (dense
  /// source position, dense target / stub position).
  std::vector<std::pair<std::uint32_t, std::uint32_t>> obj_edges;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> stub_edges;
  /// Condensation-DAG adjacency, bucketed by source SCC (counting sort).
  std::vector<std::uint32_t> edge_offsets;
  std::vector<std::uint32_t> edge_targets;
  /// Seed-reachability bitsets: one ceil(seeds/64)-word slice per SCC and
  /// per stub; bit s set means seed s reaches that SCC / stub.
  std::vector<std::uint64_t> scc_bits;
  std::vector<std::uint64_t> stub_bits;
  std::vector<std::uint64_t> tmp_bits;
  /// Summarization seeds (scion anchors and replicated objects present in
  /// the heap), sorted by id, with flag bits and dense heap positions.
  std::vector<ObjectId> seed_objs;
  std::vector<std::uint8_t> seed_flags;
  std::vector<std::uint32_t> seed_nodes;
  /// Scion anchors with no local replica (reached through stub chains).
  std::vector<ObjectId> remote_anchors;
  /// Stub table in key order (dense stub position -> stub).
  std::vector<const Stub*> stub_list;
  /// Per-seed forward output, shared by every scion on the same anchor.
  std::vector<std::vector<StubKey>> stubs_of_seed;
  std::vector<std::vector<ObjectId>> reps_of_seed;
  // Emission temporaries.
  std::vector<ScionKey> tmp_scion_keys;
  std::vector<ObjectId> tmp_objs;
  std::vector<StubKey> tmp_stub_keys;
};

class Process {
 public:
  Process(ProcessId id, net::Network& network);

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] ProcessId id() const noexcept { return id_; }
  [[nodiscard]] Heap& heap() noexcept { return heap_; }
  [[nodiscard]] const Heap& heap() const noexcept { return heap_; }
  [[nodiscard]] net::Network& network() const noexcept { return *network_; }

  // ---- Mutator operations (§2.1.1) ------------------------------------

  /// Materializes a brand-new object on this process.  Ids are allocated by
  /// the Cluster so they are globally unique.
  Object& create_object(ObjectId id, std::uint32_t payload_bytes = 16);

  /// Reference assignment `from.field = to`.  `from` must be a local
  /// replica; `to` must be resolvable here (local replica or stub), because
  /// in the RM model a process can only assign references it already holds.
  /// Throws std::logic_error otherwise.
  void add_ref(ObjectId from, ObjectId to);

  /// Reference removal `from.field = null`.
  void remove_ref(ObjectId from, ObjectId to);

  /// Root assignment (global/register).  The target may be local or remote
  /// (through a stub).
  void add_root(ObjectId target);
  void remove_root(ObjectId target);

  // ---- Coherence operations (§2.1.2) -----------------------------------

  /// Propagates (replicates or updates) the local replica of `object` to
  /// process `to`: bumps the outProp UC, creates scions for every enclosed
  /// reference ("clean before send"), then ships the content.
  void propagate(ObjectId object, ProcessId to);

  /// Remote invocation through the local stub for `target`; bumps the
  /// stub's IC, pins the remote reference as a transient local root for
  /// `root_steps` steps, and bumps the scion's IC at the callee.
  void invoke(ObjectId target, std::uint32_t root_steps = 1);

  // ---- Message handlers (wired by the Cluster dispatcher) --------------

  void on_propagate(const net::Envelope& env, const PropagateMsg& msg);
  void on_invoke(const net::Envelope& env, const InvokeMsg& msg);

  // ---- Fault-tolerance protocol (docs/FAULTS.md) -----------------------

  /// Callee side of reconciliation: re-creates (or refreshes) the scion for
  /// `msg.anchor` held by env.src, or answers RebindNack when the anchor is
  /// no longer resolvable here (lost with a stale snapshot).
  void on_rebind(const net::Envelope& env, const RebindMsg& msg);

  /// Holder side: the peer no longer knows the anchor — sever the stub
  /// toward env.src and everything bound through it.
  void on_rebind_nack(const net::Envelope& env, const RebindNackMsg& msg);

  /// Drops inProp entries from env.src absent from msg.objects (links whose
  /// parent side died with the sender's lost state).
  void on_prop_sync(const net::Envelope& env, const PropSyncMsg& msg);

  /// Severs the stub `key` plus every reference bound through it.  Refs are
  /// rebound through a local replica or an alternative stub chain when one
  /// exists; otherwise they (and roots left unresolvable) are removed, and
  /// RebindNacks cascade upstream for scions this makes unresolvable.
  void sever_stub(StubKey key);

  /// In fault-tolerant mode an Invoke racing a crash/lease window may reach
  /// a callee without the matching scion or chain stub; the process then
  /// drops it (counted, "rm.invocations_orphaned") instead of treating it
  /// as a protocol violation.  Set by the Cluster once fault injection or
  /// leases are in play; default off, preserving the strict guards.
  void set_fault_tolerant(bool on) noexcept { fault_tolerant_ = on; }
  [[nodiscard]] bool fault_tolerant() const noexcept { return fault_tolerant_; }

  // ---- Lease bookkeeping (docs/FAULTS.md) ------------------------------

  /// Records evidence that `peer` was alive at `step`: every delivery from
  /// it (heartbeats piggyback on existing traffic), plus the out-of-band
  /// keepalive floor the Cluster runs between mutually reachable processes.
  /// Deliberately does NOT bump the mutation epoch — renewals are not
  /// snapshot-relevant.
  void note_heard(ProcessId peer, std::uint64_t step) {
    auto& at = last_heard_[peer];
    if (step > at) at = step;
  }

  /// Last step `peer` was known alive (0 = never heard from).
  [[nodiscard]] std::uint64_t last_heard(ProcessId peer) const {
    const auto it = last_heard_.find(peer);
    return it == last_heard_.end() ? 0 : it->second;
  }

  // ---- Crash/restart persistence (rm/image.h) --------------------------

  /// Consistent copy of the full GC-relevant state, for persistence.
  [[nodiscard]] struct ProcessImage capture_image(std::uint64_t now) const;

  /// Replaces all state with `image` (restart-from-snapshot).  Leases for
  /// every peer named in the image are renewed to `now` — a restarting
  /// process re-registers before anyone may reclaim on its behalf.
  void restore_image(const struct ProcessImage& image, std::uint64_t now);

  /// Advances process-local time by `elapsed` steps: expires transient
  /// invocation roots whose TTL is covered.  The event-driven scheduler
  /// passes the whole skipped stretch at once; callers clamp the jump so
  /// no expiry lands strictly inside it (next_transient_expiry), which
  /// keeps the per-step and time-skip schedules observably identical.
  void tick(std::uint64_t elapsed = 1);

  /// Steps until the earliest transient root expires (its TTL), or 0 when
  /// none are pinned — the scheduler's clamp for time skips.
  [[nodiscard]] std::uint32_t next_transient_expiry() const noexcept;

  /// Earliest virtual step at which gc::Adgc::expire_leases could retire
  /// state here (min over lease-holding peers of last_heard + timeout), or
  /// UINT64_MAX when no peer holds leased state.  Mirrors expire_leases'
  /// peer set exactly so event skips never jump over an expiry.
  [[nodiscard]] std::uint64_t next_lease_expiry(
      std::uint64_t timeout) const noexcept;

  // ---- Resolution helpers ----------------------------------------------

  [[nodiscard]] bool has_replica(ObjectId id) const { return heap_.contains(id); }

  /// All stubs designating `target` (SSP chains allow several), ordered by
  /// target process.  Allocates the result vector; hot paths should use
  /// for_each_stub_for instead.
  [[nodiscard]] std::vector<StubKey> stubs_for(ObjectId target) const;

  /// Visits every stub designating `target` in target-process order,
  /// without allocating (reverse stub index, O(1) amortized lookup).
  template <typename Fn>
  void for_each_stub_for(ObjectId target, Fn&& fn) const {
    auto it = stub_index_.find(target);
    if (it == stub_index_.end()) return;
    for (const Stub* stub : it->second) fn(*stub);
  }

  /// First stub designating `target` in target-process order, or nullptr.
  [[nodiscard]] const Stub* first_stub_for(ObjectId target) const {
    auto it = stub_index_.find(target);
    return it == stub_index_.end() ? nullptr : it->second.front();
  }
  [[nodiscard]] Stub* first_stub_for(ObjectId target) {
    auto it = stub_index_.find(target);
    return it == stub_index_.end() ? nullptr : it->second.front();
  }

  /// True when this process can reach `id` at all: replica, stub, or root.
  [[nodiscard]] bool knows(ObjectId id) const;

  // ---- DGC table access --------------------------------------------------

  [[nodiscard]] const std::map<StubKey, Stub>& stubs() const noexcept { return stubs_; }

  /// Stub-table mutation goes through these so the reverse index
  /// (target -> stubs) stays coherent; there is deliberately no mutable
  /// stubs() accessor.
  Stub& ensure_stub(StubKey key, std::uint64_t created_at);
  bool erase_stub(StubKey key);
  [[nodiscard]] Stub* find_stub(StubKey key);
  [[nodiscard]] const Stub* find_stub(StubKey key) const {
    auto it = stubs_.find(key);
    return it == stubs_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] std::map<ScionKey, Scion>& scions() noexcept { return scions_; }
  [[nodiscard]] const std::map<ScionKey, Scion>& scions() const noexcept { return scions_; }
  [[nodiscard]] std::vector<InProp>& in_props() noexcept { return in_props_; }
  [[nodiscard]] const std::vector<InProp>& in_props() const noexcept { return in_props_; }
  [[nodiscard]] std::vector<OutProp>& out_props() noexcept { return out_props_; }
  [[nodiscard]] const std::vector<OutProp>& out_props() const noexcept { return out_props_; }

  [[nodiscard]] InProp* find_in_prop(ObjectId object, ProcessId from);
  [[nodiscard]] OutProp* find_out_prop(ObjectId object, ProcessId to);
  [[nodiscard]] const InProp* find_in_prop(ObjectId object, ProcessId from) const;
  [[nodiscard]] const OutProp* find_out_prop(ObjectId object, ProcessId to) const;
  [[nodiscard]] bool is_replicated(ObjectId object) const;

  /// inProp partners (parent processes) / outProp partners (children).
  [[nodiscard]] std::vector<ProcessId> prop_parents(ObjectId object) const;
  [[nodiscard]] std::vector<ProcessId> prop_children(ObjectId object) const;

  /// Transient roots created by in-flight invocations; the LGC treats them
  /// exactly like mutator roots.
  [[nodiscard]] const std::map<ObjectId, std::uint32_t>& transient_roots() const noexcept {
    return transient_roots_;
  }
  void pin_transient_root(ObjectId target, std::uint32_t steps);

  /// Highest Propagate link-sequence number delivered from `src`; the
  /// NewSetStubs causality horizon (see tables.h / adgc).
  [[nodiscard]] std::uint64_t delivered_prop_seq(ProcessId src) const;

  /// Processes that may hold scions matching our stubs (every process we
  /// ever created a stub toward).  The ADGC sends NewSetStubs to each of
  /// them — including an empty set after the last stub to a peer died, so
  /// the peer can drop its scions; the peer is then forgotten.
  [[nodiscard]] std::set<ProcessId>& stub_peers() noexcept { return stub_peers_; }

  /// Monotonic local-collection counter; stamped on outgoing NewSetStubs.
  std::uint64_t next_collection_epoch() noexcept { return ++collection_epoch_; }

  /// Highest NewSetStubs epoch accepted from each peer (stale-set guard).
  [[nodiscard]] std::map<ProcessId, std::uint64_t>& newsetstubs_epochs() noexcept {
    return newsetstubs_epochs_;
  }

  // ---- Reclaim history (health auditor) --------------------------------

  static constexpr std::size_t kReclaimRing = 64;

  /// Records a reclaim into the fixed ring (oldest entry overwritten).
  void note_reclaimed(ObjectId id, std::uint64_t step) noexcept {
    reclaim_ring_[reclaim_ring_next_] = ReclaimRecord{id, step};
    reclaim_ring_next_ = (reclaim_ring_next_ + 1) % kReclaimRing;
    ++reclaims_noted_;
  }
  [[nodiscard]] const std::array<ReclaimRecord, kReclaimRing>& reclaim_ring()
      const noexcept {
    return reclaim_ring_;
  }
  /// Total reclaims ever recorded; min(reclaims_noted, kReclaimRing) ring
  /// entries are valid.
  [[nodiscard]] std::uint64_t reclaims_noted() const noexcept {
    return reclaims_noted_;
  }

  /// Per-process counters: "rm.propagations", "rm.invocations", ...
  [[nodiscard]] const util::Metrics& metrics() const noexcept { return metrics_; }
  util::Metrics& metrics() noexcept { return metrics_; }

  /// Hot-path counter handles (same storage as metrics()).
  [[nodiscard]] ProcessCounters& counters() noexcept { return counters_; }

  /// Flight-recorder sink for this process's GC events (obs/recorder.h) —
  /// borrowed from the owning Cluster, null in standalone use.  The LGC
  /// sweep and ADGC reclaim/lease paths record through it.
  void set_recorder(obs::FlightRecorder* recorder) noexcept {
    recorder_ = recorder;
  }
  [[nodiscard]] obs::FlightRecorder* recorder() const noexcept {
    return recorder_;
  }

  /// Per-cycle cost ledger (obs/ledger.h) — same borrowing rules as the
  /// recorder.  The LGC sweep reports reclaims and the detector reports
  /// cut application through it.
  void set_ledger(obs::Ledger* ledger) noexcept { ledger_ = ledger; }
  [[nodiscard]] obs::Ledger* ledger() const noexcept { return ledger_; }

  // ---- LGC marking support --------------------------------------------

  /// Starts a fresh mark epoch: bumps the epoch (invalidating every
  /// object/stub mask lazily) and rewinds the scratch buffers, keeping
  /// their capacity.  Returns the scratch; const because marking is a
  /// read-only phase over the object graph.
  MarkScratch& begin_mark_epoch() const {
    ++scratch_.epoch;
    scratch_.head = 0;
    scratch_.queue.clear();
    scratch_.stubs.clear();
    return scratch_;
  }

  /// Scratch of the *current* epoch (for result read-back after tracing).
  [[nodiscard]] MarkScratch& mark_scratch() const { return scratch_; }

  /// Scratch for the one-pass snapshot summarizer (gc/cycle/summary.cpp);
  /// const for the same reason as mark_scratch — summarization is a
  /// read-only phase over the object graph.
  [[nodiscard]] SummarizeScratch& summarize_scratch() const {
    return sum_scratch_;
  }

  // ---- Snapshot identity (dirty-epoch tracking) ------------------------

  /// Monotonic mutation epoch: bumped by every operation that can change
  /// this process's snapshot summary — reference/root assignment, transient
  /// roots, propagation and invocation, stub/scion/prop-table changes, and
  /// sweeps.  Cluster-level snapshot reuse compares epochs to skip
  /// re-summarizing quiescent processes (O(1) per round instead of a full
  /// summarization).
  [[nodiscard]] std::uint64_t mutation_epoch() const noexcept {
    return mutation_epoch_;
  }

  /// Records a summary-relevant mutation (see mutation_epoch()).
  void note_mutation() noexcept { ++mutation_epoch_; }

 private:
  /// Creates or refreshes the scions for `object`'s enclosed references
  /// toward `to` ("clean before send"); `seq` is recorded as the creation
  /// horizon once the Propagate is sent.
  void export_references(const Object& object, ProcessId to, std::uint64_t seq);

  ProcessId id_;
  net::Network* network_;
  Heap heap_;
  std::map<StubKey, Stub> stubs_;
  /// Reverse stub index: target object -> stubs designating it, ordered by
  /// target process (pointers into stubs_, which has stable addresses).
  std::unordered_map<ObjectId, std::vector<Stub*>> stub_index_;
  mutable MarkScratch scratch_;
  mutable SummarizeScratch sum_scratch_;
  std::uint64_t mutation_epoch_{0};
  std::map<ScionKey, Scion> scions_;
  std::vector<InProp> in_props_;
  std::vector<OutProp> out_props_;
  std::map<ObjectId, std::uint32_t> transient_roots_;
  std::map<ProcessId, std::uint64_t> delivered_prop_seq_;
  std::set<ProcessId> stub_peers_;
  std::uint64_t collection_epoch_{0};
  std::array<ReclaimRecord, kReclaimRing> reclaim_ring_{};
  std::size_t reclaim_ring_next_{0};
  std::uint64_t reclaims_noted_{0};
  std::map<ProcessId, std::uint64_t> newsetstubs_epochs_;
  /// Lease table: last step each peer was known alive (see note_heard).
  std::map<ProcessId, std::uint64_t> last_heard_;
  bool fault_tolerant_{false};
  obs::FlightRecorder* recorder_{nullptr};
  obs::Ledger* ledger_{nullptr};
  util::Metrics metrics_;
  ProcessCounters counters_{metrics_};
};

}  // namespace rgc::rm
