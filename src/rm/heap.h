// Per-process object store and local roots.
//
// Deliberately dumb: it owns replicas and the root set and nothing else.
// Reachability, stubs/scions and propagation lists belong to Process; the
// tracing itself to gc/lgc.  Iteration order is deterministic (ordered map)
// so collections and snapshots are reproducible run to run.
#pragma once

#include <cstddef>
#include <map>
#include <set>
#include <vector>

#include "rm/object.h"
#include "util/ids.h"

namespace rgc::rm {

class Heap {
 public:
  /// Creates a replica; replaces content if one already exists (an update
  /// delivered by the coherence engine overwrites the replica's edges).
  Object& put(ObjectId id, std::vector<Ref> refs = {},
              std::uint32_t payload_bytes = 16);

  [[nodiscard]] bool contains(ObjectId id) const { return objects_.contains(id); }
  [[nodiscard]] Object* find(ObjectId id);
  [[nodiscard]] const Object* find(ObjectId id) const;

  /// Removes the replica.  Returns true when it existed.
  bool erase(ObjectId id);

  [[nodiscard]] std::size_t size() const noexcept { return objects_.size(); }

  [[nodiscard]] const std::map<ObjectId, Object>& objects() const noexcept {
    return objects_;
  }
  [[nodiscard]] std::map<ObjectId, Object>& objects() noexcept { return objects_; }

  // Local roots.  A root may designate a local replica or a stubbed remote
  // object (a register/global holding a remote reference).
  void add_root(ObjectId id) { roots_.insert(id); }
  bool remove_root(ObjectId id) { return roots_.erase(id) > 0; }
  [[nodiscard]] bool is_root(ObjectId id) const { return roots_.contains(id); }
  [[nodiscard]] const std::set<ObjectId>& roots() const noexcept { return roots_; }

 private:
  std::map<ObjectId, Object> objects_;
  std::set<ObjectId> roots_;
};

}  // namespace rgc::rm
