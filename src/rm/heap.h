// Per-process object store and local roots — arena layout.
//
// Objects live in a slab (std::vector<Object>) addressed by dense 32-bit
// slots; an open-addressing flat hash resolves ObjectId -> slot in O(1)
// with no per-node allocation, and a free list recycles slots emptied by
// the sweep.  The hot per-object mark state (epoch + kReach* mask) is
// struct-of-arrays: two parallel slabs the collectors touch without
// pulling whole Objects through the cache.
//
// Iteration stays deterministic and in id order — the invariant every
// byte-identity guarantee (summaries, recordings, reports) rests on.  The
// ordered view is maintained lazily: put() appends to a pending list,
// erase() just counts the entry stale, and the next ordered pass purges /
// merges in one O(n) sweep.  A bulk build followed by collections (the
// common life cycle) therefore never re-sorts the whole heap.
//
// Reachability, stubs/scions and propagation lists belong to Process; the
// tracing itself to gc/lgc.
#pragma once

#include <cstddef>
#include <cstdint>
#include <set>
#include <vector>

#include "rm/object.h"
#include "util/ids.h"

namespace rgc::rm {

class Heap {
 public:
  /// Sentinel slot: "id not present".
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// One live object in the ordered view: its id and its slab slot.
  struct Entry {
    ObjectId id{kNoObject};
    std::uint32_t slot{kNoSlot};
  };

  /// Creates a replica; replaces content if one already exists (an update
  /// delivered by the coherence engine overwrites the replica's edges).
  /// New objects reuse a free slot when one exists; a reused slot's mark
  /// state and unlink stamp are reset so nothing leaks from its previous
  /// occupant.
  Object& put(ObjectId id, std::vector<Ref> refs = {},
              std::uint32_t payload_bytes = 16);

  [[nodiscard]] bool contains(ObjectId id) const {
    return index_.find(raw(id)) != kNoSlot;
  }
  [[nodiscard]] Object* find(ObjectId id) {
    const std::uint32_t slot = index_.find(raw(id));
    return slot == kNoSlot ? nullptr : &slab_[slot];
  }
  [[nodiscard]] const Object* find(ObjectId id) const {
    const std::uint32_t slot = index_.find(raw(id));
    return slot == kNoSlot ? nullptr : &slab_[slot];
  }

  /// Removes the replica.  Returns true when it existed.  The slot joins
  /// the free list; ordered iteration already underway skips it.
  bool erase(ObjectId id);

  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  // ---- Dense view (collectors) ----------------------------------------
  // Slots are stable for an object's lifetime; they are NOT stable across
  // erase + re-put and carry no ordering meaning.  Everything emitted to
  // summaries/results must be keyed by ObjectId, never by slot.

  /// Slot of `id`, or kNoSlot.  O(1), allocation-free.
  [[nodiscard]] std::uint32_t slot_of(ObjectId id) const {
    return index_.find(raw(id));
  }
  [[nodiscard]] Object& at_slot(std::uint32_t slot) { return slab_[slot]; }
  [[nodiscard]] const Object& at_slot(std::uint32_t slot) const {
    return slab_[slot];
  }
  /// Slab extent (live + free slots) — sizes dense side arrays.
  [[nodiscard]] std::size_t slab_size() const noexcept { return slab_.size(); }

  // ---- SoA mark state (epoch-validated, no reset pass) -----------------
  // Exactly the old intrusive Object::mark/marks semantics, hoisted into
  // parallel arrays: bits from older epochs are stale and read as zero.
  // Const because marking is a logically read-only phase that may run on a
  // const view (same contract as MarkScratch).

  /// Sets `bit` in `slot`'s mask for `epoch`, lazily discarding any stale
  /// mask.  Returns true when the bit was newly set (first visit in this
  /// trace family — the caller should enqueue the slot).
  bool mark(std::uint32_t slot, std::uint64_t epoch,
            std::uint8_t bit) const {
    if (mark_epoch_[slot] != epoch) {
      mark_epoch_[slot] = epoch;
      mark_bits_[slot] = bit;
      return true;
    }
    if (mark_bits_[slot] & bit) return false;
    mark_bits_[slot] |= bit;
    return true;
  }

  /// The kReach* mask accumulated during `epoch` (zero if untouched).
  [[nodiscard]] std::uint8_t marks(std::uint32_t slot,
                                   std::uint64_t epoch) const {
    return mark_epoch_[slot] == epoch ? mark_bits_[slot] : 0;
  }

  // ---- Ordered iteration (id ascending, deterministic) -----------------

  /// Visits every live object as fn(ObjectId, slot, Object&), in id order.
  /// The body may erase the visited object and may put() new ones (they
  /// are not visited this pass) — the sweep contract.  Entries erased by
  /// the body are skipped for the rest of the pass.
  template <typename Fn>
  void for_each(Fn&& fn) {
    ensure_order();
    // order_ is never resized mid-pass: erase() only marks entries stale
    // and put() appends to pending_, so indexing stays valid throughout.
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const Entry e = order_[i];
      if (!entry_live(e)) continue;
      fn(e.id, e.slot, slab_[e.slot]);
    }
  }
  template <typename Fn>
  void for_each(Fn&& fn) const {
    ensure_order();
    for (std::size_t i = 0; i < order_.size(); ++i) {
      const Entry e = order_[i];
      if (!entry_live(e)) continue;
      fn(e.id, e.slot, static_cast<const Object&>(slab_[e.slot]));
    }
  }

  // ---- Local roots ------------------------------------------------------
  // A root may designate a local replica or a stubbed remote object (a
  // register/global holding a remote reference).
  void add_root(ObjectId id) { roots_.insert(id); }
  bool remove_root(ObjectId id) { return roots_.erase(id) > 0; }
  [[nodiscard]] bool is_root(ObjectId id) const { return roots_.contains(id); }
  [[nodiscard]] const std::set<ObjectId>& roots() const noexcept {
    return roots_;
  }

  // ---- Introspection (process.heap_* gauges, arena tests) --------------

  /// Free-listed slots awaiting reuse.
  [[nodiscard]] std::size_t free_slots() const noexcept { return free_.size(); }
  /// Bytes held by the arena itself: slab, SoA mark arrays, free list,
  /// index and ordered view (capacity, not size — what the allocator
  /// actually carved out).  O(1) — deliberately excludes the per-object
  /// refs vectors, which callers grow behind the arena's back; the gauge
  /// built on this must stay cheap enough for every scheduled audit, and
  /// total footprint is the peak-RSS gauge's job.
  [[nodiscard]] std::size_t slab_bytes() const noexcept;
  /// Live slots as a percentage of the slab extent (100 when empty —
  /// an empty arena wastes nothing).
  [[nodiscard]] std::uint64_t live_percent() const noexcept {
    return slab_.empty() ? 100 : size_ * 100 / slab_.size();
  }

 private:
  /// Open-addressing flat hash, raw ObjectId -> slot.  Power-of-two
  /// capacity, linear probing, backward-shift deletion (no tombstones, so
  /// heavy sweep/reuse churn never degrades probes).  raw(kNoObject) is
  /// the empty marker — no real object carries that id.
  class FlatIndex {
   public:
    FlatIndex() { rehash(16); }

    [[nodiscard]] std::uint32_t find(std::uint64_t key) const {
      std::size_t i = bucket(key);
      while (true) {
        if (keys_[i] == key) return vals_[i];
        if (keys_[i] == kEmpty) return kNoSlot;
        i = (i + 1) & mask_;
      }
    }

    void insert(std::uint64_t key, std::uint32_t val) {
      if ((size_ + 1) * 4 > (mask_ + 1) * 3) rehash((mask_ + 1) * 2);
      std::size_t i = bucket(key);
      while (keys_[i] != kEmpty) {
        if (keys_[i] == key) {
          vals_[i] = val;
          return;
        }
        i = (i + 1) & mask_;
      }
      keys_[i] = key;
      vals_[i] = val;
      ++size_;
    }

    bool erase(std::uint64_t key) {
      std::size_t hole = bucket(key);
      while (true) {
        if (keys_[hole] == kEmpty) return false;
        if (keys_[hole] == key) break;
        hole = (hole + 1) & mask_;
      }
      // Backward shift: pull every displaced successor whose probe path
      // crosses the hole, keeping all chains contiguous.
      std::size_t j = hole;
      while (true) {
        j = (j + 1) & mask_;
        if (keys_[j] == kEmpty) break;
        const std::size_t ideal = bucket(keys_[j]);
        if (((j - ideal) & mask_) >= ((j - hole) & mask_)) {
          keys_[hole] = keys_[j];
          vals_[hole] = vals_[j];
          hole = j;
        }
      }
      keys_[hole] = kEmpty;
      --size_;
      return true;
    }

    void reserve(std::size_t n) {
      std::size_t cap = 16;
      while (cap * 3 < n * 4) cap *= 2;
      if (cap > mask_ + 1) rehash(cap);
    }

    [[nodiscard]] std::size_t capacity_bytes() const noexcept {
      return keys_.capacity() * sizeof(std::uint64_t) +
             vals_.capacity() * sizeof(std::uint32_t);
    }

   private:
    static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

    [[nodiscard]] std::size_t bucket(std::uint64_t key) const {
      // Fibonacci mixing: ids are often contiguous, so spread the high bits.
      key *= 0x9E3779B97F4A7C15ull;
      return (key ^ (key >> 32)) & mask_;
    }

    void rehash(std::size_t cap) {
      std::vector<std::uint64_t> old_keys = std::move(keys_);
      std::vector<std::uint32_t> old_vals = std::move(vals_);
      keys_.assign(cap, kEmpty);
      vals_.assign(cap, 0);
      mask_ = cap - 1;
      size_ = 0;
      for (std::size_t i = 0; i < old_keys.size(); ++i) {
        if (old_keys[i] != kEmpty) insert(old_keys[i], old_vals[i]);
      }
    }

    std::vector<std::uint64_t> keys_;
    std::vector<std::uint32_t> vals_;
    std::size_t mask_{0};
    std::size_t size_{0};
  };

  [[nodiscard]] bool entry_live(const Entry& e) const {
    return e.slot < slab_.size() && slab_[e.slot].id == e.id;
  }

  /// Brings order_ up to date: purges stale entries, merges pending ones.
  /// O(stale + pending·log(pending) + merge), nothing when clean.
  void ensure_order() const;

  std::vector<Object> slab_;
  /// SoA mark state, parallel to slab_ (see mark()/marks()).
  mutable std::vector<std::uint64_t> mark_epoch_;
  mutable std::vector<std::uint8_t> mark_bits_;
  std::vector<std::uint32_t> free_;
  FlatIndex index_;
  /// Ordered live view (id ascending), possibly holding stale entries
  /// until the next ensure_order(); pending_ holds puts since then.
  mutable std::vector<Entry> order_;
  mutable std::vector<Entry> pending_;
  mutable std::size_t stale_{0};
  std::size_t size_{0};
  std::set<ObjectId> roots_;
};

}  // namespace rgc::rm
