// Full-state process image for crash/restart persistence.
//
// snapshot_io v3 persists only the cycle detector's ProcessSummary — enough
// for offline detection, not enough to bring a process back.  A ProcessImage
// is the complement: a consistent copy of everything restore needs to
// rebuild a Process object — heap content with reference bindings, roots,
// the DGC tables (stubs/scions/props) and the protocol cursors (delivered
// propagate sequences, collection epochs).  Captured by
// Process::capture_image, rehydrated by Process::restore_image, serialized
// with checksumming by gc/cycle/snapshot_io (encode_image/decode_image).
//
// The image is the paper's "snapshot periodically stored on disk": restart
// resumes from it, the reconciliation protocol (docs/FAULTS.md) brings
// everything that happened after the capture back into agreement.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "rm/object.h"
#include "rm/tables.h"
#include "util/ids.h"

namespace rgc::rm {

/// One heap replica as persisted: identity, bound references, payload.
struct ImageObject {
  ObjectId id{kNoObject};
  std::vector<Ref> refs;
  std::uint32_t payload_bytes{16};
  bool finalizable{false};
};

struct ProcessImage {
  ProcessId process{kNoProcess};
  /// Step at which the image was captured (diagnostics).
  std::uint64_t taken_at{0};
  /// Process mutation epoch at capture; a restart rejects an image older
  /// than the most recent persist (stale-snapshot guard, obs::check_image).
  std::uint64_t mutation_epoch{0};
  std::uint64_t collection_epoch{0};

  std::vector<ImageObject> objects;
  std::vector<ObjectId> roots;
  std::vector<std::pair<ObjectId, std::uint32_t>> transient_roots;

  std::vector<Stub> stubs;
  std::vector<Scion> scions;
  std::vector<InProp> in_props;
  std::vector<OutProp> out_props;

  std::vector<std::pair<ProcessId, std::uint64_t>> delivered_prop_seq;
  std::vector<ProcessId> stub_peers;
  std::vector<std::pair<ProcessId, std::uint64_t>> newsetstubs_epochs;
};

}  // namespace rgc::rm
