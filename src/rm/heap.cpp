#include "rm/heap.h"

#include <utility>

namespace rgc::rm {

Object& Heap::put(ObjectId id, std::vector<Ref> refs,
                  std::uint32_t payload_bytes) {
  Object& obj = objects_[id];
  obj.id = id;
  obj.refs = std::move(refs);
  obj.payload_bytes = payload_bytes;
  return obj;
}

Object* Heap::find(ObjectId id) {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

const Object* Heap::find(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

bool Heap::erase(ObjectId id) { return objects_.erase(id) > 0; }

}  // namespace rgc::rm
