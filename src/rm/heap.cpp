#include "rm/heap.h"

#include <algorithm>
#include <utility>

namespace rgc::rm {

Object& Heap::put(ObjectId id, std::vector<Ref> refs,
                  std::uint32_t payload_bytes) {
  std::uint32_t slot = index_.find(raw(id));
  if (slot == kNoSlot) {
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(slab_.size());
      slab_.emplace_back();
      mark_epoch_.push_back(0);
      mark_bits_.push_back(0);
    }
    // A reused slot must not leak its previous occupant's state: epoch 0
    // never matches a live mark epoch (those start at 1 and only grow), so
    // the new object reads as unmarked in every family.
    mark_epoch_[slot] = 0;
    mark_bits_[slot] = 0;
    slab_[slot].unlinked_at = 0;
    slab_[slot].finalizable = false;
    index_.insert(raw(id), slot);
    pending_.push_back(Entry{id, slot});
    ++size_;
  }
  Object& obj = slab_[slot];
  obj.id = id;
  obj.refs = std::move(refs);
  obj.payload_bytes = payload_bytes;
  return obj;
}

bool Heap::erase(ObjectId id) {
  const std::uint32_t slot = index_.find(raw(id));
  if (slot == kNoSlot) return false;
  index_.erase(raw(id));
  // Release the edge storage now (the slab entry may sit free for a while)
  // and reset the identity so stale ordered entries stop matching.
  slab_[slot] = Object{};
  free_.push_back(slot);
  ++stale_;
  --size_;
  return true;
}

void Heap::ensure_order() const {
  if (pending_.empty() && stale_ == 0) return;
  if (stale_ != 0) {
    std::erase_if(order_, [this](const Entry& e) { return !entry_live(e); });
  }
  if (!pending_.empty()) {
    std::sort(pending_.begin(), pending_.end(),
              [](const Entry& a, const Entry& b) {
                return a.id != b.id ? a.id < b.id : a.slot < b.slot;
              });
    std::erase_if(pending_, [this](const Entry& e) { return !entry_live(e); });
    // erase + re-put of the same id can leave the identical (id, slot)
    // entry both here and in order_ (the free list hands back the same
    // slot); the unique() after the merge collapses such twins.
    pending_.erase(std::unique(pending_.begin(), pending_.end(),
                               [](const Entry& a, const Entry& b) {
                                 return a.id == b.id && a.slot == b.slot;
                               }),
                   pending_.end());
    const std::size_t mid = order_.size();
    order_.insert(order_.end(), pending_.begin(), pending_.end());
    std::inplace_merge(order_.begin(),
                       order_.begin() + static_cast<std::ptrdiff_t>(mid),
                       order_.end(), [](const Entry& a, const Entry& b) {
                         return a.id != b.id ? a.id < b.id : a.slot < b.slot;
                       });
    order_.erase(std::unique(order_.begin(), order_.end(),
                             [](const Entry& a, const Entry& b) {
                               return a.id == b.id && a.slot == b.slot;
                             }),
                 order_.end());
    pending_.clear();
  }
  stale_ = 0;
}

std::size_t Heap::slab_bytes() const noexcept {
  return slab_.capacity() * sizeof(Object) +
         mark_epoch_.capacity() * sizeof(std::uint64_t) +
         mark_bits_.capacity() * sizeof(std::uint8_t) +
         free_.capacity() * sizeof(std::uint32_t) +
         (order_.capacity() + pending_.capacity()) * sizeof(Entry) +
         index_.capacity_bytes();
}

}  // namespace rgc::rm
