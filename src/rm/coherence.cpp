// Coherence-engine half of Process: object propagation, remote invocation,
// and the corresponding message handlers.  Separated from process.cpp so
// the export/import rules of §2.1.2/§2.2.4 live in one translation unit.
#include <algorithm>
#include <memory>
#include <stdexcept>

#include "rm/process.h"
#include "util/log.h"

namespace rgc::rm {

void Process::propagate(ObjectId object, ProcessId to) {
  if (to == id_) {
    throw std::logic_error("propagate: cannot propagate to self");
  }
  Object* obj = heap_.find(object);
  if (obj == nullptr) {
    throw std::logic_error("propagate: " + to_string(object) +
                           " is not local to " + to_string(id_));
  }

  // Bump the outProp UC *before* the message leaves; the receiver adopts
  // the value, so both ends of the link agree on its update history
  // (Table 1's α -> α+1 succession is exactly this bump).
  OutProp* op = find_out_prop(object, to);
  if (op == nullptr) {
    out_props_.push_back(OutProp{object, to, 0, false});
    op = &out_props_.back();
    counters_.outprops_created.inc();
  }
  ++op->uc;
  // A fresh propagation makes any previous Unreachable report from this
  // child stale: the child is about to hold a live-looking replica again.
  op->rec_umess = false;

  auto msg = std::make_unique<PropagateMsg>();
  msg->object = object;
  msg->refs = obj->ref_targets();
  msg->payload_bytes = obj->payload_bytes;
  msg->uc = op->uc;
  const std::uint64_t seq = network_->send(id_, to, std::move(msg));

  // "Clean before send propagate": scions for every enclosed reference must
  // exist before the propagate is delivered.  Delivery happens no earlier
  // than the next simulation step, so creating them here preserves the
  // causal order scion-before-stub.
  export_references(*obj, to, seq);
  counters_.propagations.inc();
  // UC bump, rec_umess reset and scion creation/refresh all change the
  // summary this process would snapshot.
  note_mutation();
  RGC_DEBUG("rm: ", to_string(id_), " propagate ", to_string(object), " -> ",
            to_string(to), " uc=", op->uc);
}

void Process::export_references(const Object& object, ProcessId to,
                                std::uint64_t seq) {
  for (const Ref& ref : object.refs) {
    const ObjectId r = ref.target;
    const ScionKey key{to, r};
    auto [it, inserted] = scions_.try_emplace(key);
    Scion& scion = it->second;
    scion.key = key;
    // Refreshing the horizon on every export protects a re-exported scion
    // from deletion by a NewSetStubs computed before this propagate landed.
    scion.created_seq = seq;
    if (std::find(scion.src_objects.begin(), scion.src_objects.end(),
                  object.id) == scion.src_objects.end()) {
      scion.src_objects.push_back(object.id);
    }
    if (inserted) counters_.scions_created.inc();
  }
}

void Process::on_propagate(const net::Envelope& env, const PropagateMsg& msg) {
  auto& horizon = delivered_prop_seq_[env.src];
  horizon = std::max(horizon, env.seq);

  // "Clean before deliver propagate": the imported references bind locally
  // when a replica of the target already lives here, and otherwise chain
  // through the sender.  The stub is created in *either* case ("if they do
  // not exist yet", §2.2.4): the sender unconditionally created the
  // matching scion at export time, and the stub — even when immediately
  // unused because the binding went local — is the handle through which
  // the next NewSetStubs round retires that scion.  Without it the scion
  // would be orphaned forever (this process might never otherwise appear
  // in the sender's peer set).
  std::vector<Ref> bound;
  bound.reserve(msg.refs.size());
  for (ObjectId r : msg.refs) {
    bound.push_back(heap_.contains(r) ? Ref{r, kNoProcess} : Ref{r, env.src});
    const StubKey key{r, env.src};
    if (stubs_.contains(key)) continue;
    ensure_stub(key, network_->now());
    stub_peers_.insert(env.src);
    counters_.stubs_created.inc();
  }

  // A fresh propagate means the parent still holds us reachable; Heap::put
  // reuses the existing node, so any floating-garbage stamp must be
  // cleared explicitly.
  heap_.put(msg.object, std::move(bound), msg.payload_bytes).unlinked_at = 0;

  InProp* ip = find_in_prop(msg.object, env.src);
  if (ip == nullptr) {
    in_props_.push_back(InProp{msg.object, env.src, msg.uc, false});
    counters_.inprops_created.inc();
  } else {
    ip->uc = msg.uc;
    // The replica just changed; any earlier Unreachable report is stale.
    ip->sent_umess = false;
  }
  counters_.propagations_delivered.inc();
  note_mutation();
  RGC_DEBUG("rm: ", to_string(id_), " delivered replica ",
            to_string(msg.object), " from ", to_string(env.src));
}

void Process::invoke(ObjectId target, std::uint32_t root_steps) {
  // Deterministic choice: the lowest-numbered target process (the index
  // keeps each target's stubs in target-process order).
  Stub* first = first_stub_for(target);
  if (first == nullptr) {
    throw std::logic_error("invoke: no stub for " + to_string(target) +
                           " on " + to_string(id_));
  }
  Stub& stub = *first;
  ++stub.ic;

  auto msg = std::make_unique<InvokeMsg>();
  msg->target = target;
  msg->ic = stub.ic;
  msg->root_steps = root_steps;
  network_->send(id_, stub.key.target_process, std::move(msg));

  // The caller holds the reference in a register for the call's duration
  // (pin_transient_root notes the mutation; the IC bump needs its own).
  pin_transient_root(target, root_steps);
  counters_.invocations.inc();
  note_mutation();
}

void Process::on_invoke(const net::Envelope& env, const InvokeMsg& msg) {
  auto it = scions_.find(ScionKey{env.src, msg.target});
  if (it == scions_.end()) {
    // Reliable FIFO transport plus scion-before-stub ordering make this
    // unreachable in a well-formed run; failing loudly catches harness bugs.
    throw std::logic_error("on_invoke: no scion for " + to_string(msg.target) +
                           " from " + to_string(env.src) + " on " +
                           to_string(id_));
  }
  it->second.ic = msg.ic;
  // The callee's runtime holds the target while the invocation executes
  // (or while it forwards the call further down the chain).
  pin_transient_root(msg.target, msg.root_steps);
  counters_.invocations_delivered.inc();
  note_mutation();  // scion IC adopted msg.ic

  if (!heap_.contains(msg.target)) {
    // SSP chains (§2.2.4): the scion's anchor is not local — this node is
    // an intermediary of a stub–scion chain and routes the invocation one
    // hop further, bumping the next link's IC exactly like a first-hop
    // caller would (the race barrier sees every traversed link move).
    Stub* next = first_stub_for(msg.target);
    if (next == nullptr) {
      throw std::logic_error("on_invoke: chain broken for " +
                             to_string(msg.target) + " on " + to_string(id_));
    }
    Stub& stub = *next;
    ++stub.ic;
    auto fwd = std::make_unique<InvokeMsg>();
    fwd->target = msg.target;
    fwd->ic = stub.ic;
    fwd->root_steps = msg.root_steps;
    network_->send(id_, stub.key.target_process, std::move(fwd));
    counters_.invocations_forwarded.inc();
  }
}

}  // namespace rgc::rm
