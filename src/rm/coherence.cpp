// Coherence-engine half of Process: object propagation, remote invocation,
// and the corresponding message handlers.  Separated from process.cpp so
// the export/import rules of §2.1.2/§2.2.4 live in one translation unit.
#include <algorithm>
#include <memory>
#include <stdexcept>

#include "rm/process.h"
#include "util/log.h"
#include "util/trace.h"

namespace rgc::rm {

void Process::propagate(ObjectId object, ProcessId to) {
  if (to == id_) {
    throw std::logic_error("propagate: cannot propagate to self");
  }
  Object* obj = heap_.find(object);
  if (obj == nullptr) {
    throw std::logic_error("propagate: " + to_string(object) +
                           " is not local to " + to_string(id_));
  }

  // Bump the outProp UC *before* the message leaves; the receiver adopts
  // the value, so both ends of the link agree on its update history
  // (Table 1's α -> α+1 succession is exactly this bump).
  OutProp* op = find_out_prop(object, to);
  if (op == nullptr) {
    out_props_.push_back(OutProp{object, to, 0, false});
    op = &out_props_.back();
    counters_.outprops_created.inc();
  }
  ++op->uc;
  // A fresh propagation makes any previous Unreachable report from this
  // child stale: the child is about to hold a live-looking replica again.
  op->rec_umess = false;

  auto msg = std::make_unique<PropagateMsg>();
  msg->object = object;
  msg->refs.reserve(obj->refs.size());
  obj->for_each_ref([&](const Ref& r) { msg->refs.push_back(r.target); });
  msg->payload_bytes = obj->payload_bytes;
  msg->uc = op->uc;
  const std::uint64_t seq = network_->send(id_, to, std::move(msg));

  // "Clean before send propagate": scions for every enclosed reference must
  // exist before the propagate is delivered.  Delivery happens no earlier
  // than the next simulation step, so creating them here preserves the
  // causal order scion-before-stub.
  export_references(*obj, to, seq);
  // Lease grace: a freshly exported scion's owner starts with a full lease
  // even if we have never heard from it (the propagate itself is evidence
  // we believe it alive).
  note_heard(to, network_->now());
  counters_.propagations.inc();
  // UC bump, rec_umess reset and scion creation/refresh all change the
  // summary this process would snapshot.
  note_mutation();
  RGC_DEBUG("rm: ", to_string(id_), " propagate ", to_string(object), " -> ",
            to_string(to), " uc=", op->uc);
}

void Process::export_references(const Object& object, ProcessId to,
                                std::uint64_t seq) {
  for (const Ref& ref : object.refs) {
    const ObjectId r = ref.target;
    const ScionKey key{to, r};
    auto [it, inserted] = scions_.try_emplace(key);
    Scion& scion = it->second;
    scion.key = key;
    // Refreshing the horizon on every export protects a re-exported scion
    // from deletion by a NewSetStubs computed before this propagate landed.
    scion.created_seq = seq;
    if (std::find(scion.src_objects.begin(), scion.src_objects.end(),
                  object.id) == scion.src_objects.end()) {
      scion.src_objects.push_back(object.id);
    }
    if (inserted) counters_.scions_created.inc();
  }
}

void Process::on_propagate(const net::Envelope& env, const PropagateMsg& msg) {
  auto& horizon = delivered_prop_seq_[env.src];
  horizon = std::max(horizon, env.seq);

  // "Clean before deliver propagate": the imported references bind locally
  // when a replica of the target already lives here, and otherwise chain
  // through the sender.  The stub is created in *either* case ("if they do
  // not exist yet", §2.2.4): the sender unconditionally created the
  // matching scion at export time, and the stub — even when immediately
  // unused because the binding went local — is the handle through which
  // the next NewSetStubs round retires that scion.  Without it the scion
  // would be orphaned forever (this process might never otherwise appear
  // in the sender's peer set).
  std::vector<Ref> bound;
  bound.reserve(msg.refs.size());
  for (ObjectId r : msg.refs) {
    bound.push_back(heap_.contains(r) ? Ref{r, kNoProcess} : Ref{r, env.src});
    const StubKey key{r, env.src};
    if (stubs_.contains(key)) continue;
    ensure_stub(key, network_->now());
    stub_peers_.insert(env.src);
    counters_.stubs_created.inc();
  }

  // A fresh propagate means the parent still holds us reachable; Heap::put
  // reuses the existing node, so any floating-garbage stamp must be
  // cleared explicitly.
  heap_.put(msg.object, std::move(bound), msg.payload_bytes).unlinked_at = 0;

  InProp* ip = find_in_prop(msg.object, env.src);
  if (ip == nullptr) {
    in_props_.push_back(InProp{msg.object, env.src, msg.uc, false});
    counters_.inprops_created.inc();
  } else {
    ip->uc = msg.uc;
    // The replica just changed; any earlier Unreachable report is stale.
    ip->sent_umess = false;
  }
  counters_.propagations_delivered.inc();
  note_mutation();
  RGC_DEBUG("rm: ", to_string(id_), " delivered replica ",
            to_string(msg.object), " from ", to_string(env.src));
}

void Process::invoke(ObjectId target, std::uint32_t root_steps) {
  // Deterministic choice: the lowest-numbered target process (the index
  // keeps each target's stubs in target-process order).
  Stub* first = first_stub_for(target);
  if (first == nullptr) {
    throw std::logic_error("invoke: no stub for " + to_string(target) +
                           " on " + to_string(id_));
  }
  Stub& stub = *first;
  ++stub.ic;

  auto msg = std::make_unique<InvokeMsg>();
  msg->target = target;
  msg->ic = stub.ic;
  msg->root_steps = root_steps;
  network_->send(id_, stub.key.target_process, std::move(msg));

  // The caller holds the reference in a register for the call's duration
  // (pin_transient_root notes the mutation; the IC bump needs its own).
  pin_transient_root(target, root_steps);
  counters_.invocations.inc();
  note_mutation();
}

void Process::on_invoke(const net::Envelope& env, const InvokeMsg& msg) {
  auto it = scions_.find(ScionKey{env.src, msg.target});
  if (it == scions_.end()) {
    // Reliable FIFO transport plus scion-before-stub ordering make this
    // unreachable in a well-formed run; failing loudly catches harness bugs.
    // With faults in play it IS reachable — an invoke can race a restart
    // from a snapshot that predates the scion, or a lease expiry during a
    // partition — so fault-tolerant mode drops the call instead (the
    // reconciliation protocol re-creates the scion; see docs/FAULTS.md).
    if (fault_tolerant_) {
      metrics_.add("rm.invocations_orphaned");
      RGC_WARN("rm: ", to_string(id_), " dropped invoke of ",
               to_string(msg.target), " from ", to_string(env.src),
               " (no scion; recovery in progress)");
      return;
    }
    throw std::logic_error("on_invoke: no scion for " + to_string(msg.target) +
                           " from " + to_string(env.src) + " on " +
                           to_string(id_));
  }
  it->second.ic = msg.ic;
  // The callee's runtime holds the target while the invocation executes
  // (or while it forwards the call further down the chain).
  pin_transient_root(msg.target, msg.root_steps);
  counters_.invocations_delivered.inc();
  note_mutation();  // scion IC adopted msg.ic

  if (!heap_.contains(msg.target)) {
    // SSP chains (§2.2.4): the scion's anchor is not local — this node is
    // an intermediary of a stub–scion chain and routes the invocation one
    // hop further, bumping the next link's IC exactly like a first-hop
    // caller would (the race barrier sees every traversed link move).
    Stub* next = first_stub_for(msg.target);
    if (next == nullptr) {
      // Same fault window as the missing-scion case above: a chain hop can
      // be lost to a stale restart snapshot or a RebindNack severance.
      if (fault_tolerant_) {
        metrics_.add("rm.invocations_orphaned");
        RGC_WARN("rm: ", to_string(id_), " dropped chained invoke of ",
                 to_string(msg.target), " (chain hop lost to a fault)");
        return;
      }
      throw std::logic_error("on_invoke: chain broken for " +
                             to_string(msg.target) + " on " + to_string(id_));
    }
    Stub& stub = *next;
    ++stub.ic;
    auto fwd = std::make_unique<InvokeMsg>();
    fwd->target = msg.target;
    fwd->ic = stub.ic;
    fwd->root_steps = msg.root_steps;
    network_->send(id_, stub.key.target_process, std::move(fwd));
    counters_.invocations_forwarded.inc();
  }
}

// ---- Fault-tolerance protocol (docs/FAULTS.md) ---------------------------

void Process::on_rebind(const net::Envelope& env, const RebindMsg& msg) {
  note_heard(env.src, network_->now());
  // Reconciliation handshakes as typed instants, so --trace-out timelines
  // show the recovery protocol instead of opaque gaps (docs/FAULTS.md §4).
  auto& trace = util::Trace::instance();
  if (trace.enabled()) {
    trace.instant("rm.rebind", id_, 0, false,
                  {util::TraceArg::str("anchor", rgc::to_string(msg.anchor)),
                   util::TraceArg::num("from", raw(env.src)),
                   util::TraceArg::num("ic", msg.ic)});
  }
  if (!knows(msg.anchor)) {
    // The anchor died with whatever state this process lost; tell the
    // holder its stub dangles so it can sever the chain.
    auto nack = std::make_unique<RebindNackMsg>();
    nack->anchor = msg.anchor;
    network_->send(id_, env.src, std::move(nack));
    metrics_.add("rm.rebind_nacks_sent");
    return;
  }
  const ScionKey key{env.src, msg.anchor};
  auto [it, inserted] = scions_.try_emplace(key);
  Scion& scion = it->second;
  scion.key = key;
  // Counters never run backwards across a recovery: the stub side's history
  // wins when it is ahead (our scion may predate lost invocations).
  scion.ic = std::max(scion.ic, msg.ic);
  // created_seq deliberately keeps its value (0 for a fresh rebind): the
  // crash/partition purged any NewSetStubs computed before this window, and
  // post-recovery stub sets include the rebound stub, so no in-flight
  // propagation horizon needs to protect it.
  if (inserted) {
    counters_.scions_created.inc();
    metrics_.add("rm.scions_rebound");
  }
  note_mutation();
  RGC_DEBUG("rm: ", to_string(id_), " rebound scion ", to_string(msg.anchor),
            " for ", to_string(env.src));
}

void Process::on_rebind_nack(const net::Envelope& env,
                             const RebindNackMsg& msg) {
  note_heard(env.src, network_->now());
  auto& trace = util::Trace::instance();
  if (trace.enabled()) {
    trace.instant("rm.rebind_nack", id_, 0, false,
                  {util::TraceArg::str("anchor", rgc::to_string(msg.anchor)),
                   util::TraceArg::num("from", raw(env.src))});
  }
  sever_stub(StubKey{msg.anchor, env.src});
}

void Process::on_prop_sync(const net::Envelope& env, const PropSyncMsg& msg) {
  note_heard(env.src, network_->now());
  auto& trace = util::Trace::instance();
  if (trace.enabled()) {
    trace.instant("rm.prop_sync", id_, 0, false,
                  {util::TraceArg::num("from", raw(env.src)),
                   util::TraceArg::num("objects", msg.objects.size())});
  }
  // msg.objects is sorted by the sender (reconciliation emits it that way).
  std::uint64_t dropped = 0;
  for (auto it = in_props_.begin(); it != in_props_.end();) {
    if (it->process == env.src &&
        !std::binary_search(msg.objects.begin(), msg.objects.end(),
                            it->object)) {
      it = in_props_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  if (dropped != 0) {
    metrics_.add("rm.inprops_synced_out", dropped);
    note_mutation();
    RGC_DEBUG("rm: ", to_string(id_), " dropped ", dropped,
              " stale inProps from ", to_string(env.src));
  }
}

void Process::sever_stub(StubKey key) {
  if (!erase_stub(key)) return;
  const ObjectId target = key.target;
  const bool local = heap_.contains(target);
  const Stub* alt = first_stub_for(target);

  // References bound through the severed stub rebind through the local
  // replica or an alternative chain when one exists, and are removed
  // otherwise (the remote object is unreachable from here for good).
  std::uint64_t removed = 0;
  heap_.for_each([&](ObjectId, std::uint32_t, Object& obj) {
    for (auto it = obj.refs.begin(); it != obj.refs.end();) {
      if (it->target != target || it->via != key.target_process) {
        ++it;
        continue;
      }
      if (local) {
        it->via = kNoProcess;
        ++it;
      } else if (alt != nullptr) {
        it->via = alt->key.target_process;
        ++it;
      } else {
        it = obj.refs.erase(it);
        ++removed;
      }
    }
  });
  if (!local && alt == nullptr) {
    // Nothing resolves the target here anymore: roots pinning it are void,
    // and our own scions anchored at it now dangle — cascade the nack
    // upstream so their holders sever too (SSP chain teardown; finite,
    // since every hop deletes its scion before notifying).
    heap_.remove_root(target);
    transient_roots_.erase(target);
    for (auto it = scions_.begin(); it != scions_.end();) {
      if (it->first.anchor != target) {
        ++it;
        continue;
      }
      auto nack = std::make_unique<RebindNackMsg>();
      nack->anchor = target;
      network_->send(id_, it->first.src_process, std::move(nack));
      metrics_.add("rm.rebind_nacks_sent");
      it = scions_.erase(it);
    }
  }
  metrics_.add("rm.stubs_severed");
  if (removed != 0) metrics_.add("rm.refs_severed", removed);
  note_mutation();
  RGC_DEBUG("rm: ", to_string(id_), " severed stub ", to_string(target),
            " -> ", to_string(key.target_process));
}

}  // namespace rgc::rm
