#include "rm/process.h"

#include <algorithm>
#include <stdexcept>

#include "util/log.h"

namespace rgc::rm {

ProcessCounters::ProcessCounters(util::Metrics& metrics)
    : objects_created(metrics.counter("rm.objects_created")),
      ref_assignments(metrics.counter("rm.ref_assignments")),
      ref_removals(metrics.counter("rm.ref_removals")),
      propagations(metrics.counter("rm.propagations")),
      propagations_delivered(metrics.counter("rm.propagations_delivered")),
      invocations(metrics.counter("rm.invocations")),
      invocations_delivered(metrics.counter("rm.invocations_delivered")),
      invocations_forwarded(metrics.counter("rm.invocations_forwarded")),
      scions_created(metrics.counter("rm.scions_created")),
      stubs_created(metrics.counter("rm.stubs_created")),
      inprops_created(metrics.counter("rm.inprops_created")),
      outprops_created(metrics.counter("rm.outprops_created")),
      lgc_collections(metrics.counter("lgc.collections")),
      lgc_reclaimed(metrics.counter("lgc.reclaimed")) {}

Process::Process(ProcessId id, net::Network& network)
    : id_(id), network_(&network) {}

Object& Process::create_object(ObjectId id, std::uint32_t payload_bytes) {
  if (heap_.contains(id)) {
    throw std::logic_error("create_object: " + to_string(id) +
                           " already exists on " + to_string(id_));
  }
  counters_.objects_created.inc();
  note_mutation();
  return heap_.put(id, {}, payload_bytes);
}

void Process::add_ref(ObjectId from, ObjectId to) {
  Object* src = heap_.find(from);
  if (src == nullptr) {
    throw std::logic_error("add_ref: source " + to_string(from) +
                           " is not local to " + to_string(id_));
  }
  // §2.1.2: a process can only assign references it already holds; an
  // inter-process reference appears here only because a replica enclosing
  // it was propagated in earlier.  The binding is fixed at assignment time:
  // local replica if one exists, else the (deterministically first) stub.
  Ref ref{to, kNoProcess};
  if (!heap_.contains(to)) {
    const auto stubs = stubs_for(to);
    if (stubs.empty()) {
      throw std::logic_error("add_ref: target " + to_string(to) +
                             " is not resolvable on " + to_string(id_));
    }
    ref.via = stubs.front().target_process;
  }
  src->add_ref(ref);
  counters_.ref_assignments.inc();
  note_mutation();
  // Re-linked: the target is referenced again, so any floating-garbage
  // clock started for it is stale.
  if (Object* obj = heap_.find(to)) obj->unlinked_at = 0;
}

void Process::remove_ref(ObjectId from, ObjectId to) {
  Object* src = heap_.find(from);
  if (src == nullptr) {
    throw std::logic_error("remove_ref: source " + to_string(from) +
                           " is not local to " + to_string(id_));
  }
  src->remove_ref(to);
  counters_.ref_removals.inc();
  note_mutation();
  // Start the floating-garbage clock: this removal *may* have orphaned the
  // target.  Over-approximate here (the target can still be reachable
  // through other paths); the deep audit clears stamps on objects a mark
  // proves reachable, and re-linking clears them in add_ref/add_root.
  if (Object* obj = heap_.find(to)) {
    if (obj->unlinked_at == 0) obj->unlinked_at = network_->now();
  }
}

void Process::add_root(ObjectId target) {
  if (!knows(target)) {
    throw std::logic_error("add_root: " + to_string(target) +
                           " is not resolvable on " + to_string(id_));
  }
  heap_.add_root(target);
  note_mutation();
  if (Object* obj = heap_.find(target)) obj->unlinked_at = 0;
}

void Process::remove_root(ObjectId target) {
  heap_.remove_root(target);
  note_mutation();
  if (Object* obj = heap_.find(target)) {
    if (obj->unlinked_at == 0) obj->unlinked_at = network_->now();
  }
}

std::vector<StubKey> Process::stubs_for(ObjectId target) const {
  std::vector<StubKey> out;
  for_each_stub_for(target, [&](const Stub& stub) { out.push_back(stub.key); });
  return out;
}

bool Process::knows(ObjectId id) const {
  return heap_.contains(id) || stub_index_.contains(id);
}

Stub& Process::ensure_stub(StubKey key, std::uint64_t created_at) {
  auto [it, inserted] = stubs_.try_emplace(key, Stub{key, 0, created_at});
  if (inserted) {
    // Keep the per-target bucket ordered by target process, matching the
    // key order of stubs_ (StubKey orders by target then target_process).
    auto& bucket = stub_index_[key.target];
    auto pos = std::lower_bound(
        bucket.begin(), bucket.end(), key.target_process,
        [](const Stub* s, ProcessId p) { return s->key.target_process < p; });
    bucket.insert(pos, &it->second);
    note_mutation();
  }
  return it->second;
}

bool Process::erase_stub(StubKey key) {
  auto it = stubs_.find(key);
  if (it == stubs_.end()) return false;
  auto bucket_it = stub_index_.find(key.target);
  auto& bucket = bucket_it->second;
  bucket.erase(std::find(bucket.begin(), bucket.end(), &it->second));
  if (bucket.empty()) stub_index_.erase(bucket_it);
  stubs_.erase(it);
  note_mutation();
  return true;
}

Stub* Process::find_stub(StubKey key) {
  auto it = stubs_.find(key);
  return it == stubs_.end() ? nullptr : &it->second;
}

InProp* Process::find_in_prop(ObjectId object, ProcessId from) {
  for (auto& e : in_props_) {
    if (e.object == object && e.process == from) return &e;
  }
  return nullptr;
}

OutProp* Process::find_out_prop(ObjectId object, ProcessId to) {
  for (auto& e : out_props_) {
    if (e.object == object && e.process == to) return &e;
  }
  return nullptr;
}

const InProp* Process::find_in_prop(ObjectId object, ProcessId from) const {
  return const_cast<Process*>(this)->find_in_prop(object, from);
}

const OutProp* Process::find_out_prop(ObjectId object, ProcessId to) const {
  return const_cast<Process*>(this)->find_out_prop(object, to);
}

bool Process::is_replicated(ObjectId object) const {
  return !prop_parents(object).empty() || !prop_children(object).empty();
}

std::vector<ProcessId> Process::prop_parents(ObjectId object) const {
  std::vector<ProcessId> out;
  for (const auto& e : in_props_) {
    if (e.object == object) out.push_back(e.process);
  }
  return out;
}

std::vector<ProcessId> Process::prop_children(ObjectId object) const {
  std::vector<ProcessId> out;
  for (const auto& e : out_props_) {
    if (e.object == object) out.push_back(e.process);
  }
  return out;
}

void Process::pin_transient_root(ObjectId target, std::uint32_t steps) {
  if (steps == 0) return;
  auto& ttl = transient_roots_[target];
  ttl = std::max(ttl, steps);
  note_mutation();
}

void Process::tick(std::uint64_t elapsed) {
  for (auto it = transient_roots_.begin(); it != transient_roots_.end();) {
    if (it->second <= elapsed) {
      it = transient_roots_.erase(it);
      note_mutation();
    } else {
      it->second -= static_cast<std::uint32_t>(elapsed);
      ++it;
    }
  }
}

std::uint32_t Process::next_transient_expiry() const noexcept {
  std::uint32_t min_ttl = 0;
  for (const auto& [obj, ttl] : transient_roots_) {
    if (min_ttl == 0 || ttl < min_ttl) min_ttl = ttl;
  }
  return min_ttl;
}

std::uint64_t Process::next_lease_expiry(std::uint64_t timeout) const noexcept {
  // Same peer set as gc::Adgc::expire_leases: scion owners and propagation
  // partners (stubs are deliberately lease-exempt there).
  std::uint64_t earliest = ~std::uint64_t{0};
  const auto consider = [&](ProcessId peer) {
    if (peer == id_) return;
    const std::uint64_t at = last_heard(peer) + timeout;
    if (at < earliest) earliest = at;
  };
  for (const auto& [key, scion] : scions_) consider(key.src_process);
  for (const auto& e : in_props_) consider(e.process);
  for (const auto& e : out_props_) consider(e.process);
  return earliest;
}

std::uint64_t Process::delivered_prop_seq(ProcessId src) const {
  auto it = delivered_prop_seq_.find(src);
  return it == delivered_prop_seq_.end() ? 0 : it->second;
}

}  // namespace rgc::rm
