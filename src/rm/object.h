// A replica of a logical object held by one process.
//
// §2.1.1 of the paper: "Applications can have different views of objects …
// The unit for replication is the object."  The only mutator operation with
// GC relevance is reference assignment, so an object is its identity plus
// its outgoing references.
//
// References carry a *binding*, fixed at assignment/import time, in the
// SSP-chains tradition the paper builds on: a reference either designates a
// local replica (`via == kNoProcess`) or goes through a stub toward the
// process it was imported from (`via == that process`).  A later-arriving
// local replica of the target does NOT rebind existing references — the
// stub–scion chain persists until the chain's holder drops the reference
// (this is what keeps inter-process structure stable for the distributed
// collectors; it also matches how chains behave in Shapiro et al.'s SSP
// model, which §2.2.4 cites).
#pragma once

#include <algorithm>
#include <compare>
#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace rgc::rm {

struct Ref {
  ObjectId target{kNoObject};
  /// kNoProcess for a local binding; otherwise the process whose replica
  /// this reference chains through (the stub's target process).
  ProcessId via{kNoProcess};

  [[nodiscard]] bool is_local() const noexcept { return via == kNoProcess; }

  friend constexpr auto operator<=>(const Ref&, const Ref&) = default;
};

struct Object {
  ObjectId id{kNoObject};

  /// Outgoing references (directed edges of the graph), with bindings.
  std::vector<Ref> refs;

  /// Abstract payload size in bytes; propagation messages charge it as
  /// weight so network accounting reflects object sizes.
  std::uint32_t payload_bytes{16};

  /// True when the Figure 6/7 experiment registered a finalizer for this
  /// object; the LGC then runs the configured finalization strategy when
  /// the object becomes locally unreachable.
  bool finalizable{false};

  /// Step at which this replica (as far as the local process can tell) last
  /// became unreferenced — stamped by the mutator hooks on the removal that
  /// orphaned it and by the health auditor's deep scan, cleared whenever a
  /// reference or replica update re-links it.  Zero means "not known to be
  /// unlinked".  Feeds the gc.reclaim_latency_steps histogram (reclaim step
  /// minus this stamp = how long the garbage floated).  Mutable for the same
  /// reason as the mark state: the auditor maintains it during a logically
  /// read-only scan.
  mutable std::uint64_t unlinked_at{0};

  // NOTE: the LGC mark state (epoch + kReach* mask) is NOT stored here —
  // it lives in struct-of-arrays slabs inside rm::Heap (Heap::mark /
  // Heap::marks, addressed by slot), so the collectors' hot loops touch
  // two packed arrays instead of pulling whole Objects through the cache.

  /// Adds a reference; duplicates (same target, any binding) are collapsed.
  bool add_ref(Ref ref) {
    if (references(ref.target)) return false;
    refs.push_back(ref);
    return true;
  }

  /// Removes the reference to `target`, whatever its binding.
  bool remove_ref(ObjectId target) {
    auto it = std::find_if(refs.begin(), refs.end(),
                           [&](const Ref& r) { return r.target == target; });
    if (it == refs.end()) return false;
    refs.erase(it);
    return true;
  }

  [[nodiscard]] bool references(ObjectId target) const {
    return std::any_of(refs.begin(), refs.end(),
                       [&](const Ref& r) { return r.target == target; });
  }

  /// Visits every outgoing reference without materializing a vector — the
  /// hot-path replacement for ref_targets() (which allocates and survives
  /// only for test convenience).
  template <typename Fn>
  void for_each_ref(Fn&& fn) const {
    for (const Ref& r : refs) fn(r);
  }

  /// Allocating snapshot of the reference targets.  Test/diagnostic use
  /// only; hot paths iterate `refs` or use for_each_ref.
  [[nodiscard]] std::vector<ObjectId> ref_targets() const {
    std::vector<ObjectId> out;
    out.reserve(refs.size());
    for (const Ref& r : refs) out.push_back(r.target);
    return out;
  }
};

}  // namespace rgc::rm
