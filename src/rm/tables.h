// Distributed-GC bookkeeping tables: stubs, scions, propagation lists.
//
// §2.2 of the paper:
//  - Stub  — an outgoing inter-process reference (this process -> target).
//  - Scion — an incoming inter-process reference (source -> this process).
//  - inPropList / outPropList — where each replicated object came from /
//    was propagated to, with the Unreachable/Reclaim hand-shake bits.
//
// §3.2 extends them with invocation counters (stubs/scions) and update
// counters (props) that implement the optimistic race barrier of §3.5, plus
// the summarization fields (StubsFrom/ScionsTo/ReplicasFrom/ReplicasTo,
// LocalReach) — those live in gc/cycle/summary.h, computed from snapshots,
// not here: the live tables carry only what the running system maintains.
#pragma once

#include <compare>
#include <cstdint>
#include <vector>

#include "util/ids.h"

namespace rgc::rm {

/// Identifies a stub within its holder process: which object it designates
/// and on which process the designated replica lives (SSP chains allow
/// several stubs for the same object through different processes).
struct StubKey {
  ObjectId target{kNoObject};
  ProcessId target_process{kNoProcess};

  friend constexpr auto operator<=>(const StubKey&, const StubKey&) = default;
};

struct Stub {
  StubKey key;
  /// Invocation Counter (IC): bumped on every remote invocation through
  /// this reference; compared against the scion's IC by the race barrier.
  std::uint64_t ic{0};
  /// Step at which the stub was created (diagnostics).
  std::uint64_t created_at{0};

  /// Intrusive LGC mark state, epoch-validated exactly like
  /// rm::Object::mark_epoch/mark_bits (see object.h).
  mutable std::uint64_t mark_epoch{0};
  mutable std::uint8_t mark_bits{0};

  /// Dense position of this stub in the current summarization pass (stamped
  /// by gc::summarize while walking the stub table in key order; only valid
  /// within that pass).  Same intrusive-scratch idea as the mark state.
  mutable std::uint32_t summarize_idx{0};

  bool mark(std::uint64_t epoch, std::uint8_t bit) const {
    if (mark_epoch != epoch) {
      mark_epoch = epoch;
      mark_bits = 0;
    }
    if (mark_bits & bit) return false;
    mark_bits |= bit;
    return true;
  }

  [[nodiscard]] std::uint8_t marks(std::uint64_t epoch) const {
    return mark_epoch == epoch ? mark_bits : 0;
  }
};

/// Identifies a scion within its holder process: the remote process that
/// holds the reference and the local object the reference designates.
/// (The anchor object may itself not be replicated locally; the scion then
/// keeps the local stub chain for it alive — stub–scion chains, §2.2.4.)
struct ScionKey {
  ProcessId src_process{kNoProcess};
  ObjectId anchor{kNoObject};

  friend constexpr auto operator<=>(const ScionKey&, const ScionKey&) = default;
};

struct Scion {
  ScionKey key;
  /// Invocation Counter, twin of the matching stub's IC.
  std::uint64_t ic{0};
  /// Link sequence number of the Propagate message whose export created
  /// this scion.  NewSetStubs carries the receiver's delivered-seq horizon;
  /// a scion newer than the horizon is never deleted (guards against the
  /// in-flight-propagation race, §2.2.4 causal ordering).
  std::uint64_t created_seq{0};
  /// Source objects exported at propagate time (diagnostic only; the cycle
  /// detector identifies incoming references by link, not by source object,
  /// which is strictly safer — see DESIGN.md §7).
  std::vector<ObjectId> src_objects;
};

/// One entry of the inPropList: this process holds a replica of `object`
/// propagated from `process` (the parent replica).
struct InProp {
  ObjectId object{kNoObject};
  ProcessId process{kNoProcess};
  /// Update Counter (UC): set to the sender's counter on every propagate /
  /// update along this link.
  std::uint64_t uc{0};
  /// sentUmess bit of §2.2: an Unreachable message has been sent upstream
  /// and not invalidated since.
  bool sent_umess{false};
  friend constexpr bool operator==(const InProp&, const InProp&) = default;
};

/// One entry of the outPropList: this process propagated its replica of
/// `object` to `process` (a child replica).
struct OutProp {
  ObjectId object{kNoObject};
  ProcessId process{kNoProcess};
  /// Update Counter, bumped before each propagate/update along this link.
  std::uint64_t uc{0};
  /// recUmess bit of §2.2: the child reported itself unreachable.
  bool rec_umess{false};
  friend constexpr bool operator==(const OutProp&, const OutProp&) = default;
};

}  // namespace rgc::rm
