// Crash/restart persistence: capturing a Process into a ProcessImage and
// rehydrating one from it.  Lives next to process.cpp (full member access);
// the byte-level serialization with checksumming is in
// gc/cycle/snapshot_io.cpp, keeping all persistence formats in one place.
#include <algorithm>

#include "rm/image.h"
#include "rm/process.h"
#include "util/log.h"

namespace rgc::rm {

ProcessImage Process::capture_image(std::uint64_t now) const {
  ProcessImage image;
  image.process = id_;
  image.taken_at = now;
  image.mutation_epoch = mutation_epoch_;
  image.collection_epoch = collection_epoch_;

  image.objects.reserve(heap_.size());
  heap_.for_each([&](ObjectId id, std::uint32_t, const Object& obj) {
    image.objects.push_back(
        ImageObject{id, obj.refs, obj.payload_bytes, obj.finalizable});
  });
  image.roots.assign(heap_.roots().begin(), heap_.roots().end());
  image.transient_roots.assign(transient_roots_.begin(),
                               transient_roots_.end());

  image.stubs.reserve(stubs_.size());
  for (const auto& [key, stub] : stubs_) image.stubs.push_back(stub);
  image.scions.reserve(scions_.size());
  for (const auto& [key, scion] : scions_) image.scions.push_back(scion);
  image.in_props = in_props_;
  image.out_props = out_props_;

  image.delivered_prop_seq.assign(delivered_prop_seq_.begin(),
                                  delivered_prop_seq_.end());
  image.stub_peers.assign(stub_peers_.begin(), stub_peers_.end());
  image.newsetstubs_epochs.assign(newsetstubs_epochs_.begin(),
                                  newsetstubs_epochs_.end());
  return image;
}

void Process::restore_image(const ProcessImage& image, std::uint64_t now) {
  heap_ = Heap{};
  stubs_.clear();
  stub_index_.clear();
  scions_.clear();
  in_props_.clear();
  out_props_.clear();
  transient_roots_.clear();
  delivered_prop_seq_.clear();
  stub_peers_.clear();
  newsetstubs_epochs_.clear();
  last_heard_.clear();

  for (const ImageObject& o : image.objects) {
    Object& obj = heap_.put(o.id, o.refs, o.payload_bytes);
    obj.finalizable = o.finalizable;
  }
  for (const ObjectId r : image.roots) heap_.add_root(r);
  for (const auto& [id, ttl] : image.transient_roots) {
    transient_roots_[id] = ttl;
  }
  for (const Stub& s : image.stubs) {
    Stub& stub = ensure_stub(s.key, s.created_at);
    stub.ic = s.ic;
  }
  for (const Scion& s : image.scions) scions_[s.key] = s;
  in_props_ = image.in_props;
  out_props_ = image.out_props;
  for (const auto& [p, seq] : image.delivered_prop_seq) {
    delivered_prop_seq_[p] = seq;
  }
  stub_peers_.insert(image.stub_peers.begin(), image.stub_peers.end());
  for (const auto& [p, e] : image.newsetstubs_epochs) {
    newsetstubs_epochs_[p] = e;
  }
  collection_epoch_ = image.collection_epoch;

  // Re-registration: every peer the image names gets a fresh lease as of
  // the restart step, in both roles — this process must not reclaim their
  // state before hearing from them again, and docs/FAULTS.md's safety rule
  // ("re-register and re-bind before reclaiming anything") starts here.
  const auto renew = [&](ProcessId peer) {
    if (peer != id_ && peer != kNoProcess) note_heard(peer, now);
  };
  for (const Stub& s : image.stubs) renew(s.key.target_process);
  for (const Scion& s : image.scions) renew(s.key.src_process);
  for (const InProp& e : in_props_) renew(e.process);
  for (const OutProp& e : out_props_) renew(e.process);
  for (const auto& [p, seq] : image.delivered_prop_seq) renew(p);
  for (const ProcessId p : image.stub_peers) renew(p);
  for (const auto& [p, e] : image.newsetstubs_epochs) renew(p);

  // Resume strictly after the image's epoch so a follow-up persist of the
  // restored state is never mistaken for a stale snapshot.
  mutation_epoch_ = std::max(mutation_epoch_, image.mutation_epoch) + 1;
  RGC_DEBUG("rm: ", to_string(id_), " restored image taken at step ",
            image.taken_at, " (", image.objects.size(), " objects)");
}

}  // namespace rgc::rm
