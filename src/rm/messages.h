// Coherence-engine and mutator messages (the RM substrate's wire protocol).
//
// Propagate carries an object's content (its reference list) from parent to
// child replica — §2.1.2's only coherence operation with GC relevance.
// Invoke models a remote method call through a stub; its only GC-visible
// effect is bumping the invocation counters at both ends (§3.5), and
// optionally pinning the target as a transient local root for `root_steps`
// steps — exactly the behaviour the Figure 4/5 race example relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.h"
#include "util/ids.h"

namespace rgc::rm {

struct PropagateMsg final : net::Message {
  ObjectId object{kNoObject};
  std::vector<ObjectId> refs;
  std::uint32_t payload_bytes{0};
  /// Sender-side outProp UC after the pre-send bump; the receiver adopts it.
  std::uint64_t uc{0};

  [[nodiscard]] const char* kind() const noexcept override { return "Propagate"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::size_t weight() const noexcept override {
    return 1 + refs.size() + payload_bytes / 16;
  }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<PropagateMsg>(*this);
  }
};

/// Announces that the sender just restarted (possibly from a stale
/// snapshot).  Receivers reset their NewSetStubs stale-epoch record for the
/// sender — its collection-epoch counter restarted too — and run their half
/// of the reconciliation protocol toward it (rebinds, re-propagations,
/// prop-sync; see docs/FAULTS.md).
struct RecoverMsg final : net::Message {
  /// Restart count of the sender (1 = first recovery), for diagnostics.
  std::uint64_t incarnation{0};

  [[nodiscard]] const char* kind() const noexcept override { return "Recover"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<RecoverMsg>(*this);
  }
};

/// "I hold a stub for `anchor` toward you — make sure the matching scion
/// exists."  Sent during reconciliation for every stub whose scion may have
/// been lost to a crash, a stale snapshot, or a lease expiry.  The receiver
/// re-creates (or refreshes) the scion if it still knows the anchor, else
/// answers with RebindNackMsg.
struct RebindMsg final : net::Message {
  ObjectId anchor{kNoObject};
  /// Stub-side IC; the scion adopts max(its IC, this) so the race barrier's
  /// counters never run backwards across a recovery.
  std::uint64_t ic{0};

  [[nodiscard]] const char* kind() const noexcept override { return "Rebind"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<RebindMsg>(*this);
  }
};

/// "I no longer know `anchor` — your stub dangles."  The receiver severs the
/// stub and every reference bound through it (rebinding through a local
/// replica or an alternative chain when one exists), cascading further
/// nacks upstream if that makes its own scions for the anchor unresolvable.
struct RebindNackMsg final : net::Message {
  ObjectId anchor{kNoObject};

  [[nodiscard]] const char* kind() const noexcept override { return "RebindNack"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<RebindNackMsg>(*this);
  }
};

/// The sender's complete list of objects it still propagates to the
/// receiver.  The receiver drops any inProp entry from the sender that is
/// not on the list — propagation links whose parent side died with the
/// sender's lost state.  Sent after the re-propagations of the surviving
/// links (same reliable FIFO link), so a fresh inProp is never dropped.
struct PropSyncMsg final : net::Message {
  std::vector<ObjectId> objects;

  [[nodiscard]] const char* kind() const noexcept override { return "PropSync"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::size_t weight() const noexcept override {
    return 1 + objects.size();
  }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<PropSyncMsg>(*this);
  }
};

struct InvokeMsg final : net::Message {
  ObjectId target{kNoObject};
  /// Stub-side IC after the pre-send bump; the receiving scion adopts it so
  /// both ends agree on the link's invocation history.
  std::uint64_t ic{0};
  /// Number of steps the invoked object stays pinned as a transient root on
  /// the callee ("the invoke creates a local root pointing to the target;
  /// when the invoke returns, the local root is deleted").
  std::uint32_t root_steps{1};

  [[nodiscard]] const char* kind() const noexcept override { return "Invoke"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<InvokeMsg>(*this);
  }
};

}  // namespace rgc::rm
