// Coherence-engine and mutator messages (the RM substrate's wire protocol).
//
// Propagate carries an object's content (its reference list) from parent to
// child replica — §2.1.2's only coherence operation with GC relevance.
// Invoke models a remote method call through a stub; its only GC-visible
// effect is bumping the invocation counters at both ends (§3.5), and
// optionally pinning the target as a transient local root for `root_steps`
// steps — exactly the behaviour the Figure 4/5 race example relies on.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/message.h"
#include "util/ids.h"

namespace rgc::rm {

struct PropagateMsg final : net::Message {
  ObjectId object{kNoObject};
  std::vector<ObjectId> refs;
  std::uint32_t payload_bytes{0};
  /// Sender-side outProp UC after the pre-send bump; the receiver adopts it.
  std::uint64_t uc{0};

  [[nodiscard]] const char* kind() const noexcept override { return "Propagate"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::size_t weight() const noexcept override {
    return 1 + refs.size() + payload_bytes / 16;
  }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<PropagateMsg>(*this);
  }
};

struct InvokeMsg final : net::Message {
  ObjectId target{kNoObject};
  /// Stub-side IC after the pre-send bump; the receiving scion adopts it so
  /// both ends agree on the link's invocation history.
  std::uint64_t ic{0};
  /// Number of steps the invoked object stays pinned as a transient root on
  /// the callee ("the invoke creates a local root pointing to the target;
  /// when the invoke returns, the local root is deleted").
  std::uint32_t root_steps{1};

  [[nodiscard]] const char* kind() const noexcept override { return "Invoke"; }
  [[nodiscard]] bool reliable() const noexcept override { return true; }
  [[nodiscard]] std::unique_ptr<net::Message> clone() const override {
    return std::make_unique<InvokeMsg>(*this);
  }
};

}  // namespace rgc::rm
