#include "core/report.h"

#include <ostream>
#include <sstream>

#include "obs/health.h"
#include "util/trace.h"

namespace rgc::core {
namespace {

/// GC-relevant counter prefixes worth surfacing in the aggregate view.
bool interesting_counter(const std::string& name) {
  return name.starts_with("lgc.") || name.starts_with("adgc.") ||
         name.starts_with("cycle.") || name.starts_with("baseline.");
}

}  // namespace

ClusterReport make_report(const Cluster& cluster) {
  ClusterReport report;
  report.now = cluster.now();
  report.cycles_found = cluster.cycles_found().size();

  std::map<std::string, std::uint64_t> gc_totals;
  std::map<std::string, util::Histogram> hist_totals;
  for (ProcessId pid : cluster.process_ids()) {
    const rm::Process& proc = cluster.process(pid);
    ProcessReport row;
    row.process = pid;
    row.objects = proc.heap().size();
    row.roots = proc.heap().roots().size();
    row.stubs = proc.stubs().size();
    row.scions = proc.scions().size();
    row.in_props = proc.in_props().size();
    row.out_props = proc.out_props().size();
    row.collections = proc.metrics().get("lgc.collections");
    row.reclaimed = proc.metrics().get("lgc.reclaimed");
    report.processes.push_back(row);

    for (const auto& [name, value] : proc.metrics().snapshot()) {
      if (value != 0 && interesting_counter(name)) gc_totals[name] += value;
    }
    for (const auto& [name, hist] : proc.metrics().histogram_snapshot()) {
      if (hist->count() != 0) hist_totals[name].merge(*hist);
    }
  }
  for (const auto& [name, value] : cluster.network().metrics().snapshot()) {
    constexpr std::string_view kSentPrefix = "net.sent.";
    if (value != 0 && name.starts_with(kSentPrefix)) {
      report.traffic.emplace_back(name.substr(kSentPrefix.size()), value);
    }
    // Cluster-level incidents counted into the network registry (e.g.
    // cluster.quiescence_timeout) and the GC daemon's scheduling counters
    // (daemon.collections, daemon.skipped_sweeps, ...) surface alongside
    // the GC counters.
    if (value != 0 &&
        (name.starts_with("cluster.") || name.starts_with("daemon."))) {
      gc_totals[name] += value;
    }
  }
  // Cluster-level gauges (e.g. cycle.summary_dirty_fraction) ride along in
  // the same table; last-set value, not a sum.
  for (const auto& [name, value] : cluster.network().metrics().gauge_snapshot()) {
    if (value != 0 && (name.starts_with("cycle.") || name.starts_with("cluster.") ||
                       name.starts_with("daemon."))) {
      gc_totals[name] = value;
    }
  }
  // The cost ledger's registry is deterministic (fed only from serial
  // phases), so unlike the recorder/profile registries it belongs in the
  // report: counters and gauges into the gc table, histograms merged.
  if (const obs::Ledger* ledger = cluster.ledger(); ledger != nullptr) {
    for (const auto& [name, value] : ledger->metrics().snapshot()) {
      if (value != 0) gc_totals[name] += value;
    }
    for (const auto& [name, value] : ledger->metrics().gauge_snapshot()) {
      if (value != 0) gc_totals[name] = value;
    }
    for (const auto& [name, hist] : ledger->metrics().histogram_snapshot()) {
      if (hist->count() != 0) hist_totals[name].merge(*hist);
    }
    constexpr std::size_t kTopK = 5;
    for (const obs::LedgerEntry* e : ledger->slowest(kTopK)) {
      report.slowest_cycles.push_back(*e);
    }
  }
  report.gc_counters.assign(gc_totals.begin(), gc_totals.end());
  for (const auto& [name, hist] :
       cluster.network().metrics().histogram_snapshot()) {
    if (hist->count() != 0) hist_totals[name].merge(*hist);
  }
  report.histograms.assign(hist_totals.begin(), hist_totals.end());

  const obs::HealthReport& health = cluster.health();
  report.health.present = health.audit_runs != 0;
  if (report.health.present) {
    report.health.step = health.step;
    report.health.deep = health.deep;
    report.health.audit_runs = health.audit_runs;
    report.health.deep_runs = health.deep_runs;
    report.health.worst = obs::to_string(health.worst());
    report.health.errors = health.errors();
    report.health.warnings = health.warnings();
    report.health.findings.reserve(health.findings.size());
    for (const obs::Finding& f : health.findings) {
      report.health.findings.push_back(f.to_string());
    }
  }
  return report;
}

std::string ClusterReport::to_string() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const ClusterReport& report) {
  os << "cluster @ step " << report.now << ", cycles proven "
     << report.cycles_found << "\n";
  os << "  proc  objects  roots  stubs  scions  inprops  outprops  "
        "collections  reclaimed\n";
  for (const ProcessReport& row : report.processes) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "  %-5s %8zu %6zu %6zu %7zu %8zu %9zu %12llu %10llu\n",
                  to_string(row.process).c_str(), row.objects, row.roots,
                  row.stubs, row.scions, row.in_props, row.out_props,
                  static_cast<unsigned long long>(row.collections),
                  static_cast<unsigned long long>(row.reclaimed));
    os << line;
  }
  if (!report.traffic.empty()) {
    os << "  traffic:";
    for (const auto& [kind, count] : report.traffic) {
      os << " " << kind << "=" << count;
    }
    os << "\n";
  }
  if (!report.gc_counters.empty()) {
    os << "  gc:";
    for (const auto& [name, value] : report.gc_counters) {
      os << " " << name << "=" << value;
    }
    os << "\n";
  }
  for (const auto& [name, hist] : report.histograms) {
    os << "  hist " << name << ": " << hist.to_string() << "\n";
  }
  if (!report.slowest_cycles.empty()) {
    os << "  slowest cycles (ledger):\n";
    os << "    detection            candidate    e2e  detect    cut  sweep  "
          "hops  dominant\n";
    for (const obs::LedgerEntry& e : report.slowest_cycles) {
      char line[200];
      std::snprintf(line, sizeof(line),
                    "    %-20llu %-10s %6llu %7llu %6llu %6llu %5zu  %s\n",
                    static_cast<unsigned long long>(e.detection_id),
                    (to_string(e.candidate) + "@" +
                     to_string(e.candidate_process))
                        .c_str(),
                    static_cast<unsigned long long>(e.e2e_steps),
                    static_cast<unsigned long long>(e.detect_steps),
                    static_cast<unsigned long long>(e.cut_wait_steps +
                                                    e.cut_transit_steps),
                    static_cast<unsigned long long>(e.sweep_wait_steps),
                    e.path.size(), e.dominant().c_str());
      os << line;
    }
  }
  if (report.health.present) {
    os << "  health: " << report.health.worst << " (" << report.health.errors
       << " errors, " << report.health.warnings << " warnings, "
       << (report.health.deep ? "deep" : "shallow") << " audit @ step "
       << report.health.step << ", " << report.health.audit_runs << " runs)\n";
    for (const std::string& finding : report.health.findings) {
      os << "    " << finding << "\n";
    }
  }
  return os;
}

std::string ClusterReport::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

void ClusterReport::write_json(std::ostream& os) const {
  os << "{\n  \"now\": " << now << ",\n  \"cycles_found\": " << cycles_found
     << ",\n  \"processes\": [\n";
  for (std::size_t i = 0; i < processes.size(); ++i) {
    const ProcessReport& row = processes[i];
    os << "    {\"process\": " << raw(row.process)
       << ", \"objects\": " << row.objects << ", \"roots\": " << row.roots
       << ", \"stubs\": " << row.stubs << ", \"scions\": " << row.scions
       << ", \"in_props\": " << row.in_props
       << ", \"out_props\": " << row.out_props
       << ", \"collections\": " << row.collections
       << ", \"reclaimed\": " << row.reclaimed << "}"
       << (i + 1 < processes.size() ? "," : "") << "\n";
  }
  os << "  ],\n  \"traffic\": {";
  for (std::size_t i = 0; i < traffic.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\"" << util::json_escape(traffic[i].first)
       << "\": " << traffic[i].second;
  }
  os << "},\n  \"gc_counters\": {";
  for (std::size_t i = 0; i < gc_counters.size(); ++i) {
    os << (i == 0 ? "" : ", ") << "\""
       << util::json_escape(gc_counters[i].first)
       << "\": " << gc_counters[i].second;
  }
  os << "},\n  \"histograms\": {";
  for (std::size_t i = 0; i < histograms.size(); ++i) {
    const util::Histogram& h = histograms[i].second;
    os << (i == 0 ? "\n" : ",\n") << "    \""
       << util::json_escape(histograms[i].first) << "\": {\"count\": "
       << h.count() << ", \"sum\": " << h.sum() << ", \"min\": " << h.min()
       << ", \"max\": " << h.max() << ", \"buckets\": [";
    // Trailing zero buckets carry no information; stop at the last non-zero.
    std::size_t last = 0;
    for (std::size_t b = 0; b < util::Histogram::kBuckets; ++b) {
      if (h.buckets()[b] != 0) last = b;
    }
    for (std::size_t b = 0; b <= last; ++b) {
      os << (b == 0 ? "" : ", ") << h.buckets()[b];
    }
    os << "]}";
  }
  os << (histograms.empty() ? "" : "\n  ") << "},\n  \"slowest_cycles\": [";
  for (std::size_t i = 0; i < slowest_cycles.size(); ++i) {
    os << (i == 0 ? "\n    " : ",\n    ") << slowest_cycles[i].to_json();
  }
  os << (slowest_cycles.empty() ? "" : "\n  ") << "],\n  \"health\": {";
  os << "\"present\": " << (health.present ? "true" : "false");
  if (health.present) {
    os << ", \"worst\": \"" << util::json_escape(health.worst)
       << "\", \"errors\": " << health.errors
       << ", \"warnings\": " << health.warnings << ", \"step\": " << health.step
       << ", \"deep\": " << (health.deep ? "true" : "false")
       << ", \"audit_runs\": " << health.audit_runs
       << ", \"deep_runs\": " << health.deep_runs << ", \"findings\": [";
    for (std::size_t i = 0; i < health.findings.size(); ++i) {
      os << (i == 0 ? "" : ", ") << "\"" << util::json_escape(health.findings[i])
         << "\"";
    }
    os << "]";
  }
  os << "}\n}\n";
}

}  // namespace rgc::core
