// GcDaemon — the "from time to time" of the paper, made concrete.
//
// §2.2.3: "From time to time, possibly after a local collection, the ADGC
// sends a message NewSetStubs…"; §3.5: "periodically, each process stores
// a snapshot of its internal object graph".  The daemon drives exactly
// that cadence on virtual time: every `collect_period` steps a process
// runs LGC + the acyclic protocol; every `snapshot_period` steps it takes
// a fresh snapshot and starts detections on the current suspects.  Each
// process's schedule is staggered by its id (decentralization: nothing
// ever lines the processes up), and the mutator keeps running throughout
// — the daemon never stops the world.
//
//   rgc::core::Cluster cluster;
//   rgc::core::GcDaemon daemon{cluster, {}};
//   ... mutate ...
//   daemon.run(200);        // 200 simulation steps with background GC
#pragma once

#include <cstdint>

#include "core/cluster.h"

namespace rgc::core {

struct DaemonConfig {
  /// Steps between local collections per process.
  std::uint64_t collect_period{8};
  /// Steps between snapshot + detection sweeps per process.
  std::uint64_t snapshot_period{24};
  /// Offset each process's schedule by id * stagger steps.
  std::uint64_t stagger{1};
};

class GcDaemon {
 public:
  GcDaemon(Cluster& cluster, DaemonConfig config = {});

  /// Advances the cluster one step and runs whatever GC work is due.
  void step();

  /// step(), `steps` times.
  void run(std::uint64_t steps);

  [[nodiscard]] std::uint64_t collections() const noexcept { return collections_; }
  [[nodiscard]] std::uint64_t sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] std::uint64_t detections_started() const noexcept {
    return detections_;
  }

 private:
  Cluster& cluster_;
  DaemonConfig config_;
  std::uint64_t collections_{0};
  std::uint64_t sweeps_{0};
  std::uint64_t detections_{0};
};

}  // namespace rgc::core
