// GcDaemon — the "from time to time" of the paper, made concrete.
//
// §2.2.3: "From time to time, possibly after a local collection, the ADGC
// sends a message NewSetStubs…"; §3.5: "periodically, each process stores
// a snapshot of its internal object graph".  The daemon drives exactly
// that cadence on virtual time — and, by default, *adapts* it per process
// instead of firing blindly: a fixed cadence pays for snapshot and
// detection work whether or not it can possibly find anything, which is
// precisely the cost the cycle cost ledger (obs/ledger.h) showed dominates
// detection latency and CDM/snapshot traffic.
//
// The adaptive policy follows the Pony/encore cycle detector's deferred
// scheme (min/max exponential backoff, reset on productive work) using
// signals the system already exports, all deterministic:
//
//   - `mutation_epoch` deltas: a process whose epoch is unchanged since
//     its last collection cannot have new local garbage — skip and back
//     off.  Quiescent processes thus decay toward the max deferral, where
//     the O(1) dirty-epoch summary cache makes what remains nearly free.
//     Any fresh mutation on a deferred lane (a Cut landing, a message
//     delivery that edits references) wakes it back to the floor, so
//     deferral only ever spans true quiet.
//   - mutation *rate*: a hot process would dirty its summary again
//     immediately, so snapshot sweeps back off (bounded — see below).
//   - productivity: a sweep that starts detections (or proves a cycle)
//     resets its deferral to the minimum, Pony's "collected a cycle →
//     detect eagerly again"; a sweep that finds no suspects backs off.
//   - `gc.floating_garbage_age` (auditor gauge): proven-garbage age
//     crossing a bound forces a sweep regardless of backoff — the safety
//     valve that bounds detection latency under adversarial mutation.
//
// Completeness is preserved: deferrals stretch toward max_* but sweeps
// never stop — a due lane at maximum backoff always runs, and the forced
// sweep triggers on aging floating garbage.  Each process's schedule
// remains staggered by its id (decentralization: nothing ever lines the
// processes up), every policy input is deterministic, and the mutator
// keeps running throughout — the daemon never stops the world.
//
// Detection sweeps no longer fire on every due suspect: candidates are
// prioritized by suspicion age (oldest first — the paper's "survived N
// collections anchored only remotely" signal) under a per-sweep budget.
//
//   rgc::core::Cluster cluster;
//   rgc::core::GcDaemon daemon{cluster, {}};   // adaptive by default
//   ... mutate ...
//   daemon.run(200);        // 200 simulation steps with background GC
//
// `adaptive.enabled = false` reproduces the pre-adaptive fixed cadence
// exactly (the ablation baseline, and what cadence-asserting tests pin).
#pragma once

#include <cstdint>
#include <map>

#include "core/cluster.h"

namespace rgc::core {

struct DaemonConfig {
  /// Steps between local collections per process (adaptive: the *minimum*
  /// deferral — the cadence a busy process gets).
  std::uint64_t collect_period{8};
  /// Steps between snapshot + detection sweeps per process (adaptive: the
  /// minimum sweep deferral).
  std::uint64_t snapshot_period{24};
  /// Offset each process's schedule by id * stagger steps.
  std::uint64_t stagger{1};

  /// Pony-style adaptive deferred detection (header comment).  All
  /// deferral bounds of 0 derive from the fixed periods above.
  struct Adaptive {
    bool enabled{true};
    /// Collection deferral grows 2x per unproductive due-point, bounded
    /// here (0 -> 4 * collect_period).
    std::uint64_t collect_max_deferred{0};
    /// Sweep deferral bound (0 -> 8 * snapshot_period).
    std::uint64_t sweep_max_deferred{0};
    /// A process is "hot" when its mutation-epoch delta per elapsed step,
    /// in percent, reaches this (100 = one mutation per step).  Hot lanes
    /// defer sweeps — their summaries would be dirty again immediately.
    /// 0 disables the hot signal.
    std::uint32_t hot_mutation_pct{50};
    /// Max detections started per sweep, oldest suspects first (0 = no
    /// budget — every due suspect, the pre-adaptive behavior).
    std::size_t detect_budget{8};
    /// Force a sweep (ignoring backoff) when the auditor's
    /// gc.floating_garbage_age gauge reaches this many steps.  0 disables
    /// the forced-sweep safety valve.
    std::uint64_t max_floating_age{128};
  } adaptive{};
};

class GcDaemon {
 public:
  GcDaemon(Cluster& cluster, DaemonConfig config = {});

  /// Advances the cluster one step and runs whatever GC work is due.
  void step();

  /// step(), `steps` times.
  void run(std::uint64_t steps);

  [[nodiscard]] std::uint64_t collections() const noexcept { return collections_; }
  [[nodiscard]] std::uint64_t sweeps() const noexcept { return sweeps_; }
  [[nodiscard]] std::uint64_t detections_started() const noexcept {
    return detections_;
  }
  /// Due-points the adaptive policy skipped (work that a fixed cadence
  /// would have paid for).
  [[nodiscard]] std::uint64_t skipped_sweeps() const noexcept {
    return skipped_sweeps_.value();
  }
  [[nodiscard]] std::uint64_t skipped_collections() const noexcept {
    return skipped_collections_.value();
  }

 private:
  /// Per-process adaptive schedule state.
  struct Lane {
    std::uint64_t collect_due{0};
    std::uint64_t collect_backoff{0};
    std::uint64_t last_collect_epoch{0};
    bool has_collected{false};
    std::uint64_t sweep_due{0};
    std::uint64_t sweep_backoff{0};
    std::uint64_t last_sweep_epoch{0};
    std::uint64_t last_sweep_at{0};
    bool has_swept{false};
  };

  void step_fixed(std::uint64_t now);
  void step_adaptive(std::uint64_t now);
  /// The snapshot + persist + budgeted detection sweep shared by both
  /// paths.  Returns the number of detections started.
  std::uint64_t sweep(ProcessId pid);
  Lane& lane(ProcessId pid, std::uint64_t now);

  Cluster& cluster_;
  DaemonConfig config_;
  std::uint64_t collections_{0};
  std::uint64_t sweeps_{0};
  std::uint64_t detections_{0};
  std::map<ProcessId, Lane> lanes_;
  /// daemon.* counters in the cluster's network registry — the fix for
  /// "daemon counters are invisible to observability" (report/Prometheus/
  /// dashboard all read that registry).
  util::Counter collections_ctr_;
  util::Counter sweeps_ctr_;
  util::Counter detections_ctr_;
  util::Counter skipped_sweeps_;
  util::Counter skipped_collections_;
  util::Counter forced_sweeps_;
  util::Counter snapshot_bytes_;
  util::Gauge deferred_budget_;
};

}  // namespace rgc::core
