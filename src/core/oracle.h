// Omniscient global-reachability oracle — the test harness's ground truth.
//
// The oracle sees every process at once (something no real collector can)
// and computes:
//  - the set of *live logical objects*: the closure of all local roots over
//    the union of every replica's reference lists — exactly the Union Rule
//    (§2.2.1) evaluated globally;
//  - referential-integrity violations: live paths ending in references that
//    no longer resolve (dangling stubs / lost replicas).
//
// Safety property  : the collectors never reclaim the last replica of a
//                    live object and never leave a live path dangling.
// Completeness     : after mutation stops, run_full_gc() reclaims every
//                    replica of every dead object, with all of its
//                    stubs/scions/prop entries.
// Property-based tests drive random workloads and check both against this
// oracle after every round.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "util/ids.h"

namespace rgc::core {

struct OracleReport {
  /// Logical objects reachable from some root under the Union Rule.
  std::set<ObjectId> live_objects;
  /// Logical objects with at least one replica anywhere.
  std::set<ObjectId> existing_objects;
  /// Replicas present in the cluster.
  std::set<Replica> replicas;
  /// Human-readable invariant violations (empty == healthy).
  std::vector<std::string> violations;

  [[nodiscard]] bool object_exists(ObjectId id) const {
    return existing_objects.contains(id);
  }
  [[nodiscard]] bool is_live(ObjectId id) const {
    return live_objects.contains(id);
  }
  /// Dead-but-present objects: what a complete GC must eventually reclaim.
  [[nodiscard]] std::set<ObjectId> garbage_objects() const;
};

class Oracle {
 public:
  /// Analyzes the cluster's current state.  Messages still in flight count
  /// as pending mutations; call cluster.run_until_quiescent() first when a
  /// stable verdict is needed.
  [[nodiscard]] static OracleReport analyze(const Cluster& cluster);

  /// True when no replica, stub, scion or prop entry of any dead object
  /// remains anywhere (the completeness post-condition).
  [[nodiscard]] static bool fully_collected(const Cluster& cluster,
                                            const OracleReport& report);
};

}  // namespace rgc::core
