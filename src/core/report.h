// Human-readable cluster reporting: per-process state tables, message
// traffic, GC counters.  Examples and the CLI simulator print these; tests
// assert on the structured variant.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "obs/ledger.h"
#include "util/metrics.h"

namespace rgc::core {

/// One process's row of the state table.
struct ProcessReport {
  ProcessId process{kNoProcess};
  std::size_t objects{0};
  std::size_t roots{0};
  std::size_t stubs{0};
  std::size_t scions{0};
  std::size_t in_props{0};
  std::size_t out_props{0};
  std::uint64_t collections{0};
  std::uint64_t reclaimed{0};
};

/// Condensed view of the latest obs::HealthReport, embedded in the cluster
/// report (table + JSON).  Only deterministic audit output belongs here —
/// the wall-clock profiling registry is deliberately excluded.
struct HealthSummary {
  /// False until the first audit has run (health fields then read zero).
  bool present{false};
  std::uint64_t step{0};
  bool deep{false};
  std::uint64_t audit_runs{0};
  std::uint64_t deep_runs{0};
  std::string worst{"OK"};
  std::size_t errors{0};
  std::size_t warnings{0};
  /// Rendered findings ("[ERROR] stub_scion @ P0: ...").
  std::vector<std::string> findings;
};

struct ClusterReport {
  std::uint64_t now{0};
  std::vector<ProcessReport> processes;
  /// Messages sent per kind, network-wide.
  std::vector<std::pair<std::string, std::uint64_t>> traffic;
  /// Aggregated GC counters (cycle.*, adgc.*, lgc.* sums).
  std::vector<std::pair<std::string, std::uint64_t>> gc_counters;
  /// Distributions merged across processes and the network (cdm.hops,
  /// cycle.steps_to_detection, net.queue_depth, lgc.* per-collection).
  std::vector<std::pair<std::string, util::Histogram>> histograms;
  std::uint64_t cycles_found{0};
  /// Top-K slowest reclaimed cycles from the cost ledger (obs/ledger.h),
  /// slowest first, each with its full critical-path decomposition.  The
  /// ledger feeds only from serial phases, so this table is deterministic.
  std::vector<obs::LedgerEntry> slowest_cycles;
  /// Latest health-audit outcome (see obs::HealthAuditor).
  HealthSummary health;

  /// Fixed-width table rendering.
  [[nodiscard]] std::string to_string() const;

  /// Machine-readable JSON rendering (one object; pretty-printed).  The
  /// same data as the table, plus full histogram buckets.
  [[nodiscard]] std::string to_json() const;
  void write_json(std::ostream& os) const;
};

std::ostream& operator<<(std::ostream& os, const ClusterReport& report);

/// Captures the cluster's current state.
[[nodiscard]] ClusterReport make_report(const Cluster& cluster);

}  // namespace rgc::core
