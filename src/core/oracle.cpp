#include "core/oracle.h"

#include <deque>
#include <map>

namespace rgc::core {

std::set<ObjectId> OracleReport::garbage_objects() const {
  std::set<ObjectId> out;
  for (ObjectId id : existing_objects) {
    if (!live_objects.contains(id)) out.insert(id);
  }
  return out;
}

OracleReport Oracle::analyze(const Cluster& cluster) {
  OracleReport report;

  // Union-of-replicas edge map: logical object -> every object any of its
  // replicas references, plus the rooted set.
  std::map<ObjectId, std::set<ObjectId>> edges;
  std::set<ObjectId> rooted;

  for (ProcessId pid : cluster.process_ids()) {
    const rm::Process& proc = cluster.process(pid);
    proc.heap().for_each([&](ObjectId id, std::uint32_t,
                             const rm::Object& obj) {
      report.existing_objects.insert(id);
      report.replicas.insert(Replica{id, pid});
      for (const rm::Ref& r : obj.refs) edges[id].insert(r.target);
    });
    for (ObjectId root : proc.heap().roots()) rooted.insert(root);
    for (const auto& [obj, ttl] : proc.transient_roots()) rooted.insert(obj);
  }

  // Liveness closure (the Union Rule evaluated globally).
  std::deque<ObjectId> work(rooted.begin(), rooted.end());
  while (!work.empty()) {
    const ObjectId cur = work.front();
    work.pop_front();
    if (!report.live_objects.insert(cur).second) continue;
    auto it = edges.find(cur);
    if (it == edges.end()) continue;
    for (ObjectId next : it->second) work.push_back(next);
  }

  auto resolves_through_chain = [&cluster](ObjectId target, ProcessId from) {
    std::set<ProcessId> visited;
    std::deque<ProcessId> frontier{from};
    while (!frontier.empty()) {
      const ProcessId at = frontier.front();
      frontier.pop_front();
      if (!visited.insert(at).second) continue;
      // A chain hop into a crashed process is optimistically resolvable:
      // the state behind it is unobservable until restart, and the
      // reconciliation protocol (rebind / rebind-nack) settles the stub's
      // fate then — flagging it now would be a false violation.
      if (!cluster.is_alive(at)) return true;
      const rm::Process& node = cluster.process(at);
      if (node.has_replica(target)) return true;
      for (const rm::StubKey& key : node.stubs_for(target)) {
        frontier.push_back(key.target_process);
      }
    }
    return false;
  };

  // Safety invariant 1: a live object must still exist somewhere.  An
  // object whose only replicas sit behind a crashed process is
  // *unobservable*, not lost — some live stub for it chains into the dead
  // node, and restart-time reconciliation decides its fate.
  for (ObjectId id : report.live_objects) {
    if (report.existing_objects.contains(id)) continue;
    bool unobservable = false;
    for (ProcessId pid : cluster.process_ids()) {
      if (!cluster.process(pid).stubs_for(id).empty() &&
          resolves_through_chain(id, pid)) {
        unobservable = true;
        break;
      }
    }
    if (!unobservable) {
      report.violations.push_back("live object lost: " + to_string(id));
    }
  }

  // Safety invariant 2: live paths must resolve.  Per process, trace from
  // its roots through local replicas; every reference reached must resolve
  // to a local replica or through a stub–scion *chain* (§2.2.4: chains of
  // stub–scion pairs are legal) ending at an existing remote replica.
  for (ProcessId pid : cluster.process_ids()) {
    const rm::Process& proc = cluster.process(pid);
    std::set<ObjectId> seen;
    std::deque<ObjectId> local;
    auto visit_target = [&](ObjectId target) {
      if (proc.has_replica(target)) {
        if (!seen.contains(target)) local.push_back(target);
        return;
      }
      if (proc.stubs_for(target).empty()) {
        report.violations.push_back("unresolvable live reference to " +
                                    to_string(target) + " on " +
                                    to_string(pid));
        return;
      }
      if (!resolves_through_chain(target, pid)) {
        report.violations.push_back("dangling live stub for " +
                                    to_string(target) + " on " +
                                    to_string(pid));
      }
    };
    for (ObjectId root : proc.heap().roots()) visit_target(root);
    for (const auto& [obj, ttl] : proc.transient_roots()) visit_target(obj);
    while (!local.empty()) {
      const ObjectId cur = local.front();
      local.pop_front();
      if (!seen.insert(cur).second) continue;
      const rm::Object* obj = proc.heap().find(cur);
      if (obj == nullptr) continue;
      for (const rm::Ref& r : obj->refs) visit_target(r.target);
    }
  }

  return report;
}

bool Oracle::fully_collected(const Cluster& cluster,
                             const OracleReport& report) {
  const std::set<ObjectId> garbage = report.garbage_objects();
  if (!garbage.empty()) return false;

  // No GC structure may keep naming a dead object either.
  std::set<ObjectId> existing = report.existing_objects;
  for (ProcessId pid : cluster.process_ids()) {
    const rm::Process& proc = cluster.process(pid);
    for (const auto& e : proc.in_props()) {
      if (!report.live_objects.contains(e.object)) return false;
    }
    for (const auto& e : proc.out_props()) {
      if (!report.live_objects.contains(e.object)) return false;
    }
    for (const auto& [key, scion] : proc.scions()) {
      if (!report.live_objects.contains(key.anchor) &&
          existing.contains(key.anchor)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace rgc::core
