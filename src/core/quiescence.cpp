#include "core/quiescence.h"

#include <stdexcept>

namespace rgc::core {

TerminationDetector::TerminationDetector(util::Metrics& registry)
    : probes_(registry.counter("cluster.termination_probes")),
      waves_(registry.counter("cluster.termination_waves")),
      confirmations_(registry.counter("cluster.termination_confirmed")),
      deficit_gauge_(registry.gauge("cluster.termination_deficit")),
      weight_gauge_(registry.gauge("cluster.termination_weight_deficit")) {}

TerminationDetector::Account& TerminationDetector::slot(ProcessId pid) {
  const std::size_t i = raw(pid);
  if (i >= accounts_.size()) accounts_.resize(i + 1);
  return accounts_[i];
}

const TerminationDetector::Account& TerminationDetector::account(
    ProcessId pid) const {
  const std::size_t i = raw(pid);
  if (i >= accounts_.size()) {
    throw std::out_of_range("TerminationDetector: unknown pid " +
                            to_string(pid));
  }
  return accounts_[i];
}

void TerminationDetector::attach(ProcessId pid) {
  Account& a = slot(pid);
  if (a.dead) {
    // Restart: the balance carries over (purge refunds already landed at
    // kill time, so a revived account opens with a clean slate of zero
    // outstanding messages plus whatever it accrued before the crash).
    a.dead = false;
    --dead_count_;
    ++a.version;
  }
}

void TerminationDetector::mark_dead(ProcessId pid) {
  Account& a = slot(pid);
  if (a.dead) return;
  a.dead = true;
  ++dead_count_;
  ++a.version;
}

void TerminationDetector::on_send(const net::Envelope& env) {
  Account& a = slot(env.src);
  ++a.sent;
  a.weight_sent += env.msg->weight();
  ++a.version;
}

void TerminationDetector::on_deliver(const net::Envelope& env) {
  Account& a = slot(env.dst);
  ++a.received;
  a.weight_received += env.msg->weight();
  ++a.version;
}

void TerminationDetector::on_drop(const net::Envelope& env) {
  // Transport NACK at the source: a refused send (dead destination,
  // severed partition link, send-time loss) or a purge of an in-flight
  // message both refund the sender — the message will never be received,
  // so it must not be counted as outstanding.
  Account& a = slot(env.src);
  --a.sent;
  a.weight_sent -= env.msg->weight();
  ++a.version;
}

void TerminationDetector::on_duplicate(const net::Envelope& env) {
  // Transport-level retransmission: one extra copy on the sender's link,
  // charged exactly like the original so the later extra delivery balances.
  Account& a = slot(env.src);
  ++a.sent;
  a.weight_sent += env.msg->weight();
  ++a.version;
}

bool TerminationDetector::probe() {
  probes_.inc();

  // Wave 1: circulate the token through the accounts in pid order,
  // accumulating the deficit and the version signature.
  waves_.inc();
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t wsent = 0;
  std::uint64_t wreceived = 0;
  std::uint64_t signature = 0;
  for (const Account& a : accounts_) {
    sent += a.sent;
    received += a.received;
    wsent += a.weight_sent;
    wreceived += a.weight_received;
    signature += a.version;
  }
  last_deficit_ = sent - received;
  last_weight_deficit_ = wsent - wreceived;
  deficit_gauge_.set(last_deficit_);
  weight_gauge_.set(last_weight_deficit_);

  if (last_deficit_ != 0) {
    last_verdict_ = false;
    return false;
  }

  // Wave 2 (confirmation): a zero deficit only proves termination if no
  // account changed while the token circulated — re-walk and require the
  // version signature to match (Safra's second pass / the clean token).
  waves_.inc();
  std::uint64_t confirm = 0;
  for (const Account& a : accounts_) confirm += a.version;
  last_verdict_ = confirm == signature;
  if (last_verdict_) confirmations_.inc();
  return last_verdict_;
}

}  // namespace rgc::core
