#include "core/cluster.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <set>
#include <stdexcept>

#include "gc/cycle/snapshot_io.h"
#include "obs/check.h"
#include "util/log.h"
#include "util/trace.h"

namespace rgc::core {

Cluster::Cluster(ClusterConfig config)
    : config_(config), net_(config.net), finalizer_(config.finalize) {
  auditor_ = std::make_unique<obs::HealthAuditor>(
      *this, obs::AuditConfig{config_.audit_interval, config_.audit_deep_every,
                              config_.audit_oracle_assist});
  net_.set_observer(auditor_.get());
  if (config_.record_capacity > 0) {
    recorder_ = std::make_unique<obs::FlightRecorder>(
        obs::RecorderConfig{config_.record_capacity});
    recorder_->bind(&net_);
    net_.add_observer(recorder_.get());
  }
  if (config_.ledger_capacity > 0) {
    obs::LedgerConfig ledger_config;
    ledger_config.capacity = config_.ledger_capacity;
    ledger_ = std::make_unique<obs::Ledger>(ledger_config);
    ledger_->bind(&net_);
    net_.add_observer(ledger_.get());
  }
  termination_ = std::make_unique<TerminationDetector>(net_.metrics());
  net_.add_observer(termination_.get());
  // Leases imply the fault model: invokes may legally race a crash window.
  faults_engaged_ = config_.lease_timeout > 0;
}

obs::RecStamp Cluster::recorder_stamp() const {
  obs::RecStamp stamp;
  stamp.seed = config_.net.seed;
  stamp.processes = static_cast<std::uint32_t>(nodes_.size());
  stamp.drop_bits = std::bit_cast<std::uint64_t>(config_.net.drop_probability);
  stamp.dup_bits =
      std::bit_cast<std::uint64_t>(config_.net.duplicate_probability);
  stamp.max_delay = config_.net.max_delay;
  stamp.lease_timeout = config_.lease_timeout;
  stamp.capacity = static_cast<std::uint32_t>(config_.record_capacity);
  return stamp;
}

Cluster::~Cluster() = default;

ProcessId Cluster::add_process() {
  const ProcessId pid{next_process_++};
  Node node;
  build_node(pid, node);
  nodes_.emplace(pid, std::move(node));
  return pid;
}

void Cluster::build_node(ProcessId pid, Node& node) {
  node.process = std::make_unique<rm::Process>(pid, net_);
  node.process->set_fault_tolerant(faults_engaged_);
  node.detector =
      std::make_unique<gc::CycleDetector>(*node.process, config_.detector);
  node.baseline = std::make_unique<gc::BaselineDetector>(*node.process);
  node.distance =
      std::make_unique<gc::DistanceHeuristic>(config_.candidate_threshold);
  node.suspicion =
      std::make_unique<gc::SuspicionAgeTracker>(config_.candidate_threshold);
  node.detector->on_cycle_found = [this, pid](const gc::Cdm& cdm) {
    handle_cycle_found(pid, cdm);
  };
  node.baseline->on_cycle_found = [this, pid](const gc::Cdm& cdm) {
    handle_cycle_found(pid, cdm);
  };
  node.detector->set_profile(&profile_.histogram("cycle.detect_us"));
  node.process->set_recorder(recorder_.get());
  node.process->set_ledger(ledger_.get());
  node.summary_cache_valid = false;
  node.last_summary_fresh = true;
  node.alive = true;
  termination_->attach(pid);
  net_.attach(pid, [this, pid](const net::Envelope& env) { dispatch(pid, env); });
}

std::size_t Cluster::process_count() const noexcept {
  std::size_t n = 0;
  for (const auto& [pid, node] : nodes_) n += node.alive ? 1 : 0;
  return n;
}

std::vector<ProcessId> Cluster::process_ids() const {
  std::vector<ProcessId> out;
  out.reserve(nodes_.size());
  for (const auto& [pid, node] : nodes_) {
    if (node.alive) out.push_back(pid);
  }
  return out;
}

rm::Process& Cluster::process(ProcessId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("unknown process");
  if (!it->second.alive) throw std::out_of_range("process is down");
  return *it->second.process;
}

const rm::Process& Cluster::process(ProcessId id) const {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) throw std::out_of_range("unknown process");
  if (!it->second.alive) throw std::out_of_range("process is down");
  return *it->second.process;
}

gc::CycleDetector& Cluster::detector(ProcessId id) {
  Node& node = nodes_.at(id);
  if (!node.alive) throw std::out_of_range("process is down");
  return *node.detector;
}

gc::BaselineDetector& Cluster::baseline(ProcessId id) {
  Node& node = nodes_.at(id);
  if (!node.alive) throw std::out_of_range("process is down");
  return *node.baseline;
}

gc::DistanceHeuristic& Cluster::distance_heuristic(ProcessId id) {
  Node& node = nodes_.at(id);
  if (!node.alive) throw std::out_of_range("process is down");
  return *node.distance;
}

gc::SuspicionAgeTracker& Cluster::suspicion_tracker(ProcessId id) {
  Node& node = nodes_.at(id);
  if (!node.alive) throw std::out_of_range("process is down");
  return *node.suspicion;
}

ObjectId Cluster::new_object(ProcessId owner, std::uint32_t payload_bytes) {
  const ObjectId id{next_object_++};
  process(owner).create_object(id, payload_bytes);
  return id;
}

void Cluster::add_ref(ProcessId at, ObjectId from, ObjectId to) {
  process(at).add_ref(from, to);
}

void Cluster::remove_ref(ProcessId at, ObjectId from, ObjectId to) {
  process(at).remove_ref(from, to);
}

void Cluster::add_root(ProcessId at, ObjectId target) {
  process(at).add_root(target);
}

void Cluster::remove_root(ProcessId at, ObjectId target) {
  process(at).remove_root(target);
}

void Cluster::propagate(ObjectId object, ProcessId from, ProcessId to) {
  process(from).propagate(object, to);
}

void Cluster::invoke(ProcessId caller, ObjectId target,
                     std::uint32_t root_steps) {
  process(caller).invoke(target, root_steps);
}

void Cluster::step() { advance_clock(1); }

void Cluster::advance_clock(std::uint64_t delta) {
  if (delta > 1) {
    // Silent stretch prefix: the caller clamped `delta` at the next event
    // horizon, so steps (now, now + delta - 1] deliver nothing, cross no
    // audit/heartbeat boundary, and expire no lease or transient root.
    // Their only per-step effect in step-by-step mode is transient-TTL
    // aging — apply it in bulk and jump the network clock.
    for (auto& [pid, node] : nodes_) {
      if (node.alive) node.process->tick(delta - 1);
    }
    net_.skip_to(net_.now() + delta - 1);
  }
  net_.step();
  for (auto& [pid, node] : nodes_) {
    if (node.alive) node.process->tick();
  }
  if (config_.lease_timeout > 0) {
    // Out-of-band keepalive floor: every pair of mutually reachable live
    // processes renews each other's leases without any network traffic
    // (renewals also piggyback on every delivery), so an idle healthy
    // cluster never self-expires and quiescence is unaffected.
    if (now() % heartbeat_interval() == 0) {
      for (auto& [p, pn] : nodes_) {
        if (!pn.alive) continue;
        for (auto& [q, qn] : nodes_) {
          if (q == p || !qn.alive) continue;
          if (net_.reachable(q, p)) pn.process->note_heard(q, now());
        }
      }
    }
    for (auto& [pid, node] : nodes_) {
      if (!node.alive) continue;
      util::ScopedProcess ctx{pid};
      gc::Adgc::expire_leases(*node.process, now(), config_.lease_timeout);
    }
  }
  if (config_.audit_interval != 0 && now() % config_.audit_interval == 0) {
    // Host-OS measurement: nondeterministic, so it lives in profile() (the
    // wall-clock registry excluded from deterministic reports), sampled at
    // audit cadence rather than per step.
    profile_.gauge("cluster.peak_rss_bytes").set(util::peak_rss_bytes());
    auditor_->run_scheduled();
    if (recorder_) {
      const std::uint64_t errors = auditor_->report().errors();
      if (errors > recorded_audit_errors_) {
        recorder_->audit_error(errors);
        recorded_audit_errors_ = errors;
        if (!config_.record_dump_path.empty() && !audit_error_dumped_) {
          // First ERROR: freeze the evidence while it is still fresh.
          audit_error_dumped_ = true;
          obs::dump_recording(*recorder_, recorder_stamp(),
                              config_.record_dump_path);
        }
      }
    }
  }
}

std::uint64_t Cluster::heartbeat_interval() const noexcept {
  if (config_.heartbeat_interval != 0) return config_.heartbeat_interval;
  const std::uint64_t derived = config_.lease_timeout / 4;
  return derived == 0 ? 1 : derived;
}

std::uint64_t Cluster::next_event_delta() const {
  const std::uint64_t at = now();
  std::uint64_t delta = ~std::uint64_t{0};
  const auto clamp_at = [&](std::uint64_t event_step) {
    delta = std::min(delta, event_step > at ? event_step - at : 1);
  };
  if (net_.next_due() != ~std::uint64_t{0}) clamp_at(net_.next_due());
  // Scheduled-audit and keepalive boundaries: step() acts on every multiple
  // of the interval, so the next multiple strictly after `at` must execute.
  if (config_.audit_interval != 0) {
    delta = std::min(delta,
                     config_.audit_interval - at % config_.audit_interval);
  }
  if (config_.lease_timeout > 0) {
    const std::uint64_t h = heartbeat_interval();
    delta = std::min(delta, h - at % h);
    for (const auto& [pid, node] : nodes_) {
      if (!node.alive) continue;
      const std::uint64_t e =
          node.process->next_lease_expiry(config_.lease_timeout);
      if (e != ~std::uint64_t{0}) clamp_at(e);
    }
  }
  for (const auto& [pid, node] : nodes_) {
    if (!node.alive) continue;
    const std::uint32_t ttl = node.process->next_transient_expiry();
    if (ttl != 0) delta = std::min<std::uint64_t>(delta, ttl);
  }
  return delta == 0 ? 1 : delta;
}

void Cluster::advance(std::uint64_t steps) {
  const std::uint64_t end = now() + steps;
  while (now() < end) {
    advance_clock(std::min(next_event_delta(), end - now()));
  }
}

QuiescenceStatus Cluster::run_until_quiescent(std::uint64_t max_steps) {
  const std::uint64_t start = now();
  // Decentralized termination detection (core/quiescence.h): each loop
  // iteration circulates the weighted token through the per-process
  // send/receive accounts instead of reading the network's global
  // in-flight count — no "is everyone idle" scan in the non-debug path.
  while (!termination_->probe() && now() - start < max_steps) {
#ifndef NDEBUG
    // Debug cross-check: at a frozen step boundary the token's verdict
    // must agree with the legacy global idle scan it replaced, and the
    // summed account deficit must equal the transport's live population
    // (the conservation argument in core/quiescence.h).
    assert(!net_.idle());
    assert(termination_->deficit() == net_.in_flight());
#endif
    const std::uint64_t budget = max_steps - (now() - start);
    advance_clock(std::min(next_event_delta(), budget));
  }
  const std::uint64_t steps = now() - start;
  const bool quiescent = termination_->quiescent();
  const auto in_flight = static_cast<std::size_t>(termination_->deficit());
#ifndef NDEBUG
  assert(quiescent == net_.idle());
  assert(in_flight == net_.in_flight());
#endif
  if (!quiescent) {
    // Giving up with traffic still queued means protocol rounds (ADGC
    // hand-shakes, CDM tracks) were cut short — callers used to get no
    // signal at all.  Count it and say so.
    net_.metrics().add("cluster.quiescence_timeout");
    RGC_WARN("cluster: run_until_quiescent gave up after ", max_steps,
             " steps with ", in_flight, " messages still in flight");
  }
  // Crashed processes are not pending work: kill() purged their traffic
  // (refunding the senders' accounts), so they never hold up quiescence —
  // callers see them in `dead` instead.
  const std::size_t dead = termination_->dead();
  // Why a run stalled, as registered gauges: crashed members vs a genuine
  // truncation (gave up with traffic still in flight).
  net_.metrics().gauge("cluster.quiescence_dead_pids").set(dead);
  net_.metrics().gauge("cluster.quiescence_truncated").set(quiescent ? 0 : 1);
  return QuiescenceStatus{steps, quiescent, in_flight, dead};
}

util::ThreadPool& Cluster::pool() {
  if (!pool_) {
    pool_ = std::make_unique<util::ThreadPool>(
        config_.threads > 0 ? config_.threads : 1);
  }
  return *pool_;
}

gc::LgcResult Cluster::collect(ProcessId id) {
  Node& node = nodes_.at(id);
  if (!node.alive) throw std::out_of_range("process is down");
  rm::Process& proc = *node.process;
  // Attribute collection-time log/trace output to the collecting process.
  util::ScopedProcess ctx{id};
  gc::LgcConfig cfg;
  cfg.finalizer = &finalizer_;
  gc::LgcResult result = gc::Lgc::collect(proc, cfg);

  // Candidate heuristics digest every collection regardless of policy —
  // the distance announcements cost a few bytes on traffic that flows
  // anyway, and tests/benches can inspect either tracker.  The post-sweep
  // summary goes through the same dirty-epoch cache as collect_round(),
  // keeping the two paths metric-for-metric equivalent.
  node.distance->prune(proc);
  std::vector<Node*> just_this{&node};
  std::vector<gc::ProcessSummary> summaries;
  summarize_all(just_this, summaries, &profile_.histogram("lgc.summarize_us"));
  const auto announcements =
      node.distance->after_collection(proc, result, &summaries[0]);
  node.suspicion->after_collection(proc, result);

  gc::Adgc::after_collection(proc, result, &announcements);
  return result;
}

std::uint64_t Cluster::collect_round() {
  // Equivalent to collect() on every process in pid order: each process's
  // state is private, and cross-process effects travel only through
  // messages queued on the network (delivered at a later step()), so
  // reordering *read-only* work across processes cannot change any
  // outcome.  The phases that mutate a process, share the finalizer, emit
  // log/trace output, or send messages run serially in pid order — which
  // makes results, metrics, traffic, and traces identical for any thread
  // count.
  std::vector<ProcessId> pids;
  std::vector<Node*> nodes;
  pids.reserve(nodes_.size());
  nodes.reserve(nodes_.size());
  for (auto& [pid, node] : nodes_) {
    if (!node.alive) continue;
    pids.push_back(pid);
    nodes.push_back(&node);
  }
  const std::size_t n = nodes.size();

  gc::LgcConfig cfg;
  cfg.finalizer = &finalizer_;

  // Phase 1 — trace (read-only, parallel across processes).
  std::vector<gc::LgcMark> marks(n);
  {
    util::ScopedTimerUs timer{&profile_.histogram("lgc.mark_us")};
    pool().parallel_for(n, [&](std::size_t i) {
      marks[i] = gc::Lgc::mark(*nodes[i]->process, cfg);
    });
  }

  // Phase 2 — sweep + finalize (mutating, shared finalizer: serial).
  std::vector<gc::LgcResult> results(n);
  std::uint64_t reclaimed = 0;
  {
    util::ScopedTimerUs timer{&profile_.histogram("lgc.apply_us")};
    for (std::size_t i = 0; i < n; ++i) {
      util::ScopedProcess ctx{pids[i]};
      results[i] = gc::Lgc::apply(*nodes[i]->process, marks[i], cfg);
      nodes[i]->distance->prune(*nodes[i]->process);
      reclaimed += results[i].reclaimed.size();
    }
  }

  // Phase 3 — post-sweep summaries for the distance heuristic (read-only,
  // parallel; this is what made the serial round O(heap) per process even
  // when nothing was garbage).  Nodes whose mutation epoch is unchanged
  // since their last summary reuse it outright.
  std::vector<gc::ProcessSummary> summaries(n);
  summarize_all(nodes, summaries, &profile_.histogram("lgc.summarize_us"));

  // Phase 4 — heuristic digests + ADGC protocol messages (sends traffic:
  // serial, pid order — exactly the send order of the serial path).
  util::ScopedTimerUs timer{&profile_.histogram("adgc.digest_us")};
  for (std::size_t i = 0; i < n; ++i) {
    util::ScopedProcess ctx{pids[i]};
    rm::Process& proc = *nodes[i]->process;
    const auto announcements =
        nodes[i]->distance->after_collection(proc, results[i], &summaries[i]);
    nodes[i]->suspicion->after_collection(proc, results[i]);
    gc::Adgc::after_collection(proc, results[i], &announcements);
  }
  if (recorder_) recorder_->phase(obs::kPhaseCollectRound, reclaimed, n);
  return reclaimed;
}

void Cluster::collect_all() { collect_round(); }

void Cluster::summarize_all(const std::vector<Node*>& nodes,
                            std::vector<gc::ProcessSummary>& summaries,
                            util::Histogram* timer_hist) {
  const std::size_t n = nodes.size();
  summaries.resize(n);
  std::vector<std::uint8_t> reused(n, 0);
  {
    util::ScopedTimerUs timer{timer_hist};
    pool().parallel_for(n, [&](std::size_t i) {
      Node& nd = *nodes[i];
      const rm::Process& proc = *nd.process;
      if (nd.summary_cache_valid &&
          nd.summary_cache.mutation_epoch == proc.mutation_epoch()) {
        // Same epoch ⇒ no summary-relevant mutation since the cached
        // summary was computed ⇒ a fresh summarize() would reproduce it
        // bit for bit, only with a newer timestamp.
        nd.summary_cache.taken_at = net_.now();
        summaries[i] = nd.summary_cache;
        reused[i] = 1;
      } else {
        summaries[i] = gc::summarize(proc);
        nd.summary_cache = summaries[i];
        nd.summary_cache_valid = true;
      }
    });
  }
  // Metrics land serially so counter order is thread-count independent
  // (the reuse decision itself is epoch-based and thus deterministic).
  for (std::size_t i = 0; i < n; ++i) {
    if (reused[i] != 0) {
      nodes[i]->process->metrics().add("cycle.summarize_reused");
    }
    nodes[i]->last_summary_fresh = reused[i] == 0;
  }
  update_dirty_gauge();
}

void Cluster::update_dirty_gauge() {
  std::size_t live = 0;
  std::size_t fresh = 0;
  for (const auto& [pid, node] : nodes_) {
    if (!node.alive) continue;
    ++live;
    if (node.last_summary_fresh) ++fresh;
  }
  if (live == 0) return;
  net_.metrics().gauge("cycle.summary_dirty_fraction").set(fresh * 100 / live);
}

void Cluster::snapshot_all() {
  TRACE_SPAN("cluster.snapshot_all");
  std::vector<ProcessId> pids;
  std::vector<Node*> nodes;
  pids.reserve(nodes_.size());
  nodes.reserve(nodes_.size());
  for (auto& [pid, node] : nodes_) {
    if (!node.alive) continue;
    pids.push_back(pid);
    nodes.push_back(&node);
  }
  const std::size_t n = nodes.size();

  // Summarize concurrently (read-only per process, dirty-epoch reuse for
  // quiescent ones), install serially so detector bookkeeping, metrics,
  // and trace spans land in pid order.
  std::vector<gc::ProcessSummary> summaries(n);
  summarize_all(nodes, summaries, &profile_.histogram("cycle.summarize_us"));
  util::ScopedTimerUs install_timer{&profile_.histogram("cycle.install_us")};
  for (std::size_t i = 0; i < n; ++i) {
    util::ScopedProcess ctx{pids[i]};
    {
      TRACE_SPAN("cycle.snapshot", pids[i]);
      if (config_.mode == DetectorMode::kBaseline) {
        // The baseline detector keeps its own copy of the same snapshot.
        nodes[i]->detector->install_snapshot(summaries[i]);
      } else {
        nodes[i]->detector->install_snapshot(std::move(summaries[i]));
      }
    }
    if (config_.mode == DetectorMode::kBaseline) {
      TRACE_SPAN("baseline.snapshot", pids[i]);
      nodes[i]->baseline->install_snapshot(std::move(summaries[i]));
    }
  }
  if (recorder_) recorder_->phase(obs::kPhaseSnapshotAll, n);
}

std::optional<std::uint64_t> Cluster::detect(ProcessId at, ObjectId candidate) {
  if (config_.mode == DetectorMode::kBaseline) {
    return baseline(at).start_detection(candidate);
  }
  return detector(at).start_detection(candidate);
}

Cluster::FullGcStats Cluster::run_full_gc(std::size_t max_rounds) {
  FullGcStats stats;
  for (std::size_t round = 0; round < max_rounds; ++round) {
    ++stats.rounds;
    const std::uint64_t cycles_before = cycles_found_.size();

    // Acyclic phase: drive LGC + ADGC (and any pending cuts) to a
    // fixpoint.  Unreachable/Reclaim chains need one collection per tree
    // level, and a message delivered during an iteration's quiescence can
    // unlock sweeps only the *next* collection performs — so progress is
    // measured as sweeps *plus* deliveries of state-unlocking traffic.
    auto unlock_signal = [this] {
      return net_.metrics().get("net.delivered.Unreachable") +
             net_.metrics().get("net.delivered.Reclaim") +
             net_.metrics().get("net.delivered.Cut") +
             net_.metrics().get("net.delivered.PropCut") +
             metric_total("adgc.scions_deleted") +
             metric_total("gc.lease_expirations");
    };
    std::uint64_t reclaimed_this_round = 0;
    {
      util::SpanGuard acyclic{"gc.acyclic_phase"};
      for (std::size_t inner = 0; inner < 4 * nodes_.size() + 8; ++inner) {
        const std::uint64_t signal_before = unlock_signal();
        const std::uint64_t reclaimed = collect_round();
        run_until_quiescent();
        reclaimed_this_round += reclaimed;
        if (reclaimed == 0 && unlock_signal() == signal_before) break;
      }
      acyclic.arg("round", stats.rounds);
      acyclic.arg("reclaimed", reclaimed_this_round);
    }
    stats.reclaimed_objects += reclaimed_this_round;

    // Cyclic phase: fresh snapshots, then one detection per suspect under
    // the configured candidate policy.
    util::SpanGuard cyclic{"gc.cyclic_phase"};
    snapshot_all();
    std::uint64_t started = 0;
    for (auto& [pid, node] : nodes_) {
      if (!node.alive) continue;
      util::ScopedProcess ctx{pid};
      const gc::ProcessSummary& s = config_.mode == DetectorMode::kBaseline
                                        ? node.baseline->summary()
                                        : node.detector->summary();
      for (ObjectId suspect : pick_suspects(node, s)) {
        if (detect(pid, suspect).has_value()) ++started;
      }
    }
    stats.detections_started += started;
    run_until_quiescent();
    cyclic.arg("round", stats.rounds);
    cyclic.arg("detections", started);

    const std::uint64_t new_cycles = cycles_found_.size() - cycles_before;
    stats.cycles_found += new_cycles;
    // Heuristic candidate policies need threshold-many collections before
    // estimates/ages mature into suspects — don't give up before that.
    const bool warming_up =
        config_.candidates != CandidatePolicy::kExhaustive &&
        round < config_.candidate_threshold + 1;
    if (reclaimed_this_round == 0 && new_cycles == 0 && !warming_up) break;
  }
  return stats;
}

std::set<ObjectId> Cluster::suspects(ProcessId id) {
  Node& node = nodes_.at(id);
  if (!node.alive) return {};
  const bool use_baseline = config_.mode == DetectorMode::kBaseline;
  if (use_baseline ? !node.baseline->has_snapshot()
                   : !node.detector->has_snapshot()) {
    return {};
  }
  return pick_suspects(node, use_baseline ? node.baseline->summary()
                                          : node.detector->summary());
}

std::set<ObjectId> Cluster::pick_suspects(const Node& node,
                                          const gc::ProcessSummary& s) {
  std::set<ObjectId> suspects;
  switch (config_.candidates) {
    case CandidatePolicy::kExhaustive:
      for (const auto& [key, scion] : s.scions) {
        if (!scion.local_reach) suspects.insert(key.anchor);
      }
      for (const auto& [obj, rep] : s.replicas) {
        if (!rep.local_reach) suspects.insert(obj);
      }
      break;
    case CandidatePolicy::kDistance:
      for (ObjectId obj : node.distance->suspects()) suspects.insert(obj);
      break;
    case CandidatePolicy::kSuspicionAge:
      for (ObjectId obj : node.suspicion->suspects()) suspects.insert(obj);
      break;
  }
  return suspects;
}

std::uint64_t Cluster::total_objects() const {
  std::uint64_t total = 0;
  for (const auto& [pid, node] : nodes_) {
    if (node.alive) total += node.process->heap().size();
  }
  return total;
}

std::uint64_t Cluster::metric_total(const std::string& name) const {
  std::uint64_t total = 0;
  for (const auto& [pid, node] : nodes_) {
    if (node.alive) total += node.process->metrics().get(name);
  }
  return total;
}

void Cluster::dispatch(ProcessId pid, const net::Envelope& env) {
  Node& node = nodes_.at(pid);
  // Any delivery is proof of life: renew the sender's lease.  Deliberately
  // epoch-silent (rm::Process::note_heard), so piggybacked heartbeats never
  // invalidate the dirty-epoch summary cache.
  node.process->note_heard(env.src, net_.now());
  const net::Message* m = env.msg;
  if (const auto* p = dynamic_cast<const rm::PropagateMsg*>(m)) {
    node.process->on_propagate(env, *p);
  } else if (const auto* p = dynamic_cast<const rm::InvokeMsg*>(m)) {
    node.process->on_invoke(env, *p);
  } else if (const auto* p = dynamic_cast<const rm::RecoverMsg*>(m)) {
    // The peer restarted with a reset collection-epoch counter: forget its
    // recorded NewSetStubs epoch so its next announcement is not dropped as
    // stale, then run our half of the reconciliation toward it.  Ships on
    // the same FIFO link *before* the peer's reconciliation traffic
    // (Cluster::restart sends Recover first), so the reset cannot race it.
    RGC_DEBUG("cluster: ", to_string(pid), " sees ", to_string(env.src),
              " recovering (incarnation ", p->incarnation, ")");
    auto& trace = util::Trace::instance();
    if (trace.enabled()) {
      trace.instant("rm.recover", pid, 0, false,
                    {util::TraceArg::num("from", raw(env.src)),
                     util::TraceArg::num("incarnation", p->incarnation)});
    }
    node.process->newsetstubs_epochs()[env.src] = 0;
    node.process->metrics().add("rm.recover_received");
    send_reconciliation(*node.process, env.src);
  } else if (const auto* p = dynamic_cast<const rm::RebindMsg*>(m)) {
    node.process->on_rebind(env, *p);
  } else if (const auto* p = dynamic_cast<const rm::RebindNackMsg*>(m)) {
    node.process->on_rebind_nack(env, *p);
  } else if (const auto* p = dynamic_cast<const rm::PropSyncMsg*>(m)) {
    node.process->on_prop_sync(env, *p);
  } else if (const auto* p = dynamic_cast<const gc::NewSetStubsMsg*>(m)) {
    gc::Adgc::on_new_set_stubs(*node.process, env, *p);
    if (!p->distances.empty()) {
      const std::map<ObjectId, std::uint32_t> estimates(p->distances.begin(),
                                                        p->distances.end());
      node.distance->apply_remote_estimates(*node.process, env.src, estimates);
    }
  } else if (const auto* p = dynamic_cast<const gc::UnreachableMsg*>(m)) {
    gc::Adgc::on_unreachable(*node.process, env, *p);
  } else if (const auto* p = dynamic_cast<const gc::ReclaimMsg*>(m)) {
    gc::Adgc::on_reclaim(*node.process, env, *p);
  } else if (const auto* p = dynamic_cast<const gc::CdmMsg*>(m)) {
    if (config_.mode == DetectorMode::kBaseline) {
      node.baseline->on_cdm(env, *p);
    } else {
      node.detector->on_cdm(env, *p);
    }
  } else if (const auto* p = dynamic_cast<const gc::CutMsg*>(m)) {
    node.detector->on_cut(env, *p);
  } else if (const auto* p = dynamic_cast<const gc::PropCutMsg*>(m)) {
    node.detector->on_prop_cut(env, *p);
  } else {
    throw std::logic_error(std::string("unhandled message kind: ") + m->kind());
  }
}

// ---- Faults: crash, restart, partition (docs/FAULTS.md) --------------------

void Cluster::engage_fault_tolerance() {
  if (faults_engaged_) return;
  faults_engaged_ = true;
  for (auto& [pid, node] : nodes_) {
    if (node.alive) node.process->set_fault_tolerant(true);
  }
}

void Cluster::kill(ProcessId pid) {
  auto it = nodes_.find(pid);
  if (it == nodes_.end()) throw std::out_of_range("unknown process");
  Node& node = it->second;
  if (!node.alive) throw std::logic_error("process already down");
  engage_fault_tolerance();
  if (recorder_) recorder_->fault(obs::RecKind::kKill, pid, node.incarnations);
  // The auditor banks the dying process's conservation contributions (CDMs
  // sent/received, pending cut whitelists) before the state vanishes.
  auditor_->note_crash(pid, node.process->metrics());
  net_.detach(pid);  // purges its in-flight traffic, both directions
  // Freeze the account *after* the purge refunds landed: the dead pid's
  // balance is now exact and stays in the termination books (a crashed
  // process is never "pending work" — docs/FAULTS.md).
  termination_->mark_dead(pid);
  node.process.reset();
  node.detector.reset();
  node.baseline.reset();
  node.distance.reset();
  node.suspicion.reset();
  node.summary_cache_valid = false;
  node.alive = false;
  net_.metrics().add("cluster.crashes");
  RGC_INFO("cluster: killed ", to_string(pid));
}

void Cluster::persist(ProcessId pid) {
  auto it = nodes_.find(pid);
  if (it == nodes_.end()) throw std::out_of_range("unknown process");
  Node& node = it->second;
  if (!node.alive) throw std::logic_error("cannot persist a dead process");
  // No metrics, no mutation-epoch effect: periodic persistence must be
  // invisible to deterministic runs (core/daemon.cpp calls this on its
  // snapshot cadence).
  node.image = gc::encode_image(node.process->capture_image(now()));
  node.image_epoch = node.process->mutation_epoch();
  if (recorder_) {
    recorder_->fault(obs::RecKind::kPersist, pid, node.image.size());
  }
}

void Cluster::persist_all() {
  for (auto& [pid, node] : nodes_) {
    if (node.alive) persist(pid);
  }
}

bool Cluster::restart(ProcessId pid) {
  auto it = nodes_.find(pid);
  if (it == nodes_.end()) throw std::out_of_range("unknown process");
  Node& node = it->second;
  if (node.alive) throw std::logic_error("process is not down");

  build_node(pid, node);
  ++node.incarnations;

  bool rehydrated = false;
  if (!node.image.empty()) {
    // Never silently mis-rehydrate: a corrupt or stale image is rejected
    // (offline checker verdict) and the process restarts empty instead.
    const auto findings = obs::check_image(node.image, node.image_epoch);
    if (findings.empty()) {
      if (auto image = gc::decode_image(node.image)) {
        node.process->restore_image(*image, now());
        rehydrated = true;
      }
    }
    if (!rehydrated) {
      net_.metrics().add("cluster.restart_image_rejected");
      RGC_WARN("cluster: persisted image for ", to_string(pid), " rejected (",
               findings.empty() ? std::string("undecodable")
                                : findings.front().detail,
               "); restarting empty");
    }
  }
  net_.metrics().add("cluster.recoveries");
  auditor_->note_restart(pid);

  // Lease re-registration in both directions BEFORE any reclamation can run
  // again — the safety of Adgc::expire_leases depends on it.
  for (auto& [q, qn] : nodes_) {
    if (q == pid || !qn.alive) continue;
    qn.process->note_heard(pid, now());
    node.process->note_heard(q, now());
  }
  // RecoverMsg first on every FIFO link, so each peer resets our recorded
  // NewSetStubs epoch before any reconciliation announcement arrives.
  for (auto& [q, qn] : nodes_) {
    if (q == pid || !qn.alive || !net_.reachable(pid, q)) continue;
    auto msg = std::make_unique<rm::RecoverMsg>();
    msg->incarnation = node.incarnations;
    net_.send(pid, q, std::move(msg));
    node.process->metrics().add("rm.recover_sent");
  }
  for (auto& [q, qn] : nodes_) {
    if (q == pid || !qn.alive || !net_.reachable(pid, q)) continue;
    send_reconciliation(*node.process, q);
  }
  if (recorder_) {
    recorder_->fault(obs::RecKind::kRestart, pid, node.incarnations,
                     rehydrated ? 1 : 0);
  }
  RGC_INFO("cluster: restarted ", to_string(pid),
           rehydrated ? " from persisted image" : " empty");
  return rehydrated;
}

bool Cluster::is_alive(ProcessId pid) const {
  auto it = nodes_.find(pid);
  return it != nodes_.end() && it->second.alive;
}

std::vector<ProcessId> Cluster::dead_process_ids() const {
  std::vector<ProcessId> out;
  for (const auto& [pid, node] : nodes_) {
    if (!node.alive) out.push_back(pid);
  }
  return out;
}

bool Cluster::has_image(ProcessId pid) const { return !image(pid).empty(); }

const std::string& Cluster::image(ProcessId pid) const {
  auto it = nodes_.find(pid);
  if (it == nodes_.end()) throw std::out_of_range("unknown process");
  return it->second.image;
}

void Cluster::set_image(ProcessId pid, std::string bytes) {
  auto it = nodes_.find(pid);
  if (it == nodes_.end()) throw std::out_of_range("unknown process");
  it->second.image = std::move(bytes);
}

void Cluster::partition(const std::vector<std::vector<ProcessId>>& groups) {
  engage_fault_tolerance();
  if (recorder_) {
    recorder_->fault(obs::RecKind::kPartition, kNoProcess, groups.size());
  }
  net_.set_partition(groups);
  net_.metrics().add("cluster.partitions");
}

void Cluster::heal() {
  if (!net_.partitioned()) return;
  if (recorder_) recorder_->fault(obs::RecKind::kHeal, kNoProcess);
  const std::map<ProcessId, std::uint32_t> groups = net_.partition_groups();
  net_.clear_partition();
  net_.metrics().add("cluster.heals");
  // Anti-entropy across the former cut: every live pair the mask separated
  // renews leases immediately (so this step's expiry sweep cannot retire
  // freshly-rebound state) and reconciles in both directions, in pid order.
  for (auto& [p, pn] : nodes_) {
    if (!pn.alive) continue;
    const auto pg = groups.find(p);
    if (pg == groups.end()) continue;
    for (auto& [q, qn] : nodes_) {
      if (raw(q) <= raw(p) || !qn.alive) continue;
      const auto qg = groups.find(q);
      if (qg == groups.end() || qg->second == pg->second) continue;
      pn.process->note_heard(q, now());
      qn.process->note_heard(p, now());
      send_reconciliation(*pn.process, q);
      send_reconciliation(*qn.process, p);
    }
  }
  RGC_INFO("cluster: partition healed");
}

void Cluster::send_reconciliation(rm::Process& from, ProcessId peer) {
  util::ScopedProcess ctx{from.id()};
  const ProcessId self = from.id();

  // (1) Re-bind: ask the peer to re-create the scion behind every stub we
  // hold toward it (its restart image may predate the export, or it may
  // have lease-expired us during a partition).
  std::size_t stubs_toward_peer = 0;
  for (const auto& [key, stub] : from.stubs()) {
    if (key.target_process != peer) continue;
    ++stubs_toward_peer;
    auto msg = std::make_unique<rm::RebindMsg>();
    msg->anchor = key.target;
    msg->ic = stub.ic;
    net_.send(self, peer, std::move(msg));
    from.metrics().add("rm.rebinds_sent");
  }

  // (2) Re-propagate every link we own toward the peer — the replica and
  // its inProp entry are re-created if the peer lost them — then (3) a
  // PropSync names exactly the links that exist on this side, so the peer
  // drops inProp entries whose parent half died with our lost state.
  std::vector<ObjectId> owned;
  for (const auto& e : from.out_props()) {
    if (e.process == peer) owned.push_back(e.object);
  }
  std::sort(owned.begin(), owned.end());
  owned.erase(std::unique(owned.begin(), owned.end()), owned.end());
  for (ObjectId obj : owned) {
    if (!from.has_replica(obj)) continue;
    from.propagate(obj, peer);
  }
  auto sync = std::make_unique<rm::PropSyncMsg>();
  sync->objects = owned;
  net_.send(self, peer, std::move(sync));
  from.metrics().add("rm.propsyncs_sent");

  // (4) Refresh the scion-retirement channel: with stubs toward the peer,
  // re-enter the NewSetStubs round so orphaned scions there retire on the
  // next collection; with none, one final empty (reliable) announcement
  // lets the peer drop every scion it still holds for us.
  if (stubs_toward_peer > 0) {
    from.stub_peers().insert(peer);
  } else {
    auto nss = std::make_unique<gc::NewSetStubsMsg>();
    nss->epoch = from.next_collection_epoch();
    nss->horizon = from.delivered_prop_seq(peer);
    nss->final_set = true;
    net_.send(self, peer, std::move(nss));
    from.metrics().add("adgc.newsetstubs_sent");
    from.stub_peers().erase(peer);
  }
  from.metrics().add("rm.reconciliations");
}

void Cluster::handle_cycle_found(ProcessId at, const gc::Cdm& cdm) {
  cycles_found_.push_back(cdm);
  if (ledger_ != nullptr) {
    // The verdict fires on the serial dispatch (or detect) path, so the
    // ledger hook is deterministic.  Before sending the Cut, so zero-hop
    // local detections have a live record for the Cut send to charge.
    std::uint64_t unlinked = 0;
    if (const auto it = nodes_.find(cdm.candidate.process);
        it != nodes_.end() && it->second.alive) {
      if (const rm::Object* obj =
              it->second.process->heap().find(cdm.candidate.object)) {
        unlinked = obj->unlinked_at;
      }
    }
    ledger_->cycle_proven(at, cdm, unlinked);
  }
  if (!config_.auto_cut) return;
  auto cut = std::make_unique<gc::CutMsg>(gc::CycleDetector::make_cut(cdm));
  net_.send(at, cdm.candidate.process, std::move(cut));
}

}  // namespace rgc::core
