// Cluster — the library's public facade.
//
// A Cluster owns the simulated network, the participating processes, and a
// cycle-detector instance per process (replication-aware and/or baseline),
// and wires message dispatch between them.  Applications build and mutate
// the distributed replicated graph through it, advance virtual time with
// step(), and run the collectors:
//
//   rgc::core::Cluster cluster;
//   auto p1 = cluster.add_process();
//   auto p2 = cluster.add_process();
//   auto x = cluster.new_object(p1);
//   cluster.add_root(p1, x);
//   cluster.propagate(x, p1, p2);          // replicate x onto p2
//   cluster.run_until_quiescent();
//   cluster.remove_root(p1, x);            // x becomes garbage everywhere
//   cluster.run_full_gc();                 // ... and is reclaimed
//
// Everything is deterministic under a fixed ClusterConfig::net.seed.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/quiescence.h"
#include "gc/adgc/adgc.h"
#include "gc/baseline/baseline_detector.h"
#include "gc/cycle/detector.h"
#include "gc/cycle/heuristics.h"
#include "gc/lgc/lgc.h"
#include "net/network.h"
#include "obs/audit.h"
#include "obs/health.h"
#include "obs/ledger.h"
#include "obs/recorder.h"
#include "rm/process.h"
#include "util/ids.h"
#include "util/metrics.h"
#include "util/thread_pool.h"

namespace rgc::core {

/// Which algorithm handles CDM traffic in this cluster.
enum class DetectorMode {
  kReplicationAware,  // the paper's contribution (§3)
  kBaseline,          // modified [23]: props flattened to reference pairs
};

/// How run_full_gc picks cycle-detection candidates (§3.1 leaves the
/// heuristic open; [14] supplies the distance scheme).
enum class CandidatePolicy {
  /// Every locally-unreachable scion anchor / replica, every round —
  /// maximal completeness per round, maximal wasted detections.
  kExhaustive,
  /// Maheshwari-style distance estimates piggybacked on NewSetStubs;
  /// detect only anchors whose estimates crossed the threshold.
  kDistance,
  /// Objects that survived N consecutive collections anchored only
  /// remotely.
  kSuspicionAge,
};

struct ClusterConfig {
  net::NetworkConfig net{};
  DetectorMode mode{DetectorMode::kReplicationAware};
  gc::DetectorConfig detector{};
  /// Apply the cut automatically when a detection proves a cycle.
  bool auto_cut{true};
  /// Finalization strategy used by collect()/collect_all() (Figure 6/7).
  gc::FinalizeStrategy finalize{gc::FinalizeStrategy::kNone};
  /// Candidate selection for run_full_gc's detection sweeps.
  CandidatePolicy candidates{CandidatePolicy::kExhaustive};
  /// Threshold for the heuristic policies (distance / suspicion age).
  std::uint32_t candidate_threshold{3};
  /// Worker threads for the read-only GC phases (LGC marking, snapshot
  /// summarization) in collect_all/snapshot_all/run_full_gc.  Results are
  /// bit-for-bit identical for any value: the mutating phases stay serial
  /// in pid order, so network traffic, metrics, and traces don't change.
  /// 1 (default) keeps everything on the calling thread.
  std::size_t threads{1};
  /// Scheduled cadence of the online health auditor (obs/audit.h) in
  /// simulation steps: every audit_interval-th step() runs the shallow
  /// invariant checks.  0 disables scheduled audits; audit() still works
  /// on demand.
  std::uint64_t audit_interval{64};
  /// Every Nth scheduled audit also runs the deep (mark-based) checks.
  std::uint64_t audit_deep_every{8};
  /// Deep audits additionally cross-check against the omniscient
  /// core::Oracle (test harnesses only — the oracle scan is global).
  bool audit_oracle_assist{false};
  /// Lease/timeout reclamation (docs/FAULTS.md): a peer whose lease has
  /// not been renewed for this many steps is considered failed, and the
  /// scions/props it holds here are retired through the ADGC path
  /// (gc::Adgc::expire_leases).  0 (default) disables leases entirely —
  /// dead processes then pin their remote state until they restart.
  std::uint64_t lease_timeout{0};
  /// Cadence of the out-of-band keepalive floor between mutually reachable
  /// live processes (renewals also piggyback on every delivered message).
  /// 0 derives max(1, lease_timeout / 4).  Ignored while leases are off.
  std::uint64_t heartbeat_interval{0};
  /// Flight-recorder ring capacity per process (obs/recorder.h): every
  /// transport event, GC phase, sweep, reclaim decision, lease expiry and
  /// fault is retained in a fixed ring for post-mortem replay.  Always on
  /// by default, like the auditor — appends are O(1), allocation-free in
  /// steady state, and touch no deterministic metric.  0 disables.
  std::size_t record_capacity{4096};
  /// When set, the first audit ERROR dumps the recording here as a
  /// versioned `.rgcrec` file (sim_cli --record wires this up; SIGABRT
  /// dumps are armed separately via obs::arm_abort_dump).
  std::string record_dump_path{};
  /// Per-cycle cost ledger (obs/ledger.h): completed-entry ring capacity.
  /// Always on by default — the ledger is deterministic and its entries
  /// feed the report's slowest-cycles table and `--explain-cycle`.  0
  /// disables it.
  std::size_t ledger_capacity{256};
};

/// Outcome of run_until_quiescent: how many steps ran and whether the
/// network actually drained.  Implicitly converts to the step count so
/// existing `std::uint64_t steps = cluster.run_until_quiescent()` callers
/// keep compiling.
struct QuiescenceStatus {
  std::uint64_t steps{0};
  bool quiescent{true};
  /// Messages still in flight when we gave up (0 when quiescent).
  std::size_t in_flight{0};
  /// Crashed processes at the time of the call.  They are NOT pending work:
  /// kill() purges their in-flight traffic, so a cluster with dead members
  /// still quiesces (the fix for the old "crashed process counts as
  /// pending forever" hang).
  std::size_t dead{0};

  constexpr operator std::uint64_t() const noexcept { return steps; }  // NOLINT
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config = {});
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  // ---- Topology ---------------------------------------------------------
  ProcessId add_process();
  /// Number of live (non-crashed) processes.
  [[nodiscard]] std::size_t process_count() const noexcept;
  /// Live process ids only; crashed ones reappear after restart().
  [[nodiscard]] std::vector<ProcessId> process_ids() const;
  [[nodiscard]] rm::Process& process(ProcessId id);
  [[nodiscard]] const rm::Process& process(ProcessId id) const;
  [[nodiscard]] gc::CycleDetector& detector(ProcessId id);
  [[nodiscard]] gc::BaselineDetector& baseline(ProcessId id);
  [[nodiscard]] gc::DistanceHeuristic& distance_heuristic(ProcessId id);
  [[nodiscard]] gc::SuspicionAgeTracker& suspicion_tracker(ProcessId id);
  [[nodiscard]] net::Network& network() noexcept { return net_; }
  [[nodiscard]] const net::Network& network() const noexcept { return net_; }
  [[nodiscard]] const ClusterConfig& config() const noexcept { return config_; }

  // ---- Faults: crash, restart, partition (docs/FAULTS.md) ----------------

  /// Crashes `pid`: its in-memory state (process, detectors) is destroyed,
  /// its in-flight messages are purged, and future sends to it are dropped
  /// at the source.  The pid stays known — restart() brings it back.
  /// Engages fault-tolerant mode on every process (see
  /// rm::Process::set_fault_tolerant).  Throws if already down or unknown.
  void kill(ProcessId pid);

  /// Captures `pid`'s full state into its persisted image slot (the
  /// "snapshot periodically stored on disk" of §3.5.1, extended to the
  /// restartable rm/image.h format).  Deliberately free of metrics and
  /// mutation-epoch effects so periodic persistence never perturbs a
  /// deterministic run.  Throws for a dead pid.
  void persist(ProcessId pid);
  /// persist() on every live process, in pid order.
  void persist_all();

  /// Restarts a crashed `pid` from its last persisted image: validates the
  /// image (obs::check_image — a corrupt or stale one is rejected and the
  /// process restarts empty, counted as "cluster.restart_image_rejected"),
  /// re-registers leases in both directions, then drives the
  /// reconciliation protocol (RecoverMsg to every live peer + this side's
  /// rebinds/re-propagations).  Returns true when state was rehydrated
  /// from a valid image, false on an empty or rejected restart.  Throws if
  /// `pid` is alive or unknown.
  bool restart(ProcessId pid);

  /// True when `pid` exists and has not been killed (or was restarted).
  [[nodiscard]] bool is_alive(ProcessId pid) const;
  /// Currently crashed pids, ascending.
  [[nodiscard]] std::vector<ProcessId> dead_process_ids() const;

  /// Whether a persisted image exists for `pid` (any liveness).
  [[nodiscard]] bool has_image(ProcessId pid) const;
  /// Persisted image bytes ("" when none).  Test hooks: set_image replaces
  /// the stored bytes *without* touching the recorded persist epoch, so
  /// corruption and stale-snapshot scenarios are constructible.
  [[nodiscard]] const std::string& image(ProcessId pid) const;
  void set_image(ProcessId pid, std::string bytes);

  /// Installs a partition mask (see net::Network::set_partition): messages
  /// crossing group boundaries are lost, including those already in
  /// flight.  Engages fault-tolerant mode.
  void partition(const std::vector<std::vector<ProcessId>>& groups);
  /// Lifts the mask and runs the anti-entropy round: every live
  /// cross-group pair reconciles in both directions (rebinds,
  /// re-propagations, prop-sync), and leases across the former cut are
  /// renewed.  Nothing lost during the partition is re-delivered.
  void heal();
  [[nodiscard]] bool partitioned() const noexcept { return net_.partitioned(); }

  // ---- Graph building & mutation (delegates to the owning process) ------
  /// Creates a new object with a globally unique id on `owner`.
  ObjectId new_object(ProcessId owner, std::uint32_t payload_bytes = 16);
  void add_ref(ProcessId at, ObjectId from, ObjectId to);
  void remove_ref(ProcessId at, ObjectId from, ObjectId to);
  void add_root(ProcessId at, ObjectId target);
  void remove_root(ProcessId at, ObjectId target);
  void propagate(ObjectId object, ProcessId from, ProcessId to);
  void invoke(ProcessId caller, ObjectId target, std::uint32_t root_steps = 1);

  // ---- Virtual time ------------------------------------------------------
  /// One simulation step: deliver due messages, expire transient roots,
  /// and run the scheduled health audit when the cadence hits.
  void step();
  /// Advances virtual time by `steps` steps with discrete-event scheduling:
  /// quiescent stretches are jumped in one hop instead of executed step by
  /// step, clamped so every delivery, audit/heartbeat boundary, lease
  /// expiry and transient-root expiry still happens at exactly the virtual
  /// step it would under step()-stepping — the two schedules are
  /// observably identical (same events, same order, same virtual times).
  void advance(std::uint64_t steps);
  /// Drains the network with the same event-skipping scheduler; returns how
  /// many virtual steps elapsed and whether the network drained (converts
  /// to the step count).  O(events), not O(virtual time), on idle-heavy
  /// workloads.
  QuiescenceStatus run_until_quiescent(std::uint64_t max_steps = 100000);
  [[nodiscard]] std::uint64_t now() const noexcept { return net_.now(); }

  // ---- Observability ------------------------------------------------------
  /// The always-on health auditor (scheduled by step(); see ClusterConfig).
  [[nodiscard]] obs::HealthAuditor& auditor() noexcept { return *auditor_; }
  [[nodiscard]] const obs::HealthAuditor& auditor() const noexcept {
    return *auditor_;
  }
  /// Runs a full (deep) audit now and returns its report.
  const obs::HealthReport& audit() { return auditor_->run_deep(); }
  /// Latest health report (empty until the first scheduled or demanded
  /// audit).
  [[nodiscard]] const obs::HealthReport& health() const noexcept {
    return auditor_->report();
  }
  /// Wall-clock phase profiling registry (lgc.mark_us, lgc.apply_us,
  /// cycle.detect_us, ...).  Nondeterministic by nature — deliberately kept
  /// out of make_report()'s deterministic output.
  [[nodiscard]] const util::Metrics& profile() const noexcept { return profile_; }
  /// The always-on flight recorder (null when record_capacity is 0).
  [[nodiscard]] obs::FlightRecorder* recorder() noexcept {
    return recorder_.get();
  }
  [[nodiscard]] const obs::FlightRecorder* recorder() const noexcept {
    return recorder_.get();
  }
  /// Run identity for dumping this cluster's recording (rounds = 0: the
  /// cluster doesn't know the driving workload's round count).
  [[nodiscard]] obs::RecStamp recorder_stamp() const;
  /// The per-cycle cost ledger (null when ledger_capacity is 0).
  [[nodiscard]] obs::Ledger* ledger() noexcept { return ledger_.get(); }
  [[nodiscard]] const obs::Ledger* ledger() const noexcept {
    return ledger_.get();
  }
  /// The decentralized termination detector run_until_quiescent() consults
  /// instead of the old global idle scan (core/quiescence.h).  Always on.
  [[nodiscard]] TerminationDetector& termination() noexcept {
    return *termination_;
  }
  [[nodiscard]] const TerminationDetector& termination() const noexcept {
    return *termination_;
  }

  // ---- Garbage collection -------------------------------------------------
  /// One local collection + acyclic-protocol round on one process.
  gc::LgcResult collect(ProcessId id);
  /// One collection round over every process, equivalent to collect() on
  /// each in id order.  With config.threads > 1 the trace phase runs
  /// concurrently across processes; sweeps and protocol messages are
  /// applied serially in pid order, so results are identical to threads=1.
  void collect_all();
  /// Snapshot + summarize every process (no coordination — each snapshot
  /// is independent; this bulk helper is a convenience, not a barrier).
  /// Summarization runs on the worker pool when config.threads > 1.
  void snapshot_all();
  /// Starts a detection with `candidate` (owned by `at`) as suspect.
  std::optional<std::uint64_t> detect(ProcessId at, ObjectId candidate);

  /// Detection candidates the configured CandidatePolicy currently yields
  /// for `id` (empty when no snapshot has been taken yet).
  [[nodiscard]] std::set<ObjectId> suspects(ProcessId id);

  /// Cycles proven so far (verdict CDMs, in discovery order).
  [[nodiscard]] const std::vector<gc::Cdm>& cycles_found() const noexcept {
    return cycles_found_;
  }

  /// Exhaustive multi-round GC driver: alternates acyclic rounds (LGC +
  /// ADGC + message quiescence) with detection sweeps over every suspect
  /// until a full iteration reclaims nothing and proves no new cycle.
  /// Candidate selection is exhaustive — the paper leaves heuristics out
  /// of scope; this is the completeness-oriented choice.
  struct FullGcStats {
    std::uint64_t rounds{0};
    std::uint64_t reclaimed_objects{0};
    std::uint64_t cycles_found{0};
    std::uint64_t detections_started{0};
  };
  FullGcStats run_full_gc(std::size_t max_rounds = 32);

  // ---- Introspection ------------------------------------------------------
  /// Total replicas across all processes.
  [[nodiscard]] std::uint64_t total_objects() const;
  /// Sum of one metric across all processes.
  [[nodiscard]] std::uint64_t metric_total(const std::string& name) const;

 private:
  struct Node {
    std::unique_ptr<rm::Process> process;
    std::unique_ptr<gc::CycleDetector> detector;
    std::unique_ptr<gc::BaselineDetector> baseline;
    std::unique_ptr<gc::DistanceHeuristic> distance;
    std::unique_ptr<gc::SuspicionAgeTracker> suspicion;
    /// Dirty-epoch snapshot reuse: the last summary computed for this
    /// process (its mutation_epoch field records the epoch it captured).
    /// summarize_all() hands it out verbatim — only the timestamp moves —
    /// while the live process's epoch still matches, so a quiescent
    /// process costs O(1) per snapshot round instead of a summarization.
    gc::ProcessSummary summary_cache;
    bool summary_cache_valid{false};
    /// Whether the most recent summarization of this node had to run fresh
    /// (true) or reused the cache (false).  Feeds the cluster-wide
    /// cycle.summary_dirty_fraction gauge.
    bool last_summary_fresh{true};
    /// False after kill(); the pointers above are null while down.
    bool alive{true};
    /// Last persisted image (gc::encode_image bytes; "" = never persisted)
    /// and the process mutation epoch recorded at persist time — restart
    /// rejects images older than this (stale-snapshot guard).
    std::string image;
    std::uint64_t image_epoch{0};
    /// Completed restarts (RecoverMsg::incarnation).
    std::uint64_t incarnations{0};
  };

  /// Candidates for one process's detection sweep under the configured
  /// policy, given its fresh summary.
  [[nodiscard]] std::set<ObjectId> pick_suspects(const Node& node,
                                                 const gc::ProcessSummary& s);

  /// The phased collection round behind collect_all()/run_full_gc():
  /// parallel mark, serial apply, parallel summarize, serial protocol
  /// digest.  Returns the number of objects reclaimed.
  std::uint64_t collect_round();

  /// Summarizes every node into `summaries` (parallel when threads > 1),
  /// reusing each node's cached summary when its process's mutation epoch
  /// is unchanged.  Serially records "cycle.summarize_reused" per reused
  /// node and the "cycle.summary_dirty_fraction" gauge (percent of nodes
  /// that needed a fresh summarization).
  void summarize_all(const std::vector<Node*>& nodes,
                     std::vector<gc::ProcessSummary>& summaries,
                     util::Histogram* timer_hist);

  /// Recomputes the cycle.summary_dirty_fraction gauge (percent of nodes
  /// whose latest summarization ran fresh) from the per-node freshness
  /// flags — over *all* nodes, so the per-process collect() path and the
  /// phased collect_round() converge to the same value.
  void update_dirty_gauge();

  /// Worker pool for the read-only phases, created on first use.
  util::ThreadPool& pool();

  void dispatch(ProcessId pid, const net::Envelope& env);
  void handle_cycle_found(ProcessId at, const gc::Cdm& cdm);

  /// (Re)creates the live half of a Node for `pid` (process + detectors +
  /// dispatch attachment) — shared by add_process and restart.
  void build_node(ProcessId pid, Node& node);

  /// Switches every live process into fault-tolerant mode; called the
  /// first time kill()/partition() runs or when leases are configured.
  void engage_fault_tolerance();

  /// One side of the reconciliation protocol: `from` re-binds its stubs
  /// toward `peer`, re-propagates its surviving links, prop-syncs, and
  /// refreshes the scion-retirement channel (docs/FAULTS.md).
  void send_reconciliation(rm::Process& from, ProcessId peer);

  /// Effective keepalive cadence (config.heartbeat_interval or derived).
  [[nodiscard]] std::uint64_t heartbeat_interval() const noexcept;

  /// One scheduler quantum: behaves exactly like `delta` consecutive
  /// step() calls under the precondition that steps (now, now + delta - 1]
  /// are silent — nothing due, no audit/heartbeat boundary, no lease or
  /// transient-root expiry strictly inside.  next_event_delta() computes
  /// the largest such delta.  step() is advance_clock(1).
  void advance_clock(std::uint64_t delta);

  /// Steps until the next scheduled event: the network's next due
  /// delivery, the next audit/heartbeat boundary, the earliest lease
  /// expiry, or the earliest transient-root expiry — whichever comes
  /// first.  Always >= 1; UINT64_MAX-ish when nothing is scheduled (the
  /// caller clamps to its own budget).
  [[nodiscard]] std::uint64_t next_event_delta() const;

  ClusterConfig config_;
  net::NetworkConfig net_config_;
  net::Network net_;
  std::map<ProcessId, Node> nodes_;
  std::uint64_t next_object_{0};
  std::uint32_t next_process_{0};
  /// True once any fault machinery (kill/partition/leases) is in play.
  bool faults_engaged_{false};
  std::vector<gc::Cdm> cycles_found_;
  gc::Finalizer finalizer_;
  std::unique_ptr<util::ThreadPool> pool_;
  /// Wall-clock phase timers; see profile().
  util::Metrics profile_;
  /// Declared after net_ so it is destroyed first (it is net_'s observer).
  std::unique_ptr<obs::HealthAuditor> auditor_;
  /// Also a net_ observer (add_observer) — same ordering rule.
  std::unique_ptr<obs::FlightRecorder> recorder_;
  /// Per-cycle cost ledger; also a net_ observer (add_observer).
  std::unique_ptr<obs::Ledger> ledger_;
  /// Decentralized termination detection — per-process send/receive
  /// accounts maintained from transport events; also a net_ observer.
  std::unique_ptr<TerminationDetector> termination_;
  /// Audit errors already recorded/dumped (the recorder notes each new
  /// ERROR once; the first one triggers the record_dump_path dump).
  std::uint64_t recorded_audit_errors_{0};
  bool audit_error_dumped_{false};
};

}  // namespace rgc::core
